// Package cache models the data-cache hierarchy of the evaluated machine
// (Table III): private L1 and L2, a shared L3, and DRAM behind them. The
// model is latency-only: an access returns the round-trip cycles of the
// level that hits. Both workload data accesses and page-walk accesses go
// through it, so radix walks benefit from page-table locality and hashed
// walks pay for its absence — the first-order effect behind Figure 9.
package cache

import "repro/internal/addr"

// Config describes one cache level.
type Config struct {
	SizeBytes uint64
	Ways      int
	LineBytes uint64
	Latency   uint64 // round-trip cycles from the core on a hit
}

// Stats counts accesses for one level.
type Stats struct {
	Hits, Misses uint64
}

// Cache is one set-associative LRU cache level.
//
// Tags live in a single flat set-major array (sets × ways), MRU first
// within each set, 0 marking an empty slot (tags are stored as line+1).
// Empty slots are always a suffix of their set — fills push at the front —
// so probes stop at the first zero. The flat layout replaces the per-set
// []uint64 slices whose append-growth was the second-largest allocation
// source on the simulator's hot path.
type Cache struct {
	cfg      Config
	sets     uint64
	setMask  uint64 // sets-1 when sets is a power of two, else 0
	lineBits uint
	ways     int
	tags     []uint64 // sets × ways, set-major; 0 = empty
	stats    Stats
}

// New creates a cache level. Sets are derived from size/ways/line; the set
// count need not be a power of two (Table III's 12-way L2 TLB layout made
// that a requirement elsewhere too).
func New(cfg Config) *Cache {
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / uint64(cfg.Ways)
	if sets == 0 {
		sets = 1
	}
	c := &Cache{cfg: cfg, sets: sets, ways: cfg.Ways}
	if sets&(sets-1) == 0 {
		c.setMask = sets - 1
	}
	c.lineBits = 0
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineBits++
	}
	c.tags = make([]uint64, sets*uint64(cfg.Ways))
	return c
}

// line returns the line number of pa.
func (c *Cache) line(pa addr.PhysAddr) uint64 { return uint64(pa) >> c.lineBits }

// set returns the tag slots of the set holding line ln. Table III's
// geometries are all power-of-two set counts, so the modulo reduces to the
// precomputed mask on the hot path.
func (c *Cache) set(ln uint64) []uint64 {
	var si uint64
	if c.setMask != 0 || c.sets == 1 {
		si = ln & c.setMask
	} else {
		si = ln % c.sets
	}
	base := si * uint64(c.ways)
	return c.tags[base : base+uint64(c.ways)]
}

// promote moves set[i] to the MRU front. The explicit backward shift
// replaces copy(): promotion distances are tiny (usually one slot), where a
// memmove call costs more than the move itself.
//
//go:inline
func promote(set []uint64, i int) {
	want := set[i]
	for ; i > 0; i-- {
		set[i] = set[i-1]
	}
	set[0] = want
}

// fillFront inserts want at the MRU front of a set whose first n slots are
// valid, dropping the LRU tail when full — the shared tail of Fill and the
// batch pipeline's inline refill.
//
//go:inline
func fillFront(set []uint64, want uint64, n int) {
	if n == len(set) {
		n-- // set full: shifting right drops the LRU tail
	}
	for ; n > 0; n-- {
		set[n] = set[n-1]
	}
	set[0] = want
}

// Lookup probes the cache without filling, updating LRU on a hit.
//mehpt:hotpath
func (c *Cache) Lookup(pa addr.PhysAddr) bool {
	want := c.line(pa) + 1
	set := c.set(want - 1)
	for i, tag := range set {
		if tag == 0 {
			break // empties are a suffix: the rest of the set is empty
		}
		if tag == want {
			promote(set, i)
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Fill inserts pa's line, evicting the LRU victim if the set is full.
//mehpt:hotpath
func (c *Cache) Fill(pa addr.PhysAddr) {
	want := c.line(pa) + 1
	set := c.set(want - 1)
	n := len(set)
	for i, tag := range set {
		if tag == 0 {
			n = i
			break
		}
	}
	fillFront(set, want, n)
}

// Latency returns the hit round-trip latency.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

// Stats returns the hit/miss counters.
func (c *Cache) Stats() Stats { return c.stats }

// Hierarchy is the full L1/L2/L3/DRAM stack. The three levels are stored
// by value in one array so the per-access walk stays on one cache line of
// metadata and never chases heap pointers.
type Hierarchy struct {
	levels [3]Cache
	//mehpt:transient -- fixed geometry parameter; RestoreHierarchy re-derives it from the caller's HierarchyConfig
	dramLatency uint64
	dramHits    uint64
}

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig struct {
	L1, L2, L3  Config
	DRAMLatency uint64
}

// TableIII returns the paper's memory-system configuration: 32KB/8-way L1
// (2 cyc), 512KB/8-way L2 (16 cyc), 2MB/16-way L3 per core (56 cyc avg),
// 200-cycle DRAM, 64B lines.
func TableIII() HierarchyConfig {
	return HierarchyConfig{
		L1:          Config{SizeBytes: 32 * addr.KB, Ways: 8, LineBytes: 64, Latency: 2},
		L2:          Config{SizeBytes: 512 * addr.KB, Ways: 8, LineBytes: 64, Latency: 16},
		L3:          Config{SizeBytes: 2 * addr.MB, Ways: 16, LineBytes: 64, Latency: 56},
		DRAMLatency: 200,
	}
}

// NewHierarchy builds the stack.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		levels:      [3]Cache{*New(cfg.L1), *New(cfg.L2), *New(cfg.L3)},
		dramLatency: cfg.DRAMLatency,
	}
}

// Access performs one memory access and returns its round-trip latency. On
// a miss the line is filled into every level (inclusive hierarchy).
//mehpt:hotpath
func (h *Hierarchy) Access(pa addr.PhysAddr) uint64 {
	if h.levels[0].Lookup(pa) {
		return h.levels[0].Latency()
	}
	return h.accessFromL1Miss(pa)
}

// accessFromL1Miss finishes Access after the L1 probe has already missed
// (and been counted): probe the outer levels, fill inward on a hit, go to
// DRAM and fill everything on a full miss. Access and AccessBatch's slow
// lane both funnel through this, which keeps them bit-identical.
//mehpt:hotpath
func (h *Hierarchy) accessFromL1Miss(pa addr.PhysAddr) uint64 {
	if h.levels[1].Lookup(pa) {
		h.levels[0].Fill(pa)
		return h.levels[1].Latency()
	}
	return h.accessFromL2Miss(pa)
}

// accessFromL2Miss finishes an access that missed both L1 and L2 (both
// counted): probe L3, fill inward on a hit, go to DRAM and fill everything
// on a full miss. accessFromL1Miss and AccessBatch's inline L2 lane both
// funnel through this.
//mehpt:hotpath
func (h *Hierarchy) accessFromL2Miss(pa addr.PhysAddr) uint64 {
	for i := 2; i < len(h.levels); i++ {
		if h.levels[i].Lookup(pa) {
			for j := 0; j < i; j++ {
				h.levels[j].Fill(pa)
			}
			return h.levels[i].Latency()
		}
	}
	for i := range h.levels {
		h.levels[i].Fill(pa)
	}
	h.dramHits++
	return h.dramLatency
}

// AccessBatch performs one memory access per element of pas, writing each
// access's round-trip latency into lats[i]. It is bit-identical — state,
// stats, and latencies — to len(pas) sequential Access calls, but software-
// pipelines the common case: L1 set indices for a whole chunk are computed
// in a first pass so the tag loads overlap, then compared in a second pass.
// Misses fall through to the same outer-level walk Access uses.
//mehpt:hotpath
func (h *Hierarchy) AccessBatch(pas []addr.PhysAddr, lats []uint64) {
	const chunk = 64 // matches tlb.BatchWidth; local so the scratch is stack-sized
	l1 := &h.levels[0]
	l2 := &h.levels[1]
	ways := uint64(l1.ways)
	w2 := uint64(l2.ways)
	lat1, lat2 := l1.cfg.Latency, l2.cfg.Latency
	// Hoist the tag arrays (and geometry) into locals: the compiler cannot
	// prove the lats stores don't alias the tag slices, so field reloads
	// would otherwise follow every store in the loop.
	tags1, tags2 := l1.tags, l2.tags
	mask1, sets1 := l1.setMask, l1.sets
	mask2, sets2 := l2.setMask, l2.sets
	bits1, bits2 := l1.lineBits, l2.lineBits
	// Stats accumulate in registers and flush once per chunk: nothing
	// observes the counters mid-batch, so the end state is bit-identical.
	var hits1, miss1, hits2, miss2 uint64
	for len(pas) > 0 {
		n := len(pas)
		if n > chunk {
			n = chunk
		}
		var baseBuf [chunk]uint64
		var wantBuf [chunk]uint64
		for i, pa := range pas[:n] {
			ln := uint64(pa) >> bits1
			var si uint64
			if mask1 != 0 || sets1 == 1 {
				si = ln & mask1
			} else {
				si = ln % sets1
			}
			baseBuf[i] = si * ways
			wantBuf[i] = ln + 1
		}
		for i, pa := range pas[:n] {
			base, want := baseBuf[i], wantBuf[i]
			set := tags1[base : base+ways]
			hit := -1
			nv := len(set) // valid-entry count, reused by the inline refill
			for j, tag := range set {
				if tag == 0 {
					nv = j
					break
				}
				if tag == want {
					hit = j
					break
				}
			}
			if hit >= 0 {
				promote(set, hit)
				hits1++
				lats[i] = lat1
				continue
			}
			// Count the L1 miss exactly as Lookup would, then run the L2
			// probe inline — the dominant miss case — with the same LRU and
			// stats order as accessFromL1Miss. Deeper misses leave the fast
			// path.
			miss1++
			ln2 := uint64(pa) >> bits2
			var si2 uint64
			if mask2 != 0 || sets2 == 1 {
				si2 = ln2 & mask2
			} else {
				si2 = ln2 % sets2
			}
			set2 := tags2[si2*w2 : si2*w2+w2]
			want2 := ln2 + 1
			hit2 := -1
			for j, tag := range set2 {
				if tag == 0 {
					break
				}
				if tag == want2 {
					hit2 = j
					break
				}
			}
			if hit2 >= 0 {
				promote(set2, hit2)
				hits2++
				fillFront(set, want, nv) // inclusive refill of L1, as Fill would
				lats[i] = lat2
				continue
			}
			miss2++
			lats[i] = h.accessFromL2Miss(pa)
		}
		pas = pas[n:]
		lats = lats[n:]
	}
	l1.stats.Hits += hits1
	l1.stats.Misses += miss1
	l2.stats.Hits += hits2
	l2.stats.Misses += miss2
}

// AccessPT performs a page-walker memory access. Page-table lines are
// modeled as effectively uncached in the data hierarchy: hardware walkers do
// not allocate into the core's L1/L2, and in the paper's 8-core full-system
// environment the shared L3 is churned by seven other cores' traffic, so
// page-table lines rarely survive between walks. The dedicated translation
// caches (radix PWCs, cuckoo CWCs) are the structures that compensate —
// exactly why a four-access sequential radix walk is materially slower than
// a single hashed probe (Figure 9's mechanism, and Section I's point that
// tree walks cannot exploit memory-level parallelism).
//mehpt:hotpath
func (h *Hierarchy) AccessPT(pa addr.PhysAddr) uint64 {
	_ = pa
	h.dramHits++
	return h.dramLatency
}

// Peek returns the latency pa would see right now without touching state —
// used to price the parallel probes of a cuckoo walk, where only the
// winning probe should update LRU state meaningfully.
//mehpt:hotpath
func (h *Hierarchy) Peek(pa addr.PhysAddr) uint64 {
	for i := range h.levels {
		c := &h.levels[i]
		want := c.line(pa) + 1
		for _, tag := range c.set(want - 1) {
			if tag == 0 {
				break
			}
			if tag == want {
				return c.Latency()
			}
		}
	}
	return h.dramLatency
}

// DRAMAccesses returns the number of accesses that reached memory.
func (h *Hierarchy) DRAMAccesses() uint64 { return h.dramHits }

// Level returns cache level i (0 = L1), for stats inspection.
func (h *Hierarchy) Level(i int) *Cache { return &h.levels[i] }
