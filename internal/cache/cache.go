// Package cache models the data-cache hierarchy of the evaluated machine
// (Table III): private L1 and L2, a shared L3, and DRAM behind them. The
// model is latency-only: an access returns the round-trip cycles of the
// level that hits. Both workload data accesses and page-walk accesses go
// through it, so radix walks benefit from page-table locality and hashed
// walks pay for its absence — the first-order effect behind Figure 9.
package cache

import "repro/internal/addr"

// Config describes one cache level.
type Config struct {
	SizeBytes uint64
	Ways      int
	LineBytes uint64
	Latency   uint64 // round-trip cycles from the core on a hit
}

// Stats counts accesses for one level.
type Stats struct {
	Hits, Misses uint64
}

// Cache is one set-associative LRU cache level.
type Cache struct {
	cfg      Config
	sets     uint64
	lineBits uint
	tags     [][]uint64 // per-set tag stacks, MRU first; tag 0 means empty
	stats    Stats
}

// New creates a cache level. Sets are derived from size/ways/line; the set
// count need not be a power of two (Table III's 12-way L2 TLB layout made
// that a requirement elsewhere too).
func New(cfg Config) *Cache {
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / uint64(cfg.Ways)
	if sets == 0 {
		sets = 1
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.lineBits = 0
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineBits++
	}
	c.tags = make([][]uint64, sets)
	return c
}

// line returns the line number of pa.
func (c *Cache) line(pa addr.PhysAddr) uint64 { return uint64(pa) >> c.lineBits }

// Lookup probes the cache without filling, updating LRU on a hit.
func (c *Cache) Lookup(pa addr.PhysAddr) bool {
	ln := c.line(pa)
	set := c.tags[ln%c.sets]
	for i, tag := range set {
		if tag == ln+1 {
			copy(set[1:i+1], set[:i])
			set[0] = ln + 1
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Fill inserts pa's line, evicting the LRU victim if the set is full.
func (c *Cache) Fill(pa addr.PhysAddr) {
	ln := c.line(pa)
	si := ln % c.sets
	set := c.tags[si]
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = ln + 1
	c.tags[si] = set
}

// Latency returns the hit round-trip latency.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

// Stats returns the hit/miss counters.
func (c *Cache) Stats() Stats { return c.stats }

// Hierarchy is the full L1/L2/L3/DRAM stack.
type Hierarchy struct {
	levels      []*Cache
	dramLatency uint64
	dramHits    uint64
}

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig struct {
	L1, L2, L3  Config
	DRAMLatency uint64
}

// TableIII returns the paper's memory-system configuration: 32KB/8-way L1
// (2 cyc), 512KB/8-way L2 (16 cyc), 2MB/16-way L3 per core (56 cyc avg),
// 200-cycle DRAM, 64B lines.
func TableIII() HierarchyConfig {
	return HierarchyConfig{
		L1:          Config{SizeBytes: 32 * addr.KB, Ways: 8, LineBytes: 64, Latency: 2},
		L2:          Config{SizeBytes: 512 * addr.KB, Ways: 8, LineBytes: 64, Latency: 16},
		L3:          Config{SizeBytes: 2 * addr.MB, Ways: 16, LineBytes: 64, Latency: 56},
		DRAMLatency: 200,
	}
}

// NewHierarchy builds the stack.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		levels:      []*Cache{New(cfg.L1), New(cfg.L2), New(cfg.L3)},
		dramLatency: cfg.DRAMLatency,
	}
}

// Access performs one memory access and returns its round-trip latency. On
// a miss the line is filled into every level (inclusive hierarchy).
func (h *Hierarchy) Access(pa addr.PhysAddr) uint64 {
	for i, c := range h.levels {
		if c.Lookup(pa) {
			for j := 0; j < i; j++ {
				h.levels[j].Fill(pa)
			}
			return c.Latency()
		}
	}
	for _, c := range h.levels {
		c.Fill(pa)
	}
	h.dramHits++
	return h.dramLatency
}

// AccessPT performs a page-walker memory access. Page-table lines are
// modeled as effectively uncached in the data hierarchy: hardware walkers do
// not allocate into the core's L1/L2, and in the paper's 8-core full-system
// environment the shared L3 is churned by seven other cores' traffic, so
// page-table lines rarely survive between walks. The dedicated translation
// caches (radix PWCs, cuckoo CWCs) are the structures that compensate —
// exactly why a four-access sequential radix walk is materially slower than
// a single hashed probe (Figure 9's mechanism, and Section I's point that
// tree walks cannot exploit memory-level parallelism).
func (h *Hierarchy) AccessPT(pa addr.PhysAddr) uint64 {
	_ = pa
	h.dramHits++
	return h.dramLatency
}

// Peek returns the latency pa would see right now without touching state —
// used to price the parallel probes of a cuckoo walk, where only the
// winning probe should update LRU state meaningfully.
func (h *Hierarchy) Peek(pa addr.PhysAddr) uint64 {
	for _, c := range h.levels {
		ln := c.line(pa)
		for _, tag := range c.tags[ln%c.sets] {
			if tag == ln+1 {
				return c.Latency()
			}
		}
	}
	return h.dramLatency
}

// DRAMAccesses returns the number of accesses that reached memory.
func (h *Hierarchy) DRAMAccesses() uint64 { return h.dramHits }

// Level returns cache level i (0 = L1), for stats inspection.
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }
