package cache

import "fmt"

// CacheState is one level's tag array (verbatim, preserving LRU order) and
// counters.
type CacheState struct {
	Tags  []uint64
	Stats Stats
}

// HierarchyState is the serializable form of a Hierarchy.
type HierarchyState struct {
	Levels   [3]CacheState
	DRAMHits uint64
}

// State returns a deep copy of the hierarchy's tags and counters.
func (h *Hierarchy) State() HierarchyState {
	st := HierarchyState{DRAMHits: h.dramHits}
	for i := range h.levels {
		c := &h.levels[i]
		st.Levels[i] = CacheState{
			Tags:  append([]uint64(nil), c.tags...),
			Stats: c.stats,
		}
	}
	return st
}

// RestoreHierarchy rebuilds a hierarchy from recorded state. cfg must match
// the captured hierarchy's geometry — the tag arrays are restored verbatim,
// so a size mismatch is a corruption, not a migration.
func RestoreHierarchy(cfg HierarchyConfig, st HierarchyState) (*Hierarchy, error) {
	h := NewHierarchy(cfg)
	for i := range h.levels {
		c := &h.levels[i]
		if len(st.Levels[i].Tags) != len(c.tags) {
			return nil, fmt.Errorf("cache: level %d has %d tag slots, snapshot carries %d",
				i, len(c.tags), len(st.Levels[i].Tags))
		}
		copy(c.tags, st.Levels[i].Tags)
		c.stats = st.Levels[i].Stats
	}
	h.dramHits = st.DRAMHits
	return h, nil
}
