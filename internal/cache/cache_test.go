package cache

import (
	"testing"

	"repro/internal/addr"
)

func TestHitAfterFill(t *testing.T) {
	c := New(Config{SizeBytes: 4 * addr.KB, Ways: 4, LineBytes: 64, Latency: 2})
	pa := addr.PhysAddr(0x1000)
	if c.Lookup(pa) {
		t.Fatal("cold lookup hit")
	}
	c.Fill(pa)
	if !c.Lookup(pa) {
		t.Fatal("lookup after fill missed")
	}
	// Same line, different byte.
	if !c.Lookup(pa + 63) {
		t.Fatal("same-line lookup missed")
	}
	if c.Lookup(pa + 64) {
		t.Fatal("next-line lookup hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, 2 sets of 64B lines = 256B cache.
	c := New(Config{SizeBytes: 256, Ways: 2, LineBytes: 64, Latency: 1})
	// Three lines mapping to the same set (stride = sets*64 = 128).
	a, b, d := addr.PhysAddr(0), addr.PhysAddr(128), addr.PhysAddr(256)
	c.Fill(a)
	c.Fill(b)
	c.Lookup(a) // make a MRU
	c.Fill(d)   // evicts b (LRU)
	if !c.Lookup(a) {
		t.Error("MRU line evicted")
	}
	if c.Lookup(b) {
		t.Error("LRU line survived")
	}
	if !c.Lookup(d) {
		t.Error("new line missing")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(TableIII())
	pa := addr.PhysAddr(0x40000)
	if lat := h.Access(pa); lat != 200 {
		t.Errorf("cold access latency = %d, want 200 (DRAM)", lat)
	}
	if lat := h.Access(pa); lat != 2 {
		t.Errorf("hot access latency = %d, want 2 (L1)", lat)
	}
	if h.DRAMAccesses() != 1 {
		t.Errorf("DRAM accesses = %d", h.DRAMAccesses())
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(TableIII())
	target := addr.PhysAddr(0)
	h.Access(target)
	// Evict target from L1 (32KB, 8w, 64 sets): touch 8 conflicting lines
	// at stride 64*64 = 4KB.
	for i := 1; i <= 8; i++ {
		h.Access(target + addr.PhysAddr(i*32*1024))
	}
	lat := h.Access(target)
	if lat != 16 {
		t.Errorf("latency after L1 eviction = %d, want 16 (L2)", lat)
	}
}

func TestPeekDoesNotMutate(t *testing.T) {
	h := NewHierarchy(TableIII())
	pa := addr.PhysAddr(0x9000)
	if got := h.Peek(pa); got != 200 {
		t.Errorf("cold Peek = %d, want 200", got)
	}
	// Peek must not fill.
	if got := h.Peek(pa); got != 200 {
		t.Errorf("second Peek = %d, want 200 (no fill)", got)
	}
	h.Access(pa)
	if got := h.Peek(pa); got != 2 {
		t.Errorf("Peek after access = %d, want 2", got)
	}
}

func TestStatsCount(t *testing.T) {
	h := NewHierarchy(TableIII())
	h.Access(0x1000)
	h.Access(0x1000)
	l1 := h.Level(0).Stats()
	if l1.Hits != 1 || l1.Misses != 1 {
		t.Errorf("L1 stats = %+v", l1)
	}
}
