package cache

import (
	"testing"

	"repro/internal/addr"
)

// TestAccessHitAllocFree guards the data-access path: a warm hierarchy
// access (L1 hit) must never allocate.
func TestAccessHitAllocFree(t *testing.T) {
	h := NewHierarchy(TableIII())
	pa := addr.PhysAddr(0x4000)
	h.Access(pa)
	if n := testing.AllocsPerRun(1000, func() {
		if lat := h.Access(pa); lat == 0 {
			t.Fatal("zero latency")
		}
	}); n != 0 {
		t.Errorf("warm Access allocates %v objects per call", n)
	}
}

// TestAccessMissAllocFree: a miss walks all three levels and fills each via
// the flat tag arrays — still no allocation, even while evicting.
func TestAccessMissAllocFree(t *testing.T) {
	h := NewHierarchy(TableIII())
	var pa addr.PhysAddr
	if n := testing.AllocsPerRun(1000, func() {
		pa += 64
		h.Access(pa)
		h.AccessPT(pa + 1<<30)
		h.Peek(pa)
	}); n != 0 {
		t.Errorf("cold Access/AccessPT/Peek allocates %v objects per call", n)
	}
}
