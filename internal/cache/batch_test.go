package cache

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// batchTestPAs builds a physical-address stream mixing L1-resident reuse,
// an L2/L3-sized working set, and DRAM-wide strides, so every lane of the
// batched pipeline (L1 hit, inline L2 probe, outer-level walk, DRAM fill)
// is exercised.
func batchTestPAs(seed int64, n int) []addr.PhysAddr {
	rng := rand.New(rand.NewSource(seed))
	pas := make([]addr.PhysAddr, n)
	for i := range pas {
		switch rng.Intn(4) {
		case 0:
			pas[i] = addr.PhysAddr(rng.Intn(32)) * 64 // hot lines
		case 1:
			pas[i] = addr.PhysAddr(rng.Intn(1<<12)) * 64 // L2/L3 working set
		default:
			pas[i] = addr.PhysAddr(rng.Intn(1<<22)) * 64 // DRAM-heavy
		}
	}
	return pas
}

// TestAccessBatchMatchesScalar is the batched data path's differential twin:
// AccessBatch over arbitrary (including zero, single, and non-multiple-of-
// chunk) segment lengths must produce the same latencies, hit/miss counters,
// and DRAM count as sequential Access calls on an identical hierarchy.
func TestAccessBatchMatchesScalar(t *testing.T) {
	scalar := NewHierarchy(TableIII())
	batch := NewHierarchy(TableIII())
	pas := batchTestPAs(3, 6000)
	segments := []int{0, 1, 5, 31, 64, 97, 200, 1}

	lats := make([]uint64, len(pas))
	pos, seg := 0, 0
	for pos < len(pas) {
		k := segments[seg%len(segments)]
		seg++
		if k > len(pas)-pos {
			k = len(pas) - pos
		}
		batch.AccessBatch(pas[pos:pos+k], lats[pos:pos+k])
		pos += k
	}
	for i, pa := range pas {
		want := scalar.Access(pa)
		if lats[i] != want {
			t.Fatalf("access %d (pa %#x): batch latency %d, scalar %d", i, pa, lats[i], want)
		}
	}
	for lvl := 0; lvl < 3; lvl++ {
		bs, ss := batch.Level(lvl).Stats(), scalar.Level(lvl).Stats()
		if bs != ss {
			t.Errorf("L%d stats diverge: batch %+v, scalar %+v", lvl+1, bs, ss)
		}
	}
	if batch.DRAMAccesses() != scalar.DRAMAccesses() {
		t.Errorf("DRAM accesses: batch %d, scalar %d", batch.DRAMAccesses(), scalar.DRAMAccesses())
	}
	// The warmed states must stay aligned, not just the counters: replaying
	// the stream once more must agree element-wise again.
	for _, pa := range pas[:500] {
		var one [1]uint64
		batch.AccessBatch([]addr.PhysAddr{pa}, one[:])
		if want := scalar.Access(pa); one[0] != want {
			t.Fatalf("post-warm access (pa %#x): batch %d, scalar %d", pa, one[0], want)
		}
	}
}

// TestAccessBatchAllocFree guards the batched data path: the chunk scratch
// is stack-sized and the stats flush is scalar, so a full-width batch must
// not allocate.
func TestAccessBatchAllocFree(t *testing.T) {
	h := NewHierarchy(TableIII())
	pas := batchTestPAs(9, 64)
	lats := make([]uint64, len(pas))
	if n := testing.AllocsPerRun(1000, func() {
		h.AccessBatch(pas, lats)
	}); n != 0 {
		t.Errorf("AccessBatch allocates %v objects per call", n)
	}
}
