// Package nested models two-dimensional (virtualized) address translation:
// a guest page table maps guest-virtual to guest-physical, and a host page
// table maps guest-physical to host-physical. Section V-C of the paper
// argues ME-HPT is even cheaper under virtualization (guest HPTs are spread
// over host pages, so no guest L2P table exists, and the host L2P is not
// saved on guest switches); the underlying performance story is the one
// quantified here and in the nested-ECPT follow-up the paper cites [79]:
//
//   - A nested radix walk translates every guest page-table access through
//     the host tree: (L+1) guest-level accesses × (L+1) host accesses − 1,
//     i.e. up to 24 dependent accesses for two 4-level trees.
//   - A nested hashed walk needs one guest probe plus one host probe (plus
//     the final data translation), independent of address-space size.
//
// The model composes two page tables with a nested TLB (gVA→hPA) and
// charges host translations for every guest-structure access a walk makes.
package nested

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/cwc"
	"repro/internal/hashfn"
	"repro/internal/pt"
	"repro/internal/radix"
	"repro/internal/tlb"
)

// HostTranslator is the host side of the 2D walk: it resolves a
// guest-physical address and reports the walk's memory accesses.
type HostTranslator interface {
	// TranslateGPA resolves a guest-physical address, returning the
	// host-physical address, the host-walk memory accesses (host-physical),
	// and whether the translation exists.
	TranslateGPA(gpa addr.PhysAddr) (addr.PhysAddr, []addr.PhysAddr, bool)
}

// RadixHost adapts a host radix tree.
type RadixHost struct {
	PT *radix.PageTable
}

// TranslateGPA walks the host tree for gpa (treated as a host-virtual
// address of the guest's "physical" space, the standard nested layout).
func (h *RadixHost) TranslateGPA(gpa addr.PhysAddr) (addr.PhysAddr, []addr.PhysAddr, bool) {
	//mehpt:allow addrspace -- nested paging: the gPA is, by definition, the host walk's virtual input
	pas, tr, ok := h.PT.WalkAddrs(addr.VirtAddr(gpa))
	if !ok {
		return 0, pas, false
	}
	return addr.Translate(addr.VirtAddr(gpa), tr.PPN, tr.Size), pas, true //mehpt:allow addrspace -- same gPA-as-host-VA crossing as above
}

// HPTHost adapts a host hashed page table (ECPT or ME-HPT).
type HPTHost struct {
	PT interface {
		Translate(va addr.VirtAddr) (pt.Translation, bool)
		WayOf(va addr.VirtAddr, s addr.PageSize) (int, bool)
		WayProbeAddr(va addr.VirtAddr, s addr.PageSize, way int) addr.PhysAddr
	}
}

// TranslateGPA probes the host HPT: a single targeted access.
func (h *HPTHost) TranslateGPA(gpa addr.PhysAddr) (addr.PhysAddr, []addr.PhysAddr, bool) {
	va := addr.VirtAddr(gpa) //mehpt:allow addrspace -- nested paging: the gPA is, by definition, the host walk's virtual input
	tr, ok := h.PT.Translate(va)
	if !ok {
		return 0, nil, false
	}
	way, _ := h.PT.WayOf(va, tr.Size)
	probe := h.PT.WayProbeAddr(va, tr.Size, way)
	return addr.Translate(va, tr.PPN, tr.Size), []addr.PhysAddr{probe}, true
}

// GuestWalker is the guest side: it reports the guest-physical addresses a
// guest walk touches and the final guest-physical translation.
type GuestWalker interface {
	WalkGVA(gva addr.VirtAddr) (accesses []addr.PhysAddr, gpa addr.PhysAddr, ok bool)
}

// RadixGuest adapts a guest radix tree.
type RadixGuest struct {
	PT *radix.PageTable
}

// WalkGVA performs the guest tree walk.
func (g *RadixGuest) WalkGVA(gva addr.VirtAddr) ([]addr.PhysAddr, addr.PhysAddr, bool) {
	pas, tr, ok := g.PT.WalkAddrs(gva)
	if !ok {
		return pas, 0, false
	}
	return pas, addr.Translate(gva, tr.PPN, tr.Size), true
}

// HPTGuest adapts a guest hashed page table.
type HPTGuest struct {
	PT interface {
		Translate(va addr.VirtAddr) (pt.Translation, bool)
		WayOf(va addr.VirtAddr, s addr.PageSize) (int, bool)
		WayProbeAddr(va addr.VirtAddr, s addr.PageSize, way int) addr.PhysAddr
	}
}

// WalkGVA probes the guest HPT once.
func (g *HPTGuest) WalkGVA(gva addr.VirtAddr) ([]addr.PhysAddr, addr.PhysAddr, bool) {
	tr, ok := g.PT.Translate(gva)
	if !ok {
		return nil, 0, false
	}
	way, _ := g.PT.WayOf(gva, tr.Size)
	probe := g.PT.WayProbeAddr(gva, tr.Size, way)
	return []addr.PhysAddr{probe}, addr.Translate(gva, tr.PPN, tr.Size), true
}

// Stats counts nested-translation behaviour.
type Stats struct {
	Translations uint64
	TLBHits      uint64
	Walks        uint64
	WalkCycles   uint64
	WalkAccesses uint64 // memory accesses performed by 2D walks
	Faults       uint64
}

// MMU performs two-dimensional translation with a nested TLB that caches
// complete gVA→hPA translations, as real hardware does.
type MMU struct {
	guest GuestWalker
	host  HostTranslator
	mem   *cache.Hierarchy
	ntlb  *tlb.TLB
	cwc   *cwc.Walker // charged for HPT guests; nil for radix guests
	stats Stats
}

// NewMMU builds a nested MMU. Pass hashedGuest=true when the guest walker
// is an HPT so the CWC/hash latencies are charged instead of PWC latency.
func NewMMU(guest GuestWalker, host HostTranslator, mem *cache.Hierarchy, hashedGuest bool) *MMU {
	m := &MMU{
		guest: guest,
		host:  host,
		mem:   mem,
		ntlb:  tlb.New(tlb.Config{Entries: 1024, Ways: 8, Latency: 2}),
	}
	if hashedGuest {
		m.cwc = cwc.New()
	}
	return m
}

// Stats returns the counters.
func (m *MMU) Stats() Stats { return m.stats }

// Translate resolves a guest-virtual address to host-physical, charging the
// full two-dimensional walk on a nested-TLB miss.
func (m *MMU) Translate(gva addr.VirtAddr) (addr.PhysAddr, uint64, bool) {
	m.stats.Translations++
	vpn := gva.PageNumber(addr.Page4K)
	if _, ok := m.ntlb.Lookup(vpn); ok {
		m.stats.TLBHits++
		// The nested TLB holds the complete translation; re-derive the hPA
		// functionally.
		if hpa, _, ok := m.resolve(gva); ok {
			return hpa, m.ntlb.Latency(), true
		}
	}
	m.stats.Walks++
	hpa, cycles, ok := m.walk(gva)
	m.stats.WalkCycles += cycles
	if !ok {
		m.stats.Faults++
		return 0, cycles, false
	}
	m.ntlb.Insert(vpn, 0)
	return hpa, cycles, true
}

// resolve recomputes gVA→hPA without charging cycles (TLB-hit path).
func (m *MMU) resolve(gva addr.VirtAddr) (addr.PhysAddr, uint64, bool) {
	_, gpa, ok := m.guest.WalkGVA(gva)
	if !ok {
		return 0, 0, false
	}
	hpa, _, ok := m.host.TranslateGPA(gpa)
	return hpa, 0, ok
}

// walk performs the priced 2D walk: every guest access is itself
// host-translated, then the final gPA is host-translated too.
func (m *MMU) walk(gva addr.VirtAddr) (addr.PhysAddr, uint64, bool) {
	var cycles uint64
	if m.cwc != nil {
		// Hashed guest: hash + CWC, as in the native walk.
		_, _, lat := m.cwc.Probe(gva)
		if lat < hashfn.Latency {
			lat = hashfn.Latency
		}
		cycles += lat
	} else {
		cycles += 4 // PWC probe latency
	}
	guestAccesses, gpa, ok := m.guest.WalkGVA(gva)
	for _, ga := range guestAccesses {
		// Each guest-structure access is a guest-physical address that the
		// hardware must host-translate before touching memory.
		hpa, hostAccesses, hok := m.host.TranslateGPA(ga)
		if !hok {
			return 0, cycles, false
		}
		for _, ha := range hostAccesses {
			cycles += m.mem.AccessPT(ha)
			m.stats.WalkAccesses++
		}
		cycles += m.mem.AccessPT(hpa)
		m.stats.WalkAccesses++
	}
	if !ok {
		return 0, cycles, false
	}
	// Final: translate the leaf gPA to hPA.
	hpa, hostAccesses, hok := m.host.TranslateGPA(gpa)
	if !hok {
		return 0, cycles, false
	}
	for _, ha := range hostAccesses {
		cycles += m.mem.AccessPT(ha)
		m.stats.WalkAccesses++
	}
	return hpa, cycles, true
}
