package nested

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/radix"
)

// buildNested wires a guest and host of the given kinds with n guest pages
// mapped at stride pages apart, and identity-style host mappings covering
// all guest-physical memory the guest uses.
func buildNested(t *testing.T, hashed bool, pages int, stridePages uint64) (*MMU, []addr.VirtAddr) {
	t.Helper()
	hostMem := phys.NewMemory(4 * addr.GB)
	hostAlloc := phys.NewAllocator(hostMem, 0)
	guestMem := phys.NewMemory(2 * addr.GB)
	guestAlloc := phys.NewAllocator(guestMem, 0)

	mem := cache.NewHierarchy(cache.TableIII())
	var guest GuestWalker
	var host HostTranslator
	var mapGuest func(vpn addr.VPN, ppn addr.PPN) error
	var hostPT interface {
		Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error)
	}

	if hashed {
		gcfg := mehpt.DefaultConfig(1)
		gcfg.Rand = rand.New(rand.NewSource(1))
		gpt, err := mehpt.NewPageTable(guestAlloc, gcfg)
		if err != nil {
			t.Fatal(err)
		}
		hcfg := mehpt.DefaultConfig(2)
		hcfg.Rand = rand.New(rand.NewSource(2))
		hpt, err := mehpt.NewPageTable(hostAlloc, hcfg)
		if err != nil {
			t.Fatal(err)
		}
		guest, host, hostPT = &HPTGuest{PT: gpt}, &HPTHost{PT: hpt}, hpt
		mapGuest = func(vpn addr.VPN, ppn addr.PPN) error {
			_, err := gpt.Map(vpn, addr.Page4K, ppn)
			return err
		}
	} else {
		gpt, err := radix.NewPageTable(guestAlloc)
		if err != nil {
			t.Fatal(err)
		}
		hpt, err := radix.NewPageTable(hostAlloc)
		if err != nil {
			t.Fatal(err)
		}
		guest, host, hostPT = &RadixGuest{PT: gpt}, &RadixHost{PT: hpt}, hpt
		mapGuest = func(vpn addr.VPN, ppn addr.PPN) error {
			_, err := gpt.Map(vpn, addr.Page4K, ppn)
			return err
		}
	}

	// Host: map all 2GB of guest-physical space 1:1-ish so every gPA
	// (data and guest page-table frames) resolves.
	for g := addr.VPN(0); g < 1<<19; g += 1 {
		if _, err := hostPT.Map(g, addr.Page4K, addr.PPN(g)+0x100000); err != nil {
			t.Fatal(err)
		}
	}

	var vas []addr.VirtAddr
	base := addr.VirtAddr(0x7000_0000_0000)
	for i := 0; i < pages; i++ {
		va := base + addr.VirtAddr(uint64(i)*stridePages*4096)
		if err := mapGuest(va.PageNumber(addr.Page4K), addr.PPN(1000+i)); err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}
	return NewMMU(guest, host, mem, hashed), vas
}

func TestNestedTranslateBasics(t *testing.T) {
	m, vas := buildNested(t, false, 16, 1)
	hpa, cycles, ok := m.Translate(vas[0])
	if !ok {
		t.Fatal("nested translation failed")
	}
	if cycles == 0 || hpa == 0 {
		t.Errorf("hpa=%#x cycles=%d", hpa, cycles)
	}
	// Second access: nested TLB hit, far cheaper.
	_, cycles2, ok := m.Translate(vas[0])
	if !ok || cycles2 >= cycles {
		t.Errorf("nested TLB hit %d not cheaper than walk %d", cycles2, cycles)
	}
	st := m.Stats()
	if st.Walks != 1 || st.TLBHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestNestedAccessCounts: the paper-cited blow-up — a nested radix walk
// performs up to (L+1)² − 1 = 24 accesses, a nested hashed walk a handful.
func TestNestedAccessCounts(t *testing.T) {
	rm, rvas := buildNested(t, false, 64, 2048) // far apart: no PWC help
	hm, hvas := buildNested(t, true, 64, 2048)
	for i := range rvas {
		rm.Translate(rvas[i])
		hm.Translate(hvas[i])
	}
	rAvg := float64(rm.Stats().WalkAccesses) / float64(rm.Stats().Walks)
	hAvg := float64(hm.Stats().WalkAccesses) / float64(hm.Stats().Walks)
	if rAvg < 15 || rAvg > 25 {
		t.Errorf("nested radix walk = %.1f accesses, want ≈24 (2D 4-level)", rAvg)
	}
	if hAvg > 5 {
		t.Errorf("nested hashed walk = %.1f accesses, want ≤5", hAvg)
	}
	if hAvg >= rAvg/3 {
		t.Errorf("nested hashed (%.1f) not ≪ nested radix (%.1f)", hAvg, rAvg)
	}
}

func TestNestedWalkCyclesOrdering(t *testing.T) {
	rm, rvas := buildNested(t, false, 32, 2048)
	hm, hvas := buildNested(t, true, 32, 2048)
	var rc, hc uint64
	for i := range rvas {
		_, c, ok := rm.Translate(rvas[i])
		if !ok {
			t.Fatal("radix nested failed")
		}
		rc += c
		_, c, ok = hm.Translate(hvas[i])
		if !ok {
			t.Fatal("hashed nested failed")
		}
		hc += c
	}
	if hc >= rc {
		t.Errorf("nested hashed walks (%d cyc) not cheaper than nested radix (%d cyc)", hc, rc)
	}
}

func TestNestedFault(t *testing.T) {
	m, _ := buildNested(t, false, 4, 1)
	if _, _, ok := m.Translate(0xDEAD_0000_0000); ok {
		t.Error("unmapped guest VA translated")
	}
	if m.Stats().Faults == 0 {
		t.Error("fault not counted")
	}
}
