package stats

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRecorderRoundTrip(t *testing.T) {
	type row struct {
		App   string  `json:"app"`
		Value float64 `json:"value"`
	}
	var r Recorder
	r.Record("fig8", []row{{"BFS", 1.5}, {"GUPS", 2.25}})
	r.Record("meta", map[string]int{"scale": 1})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Sections []struct {
			Name string          `json:"name"`
			Rows json.RawMessage `json:"rows"`
		} `json:"sections"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Sections) != 2 || doc.Sections[0].Name != "fig8" || doc.Sections[1].Name != "meta" {
		t.Fatalf("sections = %+v", doc.Sections)
	}
	var rows []row
	if err := json.Unmarshal(doc.Sections[0].Rows, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].App != "GUPS" || rows[1].Value != 2.25 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record("s", j)
			}
		}()
	}
	wg.Wait()
	if got := len(r.Sections()); got != 1600 {
		t.Fatalf("sections = %d, want 1600", got)
	}
}
