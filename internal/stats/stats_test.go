package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// TestHistogramMergeOrderIndependent pins the fix for a real determinism
// bug: Merge used to accumulate sum in map iteration order, and float
// addition is not associative, so bit-identical inputs produced
// run-to-run drift in Mean(). The value mix below (one huge value plus
// many small ones) makes the rounding order-sensitive: folding the small
// values after the huge one loses them entirely.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	var src Histogram
	src.Add(1 << 60)
	for i := 0; i < 1000; i++ {
		src.Add(1)
	}
	for i := 0; i < 500; i++ {
		src.Add(i * 7)
	}

	var wantSum float64
	for _, v := range src.Values() {
		wantSum += float64(v) * float64(src.Count(v))
	}
	wantMean := wantSum / float64(src.Total())

	for trial := 0; trial < 8; trial++ {
		var h Histogram
		h.Merge(&src)
		if got := h.Mean(); math.Float64bits(got) != math.Float64bits(wantMean) {
			t.Fatalf("trial %d: merged Mean() = %x, want bit-identical %x (ascending fold)",
				trial, math.Float64bits(got), math.Float64bits(wantMean))
		}
		if h.Total() != src.Total() {
			t.Fatalf("trial %d: merged Total() = %d, want %d", trial, h.Total(), src.Total())
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); !almostEqual(g, 4) {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
	if g := GeoMean([]float64{5}); !almostEqual(g, 5) {
		t.Errorf("GeoMean(5) = %v, want 5", g)
	}
	if g := GeoMean([]float64{1, 0, 4}); g != 0 {
		t.Errorf("GeoMean with zero = %v, want 0", g)
	}
	if g := GeoMean([]float64{1, -1}); !math.IsNaN(g) {
		t.Errorf("GeoMean with negative = %v, want NaN", g)
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// GeoMean lies between min and max for positive inputs.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); !almostEqual(m, 2) {
		t.Errorf("Mean = %v, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 0; i < 3; i++ {
		h.Add(0)
	}
	h.Add(2)
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if h.Count(0) != 3 || h.Count(2) != 1 || h.Count(1) != 0 {
		t.Errorf("counts wrong: %v %v %v", h.Count(0), h.Count(1), h.Count(2))
	}
	if p := h.Probability(0); !almostEqual(p, 0.75) {
		t.Errorf("P(0) = %v, want 0.75", p)
	}
	if m := h.Mean(); !almostEqual(m, 0.5) {
		t.Errorf("Mean = %v, want 0.5", m)
	}
	if h.Max() != 2 {
		t.Errorf("Max = %d, want 2", h.Max())
	}
	vs := h.Values()
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 2 {
		t.Errorf("Values = %v", vs)
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Probability(1) != 0 {
		t.Error("zero-value histogram should report zeros")
	}
	if s := h.String(); s != "" {
		t.Errorf("empty histogram String = %q", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(1)
	a.Add(1)
	b.Add(2)
	a.Merge(&b)
	if a.Total() != 3 || a.Count(1) != 2 || a.Count(2) != 1 {
		t.Errorf("merge wrong: total=%d", a.Total())
	}
	if !almostEqual(a.Mean(), 4.0/3.0) {
		t.Errorf("merged mean = %v", a.Mean())
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{512, "512B"},
		{8 << 10, "8KB"},
		{1 << 20, "1MB"},
		{64 << 20, "64MB"},
		{3 << 30, "3GB"},
		{6 << 40, "6TB"},
		{1536, "1.5KB"},
		{(1 << 20) + (1 << 19), "1.5MB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
