package stats

import "runtime/metrics"

// allocMetric is the cumulative heap-allocation count maintained by the
// runtime. It is monotonic and process-wide, which is exactly what a
// steady-state "allocs per simulated access" meter needs: after the
// pipeline's warm-up the delta should stay near zero no matter how many
// accesses replay.
const allocMetric = "/gc/heap/allocs:objects"

// AllocMeter measures heap-object allocation across a region of work via
// runtime/metrics. It backs the experiment CLI's allocs-per-access counter,
// the coarse online complement to the tier-2 testing.AllocsPerRun guards:
// the guards pin individual hot paths to zero allocations, the meter shows
// whether the deployed pipeline as a whole stays allocation-free.
//
// The counter is process-wide, so concurrent non-simulation work (JSON
// encoding, progress printing) is included; treat small per-access values
// as noise and large ones as a regression signal.
type AllocMeter struct {
	sample [1]metrics.Sample
	start  uint64
}

// NewAllocMeter returns a meter whose baseline is the current allocation
// count.
func NewAllocMeter() *AllocMeter {
	m := &AllocMeter{}
	m.sample[0].Name = allocMetric
	m.Reset()
	return m
}

// Reset moves the baseline to the current allocation count.
func (m *AllocMeter) Reset() { m.start = m.read() }

func (m *AllocMeter) read() uint64 {
	metrics.Read(m.sample[:])
	if m.sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return m.sample[0].Value.Uint64()
}

// Allocs returns the heap objects allocated process-wide since the last
// Reset.
func (m *AllocMeter) Allocs() uint64 { return m.read() - m.start }

// PerAccess returns Allocs divided by the given access count (0 when no
// accesses ran).
func (m *AllocMeter) PerAccess(accesses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(m.Allocs()) / float64(accesses)
}

// AllocMeterRow is the JSON row RecordAllocMeter emits.
type AllocMeterRow struct {
	Allocs          uint64  `json:"allocs"`
	Accesses        uint64  `json:"accesses"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
}

// RecordAllocMeter appends an "alloc_meter" section with the meter's current
// reading over the given access count. The section's values are machine-
// dependent (GC timing, concurrent work), so fingerprint-stable outputs must
// not include it — the CLI prints the meter to stdout instead of recording
// it by default.
func (r *Recorder) RecordAllocMeter(m *AllocMeter, accesses uint64) {
	r.Record("alloc_meter", AllocMeterRow{
		Allocs:          m.Allocs(),
		Accesses:        accesses,
		AllocsPerAccess: m.PerAccess(accesses),
	})
}
