package stats

import (
	"encoding/json"
	"io"
	"sync"
)

// Recorder collects named experiment outputs (the typed row slices the
// drivers return) and writes them as one machine-readable JSON document, so
// a suite run can be post-processed (plotting, regression diffing) without
// re-parsing the human-readable tables. The zero value is ready to use and
// safe for concurrent Record calls.
type Recorder struct {
	mu       sync.Mutex
	sections []Section
}

// Section is one named block of results.
type Section struct {
	Name string `json:"name"`
	Rows any    `json:"rows"`
}

// Record appends a named section. rows is typically a slice of the driver's
// row structs; it must be json-marshalable. Sections keep insertion order.
func (r *Recorder) Record(name string, rows any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sections = append(r.sections, Section{Name: name, Rows: rows})
}

// Sections returns the recorded sections in insertion order.
func (r *Recorder) Sections() []Section {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Section(nil), r.sections...)
}

// WriteJSON emits the recorded sections as an indented JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Sections []Section `json:"sections"`
	}{Sections: r.sections})
}
