package stats_test

// The -json Recorder document is the artifact the determinism guarantee
// ultimately protects: DESIGN.md promises that a suite run produces
// byte-identical machine-readable output across runs and worker counts.
// These tests pin both halves of that promise — the encoding itself
// (golden file) and the end-to-end byte stability of a real experiment
// driver fanned out over different worker pools.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteJSONGolden pins the exact byte encoding of the Recorder
// document (section order, field order, indentation, trailing newline).
// Synthetic rows keep the golden file independent of the simulator's
// numeric output, so it only changes when the encoder itself does.
func TestWriteJSONGolden(t *testing.T) {
	type row struct {
		App     string  `json:"app"`
		Speedup float64 `json:"speedup"`
		Bytes   uint64  `json:"bytes"`
	}
	var r stats.Recorder
	r.Record("fig9", []row{
		{App: "BFS", Speedup: 1.28, Bytes: 9 << 30},
		{App: "GUPS", Speedup: 1.23, Bytes: 64 << 30},
	})
	r.Record("notes", map[string]string{"seed": "42"})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "recorder_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("WriteJSON output drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestJSONByteStableAcrossRunsAndWorkers drives a real experiment matrix
// (Table I) through the Recorder at 1 and 8 workers, twice at each, and
// requires the four JSON documents to be byte-identical.
func TestJSONByteStableAcrossRunsAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real population experiments")
	}
	encode := func(workers int) []byte {
		o := experiments.TestOptions()
		o.Scale = 512 // smaller footprints: stability, not magnitude, is under test
		o.Parallel = workers
		var rec stats.Recorder
		rec.Record("table1", experiments.Table1(o))
		var buf bytes.Buffer
		if err := rec.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := encode(1)
	for name, got := range map[string][]byte{
		"serial rerun":     encode(1),
		"parallel 8":       encode(8),
		"parallel 8 rerun": encode(8),
	} {
		if !bytes.Equal(base, got) {
			t.Errorf("%s: JSON output differs from the serial baseline", name)
		}
	}
}
