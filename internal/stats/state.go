package stats

// HistogramState is the serializable form of a Histogram, used by the
// checkpoint/restore layer (internal/snapshot callers) to carry histogram
// contents across a crash.
type HistogramState struct {
	Counts map[int]uint64
	Total  uint64
	Sum    float64
}

// State returns a deep copy of the histogram's contents.
func (h *Histogram) State() HistogramState {
	st := HistogramState{Total: h.total, Sum: h.sum}
	if len(h.counts) > 0 {
		st.Counts = make(map[int]uint64, len(h.counts))
		for v, c := range h.counts {
			st.Counts[v] = c
		}
	}
	return st
}

// Restore replaces the histogram's contents with the recorded state.
func (h *Histogram) Restore(st HistogramState) {
	h.counts = nil
	if len(st.Counts) > 0 {
		h.counts = make(map[int]uint64, len(st.Counts))
		for v, c := range st.Counts {
			h.counts[v] = c
		}
	}
	h.total = st.Total
	h.sum = st.Sum
}
