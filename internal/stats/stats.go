// Package stats provides the small statistical helpers shared by the
// experiment drivers: histograms, geometric means, and running counters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of xs. It returns 0 for an empty slice
// and NaN if any value is negative.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x < 0 {
			return math.NaN()
		}
		if x == 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram counts integer-valued observations (e.g. the number of cuckoo
// re-insertions per insert, Figure 16). The zero value is ready to use.
type Histogram struct {
	counts map[int]uint64
	total  uint64
	sum    float64
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	if h.counts == nil {
		h.counts = make(map[int]uint64)
	}
	h.counts[v]++
	h.total++
	h.sum += float64(v)
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of observations with value v.
func (h *Histogram) Count(v int) uint64 { return h.counts[v] }

// Probability returns the empirical probability of value v.
func (h *Histogram) Probability(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observed value, or 0 if empty.
func (h *Histogram) Max() int {
	max := 0
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Values returns the observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Merge adds all observations from other into h. Values are folded in
// ascending order: float addition is not associative, so accumulating sum
// in map iteration order would make the merged statistics differ between
// otherwise identical runs.
func (h *Histogram) Merge(other *Histogram) {
	if len(other.counts) == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]uint64, len(other.counts))
	}
	for _, v := range other.Values() {
		c := other.counts[v]
		h.counts[v] += c
		h.total += c
		h.sum += float64(v) * float64(c)
	}
}

// String renders the histogram as "v:p v:p ..." with probabilities.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, v := range h.Values() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.3f", v, h.Probability(v))
	}
	return b.String()
}

// Shootdowns aggregates TLB-shootdown and IPI activity for the multi-tenant
// simulation. The struct is split along the canonical/core-view boundary
// DESIGN.md's multi-tenant determinism contract draws:
//
//   - Events and SharersNotified are canonical, address-space-granular
//     accounting (a remap of a shared page is one event notifying every
//     other live sharer process), independent of how processes are packed
//     onto cores. They are part of the run fingerprint.
//   - IPIsDelivered and IPICycles are core-view: an IPI goes to each *core*
//     with a resident address space, so packing more processes per core
//     delivers fewer, costlier-per-tenant interrupts. They are reported but
//     excluded from the fingerprint, since they legitimately vary with the
//     simulated core count.
type Shootdowns struct {
	Events          uint64 `json:"events"`
	SharersNotified uint64 `json:"sharers_notified"`
	IPIsDelivered   uint64 `json:"ipis_delivered"`
	IPICycles       uint64 `json:"ipi_cycles"`
}

// Ftoa formats a fraction with three decimals (figure rendering helper).
func Ftoa(f float64) string { return fmt.Sprintf("%.3f", f) }

// HumanBytes formats a byte count with a binary-unit suffix, the way the
// paper's tables report sizes ("8KB", "1MB", "64MB").
func HumanBytes(n uint64) string {
	units := []struct {
		shift uint
		name  string
	}{{40, "TB"}, {30, "GB"}, {20, "MB"}, {10, "KB"}}
	for _, u := range units {
		unit := uint64(1) << u.shift
		if n < unit {
			continue
		}
		if n%unit == 0 {
			return fmt.Sprintf("%d%s", n>>u.shift, u.name)
		}
		return fmt.Sprintf("%.1f%s", float64(n)/float64(unit), u.name)
	}
	return fmt.Sprintf("%dB", n)
}
