package cuckoo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestTable(t *testing.T, opts ...func(*Config)) *Table {
	t.Helper()
	cfg := Config{
		Ways:           3,
		InitialEntries: 128,
		UpsizeAt:       0.6,
		DownsizeAt:     0.2,
		MaxKicks:       32,
		HashSeed:       42,
		Rand:           rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func TestInsertLookup(t *testing.T) {
	tb := newTestTable(t)
	for k := uint64(0); k < 100; k++ {
		if _, err := tb.Insert(k, k*10); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		v, ok := tb.Lookup(k)
		if !ok || v != k*10 {
			t.Fatalf("Lookup(%d) = %d,%v; want %d,true", k, v, ok, k*10)
		}
	}
	if _, ok := tb.Lookup(12345); ok {
		t.Error("Lookup of absent key succeeded")
	}
	if tb.Len() != 100 {
		t.Errorf("Len = %d, want 100", tb.Len())
	}
}

func TestUpsert(t *testing.T) {
	tb := newTestTable(t)
	tb.Insert(7, 1)
	tb.Insert(7, 2)
	if v, _ := tb.Lookup(7); v != 2 {
		t.Errorf("after upsert, Lookup = %d, want 2", v)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1 (upsert must not duplicate)", tb.Len())
	}
}

func TestDelete(t *testing.T) {
	tb := newTestTable(t)
	tb.Insert(1, 100)
	tb.Insert(2, 200)
	if !tb.Delete(1) {
		t.Fatal("Delete(1) = false")
	}
	if tb.Delete(1) {
		t.Error("second Delete(1) = true")
	}
	if _, ok := tb.Lookup(1); ok {
		t.Error("deleted key still present")
	}
	if v, ok := tb.Lookup(2); !ok || v != 200 {
		t.Error("unrelated key lost by delete")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

// TestGrowthUnderLoad drives the table far past its initial capacity and
// verifies every element survives the gradual resizes.
func TestGrowthUnderLoad(t *testing.T) {
	tb := newTestTable(t)
	const n = 20000
	for k := uint64(0); k < n; k++ {
		if _, err := tb.Insert(k, k^0xABCD); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tb.Lookup(k)
		if !ok || v != k^0xABCD {
			t.Fatalf("Lookup(%d) = %d,%v after growth", k, v, ok)
		}
	}
	if tb.Stats().Upsizes == 0 {
		t.Error("expected at least one upsize")
	}
	if tb.EntriesPerWay() < n/3 {
		t.Errorf("per-way size %d too small for %d elements", tb.EntriesPerWay(), n)
	}
}

// TestOccupancyNeverExceedsThresholdSteadyState: after all gradual work
// drains, occupancy must be at most the upsize threshold (unless capped).
func TestOccupancyBounded(t *testing.T) {
	tb := newTestTable(t)
	for k := uint64(0); k < 5000; k++ {
		tb.Insert(k, k)
	}
	tb.DrainResize()
	occ := float64(tb.Len()) / float64(tb.Capacity())
	if occ > 0.6+1e-9 {
		t.Errorf("steady-state occupancy %v > 0.6", occ)
	}
}

func TestShrinkOnDelete(t *testing.T) {
	tb := newTestTable(t)
	const n = 10000
	for k := uint64(0); k < n; k++ {
		tb.Insert(k, k)
	}
	tb.DrainResize()
	big := tb.EntriesPerWay()
	for k := uint64(0); k < n; k++ {
		tb.Delete(k)
	}
	tb.DrainResize()
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tb.Len())
	}
	if tb.EntriesPerWay() >= big {
		t.Errorf("table did not shrink: %d -> %d", big, tb.EntriesPerWay())
	}
	if tb.Stats().Downsizes == 0 {
		t.Error("expected downsizes")
	}
}

// TestLookupDuringResize inserts enough to keep a resize in flight and
// checks lookups mid-migration.
func TestLookupDuringResize(t *testing.T) {
	tb := newTestTable(t, func(c *Config) { c.RehashBatch = 1 })
	inserted := make(map[uint64]uint64)
	for k := uint64(0); k < 3000; k++ {
		tb.Insert(k, k*3)
		inserted[k] = k * 3
		if k%97 == 0 { // spot-check everything occasionally, mid-resize
			for kk, vv := range inserted {
				if v, ok := tb.Lookup(kk); !ok || v != vv {
					t.Fatalf("mid-resize Lookup(%d) = %d,%v want %d (resizing=%v)",
						kk, v, ok, vv, tb.Resizing())
				}
			}
		}
	}
}

func TestDeleteDuringResize(t *testing.T) {
	tb := newTestTable(t, func(c *Config) { c.RehashBatch = 1 })
	for k := uint64(0); k < 2000; k++ {
		tb.Insert(k, k)
	}
	if !tb.Resizing() {
		// Force a resize window: insert until one starts.
		for k := uint64(2000); !tb.Resizing() && k < 100000; k++ {
			tb.Insert(k, k)
		}
	}
	if !tb.Resizing() {
		t.Skip("could not catch table mid-resize")
	}
	// Delete a batch mid-resize.
	for k := uint64(0); k < 500; k++ {
		if !tb.Delete(k) {
			t.Fatalf("Delete(%d) mid-resize failed", k)
		}
	}
	for k := uint64(0); k < 500; k++ {
		if _, ok := tb.Lookup(k); ok {
			t.Fatalf("key %d still present after mid-resize delete", k)
		}
	}
}

func TestRangeVisitsAll(t *testing.T) {
	tb := newTestTable(t)
	want := make(map[uint64]uint64)
	for k := uint64(0); k < 1500; k++ {
		tb.Insert(k, k+7)
		want[k] = k + 7
	}
	got := make(map[uint64]uint64)
	tb.Range(func(k, v uint64) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("Range visited key %d twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range got[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := newTestTable(t)
	for k := uint64(0); k < 100; k++ {
		tb.Insert(k, k)
	}
	n := 0
	tb.Range(func(k, v uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("Range visited %d, want 10", n)
	}
}

func TestAllocHookFailureAbortsUpsize(t *testing.T) {
	fail := false
	allocErr := errors.New("no contiguous memory")
	var tb *Table
	tb = newTestTable(t, func(c *Config) {
		c.Hooks.AllocWays = func(entries uint64) error {
			if fail && entries > c.InitialEntries {
				return allocErr
			}
			return nil
		}
	})
	fail = true
	// Fill past the threshold; upsizes fail, but inserts must keep working
	// until genuinely full.
	overflowed := false
	for k := uint64(0); k < 1000; k++ {
		if _, err := tb.Insert(k, k); err != nil {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("table never filled despite failed upsizes")
	}
	if tb.Stats().FailedUps == 0 {
		t.Error("no failed upsizes recorded")
	}
	if tb.EntriesPerWay() != 128 {
		t.Errorf("table grew despite allocation failure: %d", tb.EntriesPerWay())
	}
}

func TestFreeHookCalled(t *testing.T) {
	var freed []uint64
	tb := newTestTable(t, func(c *Config) {
		c.Hooks.FreeWays = func(entries uint64) { freed = append(freed, entries) }
	})
	for k := uint64(0); k < 2000; k++ {
		tb.Insert(k, k)
	}
	tb.DrainResize()
	if len(freed) == 0 {
		t.Error("FreeWays never called despite upsizes")
	}
	if len(freed) > 0 && freed[0] != 128 {
		t.Errorf("first freed way size %d, want 128", freed[0])
	}
}

func TestMaxEntriesCap(t *testing.T) {
	tb := newTestTable(t, func(c *Config) { c.MaxEntries = 256 })
	var lastErr error
	for k := uint64(0); k < 5000; k++ {
		if _, lastErr = tb.Insert(k, k); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("capped table accepted unbounded inserts")
	}
	if !errors.Is(lastErr, ErrTableFull) {
		t.Errorf("error = %v, want ErrTableFull", lastErr)
	}
	if tb.EntriesPerWay() > 256 {
		t.Errorf("per-way size %d exceeds cap", tb.EntriesPerWay())
	}
}

func TestReinsertionsObserved(t *testing.T) {
	total, calls := 0, 0
	tb := newTestTable(t, func(c *Config) {
		c.Hooks.OnReinsertions = func(n int) { total += n; calls++ }
	})
	for k := uint64(0); k < 5000; k++ {
		tb.Insert(k, k)
	}
	if calls == 0 {
		t.Fatal("OnReinsertions never called")
	}
	mean := float64(total) / float64(calls)
	// The paper measures ≈0.7 re-insertions per insert/rehash at 0.6 max
	// occupancy; anything wildly above 2 indicates broken hashing.
	if mean > 2 {
		t.Errorf("mean re-insertions %.2f implausibly high", mean)
	}
}

func TestMovesCounted(t *testing.T) {
	tb := newTestTable(t)
	for k := uint64(0); k < 2000; k++ {
		tb.Insert(k, k)
	}
	tb.DrainResize()
	if tb.Stats().Moves == 0 {
		t.Error("no migration moves recorded despite resizes")
	}
}

// Property: a random interleaving of inserts/deletes behaves exactly like a
// map.
func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(Config{
			Ways: 3, InitialEntries: 64, MaxKicks: 32,
			HashSeed: uint64(seed), Rand: rand.New(rand.NewSource(seed + 1)),
		})
		model := make(map[uint64]uint64)
		for step := 0; step < 3000; step++ {
			k := uint64(rng.Intn(500))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Uint64() >> 1
				if _, err := tb.Insert(k, v); err != nil {
					return false
				}
				model[k] = v
			case 2:
				want := false
				if _, ok := model[k]; ok {
					want = true
					delete(model, k)
				}
				if tb.Delete(k) != want {
					return false
				}
			}
		}
		if tb.Len() != uint64(len(model)) {
			return false
		}
		for k, v := range model {
			got, ok := tb.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"one way":      {Ways: 1, InitialEntries: 64},
		"zero entries": {Ways: 3, InitialEntries: 0},
		"non-pow2":     {Ways: 3, InitialEntries: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func BenchmarkInsert(b *testing.B) {
	tb := New(Config{Ways: 3, InitialEntries: 1024, MaxKicks: 32, HashSeed: 9,
		Rand: rand.New(rand.NewSource(2))})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Insert(uint64(i), uint64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := New(Config{Ways: 3, InitialEntries: 1024, MaxKicks: 32, HashSeed: 9,
		Rand: rand.New(rand.NewSource(2))})
	for i := 0; i < 100000; i++ {
		tb.Insert(uint64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(uint64(i % 100000))
	}
}
