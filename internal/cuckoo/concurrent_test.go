package cuckoo

import (
	"math/rand"
	"sync"
	"testing"
)

func newConcurrent() *ConcurrentTable {
	return NewConcurrent(Config{
		Ways:           3,
		InitialEntries: 256,
		MaxKicks:       32,
		HashSeed:       17,
		Rand:           rand.New(rand.NewSource(1)),
	})
}

func TestConcurrentBasics(t *testing.T) {
	c := newConcurrent()
	if _, err := c.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Lookup(1); !ok || v != 100 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if !c.Delete(1) {
		t.Fatal("Delete failed")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestConcurrentReadersAndWriters hammers the table from parallel
// goroutines; run with -race to exercise the locking discipline.
func TestConcurrentReadersAndWriters(t *testing.T) {
	c := newConcurrent()
	const (
		writers = 4
		readers = 4
		perG    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				k := base*perG + i
				if _, err := c.Insert(k, k*2); err != nil {
					t.Errorf("Insert(%d): %v", k, err)
					return
				}
				if i%3 == 0 {
					c.Delete(k)
				}
			}
		}(uint64(w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				k := uint64(rng.Intn(writers * perG))
				if v, ok := c.Lookup(k); ok && v != k*2 {
					t.Errorf("Lookup(%d) = %d, want %d", k, v, k*2)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	// Verify every surviving key.
	want := map[uint64]uint64{}
	for w := uint64(0); w < writers; w++ {
		for i := uint64(0); i < perG; i++ {
			k := w*perG + i
			if i%3 != 0 {
				want[k] = k * 2
			}
		}
	}
	for k, v := range want {
		got, ok := c.Lookup(k)
		if !ok || got != v {
			t.Fatalf("post-hammer Lookup(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	if c.Len() != uint64(len(want)) {
		t.Errorf("Len = %d, want %d", c.Len(), len(want))
	}
}

func TestConcurrentRange(t *testing.T) {
	c := newConcurrent()
	for k := uint64(0); k < 500; k++ {
		c.Insert(k, k)
	}
	n := 0
	c.Range(func(k, v uint64) bool { n++; return true })
	if n != 500 {
		t.Errorf("Range visited %d", n)
	}
}

func BenchmarkConcurrentLookup(b *testing.B) {
	c := newConcurrent()
	for k := uint64(0); k < 100000; k++ {
		c.Insert(k, k)
	}
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			c.Lookup(k % 100000)
			k++
		}
	})
}

// TestConcurrentStatsCountReadPath pins down the seed-era stats bug: the
// RLock fast path could not touch Table.stats, so steady-state lookups
// simply vanished from Stats() while resize-window (upgraded) lookups were
// counted. The merged snapshot must account every lookup exactly once,
// whichever path served it.
func TestConcurrentStatsCountReadPath(t *testing.T) {
	c := newConcurrent()
	for k := uint64(0); k < 600; k++ { // enough inserts to drive resizes
		if _, err := c.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	base := c.Stats()
	const lookups = 1000
	for i := uint64(0); i < lookups; i++ {
		c.Lookup(i % 600)
	}
	st := c.Stats()
	if got := st.Lookups - base.Lookups; got != lookups {
		t.Errorf("Stats().Lookups grew by %d, want %d", got, lookups)
	}
	if st.ProbeSlots <= base.ProbeSlots {
		t.Error("read-path lookups left ProbeSlots unchanged")
	}
}

// TestConcurrentUpsertVisibleToReaders: Insert on an existing key replaces
// the value (the shared-region remap path), and readers racing with remaps
// only ever observe one of the published values.
func TestConcurrentUpsertVisibleToReaders(t *testing.T) {
	c := newConcurrent()
	const keys = 128
	for k := uint64(0); k < keys; k++ {
		c.Insert(k, 1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(keys))
				v, ok := c.Lookup(k)
				if !ok {
					t.Errorf("key %d vanished", k)
					return
				}
				if v != 1 && v != 2 {
					t.Errorf("key %d = %d, want a published value", k, v)
					return
				}
			}
		}(int64(r))
	}
	for k := uint64(0); k < keys; k++ {
		if _, err := c.Insert(k, 2); err != nil { // remap: upsert in place
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if c.Len() != keys {
		t.Errorf("Len = %d after upserts, want %d (no duplicates)", c.Len(), keys)
	}
	for k := uint64(0); k < keys; k++ {
		if v, _ := c.Lookup(k); v != 2 {
			t.Errorf("key %d = %d after remap, want 2", k, v)
		}
	}
}

// TestConcurrentResizeSerialized drives the table through growth while
// readers hammer it, then verifies the gradual resize left every key
// reachable — the serialized-resize contract the multi-tenant shared
// region depends on.
func TestConcurrentResizeSerialized(t *testing.T) {
	c := newConcurrent()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(20000))
				if v, ok := c.Lookup(k); ok && v != k+7 {
					t.Errorf("Lookup(%d) = %d, want %d", k, v, k+7)
					return
				}
			}
		}(int64(r))
	}
	sawResize := false
	for k := uint64(0); k < 20000; k++ {
		if _, err := c.Insert(k, k+7); err != nil {
			t.Fatal(err)
		}
		if !sawResize && c.Resizing() {
			sawResize = true
		}
	}
	close(stop)
	wg.Wait()
	if !sawResize {
		t.Error("20000 inserts never left a resize observable; growth path untested")
	}
	for k := uint64(0); k < 20000; k++ {
		if v, ok := c.Lookup(k); !ok || v != k+7 {
			t.Fatalf("post-growth Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}
