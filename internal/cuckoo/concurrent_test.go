package cuckoo

import (
	"math/rand"
	"sync"
	"testing"
)

func newConcurrent() *ConcurrentTable {
	return NewConcurrent(Config{
		Ways:           3,
		InitialEntries: 256,
		MaxKicks:       32,
		HashSeed:       17,
		Rand:           rand.New(rand.NewSource(1)),
	})
}

func TestConcurrentBasics(t *testing.T) {
	c := newConcurrent()
	if _, err := c.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Lookup(1); !ok || v != 100 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if !c.Delete(1) {
		t.Fatal("Delete failed")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestConcurrentReadersAndWriters hammers the table from parallel
// goroutines; run with -race to exercise the locking discipline.
func TestConcurrentReadersAndWriters(t *testing.T) {
	c := newConcurrent()
	const (
		writers = 4
		readers = 4
		perG    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				k := base*perG + i
				if _, err := c.Insert(k, k*2); err != nil {
					t.Errorf("Insert(%d): %v", k, err)
					return
				}
				if i%3 == 0 {
					c.Delete(k)
				}
			}
		}(uint64(w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				k := uint64(rng.Intn(writers * perG))
				if v, ok := c.Lookup(k); ok && v != k*2 {
					t.Errorf("Lookup(%d) = %d, want %d", k, v, k*2)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	// Verify every surviving key.
	want := map[uint64]uint64{}
	for w := uint64(0); w < writers; w++ {
		for i := uint64(0); i < perG; i++ {
			k := w*perG + i
			if i%3 != 0 {
				want[k] = k * 2
			}
		}
	}
	for k, v := range want {
		got, ok := c.Lookup(k)
		if !ok || got != v {
			t.Fatalf("post-hammer Lookup(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	if c.Len() != uint64(len(want)) {
		t.Errorf("Len = %d, want %d", c.Len(), len(want))
	}
}

func TestConcurrentRange(t *testing.T) {
	c := newConcurrent()
	for k := uint64(0); k < 500; k++ {
		c.Insert(k, k)
	}
	n := 0
	c.Range(func(k, v uint64) bool { n++; return true })
	if n != 500 {
		t.Errorf("Range visited %d", n)
	}
}

func BenchmarkConcurrentLookup(b *testing.B) {
	c := newConcurrent()
	for k := uint64(0); k < 100000; k++ {
		c.Insert(k, k)
	}
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			c.Lookup(k % 100000)
			k++
		}
	})
}
