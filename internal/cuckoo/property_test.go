package cuckoo

import (
	"math/rand"
	"testing"
)

// Property-based tests: random insert/remove interleavings (which drive
// upsizes, downsizes, and gradual-rehash migration internally) must
// preserve the table's core invariants at every step.
//
//   - Reachability: every live key is stored at one of its W hash paths —
//     the slot its per-way hash function selects, honouring the rehash
//     pointers — so a W-probe hardware walk always finds it.
//   - Occupancy: the element count never exceeds capacity, and matches a
//     model map exactly.

// checkInvariants verifies the table against the model. It inspects the
// internal ways directly (white-box): a key is "reachable" exactly when
// locate finds it, which is the W-probe walk the MMU performs.
func checkInvariants(t *testing.T, tab *Table, model map[uint64]uint64) {
	t.Helper()
	if tab.Len() != uint64(len(model)) {
		t.Fatalf("Len = %d, model has %d", tab.Len(), len(model))
	}
	if tab.Len() > tab.Capacity() {
		t.Fatalf("load exceeds capacity: %d > %d", tab.Len(), tab.Capacity())
	}
	for key, val := range model {
		found := false
		for i := 0; i < tab.Ways(); i++ {
			w, idx := tab.locate(i, key)
			if w.slots[idx].Key == key {
				if w.slots[idx].Val != val {
					t.Fatalf("key %#x has value %d, want %d", key, w.slots[idx].Val, val)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %#x unreachable via its %d hash paths (resizing=%v)",
				key, tab.Ways(), tab.Resizing())
		}
	}
	// No phantom occupants: total live slots must equal the model size.
	live := uint64(0)
	tab.Range(func(key, val uint64) bool {
		if v, ok := model[key]; !ok || v != val {
			t.Fatalf("phantom or stale entry %#x=%d", key, val)
		}
		live++
		return true
	})
	if live != uint64(len(model)) {
		t.Fatalf("Range visited %d entries, model has %d", live, len(model))
	}
}

// TestPropertyInsertRemoveResize runs randomized operation sequences at
// several seeds and mix ratios, checking invariants periodically and after
// forced resize drains.
func TestPropertyInsertRemoveResize(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := New(Config{
			Ways:           3,
			InitialEntries: 64,
			UpsizeAt:       0.6,
			DownsizeAt:     0.2,
			HashSeed:       uint64(seed)*977 + 13,
			Rand:           rand.New(rand.NewSource(seed + 100)),
		})
		model := map[uint64]uint64{}
		keys := make([]uint64, 0, 4096)
		// deleteBias varies by seed so some sequences grow monotonically
		// (upsizes only) and others churn (up- and downsizes interleaved
		// with in-flight rehashes).
		deleteBias := int(seed%3) + 2 // delete 1-in-N
		for op := 0; op < 30_000; op++ {
			switch {
			case len(keys) > 0 && rng.Intn(deleteBias) == 0:
				i := rng.Intn(len(keys))
				key := keys[i]
				keys[i] = keys[len(keys)-1]
				keys = keys[:len(keys)-1]
				if !tab.Delete(key) {
					t.Fatalf("seed %d op %d: live key %#x not deletable", seed, op, key)
				}
				delete(model, key)
			default:
				key := rng.Uint64() & 0xFFFFF // small space → genuine collisions
				val := rng.Uint64()
				if _, dup := model[key]; !dup {
					keys = append(keys, key)
				}
				if _, err := tab.Insert(key, val); err != nil {
					t.Fatalf("seed %d op %d: insert: %v", seed, op, err)
				}
				model[key] = val
			}
			if op%5000 == 4999 {
				checkInvariants(t, tab, model)
			}
			if op%7000 == 6999 {
				tab.DrainResize() // force the migrated/live boundary to collapse
				checkInvariants(t, tab, model)
			}
		}
		checkInvariants(t, tab, model)
		tab.DrainResize()
		checkInvariants(t, tab, model)
	}
}

// TestPropertyLoadFactorBounded: with a per-way cap the table must refuse
// cleanly (ErrTableFull) rather than overfill; occupancy never exceeds
// capacity at any point.
func TestPropertyLoadFactorBounded(t *testing.T) {
	tab := New(Config{
		Ways:           3,
		InitialEntries: 16,
		MaxEntries:     64,
		HashSeed:       7,
		Rand:           rand.New(rand.NewSource(7)),
	})
	rng := rand.New(rand.NewSource(8))
	inserted := uint64(0)
	for i := 0; i < 10_000; i++ {
		_, err := tab.Insert(rng.Uint64(), 1)
		if err != nil {
			break
		}
		inserted++
		if tab.Len() > tab.Capacity() {
			t.Fatalf("after %d inserts: occupancy %d exceeds capacity %d",
				inserted, tab.Len(), tab.Capacity())
		}
	}
	if cap := uint64(3 * 64); tab.Len() > cap {
		t.Fatalf("capped table holds %d > %d entries", tab.Len(), cap)
	}
	if inserted < 16 {
		t.Fatalf("only %d inserts succeeded before the cap", inserted)
	}
}
