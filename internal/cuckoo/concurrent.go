package cuckoo

import (
	"sync"
	"sync/atomic"
)

// ConcurrentTable wraps Table with a readers-writer lock, giving the
// concurrency model the multi-tenant machine's shared regions need: lookups
// proceed in parallel; inserts, deletes, and the gradual resize steps they
// drive are serialized. This mirrors how shared page tables are used (reads
// from many walkers, writes under the OS's page-table lock) and is the
// load-bearing structure behind tenant.Machine's shared segment — every
// simulated core translates shared addresses through one of these, and
// remaps from the shootdown path serialize against those readers.
//
// Lookup takes the write path when a resize is in flight, because resizing
// lookups consult rehash pointers that inserts move; steady-state lookups
// (the overwhelming majority under the paper's thresholds) stay read-only.
//
// Statistics: the read-only lookup path cannot touch Table.stats (it runs
// under RLock, concurrently with other readers), so its activity is counted
// in dedicated atomics and merged into the Stats snapshot. The seed version
// of this file silently dropped those lookups — steady-state reads were
// invisible in Stats() while resize-window reads were counted, an
// inconsistency the scheduler-era unit tests pin down.
type ConcurrentTable struct {
	mu sync.RWMutex
	t  *Table //mehpt:guardedby mu

	// Read-path counters, maintained outside the Table's own stats because
	// the read path holds only RLock.
	roLookups    atomic.Uint64
	roProbeSlots atomic.Uint64
}

// NewConcurrent creates a thread-safe elastic cuckoo table.
func NewConcurrent(cfg Config) *ConcurrentTable {
	return &ConcurrentTable{t: New(cfg)}
}

// Lookup returns the value stored for key.
//mehpt:hotpath
func (c *ConcurrentTable) Lookup(key uint64) (uint64, bool) {
	c.mu.RLock()
	if c.t.Resizing() {
		// Upgrade: resizing lookups race with rehash-pointer movement.
		c.mu.RUnlock()
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.t.Lookup(key)
	}
	defer c.mu.RUnlock()
	val, probed, ok := c.t.lookupReadOnly(key)
	c.roLookups.Add(1)
	c.roProbeSlots.Add(uint64(probed))
	return val, ok
}

// Insert stores key→val, replacing any existing value for key.
func (c *ConcurrentTable) Insert(key, val uint64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Insert(key, val)
}

// Delete removes key.
func (c *ConcurrentTable) Delete(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Delete(key)
}

// Len returns the element count.
func (c *ConcurrentTable) Len() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Len()
}

// Resizing reports whether a gradual resize is in flight.
func (c *ConcurrentTable) Resizing() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Resizing()
}

// Stats returns a snapshot of the operation counters with the read-path
// lookup activity folded in, so Lookups/ProbeSlots cover both the RLock
// fast path and the resize-window upgraded path.
func (c *ConcurrentTable) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := c.t.stats
	s.Lookups += c.roLookups.Load()
	s.ProbeSlots += c.roProbeSlots.Load()
	return s
}

// Range calls f for every element while holding the read lock.
func (c *ConcurrentTable) Range(f func(key, val uint64) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.t.Range(f)
}

// lookupReadOnly is Lookup without stats mutation, safe under RLock when no
// resize is in flight. It reports the slots probed so the caller can account
// them.
//mehpt:hotpath
func (t *Table) lookupReadOnly(key uint64) (val uint64, probed int, ok bool) {
	for i := 0; i < t.cfg.Ways; i++ {
		w := t.cur[i]
		idx := w.fn.Index(key, w.size())
		probed++
		if w.slots[idx].Key == key {
			return w.slots[idx].Val, probed, true
		}
	}
	return 0, probed, false
}
