package cuckoo

import "sync"

// ConcurrentTable wraps Table with a readers-writer lock, giving the
// concurrency model Section VIII's key-value-store application needs:
// lookups proceed in parallel; inserts, deletes, and the gradual resize
// steps they drive are serialized. This mirrors how per-process page
// tables are used (reads from many walkers, writes under the OS's page
// table lock) and is sufficient for the memory-index and KV-store use
// cases the paper sketches.
//
// Lookup takes the write path when a resize is in flight, because resizing
// lookups consult rehash pointers that inserts move; steady-state lookups
// (the overwhelming majority under the paper's thresholds) stay read-only.
type ConcurrentTable struct {
	mu sync.RWMutex
	t  *Table
}

// NewConcurrent creates a thread-safe elastic cuckoo table.
func NewConcurrent(cfg Config) *ConcurrentTable {
	return &ConcurrentTable{t: New(cfg)}
}

// Lookup returns the value stored for key.
func (c *ConcurrentTable) Lookup(key uint64) (uint64, bool) {
	c.mu.RLock()
	if c.t.Resizing() {
		// Upgrade: resizing lookups race with rehash-pointer movement.
		c.mu.RUnlock()
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.t.Lookup(key)
	}
	defer c.mu.RUnlock()
	return c.t.lookupReadOnly(key)
}

// Insert stores key→val.
func (c *ConcurrentTable) Insert(key, val uint64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Insert(key, val)
}

// Delete removes key.
func (c *ConcurrentTable) Delete(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Delete(key)
}

// Len returns the element count.
func (c *ConcurrentTable) Len() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Len()
}

// Stats returns a snapshot of the operation counters.
func (c *ConcurrentTable) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.stats
}

// Range calls f for every element while holding the read lock.
func (c *ConcurrentTable) Range(f func(key, val uint64) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.t.Range(f)
}

// lookupReadOnly is Lookup without stats mutation, safe under RLock when
// no resize is in flight.
func (t *Table) lookupReadOnly(key uint64) (uint64, bool) {
	for i := 0; i < t.cfg.Ways; i++ {
		w := t.cur[i]
		idx := w.fn.Index(key, w.size())
		if w.slots[idx].Key == key {
			return w.slots[idx].Val, true
		}
	}
	return 0, false
}
