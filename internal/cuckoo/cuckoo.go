// Package cuckoo implements a W-way elastic cuckoo hash table — the core
// algorithm of Elastic Cuckoo Page Tables (Skarlatos et al., ASPLOS'20) that
// the paper's baseline and contribution both build on.
//
// The table is set-associative: each of the W ways is an array of slots and
// has its own hash function. An element lives in exactly one way, at the
// index its hash selects there. Insertion kicks out conflicting occupants and
// re-inserts them into other ways (cuckoo hashing). Resizing is *elastic*:
// a new table twice (or half) the size is allocated, and entries migrate
// gradually — one batch per insertion — tracked by a per-way rehash pointer
// that splits each old way into a migrated and a live region.
//
// This package implements the out-of-place variant used by the ECPT baseline
// and by general-purpose uses (e.g. the key-value store example). The
// in-place, per-way, chunked variant — the paper's contribution — lives in
// package mehpt.
package cuckoo

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/hashfn"
)

// EmptyKey marks an unoccupied slot. Virtual page numbers are at most
// 2^36 for 48-bit addresses, so the sentinel can never collide with a key.
const EmptyKey = ^uint64(0)

// Entry is one table slot: an 8-byte packed key tag plus value, mirroring
// the paper's compacted HPT entries (tag stored in unused PTE bits).
type Entry struct {
	Key uint64
	Val uint64
}

// ErrTableFull is returned when an insertion cannot be placed even after
// forcing resizes — either the per-way cap was reached or memory pressure
// kept the table from growing. The error chain carries the underlying
// cause (e.g. phys.ErrOutOfMemory through the embedder's AllocWays hook);
// the rejected entry is never left partially placed.
var ErrTableFull = errors.New("cuckoo: table full")

// ErrMigrationFailed is returned when the gradual rehash cannot re-place a
// displaced entry in the resize target. The failed migration step is rolled
// back — the displaced entry is restored and the rehash pointer rewound —
// so the table stays valid and the migration retries on a later insertion
// with fresh displacement choices.
var ErrMigrationFailed = errors.New("cuckoo: gradual-rehash migration failed")

// Config parameterizes a Table.
type Config struct {
	Ways           int     // number of ways W (the paper uses 3)
	InitialEntries uint64  // initial per-way slot count, a power of two
	MaxEntries     uint64  // per-way slot cap; 0 means unlimited
	UpsizeAt       float64 // occupancy ratio triggering an upsize (0.6)
	DownsizeAt     float64 // occupancy ratio triggering a downsize (0.2)
	MaxKicks       int     // bound on cuckoo displacement chains
	RehashBatch    int     // entries migrated per insertion during a resize
	HashSeed       uint64  // base seed for the per-way hash family
	Rand           *rand.Rand
	Hooks          Hooks
}

// Hooks let the embedding page table observe and cost the table's physical
// behaviour without the algorithm knowing about physical memory.
type Hooks struct {
	// AllocWays is called when a resize needs W new ways of the given
	// per-way slot count. Returning an error aborts the resize attempt
	// (e.g. contiguous allocation failed); the table stays at its size.
	AllocWays func(entriesPerWay uint64) error
	// FreeWays is called when the old ways are released after a resize.
	FreeWays func(entriesPerWay uint64)
	// OnKick is called for every cuckoo re-insertion (displacement).
	OnKick func()
	// OnReinsertions is called once per top-level insert or rehash with the
	// number of displacements it needed (Figure 16's distribution).
	OnReinsertions func(n int)
	// OnMove is called for every entry migrated between tables by the
	// gradual rehash (Figure 13's data-movement metric).
	OnMove func()
}

// Stats aggregates operation counts.
type Stats struct {
	Inserts    uint64
	Lookups    uint64
	Deletes    uint64
	Kicks      uint64 // total cuckoo re-insertions
	Moves      uint64 // entries migrated by gradual rehash
	Upsizes    uint64
	Downsizes  uint64
	FailedUps  uint64 // upsizes aborted by allocation failure
	Stalls     uint64 // migration steps rolled back (retried later)
	ProbeSlots uint64 // slots examined by lookups
}

// way is one hash way of a (sub)table.
type way struct {
	slots []Entry
	fn    hashfn.Func
}

func newWay(entries uint64, fn hashfn.Func) *way {
	w := &way{slots: make([]Entry, entries), fn: fn}
	for i := range w.slots {
		w.slots[i].Key = EmptyKey
	}
	return w
}

func (w *way) size() uint64 { return uint64(len(w.slots)) }

// Table is the elastic cuckoo hash table. It is not safe for concurrent use.
type Table struct {
	//mehpt:transient -- RestoreTable requires the caller to re-supply the same Config (incl. a repositioned Rand)
	cfg Config
	//mehpt:transient -- pure function of cfg.HashSeed/Ways, re-derived by RestoreTable
	fns []hashfn.Func
	//mehpt:transient -- rebuilt from fns by RestoreTable
	mixer *hashfn.Mixer // family-wide single-CRC hashing (read-only)
	cur   []*way        // current table, one per way
	next  []*way        // resize target, nil when not resizing
	// rehashPtr[i] splits cur[i] into migrated [0,p) and live [p,size).
	rehashPtr []uint64
	occupied  uint64
	stats     Stats
	//mehpt:transient -- owned and positioned by whoever supplied Config.Rand; RestoreTable panics without one
	rng *rand.Rand
	// journal is tryPlace's displacement log, reused across insertions so
	// the write path does not allocate in steady state. Chains are bounded
	// by MaxKicks, and tryPlace is never re-entered while a chain is live.
	//mehpt:transient -- scratch buffer, cleared at the end of every insert; always empty between operations
	journal []undo
}

// New creates an empty table, panicking if the initial ways cannot be
// backed. Callers that install an AllocWays hook and need to survive
// memory pressure at construction time use Build instead.
func New(cfg Config) *Table {
	t, err := Build(cfg)
	if err != nil {
		panic(fmt.Sprintf("cuckoo: initial allocation failed: %v", err))
	}
	return t
}

// Build creates an empty table, returning an error if the embedder's
// AllocWays hook cannot back the initial ways — the one construction
// failure that is a runtime memory-pressure condition rather than a
// programmer error. Invalid configuration still panics, since all callers
// construct configs from compile-time constants.
func Build(cfg Config) (*Table, error) {
	if cfg.Ways < 2 {
		panic("cuckoo: need at least 2 ways")
	}
	if cfg.InitialEntries == 0 || cfg.InitialEntries&(cfg.InitialEntries-1) != 0 {
		panic(fmt.Sprintf("cuckoo: initial entries %d must be a power of two", cfg.InitialEntries))
	}
	cfg = normalizeConfig(cfg)
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(int64(cfg.HashSeed) + 1))
	}
	t := &Table{
		cfg:       cfg,
		fns:       hashfn.Family(cfg.HashSeed, cfg.Ways),
		cur:       make([]*way, cfg.Ways),
		rehashPtr: make([]uint64, cfg.Ways),
		rng:       rng,
	}
	t.mixer = hashfn.NewMixer(t.fns)
	for i := range t.cur {
		t.cur[i] = newWay(cfg.InitialEntries, t.fns[i])
	}
	if t.cfg.Hooks.AllocWays != nil {
		if err := t.cfg.Hooks.AllocWays(cfg.InitialEntries); err != nil {
			return nil, fmt.Errorf("cuckoo: initial way allocation: %w", err)
		}
	}
	return t, nil
}

// Len returns the number of elements stored.
func (t *Table) Len() uint64 { return t.occupied }

// EntriesPerWay returns the current per-way slot count (of the table being
// migrated *into* if a resize is in flight, since that is the steady-state
// size).
func (t *Table) EntriesPerWay() uint64 {
	if t.next != nil {
		return t.next[0].size()
	}
	return t.cur[0].size()
}

// Capacity returns the total live slot count across ways. During a resize
// this counts the target table, matching how occupancy thresholds are
// evaluated.
func (t *Table) Capacity() uint64 {
	return t.EntriesPerWay() * uint64(t.cfg.Ways)
}

// Resizing reports whether a gradual resize is in flight.
func (t *Table) Resizing() bool { return t.next != nil }

// Stats returns the accumulated operation counts.
func (t *Table) Stats() Stats { return t.stats }

// Ways returns W.
func (t *Table) Ways() int { return t.cfg.Ways }

// occupancy is evaluated against the resize-target capacity.
func (t *Table) occupancy() float64 {
	return float64(t.occupied) / float64(t.Capacity())
}

// locateHash returns the way array and index at which a key hashing to h in
// way i would live, honouring the rehash pointer during resizes: hash keys
// below the pointer have been migrated, so the new table is authoritative
// for them. Both tables of way i use the same hash function and power-of-two
// sizes, so one hash value serves both — only the mask differs (the paper's
// upsize-bit property).
//mehpt:hotpath
func (t *Table) locateHash(i int, h uint64) (*way, uint64) {
	w := t.cur[i]
	idx := h & (w.size() - 1)
	if t.next != nil && idx < t.rehashPtr[i] {
		nw := t.next[i]
		return nw, h & (nw.size() - 1)
	}
	return w, idx
}

// locate is locateHash with the hash computed here. Multi-way loops hoist
// the shared CRC through t.mixer instead of calling this per way.
//mehpt:hotpath
func (t *Table) locate(i int, key uint64) (*way, uint64) {
	return t.locateHash(i, t.fns[i].Hash(key))
}

// Probe returns, for way i, whether a lookup of key would probe the
// resize-target table (inNext) and at which slot index — the information a
// hardware walker derives from the rehash pointers, which the embedding
// page table needs to compute probe addresses.
//mehpt:hotpath
func (t *Table) Probe(i int, key uint64) (inNext bool, idx uint64) {
	h := t.fns[i].Hash(key)
	w := t.cur[i]
	oldIdx := h & (w.size() - 1)
	if t.next != nil && oldIdx < t.rehashPtr[i] {
		nw := t.next[i]
		return true, h & (nw.size() - 1)
	}
	return false, oldIdx
}

// WayOf returns the way index currently holding key.
//mehpt:hotpath
func (t *Table) WayOf(key uint64) (int, bool) {
	crc := t.mixer.CRC(key)
	for i := 0; i < t.cfg.Ways; i++ {
		w, idx := t.locateHash(i, t.mixer.HashAt(i, crc))
		if w.slots[idx].Key == key {
			return i, true
		}
	}
	return 0, false
}

// Lookup returns the value stored for key.
//mehpt:hotpath
func (t *Table) Lookup(key uint64) (uint64, bool) {
	v, _, ok := t.LookupWay(key)
	return v, ok
}

// LookupWay is Lookup additionally reporting the way that hit — the fused
// walk uses it to avoid a second full probe sweep (WayOf) per translation.
// Its statistics footprint is identical to Lookup's.
//mehpt:hotpath
func (t *Table) LookupWay(key uint64) (uint64, int, bool) {
	t.stats.Lookups++
	crc := t.mixer.CRC(key)
	for i := 0; i < t.cfg.Ways; i++ {
		w, idx := t.locateHash(i, t.mixer.HashAt(i, crc))
		t.stats.ProbeSlots++
		if w.slots[idx].Key == key {
			return w.slots[idx].Val, i, true
		}
	}
	return 0, 0, false
}

// LookupBatch resolves len(keys) lookups in one software-pipelined sweep,
// writing vals[i]/ways[i]/oks[i] for each key. Pass 1 computes the
// family-wide CRC for a whole chunk — the mixer's single-CRC construction
// makes the per-way hashes one multiply away, so the expensive table walks
// of the CRC overlap across keys instead of serializing behind each probe.
// Pass 2 runs the way probes. Results and statistics (Lookups, ProbeSlots)
// are bit-identical to len(keys) sequential LookupWay calls.
//mehpt:hotpath
func (t *Table) LookupBatch(keys []uint64, vals []uint64, ways []int, oks []bool) {
	const chunk = 64 // matches the translation pipeline's batch width
	for len(keys) > 0 {
		n := len(keys)
		if n > chunk {
			n = chunk
		}
		var crcs [chunk]uint64
		for i, k := range keys[:n] {
			crcs[i] = t.mixer.CRC(k)
		}
		for i, k := range keys[:n] {
			t.stats.Lookups++
			vals[i], ways[i], oks[i] = 0, 0, false
			for j := 0; j < t.cfg.Ways; j++ {
				w, idx := t.locateHash(j, t.mixer.HashAt(j, crcs[i]))
				t.stats.ProbeSlots++
				if w.slots[idx].Key == k {
					vals[i], ways[i], oks[i] = w.slots[idx].Val, j, true
					break
				}
			}
		}
		keys = keys[n:]
		vals = vals[n:]
		ways = ways[n:]
		oks = oks[n:]
	}
}

// Insert adds key with value val. If key is already present its value is
// replaced. It returns the number of cuckoo re-insertions performed.
func (t *Table) Insert(key, val uint64) (int, error) {
	// Reuse the slot if the key is already present (remap).
	crc := t.mixer.CRC(key)
	for i := 0; i < t.cfg.Ways; i++ {
		w, idx := t.locateHash(i, t.mixer.HashAt(i, crc))
		if w.slots[idx].Key == key {
			w.slots[idx].Val = val
			return 0, nil
		}
	}
	if t.next != nil {
		if err := t.rehashStep(t.cfg.RehashBatch); err != nil {
			// A stalled migration is not fatal to this insert: the stuck
			// entry was rolled back into the old table and stays reachable,
			// and the rewound rehash pointer makes a later insertion retry
			// it with fresh displacement choices.
			t.stats.Stalls++
		}
	}
	kicks, err := t.place(Entry{Key: key, Val: val}, -1)
	if err != nil {
		return kicks, err
	}
	t.stats.Inserts++
	t.occupied++
	if t.cfg.Hooks.OnReinsertions != nil {
		t.cfg.Hooks.OnReinsertions(kicks)
	}
	t.maybeResize()
	return kicks, nil
}

// undo is one journal record of tryPlace's displacement chain.
type undo struct {
	w    *way
	idx  uint64
	prev Entry
}

// tryPlace attempts to insert e starting at a random way other than
// exclude, displacing occupants cuckoo-style for at most MaxKicks
// displacements. Every slot write is journaled; if the chain overflows,
// the journal is replayed in reverse and the table is left exactly as it
// was — a failed placement never evicts a previously accepted entry.
// Kick statistics and hooks still record the attempted displacements (the
// hardware/OS did that work even when the chain was abandoned).
func (t *Table) tryPlace(e Entry, exclude int) (int, bool) {
	journal := t.journal[:0]
	kicks := 0
	placed := false
	for {
		i := t.pickWay(exclude)
		w, idx := t.locate(i, e.Key)
		prev := w.slots[idx]
		journal = append(journal, undo{w, idx, prev})
		w.slots[idx] = e
		if prev.Key == EmptyKey {
			placed = true
			break
		}
		t.stats.Kicks++
		if t.cfg.Hooks.OnKick != nil {
			t.cfg.Hooks.OnKick()
		}
		kicks++
		if kicks > t.cfg.MaxKicks {
			for j := len(journal) - 1; j >= 0; j-- {
				journal[j].w.slots[journal[j].idx] = journal[j].prev
			}
			break
		}
		e, exclude = prev, i
	}
	// Keep the grown backing array but drop the *way references so the
	// scratch buffer never pins a retired table in memory.
	clear(journal)
	t.journal = journal[:0]
	return kicks, placed
}

// place inserts e, forcing progress between bounded placement attempts:
// drain the in-flight resize if there is one, start an upsize otherwise.
// On failure the table is unchanged — every partial displacement chain was
// rolled back — and the error wraps ErrTableFull plus the underlying cause
// (allocation failure, migration failure, or the per-way cap).
func (t *Table) place(e Entry, exclude int) (int, error) {
	if kicks, ok := t.tryPlace(e, exclude); ok {
		return kicks, nil
	}
	for attempt := 0; attempt < 3; attempt++ {
		if t.next != nil {
			if err := t.drainResize(); err != nil {
				return 0, fmt.Errorf("%w: %w", ErrTableFull, err)
			}
		} else if err := t.forceUpsize(); err != nil {
			return 0, fmt.Errorf("%w: %w", ErrTableFull, err)
		}
		if kicks, ok := t.tryPlace(e, -1); ok {
			return kicks, nil
		}
	}
	return 0, ErrTableFull
}

// placeMigration places an entry displaced by the gradual rehash. Unlike
// place it never forces progress: the caller is already inside the resize
// machinery, and a nested drain could complete the resize and free the
// very ways the caller must roll back into on failure. A bounded number of
// fresh chains is attempted instead; each rolls back cleanly.
func (t *Table) placeMigration(e Entry, exclude int) (int, error) {
	if kicks, ok := t.tryPlace(e, exclude); ok {
		return kicks, nil
	}
	for attempt := 0; attempt < 3; attempt++ {
		if kicks, ok := t.tryPlace(e, -1); ok {
			return kicks, nil
		}
	}
	return 0, fmt.Errorf("displacement chain overflow in resize target (W=%d, max kicks %d)",
		t.cfg.Ways, t.cfg.MaxKicks)
}

// forceUpsize starts an upsize regardless of occupancy, used to break
// over-long displacement chains. It still honours the per-way cap.
func (t *Table) forceUpsize() error {
	size := t.cur[0].size()
	if t.cfg.MaxEntries > 0 && size*2 > t.cfg.MaxEntries {
		return fmt.Errorf("per-way cap %d entries reached", t.cfg.MaxEntries)
	}
	return t.startResize(size * 2)
}

func (t *Table) pickWay(exclude int) int {
	if exclude < 0 {
		return t.rng.Intn(t.cfg.Ways)
	}
	i := t.rng.Intn(t.cfg.Ways - 1)
	if i >= exclude {
		i++
	}
	return i
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint64) bool {
	for i := 0; i < t.cfg.Ways; i++ {
		w, idx := t.locate(i, key)
		t.stats.ProbeSlots++
		if w.slots[idx].Key == key {
			w.slots[idx].Key = EmptyKey
			w.slots[idx].Val = 0
			t.occupied--
			t.stats.Deletes++
			t.maybeResize()
			return true
		}
	}
	return false
}

// maybeResize starts an upsize or downsize if occupancy crossed a threshold
// and no resize is already in flight.
func (t *Table) maybeResize() {
	if t.next != nil {
		return
	}
	size := t.cur[0].size()
	switch {
	case t.occupancy() > t.cfg.UpsizeAt:
		if t.cfg.MaxEntries > 0 && size*2 > t.cfg.MaxEntries {
			return
		}
		if err := t.startResize(size * 2); err != nil {
			t.stats.FailedUps++
		}
	case t.occupancy() < t.cfg.DownsizeAt && size > t.cfg.InitialEntries:
		// Downsizing can always find memory (smaller allocation).
		_ = t.startResize(size / 2) //mehpt:allow errwrap -- downsize failure is benign; the table just stays large
	}
}

// startResize allocates the target table and begins gradual migration.
func (t *Table) startResize(newEntries uint64) error {
	if t.cfg.Hooks.AllocWays != nil {
		if err := t.cfg.Hooks.AllocWays(newEntries); err != nil {
			return err
		}
	}
	t.next = make([]*way, t.cfg.Ways)
	for i := range t.next {
		t.next[i] = newWay(newEntries, t.fns[i])
	}
	for i := range t.rehashPtr {
		t.rehashPtr[i] = 0
	}
	if newEntries > t.cur[0].size() {
		t.stats.Upsizes++
	} else {
		t.stats.Downsizes++
	}
	return nil
}

// rehashStep migrates up to batch entries from the live regions of the old
// ways into the new table, advancing the rehash pointers round-robin. On a
// migration failure the step stops early; the failed entry was rolled back
// and the resize stays in flight, to be retried by a later step.
func (t *Table) rehashStep(batch int) error {
	for n := 0; n < batch && t.next != nil; {
		advanced := false
		for i := 0; i < t.cfg.Ways && n < batch; i++ {
			if t.rehashPtr[i] >= t.cur[i].size() {
				continue
			}
			if err := t.migrateOne(i); err != nil {
				return err
			}
			n++
			advanced = true
		}
		if !advanced {
			t.finishResize()
			return nil
		}
	}
	if t.next != nil && t.rehashDone() {
		t.finishResize()
	}
	return nil
}

// migrateOne rehashes the entry under way i's rehash pointer into the new
// table and advances the pointer. On failure the step is rolled back
// exactly — entry restored, pointer rewound — and the error wraps
// ErrMigrationFailed.
func (t *Table) migrateOne(i int) error {
	w := t.cur[i]
	p := t.rehashPtr[i]
	e := w.slots[p]
	t.rehashPtr[i] = p + 1
	if e.Key == EmptyKey {
		return nil
	}
	w.slots[p].Key = EmptyKey
	// Insert into the same way of the new table; conflicts cuckoo onward.
	nw := t.next[i]
	idx := nw.fn.Index(e.Key, nw.size())
	kicks := 0
	if nw.slots[idx].Key == EmptyKey {
		nw.slots[idx] = e
	} else {
		victim := nw.slots[idx]
		nw.slots[idx] = e
		t.stats.Kicks++
		if t.cfg.Hooks.OnKick != nil {
			t.cfg.Hooks.OnKick()
		}
		var err error
		kicks, err = t.placeMigration(victim, i)
		if err != nil {
			nw.slots[idx] = victim
			w.slots[p] = e
			t.rehashPtr[i] = p
			return fmt.Errorf("%w: %w", ErrMigrationFailed, err)
		}
		kicks++ // count the displacement out of the target slot
	}
	t.stats.Moves++
	if t.cfg.Hooks.OnMove != nil {
		t.cfg.Hooks.OnMove()
	}
	if t.cfg.Hooks.OnReinsertions != nil {
		t.cfg.Hooks.OnReinsertions(kicks)
	}
	return nil
}

func (t *Table) rehashDone() bool {
	for i := range t.rehashPtr {
		if t.rehashPtr[i] < t.cur[i].size() {
			return false
		}
	}
	return true
}

// drainResize completes an in-flight resize synchronously. A migration
// failure stops the drain with the resize still in flight (and the table
// valid); the caller decides whether to retry or surface the error.
func (t *Table) drainResize() error {
	for t.next != nil {
		if err := t.rehashStep(1024); err != nil {
			return err
		}
	}
	return nil
}

// DrainResize completes any in-flight gradual resize. Page-table callers use
// it when tearing down a process. The error (if any) wraps
// ErrMigrationFailed; the table remains valid and mid-resize.
func (t *Table) DrainResize() error { return t.drainResize() }

func (t *Table) finishResize() {
	oldEntries := t.cur[0].size()
	t.cur = t.next
	t.next = nil
	if t.cfg.Hooks.FreeWays != nil {
		t.cfg.Hooks.FreeWays(oldEntries)
	}
}

// Range calls f for every element until f returns false. Order is
// unspecified. The table must not be mutated during iteration.
func (t *Table) Range(f func(key, val uint64) bool) {
	visit := func(ws []*way, skipMigrated bool) bool {
		for i, w := range ws {
			start := uint64(0)
			if skipMigrated {
				start = t.rehashPtr[i]
			}
			for idx := start; idx < w.size(); idx++ {
				if w.slots[idx].Key == EmptyKey {
					continue
				}
				if !f(w.slots[idx].Key, w.slots[idx].Val) {
					return false
				}
			}
		}
		return true
	}
	if t.next != nil {
		if !visit(t.next, false) {
			return
		}
		visit(t.cur, true)
		return
	}
	visit(t.cur, false)
}
