package cuckoo

import "repro/internal/hashfn"

// normalizeConfig applies the defaulting Build performs, shared with the
// restore path so a restored table evaluates thresholds identically.
func normalizeConfig(cfg Config) Config {
	if cfg.UpsizeAt <= 0 {
		cfg.UpsizeAt = 0.6
	}
	if cfg.DownsizeAt < 0 {
		cfg.DownsizeAt = 0.2
	}
	if cfg.MaxKicks <= 0 {
		cfg.MaxKicks = 32
	}
	if cfg.RehashBatch <= 0 {
		cfg.RehashBatch = 1
	}
	return cfg
}

// WayState is one way's slot array, verbatim.
type WayState struct {
	Slots []Entry
}

// TableState is the serializable form of a Table. The hash family, mixer,
// and RNG are not part of the state: the family is a pure function of the
// Config's HashSeed, and the RNG is owned (and separately positioned) by
// whoever supplied Config.Rand.
type TableState struct {
	Cur       []WayState
	Next      []WayState // nil when no resize is in flight
	RehashPtr []uint64
	Occupied  uint64
	Stats     Stats
}

func captureWays(ws []*way) []WayState {
	if ws == nil {
		return nil
	}
	out := make([]WayState, len(ws))
	for i, w := range ws {
		out[i].Slots = make([]Entry, len(w.slots))
		copy(out[i].Slots, w.slots)
	}
	return out
}

func restoreWays(st []WayState, fns []hashfn.Func) []*way {
	if st == nil {
		return nil
	}
	out := make([]*way, len(st))
	for i, ws := range st {
		w := &way{slots: make([]Entry, len(ws.Slots)), fn: fns[i]}
		copy(w.slots, ws.Slots)
		out[i] = w
	}
	return out
}

// State returns a deep copy of the table's contents and counters.
func (t *Table) State() TableState {
	st := TableState{
		Cur:       captureWays(t.cur),
		Next:      captureWays(t.next),
		RehashPtr: make([]uint64, len(t.rehashPtr)),
		Occupied:  t.occupied,
		Stats:     t.stats,
	}
	copy(st.RehashPtr, t.rehashPtr)
	return st
}

// RestoreTable rebuilds a table from recorded state without invoking the
// AllocWays hook — the physical memory behind the ways is already owned in
// the restored allocator state. cfg must carry the same Ways/HashSeed as
// the captured table (the hash family is re-derived from them) and, for
// bit-identical resumption, a Rand repositioned to its captured draw
// count.
func RestoreTable(cfg Config, st TableState) *Table {
	cfg = normalizeConfig(cfg)
	rng := cfg.Rand
	if rng == nil {
		panic("cuckoo: RestoreTable requires an explicitly positioned Config.Rand")
	}
	t := &Table{
		cfg:       cfg,
		fns:       hashfn.Family(cfg.HashSeed, cfg.Ways),
		rehashPtr: make([]uint64, len(st.RehashPtr)),
		occupied:  st.Occupied,
		stats:     st.Stats,
		rng:       rng,
	}
	t.mixer = hashfn.NewMixer(t.fns)
	t.cur = restoreWays(st.Cur, t.fns)
	t.next = restoreWays(st.Next, t.fns)
	copy(t.rehashPtr, st.RehashPtr)
	return t
}

// ConcurrentTableState is the serializable form of a ConcurrentTable: the
// inner table plus the read-path counters kept outside it.
type ConcurrentTableState struct {
	Table        TableState
	ROLookups    uint64
	ROProbeSlots uint64
}

// State captures the table under its read lock.
func (c *ConcurrentTable) State() ConcurrentTableState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return ConcurrentTableState{
		Table:        c.t.State(),
		ROLookups:    c.roLookups.Load(),
		ROProbeSlots: c.roProbeSlots.Load(),
	}
}

// RestoreConcurrent rebuilds a concurrent table from recorded state; see
// RestoreTable for the cfg requirements.
func RestoreConcurrent(cfg Config, st ConcurrentTableState) *ConcurrentTable {
	c := &ConcurrentTable{t: RestoreTable(cfg, st.Table)}
	c.roLookups.Store(st.ROLookups)
	c.roProbeSlots.Store(st.ROProbeSlots)
	return c
}
