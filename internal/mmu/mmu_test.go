package mmu

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/radix"
)

func newRadixMMU(t *testing.T) (*Radix, *radix.PageTable, *phys.Allocator) {
	t.Helper()
	mem := phys.NewMemory(1 * addr.GB)
	alloc := phys.NewAllocator(mem, 0)
	pt, err := radix.NewPageTable(alloc)
	if err != nil {
		t.Fatal(err)
	}
	return NewRadix(pt, cache.NewHierarchy(cache.TableIII())), pt, alloc
}

func newHPTMMU(t *testing.T) (*HPT, *mehpt.PageTable, *phys.Allocator) {
	t.Helper()
	mem := phys.NewMemory(1 * addr.GB)
	alloc := phys.NewAllocator(mem, 0)
	cfg := mehpt.DefaultConfig(11)
	cfg.Rand = rand.New(rand.NewSource(1))
	pt, err := mehpt.NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewHPT(pt, cache.NewHierarchy(cache.TableIII())), pt, alloc
}

func TestRadixTranslateFaultThenHit(t *testing.T) {
	m, pt, _ := newRadixMMU(t)
	va := addr.VirtAddr(0x1234_5678)
	r := m.Translate(va)
	if !r.Fault {
		t.Fatal("unmapped address did not fault")
	}
	pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, 77)
	r = m.Translate(va)
	if r.Fault {
		t.Fatal("mapped address faulted")
	}
	wantPA := addr.Translate(va, 77, addr.Page4K)
	if r.PA != wantPA {
		t.Fatalf("PA = %#x, want %#x", r.PA, wantPA)
	}
	walkCycles := r.Cycles
	// The walk inserted the TLB entry: next access is a cheap TLB hit.
	r = m.Translate(va)
	if r.Cycles >= walkCycles {
		t.Errorf("TLB hit (%d cyc) not cheaper than walk (%d cyc)", r.Cycles, walkCycles)
	}
	if r.Cycles != 2 {
		t.Errorf("L1 TLB hit = %d cycles, want 2", r.Cycles)
	}
	st := m.Stats()
	if st.Walks != 2 || st.Faults != 1 || st.L1Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHPTTranslateFaultThenHit(t *testing.T) {
	m, pt, _ := newHPTMMU(t)
	va := addr.VirtAddr(0x7777_0000)
	if r := m.Translate(va); !r.Fault {
		t.Fatal("unmapped address did not fault")
	}
	pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, 99)
	r := m.Translate(va)
	if r.Fault {
		t.Fatal("mapped address faulted")
	}
	if r.PA != addr.Translate(va, 99, addr.Page4K) {
		t.Fatalf("wrong PA %#x", r.PA)
	}
	if r2 := m.Translate(va); r2.Cycles != 2 {
		t.Errorf("TLB hit = %d cycles, want 2", r2.Cycles)
	}
}

// TestWalkLatencyOrdering: the central claim — a cold hashed walk is
// cheaper than a cold radix walk, because the radix walk performs up to
// four dependent memory accesses while the HPT needs one probe (plus a CWT
// fetch at worst).
func TestWalkLatencyOrdering(t *testing.T) {
	rm, rpt, _ := newRadixMMU(t)
	hm, hpt, _ := newHPTMMU(t)
	// Map the same distant pages in both.
	var radixWalk, hptWalk uint64
	for i := 0; i < 64; i++ {
		// Far apart so PWC/CWC/TLB never help: stride 2GB.
		va := addr.VirtAddr(uint64(i) * 2 * addr.GB)
		rpt.Map(va.PageNumber(addr.Page4K), addr.Page4K, addr.PPN(i))
		hpt.Map(va.PageNumber(addr.Page4K), addr.Page4K, addr.PPN(i))
		radixWalk += rm.Translate(va).Cycles
		hptWalk += hm.Translate(va).Cycles
	}
	if hptWalk >= radixWalk {
		t.Errorf("hashed walks (%d cyc) not cheaper than radix walks (%d cyc)",
			hptWalk, radixWalk)
	}
}

// TestRadixPWCShortensWalks: walks within a cached 2MB region cost one
// memory access instead of four.
func TestRadixPWCShortensWalks(t *testing.T) {
	m, pt, _ := newRadixMMU(t)
	base := addr.VirtAddr(0x4000_0000)
	// Map two pages in the same 2MB region, far apart within it so the
	// second is not TLB-co-resident... 2MB region shares the L1 TLB set
	// rarely; just use different pages.
	pt.Map(base.PageNumber(addr.Page4K), addr.Page4K, 1)
	va2 := base + 300*4096
	pt.Map(va2.PageNumber(addr.Page4K), addr.Page4K, 2)
	first := m.Translate(base).Cycles // cold: 4 accesses
	second := m.Translate(va2).Cycles // PMD-PWC hit: 1 access
	if second >= first {
		t.Errorf("PWC did not shorten the walk: %d then %d cycles", first, second)
	}
}

func TestHugePageTranslation(t *testing.T) {
	m, pt, _ := newRadixMMU(t)
	vpn := addr.VPN(3)
	pt.Map(vpn, addr.Page2M, 42)
	va := vpn.Addr(addr.Page2M) + 0x12345
	r := m.Translate(va)
	if r.Fault || r.Size != addr.Page2M {
		t.Fatalf("huge translate: %+v", r)
	}
	if r.PA != addr.Translate(va, 42, addr.Page2M) {
		t.Errorf("PA = %#x", r.PA)
	}
}

func TestInvalidate(t *testing.T) {
	m, pt, _ := newHPTMMU(t)
	va := addr.VirtAddr(0x9999_0000)
	pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, 5)
	m.Translate(va) // fills TLB
	pt.Unmap(va.PageNumber(addr.Page4K), addr.Page4K)
	m.Invalidate(va, addr.Page4K)
	if r := m.Translate(va); !r.Fault {
		t.Error("translation survived unmap+invalidate")
	}
}

func TestStatsCounters(t *testing.T) {
	m, pt, _ := newHPTMMU(t)
	va := addr.VirtAddr(0xABC_0000)
	pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, 1)
	m.Translate(va) // walk
	m.Translate(va) // L1 hit
	st := m.Stats()
	if st.Translations != 2 || st.Walks != 1 || st.L1Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.WalkCycles == 0 {
		t.Error("walk cycles not accumulated")
	}
}
