// Package mmu composes the TLB hierarchy, the page-walk machinery (radix
// page-walk caches or cuckoo walk caches), and the data-cache hierarchy
// into the address-translation front end the simulator drives.
//
// Two MMU variants exist, one per page-table family:
//
//   - Radix: sequential tree walk, accelerated by three page-walk caches
//     (PWCs) that skip upper levels (Table III: 3 × 32 entries, 4 cyc).
//   - HPT (ECPT or ME-HPT): parallel cuckoo-way probes, pruned by the CWCs;
//     the ME-HPT L2P access is overlapped with the CWC lookup (Section V-D)
//     so both variants see the same walk-latency structure.
package mmu

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/cwc"
	"repro/internal/hashfn"
	"repro/internal/pt"
	"repro/internal/radix"
	"repro/internal/tlb"
)

// Result is the outcome of one translation.
type Result struct {
	PA     addr.PhysAddr
	Size   addr.PageSize
	Cycles uint64
	Fault  bool // no translation: the OS must handle a page fault
}

// Stats aggregates translation behaviour.
type Stats struct {
	Translations uint64
	L1Hits       uint64
	L2Hits       uint64
	Walks        uint64
	WalkCycles   uint64
	Faults       uint64
}

// HPTPageTable is the interface both ecpt.PageTable and mehpt.PageTable
// satisfy: the hashed-walk operations the MMU needs.
type HPTPageTable interface {
	//mehpt:hotpath
	Translate(va addr.VirtAddr) (pt.Translation, bool)
	//mehpt:hotpath
	WayOf(va addr.VirtAddr, s addr.PageSize) (int, bool)
	//mehpt:hotpath
	WayProbeAddr(va addr.VirtAddr, s addr.PageSize, way int) addr.PhysAddr
	// Walk fuses Translate + WayOf + WayProbeAddr for the TLB-miss path:
	// one probe sweep resolves the translation and the winning way's probe
	// address, with the same statistics footprint as the three separate
	// calls.
	//mehpt:hotpath
	Walk(va addr.VirtAddr) (pt.Translation, addr.PhysAddr, bool)
}

// HPT is the MMU for hashed page tables.
type HPT struct {
	TLB   *tlb.Hierarchy
	Mem   *cache.Hierarchy
	Table HPTPageTable
	CWC   *cwc.Walker
	stats Stats
}

// NewHPT wires an HPT MMU with Table III structures.
func NewHPT(table HPTPageTable, mem *cache.Hierarchy) *HPT {
	return &HPT{
		TLB:   tlb.NewTableIII(),
		Mem:   mem,
		Table: table,
		CWC:   cwc.New(),
	}
}

// Stats returns translation counters.
func (m *HPT) Stats() Stats { return m.stats }

// Translate resolves va, modelling the full latency of TLB lookup and, on a
// miss, the hashed page walk.
//mehpt:hotpath
func (m *HPT) Translate(va addr.VirtAddr) Result {
	m.stats.Translations++
	var cycles uint64
	for _, s := range addr.Sizes() {
		r, lat := m.TLB.Lookup(va, s)
		switch r {
		case tlb.HitL1:
			m.stats.L1Hits++
			tr, ok := m.Table.Translate(va)
			if !ok || tr.Size != s {
				break // stale TLB path cannot happen; fall through to walk
			}
			return Result{PA: addr.Translate(va, tr.PPN, s), Size: s, Cycles: lat}
		case tlb.HitL2:
			m.stats.L2Hits++
			tr, ok := m.Table.Translate(va)
			if !ok || tr.Size != s {
				break
			}
			return Result{PA: addr.Translate(va, tr.PPN, s), Size: s, Cycles: lat}
		}
		if cycles < lat {
			cycles = lat // per-size TLB lookups proceed in parallel
		}
	}
	// TLB miss: hashed page walk. CRC hash units run in parallel with the
	// CWC lookup (both fixed-latency); the ME-HPT L2P access hides behind
	// the CWC as well (Section V-D), so the pre-probe latency is
	// max(hash, CWC) = CWC.
	m.stats.Walks++
	walk := uint64(hashfn.Latency)
	hit, cwtPA, cwcLat := m.CWC.Probe(va)
	if cwcLat > walk {
		walk = cwcLat
	}
	if !hit {
		// The CWT is compact metadata (8B per 2MB region) that lives in the
		// regular cache hierarchy and caches well, unlike page-table lines.
		walk += m.Mem.Access(cwtPA)
	}
	tr, probePA, ok := m.Table.Walk(va)
	if !ok {
		// The CWT indicates no translation at any size: fault without
		// probing the HPTs.
		m.stats.Faults++
		m.stats.WalkCycles += walk
		return Result{Cycles: cycles + walk, Fault: true}
	}
	walk += m.Mem.AccessPT(probePA)
	m.stats.WalkCycles += walk
	m.TLB.Insert(va, tr.Size)
	return Result{
		PA:     addr.Translate(va, tr.PPN, tr.Size),
		Size:   tr.Size,
		Cycles: cycles + walk,
	}
}

// Invalidate drops TLB and CWC state for va (unmap, page-size promotion).
func (m *HPT) Invalidate(va addr.VirtAddr, s addr.PageSize) {
	m.TLB.Invalidate(va, s)
	m.CWC.Invalidate(va)
}

// FlushTranslation empties the TLBs and CWCs — the per-address-space
// translation state a no-ASID context switch must drop. The data-cache
// hierarchy is untouched: it is physically indexed and belongs to the core,
// not the address space.
func (m *HPT) FlushTranslation() {
	m.TLB.Flush()
	m.CWC.Flush()
}

// Bind retargets this MMU shard at a new address space: table becomes the
// walk target and all translation caches are flushed. The multi-tenant
// scheduler calls this at every quantum boundary, so one MMU instance per
// core serves hundreds of processes.
func (m *HPT) Bind(table HPTPageTable) {
	m.Table = table
	m.FlushTranslation()
}

// pwc is one page-walk cache level: fully associative over VA prefixes.
type pwc struct {
	shift   uint
	entries int
	tags    []uint64
}

//mehpt:hotpath
func (c *pwc) lookup(va addr.VirtAddr) bool {
	tag := uint64(va) >> c.shift
	for i, t := range c.tags {
		if t == tag+1 {
			copy(c.tags[1:i+1], c.tags[:i])
			c.tags[0] = tag + 1
			return true
		}
	}
	return false
}

//mehpt:hotpath
func (c *pwc) insert(va addr.VirtAddr) {
	if c.lookup(va) {
		return
	}
	if len(c.tags) < c.entries {
		c.tags = append(c.tags, 0) //mehpt:allow hotalloc -- one-time warm-up growth up to c.entries, amortized to zero
	}
	copy(c.tags[1:], c.tags)
	c.tags[0] = uint64(va)>>c.shift + 1
}

// pwcLatency is the PWC round trip (Table III: 4 cycles).
const pwcLatency = 4

// Radix is the MMU for the radix-tree baseline.
type Radix struct {
	TLB   *tlb.Hierarchy
	Mem   *cache.Hierarchy
	Table *radix.PageTable
	// pwcs[0] caches PMD entries (skip to PTE), [1] PUD entries (skip to
	// PMD), [2] PGD entries (skip to PUD).
	pwcs  [3]pwc
	stats Stats
	// walkBuf is the scratch buffer AppendWalkAddrs fills on every TLB
	// miss; a walk touches at most MaxLevels entries, so the steady-state
	// walk path never allocates.
	walkBuf [radix.MaxLevels]addr.PhysAddr
}

// NewRadix wires a radix MMU with Table III structures: 3 PWC levels of 32
// entries each.
func NewRadix(table *radix.PageTable, mem *cache.Hierarchy) *Radix {
	m := &Radix{TLB: tlb.NewTableIII(), Mem: mem, Table: table}
	m.pwcs[0] = pwc{shift: 21, entries: 32} // PMD entry: covers 2MB
	m.pwcs[1] = pwc{shift: 30, entries: 32} // PUD entry: covers 1GB
	m.pwcs[2] = pwc{shift: 39, entries: 32} // PGD entry: covers 512GB
	return m
}

// Stats returns translation counters.
func (m *Radix) Stats() Stats { return m.stats }

// Translate resolves va through the TLBs and, on a miss, a sequential tree
// walk whose upper levels the PWCs can skip.
//mehpt:hotpath
func (m *Radix) Translate(va addr.VirtAddr) Result {
	m.stats.Translations++
	var cycles uint64
	for _, s := range addr.Sizes() {
		r, lat := m.TLB.Lookup(va, s)
		switch r {
		case tlb.HitL1:
			m.stats.L1Hits++
			tr, ok := m.Table.Translate(va)
			if ok && tr.Size == s {
				return Result{PA: addr.Translate(va, tr.PPN, s), Size: s, Cycles: lat}
			}
		case tlb.HitL2:
			m.stats.L2Hits++
			tr, ok := m.Table.Translate(va)
			if ok && tr.Size == s {
				return Result{PA: addr.Translate(va, tr.PPN, s), Size: s, Cycles: lat}
			}
		}
		if cycles < lat {
			cycles = lat
		}
	}
	m.stats.Walks++
	pas, tr, ok := m.Table.AppendWalkAddrs(m.walkBuf[:0], va)
	// The PWCs are probed in parallel: skip the deepest cached prefix.
	skip := 0
	switch {
	case m.pwcs[0].lookup(va):
		skip = 3 // PGD, PUD, PMD entries cached: only the PTE access remains
	case m.pwcs[1].lookup(va):
		skip = 2
	case m.pwcs[2].lookup(va):
		skip = 1
	}
	if skip > len(pas)-1 {
		skip = len(pas) - 1 // always perform at least the final access
	}
	walk := uint64(pwcLatency)
	for _, pa := range pas[skip:] {
		walk += m.Mem.AccessPT(pa) // sequential: latencies add up
	}
	m.stats.WalkCycles += walk
	if !ok {
		m.stats.Faults++
		return Result{Cycles: cycles + walk, Fault: true}
	}
	// Refill the PWCs with the prefixes this walk resolved.
	if len(pas) >= 2 {
		m.pwcs[2].insert(va)
	}
	if len(pas) >= 3 {
		m.pwcs[1].insert(va)
	}
	if len(pas) >= 4 {
		m.pwcs[0].insert(va)
	}
	m.TLB.Insert(va, tr.Size)
	return Result{
		PA:     addr.Translate(va, tr.PPN, tr.Size),
		Size:   tr.Size,
		Cycles: cycles + walk,
	}
}

// Invalidate drops TLB state for va.
func (m *Radix) Invalidate(va addr.VirtAddr, s addr.PageSize) {
	m.TLB.Invalidate(va, s)
}

// FlushTranslation empties the TLBs and PWCs (no-ASID context switch); the
// physically-indexed data caches stay with the core.
func (m *Radix) FlushTranslation() {
	m.TLB.Flush()
	for i := range m.pwcs {
		m.pwcs[i].tags = m.pwcs[i].tags[:0]
	}
}

// Bind retargets this MMU shard at a new address space, flushing all
// translation caches.
func (m *Radix) Bind(table *radix.PageTable) {
	m.Table = table
	m.FlushTranslation()
}

// MMU is the interface the simulator drives; both variants satisfy it.
type MMU interface {
	//mehpt:hotpath
	Translate(va addr.VirtAddr) Result
	Invalidate(va addr.VirtAddr, s addr.PageSize)
	Stats() Stats
}
