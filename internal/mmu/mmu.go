// Package mmu composes the TLB hierarchy, the page-walk machinery (radix
// page-walk caches or cuckoo walk caches), and the data-cache hierarchy
// into the address-translation front end the simulator drives.
//
// Two MMU variants exist, one per page-table family:
//
//   - Radix: sequential tree walk, accelerated by three page-walk caches
//     (PWCs) that skip upper levels (Table III: 3 × 32 entries, 4 cyc).
//   - HPT (ECPT or ME-HPT): parallel cuckoo-way probes, pruned by the CWCs;
//     the ME-HPT L2P access is overlapped with the CWC lookup (Section V-D)
//     so both variants see the same walk-latency structure.
package mmu

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/cwc"
	"repro/internal/hashfn"
	"repro/internal/pt"
	"repro/internal/radix"
	"repro/internal/tlb"
)

// Result is the outcome of one translation.
type Result struct {
	PA     addr.PhysAddr
	Size   addr.PageSize
	Cycles uint64
	Fault  bool // no translation: the OS must handle a page fault
}

// Stats aggregates translation behaviour.
type Stats struct {
	Translations uint64
	L1Hits       uint64
	L2Hits       uint64
	Walks        uint64
	WalkCycles   uint64
	Faults       uint64
}

// HPTPageTable is the interface both ecpt.PageTable and mehpt.PageTable
// satisfy: the hashed-walk operations the MMU needs.
type HPTPageTable interface {
	//mehpt:hotpath
	Translate(va addr.VirtAddr) (pt.Translation, bool)
	//mehpt:hotpath
	WayOf(va addr.VirtAddr, s addr.PageSize) (int, bool)
	//mehpt:hotpath
	WayProbeAddr(va addr.VirtAddr, s addr.PageSize, way int) addr.PhysAddr
	// Walk fuses Translate + WayOf + WayProbeAddr for the TLB-miss path:
	// one probe sweep resolves the translation and the winning way's probe
	// address, with the same statistics footprint as the three separate
	// calls.
	//mehpt:hotpath
	Walk(va addr.VirtAddr) (pt.Translation, addr.PhysAddr, bool)
}

// HPT is the MMU for hashed page tables.
type HPT struct {
	TLB   *tlb.Hierarchy
	Mem   *cache.Hierarchy
	Table HPTPageTable
	CWC   *cwc.Walker
	stats Stats
}

// NewHPT wires an HPT MMU with Table III structures.
func NewHPT(table HPTPageTable, mem *cache.Hierarchy) *HPT {
	return &HPT{
		TLB:   tlb.NewTableIII(),
		Mem:   mem,
		Table: table,
		CWC:   cwc.New(),
	}
}

// Stats returns translation counters.
func (m *HPT) Stats() Stats { return m.stats }

// Translate resolves va, modelling the full latency of TLB lookup and, on a
// miss, the hashed page walk. TLB hits complete from the cached payload (the
// PPN stored at insert time, as hardware does); the page table is only
// probed on the walk path. TLB coherence — every resident entry resolves in
// the bound table with the same PPN — is the scrubber-enforced invariant
// that makes the payload trustworthy.
//mehpt:hotpath
func (m *HPT) Translate(va addr.VirtAddr) Result {
	m.stats.Translations++
	r, s, pay, lat := m.TLB.LookupVA(va)
	switch r {
	case tlb.HitL1:
		m.stats.L1Hits++
		return Result{PA: addr.Translate(va, addr.PPN(pay), s), Size: s, Cycles: lat}
	case tlb.HitL2:
		m.stats.L2Hits++
		return Result{PA: addr.Translate(va, addr.PPN(pay), s), Size: s, Cycles: lat}
	}
	return m.walk(va, lat)
}

// walk performs the hashed page walk after a full TLB miss whose
// accumulated (parallel-probe) miss latency is tlbLat. Both the scalar
// Translate and the batch pipeline's TranslateWalk funnel through this,
// which keeps their results and stats bit-identical.
//
// CRC hash units run in parallel with the CWC lookup (both fixed-latency);
// the ME-HPT L2P access hides behind the CWC as well (Section V-D), so the
// pre-probe latency is max(hash, CWC) = CWC.
//mehpt:hotpath
func (m *HPT) walk(va addr.VirtAddr, tlbLat uint64) Result {
	m.stats.Walks++
	walk := uint64(hashfn.Latency)
	hit, cwtPA, cwcLat := m.CWC.Probe(va)
	if cwcLat > walk {
		walk = cwcLat
	}
	if !hit {
		// The CWT is compact metadata (8B per 2MB region) that lives in the
		// regular cache hierarchy and caches well, unlike page-table lines.
		walk += m.Mem.Access(cwtPA)
	}
	tr, probePA, ok := m.Table.Walk(va)
	if !ok {
		// The CWT indicates no translation at any size: fault without
		// probing the HPTs.
		m.stats.Faults++
		m.stats.WalkCycles += walk
		return Result{Cycles: tlbLat + walk, Fault: true}
	}
	walk += m.Mem.AccessPT(probePA)
	m.stats.WalkCycles += walk
	m.TLB.Insert(va, tr.Size, uint64(tr.PPN))
	return Result{
		PA:     addr.Translate(va, tr.PPN, tr.Size),
		Size:   tr.Size,
		Cycles: tlbLat + walk,
	}
}

// TranslateWalk completes the pending element a TranslateBatch call stopped
// at: its TLB probes have already run (and been counted) inside the batch,
// so only the page walk remains. missLat is the miss latency TranslateBatch
// returned. Calling Translate instead would double-count the TLB probes.
//mehpt:hotpath
func (m *HPT) TranslateWalk(va addr.VirtAddr, missLat uint64) Result {
	return m.walk(va, missLat)
}

// TranslateBatch resolves the longest TLB-hit prefix of vas into out,
// software-pipelined through tlb.Hierarchy.LookupBatch, and returns the
// resolved count n. Results, statistics, and timing are bit-identical to n
// scalar Translate calls.
//
// When n < len(vas), element n missed every TLB: its probes have been
// performed and counted, and the caller must finish it with
// TranslateWalk(vas[n], missLat) — handling a fault exactly as it would on
// a scalar Translate — before resuming the batch at n+1. A page walk ends
// the batch because it touches the data-cache hierarchy, whose state the
// caller's pending data accesses also touch; everything before it commutes
// (TLB hits touch only TLB state). At most tlb.BatchWidth elements are
// consumed per call.
//mehpt:hotpath
func (m *HPT) TranslateBatch(vas []addr.VirtAddr, out []Result) (int, uint64) {
	if len(vas) > tlb.BatchWidth {
		vas = vas[:tlb.BatchWidth]
	}
	var levels [tlb.BatchWidth]tlb.Result
	var sizes [tlb.BatchWidth]addr.PageSize
	var pays, lats [tlb.BatchWidth]uint64
	n, missLat := m.TLB.LookupBatch(vas, levels[:], sizes[:], pays[:], lats[:])
	for i := 0; i < n; i++ {
		m.stats.Translations++
		if levels[i] == tlb.HitL1 {
			m.stats.L1Hits++
		} else {
			m.stats.L2Hits++
		}
		s := sizes[i]
		out[i] = Result{PA: addr.Translate(vas[i], addr.PPN(pays[i]), s), Size: s, Cycles: lats[i]}
	}
	if n < len(vas) {
		m.stats.Translations++ // element n entered translation; its walk is the caller's
	}
	return n, missLat
}

// TranslateBatchPAs is TranslateBatch fused for the simulator's batched
// loop: resolved elements land directly in pas as physical addresses, and
// the per-element Result metadata collapses into the summed translation
// cycles (all the loop accumulates). State updates and final stats are
// bit-identical to TranslateBatch; only the output shape differs. The
// stop-at-first-full-miss contract is TranslateBatch's: when n < len(vas),
// finish element n with TranslateWalk(vas[n], missLat).
//mehpt:hotpath
func (m *HPT) TranslateBatchPAs(vas []addr.VirtAddr, pas []addr.PhysAddr) (int, uint64, uint64) {
	if len(vas) > tlb.BatchWidth {
		vas = vas[:tlb.BatchWidth]
	}
	n, l1, latSum, missLat := m.TLB.LookupBatchPAs(vas, pas)
	m.stats.Translations += uint64(n)
	m.stats.L1Hits += l1
	m.stats.L2Hits += uint64(n) - l1
	if n < len(vas) {
		m.stats.Translations++ // element n entered translation; its walk is the caller's
	}
	return n, latSum, missLat
}

// Invalidate drops TLB and CWC state for va (unmap, page-size promotion).
func (m *HPT) Invalidate(va addr.VirtAddr, s addr.PageSize) {
	m.TLB.Invalidate(va, s)
	m.CWC.Invalidate(va)
}

// FlushTranslation empties the TLBs and CWCs — the per-address-space
// translation state a no-ASID context switch must drop. The data-cache
// hierarchy is untouched: it is physically indexed and belongs to the core,
// not the address space.
func (m *HPT) FlushTranslation() {
	m.TLB.Flush()
	m.CWC.Flush()
}

// Bind retargets this MMU shard at a new address space: table becomes the
// walk target and all translation caches are flushed. The multi-tenant
// scheduler calls this at every quantum boundary, so one MMU instance per
// core serves hundreds of processes.
func (m *HPT) Bind(table HPTPageTable) {
	m.Table = table
	m.FlushTranslation()
}

// pwc is one page-walk cache level: fully associative over VA prefixes.
type pwc struct {
	shift   uint
	entries int
	tags    []uint64
}

//mehpt:hotpath
func (c *pwc) lookup(va addr.VirtAddr) bool {
	tag := uint64(va) >> c.shift
	for i, t := range c.tags {
		if t == tag+1 {
			copy(c.tags[1:i+1], c.tags[:i])
			c.tags[0] = tag + 1
			return true
		}
	}
	return false
}

//mehpt:hotpath
func (c *pwc) insert(va addr.VirtAddr) {
	if c.lookup(va) {
		return
	}
	if len(c.tags) < c.entries {
		c.tags = append(c.tags, 0) //mehpt:allow hotalloc -- one-time warm-up growth up to c.entries, amortized to zero
	}
	copy(c.tags[1:], c.tags)
	c.tags[0] = uint64(va)>>c.shift + 1
}

// pwcLatency is the PWC round trip (Table III: 4 cycles).
const pwcLatency = 4

// Radix is the MMU for the radix-tree baseline.
type Radix struct {
	TLB   *tlb.Hierarchy
	Mem   *cache.Hierarchy
	Table *radix.PageTable
	// pwcs[0] caches PMD entries (skip to PTE), [1] PUD entries (skip to
	// PMD), [2] PGD entries (skip to PUD).
	pwcs  [3]pwc
	stats Stats
	// walkBuf is the scratch buffer AppendWalkAddrs fills on every TLB
	// miss; a walk touches at most MaxLevels entries, so the steady-state
	// walk path never allocates.
	walkBuf [radix.MaxLevels]addr.PhysAddr
}

// NewRadix wires a radix MMU with Table III structures: 3 PWC levels of 32
// entries each.
func NewRadix(table *radix.PageTable, mem *cache.Hierarchy) *Radix {
	m := &Radix{TLB: tlb.NewTableIII(), Mem: mem, Table: table}
	m.pwcs[0] = pwc{shift: 21, entries: 32} // PMD entry: covers 2MB
	m.pwcs[1] = pwc{shift: 30, entries: 32} // PUD entry: covers 1GB
	m.pwcs[2] = pwc{shift: 39, entries: 32} // PGD entry: covers 512GB
	return m
}

// Stats returns translation counters.
func (m *Radix) Stats() Stats { return m.stats }

// Translate resolves va through the TLBs and, on a miss, a sequential tree
// walk whose upper levels the PWCs can skip. As in the HPT variant, TLB
// hits complete from the cached PPN payload; only walks touch the tree.
//mehpt:hotpath
func (m *Radix) Translate(va addr.VirtAddr) Result {
	m.stats.Translations++
	r, s, pay, lat := m.TLB.LookupVA(va)
	switch r {
	case tlb.HitL1:
		m.stats.L1Hits++
		return Result{PA: addr.Translate(va, addr.PPN(pay), s), Size: s, Cycles: lat}
	case tlb.HitL2:
		m.stats.L2Hits++
		return Result{PA: addr.Translate(va, addr.PPN(pay), s), Size: s, Cycles: lat}
	}
	return m.walk(va, lat)
}

// walk performs the radix tree walk after a full TLB miss with accumulated
// miss latency tlbLat; shared verbatim by Translate and TranslateWalk.
//mehpt:hotpath
func (m *Radix) walk(va addr.VirtAddr, tlbLat uint64) Result {
	m.stats.Walks++
	pas, tr, ok := m.Table.AppendWalkAddrs(m.walkBuf[:0], va)
	// The PWCs are probed in parallel: skip the deepest cached prefix.
	skip := 0
	switch {
	case m.pwcs[0].lookup(va):
		skip = 3 // PGD, PUD, PMD entries cached: only the PTE access remains
	case m.pwcs[1].lookup(va):
		skip = 2
	case m.pwcs[2].lookup(va):
		skip = 1
	}
	if skip > len(pas)-1 {
		skip = len(pas) - 1 // always perform at least the final access
	}
	walk := uint64(pwcLatency)
	for _, pa := range pas[skip:] {
		walk += m.Mem.AccessPT(pa) // sequential: latencies add up
	}
	m.stats.WalkCycles += walk
	if !ok {
		m.stats.Faults++
		return Result{Cycles: tlbLat + walk, Fault: true}
	}
	// Refill the PWCs with the prefixes this walk resolved.
	if len(pas) >= 2 {
		m.pwcs[2].insert(va)
	}
	if len(pas) >= 3 {
		m.pwcs[1].insert(va)
	}
	if len(pas) >= 4 {
		m.pwcs[0].insert(va)
	}
	m.TLB.Insert(va, tr.Size, uint64(tr.PPN))
	return Result{
		PA:     addr.Translate(va, tr.PPN, tr.Size),
		Size:   tr.Size,
		Cycles: tlbLat + walk,
	}
}

// TranslateWalk completes the pending element a TranslateBatch call stopped
// at; see HPT.TranslateWalk for the contract.
//mehpt:hotpath
func (m *Radix) TranslateWalk(va addr.VirtAddr, missLat uint64) Result {
	return m.walk(va, missLat)
}

// TranslateBatch resolves the longest TLB-hit prefix of vas into out; see
// HPT.TranslateBatch for the contract — the two are line-for-line the same
// pipeline over their shared TLB hierarchy.
//mehpt:hotpath
func (m *Radix) TranslateBatch(vas []addr.VirtAddr, out []Result) (int, uint64) {
	if len(vas) > tlb.BatchWidth {
		vas = vas[:tlb.BatchWidth]
	}
	var levels [tlb.BatchWidth]tlb.Result
	var sizes [tlb.BatchWidth]addr.PageSize
	var pays, lats [tlb.BatchWidth]uint64
	n, missLat := m.TLB.LookupBatch(vas, levels[:], sizes[:], pays[:], lats[:])
	for i := 0; i < n; i++ {
		m.stats.Translations++
		if levels[i] == tlb.HitL1 {
			m.stats.L1Hits++
		} else {
			m.stats.L2Hits++
		}
		s := sizes[i]
		out[i] = Result{PA: addr.Translate(vas[i], addr.PPN(pays[i]), s), Size: s, Cycles: lats[i]}
	}
	if n < len(vas) {
		m.stats.Translations++ // element n entered translation; its walk is the caller's
	}
	return n, missLat
}

// TranslateBatchPAs is the Radix twin of HPT.TranslateBatchPAs: the fused
// batch entry point the simulator's loop drives, bit-identical in state and
// stats to TranslateBatch.
//mehpt:hotpath
func (m *Radix) TranslateBatchPAs(vas []addr.VirtAddr, pas []addr.PhysAddr) (int, uint64, uint64) {
	if len(vas) > tlb.BatchWidth {
		vas = vas[:tlb.BatchWidth]
	}
	n, l1, latSum, missLat := m.TLB.LookupBatchPAs(vas, pas)
	m.stats.Translations += uint64(n)
	m.stats.L1Hits += l1
	m.stats.L2Hits += uint64(n) - l1
	if n < len(vas) {
		m.stats.Translations++ // element n entered translation; its walk is the caller's
	}
	return n, latSum, missLat
}

// Invalidate drops TLB state for va.
func (m *Radix) Invalidate(va addr.VirtAddr, s addr.PageSize) {
	m.TLB.Invalidate(va, s)
}

// FlushTranslation empties the TLBs and PWCs (no-ASID context switch); the
// physically-indexed data caches stay with the core.
func (m *Radix) FlushTranslation() {
	m.TLB.Flush()
	for i := range m.pwcs {
		m.pwcs[i].tags = m.pwcs[i].tags[:0]
	}
}

// Bind retargets this MMU shard at a new address space, flushing all
// translation caches.
func (m *Radix) Bind(table *radix.PageTable) {
	m.Table = table
	m.FlushTranslation()
}

// MMU is the interface the simulator drives; both variants satisfy it.
type MMU interface {
	//mehpt:hotpath
	Translate(va addr.VirtAddr) Result
	Invalidate(va addr.VirtAddr, s addr.PageSize)
	Stats() Stats
}

// BatchWidth is the translation pipeline width; batch callers size their
// buffers to it. Re-exported from the TLB layer, which anchors the value.
const BatchWidth = tlb.BatchWidth

// TranslateBatchGeneric is the batch entry point for MMU implementations
// without a pipelined path: it translates elements of vas in scalar order
// until one faults, filling out[i] with each Result. It returns the number
// of non-faulting translations n; when n < len(vas), out[n] holds the
// faulted Result (its cycles already charged) and the caller services the
// fault and retries vas[n] exactly as it would after a scalar Translate.
//
// Unlike the concrete batch paths, every returned element is fully
// translated — walks included — so it is only interleaving-safe for MMUs
// whose walks do not touch state the caller's deferred per-element work
// (e.g. data-cache accesses) also touches. The simulator's generic trace
// loop therefore keeps per-element scalar interleaving and batches only
// trace decode; this helper serves drivers that do no per-element work
// between translations.
func TranslateBatchGeneric(m MMU, vas []addr.VirtAddr, out []Result) int {
	if len(vas) > tlb.BatchWidth {
		vas = vas[:tlb.BatchWidth]
	}
	for i, va := range vas {
		out[i] = m.Translate(va)
		if out[i].Fault {
			return i
		}
	}
	return len(vas)
}
