package mmu

// RestoreStats reinstates translation counters captured by Stats. The
// checkpoint serializes only the counters: the TLBs, CWCs, and PWCs are
// flushed at every quantum boundary by Bind, so a round-boundary snapshot
// never needs their contents.
func (m *HPT) RestoreStats(s Stats) { m.stats = s }

// RestoreStats reinstates translation counters captured by Stats.
func (m *Radix) RestoreStats(s Stats) { m.stats = s }
