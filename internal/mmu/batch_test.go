package mmu

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// batchMMU is the surface both concrete MMUs expose to the batched loop.
type batchMMU interface {
	MMU
	TranslateWalk(va addr.VirtAddr, missLat uint64) Result
	TranslateBatch(vas []addr.VirtAddr, out []Result) (int, uint64)
	TranslateBatchPAs(vas []addr.VirtAddr, pas []addr.PhysAddr) (int, uint64, uint64)
}

type vaMapper interface {
	Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error)
}

// batchPair builds two identical MMU+table pairs of the requested kind and
// maps the same pages into both: mapped 4K pages, a 2M page, and a deliberate
// unmapped hole so batches hit the fault path too.
func batchPair(t *testing.T, kind string) (a, b batchMMU, vas []addr.VirtAddr) {
	t.Helper()
	build := func() (batchMMU, vaMapper) {
		if kind == "Radix" {
			m, pt, _ := newRadixMMU(t)
			return m, pt
		}
		m, pt, _ := newHPTMMU(t)
		return m, pt
	}
	am, apt := build()
	bm, bpt := build()
	base := addr.VirtAddr(0x4000_0000)
	for i := 0; i < 512; i++ {
		va := base + addr.VirtAddr(i)*4096
		if _, err := apt.Map(va.PageNumber(addr.Page4K), addr.Page4K, addr.PPN(i+1)); err != nil {
			t.Fatal(err)
		}
		if _, err := bpt.Map(va.PageNumber(addr.Page4K), addr.Page4K, addr.PPN(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	huge := addr.VPN(0x8000_0000 >> 21)
	apt.Map(huge, addr.Page2M, 7777)
	bpt.Map(huge, addr.Page2M, 7777)

	rng := rand.New(rand.NewSource(11))
	vas = make([]addr.VirtAddr, 3000)
	for i := range vas {
		switch rng.Intn(10) {
		case 0: // unmapped hole: faults
			vas[i] = addr.VirtAddr(0x7000_0000) + addr.VirtAddr(rng.Intn(64))*4096
		case 1: // 2M page
			vas[i] = addr.VirtAddr(0x8000_0000) + addr.VirtAddr(rng.Intn(1<<21))
		default:
			vas[i] = base + addr.VirtAddr(rng.Intn(512))*4096
		}
	}
	return am, bm, vas
}

// drainBatch drives vas through TranslateBatch in segments of varying width
// (including width 1 and non-multiples of BatchWidth), completing each full
// miss with TranslateWalk, and returns one Result per element.
func drainBatch(m batchMMU, vas []addr.VirtAddr) []Result {
	out := make([]Result, 0, len(vas))
	var buf [BatchWidth]Result
	segments := []int{1, 5, 31, 64, 64, 17}
	pos, seg := 0, 0
	for pos < len(vas) {
		k := segments[seg%len(segments)]
		seg++
		if k > len(vas)-pos {
			k = len(vas) - pos
		}
		n, missLat := m.TranslateBatch(vas[pos:pos+k], buf[:])
		out = append(out, buf[:n]...)
		if n < k {
			out = append(out, m.TranslateWalk(vas[pos+n], missLat))
			pos += n + 1
			continue
		}
		pos += n
	}
	return out
}

// TestTranslateBatchMatchesScalar: the batched pipeline must be bit-identical
// — per-element Result and final Stats — to scalar Translate calls on an
// identically built MMU, for both MMU variants, across hit, miss, huge-page,
// and fault elements.
func TestTranslateBatchMatchesScalar(t *testing.T) {
	for _, kind := range []string{"Radix", "HPT"} {
		t.Run(kind, func(t *testing.T) {
			scalar, batch, vas := batchPair(t, kind)
			got := drainBatch(batch, vas)
			if len(got) != len(vas) {
				t.Fatalf("batch drained %d of %d elements", len(got), len(vas))
			}
			for i, va := range vas {
				want := scalar.Translate(va)
				if got[i] != want {
					t.Fatalf("element %d (va %#x): batch %+v, scalar %+v", i, va, got[i], want)
				}
			}
			if bs, ss := batch.Stats(), scalar.Stats(); bs != ss {
				t.Errorf("stats diverge: batch %+v, scalar %+v", bs, ss)
			}
		})
	}
}

// TestTranslateBatchPAsMatchesBatch: the fused physical-address entry point
// must consume the same prefixes and produce the same addresses, summed
// cycles, miss latencies, and statistics as the Result-shaped batch API.
func TestTranslateBatchPAsMatchesBatch(t *testing.T) {
	for _, kind := range []string{"Radix", "HPT"} {
		t.Run(kind, func(t *testing.T) {
			ref, fused, vas := batchPair(t, kind)
			var buf [BatchWidth]Result
			var pas [BatchWidth]addr.PhysAddr
			segments := []int{64, 3, 31, 1, 64, 20}
			pos, seg := 0, 0
			for pos < len(vas) {
				k := segments[seg%len(segments)]
				seg++
				if k > len(vas)-pos {
					k = len(vas) - pos
				}
				chunk := vas[pos : pos+k]
				rn, rMiss := ref.TranslateBatch(chunk, buf[:])
				fn, latSum, fMiss := fused.TranslateBatchPAs(chunk, pas[:k])
				if fn != rn || fMiss != rMiss {
					t.Fatalf("pos %d: fused (n=%d miss=%d), batch (n=%d miss=%d)", pos, fn, fMiss, rn, rMiss)
				}
				var wantSum uint64
				for i := 0; i < rn; i++ {
					wantSum += buf[i].Cycles
					if pas[i] != buf[i].PA {
						t.Fatalf("pos %d+%d: pa %#x, batch %#x", pos, i, pas[i], buf[i].PA)
					}
				}
				if latSum != wantSum {
					t.Fatalf("pos %d: latSum %d, batch cycles %d", pos, latSum, wantSum)
				}
				if rn < k {
					rw := ref.TranslateWalk(chunk[rn], rMiss)
					fw := fused.TranslateWalk(chunk[rn], fMiss)
					if rw != fw {
						t.Fatalf("pos %d: walk results diverge: %+v vs %+v", pos, rw, fw)
					}
					pos += rn + 1
					continue
				}
				pos += rn
			}
			if fs, rs := fused.Stats(), ref.Stats(); fs != rs {
				t.Errorf("stats diverge: fused %+v, batch %+v", fs, rs)
			}
		})
	}
}

// TestTranslateBatchPAsAllocFree guards the simulator's steady-state batch
// entry point on both MMU variants: a warm full-width batch must not touch
// the heap.
func TestTranslateBatchPAsAllocFree(t *testing.T) {
	build := map[string]func() (batchMMU, vaMapper){
		"Radix": func() (batchMMU, vaMapper) { m, pt, _ := newRadixMMU(t); return m, pt },
		"HPT":   func() (batchMMU, vaMapper) { m, pt, _ := newHPTMMU(t); return m, pt },
	}
	for _, kind := range []string{"Radix", "HPT"} {
		t.Run(kind, func(t *testing.T) {
			m, pt := build[kind]()
			var vas [BatchWidth]addr.VirtAddr
			var pas [BatchWidth]addr.PhysAddr
			base := addr.VirtAddr(0x4000_0000)
			for i := range vas {
				vas[i] = base + addr.VirtAddr(i)*4096
				if _, err := pt.Map(vas[i].PageNumber(addr.Page4K), addr.Page4K, addr.PPN(i+1)); err != nil {
					t.Fatal(err)
				}
				m.Translate(vas[i]) // warm the TLBs
			}
			if n := testing.AllocsPerRun(1000, func() {
				got, _, _ := m.TranslateBatchPAs(vas[:], pas[:])
				if got != BatchWidth {
					t.Fatalf("warm batch resolved %d/%d", got, BatchWidth)
				}
			}); n != 0 {
				t.Errorf("TranslateBatchPAs allocates %v objects per call", n)
			}
		})
	}
}
