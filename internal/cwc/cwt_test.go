package cwc

import (
	"testing"

	"repro/internal/addr"
)

func TestWaySet(t *testing.T) {
	var s WaySet
	s = s.Add(0).Add(2)
	if !s.Has(0) || s.Has(1) || !s.Has(2) {
		t.Errorf("membership wrong: %b", s)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	s = s.Remove(0)
	if s.Has(0) || s.Count() != 1 {
		t.Errorf("after remove: %b", s)
	}
}

func TestNoteAndCandidates(t *testing.T) {
	ct := NewTables()
	va := addr.VirtAddr(0x4000_0000)
	ct.Note(va, addr.Page4K, 1)
	c := ct.Candidates(va)
	if !c[addr.Page4K].Has(1) {
		t.Error("4KB way 1 not a candidate")
	}
	if c[addr.Page2M] != 0 || c[addr.Page1G] != 0 {
		t.Error("phantom candidates for unused sizes")
	}
	if ct.TotalProbes(va) != 1 {
		t.Errorf("probes = %d, want 1", ct.TotalProbes(va))
	}
	// A different 2MB region in the same 1GB region has no 4KB candidates.
	if c2 := ct.Candidates(va + 2*addr.MB); c2[addr.Page4K] != 0 {
		t.Error("4KB candidacy leaked across 2MB regions")
	}
}

func TestGrainSeparation(t *testing.T) {
	ct := NewTables()
	va := addr.VirtAddr(0x8000_0000)
	ct.Note(va, addr.Page2M, 0)
	// 2MB pages are tracked at 1GB grain: a VA 500MB away in the same 1GB
	// region shares the candidacy.
	same := va + 500*addr.MB
	if uint64(va)>>30 != uint64(same)>>30 {
		t.Fatal("test addresses not in same 1GB region")
	}
	if c := ct.Candidates(same); !c[addr.Page2M].Has(0) {
		t.Error("2MB candidacy not visible at 1GB grain")
	}
	if c := ct.Candidates(va + 2*addr.GB); c[addr.Page2M] != 0 {
		t.Error("2MB candidacy leaked across 1GB regions")
	}
}

func TestDropClearsWhenLastLeaves(t *testing.T) {
	ct := NewTables()
	va1 := addr.VirtAddr(0x4000_0000)
	va2 := va1 + 4096 // same 2MB region
	ct.Note(va1, addr.Page4K, 0)
	ct.Note(va2, addr.Page4K, 2)
	ct.Drop(va1, addr.Page4K)
	// One translation remains: the (conservative) candidates stay.
	if c := ct.Candidates(va2); c[addr.Page4K].Count() == 0 {
		t.Error("candidates cleared while a translation remains")
	}
	ct.Drop(va2, addr.Page4K)
	if c := ct.Candidates(va2); c[addr.Page4K] != 0 {
		t.Error("candidates survive after the last translation left")
	}
	if pmd, _ := ct.Entries(); pmd != 0 {
		t.Errorf("empty region entry not reclaimed: %d", pmd)
	}
}

func TestMovedAddsWay(t *testing.T) {
	ct := NewTables()
	va := addr.VirtAddr(0x1000_0000)
	ct.Note(va, addr.Page4K, 0)
	ct.Moved(va, addr.Page4K, 2)
	c := ct.Candidates(va)
	if !c[addr.Page4K].Has(2) {
		t.Error("moved-to way not a candidate")
	}
	// The old way stays conservatively set.
	if !c[addr.Page4K].Has(0) {
		t.Error("conservative old-way bit dropped")
	}
}

func TestZeroCandidatesMeansFault(t *testing.T) {
	ct := NewTables()
	if ct.TotalProbes(0xDEAD_BEEF_000) != 0 {
		t.Error("unmapped VA has probe candidates")
	}
}

func TestMultiSizeRegion(t *testing.T) {
	ct := NewTables()
	va := addr.VirtAddr(0x4000_0000)
	ct.Note(va, addr.Page4K, 0)
	ct.Note(va, addr.Page2M, 1)
	if p := ct.TotalProbes(va); p != 2 {
		t.Errorf("probes = %d, want 2 (one per size)", p)
	}
}
