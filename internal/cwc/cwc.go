// Package cwc models the Cuckoo Walk Tables and Cuckoo Walk Caches of ECPT,
// which ME-HPT inherits: small MMU caches that record, per virtual-address
// region, which ways of which page-size HPT can hold a translation, so a
// hardware walk probes (ideally) a single memory location.
//
// The model is functional: the authoritative "which way holds it" answer
// comes from the page table itself; the CWC decides only whether the walker
// *knows* that answer up front (CWC hit — one targeted probe) or must first
// fetch the CWT entry from memory (CWC miss — one extra memory access).
// This captures the latency structure the paper relies on, including hiding
// the L2P access behind the CWC lookup (Section V-D, Figure 7).
package cwc

import (
	"repro/internal/addr"
)

// Latency is the CWC round-trip in cycles (Table III: PMD-CWC and PUD-CWC
// are both 4 cycles). The ME-HPT L2P access (shift + access + mask, 4
// cycles) is fully overlapped with this, so it never appears separately on
// the walk path.
const Latency = 4

// cwtBase is a synthetic physical region where CWT entries notionally live;
// it only needs to be distinct from data/page-table addresses so that cache
// interactions are realistic.
const cwtBase = addr.PhysAddr(1) << 45

// small is a tiny fully-associative LRU cache of region tags.
type small struct {
	entries int
	tags    []uint64
}

//mehpt:hotpath
func (c *small) lookup(tag uint64) bool {
	for i, t := range c.tags {
		if t == tag+1 {
			copy(c.tags[1:i+1], c.tags[:i])
			c.tags[0] = tag + 1
			return true
		}
	}
	return false
}

//mehpt:hotpath
func (c *small) insert(tag uint64) {
	if c.lookup(tag) {
		return
	}
	if len(c.tags) < c.entries {
		c.tags = append(c.tags, 0) //mehpt:allow hotalloc -- one-time warm-up growth up to c.entries, amortized to zero
	}
	copy(c.tags[1:], c.tags)
	c.tags[0] = tag + 1
}

// Stats counts walker cache behaviour.
type Stats struct {
	Hits, Misses uint64
}

// Walker is the CWC pair: a PMD-grain cache (2MB regions, 16 entries) and a
// PUD-grain cache (1GB regions, 2 entries), per Table III.
type Walker struct {
	pmd, pud small
	stats    Stats
}

// New returns a walker with the paper's CWC geometry.
func New() *Walker {
	return &Walker{pmd: small{entries: 16}, pud: small{entries: 2}}
}

// Probe consults the CWCs for va. On a hit the walker already knows the
// candidate (page size, way) set and pays only the CWC latency. On a miss
// it must also fetch the CWT entry from memory; the returned address is
// that extra access (to be priced by the cache hierarchy). Probing fills
// the caches, as the subsequent CWT fetch would.
//mehpt:hotpath
func (w *Walker) Probe(va addr.VirtAddr) (hit bool, cwtFetch addr.PhysAddr, lat uint64) {
	pmdRegion := uint64(va) >> addr.Page2M.Shift()
	pudRegion := uint64(va) >> addr.Page1G.Shift()
	if w.pmd.lookup(pmdRegion) || w.pud.lookup(pudRegion) {
		w.stats.Hits++
		return true, 0, Latency
	}
	w.stats.Misses++
	w.pmd.insert(pmdRegion)
	w.pud.insert(pudRegion)
	return false, cwtBase + addr.PhysAddr(pmdRegion*8), Latency
}

// Invalidate drops the region covering va (page-size change, unmap).
func (w *Walker) Invalidate(va addr.VirtAddr) {
	pmdRegion := uint64(va) >> addr.Page2M.Shift()
	for i, t := range w.pmd.tags {
		if t == pmdRegion+1 {
			w.pmd.tags = append(w.pmd.tags[:i], w.pmd.tags[i+1:]...)
			break
		}
	}
}

// Flush empties both CWCs. CWT contents are per address space and the
// walker caches carry no ASID, so a context switch must drop them. The tag
// slices are truncated in place, keeping the flush allocation-free.
func (w *Walker) Flush() {
	w.pmd.tags = w.pmd.tags[:0]
	w.pud.tags = w.pud.tags[:0]
}

// Stats returns hit/miss counters.
func (w *Walker) Stats() Stats { return w.stats }
