package cwc

import (
	"testing"

	"repro/internal/addr"
)

func TestColdMissThenHit(t *testing.T) {
	w := New()
	va := addr.VirtAddr(0x1234_5000)
	hit, fetch, lat := w.Probe(va)
	if hit {
		t.Fatal("cold probe hit")
	}
	if fetch == 0 {
		t.Fatal("miss returned no CWT fetch address")
	}
	if lat != Latency {
		t.Errorf("latency = %d, want %d", lat, Latency)
	}
	hit, _, _ = w.Probe(va)
	if !hit {
		t.Fatal("second probe missed after fill")
	}
	st := w.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRegionGranularity(t *testing.T) {
	w := New()
	base := addr.VirtAddr(0x4000_0000) // 2MB-aligned
	w.Probe(base)
	// Same 2MB region: hit.
	if hit, _, _ := w.Probe(base + 0x1F_FFFF); !hit {
		t.Error("same-region probe missed")
	}
	// Next 2MB region, same 1GB region: the PUD-grain cache covers it.
	if hit, _, _ := w.Probe(base + 2*addr.MB); !hit {
		t.Error("same-1GB-region probe missed despite PUD-grain entry")
	}
	// A different 1GB region misses both caches.
	if hit, _, _ := w.Probe(base + 8*addr.GB); hit {
		t.Error("distant probe hit")
	}
}

func TestLRUCapacity(t *testing.T) {
	w := New()
	// Fill the 16-entry PMD cache with regions from one 1GB area... which
	// would all hit via the PUD entry; use distinct 1GB regions beyond the
	// 2-entry PUD cache to force PMD behaviour: alternate far apart.
	// Simpler: verify that 20 distinct 1GB regions thrash the 2-entry PUD
	// cache and 16-entry PMD cache.
	for i := 0; i < 20; i++ {
		w.Probe(addr.VirtAddr(uint64(i) * addr.GB))
	}
	// The earliest region must have been evicted from both.
	if hit, _, _ := w.Probe(addr.VirtAddr(0)); hit {
		t.Error("region 0 survived 20 distinct 1GB regions")
	}
}

func TestCWTFetchAddressesDistinct(t *testing.T) {
	w := New()
	_, f1, _ := w.Probe(addr.VirtAddr(0))
	_, f2, _ := w.Probe(addr.VirtAddr(100 * addr.GB))
	if f1 == f2 {
		t.Error("distinct regions share a CWT fetch address")
	}
}

func TestInvalidate(t *testing.T) {
	w := New()
	// Use two far-apart VAs so the PUD cache entries differ.
	a := addr.VirtAddr(5 * addr.GB)
	b := addr.VirtAddr(9 * addr.GB)
	w.Probe(a)
	w.Probe(b)
	w.Invalidate(a)
	// a's PMD entry is gone; its PUD entry may survive, so probe a VA in
	// a's 2MB region but through a fresh walker to check PMD-level removal.
	found := false
	for _, tag := range w.pmd.tags {
		if tag == uint64(a)>>21+1 {
			found = true
		}
	}
	if found {
		t.Error("invalidated PMD region still cached")
	}
}
