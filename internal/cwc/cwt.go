package cwc

import (
	"repro/internal/addr"
)

// This file implements the Cuckoo Walk Tables themselves — the in-memory
// metadata ECPT maintains so a hardware walk knows which page sizes and
// ways can hold a translation for a VA region. The Walker (cwc.go) models
// the caches over these tables; the Tables here are the authoritative
// content, updated by the OS on every map, unmap, and cuckoo move.
//
// Granularity follows ECPT: the PMD-grain table has one entry per 2MB
// region recording, for 4KB-page translations inside the region, a bitmap
// of HPT ways that may hold them, plus a bit for "this region is mapped by
// a single 2MB page in way w". The PUD-grain table does the same at 1GB
// granularity for 2MB-page presence and 1GB pages.

// WaySet is a bitmap of candidate ways (bit i = way i may hold it).
type WaySet uint8

// Add marks way i as a candidate.
func (s WaySet) Add(i int) WaySet { return s | 1<<uint(i) }

// Remove clears way i.
func (s WaySet) Remove(i int) WaySet { return s &^ (1 << uint(i)) }

// Has reports whether way i is a candidate.
func (s WaySet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Count returns the number of candidate ways — the number of parallel
// probes a walk must issue.
func (s WaySet) Count() int {
	n := 0
	for m := s; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// sectionInfo is one CWT entry: per page size, the ways that may hold
// translations for pages in this region.
type sectionInfo struct {
	ways [addr.NumPageSizes]WaySet
	// refs counts live translations per page size so unmap can clear bits
	// only when the last page of a (region, size, way) leaves. The paper's
	// hardware approximates this conservatively; we track it exactly per
	// size (per-way refcounts would be 3x bigger for little gain, so a way
	// bit may stay set conservatively until the size's count reaches 0 —
	// the same kind of overestimate real CWTs make).
	refs [addr.NumPageSizes]uint32
}

// Tables is the two-level CWT: PMD-grain (2MB regions) and PUD-grain (1GB
// regions).
type Tables struct {
	pmd map[uint64]*sectionInfo
	pud map[uint64]*sectionInfo
}

// NewTables returns empty CWTs.
func NewTables() *Tables {
	return &Tables{
		pmd: make(map[uint64]*sectionInfo),
		pud: make(map[uint64]*sectionInfo),
	}
}

func pmdRegion(va addr.VirtAddr) uint64 { return uint64(va) >> addr.Page2M.Shift() }
func pudRegion(va addr.VirtAddr) uint64 { return uint64(va) >> addr.Page1G.Shift() }

// table returns the CWT level responsible for page size s: 4KB pages are
// tracked at PMD grain, 2MB and 1GB pages at PUD grain.
func (t *Tables) table(s addr.PageSize) (map[uint64]*sectionInfo, func(addr.VirtAddr) uint64) {
	if s == addr.Page4K {
		return t.pmd, pmdRegion
	}
	return t.pud, pudRegion
}

// Note records that a translation for va at size s now lives in way w.
func (t *Tables) Note(va addr.VirtAddr, s addr.PageSize, w int) {
	m, region := t.table(s)
	r := region(va)
	si := m[r]
	if si == nil {
		si = &sectionInfo{}
		m[r] = si
	}
	si.ways[s] = si.ways[s].Add(w)
	si.refs[s]++
}

// Moved records a cuckoo displacement of va's translation from way from to
// way to. The from bit stays set conservatively (other pages of the region
// may still live there); only the new way is guaranteed-added.
func (t *Tables) Moved(va addr.VirtAddr, s addr.PageSize, to int) {
	m, region := t.table(s)
	if si := m[region(va)]; si != nil {
		si.ways[s] = si.ways[s].Add(to)
	} else {
		t.Note(va, s, to)
	}
}

// Drop records that a translation for va at size s was removed. When the
// region's last translation of that size goes, the way bitmap clears.
func (t *Tables) Drop(va addr.VirtAddr, s addr.PageSize) {
	m, region := t.table(s)
	r := region(va)
	si := m[r]
	if si == nil {
		return
	}
	if si.refs[s] > 0 {
		si.refs[s]--
	}
	if si.refs[s] == 0 {
		si.ways[s] = 0
	}
	empty := true
	for _, sz := range addr.Sizes() {
		if si.refs[sz] != 0 {
			empty = false
		}
	}
	if empty {
		delete(m, r)
	}
}

// Candidates returns, for each page size, the ways a walk for va must
// probe. A zero set for every size means the CWT proves no translation
// exists and the walk can fault without touching the HPTs.
func (t *Tables) Candidates(va addr.VirtAddr) [addr.NumPageSizes]WaySet {
	var out [addr.NumPageSizes]WaySet
	if si := t.pmd[pmdRegion(va)]; si != nil {
		out[addr.Page4K] = si.ways[addr.Page4K]
	}
	if si := t.pud[pudRegion(va)]; si != nil {
		out[addr.Page2M] = si.ways[addr.Page2M]
		out[addr.Page1G] = si.ways[addr.Page1G]
	}
	return out
}

// TotalProbes returns the number of parallel HPT probes the candidate sets
// imply.
func (t *Tables) TotalProbes(va addr.VirtAddr) int {
	n := 0
	for _, ws := range t.Candidates(va) {
		n += ws.Count()
	}
	return n
}

// Entries returns the number of live CWT entries at each grain, the memory
// the CWTs consume (each entry is a few bytes; ECPT sizes them at one byte
// of section info per way bitmap).
func (t *Tables) Entries() (pmdEntries, pudEntries int) {
	return len(t.pmd), len(t.pud)
}
