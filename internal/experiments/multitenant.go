// The multi-tenant driver runs the sharded multi-core machine
// (internal/tenant) over a cores × processes matrix for every page-table
// organization, and checks the determinism contract as it goes: the
// canonical fingerprint of a (org, processes) cell must be bit-identical
// at every simulated core count, because the machine seed is derived from
// the job's identity *without* the core count.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"repro/internal/runner"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// MultiTenantRow is one machine run of the multi-tenant matrix: the
// tenant.Result plus the job-level failure envelope (a machine that could
// not even boot still occupies its row, keeping the matrix shape — and the
// JSON output — identical at every worker count).
type MultiTenantRow struct {
	tenant.Result
	JobFailed  bool   `json:"job_failed,omitempty"`
	FailReason string `json:"fail_reason,omitempty"`

	// Partial marks a row whose machine was stopped at a round boundary by
	// Options.Ctx before finishing; its fingerprint covers the partial run
	// and is excluded from the determinism check.
	Partial bool `json:"partial,omitempty"`
	// Resumed marks a row whose machine continued from an on-disk
	// checkpoint rather than booting fresh.
	Resumed bool `json:"resumed,omitempty"`
	// Chaos carries the kill → recover → compare verdict when Options.Chaos
	// is set.
	Chaos *tenant.ChaosResult `json:"chaos,omitempty"`
	// ScrubViolations holds the invariant scrubber's findings when
	// Options.Scrub is set; empty means the machine's cross-layer state is
	// coherent.
	ScrubViolations []scrub.Violation `json:"scrub_violations,omitempty"`
}

// mtJob identifies one multi-tenant machine run. The seed is derived from
// org and process count only — never from cores — so rows of one
// (org, processes) cell replay the same canonical history on different
// core counts.
type mtJob struct {
	org   sim.Org
	procs int
	cores int
}

func (j mtJob) label() string {
	return fmt.Sprintf("%s/p%d/c%d", j.org, j.procs, j.cores)
}

// MultiTenant fans the multi-tenant machine matrix out over the worker
// pool. cores and processes are the axis values (the CLI's -cores and
// -processes flags); every page-table organization runs the full cross
// product. Results come back in submission order: org-major, then
// processes, then cores.
func MultiTenant(o Options, cores, processes []int) []MultiTenantRow {
	var jobs []mtJob
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		for _, p := range processes {
			for _, c := range cores {
				jobs = append(jobs, mtJob{org: org, procs: p, cores: c})
			}
		}
	}
	replays, prepErr := o.tenantReplays(processes)
	envs := runner.MapSafe(o.Parallel, jobs, nil, func(_ int, j mtJob) (MultiTenantRow, error) {
		if prepErr != nil {
			return MultiTenantRow{}, fmt.Errorf("tenant trace: %w", prepErr)
		}
		cfg := o.mtConfig(j.org, j.procs, j.cores)
		if replays != nil {
			cfg.Replay = replays[mtCell(j.org, j.procs)]
		}
		ckpt := ""
		if o.Checkpoint != "" {
			ckpt = fmt.Sprintf("%s.%s.p%d.c%d", o.Checkpoint, j.org, j.procs, j.cores)
		}
		if o.Chaos != "" {
			return o.runChaosJob(cfg, ckpt)
		}
		return o.runResilientJob(cfg, ckpt)
	})
	rows := make([]MultiTenantRow, len(envs))
	for i, e := range envs {
		j := jobs[i]
		switch {
		case e.Panic != nil:
			rows[i] = MultiTenantRow{JobFailed: true,
				FailReason: fmt.Sprintf("panic: %v", e.Panic)}
			rows[i].Org, rows[i].Processes, rows[i].Cores = j.org.String(), j.procs, j.cores
			o.noteFailure(j.label(), rows[i].FailReason, true, e.Stack)
		case e.Err != nil:
			rows[i] = MultiTenantRow{JobFailed: true, FailReason: e.Err.Error()}
			rows[i].Org, rows[i].Processes, rows[i].Cores = j.org.String(), j.procs, j.cores
			o.noteFailure(j.label(), rows[i].FailReason, false, "")
		default:
			rows[i] = e.Value
		}
	}
	return rows
}

// mtConfig builds one multi-tenant job's configuration.
func (o Options) mtConfig(org sim.Org, procs, cores int) tenant.Config {
	return tenant.Config{
		Org:       org,
		Processes: procs,
		Cores:     cores,
		MemBytes:  o.MemBytes,
		FMFI:      o.FMFI,
		// Identity-pure seed: org and process count, NOT cores. This is
		// what makes the fingerprint comparable across the cores axis.
		Seed:   runner.DeriveSeed(o.Seed, "multitenant", org.String(), false, fmt.Sprintf("p%d", procs)),
		Scale:  o.Scale,
		Inject: o.Inject,
	}
}

// mtCell keys one (org, processes) cell — the granularity at which seeds,
// fingerprints, and recorded traces are shared across the cores axis.
func mtCell(org sim.Org, procs int) string {
	return fmt.Sprintf("%s.p%d", org, procs)
}

// tenantReplays ensures each (org, processes) cell's recorded trace exists
// under Options.TenantTrace and loads its per-PID sections. Recording runs
// serially before the matrix fans out, so concurrent jobs only ever read;
// an existing file is trusted and replayed as-is (record once, replay many).
func (o Options) tenantReplays(processes []int) (map[string][]trace.Section, error) {
	if o.TenantTrace == "" {
		return nil, nil
	}
	out := map[string][]trace.Section{}
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		for _, p := range processes {
			path := fmt.Sprintf("%s.%s.p%d.btrc", o.TenantTrace, org, p)
			if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
				f, err := os.Create(path)
				if err != nil {
					return nil, err
				}
				rerr := tenant.RecordTraces(o.mtConfig(org, p, 1), f)
				if cerr := f.Close(); rerr == nil {
					rerr = cerr
				}
				if rerr != nil {
					return nil, fmt.Errorf("recording %s: %w", path, rerr)
				}
			} else if err != nil {
				return nil, err
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			secs, rerr := trace.ReadSections(f)
			f.Close() //mehpt:allow errwrap -- read-only handle; decode errors are what matter and are checked below
			if rerr != nil {
				return nil, fmt.Errorf("reading %s: %w", path, rerr)
			}
			out[mtCell(org, p)] = secs
		}
	}
	return out, nil
}

// runResilientJob executes one machine under the resilience options: resume
// from a checkpoint when asked, checkpoint every completed round, stop at
// the next round boundary once Ctx is done (flushing a final checkpoint),
// and scrub the final state.
func (o Options) runResilientJob(cfg tenant.Config, ckpt string) (MultiTenantRow, error) {
	var row MultiTenantRow
	var m *tenant.Machine
	var err error
	if o.Resume && ckpt != "" {
		m, err = tenant.LoadMachine(cfg, ckpt)
		if errors.Is(err, fs.ErrNotExist) {
			m, err = tenant.NewMachine(cfg) // no checkpoint yet: clean start
		} else if err == nil {
			row.Resumed = true
		}
	} else {
		m, err = tenant.NewMachine(cfg)
	}
	if err != nil {
		return row, err
	}
	for !m.Done() {
		if o.Ctx != nil && o.Ctx.Err() != nil {
			row.Partial = true
			break
		}
		if err := m.StepRound(); err != nil {
			return row, err
		}
		if ckpt != "" {
			if err := m.Checkpoint(ckpt); err != nil {
				return row, fmt.Errorf("experiments: checkpointing %s: %w", ckpt, err)
			}
		}
	}
	row.Result = *m.Collect()
	if o.Scrub {
		row.ScrubViolations = scrub.Machine(m)
	}
	return row, nil
}

// runChaosJob executes the kill → recover → fingerprint-compare harness for
// one machine and scrubs the recovered state.
func (o Options) runChaosJob(cfg tenant.Config, ckpt string) (MultiTenantRow, error) {
	var row MultiTenantRow
	cr, err := tenant.RunChaos(cfg, o.Chaos, ckpt)
	if err != nil {
		return row, err
	}
	row.Result = *cr.Final.Collect()
	if o.Scrub {
		row.ScrubViolations = scrub.Machine(cr.Final)
	}
	cr.Final = nil // the machine must not leak into JSON or row copies
	row.Chaos = cr
	return row, nil
}

// MultiTenantChaosOK returns the labels of rows whose chaos harness failed
// to reproduce the baseline fingerprint after kill + recovery (empty when
// the crash-consistency contract holds; rows without a chaos verdict are
// skipped).
func MultiTenantChaosOK(rows []MultiTenantRow) []string {
	var bad []string
	for _, r := range rows {
		if r.Chaos != nil && !r.Chaos.Match {
			bad = append(bad, fmt.Sprintf("%s/p%d/c%d", r.Org, r.Processes, r.Cores))
		}
	}
	return bad
}

// MultiTenantScrubClean returns the labels of rows whose invariant scrub
// found violations (empty when every scrubbed machine is coherent).
func MultiTenantScrubClean(rows []MultiTenantRow) []string {
	var bad []string
	for _, r := range rows {
		if len(r.ScrubViolations) > 0 {
			bad = append(bad, fmt.Sprintf("%s/p%d/c%d", r.Org, r.Processes, r.Cores))
		}
	}
	return bad
}

// MultiTenantPartial reports how many rows were cut short by the suite
// deadline.
func MultiTenantPartial(rows []MultiTenantRow) int {
	n := 0
	for _, r := range rows {
		if r.Partial {
			n++
		}
	}
	return n
}

// MultiTenantFingerprintsAgree verifies the determinism contract over a
// finished matrix: within each (org, processes) cell, every core count
// produced the same canonical fingerprint. It returns the offending rows'
// labels, empty when the contract holds. Failed and partial jobs are
// skipped (a failed job has no fingerprint; a deadline-cut one fingerprints
// only the rounds it completed).
func MultiTenantFingerprintsAgree(rows []MultiTenantRow) []string {
	want := map[string]string{} // "org/pN" -> fingerprint of first row seen
	var bad []string
	for _, r := range rows {
		if r.JobFailed || r.Partial {
			continue
		}
		cell := fmt.Sprintf("%s/p%d", r.Org, r.Processes)
		if w, ok := want[cell]; !ok {
			want[cell] = r.Fingerprint
		} else if r.Fingerprint != w {
			bad = append(bad, fmt.Sprintf("%s/c%d", cell, r.Cores))
		}
	}
	return bad
}

// FprintMultiTenant renders the matrix: one line per machine with its
// canonical accounting, core-view metrics, and fingerprint prefix, plus a
// per-cell determinism verdict.
func FprintMultiTenant(w io.Writer, rows []MultiTenantRow) {
	fprintf(w, "Multi-tenant machine matrix (fingerprint is canonical: identical per org/p across cores)\n")
	fprintf(w, "%-8s %5s %5s %12s %12s %10s %10s %9s %8s  %s\n",
		"org", "procs", "cores", "walks", "walk-cyc", "shootdowns", "ipis", "switches", "failed", "fingerprint")
	for _, r := range rows {
		if r.JobFailed {
			fprintf(w, "%-8s %5d %5d  JOB FAILED: %s\n", r.Org, r.Processes, r.Cores, r.FailReason)
			continue
		}
		failed := 0
		for _, p := range r.Procs {
			if p.Failed {
				failed++
			}
		}
		notes := ""
		if r.Partial {
			notes += " PARTIAL(deadline)"
		}
		if r.Resumed {
			notes += " resumed"
		}
		if r.Chaos != nil {
			verdict := "recovered=ok"
			if !r.Chaos.Match {
				verdict = "RECOVERY MISMATCH"
			}
			if !r.Chaos.Killed {
				verdict = "kill never fired"
			}
			notes += fmt.Sprintf(" chaos[%s @r%d %s]", r.Chaos.Plan, r.Chaos.KilledAt, verdict)
		}
		if len(r.ScrubViolations) > 0 {
			notes += fmt.Sprintf(" SCRUB:%d", len(r.ScrubViolations))
		}
		fprintf(w, "%-8s %5d %5d %12d %12d %10d %10d %9d %8d  %.16s%s\n",
			r.Org, r.Processes, r.Cores, r.Walks, r.WalkCycles,
			r.Shootdowns.Events, r.Shootdowns.IPIsDelivered,
			r.Switches, failed, r.Fingerprint, notes)
		for _, v := range r.ScrubViolations {
			fprintf(w, "         scrub violation: %s\n", v)
		}
	}
	if bad := MultiTenantFingerprintsAgree(rows); len(bad) > 0 {
		fprintf(w, "DETERMINISM VIOLATION: fingerprint diverges at %v\n", bad)
	} else {
		fprintf(w, "determinism: all cells bit-identical across core counts\n")
	}
	if bad := MultiTenantChaosOK(rows); len(bad) > 0 {
		fprintf(w, "CRASH-CONSISTENCY VIOLATION: recovery fingerprint diverges at %v\n", bad)
	}
	if bad := MultiTenantScrubClean(rows); len(bad) > 0 {
		fprintf(w, "SCRUB VIOLATION: invariants broken at %v\n", bad)
	}
	if n := MultiTenantPartial(rows); n > 0 {
		fprintf(w, "partial: %d machine(s) stopped at the suite deadline (checkpoints flushed)\n", n)
	}
}
