// The multi-tenant driver runs the sharded multi-core machine
// (internal/tenant) over a cores × processes matrix for every page-table
// organization, and checks the determinism contract as it goes: the
// canonical fingerprint of a (org, processes) cell must be bit-identical
// at every simulated core count, because the machine seed is derived from
// the job's identity *without* the core count.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// MultiTenantRow is one machine run of the multi-tenant matrix: the
// tenant.Result plus the job-level failure envelope (a machine that could
// not even boot still occupies its row, keeping the matrix shape — and the
// JSON output — identical at every worker count).
type MultiTenantRow struct {
	tenant.Result
	JobFailed  bool   `json:"job_failed,omitempty"`
	FailReason string `json:"fail_reason,omitempty"`
}

// mtJob identifies one multi-tenant machine run. The seed is derived from
// org and process count only — never from cores — so rows of one
// (org, processes) cell replay the same canonical history on different
// core counts.
type mtJob struct {
	org   sim.Org
	procs int
	cores int
}

func (j mtJob) label() string {
	return fmt.Sprintf("%s/p%d/c%d", j.org, j.procs, j.cores)
}

// MultiTenant fans the multi-tenant machine matrix out over the worker
// pool. cores and processes are the axis values (the CLI's -cores and
// -processes flags); every page-table organization runs the full cross
// product. Results come back in submission order: org-major, then
// processes, then cores.
func MultiTenant(o Options, cores, processes []int) []MultiTenantRow {
	var jobs []mtJob
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		for _, p := range processes {
			for _, c := range cores {
				jobs = append(jobs, mtJob{org: org, procs: p, cores: c})
			}
		}
	}
	envs := runner.MapSafe(o.Parallel, jobs, nil, func(_ int, j mtJob) (MultiTenantRow, error) {
		cfg := tenant.Config{
			Org:       j.org,
			Processes: j.procs,
			Cores:     j.cores,
			MemBytes:  o.MemBytes,
			FMFI:      o.FMFI,
			// Identity-pure seed: org and process count, NOT cores. This is
			// what makes the fingerprint comparable across the cores axis.
			Seed:   runner.DeriveSeed(o.Seed, "multitenant", j.org.String(), false, fmt.Sprintf("p%d", j.procs)),
			Scale:  o.Scale,
			Inject: o.Inject,
		}
		res, err := tenant.Run(cfg)
		if err != nil {
			return MultiTenantRow{}, err
		}
		return MultiTenantRow{Result: *res}, nil
	})
	rows := make([]MultiTenantRow, len(envs))
	for i, e := range envs {
		j := jobs[i]
		switch {
		case e.Panic != nil:
			rows[i] = MultiTenantRow{JobFailed: true,
				FailReason: fmt.Sprintf("panic: %v", e.Panic)}
			rows[i].Org, rows[i].Processes, rows[i].Cores = j.org.String(), j.procs, j.cores
			o.noteFailure(j.label(), rows[i].FailReason, true, e.Stack)
		case e.Err != nil:
			rows[i] = MultiTenantRow{JobFailed: true, FailReason: e.Err.Error()}
			rows[i].Org, rows[i].Processes, rows[i].Cores = j.org.String(), j.procs, j.cores
			o.noteFailure(j.label(), rows[i].FailReason, false, "")
		default:
			rows[i] = e.Value
		}
	}
	return rows
}

// MultiTenantFingerprintsAgree verifies the determinism contract over a
// finished matrix: within each (org, processes) cell, every core count
// produced the same canonical fingerprint. It returns the offending rows'
// labels, empty when the contract holds. Failed jobs are skipped (they
// have no fingerprint to compare).
func MultiTenantFingerprintsAgree(rows []MultiTenantRow) []string {
	want := map[string]string{} // "org/pN" -> fingerprint of first row seen
	var bad []string
	for _, r := range rows {
		if r.JobFailed {
			continue
		}
		cell := fmt.Sprintf("%s/p%d", r.Org, r.Processes)
		if w, ok := want[cell]; !ok {
			want[cell] = r.Fingerprint
		} else if r.Fingerprint != w {
			bad = append(bad, fmt.Sprintf("%s/c%d", cell, r.Cores))
		}
	}
	return bad
}

// FprintMultiTenant renders the matrix: one line per machine with its
// canonical accounting, core-view metrics, and fingerprint prefix, plus a
// per-cell determinism verdict.
func FprintMultiTenant(w io.Writer, rows []MultiTenantRow) {
	fprintf(w, "Multi-tenant machine matrix (fingerprint is canonical: identical per org/p across cores)\n")
	fprintf(w, "%-8s %5s %5s %12s %12s %10s %10s %9s %8s  %s\n",
		"org", "procs", "cores", "walks", "walk-cyc", "shootdowns", "ipis", "switches", "failed", "fingerprint")
	for _, r := range rows {
		if r.JobFailed {
			fprintf(w, "%-8s %5d %5d  JOB FAILED: %s\n", r.Org, r.Processes, r.Cores, r.FailReason)
			continue
		}
		failed := 0
		for _, p := range r.Procs {
			if p.Failed {
				failed++
			}
		}
		fprintf(w, "%-8s %5d %5d %12d %12d %10d %10d %9d %8d  %.16s\n",
			r.Org, r.Processes, r.Cores, r.Walks, r.WalkCycles,
			r.Shootdowns.Events, r.Shootdowns.IPIsDelivered,
			r.Switches, failed, r.Fingerprint)
	}
	if bad := MultiTenantFingerprintsAgree(rows); len(bad) > 0 {
		fprintf(w, "DETERMINISM VIOLATION: fingerprint diverges at %v\n", bad)
	} else {
		fprintf(w, "determinism: all cells bit-identical across core counts\n")
	}
}
