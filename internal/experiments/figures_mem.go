package experiments

import (
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/mehpt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure8Row is one application's bars in Figure 8: the maximum contiguous
// memory allocated for page tables under each configuration.
type Figure8Row struct {
	App      string
	ECPT     uint64
	ECPTTHP  uint64
	MEHPT    uint64
	MEHPTTHP uint64
}

// Figure8 measures the maximum contiguous page-table allocation of ECPT vs
// ME-HPT, with and without THP. The 4-runs-per-app matrix fans out over the
// worker pool.
func Figure8(o Options) []Figure8Row {
	specs := o.specs()
	var jobs []runJob
	for _, spec := range specs {
		jobs = append(jobs,
			pop(spec, sim.ECPT, false), pop(spec, sim.ECPT, true),
			pop(spec, sim.MEHPT, false), pop(spec, sim.MEHPT, true))
	}
	res := o.run(jobs)
	rows := make([]Figure8Row, 0, len(specs))
	for i, spec := range specs {
		r := res[i*4 : i*4+4]
		rows = append(rows, Figure8Row{
			App:      spec.Name,
			ECPT:     r[0].MaxContiguous,
			ECPTTHP:  r[1].MaxContiguous,
			MEHPT:    r[2].MaxContiguous,
			MEHPTTHP: r[3].MaxContiguous,
		})
	}
	return rows
}

// FprintFigure8 renders Figure 8 with the headline reduction.
func FprintFigure8(w io.Writer, rows []Figure8Row) {
	fprintf(w, "Figure 8: maximum contiguous page-table allocation\n")
	fprintf(w, "%-9s %10s %10s %10s %10s %10s\n", "App", "ECPT", "ECPT+THP", "ME-HPT", "ME-HPT+THP", "reduction")
	var reds, redsTHP []float64
	for _, r := range rows {
		red := 1 - float64(r.MEHPT)/float64(r.ECPT)
		reds = append(reds, red)
		redsTHP = append(redsTHP, 1-float64(r.MEHPTTHP)/float64(r.ECPTTHP))
		fprintf(w, "%-9s %10s %10s %10s %10s %9.0f%%\n", r.App,
			stats.HumanBytes(r.ECPT), stats.HumanBytes(r.ECPTTHP),
			stats.HumanBytes(r.MEHPT), stats.HumanBytes(r.MEHPTTHP), red*100)
	}
	fprintf(w, "Average reduction: %.0f%% (no THP), %.0f%% (THP); paper: 92%%, 84%%\n",
		stats.Mean(reds)*100, stats.Mean(redsTHP)*100)
}

// Figure10Row decomposes the page-table memory reduction of ME-HPT over
// ECPT into the contributions of in-place and per-way resizing.
type Figure10Row struct {
	App             string
	THP             bool
	ECPTPeak        uint64
	MEHPTPeak       uint64
	ReductionPct    float64
	InPlaceSharePct float64 // of the reduction
	PerWaySharePct  float64
	AbsoluteBytes   uint64
}

// Figure10 runs the two single-technique ablations to split the reduction.
// The ablation configs are shared read-only across jobs (nil Rand; each
// machine creates its own RNG from the job's derived seed).
func Figure10(o Options) []Figure10Row {
	ipOnly := mehpt.DefaultConfig(uint64(o.Seed))
	ipOnly.PerWay = false
	ipOnly.WeightedInsert = false
	pwOnly := mehpt.DefaultConfig(uint64(o.Seed))
	pwOnly.InPlace = false

	specs := o.specs()
	var jobs []runJob
	for _, thp := range []bool{false, true} {
		for _, spec := range specs {
			jobs = append(jobs,
				pop(spec, sim.ECPT, thp),
				pop(spec, sim.MEHPT, thp),
				runJob{spec: spec, org: sim.MEHPT, thp: thp, ablation: "ip-only", mcfg: &ipOnly},
				runJob{spec: spec, org: sim.MEHPT, thp: thp, ablation: "pw-only", mcfg: &pwOnly})
		}
	}
	res := o.run(jobs)
	var rows []Figure10Row
	for i := 0; i*4 < len(res); i++ {
		base, full, ip, pw := res[i*4], res[i*4+1], res[i*4+2], res[i*4+3]
		row := Figure10Row{App: base.Workload, THP: base.THP,
			ECPTPeak: base.PTPeakBytes, MEHPTPeak: full.PTPeakBytes}
		if base.PTPeakBytes > full.PTPeakBytes {
			row.AbsoluteBytes = base.PTPeakBytes - full.PTPeakBytes
			row.ReductionPct = float64(row.AbsoluteBytes) / float64(base.PTPeakBytes) * 100
		}
		rIP := signedSub(base.PTPeakBytes, ip.PTPeakBytes)
		rPW := signedSub(base.PTPeakBytes, pw.PTPeakBytes)
		if rIP+rPW > 0 {
			row.InPlaceSharePct = rIP / (rIP + rPW) * 100
			row.PerWaySharePct = rPW / (rIP + rPW) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

func signedSub(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return 0
}

// FprintFigure10 renders Figure 10.
func FprintFigure10(w io.Writer, rows []Figure10Row) {
	fprintf(w, "Figure 10: page-table memory reduction of ME-HPT over ECPT\n")
	fprintf(w, "%-9s %5s %10s %10s %8s %10s %9s %9s\n",
		"App", "THP", "ECPT", "ME-HPT", "saved%", "savedMB", "in-place%", "per-way%")
	var save, saveTHP []float64
	for _, r := range rows {
		fprintf(w, "%-9s %5v %10s %10s %7.0f%% %10.1f %8.0f%% %8.0f%%\n",
			r.App, r.THP, stats.HumanBytes(r.ECPTPeak), stats.HumanBytes(r.MEHPTPeak),
			r.ReductionPct, float64(r.AbsoluteBytes)/(1<<20),
			r.InPlaceSharePct, r.PerWaySharePct)
		if r.THP {
			saveTHP = append(saveTHP, r.ReductionPct)
		} else {
			save = append(save, r.ReductionPct)
		}
	}
	fprintf(w, "Average reduction: %.0f%% (no THP), %.0f%% (THP); paper: 43%%, 41%%\n",
		stats.Mean(save), stats.Mean(saveTHP))
}

// Figure11Row reports the upsizing operations per way (4KB page tables).
type Figure11Row struct {
	App     string
	Ways    []uint64 // upsizes per way, no THP
	WaysTHP []uint64
}

// mehptPopulations fans out the (ME-HPT, ±THP) populate matrix shared by
// Figures 11–14: one no-THP and one THP result per application.
func (o Options) mehptPopulations() (specs []workload.Spec, no, thp []sim.Result) {
	specs = o.specs()
	var jobs []runJob
	for _, spec := range specs {
		jobs = append(jobs, pop(spec, sim.MEHPT, false), pop(spec, sim.MEHPT, true))
	}
	res := o.run(jobs)
	for i := range specs {
		no = append(no, res[i*2])
		thp = append(thp, res[i*2+1])
	}
	return specs, no, thp
}

// Figure11 reads the per-way upsize counters off populated ME-HPTs.
func Figure11(o Options) []Figure11Row {
	specs, no, thp := o.mehptPopulations()
	rows := make([]Figure11Row, 0, len(specs))
	for i, spec := range specs {
		rows = append(rows, Figure11Row{
			App:     spec.Name,
			Ways:    upsizes(no[i].MEHPT, addr.Page4K),
			WaysTHP: upsizes(thp[i].MEHPT, addr.Page4K),
		})
	}
	return rows
}

// FprintFigure11 renders Figure 11.
func FprintFigure11(w io.Writer, rows []Figure11Row) {
	fprintf(w, "Figure 11: upsizing operations per way (4KB page tables)\n")
	fprintf(w, "%-9s %-18s %-18s\n", "App", "ways (no THP)", "ways (THP)")
	for _, r := range rows {
		fprintf(w, "%-9s %-18v %-18v\n", r.App, r.Ways, r.WaysTHP)
	}
}

// Figure12Row reports the final size of each ME-HPT way for 4KB pages.
type Figure12Row struct {
	App         string
	WayBytes    []uint64
	WayBytesTHP []uint64
}

// Figure12 reads way sizes off populated ME-HPTs.
func Figure12(o Options) []Figure12Row {
	specs, no, thp := o.mehptPopulations()
	rows := make([]Figure12Row, 0, len(specs))
	for i, spec := range specs {
		rows = append(rows, Figure12Row{
			App:         spec.Name,
			WayBytes:    waySizesBytes(no[i].MEHPT, addr.Page4K),
			WayBytesTHP: waySizesBytes(thp[i].MEHPT, addr.Page4K),
		})
	}
	return rows
}

func waySizesBytes(p *mehpt.PageTable, s addr.PageSize) []uint64 {
	t := p.Table(s)
	if t == nil {
		// The page size was never used: Figure 12 reports the would-be
		// initial 8KB ways (matching the paper, where GUPS/SysBench with
		// THP "retain the initial, smallest size").
		return []uint64{8 << 10, 8 << 10, 8 << 10}
	}
	slots := t.WaySizes()
	bytes := make([]uint64, len(slots))
	for i, sl := range slots {
		bytes[i] = sl * 64 // pt.EntryBytes
	}
	return bytes
}

// upsizes returns the per-way upsize counters, or zeros if the page size
// was never used.
func upsizes(p *mehpt.PageTable, s addr.PageSize) []uint64 {
	t := p.Table(s)
	if t == nil {
		return []uint64{0, 0, 0}
	}
	return t.Stats().UpsizesPerWay
}

// FprintFigure12 renders Figure 12.
func FprintFigure12(w io.Writer, rows []Figure12Row) {
	fprintf(w, "Figure 12: final per-way sizes of the ME-HPT for 4KB pages\n")
	fprintf(w, "%-9s %-30s %-30s\n", "App", "way sizes (no THP)", "way sizes (THP)")
	for _, r := range rows {
		fprintf(w, "%-9s %-30s %-30s\n", r.App, humanList(r.WayBytes), humanList(r.WayBytesTHP))
	}
}

func humanList(bs []uint64) string {
	s := "["
	for i, b := range bs {
		if i > 0 {
			s += " "
		}
		s += stats.HumanBytes(b)
	}
	return s + "]"
}

// Figure14Row reports L2P table entry usage per application: the entries in
// use at steady state (what the paper's Figure 14 reports) and the
// transient peak, which spikes to 64/way just before a chunk-size
// transition collapses the chunks.
type Figure14Row struct {
	App     string
	Used    int
	UsedTHP int
	Peak    int
}

// Figure14 reads L2P usage off populated ME-HPTs.
func Figure14(o Options) []Figure14Row {
	specs, no, thp := o.mehptPopulations()
	rows := make([]Figure14Row, 0, len(specs))
	for i, spec := range specs {
		rows = append(rows, Figure14Row{
			App:     spec.Name,
			Used:    no[i].MEHPT.L2P().TotalUsed(),
			UsedTHP: thp[i].MEHPT.L2P().TotalUsed(),
			Peak:    no[i].MEHPT.L2P().PeakUsed(),
		})
	}
	return rows
}

// FprintFigure14 renders Figure 14.
func FprintFigure14(w io.Writer, rows []Figure14Row) {
	fprintf(w, "Figure 14: L2P table entries used (capacity 288)\n")
	fprintf(w, "%-9s %8s %8s %10s\n", "App", "noTHP", "THP", "peak-noTHP")
	var all []float64
	for _, r := range rows {
		fprintf(w, "%-9s %8d %8d %10d\n", r.App, r.Used, r.UsedTHP, r.Peak)
		all = append(all, float64(r.Used), float64(r.UsedTHP))
	}
	fprintf(w, "Average: %.1f entries (paper: 52.5)\n", stats.Mean(all))
}

// Figure15Row compares the average 4KB-HPT way size of the two chunk-ladder
// designs for scaled-down graph inputs.
type Figure15Row struct {
	GraphNodes   uint64
	Way1MBOnly   uint64 // bytes per way footprint with 1MB-only chunks
	Way8KBPlus1M uint64
}

// Figure15 populates ME-HPTs for graphs of 1K/10K/100K nodes (vs the
// standard 1M) under the default ladder and a 1MB-only ladder. The paper's
// GraphBIG inputs translate to ≈9.3KB of touched memory per graph node.
func Figure15(o Options) []Figure15Row {
	const bytesPerNode = 9525 // ≈9.3KB; 1M nodes → 9.3GB (Table I)
	oneMB := mehpt.DefaultConfig(uint64(o.Seed))
	oneMB.Ladder = []uint64{1 * addr.MB, 8 * addr.MB, 64 * addr.MB}

	sizes := []uint64{1000, 10_000, 100_000}
	var jobs []runJob
	for _, nodes := range sizes {
		touched := nodes * bytesPerNode / o.Scale
		if touched < 64*addr.KB {
			touched = 64 * addr.KB
		}
		spec := workload.Spec{
			Name: fmt.Sprintf("graph-%d", nodes), DataBytes: touched, TouchedBytes: touched,
			Kind: workload.Dense, SeqFraction: 0.5,
		}
		jobs = append(jobs,
			pop(spec, sim.MEHPT, false),
			runJob{spec: spec, org: sim.MEHPT, ablation: "1mb-only", mcfg: &oneMB})
	}
	res := o.run(jobs)
	rows := make([]Figure15Row, 0, len(sizes))
	for i, nodes := range sizes {
		def, one := res[i*2], res[i*2+1]
		rows = append(rows, Figure15Row{
			GraphNodes:   nodes,
			Way1MBOnly:   avgWayFootprint(one.MEHPT, addr.Page4K),
			Way8KBPlus1M: avgWayFootprint(def.MEHPT, addr.Page4K),
		})
	}
	return rows
}

func avgWayFootprint(p *mehpt.PageTable, s addr.PageSize) uint64 {
	t := p.Table(s)
	if t == nil {
		return 0
	}
	return t.FootprintBytes() / 3
}

// FprintFigure15 renders Figure 15.
func FprintFigure15(w io.Writer, rows []Figure15Row) {
	fprintf(w, "Figure 15: average 4KB-HPT way memory for small graphs\n")
	fprintf(w, "%-12s %14s %14s\n", "Graph nodes", "ME-HPT(1MB)", "ME-HPT(1MB+8KB)")
	for _, r := range rows {
		fprintf(w, "%-12d %14s %14s\n", r.GraphNodes,
			stats.HumanBytes(r.Way1MBOnly), stats.HumanBytes(r.Way8KBPlus1M))
	}
}
