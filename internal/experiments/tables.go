package experiments

import (
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/chunk"
	"repro/internal/phys"
	"repro/internal/pt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table1Row is one application's row of Table I: data footprint, maximum
// page-table contiguous allocation (radix vs ECPT), and total page-table
// memory with and without THP.
type Table1Row struct {
	App           string
	DataBytes     uint64
	TouchedBytes  uint64
	TreeContig    uint64 // always 4KB
	ECPTContig    uint64 // the largest ECPT way
	TreeTotal     uint64
	ECPTTotal     uint64
	TreeTotalTHP  uint64
	ECPTTotalTHP  uint64
	Failed        bool
	FailureReason string
}

// Table1 reproduces Table I by populating radix and ECPT page tables with
// each workload's touched footprint, with and without THP.
func Table1(o Options) []Table1Row {
	specs := o.specs()
	var jobs []runJob
	for _, spec := range specs {
		jobs = append(jobs,
			pop(spec, sim.Radix, false), pop(spec, sim.Radix, true),
			pop(spec, sim.ECPT, false), pop(spec, sim.ECPT, true))
	}
	res := o.run(jobs)
	rows := make([]Table1Row, 0, len(specs))
	for i, spec := range specs {
		row := Table1Row{App: spec.Name, DataBytes: spec.DataBytes, TouchedBytes: spec.TouchedBytes}
		tree, treeTHP, ec, ecTHP := res[i*4], res[i*4+1], res[i*4+2], res[i*4+3]
		for _, r := range []sim.Result{tree, treeTHP, ec, ecTHP} {
			if r.Failed {
				row.Failed = true
				row.FailureReason = r.FailReason
			}
		}
		row.TreeContig = tree.MaxContiguous
		row.ECPTContig = ec.MaxContiguous
		row.TreeTotal = tree.PTPeakBytes
		row.ECPTTotal = ec.PTPeakBytes
		row.TreeTotalTHP = treeTHP.PTPeakBytes
		row.ECPTTotalTHP = ecTHP.PTPeakBytes
		rows = append(rows, row)
	}
	return rows
}

// FprintTable1 renders Table I's layout.
func FprintTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table I: Memory consumption of the applications\n")
	fprintf(w, "%-9s %9s | %10s %10s | %9s %9s | %9s %9s\n",
		"App", "Data",
		"Contig:Tree", "Contig:ECPT",
		"Tot:Tree", "Tot:ECPT", "THP:Tree", "THP:ECPT")
	var contTree, contEC, tt, te, ttT, teT []float64
	for _, r := range rows {
		fprintf(w, "%-9s %9s | %10s %10s | %9s %9s | %9s %9s%s\n",
			r.App, stats.HumanBytes(r.DataBytes),
			stats.HumanBytes(r.TreeContig), stats.HumanBytes(r.ECPTContig),
			stats.HumanBytes(r.TreeTotal), stats.HumanBytes(r.ECPTTotal),
			stats.HumanBytes(r.TreeTotalTHP), stats.HumanBytes(r.ECPTTotalTHP),
			failMark(r.Failed))
		contTree = append(contTree, float64(r.TreeContig))
		contEC = append(contEC, float64(r.ECPTContig))
		tt = append(tt, float64(r.TreeTotal))
		te = append(te, float64(r.ECPTTotal))
		ttT = append(ttT, float64(r.TreeTotalTHP))
		teT = append(teT, float64(r.ECPTTotalTHP))
	}
	fprintf(w, "%-9s %9s | %10s %10s | %9s %9s | %9s %9s\n",
		"GeoMean", "",
		stats.HumanBytes(uint64(stats.GeoMean(contTree))),
		stats.HumanBytes(uint64(stats.GeoMean(contEC))),
		stats.HumanBytes(uint64(stats.GeoMean(tt))),
		stats.HumanBytes(uint64(stats.GeoMean(te))),
		stats.HumanBytes(uint64(stats.GeoMean(ttT))),
		stats.HumanBytes(uint64(stats.GeoMean(teT))))
}

func failMark(failed bool) string {
	if failed {
		return "  (RUN FAILED)"
	}
	return ""
}

// Table2Row is one chunk size's row of Table II.
type Table2Row struct {
	ChunkBytes  uint64
	MaxWayBytes uint64
	MaxMap4K    uint64 // total HPT mapping space with 4KB pages
	MaxMap2M    uint64 // with 2MB pages
}

// Table2 reproduces the analytic Table II: the maximum way a full (stolen)
// L2P subtable supports per chunk size, and the data each 3-way HPT maps.
// One clustered slot maps ClusterSpan pages, so a table of S slots per way
// and W ways maps W × S × ClusterSpan × pageSize bytes at the upsize
// threshold... the paper reports raw capacity (occupancy 1), which we
// mirror: slots × span × page size × ways / ways — i.e. total slots times
// span times page bytes divided by the 3-way redundancy (an element lives
// in exactly one way, so total capacity is 3 × way slots).
func Table2() []Table2Row {
	const ways = 3
	rows := make([]Table2Row, 0, len(chunk.Ladder))
	for _, cb := range chunk.Ladder {
		way := chunk.MaxWayBytes(cb)
		slotsPerWay := way / pt.EntryBytes
		totalSlots := slotsPerWay * ways
		rows = append(rows, Table2Row{
			ChunkBytes:  cb,
			MaxWayBytes: way,
			MaxMap4K:    totalSlots * pt.ClusterSpan * 4 * addr.KB,
			MaxMap2M:    totalSlots * pt.ClusterSpan * 2 * addr.MB,
		})
	}
	return rows
}

// FprintTable2 renders Table II.
func FprintTable2(w io.Writer, rows []Table2Row) {
	fprintf(w, "Table II: Maximum HPT way sizes and mapping space per chunk size\n")
	fprintf(w, "%-10s %12s %18s %18s\n", "Chunk", "Max Way", "Map (4KB pages)", "Map (2MB pages)")
	for _, r := range rows {
		fprintf(w, "%-10s %12s %18s %18s\n",
			stats.HumanBytes(r.ChunkBytes), stats.HumanBytes(r.MaxWayBytes),
			stats.HumanBytes(r.MaxMap4K), stats.HumanBytes(r.MaxMap2M))
	}
}

// AllocCostRow is one point of the Section III measurement: the cycle cost
// of allocating and zeroing a contiguous chunk at 0.7 FMFI.
type AllocCostRow struct {
	SizeBytes uint64
	Cycles    uint64
}

// AllocCost reproduces the Section III allocation-cost curve from the cost
// model (which encodes the paper's measured anchors).
func AllocCost(fmfi float64) []AllocCostRow {
	sizes := []uint64{4 * addr.KB, 8 * addr.KB, 1 * addr.MB, 8 * addr.MB, 64 * addr.MB}
	rows := make([]AllocCostRow, 0, len(sizes))
	for _, s := range sizes {
		rows = append(rows, AllocCostRow{SizeBytes: s, Cycles: phys.DefaultCostModel.Cycles(s, fmfi)})
	}
	return rows
}

// FprintAllocCost renders the Section III numbers.
func FprintAllocCost(w io.Writer, fmfi float64, rows []AllocCostRow) {
	fprintf(w, "Section III: contiguous allocation cost at %.1f FMFI\n", fmfi)
	for _, r := range rows {
		fprintf(w, "  %-6s %12d cycles\n", stats.HumanBytes(r.SizeBytes), r.Cycles)
	}
}

// FragmentationStress demonstrates the paper's headline failure mode on a
// real shredded buddy allocator: above 0.7 FMFI, a 64MB contiguous
// allocation fails while 4KB/8KB/1MB chunk allocations keep succeeding.
type FragmentationStressRow struct {
	SizeBytes uint64
	OK        bool
}

// RunFragmentationStress shreds a memory so that free space survives only
// in blocks of at most 1MB (FMFI ≈ 1 at every larger order — the paper's
// ">0.7 FMFI" regime) and attempts each chunk size: ME-HPT's 8KB and 1MB
// chunks keep allocating while ECPT's 8MB/64MB ways cannot.
func RunFragmentationStress(memBytes uint64, seed int64) []FragmentationStressRow {
	mem := phys.NewMemory(memBytes)
	fr := phys.NewFragmenter(mem)
	rng := newRand(seed)
	_ = fr.Fragment(0.5, 0.3, phys.OrderFor(1*addr.MB), rng) //mehpt:allow errwrap -- best-effort fragmentation; the sweep measures whatever pressure it achieved
	sizes := []uint64{4 * addr.KB, 8 * addr.KB, 1 * addr.MB, 8 * addr.MB, 64 * addr.MB}
	rows := make([]FragmentationStressRow, 0, len(sizes))
	for _, s := range sizes {
		ppn, err := mem.Alloc(s)
		ok := err == nil
		if ok {
			mem.Free(ppn, phys.OrderFor(s))
		}
		rows = append(rows, FragmentationStressRow{SizeBytes: s, OK: ok})
	}
	return rows
}

// FprintFragmentationStress renders the stress rows.
func FprintFragmentationStress(w io.Writer, rows []FragmentationStressRow) {
	fprintf(w, "Fragmentation stress (free space shredded to ≤1MB blocks; FMFI ≈ 1 above that order):\n")
	for _, r := range rows {
		verdict := "OK"
		if !r.OK {
			verdict = "FAILS (paper: ECPT runs unable to finish)"
		}
		fprintf(w, "  alloc %-6s -> %s\n", stats.HumanBytes(r.SizeBytes), verdict)
	}
}

var _ = fmt.Sprintf // keep fmt for failMark formatting growth
