package experiments

import (
	"io"
	"strings"
	"testing"

	"repro/internal/addr"
)

// The unit tests run every driver at a heavy scale-down; they verify
// structural properties that hold at any scale. The full-scale numbers are
// produced by cmd/mehpt-experiments and recorded in EXPERIMENTS.md.

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	want := []struct {
		chunk, way, map4k, map2m uint64
	}{
		{8 * addr.KB, 512 * addr.KB, 768 * addr.MB, 384 * addr.GB},
		{1 * addr.MB, 64 * addr.MB, 96 * addr.GB, 48 * addr.TB},
		{8 * addr.MB, 512 * addr.MB, 768 * addr.GB, 384 * addr.TB},
		{64 * addr.MB, 4 * addr.GB, 6 * addr.TB, 3072 * addr.TB},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		r := rows[i]
		if r.ChunkBytes != w.chunk || r.MaxWayBytes != w.way ||
			r.MaxMap4K != w.map4k || r.MaxMap2M != w.map2m {
			t.Errorf("row %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestAllocCostMatchesPaper(t *testing.T) {
	rows := AllocCost(0.7)
	want := map[uint64]uint64{
		4 * addr.KB:  4000,
		8 * addr.KB:  5000,
		1 * addr.MB:  750000,
		8 * addr.MB:  13000000,
		64 * addr.MB: 120000000,
	}
	for _, r := range rows {
		w := want[r.SizeBytes]
		if diff := int64(r.Cycles) - int64(w); diff < -1 || diff > 1 {
			t.Errorf("cost(%d) = %d, want %d", r.SizeBytes, r.Cycles, w)
		}
	}
}

func TestFragmentationStress(t *testing.T) {
	rows := RunFragmentationStress(2*addr.GB, 3)
	bysize := map[uint64]bool{}
	for _, r := range rows {
		bysize[r.SizeBytes] = r.OK
	}
	if !bysize[8*addr.KB] || !bysize[1*addr.MB] {
		t.Error("ME-HPT chunk sizes failed to allocate under fragmentation")
	}
	if bysize[64*addr.MB] {
		t.Error("64MB allocation succeeded on shredded memory")
	}
}

func TestTable1Structure(t *testing.T) {
	o := TestOptions()
	rows := Table1(o)
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		if r.Failed {
			t.Errorf("%s failed: %s", r.App, r.FailureReason)
			continue
		}
		if r.TreeContig != 4*addr.KB {
			t.Errorf("%s: radix contiguity %d, want 4KB", r.App, r.TreeContig)
		}
		if r.ECPTContig < 8*addr.KB {
			t.Errorf("%s: ECPT contiguity %d below a way", r.App, r.ECPTContig)
		}
		// ECPT uses more page-table memory than the radix tree (paper:
		// ~2.4x). At the test scale-down the smallest app (MUMmer) sits at
		// the initial table size where both are trivial, so skip it.
		if r.App != "MUMmer" && r.ECPTTotal <= r.TreeTotal {
			t.Errorf("%s: ECPT total %d not above radix %d (paper: ~2.4x)",
				r.App, r.ECPTTotal, r.TreeTotal)
		}
	}
	// THP must collapse GUPS/SysBench page tables.
	for _, r := range rows {
		if r.App == "GUPS" || r.App == "SysBench" {
			if r.ECPTTotalTHP*4 > r.ECPTTotal {
				t.Errorf("%s: THP total %d not ≪ no-THP total %d",
					r.App, r.ECPTTotalTHP, r.ECPTTotal)
			}
		}
	}
	var sb strings.Builder
	FprintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "GUPS") {
		t.Error("printout missing rows")
	}
}

func TestFigure8Direction(t *testing.T) {
	o := TestOptions()
	rows := Figure8(o)
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	// For the demanding workloads the ME-HPT contiguity must not exceed
	// ECPT's (at small test scales the graph workloads sit at the chunk
	// boundary where both need 1MB, so assert on GUPS/SysBench).
	for _, r := range rows {
		if r.App == "GUPS" || r.App == "SysBench" {
			if r.MEHPT >= r.ECPT {
				t.Errorf("%s: ME-HPT contiguity %d not below ECPT %d", r.App, r.MEHPT, r.ECPT)
			}
		}
	}
}

func TestFigure10Direction(t *testing.T) {
	o := TestOptions()
	rows := Figure10(o)
	if len(rows) != 22 {
		t.Fatalf("rows = %d, want 22 (11 apps x 2 THP)", len(rows))
	}
	saved := 0
	for _, r := range rows {
		if r.MEHPTPeak < r.ECPTPeak {
			saved++
		}
	}
	if saved < 11 {
		t.Errorf("only %d/22 configurations saved page-table memory", saved)
	}
}

func TestFigure11Balance(t *testing.T) {
	o := TestOptions()
	rows := Figure11(o)
	for _, r := range rows {
		max, min := uint64(0), ^uint64(0)
		for _, u := range r.Ways {
			if u > max {
				max = u
			}
			if u < min {
				min = u
			}
		}
		if max-min > 1 {
			t.Errorf("%s: per-way upsizes unbalanced: %v", r.App, r.Ways)
		}
	}
}

func TestFigure12and14(t *testing.T) {
	o := TestOptions()
	for _, r := range Figure12(o) {
		if len(r.WayBytes) != 3 {
			t.Errorf("%s: %d ways", r.App, len(r.WayBytes))
		}
	}
	for _, r := range Figure14(o) {
		if r.Used <= 0 || r.Used > 288 {
			t.Errorf("%s: L2P usage %d out of range", r.App, r.Used)
		}
	}
}

func TestFigure13MoveFraction(t *testing.T) {
	o := TestOptions()
	rows := Figure13(o)
	n := 0
	for _, r := range rows {
		if r.Fraction < 0 {
			continue
		}
		n++
		if r.Fraction < 0.35 || r.Fraction > 0.65 {
			t.Errorf("%s: move fraction %.3f not ≈0.5", r.App, r.Fraction)
		}
	}
	if n == 0 {
		t.Fatal("no applications had upsizes")
	}
}

func TestFigure15ChunkLadder(t *testing.T) {
	o := TestOptions()
	o.Scale = 1 // Figure 15 already uses tiny graphs; full scale is cheap
	rows := Figure15(o)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Small graphs: the 8KB+1MB ladder uses (much) less memory than
	// 1MB-only; at 100K nodes they converge.
	if rows[0].Way8KBPlus1M >= rows[0].Way1MBOnly {
		t.Errorf("1K nodes: default ladder %d not below 1MB-only %d",
			rows[0].Way8KBPlus1M, rows[0].Way1MBOnly)
	}
	if rows[2].Way1MBOnly > 2*rows[2].Way8KBPlus1M {
		t.Errorf("100K nodes: designs should converge: %d vs %d",
			rows[2].Way1MBOnly, rows[2].Way8KBPlus1M)
	}
}

func TestFigure16Distribution(t *testing.T) {
	o := TestOptions()
	rows, mean := Figure16(o)
	if rows[0].Probability < 0.5 {
		t.Errorf("P(0 reinsertions) = %.3f, want > 0.5 (paper 0.64)", rows[0].Probability)
	}
	if mean > 1.5 {
		t.Errorf("mean reinsertions %.2f implausibly high (paper 0.7)", mean)
	}
}

func TestFigure9SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	o := TestOptions()
	o.TimedAccesses = 200_000
	rows := Figure9(o)
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for cfg, reason := range r.Failed {
			t.Errorf("%s/%s failed: %s", r.App, cfg, reason)
		}
		if r.MEHPT <= 0 {
			t.Errorf("%s: no ME-HPT speedup computed", r.App)
		}
	}
	var sb strings.Builder
	FprintFigure9(&sb, rows)
	if !strings.Contains(sb.String(), "GeoMean") {
		t.Error("summary missing")
	}
}

func TestFprintNilWriterSafe(t *testing.T) {
	// fprintf must tolerate nil writers (drivers used programmatically).
	fprintf(nil, "nothing %d", 1)
	var w io.Writer
	fprintf(w, "still nothing")
}

func TestFiveLevelMotivation(t *testing.T) {
	o := TestOptions()
	o.TimedAccesses = 100_000
	rows := FiveLevelMotivation(o, "BFS")
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if !(r.HPTCycles < r.Radix4Cycles && r.Radix4Cycles < r.Radix5Cycles) {
		t.Errorf("walk latencies not ordered HPT < 4L < 5L: %+v", r)
	}
}

func TestVirtualization(t *testing.T) {
	o := TestOptions()
	rows := Virtualization(o, 64)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	radix, hpt := rows[0], rows[1]
	if hpt.AvgAccesses >= radix.AvgAccesses/3 {
		t.Errorf("nested hashed %.1f accesses not ≪ nested radix %.1f",
			hpt.AvgAccesses, radix.AvgAccesses)
	}
	if hpt.AvgWalkCycle >= radix.AvgWalkCycle {
		t.Errorf("nested hashed walk cycles %.0f not below radix %.0f",
			hpt.AvgWalkCycle, radix.AvgWalkCycle)
	}
}
