package experiments

import (
	"io"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Figure9Row is one application's six bars in Figure 9: the speedup of each
// organization (±THP) over Radix without THP.
type Figure9Row struct {
	App      string
	Radix    float64 // 1.0 by definition
	ECPT     float64
	MEHPT    float64
	RadixTHP float64
	ECPTTHP  float64
	MEHPTTHP float64
	Failed   map[string]string // config -> failure reason, if any
}

// Figure9 runs the timed performance comparison. Each configuration
// populates the full-scale footprint (charging page-table allocation and
// movement) and then executes the timed trace; speedups compare composed
// cycles (see perfCycles). The 66-run matrix (11 apps × 3 orgs × ±THP) is
// the suite's dominant cost and fans out over the worker pool.
func Figure9(o Options) []Figure9Row {
	specs := o.specs()
	var jobs []runJob
	for _, spec := range specs {
		for _, thp := range []bool{false, true} {
			for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
				jobs = append(jobs, runJob{spec: spec, org: org, thp: thp, timed: true})
			}
		}
	}
	res := o.run(jobs)
	rows := make([]Figure9Row, 0, len(specs))
	for i, spec := range specs {
		row := Figure9Row{App: spec.Name, Failed: map[string]string{}}
		cyc := func(k int, label string) float64 {
			r := res[i*6+k]
			if r.Failed {
				row.Failed[label] = r.FailReason
				return 0
			}
			return float64(perfCycles(r))
		}
		base := cyc(0, "Radix")
		row.Radix = 1
		if e := cyc(1, "ECPT"); e > 0 {
			row.ECPT = base / e
		}
		if m := cyc(2, "ME-HPT"); m > 0 {
			row.MEHPT = base / m
		}
		if r := cyc(3, "Radix+THP"); r > 0 {
			row.RadixTHP = base / r
		}
		if e := cyc(4, "ECPT+THP"); e > 0 {
			row.ECPTTHP = base / e
		}
		if m := cyc(5, "ME-HPT+THP"); m > 0 {
			row.MEHPTTHP = base / m
		}
		rows = append(rows, row)
	}
	return rows
}

// FprintFigure9 renders Figure 9 with the paper's summary ratios.
func FprintFigure9(w io.Writer, rows []Figure9Row) {
	fprintf(w, "Figure 9: speedup over Radix (no THP)\n")
	fprintf(w, "%-9s %7s %7s %7s %9s %9s %9s\n",
		"App", "Radix", "ECPT", "ME-HPT", "Radix+THP", "ECPT+THP", "ME-HPT+THP")
	var me, meTHP, meOverEC, meOverECTHP []float64
	for _, r := range rows {
		fprintf(w, "%-9s %7.2f %7.2f %7.2f %9.2f %9.2f %9.2f\n",
			r.App, r.Radix, r.ECPT, r.MEHPT, r.RadixTHP, r.ECPTTHP, r.MEHPTTHP)
		for cfg, reason := range r.Failed {
			fprintf(w, "          %s FAILED: %s\n", cfg, reason)
		}
		if r.MEHPT > 0 {
			me = append(me, r.MEHPT)
		}
		if r.MEHPTTHP > 0 {
			meTHP = append(meTHP, r.MEHPTTHP)
		}
		if r.ECPT > 0 && r.MEHPT > 0 {
			meOverEC = append(meOverEC, r.MEHPT/r.ECPT)
		}
		if r.ECPTTHP > 0 && r.MEHPTTHP > 0 {
			meOverECTHP = append(meOverECTHP, r.MEHPTTHP/r.ECPTTHP)
		}
	}
	fprintf(w, "GeoMean ME-HPT speedup over Radix: %.2fx (no THP; paper 1.23x), %.2fx (THP; paper 1.28x)\n",
		stats.GeoMean(me), stats.GeoMean(meTHP))
	fprintf(w, "GeoMean ME-HPT speedup over ECPT:  %.2fx (no THP; paper 1.09x), %.2fx (THP; paper 1.06x)\n",
		stats.GeoMean(meOverEC), stats.GeoMean(meOverECTHP))
}

// Figure13Row reports the fraction of entries moved per in-place upsize of
// the 4KB page tables.
type Figure13Row struct {
	App         string
	Fraction    float64 // -1 when the configuration has no upsizes
	FractionTHP float64
}

// Figure13 reads move fractions off populated ME-HPTs.
func Figure13(o Options) []Figure13Row {
	specs, no, thp := o.mehptPopulations()
	rows := make([]Figure13Row, 0, len(specs))
	for i, spec := range specs {
		rows = append(rows, Figure13Row{
			App:         spec.Name,
			Fraction:    moveFraction(no[i]),
			FractionTHP: moveFraction(thp[i]),
		})
	}
	return rows
}

func moveFraction(r sim.Result) float64 {
	if r.MEHPT == nil || r.MEHPT.Table(addr.Page4K) == nil {
		return -1
	}
	st := r.MEHPT.Table(addr.Page4K).Stats()
	total := st.UpsizeMoved + st.UpsizeStayed
	if total == 0 {
		return -1
	}
	return float64(st.UpsizeMoved) / float64(total)
}

// FprintFigure13 renders Figure 13.
func FprintFigure13(w io.Writer, rows []Figure13Row) {
	fprintf(w, "Figure 13: fraction of entries moved per 4KB-table upsize (paper: ≈0.5)\n")
	fprintf(w, "%-9s %8s %8s\n", "App", "noTHP", "THP")
	var all []float64
	for _, r := range rows {
		fprintf(w, "%-9s %8s %8s\n", r.App, fracStr(r.Fraction), fracStr(r.FractionTHP))
		if r.Fraction >= 0 {
			all = append(all, r.Fraction)
		}
		if r.FractionTHP >= 0 {
			all = append(all, r.FractionTHP)
		}
	}
	fprintf(w, "Average: %.3f\n", stats.Mean(all))
}

func fracStr(f float64) string {
	if f < 0 {
		return "-"
	}
	return stats.Ftoa(f)
}

// Figure16Row is the distribution of cuckoo re-insertions per insert or
// rehash, pooled across applications.
type Figure16Row struct {
	Reinsertions int
	Probability  float64
}

// Figure16 pools the re-insertion histograms of all populated ME-HPTs.
func Figure16(o Options) ([]Figure16Row, float64) {
	var jobs []runJob
	for _, spec := range o.specs() {
		jobs = append(jobs, pop(spec, sim.MEHPT, false))
	}
	var pooled stats.Histogram
	for _, r := range o.run(jobs) {
		if r.MEHPT == nil {
			continue
		}
		for _, s := range addr.Sizes() {
			t := r.MEHPT.Table(s)
			if t == nil {
				continue
			}
			h := t.Stats().Reinsertions
			pooled.Merge(&h)
		}
	}
	rows := make([]Figure16Row, 0, 12)
	for v := 0; v <= 11; v++ {
		rows = append(rows, Figure16Row{Reinsertions: v, Probability: pooled.Probability(v)})
	}
	return rows, pooled.Mean()
}

// FprintFigure16 renders Figure 16.
func FprintFigure16(w io.Writer, rows []Figure16Row, mean float64) {
	fprintf(w, "Figure 16: cuckoo re-insertions per insertion/rehash\n")
	for _, r := range rows {
		bar := ""
		for i := 0; i < int(r.Probability*60); i++ {
			bar += "#"
		}
		fprintf(w, "  %2d: %.3f %s\n", r.Reinsertions, r.Probability, bar)
	}
	fprintf(w, "Mean: %.2f (paper: 0.7, with P(0)=0.64)\n", mean)
}
