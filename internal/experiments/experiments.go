// Package experiments contains one driver per table and figure in the
// paper's evaluation (Section VII), plus the Section III allocation-cost
// microbenchmark. Each driver returns typed rows and can print them in the
// same layout the paper uses. DESIGN.md's per-experiment index maps every
// driver to the modules it exercises.
//
// Methodology notes (also in EXPERIMENTS.md):
//
//   - Population experiments (Table I, Figures 8, 10–16) fault in the
//     workload's full-scale touched footprint; page-table sizes, chunk
//     sizes, L2P usage, and resize counts are then read off directly.
//   - Allocation costs are priced at the paper's 0.7-FMFI cost curve via
//     the ambient-fragmentation parameter; memory is not physically
//     shredded for these runs so that a single 64GB machine model can be
//     reused (the failure mode above 0.7 FMFI is demonstrated separately
//     by FragmentationStress and in the phys/ecpt test suites).
//   - Figure 9 composes: steady-state translation + data cycles from a
//     timed trace over the populated tables, plus the page-table
//     allocation and entry-movement cycles from population — the costs the
//     paper attributes the ME-HPT speedup to.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/mehpt"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Options configures a whole experiment suite run.
type Options struct {
	// Scale divides every workload footprint; 1 is the paper's full
	// configuration. Tests use large scales for speed.
	Scale uint64
	// TimedAccesses is the trace length for the performance experiments
	// (Figure 9). The paper's window is ~180M references (550M
	// instructions at ~1/3 memory density).
	TimedAccesses uint64
	// MemBytes is the simulated machine's physical memory.
	MemBytes uint64
	// FMFI is the ambient fragmentation for allocation pricing.
	FMFI float64
	Seed int64
	// Parallel is the worker count for fanning out the independent runs of
	// each experiment matrix; 0 means GOMAXPROCS, 1 forces serial
	// execution. Results are bit-identical at every worker count: each run
	// derives its RNG seed from its identity (runner.DeriveSeed), owns a
	// private sim.Machine, and is collected in submission order.
	Parallel int
	// Progress, if non-nil, is called after every completed run with the
	// completion count, the matrix size, the run's label, its wall-clock
	// duration, and the number of simulated accesses it replayed (zero for
	// population-only jobs) — enough for the caller to derive simulated
	// accesses/sec. It may be called from multiple goroutines concurrently
	// (the callback must be safe for that, e.g. a single fmt.Printf).
	Progress func(done, total int, label string, elapsed time.Duration, accesses uint64)
	// AccessTally, if non-nil, accumulates every job's simulated access
	// count across all drivers run with these Options — the denominator for
	// the CLI's allocs-per-access meter.
	AccessTally *atomic.Uint64
	// Inject is a fault-injection policy spec (see inject.Parse) applied to
	// every job's physical allocator; empty disables injection. Each job
	// derives its injection seed from its own identity seed, so injected
	// runs keep the bit-identical-at-any-worker-count contract.
	Inject string
	// FailFast aborts the remaining jobs of a matrix once any job fails
	// (error, panic, or a Failed result). Canceled jobs report as failed.
	// Fail-fast runs are NOT bit-identical across worker counts (which jobs
	// were in flight when the abort flipped depends on scheduling), so it
	// defaults to off.
	FailFast bool
	// Failures, if non-nil, collects one record per failed job across every
	// driver invoked with these Options. Records are appended in submission
	// order after each matrix completes, so the log's order is deterministic.
	Failures *FailureLog
	// Name labels the experiment currently running in failure records; the
	// CLI sets it before invoking each driver.
	Name string

	// Checkpoint, when non-empty, is the base path for multi-tenant round
	// checkpoints; each job writes to <Checkpoint>.<org>.p<procs>.c<cores>
	// after every completed round (atomic snapshot envelope, see
	// internal/snapshot).
	Checkpoint string
	// Resume, with Checkpoint set, resumes each multi-tenant job from its
	// checkpoint when one exists; a missing checkpoint starts fresh. A
	// resumed job's fingerprint is bit-identical to the uninterrupted run's.
	Resume bool
	// Scrub runs the cross-layer invariant scrubber (internal/scrub) on
	// every multi-tenant machine after it finishes (or recovers, under
	// Chaos); violations are reported on the row.
	Scrub bool
	// Chaos, when non-empty, is a deterministic kill plan (inject.ParseKill,
	// e.g. "remap.after:2") — each multi-tenant job runs the kill → recover
	// → fingerprint-compare harness instead of a plain run. Requires
	// Checkpoint.
	Chaos string
	// Ctx, if non-nil, bounds the suite: multi-tenant machines stop at the
	// next round boundary once it is done, flush a final checkpoint (when
	// Checkpoint is set), and report a partial row.
	Ctx context.Context
	// TenantTrace, when non-empty, is the base path for recorded
	// multi-tenant access streams: each (org, processes) cell uses
	// <TenantTrace>.<org>.p<procs>.btrc, recording it first if absent
	// (before the matrix fans out, so jobs only ever read), then replaying
	// every job of the cell from it. Replayed fingerprints are
	// bit-identical to generated-trace runs of the same cell.
	TenantTrace string
}

// DefaultOptions returns the paper's configuration (full scale).
func DefaultOptions() Options {
	return Options{
		Scale:         1,
		TimedAccesses: 30_000_000,
		MemBytes:      64 * addr.GB,
		FMFI:          0.7,
		Seed:          42,
	}
}

// TestOptions returns a heavily scaled-down configuration for unit tests.
func TestOptions() Options {
	return Options{
		Scale:         128,
		TimedAccesses: 300_000,
		MemBytes:      4 * addr.GB,
		FMFI:          0.7,
		Seed:          42,
	}
}

// specs returns the workloads at the configured scale.
func (o Options) specs() []workload.Spec { return workload.Specs(o.Scale) }

// JobFailure records one failed experiment job for the CLI's failure
// summary: which experiment and job, why it failed, and — when the job
// panicked rather than returning an error — the recovered stack trace.
type JobFailure struct {
	Experiment string `json:"experiment"`
	Job        string `json:"job"`
	Reason     string `json:"reason"`
	Panicked   bool   `json:"panicked,omitempty"`
	Stack      string `json:"stack,omitempty"`
}

// FailureLog is a concurrency-safe collection of JobFailure records shared
// by every driver of a suite run via Options.Failures.
type FailureLog struct {
	mu   sync.Mutex
	recs []JobFailure
}

func (l *FailureLog) add(f JobFailure) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, f)
}

// Len returns the number of recorded failures.
func (l *FailureLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Failures returns a copy of the recorded failures in append order.
func (l *FailureLog) Failures() []JobFailure {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]JobFailure, len(l.recs))
	copy(out, l.recs)
	return out
}

// noteFailure appends one failure record when a log is attached.
func (o Options) noteFailure(job, reason string, panicked bool, stack string) {
	if o.Failures != nil {
		o.Failures.add(JobFailure{Experiment: o.Name, Job: job,
			Reason: reason, Panicked: panicked, Stack: stack})
	}
}

// runJob is one unit of an experiment matrix: a fully-described simulation
// run. The identity fields (spec name, org, THP, ablation) feed the per-job
// seed derivation, so a job's results depend only on what it is — never on
// where in the matrix it sits or which worker executes it.
type runJob struct {
	spec     workload.Spec
	org      sim.Org
	thp      bool
	ablation string        // "" for the full design
	mcfg     *mehpt.Config // optional ME-HPT ablation override (read-only, nil Rand)
	timed    bool          // run the timed trace after population
}

// label names the job in progress output and failure maps.
func (j runJob) label() string {
	l := j.spec.Name + "/" + j.org.String()
	if j.thp {
		l += "+THP"
	}
	if j.ablation != "" {
		l += "/" + j.ablation
	}
	return l
}

// pop builds a population job.
func pop(spec workload.Spec, org sim.Org, thp bool) runJob {
	return runJob{spec: spec, org: org, thp: thp}
}

// run fans the job matrix out over the configured worker pool and returns
// results in submission order. Every job builds its own sim.Machine (and
// therefore its own page tables and RNGs) inside the worker — the ownership
// rule that keeps the pool race-free; see package runner.
//
// Jobs run under per-job panic recovery (runner.MapSafe): a crashing job
// becomes a Failed result carrying the panic message instead of taking the
// matrix down, and — when Options.Failures is attached — a JobFailure record
// with the recovered stack. With FailFast set, the first failure aborts the
// unclaimed remainder of the matrix.
func (o Options) run(jobs []runJob) []sim.Result {
	var done atomic.Int64
	var abort *atomic.Bool
	if o.FailFast {
		abort = new(atomic.Bool)
	}
	envs := runner.MapSafe(o.Parallel, jobs, abort, func(_ int, j runJob) (sim.Result, error) {
		if abort != nil {
			// Flip the abort on the way out of a panicking job too, then
			// re-panic for MapSafe's recovery to capture the envelope.
			defer func() {
				if p := recover(); p != nil {
					abort.Store(true)
					panic(p)
				}
			}()
		}
		start := time.Now() //mehpt:allow detrand -- -progress wall-clock feedback for humans; never reaches a result
		r := o.exec(j)
		if o.AccessTally != nil {
			o.AccessTally.Add(r.Accesses)
		}
		if o.Progress != nil {
			o.Progress(int(done.Add(1)), len(jobs), j.label(), time.Since(start), r.Accesses) //mehpt:allow detrand -- elapsed time is display-only progress output
		}
		if r.Failed && abort != nil {
			abort.Store(true)
		}
		return r, nil
	})
	out := make([]sim.Result, len(envs))
	for i, e := range envs {
		j := jobs[i]
		r := e.Value
		switch {
		case e.Panic != nil:
			r = sim.Result{Org: j.org, Workload: j.spec.Name, THP: j.thp,
				Failed: true, FailReason: fmt.Sprintf("panic: %v", e.Panic)}
			o.noteFailure(j.label(), r.FailReason, true, e.Stack)
		case e.Err != nil:
			r = sim.Result{Org: j.org, Workload: j.spec.Name, THP: j.thp,
				Failed: true, FailReason: e.Err.Error()}
			o.noteFailure(j.label(), r.FailReason, false, "")
		case r.Failed:
			o.noteFailure(j.label(), r.FailReason, false, "")
		}
		out[i] = r
	}
	return out
}

// exec executes one job: build the machine, price allocations at the
// ambient FMFI, populate, and optionally run the timed trace.
func (o Options) exec(j runJob) sim.Result {
	cfg := sim.Config{
		Org:      j.org,
		Workload: j.spec,
		THP:      j.thp,
		Populate: true,
		Seed:     runner.DeriveSeed(o.Seed, j.spec.Name, j.org.String(), j.thp, j.ablation),
		MemBytes: o.MemBytes,
		// Ambient pricing only; see the package comment.
		FMFI:         0, // no physical shredding
		FreeFraction: 0.35,
		MEHPTConfig:  j.mcfg,
		Inject:       o.Inject,
	}
	if j.timed {
		cfg.Accesses = o.TimedAccesses
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		return sim.Result{Org: j.org, Workload: j.spec.Name, THP: j.thp,
			Failed: true, FailReason: err.Error()}
	}
	m.SetAmbientFMFI(o.FMFI)
	return m.Run()
}

// moveCycles prices one page-table entry migration: a read and a write that
// typically miss the caches (~2 × DRAM minus overlap).
const moveCycles = 150

// perfCycles composes the Figure 9 cycle count from a timed run: the
// steady-state access costs plus the page-table maintenance costs the paper
// attributes the ME-HPT speedups to.
func perfCycles(r sim.Result) uint64 {
	return r.XlatCycles + r.DataCycles + r.PTAllocCycles + r.PTMoves*moveCycles
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
