// Package experiments contains one driver per table and figure in the
// paper's evaluation (Section VII), plus the Section III allocation-cost
// microbenchmark. Each driver returns typed rows and can print them in the
// same layout the paper uses. DESIGN.md's per-experiment index maps every
// driver to the modules it exercises.
//
// Methodology notes (also in EXPERIMENTS.md):
//
//   - Population experiments (Table I, Figures 8, 10–16) fault in the
//     workload's full-scale touched footprint; page-table sizes, chunk
//     sizes, L2P usage, and resize counts are then read off directly.
//   - Allocation costs are priced at the paper's 0.7-FMFI cost curve via
//     the ambient-fragmentation parameter; memory is not physically
//     shredded for these runs so that a single 64GB machine model can be
//     reused (the failure mode above 0.7 FMFI is demonstrated separately
//     by FragmentationStress and in the phys/ecpt test suites).
//   - Figure 9 composes: steady-state translation + data cycles from a
//     timed trace over the populated tables, plus the page-table
//     allocation and entry-movement cycles from population — the costs the
//     paper attributes the ME-HPT speedup to.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/mehpt"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Options configures a whole experiment suite run.
type Options struct {
	// Scale divides every workload footprint; 1 is the paper's full
	// configuration. Tests use large scales for speed.
	Scale uint64
	// TimedAccesses is the trace length for the performance experiments
	// (Figure 9). The paper's window is ~180M references (550M
	// instructions at ~1/3 memory density).
	TimedAccesses uint64
	// MemBytes is the simulated machine's physical memory.
	MemBytes uint64
	// FMFI is the ambient fragmentation for allocation pricing.
	FMFI float64
	Seed int64
}

// DefaultOptions returns the paper's configuration (full scale).
func DefaultOptions() Options {
	return Options{
		Scale:         1,
		TimedAccesses: 30_000_000,
		MemBytes:      64 * addr.GB,
		FMFI:          0.7,
		Seed:          42,
	}
}

// TestOptions returns a heavily scaled-down configuration for unit tests.
func TestOptions() Options {
	return Options{
		Scale:         128,
		TimedAccesses: 300_000,
		MemBytes:      4 * addr.GB,
		FMFI:          0.7,
		Seed:          42,
	}
}

// specs returns the workloads at the configured scale.
func (o Options) specs() []workload.Spec { return workload.Specs(o.Scale) }

// popConfig builds a population-only sim config.
func (o Options) popConfig(spec workload.Spec, org sim.Org, thp bool) sim.Config {
	return sim.Config{
		Org:      org,
		Workload: spec,
		THP:      thp,
		Accesses: 0,
		Populate: true,
		Seed:     o.Seed,
		MemBytes: o.MemBytes,
		// Ambient pricing only; see the package comment.
		FMFI:         0, // no physical shredding
		FreeFraction: 0.35,
	}
}

// populate runs a population-only simulation and prices allocations at the
// configured ambient FMFI.
func (o Options) populate(spec workload.Spec, org sim.Org, thp bool, mcfg *mehpt.Config) sim.Result {
	cfg := o.popConfig(spec, org, thp)
	cfg.MEHPTConfig = mcfg
	m, err := sim.NewMachine(cfg)
	if err != nil {
		return sim.Result{Org: org, Workload: spec.Name, THP: thp,
			Failed: true, FailReason: err.Error()}
	}
	m.SetAmbientFMFI(o.FMFI)
	return m.Run()
}

// timed runs populate followed by a timed trace.
func (o Options) timed(spec workload.Spec, org sim.Org, thp bool) sim.Result {
	cfg := o.popConfig(spec, org, thp)
	cfg.Accesses = o.TimedAccesses
	m, err := sim.NewMachine(cfg)
	if err != nil {
		return sim.Result{Org: org, Workload: spec.Name, THP: thp,
			Failed: true, FailReason: err.Error()}
	}
	m.SetAmbientFMFI(o.FMFI)
	return m.Run()
}

// moveCycles prices one page-table entry migration: a read and a write that
// typically miss the caches (~2 × DRAM minus overlap).
const moveCycles = 150

// perfCycles composes the Figure 9 cycle count from a timed run: the
// steady-state access costs plus the page-table maintenance costs the paper
// attributes the ME-HPT speedups to.
func perfCycles(r sim.Result) uint64 {
	return r.XlatCycles + r.DataCycles + r.PTAllocCycles + r.PTMoves*moveCycles
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
