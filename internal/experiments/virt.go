package experiments

import (
	"io"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/mehpt"
	"repro/internal/nested"
	"repro/internal/phys"
	"repro/internal/radix"
	"repro/internal/runner"
)

// VirtRow compares two-dimensional (virtualized) walks: nested radix vs
// nested hashed page tables (Section V-C's virtualization argument and the
// nested-ECPT follow-up the paper cites).
type VirtRow struct {
	Config       string
	AvgAccesses  float64 // memory accesses per 2D walk
	AvgWalkCycle float64
}

// Virtualization measures nested-walk costs over a scattered guest
// footprint of the given page count.
func Virtualization(o Options, pages int) []VirtRow {
	build := func(hashed bool) *nested.MMU {
		hostAlloc := phys.NewAllocator(phys.NewMemory(4*addr.GB), 0)
		guestAlloc := phys.NewAllocator(phys.NewMemory(2*addr.GB), 0)
		mem := cache.NewHierarchy(cache.TableIII())

		var guest nested.GuestWalker
		var host nested.HostTranslator
		var mapGuest func(vpn addr.VPN, ppn addr.PPN) error
		var mapHost func(vpn addr.VPN, ppn addr.PPN) error

		if hashed {
			gcfg := mehpt.DefaultConfig(uint64(o.Seed))
			gcfg.Rand = rand.New(rand.NewSource(o.Seed))
			gpt, _ := mehpt.NewPageTable(guestAlloc, gcfg) //mehpt:allow errwrap -- fresh dedicated allocator cannot be out of memory
			hcfg := mehpt.DefaultConfig(uint64(o.Seed) + 1)
			hcfg.Rand = rand.New(rand.NewSource(o.Seed + 1))
			hpt, _ := mehpt.NewPageTable(hostAlloc, hcfg) //mehpt:allow errwrap -- fresh dedicated allocator cannot be out of memory
			guest, host = &nested.HPTGuest{PT: gpt}, &nested.HPTHost{PT: hpt}
			mapGuest = func(v addr.VPN, p addr.PPN) error { _, err := gpt.Map(v, addr.Page4K, p); return err }
			mapHost = func(v addr.VPN, p addr.PPN) error { _, err := hpt.Map(v, addr.Page4K, p); return err }
		} else {
			gpt, _ := radix.NewPageTable(guestAlloc) //mehpt:allow errwrap -- fresh dedicated allocator cannot be out of memory
			hpt, _ := radix.NewPageTable(hostAlloc) //mehpt:allow errwrap -- fresh dedicated allocator cannot be out of memory
			guest, host = &nested.RadixGuest{PT: gpt}, &nested.RadixHost{PT: hpt}
			mapGuest = func(v addr.VPN, p addr.PPN) error { _, err := gpt.Map(v, addr.Page4K, p); return err }
			mapHost = func(v addr.VPN, p addr.PPN) error { _, err := hpt.Map(v, addr.Page4K, p); return err }
		}
		for g := addr.VPN(0); g < 1<<19; g++ {
			if err := mapHost(g, addr.PPN(uint64(g)+0x100000)); err != nil {
				return nil
			}
		}
		base := addr.VirtAddr(0x7000_0000_0000)
		for i := 0; i < pages; i++ {
			va := base + addr.VirtAddr(uint64(i)*2048*4096)
			if err := mapGuest(va.PageNumber(addr.Page4K), addr.PPN(1000+i)); err != nil {
				return nil
			}
		}
		m := nested.NewMMU(guest, host, mem, hashed)
		for i := 0; i < pages; i++ {
			m.Translate(base + addr.VirtAddr(uint64(i)*2048*4096))
		}
		return m
	}

	configs := []struct {
		name   string
		hashed bool
	}{{"nested radix (2D tree)", false}, {"nested ME-HPT", true}}
	built := runner.Map(o.Parallel, configs, func(_ int, cfg struct {
		name   string
		hashed bool
	}) *nested.MMU {
		return build(cfg.hashed)
	})
	var rows []VirtRow
	for i, cfg := range configs {
		m := built[i]
		if m == nil {
			continue
		}
		st := m.Stats()
		if st.Walks == 0 {
			continue
		}
		rows = append(rows, VirtRow{
			Config:       cfg.name,
			AvgAccesses:  float64(st.WalkAccesses) / float64(st.Walks),
			AvgWalkCycle: float64(st.WalkCycles) / float64(st.Walks),
		})
	}
	return rows
}

// FprintVirtualization renders the nested-walk comparison.
func FprintVirtualization(w io.Writer, rows []VirtRow) {
	fprintf(w, "Section V-C virtualization: two-dimensional walk cost\n")
	fprintf(w, "%-24s %14s %14s\n", "Configuration", "accesses/walk", "cycles/walk")
	for _, r := range rows {
		fprintf(w, "%-24s %14.1f %14.0f\n", r.Config, r.AvgAccesses, r.AvgWalkCycle)
	}
	fprintf(w, "A 2D radix walk needs up to 24 dependent accesses; nested hashed walks stay flat.\n")
}
