package experiments

import (
	"io"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/mehpt"
	"repro/internal/mmu"
	"repro/internal/phys"
	"repro/internal/radix"
	"repro/internal/runner"
	"repro/internal/workload"
)

// FiveLevelRow quantifies the paper's Section I motivation: as radix trees
// deepen (x86-64's 4 levels → LA57's 5), uncached walks gain another
// dependent memory access, while a hashed walk stays at one probe
// regardless of address-space size.
type FiveLevelRow struct {
	App          string
	Radix4Cycles float64 // average cycles per page walk
	Radix5Cycles float64
	HPTCycles    float64
}

// FiveLevelMotivation measures average walk latency for 4-level radix,
// 5-level radix, and ME-HPT on TLB-missing streams. The three walker
// variants per application are independent runs and fan out over the pool.
func FiveLevelMotivation(o Options, apps ...string) []FiveLevelRow {
	if len(apps) == 0 {
		apps = []string{"BFS", "GUPS"}
	}
	type walkJob struct {
		app  string
		spec workload.Spec
		kind string // "radix4", "radix5", "hpt"
	}
	var jobs []walkJob
	for _, app := range apps {
		spec, err := workload.ByName(app, o.Scale)
		if err != nil {
			continue
		}
		for _, kind := range []string{"radix4", "radix5", "hpt"} {
			jobs = append(jobs, walkJob{app: app, spec: spec, kind: kind})
		}
	}
	avgs := runner.Map(o.Parallel, jobs, func(_ int, j walkJob) float64 {
		seed := runner.DeriveSeed(o.Seed, j.app, j.kind, false, "motivation")
		switch j.kind {
		case "radix4":
			return walkAvgRadix(o, j.spec, 4, seed)
		case "radix5":
			return walkAvgRadix(o, j.spec, 5, seed)
		default:
			return walkAvgHPT(o, j.spec, seed)
		}
	})
	var rows []FiveLevelRow
	for i := 0; i*3 < len(jobs); i++ {
		rows = append(rows, FiveLevelRow{
			App:          jobs[i*3].app,
			Radix4Cycles: avgs[i*3],
			Radix5Cycles: avgs[i*3+1],
			HPTCycles:    avgs[i*3+2],
		})
	}
	return rows
}

// driveWalks populates pages through fault handling and then replays the
// trace counting only walk cycles.
func driveWalks(m mmu.MMU, mapPage func(va addr.VirtAddr) error, spec workload.Spec, n uint64, seed int64) float64 {
	ok := true
	spec.TouchedPageVAs(func(va addr.VirtAddr) bool {
		if err := mapPage(va); err != nil {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return 0
	}
	tr := spec.NewTrace(seed, n)
	for {
		va, more := tr.Next()
		if !more {
			break
		}
		m.Translate(va)
	}
	st := m.Stats()
	if st.Walks == 0 {
		return 0
	}
	return float64(st.WalkCycles) / float64(st.Walks)
}

func walkAvgRadix(o Options, spec workload.Spec, levels int, seed int64) float64 {
	mem := phys.NewMemory(o.MemBytes)
	alloc := phys.NewAllocator(mem, 0)
	pt, err := radix.NewPageTableLevels(alloc, levels)
	if err != nil {
		return 0
	}
	m := mmu.NewRadix(pt, cache.NewHierarchy(cache.TableIII()))
	next := addr.PPN(0)
	return driveWalks(m, func(va addr.VirtAddr) error {
		next++
		_, err := pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, next)
		return err
	}, spec, o.TimedAccesses, seed)
}

func walkAvgHPT(o Options, spec workload.Spec, seed int64) float64 {
	mem := phys.NewMemory(o.MemBytes)
	alloc := phys.NewAllocator(mem, 0)
	cfg := mehpt.DefaultConfig(uint64(seed))
	cfg.Rand = rand.New(rand.NewSource(seed))
	pt, err := mehpt.NewPageTable(alloc, cfg)
	if err != nil {
		return 0
	}
	m := mmu.NewHPT(pt, cache.NewHierarchy(cache.TableIII()))
	next := addr.PPN(0)
	return driveWalks(m, func(va addr.VirtAddr) error {
		next++
		_, err := pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, next)
		return err
	}, spec, o.TimedAccesses, seed)
}

// FprintFiveLevel renders the motivation numbers.
func FprintFiveLevel(w io.Writer, rows []FiveLevelRow) {
	fprintf(w, "Section I motivation: average page-walk latency (cycles)\n")
	fprintf(w, "%-9s %10s %10s %10s %16s\n", "App", "Radix-4L", "Radix-5L", "ME-HPT", "5L vs HPT ratio")
	for _, r := range rows {
		ratio := 0.0
		if r.HPTCycles > 0 {
			ratio = r.Radix5Cycles / r.HPTCycles
		}
		fprintf(w, "%-9s %10.0f %10.0f %10.0f %15.2fx\n",
			r.App, r.Radix4Cycles, r.Radix5Cycles, r.HPTCycles, ratio)
	}
	fprintf(w, "Deeper trees add a dependent access per walk; the hashed walk does not grow.\n")
}
