package snapshot

// Source proof obligations: a Rand over a counting Source is byte-identical
// to a Rand over rand.NewSource (the substitution that made the simulator
// checkpointable must not move any fingerprint), and restoring a recorded
// (seed, draws) position resumes the stream exactly where it left off —
// including through Float64's internal re-draw loop.

import (
	"math/rand"
	"testing"
)

func TestStreamMatchesPlainSource(t *testing.T) {
	// Every Rand method the simulator draws (Int63, Float64, Intn, Perm,
	// Shuffle — all Int63-composed) must match a Rand over rand.NewSource.
	// Rand.Uint64 is deliberately absent: it taps the native Source64 step
	// on a plain source, which no simulator generator uses.
	counted := rand.New(NewSource(42))
	plain := rand.New(rand.NewSource(42))
	for i := 0; i < 4096; i++ {
		switch i % 3 {
		case 0:
			if a, b := counted.Int63(), plain.Int63(); a != b {
				t.Fatalf("draw %d: Int63 %d != %d", i, a, b)
			}
		case 1:
			if a, b := counted.Float64(), plain.Float64(); a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, a, b)
			}
		case 2:
			if a, b := counted.Intn(97), plain.Intn(97); a != b {
				t.Fatalf("draw %d: Intn %d != %d", i, a, b)
			}
		}
	}
	a, b := counted.Perm(31), plain.Perm(31)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Perm[%d] = %d, want %d", i, a[i], b[i])
		}
	}
}

func TestRestoreResumesStream(t *testing.T) {
	src := NewSource(7)
	r := rand.New(src)
	for i := 0; i < 1000; i++ {
		r.Float64() // re-draw loops make draw count != call count
	}
	st := src.State()

	want := make([]int64, 64)
	for i := range want {
		want[i] = r.Int63()
	}

	r2 := rand.New(RestoreSource(st))
	for i := range want {
		if got := r2.Int63(); got != want[i] {
			t.Fatalf("RestoreSource: draw %d = %d, want %d", i, got, want[i])
		}
	}

	src3 := NewSource(999)
	rand.New(src3).Int63() // position somewhere else first
	src3.Restore(st)
	r3 := rand.New(src3)
	for i := range want {
		if got := r3.Int63(); got != want[i] {
			t.Fatalf("in-place Restore: draw %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestStateCountsPrimitiveDraws(t *testing.T) {
	src := NewSource(1)
	if st := src.State(); st.Draws != 0 || st.Seed != 1 {
		t.Fatalf("fresh source state %+v", st)
	}
	src.Int63()
	src.Int63()
	if st := src.State(); st.Draws != 2 {
		t.Fatalf("after 2 draws, state %+v", st)
	}
	src.Seed(5)
	if st := src.State(); st.Draws != 0 || st.Seed != 5 {
		t.Fatalf("after reseed, state %+v", st)
	}
}
