package snapshot

// Envelope proof obligations: a snapshot round-trips bit-exactly, every
// damage mode (wrong file, stale version, torn write, bit rot, schema
// drift) is rejected with its typed sentinel, and Save publishes
// atomically — a failed save never clobbers the previous snapshot.

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name  string
	Vals  []uint64
	Inner struct{ A, B int64 }
}

func samplePayload() payload {
	p := payload{Name: "machine", Vals: []uint64{1, 2, 3, 1 << 60}}
	p.Inner.A, p.Inner.B = -7, 42
	return p
}

func savedPath(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := Save(path, samplePayload()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	path := savedPath(t)
	var got payload
	if err := Load(path, &got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	want := samplePayload()
	if got.Name != want.Name || len(got.Vals) != len(want.Vals) || got.Inner != want.Inner {
		t.Fatalf("round trip mangled payload: %+v", got)
	}
	for i, v := range want.Vals {
		if got.Vals[i] != v {
			t.Fatalf("Vals[%d] = %d, want %d", i, got.Vals[i], v)
		}
	}
}

func TestOverwriteInPlace(t *testing.T) {
	path := savedPath(t)
	second := samplePayload()
	second.Name = "second"
	if err := Save(path, second); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	var got payload
	if err := Load(path, &got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != "second" {
		t.Fatalf("expected the second snapshot, got %q", got.Name)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestRejectsNotASnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("definitely not a snapshot, but long enough to carry a header"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, &got); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("got %v, want ErrNotSnapshot", err)
	}
}

func TestRejectsVersionMismatch(t *testing.T) {
	path := savedPath(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(raw[8:12], Version+1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, &got); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestRejectsTruncation cuts the file at every interesting boundary: inside
// the header, inside the payload, and inside the checksum.
func TestRejectsTruncation(t *testing.T) {
	path := savedPath(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 4, headerLen - 1, headerLen + 1, len(raw) - sumLen - 1, len(raw) - 1} {
		if keep < 0 || keep >= len(raw) {
			continue
		}
		cut := filepath.Join(t.TempDir(), "cut.snap")
		if err := os.WriteFile(cut, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		if err := Load(cut, &got); !errors.Is(err, ErrTruncated) {
			t.Errorf("keep=%d: got %v, want ErrTruncated", keep, err)
		}
	}
}

// TestRejectsBitFlips flips one bit at a spread of payload and checksum
// offsets; every flip must surface as ErrChecksum (payload or checksum
// damage), never as a silent mis-decode.
func TestRejectsBitFlips(t *testing.T) {
	path := savedPath(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipper := rand.New(rand.NewSource(7))
	for trial := 0; trial < 16; trial++ {
		off := headerLen + flipper.Intn(len(raw)-headerLen)
		bad := append([]byte(nil), raw...)
		bad[off] ^= 1 << uint(flipper.Intn(8))
		flipped := filepath.Join(t.TempDir(), "flip.snap")
		if err := os.WriteFile(flipped, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		if err := Load(flipped, &got); !errors.Is(err, ErrChecksum) {
			t.Errorf("flip at %d: got %v, want ErrChecksum", off, err)
		}
	}
}

func TestRejectsSchemaDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift.snap")
	if err := Save(path, samplePayload()); err != nil {
		t.Fatal(err)
	}
	// A shape the payload cannot decode into: same envelope, wrong type.
	var got struct{ Name int64 }
	if err := Load(path, &got); !errors.Is(err, ErrDecode) {
		t.Fatalf("got %v, want ErrDecode", err)
	}
}

// TestFailedSaveKeepsPrevious proves atomic publication: saving an
// unencodable state leaves the previously published snapshot intact.
func TestFailedSaveKeepsPrevious(t *testing.T) {
	path := savedPath(t)
	if err := Save(path, func() {}); err == nil { // funcs are not gob-encodable
		t.Fatal("Save of unencodable state succeeded")
	}
	var got payload
	if err := Load(path, &got); err != nil {
		t.Fatalf("previous snapshot damaged by failed save: %v", err)
	}
	if got.Name != samplePayload().Name {
		t.Fatalf("previous snapshot content changed: %+v", got)
	}
}
