package snapshot

import "math/rand"

// Source is a math/rand Source that counts its draws, so a generator's
// exact stream position can be checkpointed as (seed, draws) and restored
// by replaying the same number of primitive steps. It deliberately
// implements only the plain rand.Source interface (Int63 + Seed): every
// rand.Rand method the simulator uses composes its values from Int63 calls
// on a non-Source64 source, so a Rand over a Source produces the
// byte-identical stream of a Rand over rand.NewSource(seed) — existing
// fingerprints and goldens are untouched by the substitution. (The one
// exception is Rand.Uint64, which taps the native 64-bit step when the
// source implements Source64; no simulator generator draws it, and the
// composed fallback is just as deterministic and replayable.)
//
// Counting must live at the source level, not at the Rand level: methods
// like Float64 have internal re-draw loops, so "calls to Float64" is not a
// replayable position but "Int63 steps of the source" is.
type Source struct {
	seed  int64
	draws uint64
	//mehpt:transient -- RestoreSource re-derives the stream by reseeding with Seed and burning Draws steps
	src rand.Source
}

// NewSource returns a counting source with the same stream as
// rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed)}
}

// Int63 draws one primitive step.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Seed reseeds the source and resets the draw count.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// SourceState is the serializable position of a Source.
type SourceState struct {
	Seed  int64
	Draws uint64
}

// State returns the current stream position.
func (s *Source) State() SourceState {
	return SourceState{Seed: s.seed, Draws: s.draws}
}

// RestoreSource recreates a source at the recorded position by reseeding
// and burning the recorded number of steps.
func RestoreSource(st SourceState) *Source {
	s := NewSource(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.Int63()
	}
	s.draws = st.Draws
	return s
}

// Restore repositions s in place to the recorded state.
func (s *Source) Restore(st SourceState) {
	s.Seed(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.Int63()
	}
	s.draws = st.Draws
}
