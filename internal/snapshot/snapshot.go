// Package snapshot is the crash-consistent checkpoint substrate for
// long-running simulations: a versioned, checksummed on-disk envelope with
// atomic publication, and a draw-counting RNG source that lets every
// deterministic generator in the simulator serialize its exact stream
// position.
//
// # Envelope format
//
// A snapshot file is
//
//	magic    [8]byte  "MEHPTSNP"
//	version  uint32   big-endian format version
//	length   uint64   big-endian payload length in bytes
//	payload  []byte   gob-encoded state
//	checksum [32]byte SHA-256 of payload
//
// Save writes the envelope to a temporary file in the target directory and
// renames it into place, so a crash mid-write can never leave a torn file
// behind the published name: readers see either the previous snapshot or
// the new one, never a prefix. Load verifies magic, version, length, and
// checksum before decoding, and reports failures through the typed
// sentinels below so callers can distinguish "not a snapshot" from "stale
// format" from "bit rot".
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Version is the current envelope format version. Bump it whenever the
// payload schema changes incompatibly; Load rejects mismatches with
// ErrVersion rather than mis-decoding old state.
const Version = 1

var magic = [8]byte{'M', 'E', 'H', 'P', 'T', 'S', 'N', 'P'}

const headerLen = 8 + 4 + 8 // magic + version + payload length
const sumLen = sha256.Size

// Typed sentinel errors. Every failure mode Load can report wraps exactly
// one of these, so callers gate recovery policy with errors.Is.
var (
	// ErrNotSnapshot means the file does not carry the snapshot magic —
	// it is some other file, not a damaged snapshot.
	ErrNotSnapshot = errors.New("snapshot: not a snapshot file")
	// ErrVersion means the envelope is well-formed but written by an
	// incompatible format version.
	ErrVersion = errors.New("snapshot: format version mismatch")
	// ErrTruncated means the file ends before the length the header
	// promises — the classic torn-write signature.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrChecksum means the payload bytes do not hash to the recorded
	// checksum: silent corruption between write and read.
	ErrChecksum = errors.New("snapshot: payload checksum mismatch")
	// ErrDecode means the payload verified but did not gob-decode into
	// the caller's state type — a schema drift the version field missed.
	ErrDecode = errors.New("snapshot: payload decode failed")
)

// Save gob-encodes state and atomically publishes it at path: the envelope
// is written to a temporary file in path's directory, synced, and renamed
// into place. On any error the published path is untouched.
func Save(path string, state any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(state); err != nil {
		return fmt.Errorf("snapshot: encoding state: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	var hdr [headerLen]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint32(hdr[8:12], Version)
	binary.BigEndian.PutUint64(hdr[12:20], uint64(payload.Len()))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	werr := func() error {
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := tmp.Write(payload.Bytes()); err != nil {
			return err
		}
		if _, err := tmp.Write(sum[:]); err != nil {
			return err
		}
		return tmp.Sync()
	}()
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("snapshot: writing %s: %w", tmp.Name(), werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: publishing %s: %w", path, err)
	}
	return nil
}

// Load reads the envelope at path, verifies it, and gob-decodes the
// payload into state (which must be a pointer). Verification failures wrap
// the typed sentinels above.
func Load(path string, state any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("snapshot: reading %s: %w", path, err)
	}
	if len(raw) < headerLen {
		if len(raw) >= 8 && !bytes.Equal(raw[:8], magic[:]) {
			return fmt.Errorf("%w: %s", ErrNotSnapshot, path)
		}
		return fmt.Errorf("%w: %s: %d bytes, header needs %d", ErrTruncated, path, len(raw), headerLen)
	}
	if !bytes.Equal(raw[:8], magic[:]) {
		return fmt.Errorf("%w: %s", ErrNotSnapshot, path)
	}
	if v := binary.BigEndian.Uint32(raw[8:12]); v != Version {
		return fmt.Errorf("%w: %s: file version %d, this build reads %d", ErrVersion, path, v, Version)
	}
	n := binary.BigEndian.Uint64(raw[12:20])
	if uint64(len(raw)) < headerLen+n+sumLen {
		return fmt.Errorf("%w: %s: payload %d bytes promised, %d present", ErrTruncated, path, n, len(raw)-headerLen)
	}
	payload := raw[headerLen : headerLen+n]
	var want [sumLen]byte
	copy(want[:], raw[headerLen+n:headerLen+n+sumLen])
	if sum := sha256.Sum256(payload); sum != want {
		return fmt.Errorf("%w: %s", ErrChecksum, path)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(state); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrDecode, path, err)
	}
	return nil
}
