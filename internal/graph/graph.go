// Package graph provides the graph-processing substrate: CSR graphs laid
// out in simulated virtual memory and real kernel implementations (BFS, DFS,
// PageRank, connected components, degree/betweenness centrality, SSSP,
// triangle counting — the GraphBIG kernels the paper evaluates) that emit
// the exact virtual-address stream of every array element they touch.
//
// The statistical generators in internal/workload are calibrated to
// reproduce Table I's page-table sizes; this package complements them with
// genuine algorithm-driven traces for end-to-end demonstrations
// (examples/graphkernels) and cross-validation tests.
package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
)

// Element sizes of the in-memory arrays.
const (
	offsetBytes = 8
	edgeBytes   = 8
	propBytes   = 8
)

// Tracer receives the virtual address of every memory reference a kernel
// makes, in program order.
type Tracer func(va addr.VirtAddr)

// Graph is a directed graph in CSR form, with its arrays assigned virtual
// addresses so kernels can emit realistic access streams.
type Graph struct {
	N uint64 // nodes
	M uint64 // edges

	offsets []uint64 // len N+1
	edges   []uint32 // len M

	// Virtual layout: offsets, edges, and a property array live
	// back-to-back from Base, each page-aligned.
	Base      addr.VirtAddr
	offBase   addr.VirtAddr
	edgeBase  addr.VirtAddr
	propBase  addr.VirtAddr
	WorkBase  addr.VirtAddr // frontier queues, stacks, auxiliary arrays
	totalSpan uint64
}

// GenerateUniform builds a uniform random directed graph with n nodes and
// average out-degree deg, deterministically from seed.
func GenerateUniform(n uint64, deg int, seed int64, base addr.VirtAddr) *Graph {
	if n == 0 || deg <= 0 {
		panic("graph: need n > 0 and deg > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n, Base: base}
	g.offsets = make([]uint64, n+1)
	counts := make([]uint32, n)
	m := n * uint64(deg)
	targets := make([]uint32, m)
	for i := range targets {
		targets[i] = uint32(rng.Int63n(int64(n)))
		counts[rng.Int63n(int64(n))]++
	}
	// Build CSR from per-node counts.
	for i := uint64(0); i < n; i++ {
		g.offsets[i+1] = g.offsets[i] + uint64(counts[i])
	}
	g.M = g.offsets[n]
	g.edges = make([]uint32, g.M)
	copy(g.edges, targets[:g.M])
	g.layout()
	return g
}

// layout assigns page-aligned virtual bases to the arrays.
func (g *Graph) layout() {
	page := uint64(4 * addr.KB)
	cur := g.Base
	g.offBase = cur
	cur = addr.AlignUp(cur+addr.VirtAddr((g.N+1)*offsetBytes), page)
	g.edgeBase = cur
	cur = addr.AlignUp(cur+addr.VirtAddr(g.M*edgeBytes), page)
	g.propBase = cur
	cur = addr.AlignUp(cur+addr.VirtAddr(g.N*propBytes), page)
	g.WorkBase = cur
	cur = addr.AlignUp(cur+addr.VirtAddr(g.N*propBytes), page)
	g.totalSpan = uint64(cur - g.Base)
}

// SpanBytes returns the virtual footprint of the graph's arrays.
func (g *Graph) SpanBytes() uint64 { return g.totalSpan }

// Degree returns node v's out-degree.
func (g *Graph) Degree(v uint32) uint64 {
	return g.offsets[uint64(v)+1] - g.offsets[uint64(v)]
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph{N=%d M=%d span=%dMB}", g.N, g.M, g.totalSpan>>20)
}

// Address helpers: each models the load/store the kernel performs.

func (g *Graph) touchOffset(t Tracer, v uint64) uint64 {
	t(g.offBase + addr.VirtAddr(v*offsetBytes))
	return g.offsets[v]
}

func (g *Graph) touchEdge(t Tracer, j uint64) uint32 {
	t(g.edgeBase + addr.VirtAddr(j*edgeBytes))
	return g.edges[j]
}

func (g *Graph) touchProp(t Tracer, v uint64) {
	t(g.propBase + addr.VirtAddr(v*propBytes))
}

func (g *Graph) touchWork(t Tracer, i uint64) {
	t(g.WorkBase + addr.VirtAddr((i%g.N)*propBytes))
}

// neighbors iterates v's out-edges, touching the offset and edge arrays
// exactly as a CSR traversal does.
func (g *Graph) neighbors(t Tracer, v uint32, f func(u uint32)) {
	start := g.touchOffset(t, uint64(v))
	end := g.touchOffset(t, uint64(v)+1)
	for j := start; j < end; j++ {
		f(g.touchEdge(t, j))
	}
}

// BFS runs breadth-first search from root, emitting its access stream, and
// returns the number of reached nodes.
func (g *Graph) BFS(root uint32, t Tracer) uint64 {
	visited := make([]bool, g.N)
	queue := []uint32{root}
	visited[root] = true
	var reached uint64 = 1
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		g.touchWork(t, uint64(qi)) // queue pop
		g.neighbors(t, v, func(u uint32) {
			g.touchProp(t, uint64(u)) // visited check
			if !visited[u] {
				visited[u] = true
				reached++
				g.touchWork(t, uint64(len(queue))) // queue push
				queue = append(queue, u)
			}
		})
	}
	return reached
}

// DFS runs depth-first search from root and returns the reached count.
func (g *Graph) DFS(root uint32, t Tracer) uint64 {
	visited := make([]bool, g.N)
	stack := []uint32{root}
	var reached uint64
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.touchWork(t, uint64(len(stack)))
		g.touchProp(t, uint64(v))
		if visited[v] {
			continue
		}
		visited[v] = true
		reached++
		g.neighbors(t, v, func(u uint32) {
			if !visited[u] {
				stack = append(stack, u)
			}
		})
	}
	return reached
}

// PageRank runs iters power iterations and returns the final rank mass
// (≈1.0, for validation).
func (g *Graph) PageRank(iters int, t Tracer) float64 {
	const damping = 0.85
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1 / float64(g.N)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(g.N)
		for i := range next {
			next[i] = base
		}
		for v := uint64(0); v < g.N; v++ {
			g.touchProp(t, v) // rank[v] load
			d := g.Degree(uint32(v))
			if d == 0 {
				continue
			}
			share := damping * rank[v] / float64(d)
			g.neighbors(t, uint32(v), func(u uint32) {
				g.touchWork(t, uint64(u)) // next[u] accumulate
				next[u] += share
			})
		}
		rank, next = next, rank
	}
	var sum float64
	for _, r := range rank {
		sum += r
	}
	return sum
}

// ConnectedComponents labels nodes by repeated label propagation (on the
// directed edges, treated as undirected for propagation) and returns the
// number of distinct labels.
func (g *Graph) ConnectedComponents(t Tracer) uint64 {
	label := make([]uint32, g.N)
	for i := range label {
		label[i] = uint32(i)
	}
	changed := true
	for pass := 0; changed && pass < 32; pass++ {
		changed = false
		for v := uint64(0); v < g.N; v++ {
			g.touchProp(t, v)
			g.neighbors(t, uint32(v), func(u uint32) {
				g.touchWork(t, uint64(u))
				if label[u] < label[v] {
					label[v] = label[u]
					changed = true
				} else if label[v] < label[u] {
					label[u] = label[v]
					changed = true
				}
			})
		}
	}
	seen := map[uint32]bool{}
	for _, l := range label {
		seen[l] = true
	}
	return uint64(len(seen))
}

// DegreeCentrality computes per-node degree (one sequential CSR sweep).
func (g *Graph) DegreeCentrality(t Tracer) uint64 {
	var max uint64
	for v := uint64(0); v < g.N; v++ {
		s := g.touchOffset(t, v)
		e := g.touchOffset(t, v+1)
		g.touchProp(t, v)
		if e-s > max {
			max = e - s
		}
	}
	return max
}

// SSSP runs a Bellman-Ford-style relaxation with unit weights for rounds
// iterations and returns the number of reachable nodes from root.
func (g *Graph) SSSP(root uint32, rounds int, t Tracer) uint64 {
	const inf = ^uint32(0)
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	for r := 0; r < rounds; r++ {
		changed := false
		for v := uint64(0); v < g.N; v++ {
			g.touchProp(t, v)
			if dist[v] == inf {
				continue
			}
			g.neighbors(t, uint32(v), func(u uint32) {
				g.touchWork(t, uint64(u))
				if dist[v]+1 < dist[u] {
					dist[u] = dist[v] + 1
					changed = true
				}
			})
		}
		if !changed {
			break
		}
	}
	var reached uint64
	for _, d := range dist {
		if d != inf {
			reached++
		}
	}
	return reached
}

// TriangleCount counts triangles among the first sample nodes (exact
// counting is cubic; GraphBIG also bounds it) and returns the count.
func (g *Graph) TriangleCount(sample uint64, t Tracer) uint64 {
	if sample > g.N {
		sample = g.N
	}
	// Adjacency sets for sampled nodes.
	adj := make([]map[uint32]bool, sample)
	for v := uint64(0); v < sample; v++ {
		adj[v] = make(map[uint32]bool)
		g.neighbors(t, uint32(v), func(u uint32) {
			if uint64(u) < sample {
				adj[v][u] = true
			}
		})
	}
	var count uint64
	for v := uint64(0); v < sample; v++ {
		for u := range adj[v] {
			g.touchProp(t, uint64(u))
			for w := range adj[uint64(u)] {
				g.touchWork(t, uint64(w))
				if adj[v][w] {
					count++
				}
			}
		}
	}
	return count / 3
}

// BetweennessCentrality runs Brandes' algorithm from sources sampled
// nodes and returns the maximum centrality score (for validation).
func (g *Graph) BetweennessCentrality(sources uint64, t Tracer) float64 {
	if sources > g.N {
		sources = g.N
	}
	bc := make([]float64, g.N)
	for s := uint64(0); s < sources; s++ {
		// Forward BFS phase recording predecessors and path counts.
		sigma := make([]float64, g.N)
		dist := make([]int32, g.N)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		order := []uint32{uint32(s)}
		preds := make([][]uint32, g.N)
		for qi := 0; qi < len(order); qi++ {
			v := order[qi]
			g.touchWork(t, uint64(qi))
			g.neighbors(t, v, func(u uint32) {
				g.touchProp(t, uint64(u))
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					order = append(order, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
					preds[u] = append(preds[u], v)
				}
			})
		}
		// Backward accumulation.
		delta := make([]float64, g.N)
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			g.touchWork(t, uint64(i))
			for _, v := range preds[w] {
				g.touchProp(t, uint64(v))
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if uint64(w) != s {
				bc[w] += delta[w]
			}
		}
	}
	var max float64
	for _, b := range bc {
		if b > max {
			max = b
		}
	}
	return max
}

// Kernels returns the kernel names this package implements, in the paper's
// application order.
func Kernels() []string {
	return []string{"BC", "BFS", "CC", "DC", "DFS", "PR", "SSSP", "TC"}
}

// Run executes the named kernel with reasonable default parameters,
// returning an opaque checksum for validation.
func (g *Graph) Run(kernel string, t Tracer) (float64, error) {
	switch kernel {
	case "BFS":
		return float64(g.BFS(0, t)), nil
	case "DFS":
		return float64(g.DFS(0, t)), nil
	case "PR":
		return g.PageRank(3, t), nil
	case "CC":
		return float64(g.ConnectedComponents(t)), nil
	case "DC":
		return float64(g.DegreeCentrality(t)), nil
	case "SSSP":
		return float64(g.SSSP(0, 8, t)), nil
	case "TC":
		return float64(g.TriangleCount(min64(g.N, 2000), t)), nil
	case "BC":
		return g.BetweennessCentrality(min64(g.N, 8), t), nil
	}
	return 0, fmt.Errorf("graph: unknown kernel %q", kernel)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
