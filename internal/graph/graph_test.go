package graph

import (
	"math"
	"testing"

	"repro/internal/addr"
)

func testGraph(t *testing.T, n uint64, deg int) *Graph {
	t.Helper()
	return GenerateUniform(n, deg, 42, addr.VirtAddr(0x1000_0000))
}

func TestGenerateCSRInvariants(t *testing.T) {
	g := testGraph(t, 1000, 8)
	if g.N != 1000 {
		t.Fatalf("N = %d", g.N)
	}
	if g.offsets[0] != 0 || g.offsets[g.N] != g.M {
		t.Fatalf("offset endpoints: %d..%d, M=%d", g.offsets[0], g.offsets[g.N], g.M)
	}
	for i := uint64(0); i < g.N; i++ {
		if g.offsets[i] > g.offsets[i+1] {
			t.Fatalf("offsets not monotone at %d", i)
		}
	}
	for _, e := range g.edges {
		if uint64(e) >= g.N {
			t.Fatalf("edge target %d out of range", e)
		}
	}
	if g.SpanBytes() == 0 {
		t.Error("zero span")
	}
}

func TestLayoutDisjoint(t *testing.T) {
	g := testGraph(t, 5000, 10)
	type region struct {
		name       string
		start, end addr.VirtAddr
	}
	regions := []region{
		{"offsets", g.offBase, g.offBase + addr.VirtAddr((g.N+1)*offsetBytes)},
		{"edges", g.edgeBase, g.edgeBase + addr.VirtAddr(g.M*edgeBytes)},
		{"props", g.propBase, g.propBase + addr.VirtAddr(g.N*propBytes)},
		{"work", g.WorkBase, g.WorkBase + addr.VirtAddr(g.N*propBytes)},
	}
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.start < b.end && b.start < a.end {
				t.Errorf("regions %s and %s overlap", a.name, b.name)
			}
		}
	}
}

func TestBFSReachesMost(t *testing.T) {
	g := testGraph(t, 2000, 8)
	var accesses uint64
	reached := g.BFS(0, func(va addr.VirtAddr) { accesses++ })
	// A uniform graph with degree 8 has a giant strongly-connected-ish
	// component; BFS should reach the bulk of it.
	if reached < g.N/2 {
		t.Errorf("BFS reached %d of %d", reached, g.N)
	}
	if accesses == 0 {
		t.Error("no accesses traced")
	}
}

func TestBFSvsDFSSameReachability(t *testing.T) {
	g := testGraph(t, 1500, 6)
	null := func(addr.VirtAddr) {}
	if b, d := g.BFS(0, null), g.DFS(0, null); b != d {
		t.Errorf("BFS reached %d but DFS %d from the same root", b, d)
	}
}

func TestPageRankMassConserved(t *testing.T) {
	g := testGraph(t, 1000, 8)
	sum := g.PageRank(5, func(addr.VirtAddr) {})
	// Dangling nodes leak a little mass; allow 15%.
	if sum < 0.85 || sum > 1.0001 {
		t.Errorf("rank mass = %v, want ≈1", sum)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := testGraph(t, 1000, 8)
	cc := g.ConnectedComponents(func(addr.VirtAddr) {})
	// Degree 8 uniform: almost surely one big component.
	if cc > g.N/10 {
		t.Errorf("%d components of %d nodes; propagation broken?", cc, g.N)
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := testGraph(t, 1000, 8)
	max := g.DegreeCentrality(func(addr.VirtAddr) {})
	var want uint64
	for v := uint64(0); v < g.N; v++ {
		if d := g.Degree(uint32(v)); d > want {
			want = d
		}
	}
	if max != want {
		t.Errorf("max degree = %d, want %d", max, want)
	}
}

func TestSSSPMatchesBFSReach(t *testing.T) {
	g := testGraph(t, 1200, 6)
	null := func(addr.VirtAddr) {}
	bfs := g.BFS(0, null)
	sssp := g.SSSP(0, 64, null)
	if bfs != sssp {
		t.Errorf("SSSP reached %d, BFS %d", sssp, bfs)
	}
}

func TestTriangleCountSmall(t *testing.T) {
	// Hand-built triangle: 0→1,1→2,2→0 and the reverse, plus bidirectional
	// closure so all orientations exist.
	g := &Graph{N: 3, Base: 0x100000}
	g.offsets = []uint64{0, 2, 4, 6}
	g.edges = []uint32{1, 2, 0, 2, 0, 1}
	g.M = 6
	g.layout()
	got := g.TriangleCount(3, func(addr.VirtAddr) {})
	if got == 0 {
		t.Errorf("triangle not counted")
	}
}

func TestBetweennessNonNegative(t *testing.T) {
	g := testGraph(t, 400, 6)
	max := g.BetweennessCentrality(4, func(addr.VirtAddr) {})
	if max < 0 || math.IsNaN(max) {
		t.Errorf("BC max = %v", max)
	}
}

func TestRunAllKernels(t *testing.T) {
	g := testGraph(t, 800, 6)
	for _, k := range Kernels() {
		var n uint64
		if _, err := g.Run(k, func(addr.VirtAddr) { n++ }); err != nil {
			t.Errorf("%s: %v", k, err)
		}
		if n == 0 {
			t.Errorf("%s: no memory accesses traced", k)
		}
	}
	if _, err := g.Run("nope", func(addr.VirtAddr) {}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

// TestTraceAddressesInSpan: every traced address falls within the graph's
// virtual arrays.
func TestTraceAddressesInSpan(t *testing.T) {
	g := testGraph(t, 600, 6)
	lo, hi := g.Base, g.Base+addr.VirtAddr(g.SpanBytes())
	for _, k := range Kernels() {
		bad := 0
		g.Run(k, func(va addr.VirtAddr) {
			if va < lo || va >= hi {
				bad++
			}
		})
		if bad > 0 {
			t.Errorf("%s: %d accesses outside the graph span", k, bad)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := GenerateUniform(500, 4, 7, 0)
	b := GenerateUniform(500, 4, 7, 0)
	if a.M != b.M {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}
