package integration

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestSerialParallelEquivalence proves the parallel runner's determinism
// contract end-to-end: the same experiment matrix run with 1 worker and
// with 8 workers must produce byte-identical result rows. It exercises
// population-only drivers (Figure 8, Table 1), the ME-HPT-internals readers
// (Figure 13), and a timed-trace driver (Figure 9) so both the populate
// path and the trace path are covered.
func TestSerialParallelEquivalence(t *testing.T) {
	base := experiments.TestOptions()
	base.TimedAccesses = 30_000

	type outputs struct {
		fig8   []experiments.Figure8Row
		fig13  []experiments.Figure13Row
		table1 []experiments.Table1Row
		fig9   []experiments.Figure9Row
		text   string
	}
	render := func(parallel int) outputs {
		o := base
		o.Parallel = parallel
		out := outputs{
			fig8:   experiments.Figure8(o),
			fig13:  experiments.Figure13(o),
			table1: experiments.Table1(o),
		}
		if !testing.Short() {
			out.fig9 = experiments.Figure9(o)
		}
		var sb strings.Builder
		experiments.FprintFigure8(&sb, out.fig8)
		experiments.FprintFigure13(&sb, out.fig13)
		experiments.FprintTable1(&sb, out.table1)
		if out.fig9 != nil {
			experiments.FprintFigure9(&sb, out.fig9)
		}
		out.text = sb.String()
		return out
	}

	serial := render(1)
	parallel := render(8)

	if !reflect.DeepEqual(serial.fig8, parallel.fig8) {
		t.Errorf("Figure 8 rows diverge between -parallel 1 and -parallel 8:\nserial:   %+v\nparallel: %+v",
			serial.fig8, parallel.fig8)
	}
	if !reflect.DeepEqual(serial.fig13, parallel.fig13) {
		t.Errorf("Figure 13 rows diverge:\nserial:   %+v\nparallel: %+v", serial.fig13, parallel.fig13)
	}
	if !reflect.DeepEqual(serial.table1, parallel.table1) {
		t.Errorf("Table 1 rows diverge:\nserial:   %+v\nparallel: %+v", serial.table1, parallel.table1)
	}
	if !reflect.DeepEqual(serial.fig9, parallel.fig9) {
		t.Errorf("Figure 9 rows diverge:\nserial:   %+v\nparallel: %+v", serial.fig9, parallel.fig9)
	}
	if serial.text != parallel.text {
		t.Error("rendered output is not byte-identical between worker counts")
		a, b := strings.Split(serial.text, "\n"), strings.Split(parallel.text, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Errorf("first diverging line %d:\nserial:   %q\nparallel: %q", i, a[i], b[i])
				break
			}
		}
	}
}

// TestMultiTenantWorkerCoreMatrix is the PR's headline determinism gate:
// the multi-tenant matrix over simulated cores {1,2,4,8} produces
// byte-identical JSON at host worker counts {1,2,4,8}, and within each
// (org, processes) cell the canonical fingerprint is identical at every
// simulated core count. Host parallelism and simulated parallelism are
// both pure wall-clock knobs — neither may leak into the numbers.
func TestMultiTenantWorkerCoreMatrix(t *testing.T) {
	o := experiments.TestOptions()
	cores := []int{1, 2, 4, 8}
	procs := []int{6}

	render := func(parallel int) ([]experiments.MultiTenantRow, string) {
		po := o
		po.Parallel = parallel
		rows := experiments.MultiTenant(po, cores, procs)
		j, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return rows, string(j)
	}

	baseRows, baseJSON := render(1)
	for _, r := range baseRows {
		if r.JobFailed {
			t.Fatalf("machine %s/p%d/c%d failed: %s", r.Org, r.Processes, r.Cores, r.FailReason)
		}
	}
	if bad := experiments.MultiTenantFingerprintsAgree(baseRows); len(bad) > 0 {
		t.Errorf("fingerprint diverges across simulated core counts at %v", bad)
	}
	for _, workers := range []int{2, 4, 8} {
		_, j := render(workers)
		if j != baseJSON {
			t.Errorf("matrix JSON at %d workers differs from serial run", workers)
		}
	}
}

// TestMultiTenantTraceReplayMatrix proves the record/replay path of the
// multi-tenant matrix is invisible in the results: recording every
// (org, processes) cell's access streams to sectioned binary traces and
// replaying them — freshly recorded or reread from disk — reproduces the
// generated-trace matrix byte for byte.
func TestMultiTenantTraceReplayMatrix(t *testing.T) {
	o := experiments.TestOptions()
	cores := []int{1, 2}
	procs := []int{4}

	render := func(o experiments.Options) string {
		rows := experiments.MultiTenant(o, cores, procs)
		for _, r := range rows {
			if r.JobFailed {
				t.Fatalf("machine %s/p%d/c%d failed: %s", r.Org, r.Processes, r.Cores, r.FailReason)
			}
		}
		j, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}

	base := render(o)
	ro := o
	ro.TenantTrace = filepath.Join(t.TempDir(), "mt")
	if got := render(ro); got != base {
		t.Error("record-then-replay matrix differs from generated-trace run")
	}
	// The trace files now exist: this run is pure replay from disk.
	if got := render(ro); got != base {
		t.Error("replay-from-disk matrix differs from generated-trace run")
	}
}
