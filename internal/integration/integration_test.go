// Package integration holds cross-component tests: equivalence of the three
// page-table organizations on identical workloads, cuckoo-walk-table
// consistency against ground truth, and end-to-end machine runs with real
// graph kernels.
package integration

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/cwc"
	"repro/internal/ecpt"
	"repro/internal/graph"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/radix"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestOrganizationsTranslateIdentically: mapping the same pages must yield
// identical translations from radix, ECPT, and ME-HPT.
func TestOrganizationsTranslateIdentically(t *testing.T) {
	mkAlloc := func() *phys.Allocator {
		return phys.NewAllocator(phys.NewMemory(2*addr.GB), 0)
	}
	rpt, err := radix.NewPageTable(mkAlloc())
	if err != nil {
		t.Fatal(err)
	}
	ecfg := ecpt.DefaultConfig(5)
	ecfg.Rand = rand.New(rand.NewSource(1))
	ept, err := ecpt.NewPageTable(mkAlloc(), ecfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mehpt.DefaultConfig(5)
	mcfg.Rand = rand.New(rand.NewSource(1))
	mpt, err := mehpt.NewPageTable(mkAlloc(), mcfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(77))
	type mapping struct {
		vpn  addr.VPN
		size addr.PageSize
		ppn  addr.PPN
	}
	var maps []mapping
	used2M := map[addr.VPN]bool{}
	for i := 0; i < 30000; i++ {
		var m mapping
		if rng.Intn(10) == 0 {
			m = mapping{addr.VPN(rng.Uint64() & 0x7FFF), addr.Page2M, addr.PPN(rng.Uint64() & 0xFFFF)}
			used2M[m.vpn] = true
		} else {
			vpn := addr.VPN(rng.Uint64() & 0xFFFFFF)
			// Keep 4KB pages out of regions mapped 2MB (the radix tree
			// rejects overlap; the HPTs keep separate tables).
			if used2M[addr.VirtAddr(vpn.Addr(addr.Page4K)).PageNumber(addr.Page2M)] {
				continue
			}
			m = mapping{vpn, addr.Page4K, addr.PPN(rng.Uint64() & 0x3FFFFFF)}
		}
		if _, err := rpt.Map(m.vpn, m.size, m.ppn); err != nil {
			continue // overlap rejected; skip everywhere
		}
		if _, err := ept.Map(m.vpn, m.size, m.ppn); err != nil {
			t.Fatalf("ecpt.Map: %v", err)
		}
		if _, err := mpt.Map(m.vpn, m.size, m.ppn); err != nil {
			t.Fatalf("mehpt.Map: %v", err)
		}
		maps = append(maps, m)
	}
	for _, m := range maps {
		va := m.vpn.Addr(m.size) + addr.VirtAddr(rng.Intn(int(m.size.Bytes())))
		r, rok := rpt.Translate(va)
		e, eok := ept.Translate(va)
		h, hok := mpt.Translate(va)
		if !rok || !eok || !hok {
			t.Fatalf("translate(%#x): radix %v ecpt %v mehpt %v", uint64(va), rok, eok, hok)
		}
		if r != e || e != h {
			t.Fatalf("translate(%#x) diverges: radix %+v ecpt %+v mehpt %+v", uint64(va), r, e, h)
		}
	}
}

// TestCWTConsistency: cuckoo walk tables maintained through the OnWayChange
// hook must always list the way actually holding each translation.
func TestCWTConsistency(t *testing.T) {
	tables := cwc.NewTables()
	alloc := phys.NewAllocator(phys.NewMemory(2*addr.GB), 0)
	cfg := mehpt.DefaultConfig(9)
	cfg.Rand = rand.New(rand.NewSource(2))
	cfg.OnWayChange = func(key uint64, size addr.PageSize, way int) {
		// key is a cluster key; the CWT is indexed by VA region.
		va := addr.VPN(key * 8).Addr(size)
		tables.Moved(va, size, way)
	}
	p, err := mehpt.NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	live := map[addr.VPN]bool{}
	for i := 0; i < 40000; i++ {
		vpn := addr.VPN(rng.Uint64() & 0x3FFFFF)
		if rng.Intn(5) == 0 {
			if _, ok := p.Unmap(vpn, addr.Page4K); ok {
				// Conservative CWTs only clear on last-drop; a precise drop
				// per page would need cluster refcounts. Record it.
				delete(live, vpn)
			}
			continue
		}
		if _, err := p.Map(vpn, addr.Page4K, addr.PPN(i)); err != nil {
			t.Fatal(err)
		}
		live[vpn] = true
	}
	checked := 0
	for vpn := range live {
		va := vpn.Addr(addr.Page4K)
		way, ok := p.WayOf(va, addr.Page4K)
		if !ok {
			continue
		}
		cands := tables.Candidates(va)
		if !cands[addr.Page4K].Has(way) {
			t.Fatalf("CWT misses way %d for vpn %#x (candidates %b)",
				way, uint64(vpn), cands[addr.Page4K])
		}
		checked++
		if checked > 5000 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

// TestGraphKernelOnAllOrgs: a real BFS produces identical checksums and
// access counts under every page-table organization (translation is
// transparent to the program).
func TestGraphKernelOnAllOrgs(t *testing.T) {
	g := graph.GenerateUniform(20000, 8, 4, workload.BaseVA)
	var counts [3]uint64
	var sums [3]float64
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		m, err := sim.NewMachine(sim.Config{
			Org: org, Workload: workload.Spec{Name: "g"},
			Seed: 1, MemBytes: 4 * addr.GB,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		res := m.RunAddresses(func(emit func(addr.VirtAddr)) {
			sum, _ = g.Run("BFS", emit)
		})
		if res.Failed {
			t.Fatalf("%v failed: %s", org, res.FailReason)
		}
		counts[org] = res.Accesses
		sums[org] = sum
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("access counts diverge: %v", counts)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("kernel results diverge: %v", sums)
	}
}

// TestFragmentationEndToEnd reproduces the paper's failure narrative on a
// genuinely shredded machine: ECPT cannot finish the GUPS-like growth while
// ME-HPT completes, and the radix tree (4KB-only allocations) also survives.
func TestFragmentationEndToEnd(t *testing.T) {
	spec, err := workload.ByName("GUPS", 32) // 2MB ECPT ways at this scale
	if err != nil {
		t.Fatal(err)
	}
	results := map[sim.Org]sim.Result{}
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		mem := phys.NewMemory(4 * addr.GB)
		fr := phys.NewFragmenter(mem)
		// Nothing above 1MB coalesces.
		if err := fr.Fragment(0.95, 0.5, phys.OrderFor(1*addr.MB), rand.New(rand.NewSource(6))); err != nil {
			t.Fatal(err)
		}
		mem.ResetStats()
		// Drive the page tables directly (data frames aren't the point).
		pt, err := buildPT(org, mem)
		if err != nil {
			results[org] = sim.Result{Failed: true, FailReason: err.Error()}
			continue
		}
		var failure error
		i := 0
		spec.TouchedPageVAs(func(va addr.VirtAddr) bool {
			_, failure = pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, addr.PPN(i))
			i++
			return failure == nil
		})
		r := sim.Result{}
		if failure != nil {
			r.Failed = true
			r.FailReason = failure.Error()
		}
		results[org] = r
	}
	if results[sim.Radix].Failed {
		t.Errorf("radix failed under fragmentation: %s", results[sim.Radix].FailReason)
	}
	if results[sim.MEHPT].Failed {
		t.Errorf("ME-HPT failed under fragmentation: %s", results[sim.MEHPT].FailReason)
	}
	if !results[sim.ECPT].Failed {
		t.Error("ECPT finished despite needing multi-MB contiguous ways")
	}
}

type mapper interface {
	Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error)
}

func buildPT(org sim.Org, mem *phys.Memory) (mapper, error) {
	alloc := phys.NewAllocator(mem, 0.9)
	switch org {
	case sim.Radix:
		return radix.NewPageTable(alloc)
	case sim.ECPT:
		cfg := ecpt.DefaultConfig(7)
		cfg.Rand = rand.New(rand.NewSource(3))
		return ecpt.NewPageTable(alloc, cfg)
	default:
		cfg := mehpt.DefaultConfig(7)
		cfg.Rand = rand.New(rand.NewSource(3))
		return mehpt.NewPageTable(alloc, cfg)
	}
}
