package pt

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestClusterKeySubIndex(t *testing.T) {
	f := func(v uint32) bool {
		vpn := addr.VPN(v)
		key := ClusterKey(vpn)
		sub := SubIndex(vpn)
		if sub >= ClusterSpan {
			return false
		}
		return uint64(BaseVPN(key))+uint64(sub) == uint64(vpn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterSetGetClear(t *testing.T) {
	var c Cluster
	if !c.Empty() {
		t.Fatal("zero cluster not empty")
	}
	c.Set(3, 1000)
	c.Set(7, 2000)
	if c.Count() != 2 {
		t.Errorf("Count = %d, want 2", c.Count())
	}
	if p, ok := c.Get(3); !ok || p != 1000 {
		t.Errorf("Get(3) = %d,%v", p, ok)
	}
	if _, ok := c.Get(0); ok {
		t.Error("Get(0) valid on unset slot")
	}
	if c.Clear(3) {
		t.Error("Clear(3) reported empty with slot 7 still valid")
	}
	if !c.Clear(7) {
		t.Error("Clear(7) did not report empty")
	}
	if !c.Empty() || c.Count() != 0 {
		t.Error("cluster not empty after clearing all")
	}
}

func TestSlabReuse(t *testing.T) {
	var s Slab
	a := s.Alloc()
	b := s.Alloc()
	if a == b {
		t.Fatal("Alloc returned duplicate ids")
	}
	s.At(a).Set(0, 42)
	s.Free(a)
	if s.Live() != 1 {
		t.Errorf("Live = %d, want 1", s.Live())
	}
	c := s.Alloc() // must recycle a, zeroed
	if c != a {
		t.Errorf("expected recycled id %d, got %d", a, c)
	}
	if !s.At(c).Empty() {
		t.Error("recycled cluster not zeroed")
	}
	if s.At(b) == nil {
		t.Error("unrelated cluster lost")
	}
}

func TestSlabPanicsOnBadID(t *testing.T) {
	var s Slab
	defer func() {
		if recover() == nil {
			t.Error("At on bad id did not panic")
		}
	}()
	s.At(5)
}

func TestEntryGeometry(t *testing.T) {
	// One clustered entry is a cache line covering 8 base pages = 32KB of
	// virtual address space.
	if EntryBytes != 64 || ClusterSpan != 8 {
		t.Fatalf("entry geometry changed: %d bytes, span %d", EntryBytes, ClusterSpan)
	}
}
