// Package pt holds the types shared by all three page-table organizations
// (radix, ECPT, ME-HPT): clustered page-table entries, the slab that backs
// them, and the walk-accounting structures the MMU turns into cycles.
//
// Hashed page tables in this repository use *page-table entry clustering*
// (Yaniv & Tsafrir, adopted by ECPT): one table slot is a 64-byte cache line
// holding the translations of 8 contiguous virtual pages, with the hash tag
// compacted into unused PTE bits. Clustering restores spatial locality and
// makes the tag memory-free, which is what makes HPTs competitive.
package pt

import (
	"fmt"

	"repro/internal/addr"
)

// EntryBytes is the size of one clustered HPT slot: a 64-byte cache line.
const EntryBytes = 64

// ClusterSpan is the number of contiguous virtual pages covered by one
// clustered entry.
const ClusterSpan = 8

// ClusterKey returns the hash key of the cluster containing vpn: the VPN
// with the intra-cluster bits stripped.
func ClusterKey(vpn addr.VPN) uint64 { return uint64(vpn) / ClusterSpan }

// SubIndex returns vpn's slot within its cluster.
func SubIndex(vpn addr.VPN) uint { return uint(uint64(vpn) % ClusterSpan) }

// BaseVPN returns the first VPN covered by the cluster with the given key.
func BaseVPN(key uint64) addr.VPN { return addr.VPN(key * ClusterSpan) }

// Cluster is the payload of one clustered entry: up to 8 translations.
type Cluster struct {
	ValidMask uint8
	PPNs      [ClusterSpan]addr.PPN
}

// Set stores a translation in slot sub.
func (c *Cluster) Set(sub uint, ppn addr.PPN) {
	c.PPNs[sub] = ppn
	c.ValidMask |= 1 << sub
}

// Get returns the translation in slot sub, if valid.
func (c *Cluster) Get(sub uint) (addr.PPN, bool) {
	if c.ValidMask&(1<<sub) == 0 {
		return 0, false
	}
	return c.PPNs[sub], true
}

// Clear invalidates slot sub and reports whether the cluster became empty.
func (c *Cluster) Clear(sub uint) bool {
	c.ValidMask &^= 1 << sub
	c.PPNs[sub] = 0
	return c.ValidMask == 0
}

// Empty reports whether no slot is valid.
func (c *Cluster) Empty() bool { return c.ValidMask == 0 }

// Count returns the number of valid translations.
func (c *Cluster) Count() int {
	n := 0
	for m := c.ValidMask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Slab stores cluster payloads and hands out stable 64-bit ids that fit in a
// cuckoo table's value word. The zero value is ready to use.
type Slab struct {
	clusters []Cluster
	free     []uint64
}

// Alloc returns the id of a zeroed cluster.
func (s *Slab) Alloc() uint64 {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		s.clusters[id] = Cluster{}
		return id
	}
	s.clusters = append(s.clusters, Cluster{})
	return uint64(len(s.clusters) - 1)
}

// At returns the cluster with the given id. The pointer is invalidated by
// the next Alloc.
func (s *Slab) At(id uint64) *Cluster {
	if id >= uint64(len(s.clusters)) {
		panic(fmt.Sprintf("pt: slab id %d out of range", id))
	}
	return &s.clusters[id]
}

// Free recycles id.
func (s *Slab) Free(id uint64) { s.free = append(s.free, id) }

// Live returns the number of clusters currently allocated.
func (s *Slab) Live() int { return len(s.clusters) - len(s.free) }

// Step is one sequential stage of a page walk. Accesses within a step are
// issued in parallel (e.g. probing all HPT ways at once); the walk latency
// of a step is the maximum of its access latencies.
type Step struct {
	// Parallel lists the physical addresses of memory accesses issued
	// concurrently in this step. An empty step models a fixed-latency
	// hardware stage and contributes only ExtraCycles.
	Parallel []addr.PhysAddr
	// ExtraCycles is fixed latency added to this step (hash units,
	// indirection tables, cache-structure round trips).
	ExtraCycles uint64
}

// Walk describes the memory behaviour of one page-table walk so the MMU can
// price it against the cache hierarchy.
type Walk struct {
	Steps []Step
	PPN   addr.PPN
	Size  addr.PageSize
	Found bool
}

// Translation is a completed address translation.
type Translation struct {
	PPN  addr.PPN
	Size addr.PageSize
}
