package pt

// SlabState is the serializable form of a Slab. The free list is preserved
// verbatim — its stack order determines which ids future Allocs hand out,
// so bit-identical resumption requires the exact list, not just its
// membership.
type SlabState struct {
	Clusters []Cluster
	Free     []uint64
}

// State returns a deep copy of the slab's contents.
func (s *Slab) State() SlabState {
	st := SlabState{
		Clusters: make([]Cluster, len(s.clusters)),
		Free:     make([]uint64, len(s.free)),
	}
	copy(st.Clusters, s.clusters)
	copy(st.Free, s.free)
	return st
}

// Restore replaces the slab's contents with the recorded state.
func (s *Slab) Restore(st SlabState) {
	s.clusters = make([]Cluster, len(st.Clusters))
	copy(s.clusters, st.Clusters)
	s.free = make([]uint64, len(st.Free))
	copy(s.free, st.Free)
}
