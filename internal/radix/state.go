package radix

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/phys"
)

// EntryState is one present radix entry. Child is an index into
// State.Nodes (-1 for leaves); absent entries are not recorded.
type EntryState struct {
	Idx   uint16
	Huge  bool
	Child int32
	PPN   addr.PPN
}

// NodeState is one tree node: its backing frame and its present entries.
type NodeState struct {
	Frame   addr.PPN
	Entries []EntryState
}

// State is the serializable form of a PageTable: the tree flattened
// pre-order into an indexed node list (node 0 is the root).
type State struct {
	Levels int
	Nodes  []NodeState
	Stats  Stats
}

// State returns a deep copy of the tree.
func (p *PageTable) State() State {
	st := State{Levels: p.levels, Stats: p.stats}
	var flatten func(n *node) int32
	flatten = func(n *node) int32 {
		id := int32(len(st.Nodes))
		st.Nodes = append(st.Nodes, NodeState{Frame: n.frame})
		for i := range n.entries {
			e := &n.entries[i]
			if !e.present {
				continue
			}
			es := EntryState{Idx: uint16(i), Huge: e.huge, Child: -1, PPN: e.ppn}
			if e.child != nil {
				es.Child = flatten(e.child)
			}
			st.Nodes[id].Entries = append(st.Nodes[id].Entries, es)
		}
		return id
	}
	if p.root != nil {
		flatten(p.root)
	}
	return st
}

// Restore rebuilds a tree from recorded state without allocating: the node
// frames in st are already owned in the restored allocator state.
func Restore(st State, alloc phys.Source) (*PageTable, error) {
	if st.Levels < Levels || st.Levels > MaxLevels {
		return nil, fmt.Errorf("radix: unsupported depth %d", st.Levels)
	}
	p := &PageTable{levels: st.Levels, alloc: alloc, stats: st.Stats}
	nodes := make([]*node, len(st.Nodes))
	for i, ns := range st.Nodes {
		nodes[i] = &node{frame: ns.Frame}
	}
	for i, ns := range st.Nodes {
		n := nodes[i]
		for _, es := range ns.Entries {
			if int(es.Idx) >= EntriesPerNode {
				return nil, fmt.Errorf("radix: entry index %d out of range", es.Idx)
			}
			e := &n.entries[es.Idx]
			e.present = true
			e.huge = es.Huge
			e.ppn = es.PPN
			if es.Child >= 0 {
				if int(es.Child) >= len(nodes) {
					return nil, fmt.Errorf("radix: child index %d out of range", es.Child)
				}
				e.child = nodes[es.Child]
			}
			n.used++
		}
	}
	if len(nodes) > 0 {
		p.root = nodes[0]
	}
	return p, nil
}

// VisitOwnedFrames reports every physical frame the tree owns — one 4KB
// node frame per tree node. The scrubber uses it to prove frame-ownership
// disjointness across tenants.
func (p *PageTable) VisitOwnedFrames(f func(base addr.PPN, bytes uint64)) {
	var walk func(n *node, lvl int)
	walk = func(n *node, lvl int) {
		f(n.frame, 4*addr.KB)
		if lvl == 0 {
			return
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.present && !e.huge && e.child != nil {
				walk(e.child, lvl-1)
			}
		}
	}
	if p.root != nil {
		walk(p.root, p.levels-1)
	}
}

// VisitMappings calls f for every live translation (vpn, size, ppn).
func (p *PageTable) VisitMappings(f func(vpn addr.VPN, s addr.PageSize, ppn addr.PPN)) {
	var walk func(n *node, lvl int, va uint64)
	walk = func(n *node, lvl int, va uint64) {
		for i := range n.entries {
			e := &n.entries[i]
			if !e.present {
				continue
			}
			sub := va | uint64(i)<<(12+9*uint(lvl))
			if lvl == 0 || e.huge {
				f(addr.VPN(sub>>(12+9*uint(lvl))), sizeAtLevel(lvl), e.ppn)
				continue
			}
			if e.child != nil {
				walk(e.child, lvl-1, sub)
			}
		}
	}
	if p.root != nil {
		walk(p.root, p.levels-1, 0)
	}
}

// CheckTree runs the structural consistency checks the scrubber reports:
// per-node used counters must match the present entries, huge leaves may
// only appear at PMD/PUD levels, and the stats node count must equal the
// reachable tree. It returns one message per violation.
func (p *PageTable) CheckTree() []string {
	var bad []string
	reachable := 0
	var walk func(n *node, lvl int)
	walk = func(n *node, lvl int) {
		reachable++
		present := 0
		for i := range n.entries {
			e := &n.entries[i]
			if !e.present {
				continue
			}
			present++
			if e.huge && (lvl == 0 || lvl > 2) {
				bad = append(bad, fmt.Sprintf("huge leaf at level %d entry %d", lvl, i))
			}
			if !e.huge && lvl > 0 && e.child == nil {
				bad = append(bad, fmt.Sprintf("present non-leaf entry without child at level %d entry %d", lvl, i))
			}
			if e.child != nil && lvl > 0 && !e.huge {
				walk(e.child, lvl-1)
			}
		}
		if present != n.used {
			bad = append(bad, fmt.Sprintf("node frame %d at level %d: used %d but %d present entries", n.frame, lvl, n.used, present))
		}
	}
	if p.root != nil {
		walk(p.root, p.levels-1)
	}
	if reachable != p.stats.Nodes {
		bad = append(bad, fmt.Sprintf("stats record %d nodes, tree reaches %d", p.stats.Nodes, reachable))
	}
	return bad
}
