package radix

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/phys"
)

func newPT(t *testing.T) (*PageTable, *phys.Memory) {
	t.Helper()
	mem := phys.NewMemory(1 * addr.GB)
	p, err := NewPageTable(phys.NewAllocator(mem, 0))
	if err != nil {
		t.Fatal(err)
	}
	return p, mem
}

func TestMapTranslateUnmap(t *testing.T) {
	p, _ := newPT(t)
	vpn := addr.VPN(0x7f123)
	if _, err := p.Map(vpn, addr.Page4K, 42); err != nil {
		t.Fatal(err)
	}
	tr, ok := p.Translate(vpn.Addr(addr.Page4K) + 0xFF)
	if !ok || tr.PPN != 42 || tr.Size != addr.Page4K {
		t.Fatalf("Translate = %+v,%v", tr, ok)
	}
	if _, ok := p.Unmap(vpn, addr.Page4K); !ok {
		t.Fatal("Unmap failed")
	}
	if _, ok := p.Translate(vpn.Addr(addr.Page4K)); ok {
		t.Fatal("translation survived unmap")
	}
}

func TestFourKBMappingUsesFourNodes(t *testing.T) {
	p, _ := newPT(t)
	before := p.Stats().Nodes
	if before != 1 {
		t.Fatalf("fresh tree has %d nodes, want 1 (root)", before)
	}
	p.Map(addr.VPN(0x11111), addr.Page4K, 1)
	// One PUD + one PMD + one PTE node beyond the root.
	if got := p.Stats().Nodes; got != 4 {
		t.Errorf("nodes after first 4KB map = %d, want 4", got)
	}
	// A second mapping in the same 2MB region adds nothing.
	p.Map(addr.VPN(0x11112), addr.Page4K, 2)
	if got := p.Stats().Nodes; got != 4 {
		t.Errorf("nodes after neighbour map = %d, want 4", got)
	}
}

func TestHugePages(t *testing.T) {
	p, _ := newPT(t)
	if _, err := p.Map(addr.VPN(5), addr.Page2M, 77); err != nil {
		t.Fatal(err)
	}
	// A 2MB leaf sits at the PMD: root + PUD + PMD = 3 nodes.
	if got := p.Stats().Nodes; got != 3 {
		t.Errorf("nodes for 2MB map = %d, want 3", got)
	}
	va := addr.VPN(5).Addr(addr.Page2M) + 0x12345
	tr, ok := p.Translate(va)
	if !ok || tr.Size != addr.Page2M || tr.PPN != 77 {
		t.Fatalf("Translate = %+v,%v", tr, ok)
	}
	if _, err := p.Map(addr.VPN(7), addr.Page1G, 88); err != nil {
		t.Fatal(err)
	}
	tr, ok = p.Translate(addr.VPN(7).Addr(addr.Page1G) + 999)
	if !ok || tr.Size != addr.Page1G || tr.PPN != 88 {
		t.Fatalf("1GB Translate = %+v,%v", tr, ok)
	}
	// Mapping a 4KB page under an existing huge page must fail loudly.
	sub := addr.VirtAddr(addr.VPN(5).Addr(addr.Page2M)).PageNumber(addr.Page4K)
	if _, err := p.Map(sub, addr.Page4K, 1); err == nil {
		t.Error("4KB map under a 2MB leaf succeeded")
	}
}

func TestWalkAddrs(t *testing.T) {
	p, _ := newPT(t)
	vpn := addr.VPN(0x33333)
	p.Map(vpn, addr.Page4K, 9)
	va := vpn.Addr(addr.Page4K)
	pas, tr, ok := p.WalkAddrs(va)
	if !ok || tr.PPN != 9 {
		t.Fatalf("walk failed: %+v,%v", tr, ok)
	}
	if len(pas) != 4 {
		t.Fatalf("walk touched %d entries, want 4", len(pas))
	}
	seen := map[addr.PhysAddr]bool{}
	for _, pa := range pas {
		if seen[pa] {
			t.Error("duplicate walk address")
		}
		seen[pa] = true
	}
	// Huge-page walk stops at the PMD (3 accesses).
	p.Map(addr.VPN(9), addr.Page2M, 10)
	pas, _, ok = p.WalkAddrs(addr.VPN(9).Addr(addr.Page2M))
	if !ok || len(pas) != 3 {
		t.Fatalf("2MB walk = %d accesses,%v; want 3,true", len(pas), ok)
	}
	// Unmapped address: the walk aborts early.
	pas, _, ok = p.WalkAddrs(0xDEAD_BEEF_000)
	if ok {
		t.Error("walk of unmapped address succeeded")
	}
	if len(pas) == 0 {
		t.Error("aborted walk should still touch at least the root entry")
	}
}

func TestNodeFrameAt(t *testing.T) {
	p, _ := newPT(t)
	vpn := addr.VPN(0x44444)
	p.Map(vpn, addr.Page4K, 3)
	va := vpn.Addr(addr.Page4K)
	frames := map[addr.PPN]bool{}
	for lvl := Levels - 1; lvl >= 0; lvl-- {
		f, ok := p.NodeFrameAt(va, lvl)
		if !ok {
			t.Fatalf("NodeFrameAt(level %d) missed", lvl)
		}
		if frames[f] {
			t.Errorf("level %d reuses a node frame", lvl)
		}
		frames[f] = true
	}
	if _, ok := p.NodeFrameAt(0xBAD_000_000, 0); ok {
		t.Error("NodeFrameAt found a node for unmapped address")
	}
}

func TestModelEquivalence(t *testing.T) {
	p, _ := newPT(t)
	model := make(map[addr.VPN]addr.PPN)
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 20000; step++ {
		vpn := addr.VPN(rng.Uint64() & 0xFFFFF)
		switch rng.Intn(3) {
		case 0, 1:
			ppn := addr.PPN(rng.Uint64() & 0xFFFFF)
			if _, err := p.Map(vpn, addr.Page4K, ppn); err != nil {
				t.Fatal(err)
			}
			model[vpn] = ppn
		case 2:
			_, gotOK := p.Unmap(vpn, addr.Page4K)
			if _, wantOK := model[vpn]; gotOK != wantOK {
				t.Fatalf("Unmap(%d) = %v want %v", vpn, gotOK, wantOK)
			}
			delete(model, vpn)
		}
	}
	for vpn, want := range model {
		got, ok := p.TranslateSize(vpn, addr.Page4K)
		if !ok || got != want {
			t.Fatalf("TranslateSize(%d) = %d,%v want %d", vpn, got, ok, want)
		}
	}
}

func TestContiguityIsAlwaysOnePage(t *testing.T) {
	p, _ := newPT(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		p.Map(addr.VPN(rng.Uint64()&0xFFFFFF), addr.Page4K, addr.PPN(i))
	}
	if got := p.MaxContiguousAlloc(); got != 4*addr.KB {
		t.Errorf("MaxContiguousAlloc = %d, want 4KB", got)
	}
	if p.FootprintBytes() == 0 {
		t.Error("footprint should be nonzero")
	}
}

func TestFreeReturnsMemory(t *testing.T) {
	mem := phys.NewMemory(1 * addr.GB)
	p, err := NewPageTable(phys.NewAllocator(mem, 0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		p.Map(addr.VPN(rng.Uint64()&0xFFFFF), addr.Page4K, addr.PPN(i))
	}
	p.Map(addr.VPN(100), addr.Page2M, 5)
	p.Map(addr.VPN(3), addr.Page1G, 6)
	p.Free()
	if mem.FreeBytes() != mem.TotalBytes() {
		t.Errorf("leak: %d of %d free", mem.FreeBytes(), mem.TotalBytes())
	}
}

func TestFiveLevelTree(t *testing.T) {
	mem := phys.NewMemory(1 * addr.GB)
	p, err := NewPageTableLevels(phys.NewAllocator(mem, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 5 {
		t.Fatalf("Depth = %d", p.Depth())
	}
	vpn := addr.VPN(0x54321)
	if _, err := p.Map(vpn, addr.Page4K, 11); err != nil {
		t.Fatal(err)
	}
	// The first 4KB mapping needs root + 4 intermediate/leaf nodes.
	if got := p.Stats().Nodes; got != 5 {
		t.Errorf("nodes = %d, want 5", got)
	}
	tr, ok := p.Translate(vpn.Addr(addr.Page4K))
	if !ok || tr.PPN != 11 {
		t.Fatalf("Translate = %+v,%v", tr, ok)
	}
	// A walk touches 5 entries.
	pas, _, ok := p.WalkAddrs(vpn.Addr(addr.Page4K))
	if !ok || len(pas) != 5 {
		t.Fatalf("walk = %d accesses,%v; want 5,true", len(pas), ok)
	}
	p.Free()
	if mem.FreeBytes() != mem.TotalBytes() {
		t.Error("5-level Free leaked")
	}
}

func TestInvalidDepthRejected(t *testing.T) {
	mem := phys.NewMemory(16 * addr.MB)
	if _, err := NewPageTableLevels(phys.NewAllocator(mem, 0), 3); err == nil {
		t.Error("3-level tree accepted")
	}
	if _, err := NewPageTableLevels(phys.NewAllocator(mem, 0), 6); err == nil {
		t.Error("6-level tree accepted")
	}
}
