// Package radix implements the x86-64 radix-tree page table the paper uses
// as its conventional baseline: a four-level tree (PGD → PUD → PMD → PTE)
// walked sequentially, with 2MB and 1GB leaves for huge pages (Figure 1).
//
// Each tree node occupies one 4KB physical frame, so the radix organization
// never needs more than page-sized contiguous allocations — the property
// Table I's column 3 highlights.
package radix

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/phys"
	"repro/internal/pt"
)

// Levels is the default depth of the tree: PGD(3), PUD(2), PMD(1), PTE(0).
// Five-level paging (Intel's LA57, the paper's Section I scalability
// concern) adds a P4D root above the PGD.
const Levels = 4

// MaxLevels is the deepest supported tree (5-level paging).
const MaxLevels = 5

// EntriesPerNode is the fan-out of each level: 512 8-byte entries per 4KB
// node.
const EntriesPerNode = 512

// entryBytes is the size of one radix PTE in memory.
const entryBytes = 8

// leafLevel returns the tree level at which a page of size s terminates:
// PTE for 4KB, PMD for 2MB, PUD for 1GB.
func leafLevel(s addr.PageSize) int {
	switch s {
	case addr.Page4K:
		return 0
	case addr.Page2M:
		return 1
	case addr.Page1G:
		return 2
	}
	panic(fmt.Sprintf("radix: invalid page size %v", s))
}

type entry struct {
	present bool
	huge    bool // leaf at a non-PTE level
	child   *node
	ppn     addr.PPN
}

type node struct {
	frame   addr.PPN // physical frame backing this node
	entries [EntriesPerNode]entry
	used    int // number of present entries, for teardown accounting
}

// Stats aggregates the allocation behaviour of the tree.
type Stats struct {
	Nodes              int // tree nodes (4KB frames) currently allocated
	PeakNodes          int
	AllocCycles        uint64
	MaxContiguousAlloc uint64 // always 4KB by construction
}

// PageTable is one process's radix-tree page table.
type PageTable struct {
	root   *node
	levels int
	//mehpt:transient -- Restore reattaches the separately restored physical allocator
	alloc phys.Source
	stats Stats
}

// NewPageTable creates an empty four-level tree with just the root node.
func NewPageTable(alloc phys.Source) (*PageTable, error) {
	return NewPageTableLevels(alloc, Levels)
}

// NewPageTableLevels creates a tree of the given depth (4 = x86-64, 5 =
// LA57). A deeper tree covers more virtual address space at the cost of
// one more dependent memory access per uncached walk — the scalability
// trend the paper argues against.
func NewPageTableLevels(alloc phys.Source, levels int) (*PageTable, error) {
	if levels < Levels || levels > MaxLevels {
		return nil, fmt.Errorf("radix: unsupported depth %d", levels)
	}
	p := &PageTable{alloc: alloc, levels: levels}
	root, err := p.newNode()
	if err != nil {
		return nil, err
	}
	p.root = root
	return p, nil
}

// Depth returns the tree depth (4 or 5).
func (p *PageTable) Depth() int { return p.levels }

func (p *PageTable) newNode() (*node, error) {
	ppn, cycles, err := p.alloc.Alloc(4 * addr.KB)
	p.stats.AllocCycles += cycles
	if err != nil {
		return nil, err
	}
	p.stats.Nodes++
	if p.stats.Nodes > p.stats.PeakNodes {
		p.stats.PeakNodes = p.stats.Nodes
	}
	p.stats.MaxContiguousAlloc = 4 * addr.KB
	return &node{frame: ppn}, nil
}

// Stats returns the accumulated statistics.
func (p *PageTable) Stats() Stats { return p.stats }

// FootprintBytes returns the page-table memory held: one 4KB frame per node.
func (p *PageTable) FootprintBytes() uint64 {
	return uint64(p.stats.Nodes) * 4 * addr.KB
}

// PeakFootprintBytes returns the high-water mark of FootprintBytes.
func (p *PageTable) PeakFootprintBytes() uint64 {
	return uint64(p.stats.PeakNodes) * 4 * addr.KB
}

// MaxContiguousAlloc returns 4KB: the radix tree's whole appeal.
func (p *PageTable) MaxContiguousAlloc() uint64 { return p.stats.MaxContiguousAlloc }

// AllocCycles returns the cycles spent allocating tree nodes.
func (p *PageTable) AllocCycles() uint64 { return p.stats.AllocCycles }

// Moves returns the number of page-table entries relocated by the
// organization — always 0 for radix, by construction: a PTE's slot is fixed
// by its virtual address (the radix indices), the tree grows by allocating
// fresh nodes without touching existing entries, and there is no rehashing.
// Hashed organizations report nonzero counts here because elastic resizing
// migrates entries between tables (sim.Result.PTMoves, Figure 13).
func (p *PageTable) Moves() uint64 { return 0 }

// Map installs vpn→ppn at the given page size, allocating intermediate
// nodes as needed. It returns the allocation cycle cost.
func (p *PageTable) Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error) {
	va := vpn.Addr(s)
	leaf := leafLevel(s)
	before := p.stats.AllocCycles
	n := p.root
	for lvl := p.levels - 1; lvl > leaf; lvl-- {
		idx := addr.RadixIndex(va, lvl)
		e := &n.entries[idx]
		if !e.present {
			child, err := p.newNode()
			if err != nil {
				return p.stats.AllocCycles - before, err
			}
			e.present = true
			e.child = child
			n.used++
		} else if e.huge {
			return 0, fmt.Errorf("radix: %v mapping overlaps huge page at level %d", s, lvl)
		}
		n = e.child
	}
	idx := addr.RadixIndex(va, leaf)
	e := &n.entries[idx]
	if !e.present {
		n.used++
	} else if e.child != nil {
		// Huge-page promotion over an existing lower-level table (THP
		// collapse): release the subtree it replaces.
		p.freeSubtree(e.child, leaf-1)
	}
	e.present = true
	e.huge = leaf > 0
	e.child = nil
	e.ppn = ppn
	return p.stats.AllocCycles - before, nil
}

// freeSubtree releases n and all tree nodes below it.
func (p *PageTable) freeSubtree(n *node, lvl int) {
	if lvl > 0 {
		for i := range n.entries {
			e := &n.entries[i]
			if e.present && !e.huge && e.child != nil {
				p.freeSubtree(e.child, lvl-1)
			}
		}
	}
	p.alloc.Free(n.frame, 0)
	p.stats.Nodes--
}

// Unmap removes the translation for vpn at the given page size. Like Linux,
// intermediate nodes are not eagerly freed.
func (p *PageTable) Unmap(vpn addr.VPN, s addr.PageSize) (uint64, bool) {
	va := vpn.Addr(s)
	leaf := leafLevel(s)
	n := p.root
	for lvl := p.levels - 1; lvl > leaf; lvl-- {
		e := &n.entries[addr.RadixIndex(va, lvl)]
		if !e.present || e.child == nil {
			return 0, false
		}
		n = e.child
	}
	e := &n.entries[addr.RadixIndex(va, leaf)]
	if !e.present || (leaf > 0) != e.huge {
		return 0, false
	}
	e.present = false
	e.ppn = 0
	n.used--
	return 0, true
}

// Translate resolves va by walking the tree.
//mehpt:hotpath
func (p *PageTable) Translate(va addr.VirtAddr) (pt.Translation, bool) {
	n := p.root
	for lvl := p.levels - 1; lvl >= 0; lvl-- {
		e := &n.entries[addr.RadixIndex(va, lvl)]
		if !e.present {
			return pt.Translation{}, false
		}
		if lvl == 0 || e.huge {
			return pt.Translation{PPN: e.ppn, Size: sizeAtLevel(lvl)}, true
		}
		n = e.child
	}
	return pt.Translation{}, false
}

func sizeAtLevel(lvl int) addr.PageSize {
	switch lvl {
	case 0:
		return addr.Page4K
	case 1:
		return addr.Page2M
	case 2:
		return addr.Page1G
	}
	panic("radix: no page size at PGD level")
}

// TranslateSize resolves vpn at exactly the given page size.
//mehpt:hotpath
func (p *PageTable) TranslateSize(vpn addr.VPN, s addr.PageSize) (addr.PPN, bool) {
	tr, ok := p.Translate(vpn.Addr(s))
	if !ok || tr.Size != s {
		return 0, false
	}
	return tr.PPN, true
}

// WalkAddrs returns the physical addresses of the page-table entries a
// hardware walker reads for va, root first. The walk stops early at a huge
// leaf or a non-present entry. The boolean reports whether a translation
// was found.
func (p *PageTable) WalkAddrs(va addr.VirtAddr) ([]addr.PhysAddr, pt.Translation, bool) {
	return p.AppendWalkAddrs(nil, va)
}

// AppendWalkAddrs is WalkAddrs appending to a caller-supplied buffer — a
// walk is at most MaxLevels accesses, so a caller that reuses a scratch
// buffer of that capacity walks without allocating. This matters: the walk
// ran once per TLB miss and was the simulator's largest allocation source.
//mehpt:hotpath
func (p *PageTable) AppendWalkAddrs(pas []addr.PhysAddr, va addr.VirtAddr) ([]addr.PhysAddr, pt.Translation, bool) {
	n := p.root
	for lvl := p.levels - 1; lvl >= 0; lvl-- {
		idx := addr.RadixIndex(va, lvl)
		pas = append(pas, n.frame.Addr(addr.Page4K)+addr.PhysAddr(uint64(idx)*entryBytes)) //mehpt:allow hotalloc -- appends into caller-owned scratch; steady state never grows it
		e := &n.entries[idx]
		if !e.present {
			return pas, pt.Translation{}, false
		}
		if lvl == 0 || e.huge {
			return pas, pt.Translation{PPN: e.ppn, Size: sizeAtLevel(lvl)}, true
		}
		n = e.child
	}
	return pas, pt.Translation{}, false
}

// NodeFrameAt returns the physical frame of the tree node traversed at the
// given level for va (Levels-1 = root), and whether the walk reaches it.
// The MMU's page-walk caches key on these frames.
func (p *PageTable) NodeFrameAt(va addr.VirtAddr, lvl int) (addr.PPN, bool) {
	n := p.root
	for l := p.levels - 1; l > lvl; l-- {
		e := &n.entries[addr.RadixIndex(va, l)]
		if !e.present || e.child == nil {
			return 0, false
		}
		n = e.child
	}
	return n.frame, true
}

// Free releases every tree node (process teardown).
func (p *PageTable) Free() {
	p.freeSubtree(p.root, p.levels-1)
	p.root = nil
}
