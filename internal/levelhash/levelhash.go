// Package levelhash implements Level Hashing (Zuo, Hua & Wu, OSDI'18) — the
// only other hashing scheme with a form of in-place resizing, which the
// paper compares against in Section IX. The comparison points the paper
// makes, and which this implementation lets us measure:
//
//   - Level hashing trades more memory accesses (up to 4 bucket probes per
//     lookup) for fewer entry moves during a resize (only the bottom
//     level's ~1/3 of entries move).
//   - ME-HPT's in-place resizing moves ~50% of entries but needs no extra
//     probes per lookup, and never de-allocates part of the old table.
//
// The structure: two levels of buckets, the top level twice the size of the
// bottom. Each key hashes to two candidate buckets per level (two hash
// functions). An upsize allocates a new top level with 2× the old top's
// buckets and rehashes only the old *bottom* level into it; the old top
// level becomes the new bottom level.
package levelhash

import (
	"errors"
	"fmt"

	"repro/internal/hashfn"
)

// SlotsPerBucket is the bucket associativity (the OSDI paper uses 4).
const SlotsPerBucket = 4

// EmptyKey marks an unoccupied slot.
const EmptyKey = ^uint64(0)

// ErrTableFull is returned when an insert cannot be placed even after
// resizing.
var ErrTableFull = errors.New("levelhash: table full")

type slot struct {
	key uint64
	val uint64
}

type bucket struct {
	slots [SlotsPerBucket]slot
}

func newBuckets(n uint64) []bucket {
	bs := make([]bucket, n)
	for i := range bs {
		for j := range bs[i].slots {
			bs[i].slots[j].key = EmptyKey
		}
	}
	return bs
}

// Stats counts the behaviour the Section IX comparison cares about.
type Stats struct {
	Inserts     uint64
	Lookups     uint64
	ProbeBucket uint64 // buckets examined by lookups
	Moves       uint64 // entries moved by resizes
	Resizes     uint64
}

// Table is a two-level level-hashing table. It is not safe for concurrent
// use.
type Table struct {
	fns   [2]hashfn.Func
	top   []bucket // 2N buckets
	bot   []bucket // N buckets
	count uint64
	stats Stats
	// MaxLoad is the load factor that triggers an upsize (the OSDI paper
	// resizes when an insert fails; we also resize proactively at 0.9).
	MaxLoad float64
}

// New creates a table whose bottom level has n buckets (n must be a power
// of two; the top level has 2n).
func New(n uint64, seed uint64) *Table {
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("levelhash: bottom bucket count %d must be a power of two", n))
	}
	fns := hashfn.Family(seed, 2)
	return &Table{
		fns:     [2]hashfn.Func{fns[0], fns[1]},
		top:     newBuckets(2 * n),
		bot:     newBuckets(n),
		MaxLoad: 0.9,
	}
}

// Len returns the number of elements stored.
func (t *Table) Len() uint64 { return t.count }

// Capacity returns the total slot count.
func (t *Table) Capacity() uint64 {
	return uint64(len(t.top)+len(t.bot)) * SlotsPerBucket
}

// Stats returns the operation counters.
func (t *Table) Stats() Stats { return t.stats }

// TopBuckets returns the size of the top level, for tests.
func (t *Table) TopBuckets() int { return len(t.top) }

// candidates returns the four candidate buckets of key: two per level.
func (t *Table) candidates(key uint64) [4]*bucket {
	return [4]*bucket{
		&t.top[t.fns[0].Index(key, uint64(len(t.top)))],
		&t.top[t.fns[1].Index(key, uint64(len(t.top)))],
		&t.bot[t.fns[0].Index(key, uint64(len(t.bot)))],
		&t.bot[t.fns[1].Index(key, uint64(len(t.bot)))],
	}
}

// Lookup returns the value stored for key. Up to four buckets are probed —
// the extra memory references the paper's Section IX contrasts with ME-HPT
// hashing's single probe per way.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	t.stats.Lookups++
	for _, b := range t.candidates(key) {
		t.stats.ProbeBucket++
		for i := range b.slots {
			if b.slots[i].key == key {
				return b.slots[i].val, true
			}
		}
	}
	return 0, false
}

// Insert stores key→val, resizing if the table is too full.
func (t *Table) Insert(key, val uint64) error {
	// Update in place if present.
	for _, b := range t.candidates(key) {
		for i := range b.slots {
			if b.slots[i].key == key {
				b.slots[i].val = val
				return nil
			}
		}
	}
	if float64(t.count+1) > t.MaxLoad*float64(t.Capacity()) {
		t.resize()
	}
	for attempt := 0; attempt < 3; attempt++ {
		if t.tryPlace(key, val) {
			t.count++
			t.stats.Inserts++
			return nil
		}
		t.resize()
	}
	return ErrTableFull
}

// tryPlace attempts insertion into the four candidate buckets, top level
// first (level hashing biases toward the top level so the bottom stays
// sparse for cheap resizes).
func (t *Table) tryPlace(key, val uint64) bool {
	for _, b := range t.candidates(key) {
		for i := range b.slots {
			if b.slots[i].key == EmptyKey {
				b.slots[i] = slot{key: key, val: val}
				return true
			}
		}
	}
	// One-step displacement: try to move an occupant of a top candidate to
	// its alternate top bucket (the OSDI paper's movement-based insertion).
	for ci := 0; ci < 2; ci++ {
		b := t.candidates(key)[ci]
		for i := range b.slots {
			occ := b.slots[i]
			alt := t.altTopBucket(occ.key, b)
			if alt == nil {
				continue
			}
			for j := range alt.slots {
				if alt.slots[j].key == EmptyKey {
					alt.slots[j] = occ
					b.slots[i] = slot{key: key, val: val}
					t.stats.Moves++
					return true
				}
			}
		}
	}
	return false
}

// altTopBucket returns key's other top-level candidate bucket, or nil if b
// is not one of them.
func (t *Table) altTopBucket(key uint64, b *bucket) *bucket {
	b0 := &t.top[t.fns[0].Index(key, uint64(len(t.top)))]
	b1 := &t.top[t.fns[1].Index(key, uint64(len(t.top)))]
	switch b {
	case b0:
		return b1
	case b1:
		return b0
	}
	return nil
}

// Delete removes key.
func (t *Table) Delete(key uint64) bool {
	for _, b := range t.candidates(key) {
		for i := range b.slots {
			if b.slots[i].key == key {
				b.slots[i].key = EmptyKey
				b.slots[i].val = 0
				t.count--
				return true
			}
		}
	}
	return false
}

// resize performs the level-hashing in-place expansion: a new top level of
// 4N buckets is allocated, the old *bottom* level (N buckets, ≈1/3 of the
// entries) is rehashed into it, the old top level becomes the new bottom,
// and the old bottom is de-allocated — the de-allocation the paper notes
// causes fragmentation, in contrast to ME-HPT's approach where the old
// table becomes part of the new one.
func (t *Table) resize() {
	t.stats.Resizes++
	oldBot := t.bot
	newTop := newBuckets(uint64(len(t.top)) * 2)
	t.bot = t.top
	t.top = newTop
	for bi := range oldBot {
		for si := range oldBot[bi].slots {
			s := oldBot[bi].slots[si]
			if s.key == EmptyKey {
				continue
			}
			t.stats.Moves++
			if !t.placeInTop(s.key, s.val) {
				// Extremely unlikely with 0.9 load; place via full insert
				// machinery (may displace within top).
				if !t.tryPlace(s.key, s.val) {
					panic("levelhash: resize overflow")
				}
			}
		}
	}
}

func (t *Table) placeInTop(key, val uint64) bool {
	for _, fn := range t.fns {
		b := &t.top[fn.Index(key, uint64(len(t.top)))]
		for i := range b.slots {
			if b.slots[i].key == EmptyKey {
				b.slots[i] = slot{key: key, val: val}
				return true
			}
		}
	}
	return false
}

// MoveFractionPerResize returns the average fraction of stored entries
// moved per resize — the paper's Section IX comparison point (level
// hashing: ~1/3; ME-HPT in-place: ~1/2 but with no extra lookup probes).
func (t *Table) MoveFractionPerResize() float64 {
	if t.stats.Resizes == 0 || t.count == 0 {
		return 0
	}
	return float64(t.stats.Moves) / float64(t.stats.Resizes) / float64(t.count)
}

// ProbesPerLookup returns the average buckets probed per lookup.
func (t *Table) ProbesPerLookup() float64 {
	if t.stats.Lookups == 0 {
		return 0
	}
	return float64(t.stats.ProbeBucket) / float64(t.stats.Lookups)
}
