package levelhash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookupDelete(t *testing.T) {
	tb := New(16, 1)
	for k := uint64(0); k < 100; k++ {
		if err := tb.Insert(k, k*3); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		v, ok := tb.Lookup(k)
		if !ok || v != k*3 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tb.Lookup(9999); ok {
		t.Error("phantom key")
	}
	if !tb.Delete(50) {
		t.Fatal("Delete(50) failed")
	}
	if _, ok := tb.Lookup(50); ok {
		t.Error("deleted key still present")
	}
	if tb.Len() != 99 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestUpsert(t *testing.T) {
	tb := New(16, 1)
	tb.Insert(7, 1)
	tb.Insert(7, 2)
	if v, _ := tb.Lookup(7); v != 2 {
		t.Errorf("upsert value = %d", v)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d after upsert", tb.Len())
	}
}

func TestGrowth(t *testing.T) {
	tb := New(16, 2)
	const n = 50000
	for k := uint64(0); k < n; k++ {
		if err := tb.Insert(k, k^0xBEEF); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tb.Lookup(k)
		if !ok || v != k^0xBEEF {
			t.Fatalf("Lookup(%d) after growth = %d,%v", k, v, ok)
		}
	}
	if tb.Stats().Resizes == 0 {
		t.Error("no resizes for 50k inserts into a 16-bucket table")
	}
}

// TestLevelStructure: the top level always has twice the bottom's buckets,
// and a resize doubles the top.
func TestLevelStructure(t *testing.T) {
	tb := New(16, 3)
	if len(tb.top) != 32 || len(tb.bot) != 16 {
		t.Fatalf("levels = %d/%d, want 32/16", len(tb.top), len(tb.bot))
	}
	before := tb.TopBuckets()
	tb.resize()
	if tb.TopBuckets() != 2*before {
		t.Errorf("top after resize = %d, want %d", tb.TopBuckets(), 2*before)
	}
	if len(tb.bot) != before {
		t.Errorf("old top did not become the new bottom")
	}
}

// TestSectionIXTradeoffs verifies the paper's comparison quantitatively:
// level hashing probes ~4 buckets per (missing) lookup where ME-HPT probes
// W=3 ways, and moves roughly the bottom level (~1/3 of entries) per
// resize, where ME-HPT in-place moves ~1/2.
func TestSectionIXTradeoffs(t *testing.T) {
	tb := New(64, 4)
	const n = 30000
	for k := uint64(0); k < n; k++ {
		tb.Insert(k, k)
	}
	// Missed lookups probe all four candidate buckets.
	tb2 := New(64, 4)
	for k := uint64(0); k < 100; k++ {
		tb2.Lookup(k + 1_000_000)
	}
	if p := tb2.ProbesPerLookup(); p != 4 {
		t.Errorf("probes per missing lookup = %.1f, want 4", p)
	}
	// Moves per resize ≈ the bottom level's share. Entries in the bottom
	// are roughly 1/3 (capacity ratio), so the per-resize move fraction
	// should be well under ME-HPT's 0.5 and near 1/3 of the *then-current*
	// population. We assert the loose paper-level property.
	st := tb.Stats()
	if st.Resizes == 0 {
		t.Fatal("no resizes happened")
	}
	movesPerResize := float64(st.Moves) / float64(st.Resizes)
	frac := movesPerResize / float64(n)
	if frac > 0.5 {
		t.Errorf("moves per resize = %.2f of final population; should be below 0.5", frac)
	}
}

func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(16, uint64(seed))
		model := map[uint64]uint64{}
		for step := 0; step < 3000; step++ {
			k := uint64(rng.Intn(800))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Uint64() >> 1
				if err := tb.Insert(k, v); err != nil {
					return false
				}
				model[k] = v
			case 2:
				_, want := model[k]
				if tb.Delete(k) != want {
					return false
				}
				delete(model, k)
			}
		}
		if tb.Len() != uint64(len(model)) {
			return false
		}
		for k, v := range model {
			got, ok := tb.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size accepted")
		}
	}()
	New(10, 1)
}

func BenchmarkInsert(b *testing.B) {
	tb := New(1024, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Insert(uint64(i), uint64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := New(1024, 7)
	for i := 0; i < 100000; i++ {
		tb.Insert(uint64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(uint64(i % 100000))
	}
}
