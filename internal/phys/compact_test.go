package phys

import (
	"testing"

	"repro/internal/addr"
)

// checkerboard allocates every other 8KB block so nothing above order 1 is
// free, registering the blockers as movable.
func checkerboard(t *testing.T, mem *Memory) *Movable {
	t.Helper()
	mv := NewMovable(nil)
	var blocks []addr.PPN
	for {
		p, err := mem.AllocOrder(1)
		if err != nil {
			break
		}
		blocks = append(blocks, p)
	}
	for i, p := range blocks {
		if i%2 == 0 {
			mem.Free(p, 1)
		} else {
			mv.Add(p, 1)
		}
	}
	return mv
}

func TestCompactCreatesLargeBlock(t *testing.T) {
	mem := NewMemory(16 * addr.MB)
	mv := checkerboard(t, mem)
	target := OrderFor(1 * addr.MB)
	if mem.CanAlloc(target) {
		t.Fatal("checkerboard already has a 1MB block")
	}
	cycles, ok := mem.Compact(mv, target)
	if !ok {
		t.Fatalf("compaction failed to produce a 1MB block (%d cycles spent)", cycles)
	}
	if cycles == 0 {
		t.Error("compaction reported zero cost despite migrations")
	}
	if _, err := mem.Alloc(1 * addr.MB); err != nil {
		t.Errorf("1MB allocation still fails after compaction: %v", err)
	}
}

func TestCompactNoopWhenTargetAvailable(t *testing.T) {
	mem := NewMemory(16 * addr.MB)
	mv := NewMovable(nil)
	cycles, ok := mem.Compact(mv, OrderFor(1*addr.MB))
	if !ok || cycles != 0 {
		t.Errorf("no-op compaction: ok=%v cycles=%d", ok, cycles)
	}
}

func TestCompactReportsFailureWithoutMovables(t *testing.T) {
	mem := NewMemory(8 * addr.MB)
	// Pin (non-movable) every other block: compaction has nothing to move.
	var blocks []addr.PPN
	for {
		p, err := mem.AllocOrder(1)
		if err != nil {
			break
		}
		blocks = append(blocks, p)
	}
	for i, p := range blocks {
		if i%2 == 0 {
			mem.Free(p, 1)
		}
	}
	mv := NewMovable(nil)
	_, ok := mem.Compact(mv, OrderFor(1*addr.MB))
	if ok {
		t.Error("compaction claimed success with only pinned memory")
	}
}

func TestCompactRelocateCallback(t *testing.T) {
	mem := NewMemory(8 * addr.MB)
	moves := map[addr.PPN]addr.PPN{}
	mv := NewMovable(func(old, new addr.PPN, order int) { moves[old] = new })
	// Recreate a small checkerboard with callback-carrying registry.
	var blocks []addr.PPN
	for {
		p, err := mem.AllocOrder(1)
		if err != nil {
			break
		}
		blocks = append(blocks, p)
	}
	for i, p := range blocks {
		if i%2 == 0 {
			mem.Free(p, 1)
		} else {
			mv.Add(p, 1)
		}
	}
	if _, ok := mem.Compact(mv, OrderFor(512*addr.KB)); !ok {
		t.Fatal("compaction failed")
	}
	if len(moves) == 0 {
		t.Fatal("no relocations reported")
	}
	for old, new := range moves {
		if new >= old {
			t.Errorf("block moved upward: %d -> %d", old, new)
		}
	}
	// Accounting must still balance.
	var live uint64
	live = uint64(mv.Len()) * 2 * 4096
	if mem.FreeBytes()+live != mem.TotalBytes() {
		t.Errorf("accounting broken after compaction: free %d + live %d != %d",
			mem.FreeBytes(), live, mem.TotalBytes())
	}
}
