package phys

// MemoryState is the serializable form of a buddy Memory. The free-list
// stacks are preserved verbatim — including stale entries left behind by
// coalescing — because stack order determines which block the next Alloc
// grants, and bit-identical resumption requires the exact future
// allocation sequence, not just equivalent free-space accounting.
type MemoryState struct {
	Frames    uint64
	MaxOrder  int
	HeadOrder []int8
	FreeList  [][]uint64
	FreeBlk   [MaxOrder + 1]uint64
	FreePages uint64
	Stats     Stats
}

// State returns a deep copy of the allocator's full state.
func (m *Memory) State() MemoryState {
	st := MemoryState{
		Frames:    m.frames,
		MaxOrder:  m.maxOrder,
		HeadOrder: make([]int8, len(m.headOrder)),
		FreeList:  make([][]uint64, len(m.freeList)),
		FreeBlk:   m.freeBlk,
		FreePages: m.freePages,
		Stats:     m.Stats(), // deep-copies AllocsBySize
	}
	copy(st.HeadOrder, m.headOrder)
	for o, list := range m.freeList {
		if len(list) > 0 {
			st.FreeList[o] = make([]uint64, len(list))
			copy(st.FreeList[o], list)
		}
	}
	return st
}

// RestoreMemory rebuilds an allocator from recorded state without touching
// the normal constructor path (which would seed fresh free lists).
func RestoreMemory(st MemoryState) *Memory {
	m := &Memory{
		frames:    st.Frames,
		maxOrder:  st.MaxOrder,
		headOrder: make([]int8, len(st.HeadOrder)),
		freeList:  make([][]uint64, len(st.FreeList)),
		freeBlk:   st.FreeBlk,
		freePages: st.FreePages,
	}
	copy(m.headOrder, st.HeadOrder)
	for o, list := range st.FreeList {
		if len(list) > 0 {
			m.freeList[o] = make([]uint64, len(list))
			copy(m.freeList[o], list)
		}
	}
	m.stats = st.Stats
	m.stats.AllocsBySize = make(map[uint64]uint64, len(st.Stats.AllocsBySize))
	for k, v := range st.Stats.AllocsBySize {
		m.stats.AllocsBySize[k] = v
	}
	return m
}

// StripedState is the serializable form of a Striped pool. The injection
// hook is not part of the state — the caller re-attaches its (separately
// serialized) policy after restore.
type StripedState struct {
	StripeFrames uint64
	AmbientFMFI  float64
	Seq          uint64
	Stripes      []MemoryState
}

// State captures the pool. Stripe locks are taken one at a time (the
// stripe lock class is one-at-a-time by design); Seq is read under the
// hook mutex it is guarded by.
func (s *Striped) State() StripedState {
	st := StripedState{
		StripeFrames: s.stripeFrames,
		AmbientFMFI:  s.AmbientFMFI,
		Stripes:      make([]MemoryState, len(s.stripes)),
	}
	for i, sp := range s.stripes {
		sp.mu.Lock()
		st.Stripes[i] = sp.mem.State() //mehpt:allow lockorder -- checkpoint capture copies one stripe under its lock; callers accept the pause
		sp.mu.Unlock()
	}
	s.hookMu.Lock()
	st.Seq = s.seq
	s.hookMu.Unlock()
	return st
}

// RestoreStriped rebuilds a pool from recorded state. The global free-byte
// counter is recomputed from the restored stripes; the injection hook
// starts detached.
func RestoreStriped(st StripedState) *Striped {
	s := &Striped{
		stripes:      make([]*stripe, len(st.Stripes)),
		stripeFrames: st.StripeFrames,
		model:        DefaultCostModel,
		AmbientFMFI:  st.AmbientFMFI,
	}
	var free uint64
	for i, ms := range st.Stripes {
		mem := RestoreMemory(ms)
		s.stripes[i] = &stripe{mem: mem}
		free += mem.FreeBytes()
	}
	s.free.Store(free)
	s.hookMu.Lock()
	s.seq = st.Seq
	s.hookMu.Unlock()
	return s
}

// InspectStripes calls f with each stripe's Memory in turn, under that
// stripe's lock. It is the scrubber's window into the pool: f must only
// read (the Memory accessors are read-only) and must not touch other
// stripes or the pool itself.
func (s *Striped) InspectStripes(f func(idx int, m *Memory)) {
	for i, sp := range s.stripes {
		sp.mu.Lock()
		f(i, sp.mem)
		sp.mu.Unlock()
	}
}

// StripeFrames returns the frame count of each stripe (global frame i
// lives in stripe i/StripeFrames).
func (s *Striped) StripeFrames() uint64 { return s.stripeFrames }

// Frames returns the total frame count of the allocator's range.
func (m *Memory) Frames() uint64 { return m.frames }

// VisitFreeBlocks calls f for every live free block (head frame and
// order). Stale free-list entries are skipped: a head is live iff
// headOrder records it at that order. The scrubber recomputes the
// allocator's free accounting from this walk and cross-checks it against
// the counters.
func (m *Memory) VisitFreeBlocks(f func(head uint64, order int)) {
	for fr, o := range m.headOrder {
		if o != noBlock {
			f(uint64(fr), int(o))
		}
	}
}
