// Package phys models the physical memory substrate: a buddy allocator over
// 4KB frames, the FMFI fragmentation metric, a controllable fragmenter, and
// the allocation cycle-cost model the paper measured on a real fragmented
// server (Section III).
//
// The package is an accounting model: it tracks which frames are allocated
// and what each allocation costs in cycles, but does not back real storage.
// Page-table contents live in the page-table packages; workload data is
// synthetic.
package phys

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/addr"
)

// FrameBytes is the size of a base physical frame (one 4KB page).
const FrameBytes = 4 * addr.KB

// MaxOrder is the largest buddy order supported: order 18 blocks are
// 4KB<<18 = 1GB, enough for 1GB huge pages.
const MaxOrder = 18

// ErrOutOfMemory is returned when no free block of the requested order
// exists. Under high fragmentation this is exactly the failure mode the
// paper reports for 64MB ECPT way allocations (Section III: ">0.7 FMFI, the
// system is unable to allocate 64MB and returns an error").
var ErrOutOfMemory = errors.New("phys: cannot allocate contiguous block")

const noBlock = int8(-1)

// Memory is a buddy allocator over a physically-contiguous frame range.
// It is not safe for concurrent use; the simulator is single-threaded per
// simulated machine.
type Memory struct {
	frames    uint64               // total number of 4KB frames
	maxOrder  int                  // largest order usable given capacity
	headOrder []int8               // headOrder[f] = order if f heads a free block, else -1
	freeList  [][]uint64           // per-order stacks of (possibly stale) free heads
	freeBlk   [MaxOrder + 1]uint64 // live free-block count per order
	freePages uint64               // total free 4KB frames

	stats Stats
}

// Stats aggregates the allocation activity the experiments report.
type Stats struct {
	Allocs        uint64 // successful allocations
	Frees         uint64
	FailedAllocs  uint64
	MaxContiguous uint64 // largest single allocation ever granted, in bytes
	AllocCycles   uint64 // total cycles charged by the cost model (if attached)
	AllocsBySize  map[uint64]uint64
}

// NewMemory returns an allocator over capacityBytes of physical memory.
// capacityBytes is rounded down to a multiple of the frame size and must be
// at least one frame.
func NewMemory(capacityBytes uint64) *Memory {
	frames := capacityBytes / FrameBytes
	if frames == 0 {
		panic("phys: capacity smaller than one frame")
	}
	m := &Memory{
		frames:    frames,
		headOrder: make([]int8, frames),
		freeList:  make([][]uint64, MaxOrder+1),
	}
	m.maxOrder = MaxOrder
	if hi := bits.Len64(frames) - 1; hi < m.maxOrder {
		m.maxOrder = hi
	}
	for i := range m.headOrder {
		m.headOrder[i] = noBlock
	}
	m.stats.AllocsBySize = make(map[uint64]uint64)
	// Seed the free lists with maximal aligned blocks covering the range.
	f := uint64(0)
	for f < frames {
		o := m.maxOrder
		for o > 0 && (f&((1<<o)-1) != 0 || f+(1<<o) > frames) {
			o--
		}
		m.addFree(f, o)
		f += 1 << o
	}
	return m
}

// TotalBytes returns the capacity in bytes.
func (m *Memory) TotalBytes() uint64 { return m.frames * FrameBytes }

// FreeBytes returns the number of free bytes.
func (m *Memory) FreeBytes() uint64 { return m.freePages * FrameBytes }

// ResetStats clears the accumulated statistics. Experiments call it after
// pre-fragmenting memory so that the fragmenter's own blocker allocations do
// not pollute the page tables' contiguity measurements.
func (m *Memory) ResetStats() {
	m.stats = Stats{AllocsBySize: make(map[uint64]uint64)}
}

// Stats returns a copy of the accumulated statistics.
func (m *Memory) Stats() Stats {
	s := m.stats
	s.AllocsBySize = make(map[uint64]uint64, len(m.stats.AllocsBySize)) //mehpt:allow lockorder -- stats snapshot copies a bounded map; callers accept the pause
	for k, v := range m.stats.AllocsBySize {
		s.AllocsBySize[k] = v
	}
	return s
}

// OrderFor returns the buddy order needed for an allocation of the given
// byte size: the smallest order whose block covers size.
func OrderFor(size uint64) int {
	if size <= FrameBytes {
		return 0
	}
	frames := (size + FrameBytes - 1) / FrameBytes
	o := bits.Len64(frames - 1)
	return o
}

// BlockBytes returns the byte size of a block of the given order.
func BlockBytes(order int) uint64 { return FrameBytes << order }

func (m *Memory) addFree(f uint64, order int) {
	m.headOrder[f] = int8(order)
	m.freeList[order] = append(m.freeList[order], f) //mehpt:allow lockorder -- free-list push is amortized O(1); capacity is bounded by the frame count
	m.freeBlk[order]++
	m.freePages += 1 << order
}

// popFree removes and returns a live free head of exactly the given order,
// skipping stale stack entries. It returns false if none exists.
func (m *Memory) popFree(order int) (uint64, bool) {
	list := m.freeList[order]
	for len(list) > 0 {
		f := list[len(list)-1]
		list = list[:len(list)-1]
		if m.headOrder[f] == int8(order) {
			m.freeList[order] = list
			m.headOrder[f] = noBlock
			m.freeBlk[order]--
			m.freePages -= 1 << order
			return f, true
		}
	}
	m.freeList[order] = list
	return 0, false
}

// Alloc allocates a contiguous block of at least size bytes, rounded up to
// the next power-of-two order. It returns the first frame number of the
// block. The returned frame is aligned to the block size.
func (m *Memory) Alloc(size uint64) (addr.PPN, error) {
	return m.AllocOrder(OrderFor(size))
}

// AllocOrder allocates one block of exactly the given order.
func (m *Memory) AllocOrder(order int) (addr.PPN, error) {
	if order > m.maxOrder {
		m.stats.FailedAllocs++
		return 0, fmt.Errorf("%w: order %d exceeds max %d", ErrOutOfMemory, order, m.maxOrder) //mehpt:allow lockorder -- out-of-memory error path; the failed stripe is already stalling
	}
	o := order
	var f uint64
	found := false
	for ; o <= m.maxOrder; o++ {
		if m.freeBlk[o] == 0 {
			continue
		}
		if g, ok := m.popFree(o); ok {
			f, found = g, true
			break
		}
	}
	if !found {
		m.stats.FailedAllocs++
		return 0, fmt.Errorf("%w: no free block of order %d (%s)", //mehpt:allow lockorder -- out-of-memory error path; the failed stripe is already stalling
			ErrOutOfMemory, order, humanOrder(order))
	}
	// Split down to the requested order, returning upper halves to the
	// free lists.
	for o > order {
		o--
		m.addFree(f+(1<<o), o)
	}
	m.stats.Allocs++
	m.stats.AllocsBySize[BlockBytes(order)]++
	if b := BlockBytes(order); b > m.stats.MaxContiguous {
		m.stats.MaxContiguous = b
	}
	return addr.PPN(f), nil
}

// Free returns the block of the given order starting at frame f to the
// allocator, coalescing with free buddies.
func (m *Memory) Free(f addr.PPN, order int) {
	fr := uint64(f)
	if fr&((1<<order)-1) != 0 || fr+(1<<order) > m.frames {
		panic(fmt.Sprintf("phys: Free(%d, order %d): misaligned or out of range", fr, order))
	}
	if m.headOrder[fr] != noBlock {
		panic(fmt.Sprintf("phys: double free of frame %d", fr))
	}
	for order < m.maxOrder {
		buddy := fr ^ (1 << order)
		if buddy+(1<<order) > m.frames || m.headOrder[buddy] != int8(order) {
			break
		}
		// Detach the buddy (its free-list entry becomes stale).
		m.headOrder[buddy] = noBlock
		m.freeBlk[order]--
		m.freePages -= 1 << order
		if buddy < fr {
			fr = buddy
		}
		order++
	}
	m.addFree(fr, order)
	m.stats.Frees++
}

// FreeBytesInBlocksGE returns the number of free bytes residing in free
// blocks of at least the given order.
func (m *Memory) FreeBytesInBlocksGE(order int) uint64 {
	var pages uint64
	for o := order; o <= m.maxOrder; o++ {
		pages += m.freeBlk[o] << o
	}
	return pages * FrameBytes
}

// FMFI returns the Free Memory Fragmentation Index for the given order: the
// fraction of free memory that is unusable for an allocation of that order
// because it sits in smaller blocks. 0 means perfectly defragmented; 1 means
// no block of the order exists. This is the metric from Gorman et al. used
// by the paper ("0.7 in the FMFI metric").
func (m *Memory) FMFI(order int) float64 {
	if m.freePages == 0 {
		return 1
	}
	usable := float64(m.FreeBytesInBlocksGE(order))
	total := float64(m.FreeBytes())
	return 1 - usable/total
}

// FreeBlockCounts returns the live free-block count per order. Together with
// FreeBytes it fingerprints the allocator's free-list state: two states with
// equal counts at every order are interchangeable for future allocations, so
// leak detectors (the fault-injection sweep, the exhaustion-cycle tests)
// compare it against a baseline after teardown.
func (m *Memory) FreeBlockCounts() []uint64 {
	counts := make([]uint64, m.maxOrder+1) //mehpt:allow lockorder -- leak-detector snapshot, sized by maxOrder (~20 words)
	copy(counts, m.freeBlk[:m.maxOrder+1])
	return counts
}

// noteFailedAlloc counts an allocation attempt vetoed before reaching the
// buddy search (fault injection), keeping FailedAllocs meaningful for both
// genuine and injected failures.
func (m *Memory) noteFailedAlloc() { m.stats.FailedAllocs++ }

// CanAlloc reports whether a block of the given order is currently available.
func (m *Memory) CanAlloc(order int) bool {
	for o := order; o <= m.maxOrder; o++ {
		if m.freeBlk[o] > 0 {
			return true
		}
	}
	return false
}

// chargeAlloc is used by AllocCosted to fold cost-model cycles into stats.
func (m *Memory) chargeAlloc(cycles uint64) { m.stats.AllocCycles += cycles }

func humanOrder(order int) string {
	return fmt.Sprintf("%dKB", (FrameBytes<<order)/1024)
}
