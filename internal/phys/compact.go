package phys

import (
	"sort"

	"repro/internal/addr"
)

// Section V-C: "To find space for large chunks in a highly-fragmented
// machine, the OS may perform memory compaction or swap-out pages, as is
// ordinarily done to allocate huge pages." This file models Linux-style
// compaction: movable allocated blocks migrate toward one end of a zone so
// free space coalesces at the other.
//
// The model needs the owners of movable blocks to cooperate (their frame
// numbers change), so compaction works through a MovableSet the owner
// registers its blocks in. Page-table chunks are movable in principle but
// the paper's designs never rely on it; the primary client is the
// fragmentation tooling and the THP story (compaction rescues 2MB
// allocations, not 64MB ones — mirroring the paper's observation that very
// large contiguous requests still fail).

// Movable tracks relocatable allocations and their owner callback.
type Movable struct {
	// Relocate is invoked after a block moves; owners update their frame
	// references. It must not allocate or free physical memory.
	Relocate func(old, new addr.PPN, order int)

	blocks map[addr.PPN]int // base frame -> order
}

// NewMovable returns an empty movable-allocation registry.
func NewMovable(relocate func(old, new addr.PPN, order int)) *Movable {
	return &Movable{Relocate: relocate, blocks: make(map[addr.PPN]int)}
}

// Add registers a block as movable.
func (mv *Movable) Add(base addr.PPN, order int) { mv.blocks[base] = order }

// Remove unregisters a block (freed or pinned).
func (mv *Movable) Remove(base addr.PPN) { delete(mv.blocks, base) }

// Len returns the number of registered blocks.
func (mv *Movable) Len() int { return len(mv.blocks) }

// CompactionCost is the cycle cost of migrating one 4KB frame during
// compaction: copy 4KB (~64 lines at one per cycle each way) plus the
// remap/TLB-shootdown overhead. Linux measures single-page migration in the
// low thousands of cycles.
const CompactionCost = 2000

// Compact migrates registered movable blocks downward (toward frame 0) so
// free space coalesces upward, until a free block of at least targetOrder
// exists or no migration makes progress. It returns the cycle cost spent
// and whether the target is now allocatable.
//
// The algorithm mirrors Linux's compaction scanner pair: a free scanner
// takes the lowest free frames; a migration scanner takes the highest
// movable blocks; blocks migrate from high to low addresses.
func (m *Memory) Compact(mv *Movable, targetOrder int) (uint64, bool) {
	var cycles uint64
	for iter := 0; iter < 1024; iter++ {
		if m.CanAlloc(targetOrder) {
			return cycles, true
		}
		// Pick the highest-addressed movable block.
		if mv.Len() == 0 {
			return cycles, false
		}
		bases := make([]addr.PPN, 0, mv.Len())
		for b := range mv.blocks {
			bases = append(bases, b)
		}
		sort.Slice(bases, func(i, j int) bool { return bases[i] > bases[j] })

		moved := false
		for _, base := range bases {
			order := mv.blocks[base]
			// Find the lowest-addressed free slot for it (the free scanner
			// walks up from the zone start).
			dst, ok := m.allocLowest(order)
			if !ok {
				continue
			}
			if dst >= base {
				// No improvement; undo.
				m.Free(dst, order)
				continue
			}
			// Migrate: copy frames, free the old block.
			mv.Remove(base)
			mv.Add(dst, order)
			m.Free(base, order)
			if mv.Relocate != nil {
				mv.Relocate(base, dst, order)
			}
			cycles += uint64(1<<order) * CompactionCost
			moved = true
			break
		}
		if !moved {
			return cycles, m.CanAlloc(targetOrder)
		}
	}
	return cycles, m.CanAlloc(targetOrder)
}

// allocLowest allocates the lowest-addressed free block that can satisfy
// the given order, splitting a larger block if necessary. Unlike AllocOrder
// (which pops LIFO for speed), the compaction free-scanner must pack from
// the bottom of the zone.
func (m *Memory) allocLowest(order int) (addr.PPN, bool) {
	bestFrame := ^uint64(0)
	bestOrder := -1
	for o := order; o <= m.maxOrder; o++ {
		for _, f := range m.freeList[o] {
			if m.headOrder[f] == int8(o) && f < bestFrame {
				bestFrame = f
				bestOrder = o
			}
		}
	}
	if bestOrder < 0 {
		return 0, false
	}
	// Detach (the free-list entry goes stale; popFree skips it later).
	m.headOrder[bestFrame] = noBlock
	m.freeBlk[bestOrder]--
	m.freePages -= 1 << bestOrder
	// Split down, returning upper halves.
	for bestOrder > order {
		bestOrder--
		m.addFree(bestFrame+(1<<bestOrder), bestOrder)
	}
	m.stats.Allocs++
	m.stats.AllocsBySize[BlockBytes(order)]++
	return addr.PPN(bestFrame), true
}
