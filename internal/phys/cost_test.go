package phys

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// TestPaperAnchorCosts verifies the cost model reproduces the paper's
// Section III measurements exactly at the anchor sizes and 0.7 FMFI.
func TestPaperAnchorCosts(t *testing.T) {
	anchors := []struct {
		size   uint64
		cycles uint64
	}{
		{4 * addr.KB, 4_000},
		{8 * addr.KB, 5_000},
		{1 * addr.MB, 750_000},
		{8 * addr.MB, 13_000_000},
		{64 * addr.MB, 120_000_000},
	}
	for _, a := range anchors {
		got := DefaultCostModel.Cycles(a.size, 0.7)
		// The anchor decomposition (base + frag*1.0) must reconstruct the
		// measured number to within rounding.
		if diff := int64(got) - int64(a.cycles); diff < -1 || diff > 1 {
			t.Errorf("Cycles(%d, 0.7) = %d, want %d", a.size, got, a.cycles)
		}
	}
}

func TestCostMonotonicInSize(t *testing.T) {
	prev := uint64(0)
	for _, size := range []uint64{4 * addr.KB, 8 * addr.KB, 64 * addr.KB,
		1 * addr.MB, 8 * addr.MB, 64 * addr.MB, 256 * addr.MB} {
		c := DefaultCostModel.Cycles(size, 0.7)
		if c <= prev {
			t.Errorf("cost not increasing at size %d: %d <= %d", size, c, prev)
		}
		prev = c
	}
}

func TestCostMonotonicInFragmentation(t *testing.T) {
	for _, size := range []uint64{8 * addr.KB, 1 * addr.MB, 64 * addr.MB} {
		prev := uint64(0)
		for _, f := range []float64{0, 0.2, 0.4, 0.6, 0.7, 0.8} {
			c := DefaultCostModel.Cycles(size, f)
			if c < prev {
				t.Errorf("cost decreasing in fmfi at size %d, fmfi %v", size, f)
			}
			prev = c
		}
	}
}

func TestCostDefragmentedFloor(t *testing.T) {
	// At zero fragmentation only the zeroing floor remains, which is far
	// cheaper than the fragmented cost for large blocks.
	c0 := DefaultCostModel.Cycles(64*addr.MB, 0)
	c7 := DefaultCostModel.Cycles(64*addr.MB, 0.7)
	if c0*10 > c7 {
		t.Errorf("defragmented 64MB cost %d not ≪ fragmented cost %d", c0, c7)
	}
}

func TestAllocatorCharges(t *testing.T) {
	mem := NewMemory(16 * addr.MB)
	a := NewAllocator(mem, 0.7)
	_, cycles, err := a.Alloc(1 * addr.MB)
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultCostModel.Cycles(1*addr.MB, 0.7)
	if cycles != want {
		t.Errorf("alloc cycles = %d, want %d", cycles, want)
	}
	if mem.Stats().AllocCycles != want {
		t.Errorf("stats cycles = %d, want %d", mem.Stats().AllocCycles, want)
	}
}

func TestAllocatorFailureStillCosts(t *testing.T) {
	mem := NewMemory(1 * addr.MB)
	a := NewAllocator(mem, 0.7)
	_, cycles, err := a.Alloc(64 * addr.MB)
	if err == nil {
		t.Fatal("expected failure allocating 64MB from 1MB memory")
	}
	if cycles == 0 {
		t.Error("failed allocation should still report search cost")
	}
}

func TestFragmenterReachesTarget(t *testing.T) {
	mem := NewMemory(4 * addr.GB)
	fr := NewFragmenter(mem)
	refOrder := OrderFor(64 * addr.MB)
	rng := rand.New(rand.NewSource(7))
	const target, freeFrac = 0.7, 0.3
	if err := fr.Fragment(target, freeFrac, refOrder, rng); err != nil {
		t.Fatal(err)
	}
	got := mem.FMFI(refOrder)
	if got < target-0.15 || got > target+0.15 {
		t.Errorf("FMFI = %v, want ≈ %v", got, target)
	}
	free := float64(mem.FreeBytes()) / float64(mem.TotalBytes())
	if free < freeFrac-0.1 || free > freeFrac+0.1 {
		t.Errorf("free fraction = %v, want ≈ %v", free, freeFrac)
	}
	// At 0.7 there should still be at least one intact 64MB region.
	if !mem.CanAlloc(refOrder) {
		t.Error("no 64MB block available at FMFI 0.7; paper expects success")
	}
	fr.Release()
	if mem.FreeBytes() != mem.TotalBytes() {
		t.Errorf("Release did not return all memory: free %d of %d",
			mem.FreeBytes(), mem.TotalBytes())
	}
}

// TestFragmenterExtreme reproduces the paper's failure mode: above 0.7 FMFI
// a 64MB contiguous allocation fails while small chunks still succeed.
func TestFragmenterExtreme(t *testing.T) {
	mem := NewMemory(512 * addr.MB)
	fr := NewFragmenter(mem)
	refOrder := OrderFor(64 * addr.MB)
	rng := rand.New(rand.NewSource(3))
	if err := fr.Fragment(1.0, 0.3, refOrder, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.AllocOrder(refOrder); err == nil {
		t.Error("64MB allocation succeeded at FMFI 1.0; paper expects failure")
	}
	if _, err := mem.Alloc(4 * addr.KB); err != nil {
		t.Errorf("4KB allocation failed under fragmentation: %v", err)
	}
}
