// Tests for the striped multi-tenant pool: a property test pinning the
// K=1 pool to the single-lock reference allocator, sequential invariants
// (alignment, routing, leak detection), and the race-tier stress battery —
// no frame is ever granted twice, accounting balances, and injection stays
// typed under concurrency.
package phys

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/addr"
)

// TestStripedMatchesSingleLockReference: a K=1 striped pool driven by a
// seeded alloc/free script produces exactly the same grants, costs,
// errors, and final free-list shape as the single-lock reference
// Allocator over an identically-sized Memory. The striped pool is the
// reference allocator plus sharding; at K=1 the sharding must vanish.
func TestStripedMatchesSingleLockReference(t *testing.T) {
	const capacity = 64 * addr.MB
	pool := NewStriped(capacity, 1, 0.7)
	view := pool.View(12345)
	ref := NewAllocator(NewMemory(capacity), 0.7)

	type live struct {
		ppn  addr.PPN
		size uint64
	}
	var poolLive, refLive []live
	rng := rand.New(rand.NewSource(99))
	sizes := []uint64{4 * addr.KB, 8 * addr.KB, 64 * addr.KB, 2 * addr.MB}

	for step := 0; step < 4000; step++ {
		if rng.Intn(3) != 0 || len(poolLive) == 0 {
			size := sizes[rng.Intn(len(sizes))]
			p1, c1, e1 := view.Alloc(size)
			p2, c2, e2 := ref.Alloc(size)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: alloc(%d) error mismatch: striped %v, reference %v",
					step, size, e1, e2)
			}
			if c1 != c2 {
				t.Fatalf("step %d: alloc(%d) cost mismatch: striped %d, reference %d",
					step, size, c1, c2)
			}
			if e1 == nil {
				if p1 != p2 {
					t.Fatalf("step %d: alloc(%d) grant mismatch: striped %d, reference %d",
						step, size, uint64(p1), uint64(p2))
				}
				poolLive = append(poolLive, live{p1, size})
				refLive = append(refLive, live{p2, size})
			}
			continue
		}
		i := rng.Intn(len(poolLive))
		view.Free(poolLive[i].ppn, poolLive[i].size)
		ref.Free(refLive[i].ppn, refLive[i].size)
		poolLive = append(poolLive[:i], poolLive[i+1:]...)
		refLive = append(refLive[:i], refLive[i+1:]...)
	}

	if got, want := pool.FreeBytes(), ref.Mem.FreeBytes(); got != want {
		t.Errorf("free bytes diverge: striped %d, reference %d", got, want)
	}
	// Striped reports all MaxOrder+1 orders; a single Memory stops at its
	// capacity's top order. Pad before comparing shapes.
	pad := func(xs []uint64) []uint64 {
		out := make([]uint64, MaxOrder+1)
		copy(out, xs)
		return out
	}
	if got, want := pad(pool.FreeBlockCounts()), pad(ref.Mem.FreeBlockCounts()); !reflect.DeepEqual(got, want) {
		t.Errorf("free-list shape diverges:\nstriped   %v\nreference %v", got, want)
	}
	ps, rs := pool.StatsSum(), ref.Mem.Stats()
	if ps.Allocs != rs.Allocs || ps.Frees != rs.Frees || ps.FailedAllocs != rs.FailedAllocs {
		t.Errorf("stats diverge: striped %d/%d/%d, reference %d/%d/%d",
			ps.Allocs, ps.Frees, ps.FailedAllocs, rs.Allocs, rs.Frees, rs.FailedAllocs)
	}
}

// TestStripedAlignment: stripes are whole 2MB regions, so a 2MB block's
// global PPN stays 512-frame aligned no matter which stripe granted it —
// the invariant THP data mappings rely on.
func TestStripedAlignment(t *testing.T) {
	pool := NewStriped(32*addr.MB, 3, 0.7)
	if pool.TotalBytes()%(2*addr.MB) != 0 {
		t.Fatalf("pool capacity %d not a 2MB multiple", pool.TotalBytes())
	}
	view := pool.View(7)
	for i := 0; ; i++ {
		ppn, _, err := view.Alloc(2 * addr.MB)
		if err != nil {
			if i == 0 {
				t.Fatal("pool granted no 2MB blocks at all")
			}
			break
		}
		if uint64(ppn)%512 != 0 {
			t.Fatalf("2MB block %d granted at frame %d: not 512-frame aligned", i, uint64(ppn))
		}
	}
}

// TestStripedFreeRouting: blocks freed through any view return to the
// stripe that granted them, and freeing a frame beyond the pool panics
// like the buddy allocator's double-free guard.
func TestStripedFreeRouting(t *testing.T) {
	pool := NewStriped(16*addr.MB, 2, 0.7)
	baseline := pool.FreeBlockCounts()
	a := pool.View(1)
	b := pool.View(2)
	p1, _, err := a.Alloc(64 * addr.KB)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-view free: view b returns a's block; routing is by PPN, not home.
	b.Free(p1, 64*addr.KB)
	if got := pool.FreeBlockCounts(); !reflect.DeepEqual(got, baseline) {
		t.Errorf("free-list shape after alloc+cross-view free: %v, want baseline %v", got, baseline)
	}
	defer func() {
		if recover() == nil {
			t.Error("freeing a frame beyond the pool did not panic")
		}
	}()
	a.Free(addr.PPN(pool.TotalBytes()/FrameBytes), 4*addr.KB)
}

// TestStripedTinyStripesPanic: a pool too small for 2MB stripes is a
// construction error, not a silent zero-capacity pool.
func TestStripedTinyStripesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStriped with sub-2MB stripes did not panic")
		}
	}()
	NewStriped(4*addr.MB, 8, 0.7)
}

// TestStripedConcurrentStress is the race-tier invariant battery: many
// goroutines hammer one pool through private views with interleaved
// allocs and frees. Invariants:
//
//  1. No double-grant: every granted frame range is disjoint from every
//     other live grant (checked with a shared frame-ownership bitmap).
//  2. Accounting balances: after every goroutine frees everything,
//     allocs == frees, the free-byte counter returns to capacity, and the
//     free-list shape returns to the baseline (no leaked or split blocks).
func TestStripedConcurrentStress(t *testing.T) {
	const (
		capacity   = 128 * addr.MB
		goroutines = 16
		steps      = 2000
	)
	pool := NewStriped(capacity, 4, 0.7)
	baseline := pool.FreeBlockCounts()
	totalFrames := pool.TotalBytes() / FrameBytes

	// owner[f] marks frame f granted; CompareAndSwap-like discipline under
	// a plain mutex keeps the checker itself race-free.
	owner := make([]bool, totalFrames)
	var ownerMu sync.Mutex
	claim := func(ppn addr.PPN, size uint64) bool {
		frames := BlockBytes(OrderFor(size)) / FrameBytes
		ownerMu.Lock()
		defer ownerMu.Unlock()
		for f := uint64(ppn); f < uint64(ppn)+frames; f++ {
			if owner[f] {
				return false
			}
		}
		for f := uint64(ppn); f < uint64(ppn)+frames; f++ {
			owner[f] = true
		}
		return true
	}
	release := func(ppn addr.PPN, size uint64) {
		frames := BlockBytes(OrderFor(size)) / FrameBytes
		ownerMu.Lock()
		defer ownerMu.Unlock()
		for f := uint64(ppn); f < uint64(ppn)+frames; f++ {
			owner[f] = false
		}
	}

	sizes := []uint64{4 * addr.KB, 16 * addr.KB, 64 * addr.KB, 2 * addr.MB}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			view := pool.View(uint64(id))
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			type live struct {
				ppn  addr.PPN
				size uint64
			}
			var held []live
			for i := 0; i < steps; i++ {
				if rng.Intn(3) != 0 || len(held) == 0 {
					size := sizes[rng.Intn(len(sizes))]
					ppn, _, err := view.Alloc(size)
					if err != nil {
						if !errors.Is(err, ErrOutOfMemory) {
							t.Errorf("goroutine %d: alloc error not typed: %v", id, err)
						}
						continue
					}
					if !claim(ppn, size) {
						t.Errorf("goroutine %d: frame %d (size %d) granted while already live",
							id, uint64(ppn), size)
						return
					}
					held = append(held, live{ppn, size})
				} else {
					i := rng.Intn(len(held))
					release(held[i].ppn, held[i].size)
					view.Free(held[i].ppn, held[i].size)
					held = append(held[:i], held[i+1:]...)
				}
			}
			for _, h := range held {
				release(h.ppn, h.size)
				view.Free(h.ppn, h.size)
			}
		}(g)
	}
	wg.Wait()

	if got := pool.FreeBytes(); got != pool.TotalBytes() {
		t.Errorf("free bytes after full teardown: %d, want capacity %d", got, pool.TotalBytes())
	}
	if got := pool.FreeBlockCounts(); !reflect.DeepEqual(got, baseline) {
		t.Errorf("free-list shape leaked:\ngot      %v\nbaseline %v", got, baseline)
	}
	s := pool.StatsSum()
	if s.Allocs != s.Frees {
		t.Errorf("accounting imbalance: %d allocs, %d frees", s.Allocs, s.Frees)
	}
	if s.Allocs == 0 {
		t.Error("stress loop allocated nothing; the test exercised no pool code")
	}
}

// TestStripedConcurrentHook: the machine-wide injection hook is consulted
// exactly once per Alloc attempt even under contention — sequence numbers
// never repeat or skip — and hook-failed attempts surface typed errors
// without granting frames.
func TestStripedConcurrentHook(t *testing.T) {
	pool := NewStriped(64*addr.MB, 4, 0.7)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	injected := errors.New("hook says no")
	pool.SetHook(func(req AllocRequest) error {
		mu.Lock()
		defer mu.Unlock()
		if seen[req.Seq] {
			t.Errorf("sequence number %d issued twice", req.Seq)
		}
		seen[req.Seq] = true
		if req.Seq%5 == 0 {
			return injected
		}
		return nil
	})

	const goroutines, attempts = 8, 300
	var wg sync.WaitGroup
	var hits, misses [goroutines]int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			view := pool.View(uint64(id))
			for i := 0; i < attempts; i++ {
				ppn, _, err := view.Alloc(4 * addr.KB)
				if err != nil {
					if !errors.Is(err, injected) {
						t.Errorf("goroutine %d: unexpected alloc error: %v", id, err)
					}
					misses[id]++
					continue
				}
				hits[id]++
				view.Free(ppn, 4*addr.KB)
			}
		}(g)
	}
	wg.Wait()

	total, failed := 0, 0
	for g := 0; g < goroutines; g++ {
		total += hits[g] + misses[g]
		failed += misses[g]
	}
	if want := goroutines * attempts; len(seen) != want {
		t.Errorf("hook consulted %d times, want exactly %d", len(seen), want)
	}
	if want := goroutines * attempts / 5; failed != want {
		t.Errorf("injected failures: %d, want %d (every 5th attempt)", failed, want)
	}
	if got := pool.FreeBytes(); got != pool.TotalBytes() {
		t.Errorf("free bytes after hook storm: %d, want %d", got, pool.TotalBytes())
	}
}
