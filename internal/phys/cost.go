package phys

import (
	"math"

	"repro/internal/addr"
)

// CostModel converts a contiguous-allocation request into a cycle cost,
// reproducing the paper's real-system measurements (Section III): at 2GHz
// and 0.7 FMFI, allocating and zeroing 4KB, 8KB, 1MB, 8MB, and 64MB chunks
// takes 4K, 5K, 750K, 13M, and 120M cycles respectively. Costs for other
// sizes are log-log interpolated between the anchors; costs at other
// fragmentation levels scale the fragmentation-dependent component.
type CostModel struct {
	// FMFI is the fragmentation level at which anchor costs apply exactly.
	// The paper's measurements were taken at 0.7.
	FMFI float64
}

// DefaultCostModel is the paper's measurement configuration.
var DefaultCostModel = CostModel{FMFI: 0.7}

// anchor points: size in bytes -> cycles at the reference FMFI.
var costAnchors = []struct {
	size   uint64
	cycles float64
}{
	{4 * addr.KB, 4_000},
	{8 * addr.KB, 5_000},
	{1 * addr.MB, 750_000},
	{8 * addr.MB, 13_000_000},
	{64 * addr.MB, 120_000_000},
}

// baseCycles is the fragmentation-independent floor: a fixed page-allocator
// overhead plus zeroing at one cache line (64B) per cycle.
func baseCycles(size uint64) float64 {
	return 1_000 + float64(size)/64
}

// anchorCycles returns the measured (or log-log inter/extrapolated) cost of
// allocating size bytes at the reference fragmentation.
func anchorCycles(size uint64) float64 {
	a := costAnchors
	if size <= a[0].size {
		return a[0].cycles * float64(size) / float64(a[0].size)
	}
	for i := 1; i < len(a); i++ {
		if size <= a[i].size {
			return loglog(size, a[i-1].size, a[i-1].cycles, a[i].size, a[i].cycles)
		}
	}
	last, prev := a[len(a)-1], a[len(a)-2]
	return loglog(size, prev.size, prev.cycles, last.size, last.cycles)
}

// loglog interpolates (and extrapolates) on log-log axes between
// (x0,y0)-(x1,y1).
func loglog(x, x0 uint64, y0 float64, x1 uint64, y1 float64) float64 {
	lx := math.Log(float64(x))
	l0, l1 := math.Log(float64(x0)), math.Log(float64(x1))
	ly := math.Log(y0) + (math.Log(y1)-math.Log(y0))*(lx-l0)/(l1-l0)
	return math.Exp(ly)
}

// Cycles returns the cost in cycles of allocating and zeroing a contiguous
// block of the given size under fragmentation fmfi in [0,1).
//
// The fragmentation-dependent component (compaction, reclaim, free-list
// search) scales super-linearly in fmfi and vanishes as fmfi goes to 0; the
// zeroing floor always remains.
func (c CostModel) Cycles(size uint64, fmfi float64) uint64 {
	ref := c.FMFI
	if ref <= 0 {
		ref = 0.7
	}
	base := baseCycles(size)
	fragAtRef := anchorCycles(size) - base
	if fragAtRef < 0 {
		fragAtRef = 0
	}
	if fmfi < 0 {
		fmfi = 0
	}
	scale := math.Pow(fmfi/ref, 4)
	return uint64(base + fragAtRef*scale)
}

// CyclesAtRef returns the cost at the model's reference fragmentation, i.e.
// the paper's measured numbers for the anchor sizes.
func (c CostModel) CyclesAtRef(size uint64) uint64 {
	ref := c.FMFI
	if ref <= 0 {
		ref = 0.7
	}
	return c.Cycles(size, ref)
}

// AllocRequest describes one contiguous-allocation attempt, as seen by an
// AllocHook before the buddy allocator is consulted.
type AllocRequest struct {
	Size  uint64 // requested bytes, pre-rounding
	Order int    // buddy order that will serve the request
	Seq   uint64 // 1-based index of this attempt on the allocator
	// FreeBytes and TotalBytes snapshot the buddy state at request time, so
	// pressure-threshold policies can act on actual memory conditions.
	FreeBytes  uint64
	TotalBytes uint64
}

// AllocHook can veto an allocation attempt before it reaches the buddy
// allocator. A non-nil return fails the allocation with that error; the
// attempt is still charged its search cost and counted as a failed alloc,
// exactly like a genuine out-of-memory condition. Fault-injection
// (internal/inject) installs hooks here; errors returned should wrap
// ErrOutOfMemory so callers' degradation paths treat injected and genuine
// failures identically.
type AllocHook func(AllocRequest) error

// Source is the costed allocation interface the OS model, the page tables,
// and the chunk stores consume. *Allocator is the single-lock reference
// implementation over one Memory; *StripedView is the per-owner handle onto
// a Striped multi-tenant allocator. Consumers depend on this interface so a
// page table is indifferent to whether its frames come from a private
// machine or a shared, striped-lock pool.
type Source interface {
	// Alloc allocates a contiguous block of at least size bytes, returning
	// the first frame and the cycle cost. A failed attempt still returns its
	// search cost.
	Alloc(size uint64) (addr.PPN, uint64, error)
	// AllocRollback is Alloc for rollback paths; it bypasses any fault-
	// injection hook (see Allocator.AllocRollback).
	AllocRollback(size uint64) (addr.PPN, uint64, error)
	// Free returns a block of the given byte size starting at ppn.
	Free(ppn addr.PPN, size uint64)
}

// Allocator couples a Memory with a CostModel and a fragmentation level,
// providing the costed allocation interface the page tables use. The
// fragmentation level used for costing is the ambient machine fragmentation
// (the paper runs everything at 0.7 FMFI); availability is decided by the
// actual buddy state.
type Allocator struct {
	Mem   *Memory
	Model CostModel
	// AmbientFMFI is the fragmentation level used for pricing allocations.
	AmbientFMFI float64
	// Hook, if non-nil, is consulted before every Alloc attempt (but not
	// AllocRollback: rollback re-acquisitions must always succeed so failed
	// resizes can restore their old geometry).
	Hook AllocHook

	seq uint64 // allocation attempts issued, for AllocRequest.Seq
}

// NewAllocator returns a costed allocator over mem at the given ambient
// fragmentation with the default (paper-measured) cost model.
func NewAllocator(mem *Memory, ambientFMFI float64) *Allocator {
	return &Allocator{Mem: mem, Model: DefaultCostModel, AmbientFMFI: ambientFMFI}
}

// Alloc allocates a contiguous block of at least size bytes and returns its
// first frame plus the cycle cost of the allocation. On failure the cost of
// the failed attempt is still returned (the OS did the work of searching).
func (a *Allocator) Alloc(size uint64) (addr.PPN, uint64, error) {
	order := OrderFor(size)
	cycles := a.Model.Cycles(BlockBytes(order), a.AmbientFMFI)
	a.seq++
	if a.Hook != nil {
		if err := a.Hook(AllocRequest{
			Size:       size,
			Order:      order,
			Seq:        a.seq,
			FreeBytes:  a.Mem.FreeBytes(),
			TotalBytes: a.Mem.TotalBytes(),
		}); err != nil {
			a.Mem.noteFailedAlloc()
			return 0, cycles, err
		}
	}
	ppn, err := a.Mem.AllocOrder(order)
	if err != nil {
		return 0, cycles, err
	}
	a.Mem.chargeAlloc(cycles)
	return ppn, cycles, nil
}

// AllocRollback is Alloc for rollback paths: re-acquiring memory that a
// failed resize or transition just released in order to restore the old
// geometry. It bypasses the Hook — the memory was freed moments ago by the
// caller, so the buddy allocator can always satisfy it, and fault injection
// must not be able to strand a rollback halfway (a failed upsize must leave
// the table valid at its old geometry, unconditionally).
func (a *Allocator) AllocRollback(size uint64) (addr.PPN, uint64, error) {
	order := OrderFor(size)
	cycles := a.Model.Cycles(BlockBytes(order), a.AmbientFMFI)
	ppn, err := a.Mem.AllocOrder(order)
	if err != nil {
		return 0, cycles, err
	}
	a.Mem.chargeAlloc(cycles)
	return ppn, cycles, nil
}

// Free returns a block of the given byte size starting at ppn.
func (a *Allocator) Free(ppn addr.PPN, size uint64) {
	a.Mem.Free(ppn, OrderFor(size))
}
