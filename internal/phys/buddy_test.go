package phys

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestOrderFor(t *testing.T) {
	cases := []struct {
		size  uint64
		order int
	}{
		{1, 0},
		{4 * addr.KB, 0},
		{4*addr.KB + 1, 1},
		{8 * addr.KB, 1},
		{1 * addr.MB, 8},
		{8 * addr.MB, 11},
		{64 * addr.MB, 14},
		{1 * addr.GB, 18},
	}
	for _, c := range cases {
		if got := OrderFor(c.size); got != c.order {
			t.Errorf("OrderFor(%d) = %d, want %d", c.size, got, c.order)
		}
		if c.size > 1 && BlockBytes(c.order) < c.size {
			t.Errorf("BlockBytes(OrderFor(%d)) = %d too small", c.size, BlockBytes(c.order))
		}
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	m := NewMemory(16 * addr.MB)
	if m.FreeBytes() != 16*addr.MB {
		t.Fatalf("FreeBytes = %d", m.FreeBytes())
	}
	ppn, err := m.Alloc(1 * addr.MB)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreeBytes() != 15*addr.MB {
		t.Errorf("FreeBytes after alloc = %d", m.FreeBytes())
	}
	if uint64(ppn)%(1<<8) != 0 {
		t.Errorf("1MB block not aligned: frame %d", ppn)
	}
	m.Free(ppn, OrderFor(1*addr.MB))
	if m.FreeBytes() != 16*addr.MB {
		t.Errorf("FreeBytes after free = %d", m.FreeBytes())
	}
	// After full free, a maximal allocation must succeed again (coalescing).
	if _, err := m.Alloc(16 * addr.MB); err != nil {
		t.Errorf("cannot re-allocate whole memory after coalescing: %v", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := NewMemory(1 * addr.MB)
	var got []addr.PPN
	for {
		p, err := m.Alloc(4 * addr.KB)
		if err != nil {
			break
		}
		got = append(got, p)
	}
	if len(got) != 256 {
		t.Errorf("allocated %d 4KB frames from 1MB, want 256", len(got))
	}
	if _, err := m.Alloc(4 * addr.KB); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected ErrOutOfMemory, got %v", err)
	}
	if m.FreeBytes() != 0 {
		t.Errorf("FreeBytes = %d after exhaustion", m.FreeBytes())
	}
}

func TestUniqueNonOverlapping(t *testing.T) {
	m := NewMemory(8 * addr.MB)
	rng := rand.New(rand.NewSource(1))
	type block struct {
		ppn   addr.PPN
		order int
	}
	var live []block
	owner := make(map[uint64]int) // frame -> block idx
	for step := 0; step < 2000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			order := rng.Intn(5)
			ppn, err := m.AllocOrder(order)
			if err != nil {
				continue
			}
			for f := uint64(ppn); f < uint64(ppn)+(1<<order); f++ {
				if prev, clash := owner[f]; clash {
					t.Fatalf("frame %d double-allocated (blocks %d and %d)", f, prev, len(live))
				}
				owner[f] = len(live)
			}
			live = append(live, block{ppn, order})
		} else {
			i := rng.Intn(len(live))
			b := live[i]
			m.Free(b.ppn, b.order)
			for f := uint64(b.ppn); f < uint64(b.ppn)+(1<<b.order); f++ {
				delete(owner, f)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Invariant: free bytes + live bytes == capacity.
	var liveBytes uint64
	for _, b := range live {
		liveBytes += BlockBytes(b.order)
	}
	if m.FreeBytes()+liveBytes != m.TotalBytes() {
		t.Errorf("accounting: free %d + live %d != total %d",
			m.FreeBytes(), liveBytes, m.TotalBytes())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := NewMemory(1 * addr.MB)
	p, err := m.Alloc(4 * addr.KB)
	if err != nil {
		t.Fatal(err)
	}
	m.Free(p, 0)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	m.Free(p, 0)
}

func TestFMFIFreshMemory(t *testing.T) {
	m := NewMemory(64 * addr.MB)
	// Fresh memory is fully coalesced: no fragmentation at any order.
	for o := 0; o <= OrderFor(64*addr.MB); o++ {
		if f := m.FMFI(o); f != 0 {
			t.Errorf("fresh FMFI(order %d) = %v, want 0", o, f)
		}
	}
}

func TestFMFIShredded(t *testing.T) {
	m := NewMemory(1 * addr.MB)
	// Allocate everything as 4KB frames, free every other one: all free
	// memory is in order-0 blocks.
	var frames []addr.PPN
	for {
		p, err := m.Alloc(4 * addr.KB)
		if err != nil {
			break
		}
		frames = append(frames, p)
	}
	for i, p := range frames {
		if i%2 == 0 {
			m.Free(p, 0)
		}
	}
	if f := m.FMFI(0); f != 0 {
		t.Errorf("FMFI(0) = %v, want 0", f)
	}
	if f := m.FMFI(1); f != 1 {
		t.Errorf("FMFI(order 1) = %v, want 1 (no coalescible blocks)", f)
	}
	if m.CanAlloc(1) {
		t.Error("CanAlloc(order 1) = true on fully shredded memory")
	}
	if _, err := m.Alloc(8 * addr.KB); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("8KB alloc should fail, got %v", err)
	}
}

func TestStatsTracking(t *testing.T) {
	m := NewMemory(16 * addr.MB)
	p1, _ := m.Alloc(4 * addr.KB)
	p2, _ := m.Alloc(1 * addr.MB)
	s := m.Stats()
	if s.Allocs != 2 {
		t.Errorf("Allocs = %d", s.Allocs)
	}
	if s.MaxContiguous != 1*addr.MB {
		t.Errorf("MaxContiguous = %d", s.MaxContiguous)
	}
	if s.AllocsBySize[4*addr.KB] != 1 || s.AllocsBySize[1*addr.MB] != 1 {
		t.Errorf("AllocsBySize = %v", s.AllocsBySize)
	}
	m.Free(p1, 0)
	m.Free(p2, OrderFor(1*addr.MB))
	if m.Stats().Frees != 2 {
		t.Errorf("Frees = %d", m.Stats().Frees)
	}
	m.ResetStats()
	if s := m.Stats(); s.Allocs != 0 || s.MaxContiguous != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestAlignmentProperty(t *testing.T) {
	m := NewMemory(64 * addr.MB)
	f := func(ordRaw uint8) bool {
		order := int(ordRaw) % 10
		p, err := m.AllocOrder(order)
		if err != nil {
			return true // exhaustion is fine
		}
		ok := uint64(p)%(1<<order) == 0
		m.Free(p, order)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
