package phys

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
)

// Fragmenter drives a fresh Memory to a target FMFI, mimicking the
// open-source fragmentation tool the paper uses [1]. It works by pinning
// blocker pages: whole reference-order regions are either left fully free
// (usable for large allocations) or shredded into isolated free 4KB frames
// that can never coalesce.
type Fragmenter struct {
	mem    *Memory
	pinned []pinnedBlock // blocker allocations, released by Release
}

type pinnedBlock struct {
	ppn   addr.PPN
	order int
}

// NewFragmenter returns a fragmenter over mem. The memory should be fresh
// (nothing allocated) for the target FMFI to be reached accurately.
func NewFragmenter(mem *Memory) *Fragmenter { return &Fragmenter{mem: mem} }

// Fragment drives memory to approximately targetFMFI at refOrder, leaving
// freeFraction of the capacity free. rng controls which regions stay intact.
//
// With probability derived from the target, each refOrder-sized region is
// left fully free; the remaining regions are fully allocated and then have
// alternating 4KB frames freed so their free memory is maximally fragmented.
// FMFI(refOrder) = scatteredFree / totalFree, so:
//
//	intact fraction q satisfies  q = (1-target) * freeFraction
//	scatter density s satisfies  (1-q) * s = target * freeFraction
func (fr *Fragmenter) Fragment(targetFMFI, freeFraction float64, refOrder int, rng *rand.Rand) error {
	if targetFMFI < 0 || targetFMFI > 1 {
		return fmt.Errorf("phys: target FMFI %v out of [0,1]", targetFMFI)
	}
	if freeFraction <= 0 || freeFraction > 1 {
		return fmt.Errorf("phys: free fraction %v out of (0,1]", freeFraction)
	}
	if refOrder > fr.mem.maxOrder {
		return fmt.Errorf("phys: ref order %d exceeds max %d", refOrder, fr.mem.maxOrder)
	}
	regionFrames := uint64(1) << refOrder
	numRegions := fr.mem.frames / regionFrames
	if numRegions == 0 {
		return fmt.Errorf("phys: memory smaller than one region")
	}

	q := (1 - targetFMFI) * freeFraction
	s := 0.0
	if q < 1 {
		s = targetFMFI * freeFraction / (1 - q)
	}
	if s > 0.5 {
		return fmt.Errorf("phys: infeasible target (scatter density %.2f > 0.5); lower freeFraction", s)
	}

	// Pass 1: allocate every region at refOrder so we control the layout.
	regions := make([]addr.PPN, 0, numRegions)
	for i := uint64(0); i < numRegions; i++ {
		ppn, err := fr.mem.AllocOrder(refOrder)
		if err != nil {
			return fmt.Errorf("phys: fragmenter pass 1: %w", err)
		}
		regions = append(regions, ppn)
	}
	// Residual frames (capacity not a multiple of region size) stay free;
	// they are below refOrder so they only add scattered free memory.

	// Pass 2: decide each region's fate.
	intactWanted := int(q*float64(numRegions) + 0.5)
	perm := rng.Perm(int(numRegions))
	intact := make(map[int]bool, intactWanted)
	for _, idx := range perm[:intactWanted] {
		intact[idx] = true
	}
	// Scatter density: frames freed per shredded region, at even offsets so
	// no two are buddies.
	scatterPer := int(s*float64(regionFrames) + 0.5)
	if scatterPer > int(regionFrames/2) {
		scatterPer = int(regionFrames / 2)
	}

	for i, base := range regions {
		if intact[i] {
			fr.mem.Free(base, refOrder)
			continue
		}
		// Shredded region: free scatterPer isolated 4KB frames at even
		// offsets, keep the rest pinned.
		offsets := rng.Perm(int(regionFrames / 2))[:scatterPer]
		freed := make(map[uint64]bool, scatterPer)
		for _, off := range offsets {
			f := uint64(base) + 2*uint64(off)
			fr.mem.Free(addr.PPN(f), 0)
			freed[f] = true
		}
		// Record the pinned remainder as individual frames so Release can
		// return them. To keep bookkeeping compact we record the region and
		// the freed set as frame pins.
		for f := uint64(base); f < uint64(base)+regionFrames; f++ {
			if !freed[f] {
				fr.pinned = append(fr.pinned, pinnedBlock{addr.PPN(f), 0})
			}
		}
	}
	return nil
}

// Pinned returns the number of blocker allocations currently held.
func (fr *Fragmenter) Pinned() int { return len(fr.pinned) }

// Release frees all blocker allocations, defragmenting the memory.
func (fr *Fragmenter) Release() {
	for _, p := range fr.pinned {
		fr.mem.Free(p.ppn, p.order)
	}
	fr.pinned = nil
}
