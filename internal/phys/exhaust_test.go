package phys

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/addr"
)

// allocToExhaustion allocates blocks of the given sizes round-robin until
// the allocator refuses everything, returning each grant as (ppn, size).
func allocToExhaustion(t *testing.T, m *Memory, sizes []uint64) [](struct {
	ppn  addr.PPN
	size uint64
}) {
	t.Helper()
	var got [](struct {
		ppn  addr.PPN
		size uint64
	})
	blocked := 0
	for i := 0; blocked < len(sizes); i++ {
		size := sizes[i%len(sizes)]
		ppn, err := m.Alloc(size)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("alloc %d bytes: untyped failure: %v", size, err)
			}
			blocked++
			continue
		}
		blocked = 0
		got = append(got, struct {
			ppn  addr.PPN
			size uint64
		}{ppn, size})
	}
	return got
}

// TestExhaustionRecoveryCycle drives the buddy allocator to out-of-memory,
// frees everything, and checks full recovery: free bytes, the per-order
// free-block fingerprint, and FMFI at every order return exactly to the
// fresh-allocator baseline — and a second identical cycle reproduces the
// first grant-for-grant.
func TestExhaustionRecoveryCycle(t *testing.T) {
	const capacity = 8 * addr.MB
	mixes := [][]uint64{
		{4 * addr.KB},                        // uniform smallest
		{4 * addr.KB, 64 * addr.KB, addr.MB}, // mixed orders
		{addr.MB, 8 * addr.KB, 2 * addr.MB},  // large-first mix
	}
	for mi, sizes := range mixes {
		m := NewMemory(capacity)
		baselineFree := m.FreeBytes()
		baselineBlocks := m.FreeBlockCounts()
		var baselineFMFI []float64
		for o := 0; o <= 11; o++ {
			baselineFMFI = append(baselineFMFI, m.FMFI(o))
		}

		cycle := func() []addr.PPN {
			grants := allocToExhaustion(t, m, sizes)
			if len(grants) == 0 {
				t.Fatalf("mix %d: nothing allocated before exhaustion", mi)
			}
			// Exhausted for the smallest size in the mix means that size has
			// no free block left.
			min := sizes[0]
			for _, s := range sizes {
				if s < min {
					min = s
				}
			}
			if m.CanAlloc(OrderFor(min)) {
				t.Fatalf("mix %d: CanAlloc(order %d) true after refusing allocations",
					mi, OrderFor(min))
			}
			ppns := make([]addr.PPN, len(grants))
			for i, g := range grants {
				ppns[i] = g.ppn
			}
			// Free in allocation order (not LIFO) to exercise coalescing
			// across interleaved buddies.
			for _, g := range grants {
				m.Free(g.ppn, OrderFor(g.size))
			}
			return ppns
		}

		first := cycle()

		if got := m.FreeBytes(); got != baselineFree {
			t.Fatalf("mix %d: free bytes after recovery %d, want %d", mi, got, baselineFree)
		}
		if got := m.FreeBlockCounts(); !reflect.DeepEqual(got, baselineBlocks) {
			t.Fatalf("mix %d: free-list fingerprint after recovery\n got %v\nwant %v",
				mi, got, baselineBlocks)
		}
		for o := 0; o <= 11; o++ {
			if got := m.FMFI(o); got != baselineFMFI[o] {
				t.Fatalf("mix %d: FMFI(%d) = %g after recovery, want %g",
					mi, o, got, baselineFMFI[o])
			}
		}

		// The allocator recovered to an equivalent state: the second cycle
		// must reproduce the first grant-for-grant.
		second := cycle()
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("mix %d: second exhaustion cycle diverged (%d vs %d grants)",
				mi, len(first), len(second))
		}
	}
}

// TestExhaustionStatsAccounting: failed allocations during exhaustion are
// counted, and a full cycle's frees match its allocs.
func TestExhaustionStatsAccounting(t *testing.T) {
	m := NewMemory(1 * addr.MB)
	grants := allocToExhaustion(t, m, []uint64{4 * addr.KB})
	s := m.Stats()
	if s.Allocs != uint64(len(grants)) {
		t.Errorf("Allocs = %d, want %d", s.Allocs, len(grants))
	}
	if s.FailedAllocs == 0 {
		t.Error("FailedAllocs = 0 after driving to exhaustion")
	}
	for _, g := range grants {
		m.Free(g.ppn, 0)
	}
	if s := m.Stats(); s.Frees != uint64(len(grants)) {
		t.Errorf("Frees = %d, want %d", s.Frees, len(grants))
	}
	if m.FreeBytes() != m.TotalBytes() {
		t.Errorf("free %d != total %d after freeing every grant", m.FreeBytes(), m.TotalBytes())
	}
}
