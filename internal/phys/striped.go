package phys

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/addr"
)

// Striped is a shared physical allocator for the multi-tenant simulation:
// one machine-wide frame pool partitioned into K independently-locked
// stripes, each a private buddy Memory over a contiguous slice of the frame
// space. Concurrent tenants contend only on their home stripe's mutex in
// the common case, which is what lets the race-tier stress tests drive
// hundreds of goroutines through one pool without serializing them on a
// single lock.
//
// Frame numbering: stripe i owns global frames [i*stripeFrames,
// (i+1)*stripeFrames); a block allocated locally at frame f maps to global
// PPN i*stripeFrames+f, and Free routes back by division. stripeFrames is
// always a multiple of 512 frames (2MB), so a 2MB-aligned local block stays
// 2MB-aligned globally and THP data mappings remain valid. 1GB mappings are
// not supported through Striped.
//
// Determinism: the canonical multi-tenant schedule issues allocations
// sequentially, and every quantity a request observes (home stripe, probe
// order, Seq, FreeBytes) is then a pure function of the allocation history —
// so striped runs are bit-identical to themselves at any simulated core
// count. Under true concurrency (the stress tests) Seq and FreeBytes are
// racy by construction; those tests assert invariants, not fingerprints.
type Striped struct {
	stripes      []*stripe
	stripeFrames uint64
	//mehpt:transient -- always DefaultCostModel; RestoreStriped reinstates the constant
	model CostModel

	// AmbientFMFI is the fragmentation level used for pricing allocations,
	// mirroring Allocator.AmbientFMFI. Set before use; not synchronized.
	AmbientFMFI float64

	//mehpt:transient -- derived counter; RestoreStriped recomputes it from the restored stripes' free bytes
	free atomic.Uint64 // global free bytes, maintained on alloc/free

	hookMu sync.Mutex
	//mehpt:transient -- injection policy, serialized separately by its owner and re-attached after restore (see StripedState)
	hook AllocHook //mehpt:guardedby hookMu
	seq    uint64    //mehpt:guardedby hookMu -- allocation attempts issued
}

type stripe struct {
	mu  sync.Mutex //mehpt:ordered stripe
	mem *Memory    //mehpt:guardedby mu
}

// stripeAlign keeps every stripe a whole number of 2MB regions so global
// frame numbers preserve huge-page alignment.
const stripeAlign = (2 * addr.MB) / FrameBytes

// NewStriped partitions capacityBytes across k stripes at the given ambient
// fragmentation. Capacity not divisible into 2MB-aligned stripes is left
// unused (at most 2MB per stripe).
func NewStriped(capacityBytes uint64, k int, ambientFMFI float64) *Striped {
	if k <= 0 {
		k = 1
	}
	frames := capacityBytes / FrameBytes / uint64(k)
	frames -= frames % stripeAlign
	if frames == 0 {
		panic(fmt.Sprintf("phys: %d stripes over %d bytes leaves stripes under 2MB",
			k, capacityBytes))
	}
	s := &Striped{
		stripes:      make([]*stripe, k),
		stripeFrames: frames,
		model:        DefaultCostModel,
		AmbientFMFI:  ambientFMFI,
	}
	for i := range s.stripes {
		s.stripes[i] = &stripe{mem: NewMemory(frames * FrameBytes)}
	}
	s.free.Store(uint64(k) * frames * FrameBytes)
	return s
}

// SetHook installs (or clears) the fault-injection hook consulted before
// every Alloc attempt, machine-wide across all stripes.
func (s *Striped) SetHook(h AllocHook) {
	s.hookMu.Lock()
	s.hook = h
	s.hookMu.Unlock()
}

// Stripes returns the stripe count.
func (s *Striped) Stripes() int { return len(s.stripes) }

// TotalBytes returns the pooled capacity (after stripe alignment).
func (s *Striped) TotalBytes() uint64 {
	return uint64(len(s.stripes)) * s.stripeFrames * FrameBytes
}

// FreeBytes returns the pooled free bytes. It is maintained atomically so
// pressure-threshold injection policies can observe memory conditions
// without taking every stripe lock.
func (s *Striped) FreeBytes() uint64 { return s.free.Load() }

// View returns owner's handle onto the pool. The owner identity picks the
// home stripe (splitmix64-spread so adjacent process ids land on different
// stripes) and is stable across core counts — stripe placement is part of
// the canonical schedule, not the core topology.
func (s *Striped) View(owner uint64) *StripedView {
	return &StripedView{s: s, home: int(splitmix64(owner) % uint64(len(s.stripes)))}
}

// splitmix64 is the SplitMix64 finalizer (same avalanche as the runner's
// seed tree), used here only for stripe placement.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// consultHook runs the installed hook (if any) for one attempt, assigning
// the attempt's global sequence number.
func (s *Striped) consultHook(size uint64, order int) error {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	s.seq++
	if s.hook == nil {
		return nil
	}
	return s.hook(AllocRequest{
		Size:       size,
		Order:      order,
		Seq:        s.seq,
		FreeBytes:  s.free.Load(),
		TotalBytes: s.TotalBytes(),
	})
}

// alloc probes stripes starting at home, wrapping around, and grants from
// the first stripe that can satisfy the order. Probing is deterministic
// given the home stripe and the pool state.
func (s *Striped) alloc(home int, size uint64, withHook bool) (addr.PPN, uint64, error) {
	order := OrderFor(size)
	cycles := s.model.Cycles(BlockBytes(order), s.AmbientFMFI)
	if withHook {
		if err := s.consultHook(size, order); err != nil {
			st := s.stripes[home]
			st.mu.Lock()
			st.mem.noteFailedAlloc()
			st.mu.Unlock()
			return 0, cycles, err
		}
	}
	for i := 0; i < len(s.stripes); i++ {
		idx := (home + i) % len(s.stripes)
		st := s.stripes[idx]
		st.mu.Lock()
		if !st.mem.CanAlloc(order) {
			st.mu.Unlock()
			continue
		}
		ppn, err := st.mem.AllocOrder(order)
		if err != nil {
			// CanAlloc held under the same lock; AllocOrder cannot fail
			// except for an over-max order, which CanAlloc also rejects.
			st.mu.Unlock()
			continue
		}
		st.mem.chargeAlloc(cycles)
		st.mu.Unlock()
		s.free.Add(^uint64(BlockBytes(order) - 1)) // subtract
		return addr.PPN(uint64(idx)*s.stripeFrames + uint64(ppn)), cycles, nil
	}
	st := s.stripes[home]
	st.mu.Lock()
	st.mem.noteFailedAlloc()
	st.mu.Unlock()
	return 0, cycles, fmt.Errorf("%w: no stripe holds a free block of order %d (%s)",
		ErrOutOfMemory, order, humanOrder(order))
}

// freeBlock routes a global PPN back to its stripe.
func (s *Striped) freeBlock(ppn addr.PPN, size uint64) {
	order := OrderFor(size)
	idx := uint64(ppn) / s.stripeFrames
	if idx >= uint64(len(s.stripes)) {
		panic(fmt.Sprintf("phys: Striped.Free(%d): frame beyond pool", uint64(ppn)))
	}
	local := addr.PPN(uint64(ppn) % s.stripeFrames)
	st := s.stripes[idx]
	st.mu.Lock()
	st.mem.Free(local, order)
	st.mu.Unlock()
	s.free.Add(BlockBytes(order))
}

// FreeBlockCounts returns the live free-block counts summed across stripes,
// indexed by order — the pool-wide leak-detection fingerprint, comparable
// against a baseline after teardown exactly like Memory.FreeBlockCounts.
func (s *Striped) FreeBlockCounts() []uint64 {
	counts := make([]uint64, MaxOrder+1)
	for _, st := range s.stripes {
		st.mu.Lock()
		for o, c := range st.mem.FreeBlockCounts() {
			counts[o] += c
		}
		st.mu.Unlock()
	}
	return counts
}

// StatsSum returns the Memory stats summed across stripes.
func (s *Striped) StatsSum() Stats {
	sum := Stats{AllocsBySize: make(map[uint64]uint64)}
	for _, st := range s.stripes {
		st.mu.Lock()
		ms := st.mem.Stats()
		st.mu.Unlock()
		sum.Allocs += ms.Allocs
		sum.Frees += ms.Frees
		sum.FailedAllocs += ms.FailedAllocs
		sum.AllocCycles += ms.AllocCycles
		if ms.MaxContiguous > sum.MaxContiguous {
			sum.MaxContiguous = ms.MaxContiguous
		}
		for sz, n := range ms.AllocsBySize {
			sum.AllocsBySize[sz] += n
		}
	}
	return sum
}

// FMFI returns the pool-wide Free Memory Fragmentation Index for the given
// order, computed over the combined free lists of every stripe.
func (s *Striped) FMFI(order int) float64 {
	var usable, total uint64
	for _, st := range s.stripes {
		st.mu.Lock()
		usable += st.mem.FreeBytesInBlocksGE(order)
		total += st.mem.FreeBytes()
		st.mu.Unlock()
	}
	if total == 0 {
		return 1
	}
	return 1 - float64(usable)/float64(total)
}

// StripedView is one owner's phys.Source onto a Striped pool. Views are
// cheap handles; every process (and the shared-region manager) in a
// multi-tenant machine holds its own.
type StripedView struct {
	s    *Striped
	home int
}

// Alloc allocates from the pool, preferring the owner's home stripe. The
// machine-wide injection hook is consulted first.
func (v *StripedView) Alloc(size uint64) (addr.PPN, uint64, error) {
	return v.s.alloc(v.home, size, true)
}

// AllocRollback is Alloc minus the injection hook: rollback re-acquisitions
// must succeed unconditionally so failed resizes can restore old geometry.
func (v *StripedView) AllocRollback(size uint64) (addr.PPN, uint64, error) {
	return v.s.alloc(v.home, size, false)
}

// Free returns a block to whichever stripe owns it (not necessarily the
// view's home stripe: the block may have overflowed to a neighbor).
func (v *StripedView) Free(ppn addr.PPN, size uint64) {
	v.s.freeBlock(ppn, size)
}

// Interface conformance: both the single-lock reference allocator and the
// striped per-owner view are allocation sources.
var (
	_ Source = (*Allocator)(nil)
	_ Source = (*StripedView)(nil)
)
