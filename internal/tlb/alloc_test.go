package tlb

import (
	"testing"

	"repro/internal/addr"
)

// TestLookupHitAllocFree guards the steady-state translation path: a TLB
// hit (and the MRU bookkeeping it performs) must never allocate.
func TestLookupHitAllocFree(t *testing.T) {
	tb := New(Config{Entries: 64, Ways: 4, Latency: 2})
	tb.Insert(42)
	tb.Insert(43)
	if n := testing.AllocsPerRun(1000, func() {
		// Alternate so the MRU copy-shift actually moves entries.
		if !tb.Lookup(42) || !tb.Lookup(43) {
			t.Fatal("warm lookup missed")
		}
	}); n != 0 {
		t.Errorf("TLB hit allocates %v objects per call", n)
	}
}

// TestMissInsertFlushAllocFree covers the rest of the steady-state TLB
// surface: misses, re-inserts (with eviction), and Flush all reuse the flat
// tag array in place.
func TestMissInsertFlushAllocFree(t *testing.T) {
	tb := New(Config{Entries: 16, Ways: 4, Latency: 2})
	var vpn addr.VPN
	if n := testing.AllocsPerRun(1000, func() {
		vpn++
		if tb.Lookup(vpn) {
			t.Fatal("cold lookup hit")
		}
		tb.Insert(vpn)
	}); n != 0 {
		t.Errorf("TLB miss+insert allocates %v objects per call", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		tb.Flush()
	}); n != 0 {
		t.Errorf("TLB Flush allocates %v objects per call", n)
	}
}

// TestHierarchyLookupAllocFree extends the guard to the two-level stack the
// MMU actually queries, including the L2-refill path on an L1 miss.
func TestHierarchyLookupAllocFree(t *testing.T) {
	h := NewTableIII()
	va := addr.VirtAddr(0x1234000)
	h.Insert(va, addr.Page4K)
	if n := testing.AllocsPerRun(1000, func() {
		if r, _ := h.Lookup(va, addr.Page4K); r == MissAll {
			t.Fatal("warm hierarchy lookup missed")
		}
	}); n != 0 {
		t.Errorf("hierarchy lookup allocates %v objects per call", n)
	}
}
