package tlb

import (
	"testing"

	"repro/internal/addr"
)

// TestLookupHitAllocFree guards the steady-state translation path: a TLB
// hit (and the MRU bookkeeping it performs) must never allocate.
func TestLookupHitAllocFree(t *testing.T) {
	tb := New(Config{Entries: 64, Ways: 4, Latency: 2})
	tb.Insert(42, 1)
	tb.Insert(43, 2)
	if n := testing.AllocsPerRun(1000, func() {
		// Alternate so the MRU copy-shift actually moves entries.
		if !hit(tb, 42) || !hit(tb, 43) {
			t.Fatal("warm lookup missed")
		}
	}); n != 0 {
		t.Errorf("TLB hit allocates %v objects per call", n)
	}
}

// TestMissInsertFlushAllocFree covers the rest of the steady-state TLB
// surface: misses, re-inserts (with eviction), and Flush all reuse the flat
// tag array in place.
func TestMissInsertFlushAllocFree(t *testing.T) {
	tb := New(Config{Entries: 16, Ways: 4, Latency: 2})
	var vpn addr.VPN
	if n := testing.AllocsPerRun(1000, func() {
		vpn++
		if hit(tb, vpn) {
			t.Fatal("cold lookup hit")
		}
		tb.Insert(vpn, uint64(vpn))
	}); n != 0 {
		t.Errorf("TLB miss+insert allocates %v objects per call", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		tb.Flush()
	}); n != 0 {
		t.Errorf("TLB Flush allocates %v objects per call", n)
	}
}

// TestHierarchyLookupAllocFree extends the guard to the two-level stack the
// MMU actually queries, including the L2-refill path on an L1 miss.
func TestHierarchyLookupAllocFree(t *testing.T) {
	h := NewTableIII()
	va := addr.VirtAddr(0x1234000)
	h.Insert(va, addr.Page4K, 9)
	if n := testing.AllocsPerRun(1000, func() {
		if r, _, _ := h.Lookup(va, addr.Page4K); r == MissAll {
			t.Fatal("warm hierarchy lookup missed")
		}
	}); n != 0 {
		t.Errorf("hierarchy lookup allocates %v objects per call", n)
	}
}

// TestLookupBatchAllocFree guards the batched pipeline entry point: the
// two-pass probe, its scratch, and the slow-lane continuation must all stay
// on the stack.
func TestLookupBatchAllocFree(t *testing.T) {
	h := NewTableIII()
	var vas [BatchWidth]addr.VirtAddr
	for i := range vas {
		vas[i] = addr.VirtAddr(0x1000000 + i*4096)
		h.Insert(vas[i], addr.Page4K, uint64(i))
	}
	// One resident at 2M so the slow lane (4K miss → larger sizes) runs too.
	vas[BatchWidth-1] = addr.VirtAddr(0x80000000)
	h.Insert(vas[BatchWidth-1], addr.Page2M, 7)
	var levels [BatchWidth]Result
	var sizes [BatchWidth]addr.PageSize
	var pays, lats [BatchWidth]uint64
	if n := testing.AllocsPerRun(1000, func() {
		got, _ := h.LookupBatch(vas[:], levels[:], sizes[:], pays[:], lats[:])
		if got != BatchWidth {
			t.Fatalf("warm batch resolved %d/%d", got, BatchWidth)
		}
	}); n != 0 {
		t.Errorf("LookupBatch allocates %v objects per call", n)
	}
}

// TestLookupBatchPAsAllocFree guards the fused entry point the simulator's
// trace loop drives, including its slow-lane (2M) continuation.
func TestLookupBatchPAsAllocFree(t *testing.T) {
	h := NewTableIII()
	var vas [BatchWidth]addr.VirtAddr
	for i := range vas {
		vas[i] = addr.VirtAddr(0x1000000 + i*4096)
		h.Insert(vas[i], addr.Page4K, uint64(i))
	}
	vas[BatchWidth-1] = addr.VirtAddr(0x80000000)
	h.Insert(vas[BatchWidth-1], addr.Page2M, 7)
	var pas [BatchWidth]addr.PhysAddr
	if n := testing.AllocsPerRun(1000, func() {
		got, _, _, _ := h.LookupBatchPAs(vas[:], pas[:])
		if got != BatchWidth {
			t.Fatalf("warm batch resolved %d/%d", got, BatchWidth)
		}
	}); n != 0 {
		t.Errorf("LookupBatchPAs allocates %v objects per call", n)
	}
}
