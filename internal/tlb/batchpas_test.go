package tlb

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// TestLookupBatchPAsMatchesScalar drives an identical lookup stream through
// LookupBatchPAs on one hierarchy and scalar LookupVA calls on another,
// asserting element-wise physical addresses, the aggregate (n, l1, latSum,
// missLat) tuple against its scalar reconstruction, and final per-size
// L1/L2 statistics. Misses are refilled into both hierarchies, as the MMU's
// walk would, so LRU state keeps evolving across the whole stream.
func TestLookupBatchPAsMatchesScalar(t *testing.T) {
	batch := NewTableIII()
	scalar := NewTableIII()
	rng := rand.New(rand.NewSource(5))

	// Working set: 4K pages plus a few 2M and 1G mappings, so the slow lane
	// (4K miss that hits a larger size) runs alongside the fast lane.
	base := addr.VirtAddr(0x4000_0000)
	payFor := func(va addr.VirtAddr, s addr.PageSize) uint64 {
		return uint64(va.PageNumber(s)) + 1000
	}
	insertBoth := func(va addr.VirtAddr, s addr.PageSize) {
		batch.Insert(va, s, payFor(va, s))
		scalar.Insert(va, s, payFor(va, s))
	}
	sizeOf := func(va addr.VirtAddr) addr.PageSize {
		switch {
		case va >= 0x100_0000_0000:
			return addr.Page1G
		case va >= 0x8000_0000:
			return addr.Page2M
		}
		return addr.Page4K
	}
	for i := 0; i < 64; i++ {
		insertBoth(base+addr.VirtAddr(i)*4096, addr.Page4K)
	}
	for i := 0; i < 8; i++ {
		insertBoth(addr.VirtAddr(0x8000_0000)+addr.VirtAddr(i)*2*addr.MB, addr.Page2M)
	}
	insertBoth(0x100_0000_0000, addr.Page1G)

	vas := make([]addr.VirtAddr, 4000)
	for i := range vas {
		switch rng.Intn(8) {
		case 0: // 2M-mapped region (slow-lane L1 hit)
			vas[i] = addr.VirtAddr(0x8000_0000) + addr.VirtAddr(rng.Intn(8))*2*addr.MB + addr.VirtAddr(rng.Intn(1<<21))
		case 1: // 1G-mapped region
			vas[i] = 0x100_0000_0000 + addr.VirtAddr(rng.Intn(1<<27))
		default: // 4K pages, wider than the TLBs so misses occur
			vas[i] = base + addr.VirtAddr(rng.Intn(4096))*4096
		}
	}

	segments := []int{1, 5, 31, 64, 64, 17}
	var pas [BatchWidth]addr.PhysAddr
	pos, seg := 0, 0
	for pos < len(vas) {
		k := segments[seg%len(segments)]
		seg++
		if k > len(vas)-pos {
			k = len(vas) - pos
		}
		n, l1, latSum, missLat := batch.LookupBatchPAs(vas[pos:pos+k], pas[:k])

		var wantL1, wantLat uint64
		for i := 0; i < n; i++ {
			va := vas[pos+i]
			r, s, pay, lat := scalar.LookupVA(va)
			if r == MissAll {
				t.Fatalf("pos %d+%d: batch resolved an element the scalar hierarchy misses", pos, i)
			}
			if r == HitL1 {
				wantL1++
			}
			wantLat += lat
			if want := addr.Translate(va, addr.PPN(pay), s); pas[i] != want {
				t.Fatalf("pos %d+%d (va %#x): pa %#x, scalar %#x", pos, i, va, pas[i], want)
			}
		}
		if l1 != wantL1 || latSum != wantLat {
			t.Fatalf("pos %d: batch (l1=%d lat=%d), scalar (l1=%d lat=%d)", pos, l1, latSum, wantL1, wantLat)
		}
		if n < k {
			va := vas[pos+n]
			r, _, _, lat := scalar.LookupVA(va)
			if r != MissAll {
				t.Fatalf("pos %d: batch stopped at element %d but scalar hit (%v)", pos, n, r)
			}
			if missLat != lat {
				t.Fatalf("pos %d: miss latency %d, scalar %d", pos, missLat, lat)
			}
			// Refill both hierarchies, as the page walk would, and move past
			// the serviced element.
			insertBoth(va, sizeOf(va))
			pos += n + 1
			continue
		}
		if missLat != 0 {
			t.Fatalf("pos %d: full batch resolved but missLat = %d", pos, missLat)
		}
		pos += n
	}

	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		if b, sc := batch.L1(s).Stats(), scalar.L1(s).Stats(); b != sc {
			t.Errorf("%v L1 stats diverge: batch %+v, scalar %+v", s, b, sc)
		}
		if b, sc := batch.L2(s).Stats(), scalar.L2(s).Stats(); b != sc {
			t.Errorf("%v L2 stats diverge: batch %+v, scalar %+v", s, b, sc)
		}
	}
}
