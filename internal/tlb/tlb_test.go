package tlb

import (
	"testing"

	"repro/internal/addr"
)

func TestLookupInsert(t *testing.T) {
	tb := New(Config{Entries: 16, Ways: 4, Latency: 2})
	if tb.Lookup(100) {
		t.Fatal("cold lookup hit")
	}
	tb.Insert(100)
	if !tb.Lookup(100) {
		t.Fatal("lookup after insert missed")
	}
	st := tb.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDuplicateInsertKeepsOneCopy(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 4, Latency: 1})
	tb.Insert(1)
	tb.Insert(1)
	tb.Insert(2)
	tb.Insert(3)
	tb.Insert(4) // would evict if 1 were duplicated
	if !tb.Lookup(2) || !tb.Lookup(3) || !tb.Lookup(4) {
		t.Error("entries lost; duplicate insert consumed a way")
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 2, Latency: 1}) // 2 sets × 2 ways
	// VPNs 0,2,4 map to set 0.
	tb.Insert(0)
	tb.Insert(2)
	tb.Lookup(0) // 0 MRU
	tb.Insert(4) // evicts 2
	if !tb.Lookup(0) {
		t.Error("MRU entry evicted")
	}
	if tb.Lookup(2) {
		t.Error("LRU entry survived")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tb := New(Config{Entries: 8, Ways: 4, Latency: 1})
	tb.Insert(5)
	tb.Invalidate(5)
	if tb.Lookup(5) {
		t.Error("invalidated entry still present")
	}
	tb.Insert(6)
	tb.Insert(7)
	tb.Flush()
	if tb.Lookup(6) || tb.Lookup(7) {
		t.Error("entries survived flush")
	}
}

func TestFullyAssociative(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 0, Latency: 1})
	for v := addr.VPN(0); v < 4; v++ {
		tb.Insert(v)
	}
	for v := addr.VPN(0); v < 4; v++ {
		if !tb.Lookup(v) {
			t.Errorf("entry %d missing in fully-associative TLB", v)
		}
	}
	tb.Insert(99) // evicts LRU (0 after the lookups refreshed order 0..3 → 0 is LRU? After lookups, 3 is MRU, 0 LRU)
	if tb.Lookup(0) {
		t.Error("LRU entry survived in full TLB")
	}
}

func TestHierarchyL2Refill(t *testing.T) {
	h := NewTableIII()
	va := addr.VirtAddr(0x123456789000)
	if r, _ := h.Lookup(va, addr.Page4K); r != MissAll {
		t.Fatal("cold lookup hit")
	}
	h.Insert(va, addr.Page4K)
	if r, lat := h.Lookup(va, addr.Page4K); r != HitL1 || lat != 2 {
		t.Fatalf("after insert: %v, %d", r, lat)
	}
	// Evict from L1 (64e/4w, 16 sets): 4 conflicting VPNs at stride 16.
	base := va.PageNumber(addr.Page4K)
	for i := 1; i <= 4; i++ {
		h.Insert((base + addr.VPN(16*i)).Addr(addr.Page4K), addr.Page4K)
	}
	r, lat := h.Lookup(va, addr.Page4K)
	if r != HitL2 {
		t.Fatalf("expected L2 hit, got %v", r)
	}
	if lat != 14 {
		t.Errorf("L2 hit latency = %d, want 14 (2+12)", lat)
	}
	// The L2 hit refilled L1.
	if r, _ := h.Lookup(va, addr.Page4K); r != HitL1 {
		t.Errorf("L1 not refilled after L2 hit: %v", r)
	}
}

func TestHierarchyPerSizeIsolation(t *testing.T) {
	h := NewTableIII()
	va := addr.VirtAddr(0x40000000)
	h.Insert(va, addr.Page2M)
	if r, _ := h.Lookup(va, addr.Page4K); r != MissAll {
		t.Error("2MB insert visible to 4KB lookup")
	}
	if r, _ := h.Lookup(va, addr.Page2M); r != HitL1 {
		t.Error("2MB insert not visible to 2MB lookup")
	}
	h.Invalidate(va, addr.Page2M)
	if r, _ := h.Lookup(va, addr.Page2M); r != MissAll {
		t.Error("invalidate did not remove 2MB entry")
	}
}
