package tlb

import (
	"testing"

	"repro/internal/addr"
)

// hit is the bool-only view of Lookup most structural tests want.
func hit(tb *TLB, vpn addr.VPN) bool {
	_, ok := tb.Lookup(vpn)
	return ok
}

func TestLookupInsert(t *testing.T) {
	tb := New(Config{Entries: 16, Ways: 4, Latency: 2})
	if hit(tb, 100) {
		t.Fatal("cold lookup hit")
	}
	tb.Insert(100, 777)
	pay, ok := tb.Lookup(100)
	if !ok {
		t.Fatal("lookup after insert missed")
	}
	if pay != 777 {
		t.Errorf("payload = %d, want 777", pay)
	}
	st := tb.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDuplicateInsertKeepsOneCopy(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 4, Latency: 1})
	tb.Insert(1, 11)
	tb.Insert(1, 12)
	tb.Insert(2, 22)
	tb.Insert(3, 33)
	tb.Insert(4, 44) // would evict if 1 were duplicated
	if !hit(tb, 2) || !hit(tb, 3) || !hit(tb, 4) {
		t.Error("entries lost; duplicate insert consumed a way")
	}
	// The duplicate insert refreshed the payload.
	if pay, ok := tb.Lookup(1); !ok || pay != 12 {
		t.Errorf("re-insert payload = %d, %v; want 12, true", pay, ok)
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 2, Latency: 1}) // 2 sets × 2 ways
	// VPNs 0,2,4 map to set 0.
	tb.Insert(0, 100)
	tb.Insert(2, 102)
	hit(tb, 0)        // 0 MRU
	tb.Insert(4, 104) // evicts 2
	if pay, ok := tb.Lookup(0); !ok || pay != 100 {
		t.Errorf("MRU entry evicted or payload lost: %d, %v", pay, ok)
	}
	if hit(tb, 2) {
		t.Error("LRU entry survived")
	}
}

// TestPayloadTracksLRUShifts drives enough hits and evictions through one
// set that any payload/tag desynchronization in the copy-shifts shows up.
func TestPayloadTracksLRUShifts(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 4, Latency: 1})
	for v := addr.VPN(0); v < 4; v++ {
		tb.Insert(v, uint64(v)*10+5)
	}
	order := []addr.VPN{2, 0, 3, 1, 1, 3, 0, 2, 2, 2, 0}
	for _, v := range order {
		if pay, ok := tb.Lookup(v); !ok || pay != uint64(v)*10+5 {
			t.Fatalf("vpn %d: payload %d, hit %v; want %d", v, pay, ok, uint64(v)*10+5)
		}
	}
	tb.Insert(9, 95) // evicts the LRU (vpn 1 after the order above)
	if hit(tb, 1) {
		t.Error("LRU entry survived eviction")
	}
	for _, v := range []addr.VPN{0, 2, 3, 9} {
		want := uint64(v)*10 + 5
		if pay, ok := tb.Lookup(v); !ok || pay != want {
			t.Fatalf("after eviction vpn %d: payload %d, hit %v; want %d", v, pay, ok, want)
		}
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tb := New(Config{Entries: 8, Ways: 4, Latency: 1})
	tb.Insert(5, 55)
	tb.Invalidate(5)
	if hit(tb, 5) {
		t.Error("invalidated entry still present")
	}
	tb.Insert(6, 66)
	tb.Insert(7, 77)
	tb.Flush()
	if hit(tb, 6) || hit(tb, 7) {
		t.Error("entries survived flush")
	}
	// A new resident of a slot vacated by Invalidate/Flush must not see the
	// old payload.
	tb.Insert(6, 68)
	if pay, ok := tb.Lookup(6); !ok || pay != 68 {
		t.Errorf("payload after flush+reinsert = %d, %v; want 68", pay, ok)
	}
}

func TestFullyAssociative(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 0, Latency: 1})
	for v := addr.VPN(0); v < 4; v++ {
		tb.Insert(v, uint64(v))
	}
	for v := addr.VPN(0); v < 4; v++ {
		if !hit(tb, v) {
			t.Errorf("entry %d missing in fully-associative TLB", v)
		}
	}
	tb.Insert(99, 99) // evicts LRU (0 after the lookups refreshed order 0..3 → 0 is LRU? After lookups, 3 is MRU, 0 LRU)
	if hit(tb, 0) {
		t.Error("LRU entry survived in full TLB")
	}
}

// TestSetBaseMaskMatchesModulo pins the power-of-two mask fast path against
// the modulo it replaces, across both geometries Table III uses.
func TestSetBaseMaskMatchesModulo(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 64, Ways: 4, Latency: 2},    // 16 sets: masked
		{Entries: 1024, Ways: 12, Latency: 2}, // 85 sets: modulo
		{Entries: 4, Ways: 0, Latency: 2},     // 1 set
	} {
		tb := New(cfg)
		for _, vpn := range []addr.VPN{0, 1, 84, 85, 86, 1 << 20, 0xDEADBEEF} {
			want := (uint64(vpn) % tb.sets) * uint64(tb.ways)
			if got := tb.setBase(vpn); got != want {
				t.Errorf("cfg %+v vpn %d: setBase %d, want %d", cfg, vpn, got, want)
			}
		}
	}
}

func TestHierarchyL2Refill(t *testing.T) {
	h := NewTableIII()
	va := addr.VirtAddr(0x123456789000)
	if r, _, _ := h.Lookup(va, addr.Page4K); r != MissAll {
		t.Fatal("cold lookup hit")
	}
	h.Insert(va, addr.Page4K, 321)
	if r, pay, lat := h.Lookup(va, addr.Page4K); r != HitL1 || lat != 2 || pay != 321 {
		t.Fatalf("after insert: %v, pay %d, lat %d", r, pay, lat)
	}
	// Evict from L1 (64e/4w, 16 sets): 4 conflicting VPNs at stride 16.
	base := va.PageNumber(addr.Page4K)
	for i := 1; i <= 4; i++ {
		h.Insert((base + addr.VPN(16*i)).Addr(addr.Page4K), addr.Page4K, uint64(i))
	}
	r, pay, lat := h.Lookup(va, addr.Page4K)
	if r != HitL2 {
		t.Fatalf("expected L2 hit, got %v", r)
	}
	if lat != 14 {
		t.Errorf("L2 hit latency = %d, want 14 (2+12)", lat)
	}
	if pay != 321 {
		t.Errorf("L2 hit payload = %d, want 321", pay)
	}
	// The L2 hit refilled L1, payload included.
	if r, pay, _ := h.Lookup(va, addr.Page4K); r != HitL1 || pay != 321 {
		t.Errorf("L1 not refilled after L2 hit: %v, pay %d", r, pay)
	}
}

func TestHierarchyPerSizeIsolation(t *testing.T) {
	h := NewTableIII()
	va := addr.VirtAddr(0x40000000)
	h.Insert(va, addr.Page2M, 7)
	if r, _, _ := h.Lookup(va, addr.Page4K); r != MissAll {
		t.Error("2MB insert visible to 4KB lookup")
	}
	if r, _, _ := h.Lookup(va, addr.Page2M); r != HitL1 {
		t.Error("2MB insert not visible to 2MB lookup")
	}
	h.Invalidate(va, addr.Page2M)
	if r, _, _ := h.Lookup(va, addr.Page2M); r != MissAll {
		t.Error("invalidate did not remove 2MB entry")
	}
}
