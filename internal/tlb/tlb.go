// Package tlb models the two-level, per-page-size data TLB hierarchy of
// Table III: small fast L1 DTLBs (one per page size) backed by larger L2
// DTLBs, all set-associative with LRU replacement.
package tlb

import (
	"repro/internal/addr"
)

// Config describes one TLB structure.
type Config struct {
	Entries int
	Ways    int
	Latency uint64 // round-trip cycles
}

// Stats counts TLB behaviour.
type Stats struct {
	Hits, Misses uint64
}

// TLB is one set-associative translation lookaside buffer keyed by VPN.
//
// The tag store is a single flat set-major array (sets × ways), MRU first
// within each set, with 0 marking an empty slot (tags are stored as VPN+1).
// Empty slots only ever appear as a suffix of a set — inserts push at the
// front and invalidates compact leftward — so probes stop at the first
// zero. The flat layout keeps the steady-state lookup path free of heap
// allocation and pointer chasing; the per-set []uint64 slices it replaces
// were the TLB's entire GC footprint.
//
// Each slot also carries a 64-bit payload (the PPN of the cached
// translation), moved in lockstep with its tag. A real TLB stores the frame
// number next to the tag; modelling that lets a hit return the completed
// translation without re-probing the page table. Payloads are timing- and
// stats-invisible: only the tag array decides hit/miss, LRU, and eviction.
type TLB struct {
	cfg     Config
	sets    uint64
	setMask uint64 // sets-1 when sets is a power of two, else 0
	ways    int
	tags    []uint64 // sets × ways, set-major; 0 = empty
	pays    []uint64 // payload per slot, parallel to tags
	stats   Stats
}

// New creates a TLB. A Ways value of 0 or ≥ Entries makes it fully
// associative.
func New(cfg Config) *TLB {
	if cfg.Ways <= 0 || cfg.Ways > cfg.Entries {
		cfg.Ways = cfg.Entries
	}
	sets := uint64(cfg.Entries / cfg.Ways)
	if sets == 0 {
		sets = 1
	}
	t := &TLB{cfg: cfg, sets: sets, ways: cfg.Ways,
		tags: make([]uint64, sets*uint64(cfg.Ways)),
		pays: make([]uint64, sets*uint64(cfg.Ways))}
	if sets&(sets-1) == 0 {
		t.setMask = sets - 1
	}
	return t
}

// setBase returns the flat-array offset of vpn's set. All Table III L1
// geometries have power-of-two set counts, so the common case is a mask;
// the L2 4K/2M structures (1024/12 = 85 sets) take the modulo path.
func (t *TLB) setBase(vpn addr.VPN) uint64 {
	if t.setMask != 0 || t.sets == 1 {
		return (uint64(vpn) & t.setMask) * uint64(t.ways)
	}
	return (uint64(vpn) % t.sets) * uint64(t.ways)
}

// promote2 moves slot i of a tag/payload set pair to the MRU front. The
// explicit backward shift replaces copy(): promotion distances are tiny
// (usually one slot), where two memmove calls cost more than the moves.
//
//go:inline
func promote2(set, pays []uint64, i int) {
	tag, pay := set[i], pays[i]
	for ; i > 0; i-- {
		set[i] = set[i-1]
		pays[i] = pays[i-1]
	}
	set[0], pays[0] = tag, pay
}

// Lookup probes for vpn, updating LRU on a hit and returning the slot's
// payload.
//mehpt:hotpath
func (t *TLB) Lookup(vpn addr.VPN) (uint64, bool) {
	base := t.setBase(vpn)
	set := t.tags[base : base+uint64(t.ways)]
	want := uint64(vpn) + 1
	for i, tag := range set {
		if tag == 0 {
			break // empties are a suffix: the rest of the set is empty
		}
		if tag == want {
			pays := t.pays[base : base+uint64(t.ways)]
			pay := pays[i]
			promote2(set, pays, i)
			t.stats.Hits++
			return pay, true
		}
	}
	t.stats.Misses++
	return 0, false
}

// Insert installs vpn with its payload, evicting the set's LRU entry if
// needed. Re-inserting a resident vpn refreshes its payload and MRU slot.
//mehpt:hotpath
func (t *TLB) Insert(vpn addr.VPN, pay uint64) {
	base := t.setBase(vpn)
	set := t.tags[base : base+uint64(t.ways)]
	pays := t.pays[base : base+uint64(t.ways)]
	want := uint64(vpn) + 1
	n := len(set)
	for i, tag := range set {
		if tag == 0 {
			n = i
			break
		}
		if tag == want {
			pays[i] = pay
			promote2(set, pays, i)
			return
		}
	}
	if n == len(set) {
		n-- // set full: shifting right drops the LRU tail
	}
	for ; n > 0; n-- {
		set[n] = set[n-1]
		pays[n] = pays[n-1]
	}
	set[0], pays[0] = want, pay
}

// Invalidate removes vpn if present (TLB shootdown on unmap).
func (t *TLB) Invalidate(vpn addr.VPN) {
	base := t.setBase(vpn)
	set := t.tags[base : base+uint64(t.ways)]
	want := uint64(vpn) + 1
	for i, tag := range set {
		if tag == 0 {
			return
		}
		if tag == want {
			pays := t.pays[base : base+uint64(t.ways)]
			copy(set[i:], set[i+1:])
			set[len(set)-1] = 0
			copy(pays[i:], pays[i+1:])
			pays[len(pays)-1] = 0
			return
		}
	}
}

// Flush empties the TLB (context switch without ASIDs). The tag array is
// cleared in place — flushing must not churn the GC, since the OS model
// flushes on every context-switch event.
func (t *TLB) Flush() {
	clear(t.tags)
	clear(t.pays)
}

// Latency returns the hit latency.
func (t *TLB) Latency() uint64 { return t.cfg.Latency }

// Stats returns hit/miss counters.
func (t *TLB) Stats() Stats { return t.stats }

// BatchWidth is the pipeline width of the batched translation path: the
// sim loop hands the MMU up to this many accesses per call, and every
// batched stage (TLB, table probes, cache) sizes its scratch to it. 64 is
// wide enough to amortize per-call dispatch to well under a cycle per
// access while keeping per-stage scratch (a few 64-entry arrays) inside L1.
const BatchWidth = 64

// Hierarchy is the full per-page-size two-level DTLB stack.
type Hierarchy struct {
	l1 [addr.NumPageSizes]*TLB
	l2 [addr.NumPageSizes]*TLB
}

// NewTableIII builds the paper's DTLB configuration: L1 64e/4w (4KB),
// 32e/4w (2MB), 4e (1GB) at 2 cycles; L2 1024e/12w (4KB), 1024e/12w (2MB),
// 16e/4w (1GB) at 12 cycles.
func NewTableIII() *Hierarchy {
	h := &Hierarchy{}
	h.l1[addr.Page4K] = New(Config{Entries: 64, Ways: 4, Latency: 2})
	h.l1[addr.Page2M] = New(Config{Entries: 32, Ways: 4, Latency: 2})
	h.l1[addr.Page1G] = New(Config{Entries: 4, Ways: 0, Latency: 2})
	h.l2[addr.Page4K] = New(Config{Entries: 1024, Ways: 12, Latency: 12})
	h.l2[addr.Page2M] = New(Config{Entries: 1024, Ways: 12, Latency: 12})
	h.l2[addr.Page1G] = New(Config{Entries: 16, Ways: 4, Latency: 12})
	return h
}

// Result describes where a TLB lookup was satisfied.
type Result int

// Lookup outcomes.
const (
	MissAll Result = iota
	HitL1
	HitL2
)

// Lookup probes L1 then L2 for va at page size s, returning the outcome,
// the hit payload, and the lookup latency. An L2 hit refills L1.
//mehpt:hotpath
func (h *Hierarchy) Lookup(va addr.VirtAddr, s addr.PageSize) (Result, uint64, uint64) {
	vpn := va.PageNumber(s)
	if pay, ok := h.l1[s].Lookup(vpn); ok {
		return HitL1, pay, h.l1[s].Latency()
	}
	if pay, ok := h.l2[s].Lookup(vpn); ok {
		h.l1[s].Insert(vpn, pay)
		return HitL2, pay, h.l1[s].Latency() + h.l2[s].Latency()
	}
	return MissAll, 0, h.l1[s].Latency() + h.l2[s].Latency()
}

// LookupVA probes the hierarchy for va across all page sizes in ascending
// order — exactly the MMU's scalar probe loop, fused into one call. On a
// hit it returns the level, winning page size, payload, and that size's hit
// latency; on a full miss it returns MissAll with the maximum per-size miss
// latency (the parallel-probe timing model the scalar path uses).
//mehpt:hotpath
func (h *Hierarchy) LookupVA(va addr.VirtAddr) (Result, addr.PageSize, uint64, uint64) {
	vpn := va.PageNumber(addr.Page4K)
	if pay, ok := h.l1[addr.Page4K].Lookup(vpn); ok {
		return HitL1, addr.Page4K, pay, h.l1[addr.Page4K].Latency()
	}
	return h.lookupVAFrom4KMiss(va)
}

// lookupVAFrom4KMiss finishes LookupVA after the 4K L1 probe has already
// missed (and been counted): the 4K L2 probe, then the larger page sizes.
// Both the scalar path and the batch pipeline's slow lane funnel through
// this, which is what keeps their results and stats bit-identical.
//mehpt:hotpath
func (h *Hierarchy) lookupVAFrom4KMiss(va addr.VirtAddr) (Result, addr.PageSize, uint64, uint64) {
	vpn := va.PageNumber(addr.Page4K)
	l14 := h.l1[addr.Page4K]
	l24 := h.l2[addr.Page4K]
	if pay, ok := l24.Lookup(vpn); ok {
		l14.Insert(vpn, pay)
		return HitL2, addr.Page4K, pay, l14.Latency() + l24.Latency()
	}
	miss := l14.Latency() + l24.Latency()
	for _, s := range addr.Sizes()[1:] {
		r, pay, lat := h.Lookup(va, s)
		if r != MissAll {
			return r, s, pay, lat
		}
		if miss < lat {
			miss = lat
		}
	}
	return MissAll, 0, 0, miss
}

// LookupBatch resolves the longest all-hit prefix of vas, software-
// pipelined: set indices for the common-case probe (L1, 4K pages) are
// computed for the whole batch first, then tags are compared in a second
// pass so the set loads overlap instead of serializing behind each probe.
// Elements that miss the 4K L1 fall through to the same per-size
// continuation the scalar LookupVA uses.
//
// For each resolved element i < n it fills levels[i], sizes[i], pays[i],
// and lats[i] with exactly what LookupVA would have returned. It stops at
// the first element that misses every structure — that element's probes
// (hits, misses, LRU updates) have already been performed and counted, so
// the caller must complete it with the page walk directly, NOT by calling
// LookupVA again. Returns the resolved count n and, when n < len(vas),
// element n's full-miss latency. At most BatchWidth elements are consumed
// per call.
//mehpt:hotpath
func (h *Hierarchy) LookupBatch(vas []addr.VirtAddr, levels []Result, sizes []addr.PageSize, pays, lats []uint64) (int, uint64) {
	if len(vas) > BatchWidth {
		vas = vas[:BatchWidth]
	}
	t1 := h.l1[addr.Page4K]
	ways := uint64(t1.ways)
	lat1 := t1.cfg.Latency
	var baseBuf [BatchWidth]uint64
	var wantBuf [BatchWidth]uint64
	for i, va := range vas {
		vpn := va.PageNumber(addr.Page4K)
		baseBuf[i] = t1.setBase(vpn)
		wantBuf[i] = uint64(vpn) + 1
	}
	// L1 hits accumulate in a register and flush once per call: nothing
	// observes the counter mid-batch, so the end state is bit-identical.
	var hits1 uint64
	for i, va := range vas {
		base, want := baseBuf[i], wantBuf[i]
		set := t1.tags[base : base+ways]
		hit := -1
		for j, tag := range set {
			if tag == 0 {
				break
			}
			if tag == want {
				hit = j
				break
			}
		}
		if hit >= 0 {
			pp := t1.pays[base : base+ways]
			pay := pp[hit]
			promote2(set, pp, hit)
			hits1++
			levels[i] = HitL1
			sizes[i] = addr.Page4K
			pays[i] = pay
			lats[i] = lat1
			continue
		}
		// Slow lane: count the 4K L1 miss exactly as TLB.Lookup would,
		// then run the scalar continuation for the remaining structures.
		t1.stats.Misses++
		r, s, pay, lat := h.lookupVAFrom4KMiss(va)
		if r == MissAll {
			t1.stats.Hits += hits1
			return i, lat
		}
		levels[i] = r
		sizes[i] = s
		pays[i] = pay
		lats[i] = lat
	}
	t1.stats.Hits += hits1
	return len(vas), 0
}

// LookupBatchPAs is LookupBatch fused with the payload→physical-address
// completion: pas[i] receives the translated address of each resolved
// element, and the per-element metadata collapses into aggregates — the
// L1-hit count and the summed lookup latency — which is all the simulator's
// batched loop consumes. Probe order, LRU updates, and final counters are
// identical to LookupBatch; only the output shape differs. Returns the
// resolved count n, the L1-hit count among them, the summed latency, and
// (when n < len(vas)) element n's full-miss latency.
//mehpt:hotpath
func (h *Hierarchy) LookupBatchPAs(vas []addr.VirtAddr, pas []addr.PhysAddr) (int, uint64, uint64, uint64) {
	if len(vas) > BatchWidth {
		vas = vas[:BatchWidth]
	}
	t1 := h.l1[addr.Page4K]
	ways := uint64(t1.ways)
	lat1 := t1.cfg.Latency
	// Hoisting the tag/payload arrays into locals keeps their headers in
	// registers: the compiler cannot prove the pas stores don't alias them.
	tags, pays := t1.tags, t1.pays
	var baseBuf [BatchWidth]uint64
	var wantBuf [BatchWidth]uint64
	for i, va := range vas {
		vpn := va.PageNumber(addr.Page4K)
		baseBuf[i] = t1.setBase(vpn)
		wantBuf[i] = uint64(vpn) + 1
	}
	// hits1 counts fast-lane 4K L1 hits (flushed to t1's counter once);
	// l1Slow counts slow-lane hits that still landed in an L1 structure
	// (larger page sizes) — the returned L1 total needs both.
	var hits1, l1Slow, latSum uint64
	for i, va := range vas {
		base, want := baseBuf[i], wantBuf[i]
		set := tags[base : base+ways]
		hit := -1
		for j, tag := range set {
			if tag == 0 {
				break
			}
			if tag == want {
				hit = j
				break
			}
		}
		if hit >= 0 {
			pp := pays[base : base+ways]
			pay := pp[hit]
			promote2(set, pp, hit)
			hits1++
			pas[i] = addr.Translate(va, addr.PPN(pay), addr.Page4K)
			continue
		}
		// Slow lane: count the 4K L1 miss exactly as TLB.Lookup would,
		// then run the scalar continuation for the remaining structures.
		t1.stats.Misses++
		r, s, pay, lat := h.lookupVAFrom4KMiss(va)
		if r == MissAll {
			t1.stats.Hits += hits1
			return i, hits1 + l1Slow, latSum + hits1*lat1, lat
		}
		if r == HitL1 {
			l1Slow++
		}
		latSum += lat
		pas[i] = addr.Translate(va, addr.PPN(pay), s)
	}
	t1.stats.Hits += hits1
	return len(vas), hits1 + l1Slow, latSum + hits1*lat1, 0
}

// Insert installs a completed translation (payload pay, the PPN) into both
// levels.
//mehpt:hotpath
func (h *Hierarchy) Insert(va addr.VirtAddr, s addr.PageSize, pay uint64) {
	vpn := va.PageNumber(s)
	h.l1[s].Insert(vpn, pay)
	h.l2[s].Insert(vpn, pay)
}

// Invalidate removes a translation from both levels (unmap shootdown).
func (h *Hierarchy) Invalidate(va addr.VirtAddr, s addr.PageSize) {
	vpn := va.PageNumber(s)
	h.l1[s].Invalidate(vpn)
	h.l2[s].Invalidate(vpn)
}

// Flush empties every TLB in the hierarchy, all levels and page sizes — a
// full context-switch flush in the no-ASID model. Like TLB.Flush it clears
// in place, so per-quantum flushing in the multi-tenant scheduler does not
// churn the GC.
func (h *Hierarchy) Flush() {
	for s := range h.l1 {
		h.l1[s].Flush()
		h.l2[s].Flush()
	}
}

// L1 and L2 expose the underlying structures for stats inspection.
func (h *Hierarchy) L1(s addr.PageSize) *TLB { return h.l1[s] }

// L2 returns the second-level TLB for page size s.
func (h *Hierarchy) L2(s addr.PageSize) *TLB { return h.l2[s] }
