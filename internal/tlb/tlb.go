// Package tlb models the two-level, per-page-size data TLB hierarchy of
// Table III: small fast L1 DTLBs (one per page size) backed by larger L2
// DTLBs, all set-associative with LRU replacement.
package tlb

import (
	"repro/internal/addr"
)

// Config describes one TLB structure.
type Config struct {
	Entries int
	Ways    int
	Latency uint64 // round-trip cycles
}

// Stats counts TLB behaviour.
type Stats struct {
	Hits, Misses uint64
}

// TLB is one set-associative translation lookaside buffer keyed by VPN.
//
// The tag store is a single flat set-major array (sets × ways), MRU first
// within each set, with 0 marking an empty slot (tags are stored as VPN+1).
// Empty slots only ever appear as a suffix of a set — inserts push at the
// front and invalidates compact leftward — so probes stop at the first
// zero. The flat layout keeps the steady-state lookup path free of heap
// allocation and pointer chasing; the per-set []uint64 slices it replaces
// were the TLB's entire GC footprint.
type TLB struct {
	cfg   Config
	sets  uint64
	ways  int
	tags  []uint64 // sets × ways, set-major; 0 = empty
	stats Stats
}

// New creates a TLB. A Ways value of 0 or ≥ Entries makes it fully
// associative.
func New(cfg Config) *TLB {
	if cfg.Ways <= 0 || cfg.Ways > cfg.Entries {
		cfg.Ways = cfg.Entries
	}
	sets := uint64(cfg.Entries / cfg.Ways)
	if sets == 0 {
		sets = 1
	}
	return &TLB{cfg: cfg, sets: sets, ways: cfg.Ways,
		tags: make([]uint64, sets*uint64(cfg.Ways))}
}

// set returns the tag slots of vpn's set.
func (t *TLB) set(vpn addr.VPN) []uint64 {
	base := (uint64(vpn) % t.sets) * uint64(t.ways)
	return t.tags[base : base+uint64(t.ways)]
}

// Lookup probes for vpn, updating LRU on a hit.
//mehpt:hotpath
func (t *TLB) Lookup(vpn addr.VPN) bool {
	set := t.set(vpn)
	want := uint64(vpn) + 1
	for i, tag := range set {
		if tag == 0 {
			break // empties are a suffix: the rest of the set is empty
		}
		if tag == want {
			copy(set[1:i+1], set[:i])
			set[0] = want
			t.stats.Hits++
			return true
		}
	}
	t.stats.Misses++
	return false
}

// Insert installs vpn, evicting the set's LRU entry if needed.
//mehpt:hotpath
func (t *TLB) Insert(vpn addr.VPN) {
	set := t.set(vpn)
	want := uint64(vpn) + 1
	n := len(set)
	for i, tag := range set {
		if tag == 0 {
			n = i
			break
		}
		if tag == want {
			copy(set[1:i+1], set[:i])
			set[0] = want
			return
		}
	}
	if n == len(set) {
		n-- // set full: shifting right drops the LRU tail
	}
	copy(set[1:n+1], set[:n])
	set[0] = want
}

// Invalidate removes vpn if present (TLB shootdown on unmap).
func (t *TLB) Invalidate(vpn addr.VPN) {
	set := t.set(vpn)
	want := uint64(vpn) + 1
	for i, tag := range set {
		if tag == 0 {
			return
		}
		if tag == want {
			copy(set[i:], set[i+1:])
			set[len(set)-1] = 0
			return
		}
	}
}

// Flush empties the TLB (context switch without ASIDs). The tag array is
// cleared in place — flushing must not churn the GC, since the OS model
// flushes on every context-switch event.
func (t *TLB) Flush() {
	clear(t.tags)
}

// Latency returns the hit latency.
func (t *TLB) Latency() uint64 { return t.cfg.Latency }

// Stats returns hit/miss counters.
func (t *TLB) Stats() Stats { return t.stats }

// Hierarchy is the full per-page-size two-level DTLB stack.
type Hierarchy struct {
	l1 [addr.NumPageSizes]*TLB
	l2 [addr.NumPageSizes]*TLB
}

// NewTableIII builds the paper's DTLB configuration: L1 64e/4w (4KB),
// 32e/4w (2MB), 4e (1GB) at 2 cycles; L2 1024e/12w (4KB), 1024e/12w (2MB),
// 16e/4w (1GB) at 12 cycles.
func NewTableIII() *Hierarchy {
	h := &Hierarchy{}
	h.l1[addr.Page4K] = New(Config{Entries: 64, Ways: 4, Latency: 2})
	h.l1[addr.Page2M] = New(Config{Entries: 32, Ways: 4, Latency: 2})
	h.l1[addr.Page1G] = New(Config{Entries: 4, Ways: 0, Latency: 2})
	h.l2[addr.Page4K] = New(Config{Entries: 1024, Ways: 12, Latency: 12})
	h.l2[addr.Page2M] = New(Config{Entries: 1024, Ways: 12, Latency: 12})
	h.l2[addr.Page1G] = New(Config{Entries: 16, Ways: 4, Latency: 12})
	return h
}

// Result describes where a TLB lookup was satisfied.
type Result int

// Lookup outcomes.
const (
	MissAll Result = iota
	HitL1
	HitL2
)

// Lookup probes L1 then L2 for va at page size s, returning the outcome and
// the lookup latency. An L2 hit refills L1.
//mehpt:hotpath
func (h *Hierarchy) Lookup(va addr.VirtAddr, s addr.PageSize) (Result, uint64) {
	vpn := va.PageNumber(s)
	if h.l1[s].Lookup(vpn) {
		return HitL1, h.l1[s].Latency()
	}
	if h.l2[s].Lookup(vpn) {
		h.l1[s].Insert(vpn)
		return HitL2, h.l1[s].Latency() + h.l2[s].Latency()
	}
	return MissAll, h.l1[s].Latency() + h.l2[s].Latency()
}

// Insert installs a completed translation into both levels.
//mehpt:hotpath
func (h *Hierarchy) Insert(va addr.VirtAddr, s addr.PageSize) {
	vpn := va.PageNumber(s)
	h.l1[s].Insert(vpn)
	h.l2[s].Insert(vpn)
}

// Invalidate removes a translation from both levels (unmap shootdown).
func (h *Hierarchy) Invalidate(va addr.VirtAddr, s addr.PageSize) {
	vpn := va.PageNumber(s)
	h.l1[s].Invalidate(vpn)
	h.l2[s].Invalidate(vpn)
}

// Flush empties every TLB in the hierarchy, all levels and page sizes — a
// full context-switch flush in the no-ASID model. Like TLB.Flush it clears
// in place, so per-quantum flushing in the multi-tenant scheduler does not
// churn the GC.
func (h *Hierarchy) Flush() {
	for s := range h.l1 {
		h.l1[s].Flush()
		h.l2[s].Flush()
	}
}

// L1 and L2 expose the underlying structures for stats inspection.
func (h *Hierarchy) L1(s addr.PageSize) *TLB { return h.l1[s] }

// L2 returns the second-level TLB for page size s.
func (h *Hierarchy) L2(s addr.PageSize) *TLB { return h.l2[s] }
