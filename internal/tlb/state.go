package tlb

import "repro/internal/addr"

// VisitEntries calls f for every VPN currently resident in the TLB. Tags
// store VPN+1 with 0 marking empty, and empties are a suffix of each set.
func (t *TLB) VisitEntries(f func(vpn addr.VPN)) {
	for s := uint64(0); s < t.sets; s++ {
		base := s * uint64(t.ways)
		for _, tag := range t.tags[base : base+uint64(t.ways)] {
			if tag == 0 {
				break
			}
			f(addr.VPN(tag - 1))
		}
	}
}

// VisitEntries calls f for every resident translation in the hierarchy,
// tagged with its page size and level (1 or 2). The scrubber uses it to
// prove every cached translation still resolves in the bound page table.
func (h *Hierarchy) VisitEntries(f func(vpn addr.VPN, s addr.PageSize, level int)) {
	for s := range h.l1 {
		size := addr.PageSize(s)
		h.l1[s].VisitEntries(func(vpn addr.VPN) { f(vpn, size, 1) })
		h.l2[s].VisitEntries(func(vpn addr.VPN) { f(vpn, size, 2) })
	}
}
