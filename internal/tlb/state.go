package tlb

import "repro/internal/addr"

// VisitEntries calls f for every VPN currently resident in the TLB along
// with its cached payload. Tags store VPN+1 with 0 marking empty, and
// empties are a suffix of each set.
func (t *TLB) VisitEntries(f func(vpn addr.VPN, pay uint64)) {
	for s := uint64(0); s < t.sets; s++ {
		base := s * uint64(t.ways)
		for i, tag := range t.tags[base : base+uint64(t.ways)] {
			if tag == 0 {
				break
			}
			f(addr.VPN(tag-1), t.pays[base+uint64(i)])
		}
	}
}

// VisitEntries calls f for every resident translation in the hierarchy,
// tagged with its page size, level (1 or 2), and cached payload. The
// scrubber uses it to prove every cached translation still resolves in the
// bound page table — including that the cached PPN matches what the table
// resolves today.
func (h *Hierarchy) VisitEntries(f func(vpn addr.VPN, s addr.PageSize, level int, pay uint64)) {
	for s := range h.l1 {
		size := addr.PageSize(s)
		h.l1[s].VisitEntries(func(vpn addr.VPN, pay uint64) { f(vpn, size, 1, pay) })
		h.l2[s].VisitEntries(func(vpn addr.VPN, pay uint64) { f(vpn, size, 2, pay) })
	}
}
