package scratchcheck

func sink(vals ...any) {
	_ = vals
}

//mehpt:hotpath
func Spread(xs []any) {
	sink(xs...)
}
