package runner_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/addr"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestMapPreservesSubmissionOrder: results land at their job's index no
// matter which worker finishes first.
func TestMapPreservesSubmissionOrder(t *testing.T) {
	jobs := make([]int, 500)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		got := runner.Map(workers, jobs, func(i, j int) int {
			if i != j {
				t.Errorf("do(%d) received job %d", i, j)
			}
			return j * 3
		})
		for i, r := range got {
			if r != i*3 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, r, i*3)
			}
		}
	}
}

// TestMapRunsEveryJobOnce: the work-stealing cursor must claim each index
// exactly once even under heavy contention (run with -race).
func TestMapRunsEveryJobOnce(t *testing.T) {
	const n = 10_000
	var calls [n]atomic.Int32
	jobs := make([]struct{}, n)
	runner.Map(32, jobs, func(i int, _ struct{}) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("job %d executed %d times", i, c)
		}
	}
}

// TestMapEmptyAndSingle: degenerate inputs.
func TestMapEmptyAndSingle(t *testing.T) {
	if got := runner.Map(8, nil, func(i int, j int) int { return j }); len(got) != 0 {
		t.Fatalf("empty jobs produced %d results", len(got))
	}
	got := runner.Map(8, []int{41}, func(i, j int) int { return j + 1 })
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("single job: %v", got)
	}
}

func TestWorkersDefault(t *testing.T) {
	if runner.Workers(3) != 3 {
		t.Error("explicit worker count not honoured")
	}
	if runner.Workers(0) < 1 || runner.Workers(-1) < 1 {
		t.Error("default worker count must be at least 1")
	}
}

// TestDeriveSeed: same identity → same seed; any single-field change →
// different seed; field boundaries are separated.
func TestDeriveSeed(t *testing.T) {
	base := runner.DeriveSeed(42, "BFS", "ME-HPT", false, "")
	if base != runner.DeriveSeed(42, "BFS", "ME-HPT", false, "") {
		t.Error("DeriveSeed not deterministic")
	}
	variants := []int64{
		runner.DeriveSeed(43, "BFS", "ME-HPT", false, ""),
		runner.DeriveSeed(42, "GUPS", "ME-HPT", false, ""),
		runner.DeriveSeed(42, "BFS", "ECPT", false, ""),
		runner.DeriveSeed(42, "BFS", "ME-HPT", true, ""),
		runner.DeriveSeed(42, "BFS", "ME-HPT", false, "ip-only"),
		// Field-boundary ambiguity: content split differently across fields.
		runner.DeriveSeed(42, "BFSM", "E-HPT", false, ""),
	}
	seen := map[int64]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collides with a previous seed", i)
		}
		seen[v] = true
	}
}

// simSummary is the comparable subset of sim.Result (the full struct carries
// organization-specific pointers that differ between runs by identity).
type simSummary struct {
	Org          sim.Org
	Workload     string
	THP          bool
	Failed       bool
	Cycles       uint64
	Accesses     uint64
	OSCycles     uint64
	PTPeakBytes  uint64
	PTFinalBytes uint64
	PTMoves      uint64
}

func summarize(r sim.Result) simSummary {
	return simSummary{
		Org: r.Org, Workload: r.Workload, THP: r.THP, Failed: r.Failed,
		Cycles: r.Cycles, Accesses: r.Accesses, OSCycles: r.OSCycles,
		PTPeakBytes: r.PTPeakBytes, PTFinalBytes: r.PTFinalBytes,
		PTMoves: r.PTMoves,
	}
}

// matrix builds a small but genuine slice of the paper's run matrix: three
// workloads × three organizations × THP off/on, populate-only.
func matrix(t *testing.T) []sim.Config {
	t.Helper()
	var cfgs []sim.Config
	for _, app := range []string{"BFS", "GUPS", "MUMmer"} {
		spec, err := workload.ByName(app, 512)
		if err != nil {
			t.Fatal(err)
		}
		for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
			for _, thp := range []bool{false, true} {
				cfgs = append(cfgs, sim.Config{
					Org: org, Workload: spec, THP: thp,
					Populate: true, Accesses: 20_000,
					Seed:     runner.DeriveSeed(42, app, org.String(), thp, ""),
					MemBytes: 2 * addr.GB,
				})
			}
		}
	}
	return cfgs
}

// TestSimMatrixDeterministicAcrossWorkerCounts: the same job list must
// produce identical results at every worker count. Run under -race this also
// audits the sim/table ownership boundary: each job builds its own machine
// and RNGs, so no write may be visible across workers.
func TestSimMatrixDeterministicAcrossWorkerCounts(t *testing.T) {
	cfgs := matrix(t)
	run := func(workers int) []simSummary {
		rs := runner.Map(workers, cfgs, func(_ int, cfg sim.Config) sim.Result {
			return sim.Run(cfg)
		})
		out := make([]simSummary, len(rs))
		for i, r := range rs {
			out[i] = summarize(r)
		}
		return out
	}
	want := run(1)
	for _, r := range want {
		if r.Failed {
			t.Fatalf("%s/%v/THP=%v failed", r.Workload, r.Org, r.THP)
		}
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d job %d diverges:\n got %+v\nwant %+v",
					workers, i, got[i], want[i])
			}
		}
	}
}
