package runner

// Watchdog proof obligations: success passes through untouched, transient
// failures retry on the doubling backoff schedule, permanent failures and
// exhausted budgets stop, deadlines surface ErrDeadline without waiting
// for the job, and stragglers get flagged exactly once per attempt. Time
// is faked through the sleep/after seams, so none of these tests wait on a
// real clock.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestZeroValueRunsOnce(t *testing.T) {
	calls := 0
	var w Watchdog
	if err := w.Run(func(int) error { calls++; return nil }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 1 {
		t.Fatalf("job ran %d times", calls)
	}
	wantErr := errors.New("boom")
	if err := w.Run(func(int) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	calls := 0
	w := Watchdog{
		Retries: 3,
		Backoff: 10 * time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	err := w.Run(func(int) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 3 {
		t.Fatalf("job ran %d times, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (doubling schedule)", i, slept[i], want[i])
		}
	}
}

func TestRetriesExhausted(t *testing.T) {
	calls := 0
	boom := errors.New("still broken")
	w := Watchdog{Retries: 2, Sleep: func(time.Duration) {}}
	err := w.Run(func(int) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	if calls != 3 {
		t.Fatalf("job ran %d times, want 3", calls)
	}
}

func TestPermanentErrorStopsRetries(t *testing.T) {
	calls := 0
	fatal := errors.New("corrupt state")
	w := Watchdog{
		Retries:   5,
		Sleep:     func(time.Duration) {},
		Transient: func(err error) bool { return !errors.Is(err, fatal) },
	}
	if err := w.Run(func(int) error { calls++; return fatal }); !errors.Is(err, fatal) {
		t.Fatalf("got %v", err)
	}
	if calls != 1 {
		t.Fatalf("permanent failure retried: %d calls", calls)
	}
}

func TestDeadlineKillsAttempt(t *testing.T) {
	fired := make(chan time.Time, 1)
	fired <- time.Time{} // deadline pops immediately
	release := make(chan struct{})
	defer close(release)
	w := Watchdog{
		Deadline: time.Second,
		after:    func(time.Duration) <-chan time.Time { return fired },
	}
	err := w.Run(func(int) error { <-release; return nil })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestDeadlineRetriesThenSucceeds(t *testing.T) {
	var succeeded int32
	release := make(chan struct{})
	defer close(release)
	issued := 0
	w := Watchdog{
		Deadline: time.Second,
		Retries:  1,
		Sleep:    func(time.Duration) {},
		after: func(time.Duration) <-chan time.Time {
			// Count our own invocations rather than reading attempt: the job
			// goroutine increments it concurrently with this call.
			ch := make(chan time.Time, 1)
			issued++
			if issued == 1 { // only the first attempt's deadline fires
				ch <- time.Time{}
			}
			return ch
		},
	}
	err := w.Run(func(attempt int) error {
		if attempt == 1 {
			<-release // hang: the fired deadline abandons this attempt
			return nil
		}
		// Atomic: the abandoned first attempt's goroutine may still be live
		// while this one runs.
		atomic.StoreInt32(&succeeded, int32(attempt))
		return nil
	})
	if err != nil {
		t.Fatalf("retry after deadline failed: %v", err)
	}
	if got := atomic.LoadInt32(&succeeded); got != 2 {
		t.Fatalf("attempt %d succeeded, want the retry (2)", got)
	}
}

func TestStragglerFlaggedOnce(t *testing.T) {
	straggleCh := make(chan time.Time, 2)
	straggleCh <- time.Time{}
	straggleCh <- time.Time{} // a second pop must NOT re-flag
	proceed := make(chan struct{})
	var flagged []int
	w := Watchdog{
		StragglerAfter: time.Second,
		OnStraggler: func(attempt int, _ time.Duration) {
			flagged = append(flagged, attempt)
			close(proceed)
		},
		after: func(time.Duration) <-chan time.Time { return straggleCh },
	}
	err := w.Run(func(int) error { <-proceed; return nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(flagged) != 1 || flagged[0] != 1 {
		t.Fatalf("straggler flagged %v, want exactly [1]", flagged)
	}
}
