package runner

// The watchdog supervises real executions of deterministic jobs. The
// simulation itself never reads the clock — wall-time here only decides
// when to give up on or retry a job, never what the job computes, so
// supervised runs keep the determinism contract: a job that completes
// returns the same bits whether or not a watchdog was watching.

import (
	"errors"
	"fmt"
	"time"
)

// ErrDeadline reports a job attempt that exceeded its watchdog deadline.
var ErrDeadline = errors.New("runner: job exceeded its deadline")

// Watchdog bounds and retries one job: a per-attempt deadline, a straggler
// callback when an attempt runs suspiciously long, and bounded
// retry-with-backoff for transient failures. The zero value runs the job
// once, inline, unbounded.
type Watchdog struct {
	// Deadline bounds each attempt; 0 means unbounded. An attempt that
	// exceeds it fails with ErrDeadline. The attempt's goroutine is
	// abandoned, not preempted — simulator jobs are pure CPU loops with no
	// cancellation points, so the stuck goroutine finishes (or not) into a
	// buffered channel and is collected; its result is discarded.
	Deadline time.Duration
	// StragglerAfter, when positive, invokes OnStraggler once per attempt
	// that is still running after this long — the slow-straggler signal,
	// softer than a deadline kill.
	StragglerAfter time.Duration
	OnStraggler    func(attempt int, running time.Duration)
	// Retries is the number of additional attempts after the first.
	Retries int
	// Backoff is the wait before retry k (1-based): Backoff << (k-1),
	// doubling per retry. 0 retries immediately.
	Backoff time.Duration
	// Transient gates retries: only errors it reports true for are
	// retried. nil treats every error (ErrDeadline included) as transient.
	Transient func(error) bool
	// Sleep is the backoff seam; nil means time.Sleep. Tests inject a
	// recorder to verify the schedule without waiting it out.
	Sleep func(time.Duration)

	// after is the timer seam for deadline/straggler watches; nil means
	// time.After. In-package tests substitute controllable channels.
	after func(time.Duration) <-chan time.Time
}

// Run executes job under the watchdog's policy and returns the first
// permanent outcome: nil on success, the job's error when it is not
// transient or retries are exhausted, ErrDeadline (wrapped, with the
// attempt number) when every attempt timed out. The job receives its
// 1-based attempt number — an abandoned attempt's goroutine may still be
// live when its successor starts, so the number is the only reliable way
// for a job to know which attempt it is.
func (w Watchdog) Run(job func(attempt int) error) error {
	attempts := 1 + w.Retries
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			w.sleep(w.Backoff << uint(attempt-2))
		}
		err = w.runOnce(attempt, job)
		if err == nil {
			return nil
		}
		if w.Transient != nil && !w.Transient(err) {
			return err
		}
	}
	return fmt.Errorf("runner: %d attempt(s) failed, last: %w", attempts, err)
}

func (w Watchdog) runOnce(attempt int, job func(attempt int) error) error {
	if w.Deadline <= 0 && (w.StragglerAfter <= 0 || w.OnStraggler == nil) {
		return job(attempt)
	}
	done := make(chan error, 1) // buffered: an abandoned attempt must not leak
	start := w.now()
	go func() { done <- job(attempt) }()

	var deadline, straggle <-chan time.Time
	if w.Deadline > 0 {
		deadline = w.timerAfter(w.Deadline)
	}
	if w.StragglerAfter > 0 && w.OnStraggler != nil {
		straggle = w.timerAfter(w.StragglerAfter)
	}
	for {
		select {
		case err := <-done:
			return err
		case <-straggle:
			w.OnStraggler(attempt, w.since(start))
			straggle = nil // once per attempt
		case <-deadline:
			return fmt.Errorf("%w: attempt %d ran past %v", ErrDeadline, attempt, w.Deadline)
		}
	}
}

func (w Watchdog) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if w.Sleep != nil {
		w.Sleep(d)
		return
	}
	time.Sleep(d) //mehpt:allow detrand -- retry backoff pacing; never feeds simulation state
}

func (w Watchdog) timerAfter(d time.Duration) <-chan time.Time {
	if w.after != nil {
		return w.after(d)
	}
	return time.After(d) //mehpt:allow detrand -- watchdog deadline/straggler timers; never feed simulation state
}

func (w Watchdog) now() time.Time {
	if w.after != nil {
		return time.Time{} // under a fake clock, elapsed time is not meaningful
	}
	return time.Now() //mehpt:allow detrand -- straggler elapsed-time reporting; never feeds simulation state
}

func (w Watchdog) since(start time.Time) time.Duration {
	if w.after != nil {
		return 0
	}
	return time.Since(start) //mehpt:allow detrand -- straggler elapsed-time reporting; never feeds simulation state
}
