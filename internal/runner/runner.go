// Package runner executes independent experiment jobs on a bounded worker
// pool. The paper's evaluation matrix — 11 workloads × {Radix, ECPT, ME-HPT}
// × {THP on/off} plus ablations — is embarrassingly parallel: every run owns
// a private sim.Machine, so fanning the matrix out over GOMAXPROCS workers
// reproduces it ~NumCPU× faster with bit-identical results.
//
// Determinism contract: results depend only on each job's identity, never on
// worker count, scheduling, or completion order. Two rules make that hold:
//
//  1. Results are collected in submission order (Map's output slice is
//     indexed by job position, not completion time).
//  2. Every job derives its RNG seed from its identity via DeriveSeed
//     rather than from any shared or sequential state.
//
// Ownership rule (race safety): the page tables (mehpt, ecpt, cuckoo) hold
// *rand.Rand instances, which are not goroutine-safe. A job must construct
// everything it mutates — machine, tables, RNGs — inside its own do()
// invocation and must not share a *rand.Rand (e.g. via mehpt.Config.Rand or
// ecpt.Config.Rand) across jobs. Configs shared across jobs must be
// read-only. sim.NewMachine copies its Config and creates per-machine RNGs
// from Config.Seed, so sharing a *mehpt.Config ablation override with a nil
// Rand across jobs is safe; see DESIGN.md "RNG ownership".
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n if positive, otherwise
// GOMAXPROCS (the default for -parallel 0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs do over every job on min(workers, len(jobs)) goroutines and
// returns the results in submission order. workers <= 0 means GOMAXPROCS;
// workers == 1 degenerates to a plain serial loop on the calling goroutine.
// do receives the job's submission index alongside the job.
//
// Jobs are claimed from a shared atomic cursor (work-stealing), so uneven
// job durations do not idle workers. Each output slot is written by exactly
// one goroutine, and the WaitGroup provides the happens-before edge that
// publishes all writes to the caller.
func Map[J, R any](workers int, jobs []J, do func(i int, job J) R) []R {
	workers = Workers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]R, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			out[i] = do(i, j)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i] = do(i, jobs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Result is the per-job envelope MapSafe returns: the job's value when it
// completed, its error when it returned one, and the recovered panic value
// plus stack trace when it panicked. Exactly one of Err/Panic is set on
// failure; both are nil/empty on success.
type Result[R any] struct {
	Value R
	Err   error
	// Panic is the recovered panic value (nil if the job did not panic) and
	// Stack the goroutine stack captured at recovery time.
	Panic interface{}
	Stack string
}

// Failed reports whether the job errored or panicked.
func (r Result[R]) Failed() bool { return r.Err != nil || r.Panic != nil }

// FailureError returns the job's failure as an error: Err as-is, a panic
// wrapped with its message, or nil for a successful job.
func (r Result[R]) FailureError() error {
	if r.Err != nil {
		return r.Err
	}
	if r.Panic != nil {
		return fmt.Errorf("panic: %v", r.Panic)
	}
	return nil
}

// MapSafe is Map with per-job fault isolation: each do invocation runs
// under a recover, so one panicking job cannot take down the whole matrix —
// the remaining jobs complete and the caller gets partial results plus a
// precise failure record (value, error, panic trace) per job.
//
// abort, if non-nil, is checked before claiming each job; once set, workers
// stop claiming and the unclaimed jobs' envelopes report a canceled error.
// Setting it from a failure callback implements fail-fast. Note that which
// jobs were already in flight when abort flipped depends on scheduling, so
// fail-fast runs are NOT bit-identical across worker counts — callers that
// need the determinism contract leave abort nil (the default).
func MapSafe[J, R any](workers int, jobs []J, abort *atomic.Bool, do func(i int, job J) (R, error)) []Result[R] {
	return Map(workers, jobs, func(i int, job J) (res Result[R]) {
		if abort != nil && abort.Load() {
			res.Err = fmt.Errorf("runner: job %d canceled (fail-fast abort)", i)
			return res
		}
		defer func() {
			if r := recover(); r != nil {
				res.Panic = r
				res.Stack = string(debug.Stack())
			}
		}()
		res.Value, res.Err = do(i, job)
		return res
	})
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche that turns
// sequential or structured inputs into well-distributed 64-bit values.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fieldSep separates hashed fields so ("ab","c") and ("a","bc") derive
// different seeds.
const fieldSep = 0x1F

// DeriveSeed derives one job's RNG seed from the suite's base seed and the
// job's identity (workload, organization, THP, ablation variant). The
// derivation is a splitmix64 absorption over the identity fields, so any
// single-field difference yields an unrelated seed while the same identity
// always yields the same seed — the property that makes parallel runs
// bit-identical to serial ones.
func DeriveSeed(base int64, workload, org string, thp bool, ablation string) int64 {
	h := splitmix64(uint64(base))
	for _, s := range []string{workload, org, ablation} {
		for i := 0; i < len(s); i++ {
			h = splitmix64(h ^ uint64(s[i]))
		}
		h = splitmix64(h ^ fieldSep)
	}
	if thp {
		h = splitmix64(h ^ 0x544850) // "THP"
	}
	return int64(h)
}

// DeriveSubSeed extends the seed tree one level below a job: from the job's
// own seed, a domain label ("proc", "sched", "shared", "core"), and an
// index within that domain it derives an unrelated seed. The multi-tenant
// machine uses it to give every simulated process, the scheduler, and the
// shared-region manager a private generator whose seed is a pure function
// of identity — never of host worker count or simulated core topology —
// which is what keeps fingerprints bit-identical across both axes.
func DeriveSubSeed(base int64, domain string, index uint64) int64 {
	h := splitmix64(uint64(base))
	for i := 0; i < len(domain); i++ {
		h = splitmix64(h ^ uint64(domain[i]))
	}
	h = splitmix64(h ^ fieldSep)
	h = splitmix64(h ^ index)
	return int64(h)
}
