// Package directory applies the paper's hashing techniques to the second
// use case Section VIII names: cache-coherence directories. SecDir-style
// designs build per-core private directories on cuckoo hashing; the paper
// notes its in-place and per-way resizing "can be directly applied", with
// the directory growing as more distinct lines become shared and shrinking
// as they die.
//
// The directory maps physical line addresses to sharer state (a presence
// bitmap plus an owner for modified lines), backed by the elastic cuckoo
// table — so it inherits gradual resizing and bounded-probe lookups.
package directory

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/cuckoo"
)

// MaxCores bounds the sharer bitmap to the value word's low bits.
const MaxCores = 48

// State is one line's directory entry.
type State struct {
	Sharers  uint64 // presence bitmap, bit c = core c holds the line
	Owner    int    // owning core when Modified; -1 otherwise
	Modified bool
}

// pack encodes State into a cuckoo value word: sharers in bits [0,48),
// owner in bits [48,56), modified in bit 56.
func pack(s State) uint64 {
	v := s.Sharers & ((1 << MaxCores) - 1)
	owner := s.Owner
	if owner < 0 {
		owner = 0xFF
	}
	v |= uint64(owner&0xFF) << MaxCores
	if s.Modified {
		v |= 1 << 56
	}
	return v
}

func unpack(v uint64) State {
	s := State{
		Sharers:  v & ((1 << MaxCores) - 1),
		Modified: v&(1<<56) != 0,
	}
	owner := int(v>>MaxCores) & 0xFF
	if owner == 0xFF {
		s.Owner = -1
	} else {
		s.Owner = owner
	}
	return s
}

// Directory is an elastic cuckoo coherence directory. Not safe for
// concurrent use (a real design banks it; wrap with cuckoo.ConcurrentTable
// semantics if needed).
type Directory struct {
	t     *cuckoo.Table
	cores int
	stats Stats
}

// Stats counts coherence traffic.
type Stats struct {
	Reads, Writes, Evictions uint64
	Invalidations            uint64 // sharer invalidations sent on writes
}

// New creates a directory for the given core count.
func New(cores int, seed uint64) *Directory {
	if cores <= 0 || cores > MaxCores {
		panic(fmt.Sprintf("directory: cores %d out of (0,%d]", cores, MaxCores))
	}
	return &Directory{
		t: cuckoo.New(cuckoo.Config{
			Ways:           3,
			InitialEntries: 256,
			UpsizeAt:       0.6,
			DownsizeAt:     0.2,
			MaxKicks:       32,
			HashSeed:       seed,
			Rand:           rand.New(rand.NewSource(int64(seed) + 1)),
		}),
		cores: cores,
	}
}

// lineKey is the 64B-line address tag.
func lineKey(pa addr.PhysAddr) uint64 { return uint64(pa) >> 6 }

// Lookup returns the directory state of the line containing pa.
func (d *Directory) Lookup(pa addr.PhysAddr) (State, bool) {
	v, ok := d.t.Lookup(lineKey(pa))
	if !ok {
		return State{}, false
	}
	return unpack(v), true
}

// Read records core acquiring the line in shared state. A modified line is
// downgraded (the owner becomes a sharer).
func (d *Directory) Read(pa addr.PhysAddr, core int) error {
	d.check(core)
	d.stats.Reads++
	s, ok := d.Lookup(pa)
	if !ok {
		s = State{Owner: -1}
	}
	if s.Modified {
		s.Modified = false
		s.Owner = -1
	}
	s.Sharers |= 1 << uint(core)
	_, err := d.t.Insert(lineKey(pa), pack(s))
	return err
}

// Write records core acquiring the line exclusively, invalidating other
// sharers and returning how many invalidations were sent.
func (d *Directory) Write(pa addr.PhysAddr, core int) (int, error) {
	d.check(core)
	d.stats.Writes++
	s, _ := d.Lookup(pa)
	inv := 0
	for m := s.Sharers &^ (1 << uint(core)); m != 0; m &= m - 1 {
		inv++
	}
	d.stats.Invalidations += uint64(inv)
	ns := State{Sharers: 1 << uint(core), Owner: core, Modified: true}
	_, err := d.t.Insert(lineKey(pa), pack(ns))
	return inv, err
}

// Evict records core dropping the line; when the last sharer leaves, the
// entry is deleted and the directory may downsize.
func (d *Directory) Evict(pa addr.PhysAddr, core int) bool {
	d.check(core)
	d.stats.Evictions++
	s, ok := d.Lookup(pa)
	if !ok || s.Sharers&(1<<uint(core)) == 0 {
		return false
	}
	s.Sharers &^= 1 << uint(core)
	if s.Owner == core {
		s.Owner = -1
		s.Modified = false
	}
	if s.Sharers == 0 {
		d.t.Delete(lineKey(pa))
		return true
	}
	//mehpt:allow errwrap -- shrinking update of an existing key cannot grow the table
	d.t.Insert(lineKey(pa), pack(s))
	return true
}

// Lines returns the number of tracked lines.
func (d *Directory) Lines() uint64 { return d.t.Len() }

// EntriesPerWay exposes the elastic sizing, mirroring the HPT metrics.
func (d *Directory) EntriesPerWay() uint64 { return d.t.EntriesPerWay() }

// TableStats exposes the underlying cuckoo behaviour (upsizes, kicks).
func (d *Directory) TableStats() cuckoo.Stats { return d.t.Stats() }

// Stats returns coherence counters.
func (d *Directory) Stats() Stats { return d.stats }

func (d *Directory) check(core int) {
	if core < 0 || core >= d.cores {
		panic(fmt.Sprintf("directory: core %d out of range [0,%d)", core, d.cores))
	}
}
