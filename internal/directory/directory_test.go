package directory

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

func line(i int) addr.PhysAddr { return addr.PhysAddr(i * 64) }

func TestReadWriteProtocol(t *testing.T) {
	d := New(8, 1)
	// Two readers share the line.
	if err := d.Read(line(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(line(1), 3); err != nil {
		t.Fatal(err)
	}
	s, ok := d.Lookup(line(1))
	if !ok || s.Sharers != 0b1001 || s.Modified {
		t.Fatalf("state = %+v,%v", s, ok)
	}
	// A writer invalidates both and becomes owner.
	inv, err := d.Write(line(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if inv != 2 {
		t.Errorf("invalidations = %d, want 2", inv)
	}
	s, _ = d.Lookup(line(1))
	if !s.Modified || s.Owner != 5 || s.Sharers != 1<<5 {
		t.Fatalf("after write: %+v", s)
	}
	// A later read downgrades the owner.
	d.Read(line(1), 0)
	s, _ = d.Lookup(line(1))
	if s.Modified || s.Owner != -1 || s.Sharers != (1<<5|1) {
		t.Fatalf("after downgrade: %+v", s)
	}
}

func TestWriteByExistingSharerInvalidatesOthersOnly(t *testing.T) {
	d := New(4, 2)
	d.Read(line(9), 0)
	d.Read(line(9), 1)
	inv, _ := d.Write(line(9), 0)
	if inv != 1 {
		t.Errorf("invalidations = %d, want 1 (self excluded)", inv)
	}
}

func TestEvictionLifecycle(t *testing.T) {
	d := New(8, 3)
	d.Read(line(2), 1)
	d.Read(line(2), 2)
	if !d.Evict(line(2), 1) {
		t.Fatal("evict of sharer failed")
	}
	s, ok := d.Lookup(line(2))
	if !ok || s.Sharers != 1<<2 {
		t.Fatalf("state after evict: %+v,%v", s, ok)
	}
	if !d.Evict(line(2), 2) {
		t.Fatal("last evict failed")
	}
	if _, ok := d.Lookup(line(2)); ok {
		t.Error("entry survived last eviction")
	}
	if d.Evict(line(2), 2) {
		t.Error("evict of untracked line succeeded")
	}
	if d.Lines() != 0 {
		t.Errorf("Lines = %d", d.Lines())
	}
}

// TestElasticGrowthAndShrink: the directory resizes like the page tables —
// the Section VIII point.
func TestElasticGrowthAndShrink(t *testing.T) {
	d := New(16, 4)
	const n = 20000
	for i := 0; i < n; i++ {
		if err := d.Read(line(i), i%16); err != nil {
			t.Fatal(err)
		}
	}
	if d.TableStats().Upsizes == 0 {
		t.Error("no upsizes tracking 20k lines")
	}
	grown := d.EntriesPerWay()
	for i := 0; i < n; i++ {
		d.Evict(line(i), i%16)
	}
	if d.Lines() != 0 {
		t.Fatalf("lines = %d after full eviction", d.Lines())
	}
	// Trigger remaining gradual downsizes with a little churn.
	for i := 0; i < 2000; i++ {
		d.Read(line(i), 0)
		d.Evict(line(i), 0)
	}
	if d.EntriesPerWay() >= grown {
		t.Errorf("directory did not shrink: %d -> %d", grown, d.EntriesPerWay())
	}
}

func TestPackUnpackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		s := State{
			Sharers:  rng.Uint64() & ((1 << MaxCores) - 1),
			Owner:    rng.Intn(MaxCores+1) - 1, // -1..47
			Modified: rng.Intn(2) == 0,
		}
		got := unpack(pack(s))
		if got != s {
			t.Fatalf("round trip: %+v -> %+v", s, got)
		}
	}
}

func TestBadCorePanics(t *testing.T) {
	d := New(4, 6)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core accepted")
		}
	}()
	d.Read(line(0), 4)
}
