// Package hashfn provides the seeded hash family used by the cuckoo page
// tables. The paper's hardware uses CRC units (Table III: 2-cycle latency);
// we use a CRC-64 over the virtual page number mixed with a per-way seed,
// which gives the same uniform-distribution properties the cuckoo analysis
// relies on.
package hashfn

import "hash/crc64"

// Latency is the hash-unit latency in cycles charged by the timing model
// (Table III: "Hash functions: CRC, Latency: 2 cyc").
const Latency = 2

var crcTable = crc64.MakeTable(crc64.ECMA)

// Func is a seeded hash function over 64-bit keys (virtual page numbers).
// Two Funcs with different seeds behave as independent hash functions, which
// is what W-way cuckoo hashing requires.
type Func struct {
	seed uint64
}

// New returns the hash function with the given seed. Distinct ways of a
// cuckoo table must use distinct seeds.
func New(seed uint64) Func { return Func{seed: seed} }

// Seed returns the seed this function was created with.
func (f Func) Seed() uint64 { return f.seed }

// Hash returns the 64-bit hash of key.
func (f Func) Hash(key uint64) uint64 {
	var buf [16]byte
	x := key ^ (f.seed * 0x9E3779B97F4A7C15)
	for i := 0; i < 8; i++ {
		buf[i] = byte(x >> (8 * i))
		buf[i+8] = byte(f.seed >> (8 * i))
	}
	h := crc64.Checksum(buf[:], crcTable)
	// Final avalanche (splitmix64 finalizer) so low bits are well mixed even
	// for sequential keys; cuckoo tables index with the low bits of the key.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// Index returns the hash of key reduced modulo size. Size must be a power of
// two; the reduction is a mask, mirroring the shift/mask hardware in the
// paper's L2P path.
func (f Func) Index(key, size uint64) uint64 {
	return f.Hash(key) & (size - 1)
}

// Family returns n independent hash functions derived from a base seed,
// one per cuckoo way.
func Family(base uint64, n int) []Func {
	fs := make([]Func, n)
	for i := range fs {
		fs[i] = New(base + uint64(i)*0x6A09E667F3BCC909 + 1)
	}
	return fs
}
