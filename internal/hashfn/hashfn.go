// Package hashfn provides the seeded hash family used by the cuckoo page
// tables. The paper's hardware uses CRC units (Table III: 2-cycle latency);
// we use a CRC-64 over the virtual page number mixed with a per-way seed,
// which gives the same uniform-distribution properties the cuckoo analysis
// relies on.
//
// # Hot-path layout
//
// Hash is the single most expensive operation on the simulator's
// translation path: every table probe hashes the key once per way, and the
// CRC dominates. Two structural properties keep that cost down without
// changing a single hash value (the determinism contract pins them):
//
//   - The CRC runs inline over the two 64-bit words, with no byte-buffer
//     materialization and no call into hash/crc64's table dispatch.
//   - CRC-64 over a fixed-length message is an affine map over GF(2):
//     crc(a ⊕ b) = crc(a) ⊕ crc(b) ⊕ crc(0). For two functions of a family,
//     the 16-byte CRC inputs for the same key differ by a key-independent
//     constant, so their raw CRCs differ by a precomputable constant too.
//     A Mixer exploits this: one CRC pass per key, plus one XOR and one
//     finalizer per additional way (see NewMixer).
package hashfn

import "hash/crc64"

// Latency is the hash-unit latency in cycles charged by the timing model
// (Table III: "Hash functions: CRC, Latency: 2 cyc").
const Latency = 2

var crcTable = crc64.MakeTable(crc64.ECMA)

// seedMul is the multiplier folding the seed into the key word (golden
// ratio, as in splitmix64 seeding).
const seedMul = 0x9E3779B97F4A7C15

// Func is a seeded hash function over 64-bit keys (virtual page numbers).
// Two Funcs with different seeds behave as independent hash functions, which
// is what W-way cuckoo hashing requires.
type Func struct {
	seed uint64
}

// New returns the hash function with the given seed. Distinct ways of a
// cuckoo table must use distinct seeds.
func New(seed uint64) Func { return Func{seed: seed} }

// Seed returns the seed this function was created with.
func (f Func) Seed() uint64 { return f.seed }

// crcWords computes crc64.Checksum(le64(a) || le64(b), ECMA) without
// materializing the byte buffer. TestCRCWordsMatchesChecksum pins the
// equivalence.
func crcWords(a, b uint64) uint64 {
	crc := ^uint64(0)
	for i := 0; i < 8; i++ {
		crc = crcTable[byte(crc)^byte(a)] ^ (crc >> 8)
		a >>= 8
	}
	for i := 0; i < 8; i++ {
		crc = crcTable[byte(crc)^byte(b)] ^ (crc >> 8)
		b >>= 8
	}
	return ^crc
}

// finalize is the splitmix64 avalanche applied to the raw CRC so low bits
// are well mixed even for sequential keys; cuckoo tables index with the low
// bits of the hash.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// rawCRC returns the CRC stage of Hash: the checksum over the seed-mixed
// key word followed by the seed word.
func (f Func) rawCRC(key uint64) uint64 {
	return crcWords(key^(f.seed*seedMul), f.seed)
}

// Hash returns the 64-bit hash of key.
func (f Func) Hash(key uint64) uint64 {
	return finalize(f.rawCRC(key))
}

// Index returns the hash of key reduced modulo size. Size must be a power of
// two; the reduction is a mask, mirroring the shift/mask hardware in the
// paper's L2P path.
func (f Func) Index(key, size uint64) uint64 {
	return f.Hash(key) & (size - 1)
}

// Family returns n independent hash functions derived from a base seed,
// one per cuckoo way.
func Family(base uint64, n int) []Func {
	fs := make([]Func, n)
	for i := range fs {
		fs[i] = New(base + uint64(i)*0x6A09E667F3BCC909 + 1)
	}
	return fs
}

// Mixer computes the hashes of one key under every function of a family
// with a single CRC pass.
//
// For way i, the 16-byte CRC input is le64(key ⊕ sᵢ·M) || le64(sᵢ). Against
// way 0 it differs by the key-independent word pair
// (s₀·M ⊕ sᵢ·M, s₀ ⊕ sᵢ), so by CRC affinity the raw CRCs satisfy
//
//	crcᵢ(key) = crc₀(key) ⊕ Δᵢ,  Δᵢ = crc(dᵢ) ⊕ crc(0)
//
// for a per-way constant Δᵢ computed once at construction. HashAt therefore
// reproduces Func.Hash bit-for-bit (property-tested) at the cost of one XOR
// and one finalizer instead of a full CRC per extra way. A Mixer is
// read-only after construction and safe for concurrent use.
type Mixer struct {
	base   Func
	deltas []uint64 // deltas[0] == 0
}

// NewMixer builds a Mixer over the family fns (as returned by Family; any
// set of Funcs works). fns must be non-empty.
func NewMixer(fns []Func) *Mixer {
	if len(fns) == 0 {
		panic("hashfn: NewMixer with empty family")
	}
	m := &Mixer{base: fns[0], deltas: make([]uint64, len(fns))}
	s0 := fns[0].seed
	zero := crcWords(0, 0)
	for i, f := range fns[1:] {
		d1 := (s0 * seedMul) ^ (f.seed * seedMul)
		d2 := s0 ^ f.seed
		m.deltas[i+1] = crcWords(d1, d2) ^ zero
	}
	return m
}

// Ways returns the family size.
func (m *Mixer) Ways() int { return len(m.deltas) }

// CRC returns the raw (pre-finalizer) CRC of key under way 0, the shared
// intermediate every HashAt call reuses.
func (m *Mixer) CRC(key uint64) uint64 { return m.base.rawCRC(key) }

// HashAt returns way i's hash of the key whose way-0 raw CRC is crc0. It
// equals fns[i].Hash(key) exactly.
func (m *Mixer) HashAt(i int, crc0 uint64) uint64 {
	return finalize(crc0 ^ m.deltas[i])
}

// Hash returns way i's hash of key, running the shared CRC itself. Callers
// probing several ways should hoist CRC and use HashAt.
func (m *Mixer) Hash(i int, key uint64) uint64 {
	return m.HashAt(i, m.CRC(key))
}

// HashPair returns the hashes of key under ways i and j with one CRC pass —
// the two-way convenience over CRC/HashAt.
func (m *Mixer) HashPair(i, j int, key uint64) (uint64, uint64) {
	crc := m.CRC(key)
	return m.HashAt(i, crc), m.HashAt(j, crc)
}
