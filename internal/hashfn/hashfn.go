// Package hashfn provides the seeded hash family used by the cuckoo page
// tables. The paper's hardware uses CRC units (Table III: 2-cycle latency);
// we use a CRC-64 over the virtual page number mixed with a per-way seed,
// which gives the same uniform-distribution properties the cuckoo analysis
// relies on.
//
// # Hot-path layout
//
// Hash is the single most expensive operation on the simulator's
// translation path: every table probe hashes the key once per way, and the
// CRC dominates. Two structural properties keep that cost down without
// changing a single hash value (the determinism contract pins them):
//
//   - The CRC runs inline over the two 64-bit words, with no byte-buffer
//     materialization and no call into hash/crc64's table dispatch.
//   - CRC-64 over a fixed-length message is an affine map over GF(2):
//     crc(a ⊕ b) = crc(a) ⊕ crc(b) ⊕ crc(0). For two functions of a family,
//     the 16-byte CRC inputs for the same key differ by a key-independent
//     constant, so their raw CRCs differ by a precomputable constant too.
//     A Mixer exploits this: one CRC pass per key, plus one XOR and one
//     finalizer per additional way (see NewMixer).
//   - The per-key CRC pass itself is table-folded. Slicing-by-8 turns one
//     8-byte block into eight independent table lookups (instead of eight
//     serially dependent byte steps), and because the block transform is
//     linear over GF(2), two consecutive blocks compose into a single
//      8-lookup pass through precomputed double-block tables. The seed word
//     — the second block of every rawCRC input — is constant per Func, so
//     its whole contribution folds into one precomputed XOR. A rawCRC is
//     eight independent loads plus two XORs, bit-identical to
//     crc64.Checksum over the 16-byte message (property-tested).
package hashfn

import "hash/crc64"

// Latency is the hash-unit latency in cycles charged by the timing model
// (Table III: "Hash functions: CRC, Latency: 2 cyc").
const Latency = 2

var crcTable = crc64.MakeTable(crc64.ECMA)

// sliceTable holds the slicing-by-8 helper tables: sliceTable[0] is the
// plain byte table, and sliceTable[j][v] advances the single-byte CRC state
// sliceTable[0][v] through j further zero bytes. With them, one 8-byte block
// folds into the state with eight independent loads (blockCRC) instead of
// eight serially dependent byte steps.
//
// Every table is linear over GF(2): tab[0] == 0 and tab[i^j] == tab[i]^tab[j]
// (CRC without pre/post-inversion is a linear map of the message bits). That
// linearity is what the double-block fold below and the Mixer both rely on.
var sliceTable = buildSliceTable()

// doubleTable composes two blockCRC passes: doubleTable[j][v] =
// blockCRC(sliceTable[7-j][v]), so that for any state x,
//
//	blockCRC(blockCRC(x)) = ⊕_{j=0..7} doubleTable[j][byte_j(x)]
//
// by linearity of blockCRC. It lets a 16-byte message whose second block is
// a per-Func constant be checksummed in a single 8-lookup pass (see rawCRC).
var doubleTable = buildDoubleTable()

func buildSliceTable() *[8][256]uint64 {
	var t [8][256]uint64
	t[0] = *crcTable
	for v := 0; v < 256; v++ {
		crc := t[0][v]
		for j := 1; j < 8; j++ {
			crc = t[0][crc&0xff] ^ (crc >> 8)
			t[j][v] = crc
		}
	}
	return &t
}

func buildDoubleTable() *[8][256]uint64 {
	var t [8][256]uint64
	for j := 0; j < 8; j++ {
		for v := 0; v < 256; v++ {
			t[j][v] = blockCRC(sliceTable[7-j][v])
		}
	}
	return &t
}

// blockCRC folds one 8-byte little-endian block already XORed into the CRC
// state x, using eight independent table loads (slicing-by-8). Folding a
// block b into state c is blockCRC(c ^ b).
func blockCRC(x uint64) uint64 {
	t := sliceTable
	return t[7][x&0xff] ^ t[6][(x>>8)&0xff] ^ t[5][(x>>16)&0xff] ^
		t[4][(x>>24)&0xff] ^ t[3][(x>>32)&0xff] ^ t[2][(x>>40)&0xff] ^
		t[1][(x>>48)&0xff] ^ t[0][x>>56]
}

// doubleBlockCRC is blockCRC applied twice, folded into one 8-lookup pass
// through doubleTable.
func doubleBlockCRC(x uint64) uint64 {
	t := doubleTable
	return t[0][x&0xff] ^ t[1][(x>>8)&0xff] ^ t[2][(x>>16)&0xff] ^
		t[3][(x>>24)&0xff] ^ t[4][(x>>32)&0xff] ^ t[5][(x>>40)&0xff] ^
		t[6][(x>>48)&0xff] ^ t[7][x>>56]
}

// seedMul is the multiplier folding the seed into the key word (golden
// ratio, as in splitmix64 seeding).
const seedMul = 0x9E3779B97F4A7C15

// Func is a seeded hash function over 64-bit keys (virtual page numbers).
// Two Funcs with different seeds behave as independent hash functions, which
// is what W-way cuckoo hashing requires.
//
// Funcs must be created with New (or Family): the constructor precomputes
// the folded seed constants that make rawCRC a single table pass.
type Func struct {
	seed uint64
	// pre is XORed into the key before the double-block table pass: it
	// carries both the seed mixing (seed*seedMul) and the CRC
	// pre-inversion (^0) of the initial state.
	pre uint64
	// post is XORed after the pass: the seed word's own contribution
	// blockCRC(seed) plus the CRC post-inversion. Derivation in rawCRC.
	post uint64
}

// New returns the hash function with the given seed. Distinct ways of a
// cuckoo table must use distinct seeds.
func New(seed uint64) Func {
	return Func{
		seed: seed,
		pre:  seed*seedMul ^ ^uint64(0),
		post: blockCRC(seed) ^ ^uint64(0),
	}
}

// Seed returns the seed this function was created with.
func (f Func) Seed() uint64 { return f.seed }

// crcWords computes crc64.Checksum(le64(a) || le64(b), ECMA) without
// materializing the byte buffer. TestCRCWordsMatchesChecksum pins the
// equivalence.
func crcWords(a, b uint64) uint64 {
	return ^blockCRC(blockCRC(^uint64(0)^a) ^ b)
}

// finalize is the splitmix64 avalanche applied to the raw CRC so low bits
// are well mixed even for sequential keys; cuckoo tables index with the low
// bits of the hash.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// rawCRC returns the CRC stage of Hash: the checksum over the seed-mixed
// key word followed by the seed word,
//
//	crcWords(key ^ seed·M, seed) = ^blockCRC(blockCRC(^0 ^ key ^ seed·M) ^ seed).
//
// By linearity blockCRC(x ^ seed) = blockCRC(x) ^ blockCRC(seed), so the
// whole thing collapses to one double-block table pass over the key plus
// the two per-Func constants precomputed by New:
//
//	rawCRC(key) = doubleBlockCRC(key ^ pre) ^ post
//
// Eight independent loads and two XORs per key. TestRawCRCFolded pins
// bit-identity against the two-pass crcWords form.
func (f Func) rawCRC(key uint64) uint64 {
	return doubleBlockCRC(key^f.pre) ^ f.post
}

// Hash returns the 64-bit hash of key.
func (f Func) Hash(key uint64) uint64 {
	return finalize(f.rawCRC(key))
}

// Index returns the hash of key reduced modulo size. Size must be a power of
// two; the reduction is a mask, mirroring the shift/mask hardware in the
// paper's L2P path.
func (f Func) Index(key, size uint64) uint64 {
	return f.Hash(key) & (size - 1)
}

// Family returns n independent hash functions derived from a base seed,
// one per cuckoo way.
func Family(base uint64, n int) []Func {
	fs := make([]Func, n)
	for i := range fs {
		fs[i] = New(base + uint64(i)*0x6A09E667F3BCC909 + 1)
	}
	return fs
}

// Mixer computes the hashes of one key under every function of a family
// with a single CRC pass.
//
// For way i, the 16-byte CRC input is le64(key ⊕ sᵢ·M) || le64(sᵢ). Against
// way 0 it differs by the key-independent word pair
// (s₀·M ⊕ sᵢ·M, s₀ ⊕ sᵢ), so by CRC affinity the raw CRCs satisfy
//
//	crcᵢ(key) = crc₀(key) ⊕ Δᵢ,  Δᵢ = crc(dᵢ) ⊕ crc(0)
//
// for a per-way constant Δᵢ computed once at construction. HashAt therefore
// reproduces Func.Hash bit-for-bit (property-tested) at the cost of one XOR
// and one finalizer instead of a full CRC per extra way. A Mixer is
// read-only after construction and safe for concurrent use.
type Mixer struct {
	base   Func
	deltas []uint64 // deltas[0] == 0
}

// NewMixer builds a Mixer over the family fns (as returned by Family; any
// set of Funcs works). fns must be non-empty.
func NewMixer(fns []Func) *Mixer {
	if len(fns) == 0 {
		panic("hashfn: NewMixer with empty family")
	}
	m := &Mixer{base: fns[0], deltas: make([]uint64, len(fns))}
	s0 := fns[0].seed
	zero := crcWords(0, 0)
	for i, f := range fns[1:] {
		d1 := (s0 * seedMul) ^ (f.seed * seedMul)
		d2 := s0 ^ f.seed
		m.deltas[i+1] = crcWords(d1, d2) ^ zero
	}
	return m
}

// Ways returns the family size.
func (m *Mixer) Ways() int { return len(m.deltas) }

// CRC returns the raw (pre-finalizer) CRC of key under way 0, the shared
// intermediate every HashAt call reuses.
func (m *Mixer) CRC(key uint64) uint64 { return m.base.rawCRC(key) }

// HashAt returns way i's hash of the key whose way-0 raw CRC is crc0. It
// equals fns[i].Hash(key) exactly.
func (m *Mixer) HashAt(i int, crc0 uint64) uint64 {
	return finalize(crc0 ^ m.deltas[i])
}

// Hash returns way i's hash of key, running the shared CRC itself. Callers
// probing several ways should hoist CRC and use HashAt.
func (m *Mixer) Hash(i int, key uint64) uint64 {
	return m.HashAt(i, m.CRC(key))
}

// HashPair returns the hashes of key under ways i and j with one CRC pass —
// the two-way convenience over CRC/HashAt.
func (m *Mixer) HashPair(i, j int, key uint64) (uint64, uint64) {
	crc := m.CRC(key)
	return m.HashAt(i, crc), m.HashAt(j, crc)
}
