package hashfn

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	f := New(42)
	if f.Hash(123) != f.Hash(123) {
		t.Error("Hash is not deterministic")
	}
	g := New(42)
	if f.Hash(999) != g.Hash(999) {
		t.Error("same-seed functions disagree")
	}
}

func TestSeedIndependence(t *testing.T) {
	f, g := New(1), New(2)
	same := 0
	for k := uint64(0); k < 1000; k++ {
		if f.Hash(k) == g.Hash(k) {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds collide on %d/1000 keys", same)
	}
}

func TestIndexPowerOfTwo(t *testing.T) {
	f := New(7)
	check := func(key uint64, shift uint8) bool {
		size := uint64(1) << (shift%20 + 1)
		return f.Index(key, size) < size
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestUniformity verifies that sequential VPNs (the common page-table
// pattern) spread evenly across a power-of-two table.
func TestUniformity(t *testing.T) {
	const (
		buckets = 64
		keys    = 64 * 1024
	)
	for _, f := range Family(99, 3) {
		counts := make([]int, buckets)
		for k := uint64(0); k < keys; k++ {
			counts[f.Index(k, buckets)]++
		}
		mean := keys / buckets
		for b, c := range counts {
			if c < mean*3/4 || c > mean*5/4 {
				t.Errorf("seed %d bucket %d count %d out of [%d,%d]",
					f.Seed(), b, c, mean*3/4, mean*5/4)
			}
		}
	}
}

func TestFamilyDistinctSeeds(t *testing.T) {
	fam := Family(0, 8)
	seen := make(map[uint64]bool)
	for _, f := range fam {
		if seen[f.Seed()] {
			t.Fatalf("duplicate seed %d in family", f.Seed())
		}
		seen[f.Seed()] = true
	}
}

// TestUpsizeBitProperty checks the in-place-resizing invariant the paper's
// Section IV-C relies on: indexing a 2x table uses the same low bits plus one
// extra bit, so the new index is either the old index or old index + oldSize.
func TestUpsizeBitProperty(t *testing.T) {
	f := New(5)
	check := func(key uint64) bool {
		old := f.Index(key, 1024)
		nw := f.Index(key, 2048)
		return nw == old || nw == old+1024
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHash(b *testing.B) {
	f := New(3)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= f.Hash(uint64(i))
	}
	_ = sink
}
