package hashfn

import (
	"hash/crc64"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	f := New(42)
	if f.Hash(123) != f.Hash(123) {
		t.Error("Hash is not deterministic")
	}
	g := New(42)
	if f.Hash(999) != g.Hash(999) {
		t.Error("same-seed functions disagree")
	}
}

func TestSeedIndependence(t *testing.T) {
	f, g := New(1), New(2)
	same := 0
	for k := uint64(0); k < 1000; k++ {
		if f.Hash(k) == g.Hash(k) {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds collide on %d/1000 keys", same)
	}
}

func TestIndexPowerOfTwo(t *testing.T) {
	f := New(7)
	check := func(key uint64, shift uint8) bool {
		size := uint64(1) << (shift%20 + 1)
		return f.Index(key, size) < size
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestUniformity verifies that sequential VPNs (the common page-table
// pattern) spread evenly across a power-of-two table.
func TestUniformity(t *testing.T) {
	const (
		buckets = 64
		keys    = 64 * 1024
	)
	for _, f := range Family(99, 3) {
		counts := make([]int, buckets)
		for k := uint64(0); k < keys; k++ {
			counts[f.Index(k, buckets)]++
		}
		mean := keys / buckets
		for b, c := range counts {
			if c < mean*3/4 || c > mean*5/4 {
				t.Errorf("seed %d bucket %d count %d out of [%d,%d]",
					f.Seed(), b, c, mean*3/4, mean*5/4)
			}
		}
	}
}

func TestFamilyDistinctSeeds(t *testing.T) {
	fam := Family(0, 8)
	seen := make(map[uint64]bool)
	for _, f := range fam {
		if seen[f.Seed()] {
			t.Fatalf("duplicate seed %d in family", f.Seed())
		}
		seen[f.Seed()] = true
	}
}

// TestUpsizeBitProperty checks the in-place-resizing invariant the paper's
// Section IV-C relies on: indexing a 2x table uses the same low bits plus one
// extra bit, so the new index is either the old index or old index + oldSize.
func TestUpsizeBitProperty(t *testing.T) {
	f := New(5)
	check := func(key uint64) bool {
		old := f.Index(key, 1024)
		nw := f.Index(key, 2048)
		return nw == old || nw == old+1024
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHash(b *testing.B) {
	f := New(3)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= f.Hash(uint64(i))
	}
	_ = sink
}

// TestCRCWordsMatchesChecksum pins the inline two-word CRC against the
// hash/crc64 reference it replaced: the hot path must produce the exact
// checksum the original byte-buffer formulation produced.
func TestCRCWordsMatchesChecksum(t *testing.T) {
	ref := func(a, b uint64) uint64 {
		var buf [16]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(a >> (8 * i))
			buf[i+8] = byte(b >> (8 * i))
		}
		return crc64.Checksum(buf[:], crcTable)
	}
	check := func(a, b uint64) bool { return crcWords(a, b) == ref(a, b) }
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	for _, v := range [][2]uint64{{0, 0}, {^uint64(0), ^uint64(0)}, {1, 0}, {0, 1}} {
		if crcWords(v[0], v[1]) != ref(v[0], v[1]) {
			t.Errorf("crcWords(%#x, %#x) diverges from crc64.Checksum", v[0], v[1])
		}
	}
}

// TestRawCRCFolded pins the single-pass folded rawCRC against the
// unfolded two-block formulation it replaced: for every (seed, key),
// doubleBlockCRC(key ^ pre) ^ post must equal
// crcWords(key ^ seed·M, seed) bit-for-bit.
func TestRawCRCFolded(t *testing.T) {
	check := func(seed, key uint64) bool {
		return New(seed).rawCRC(key) == crcWords(key^(seed*seedMul), seed)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	for _, seed := range []uint64{0, 1, ^uint64(0), 0x6A09E667F3BCC909} {
		f := New(seed)
		for _, key := range []uint64{0, 1, ^uint64(0), seed} {
			if got, want := f.rawCRC(key), crcWords(key^(seed*seedMul), seed); got != want {
				t.Errorf("seed %#x key %#x: folded %#x != unfolded %#x", seed, key, got, want)
			}
		}
	}
}

// TestBlockCRCByteReference pins the slicing-by-8 block fold against a
// plain byte-at-a-time CRC step loop — the formulation crcWords used before
// the tables existed.
func TestBlockCRCByteReference(t *testing.T) {
	byteRef := func(crc, w uint64) uint64 {
		for i := 0; i < 8; i++ {
			crc = crcTable[byte(crc)^byte(w)] ^ (crc >> 8)
			w >>= 8
		}
		return crc
	}
	check := func(crc, w uint64) bool {
		return blockCRC(crc^w) == byteRef(crc, w) &&
			doubleBlockCRC(crc^w) == blockCRC(byteRef(crc, w))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestMixerMatchesHash is the equality property the determinism contract
// requires: for any family and any key, Mixer.HashAt must reproduce
// Func.Hash bit-for-bit — the CRC-affinity shortcut must be invisible.
func TestMixerMatchesHash(t *testing.T) {
	for _, ways := range []int{2, 3, 4, 8} {
		for _, base := range []uint64{0, 1, 42, 0xDEADBEEF, ^uint64(0) / 3} {
			fns := Family(base, ways)
			m := NewMixer(fns)
			check := func(key uint64) bool {
				crc := m.CRC(key)
				for i, f := range fns {
					if m.HashAt(i, crc) != f.Hash(key) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, nil); err != nil {
				t.Errorf("ways=%d base=%d: %v", ways, base, err)
			}
		}
	}
}

// TestMixerArbitraryFuncs checks the affinity identity for Funcs that are
// not a Family (arbitrary seeds), which the Mixer must also support.
func TestMixerArbitraryFuncs(t *testing.T) {
	fns := []Func{New(7), New(^uint64(0)), New(12345678901234567)}
	m := NewMixer(fns)
	for key := uint64(0); key < 4096; key++ {
		crc := m.CRC(key)
		for i, f := range fns {
			if got, want := m.HashAt(i, crc), f.Hash(key); got != want {
				t.Fatalf("way %d key %d: mixer %#x != hash %#x", i, key, got, want)
			}
		}
	}
}

// TestHashPair property-tests the two-way convenience against Hash.
func TestHashPair(t *testing.T) {
	fns := Family(99, 3)
	m := NewMixer(fns)
	check := func(key uint64) bool {
		h1, h2 := m.HashPair(1, 2, key)
		return h1 == fns[1].Hash(key) && h2 == fns[2].Hash(key)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestHashAllocFree guards the hot path: hashing must never allocate.
func TestHashAllocFree(t *testing.T) {
	f := New(3)
	m := NewMixer(Family(3, 3))
	var sink uint64
	if n := testing.AllocsPerRun(1000, func() {
		sink ^= f.Hash(sink)
	}); n != 0 {
		t.Errorf("Func.Hash allocates %v objects per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		crc := m.CRC(sink)
		sink ^= m.HashAt(0, crc) ^ m.HashAt(1, crc) ^ m.HashAt(2, crc)
	}); n != 0 {
		t.Errorf("Mixer probe allocates %v objects per call", n)
	}
}

func BenchmarkMixer3Ways(b *testing.B) {
	m := NewMixer(Family(3, 3))
	var sink uint64
	for i := 0; i < b.N; i++ {
		crc := m.CRC(uint64(i))
		sink ^= m.HashAt(0, crc) ^ m.HashAt(1, crc) ^ m.HashAt(2, crc)
	}
	_ = sink
}

func BenchmarkHash3Ways(b *testing.B) {
	fns := Family(3, 3)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= fns[0].Hash(uint64(i)) ^ fns[1].Hash(uint64(i)) ^ fns[2].Hash(uint64(i))
	}
	_ = sink
}
