package l2p

import (
	"testing"

	"repro/internal/addr"
)

func TestCapacityConstants(t *testing.T) {
	tb := New(3)
	if got := tb.TotalEntries(); got != 288 {
		t.Errorf("TotalEntries = %d, want 288", got)
	}
	// 288 entries × 33 bits = 1.16KB (paper Section V-B).
	if got := tb.SizeBytes(); got < 1180 || got > 1195 {
		t.Errorf("SizeBytes = %v, want ≈1188 (1.16KB)", got)
	}
}

func TestNativeLimits(t *testing.T) {
	tb := New(3)
	for i := 0; i < EntriesPerSubtable; i++ {
		if !tb.Acquire(0, addr.Page4K) {
			t.Fatalf("Acquire #%d failed within native capacity", i)
		}
	}
	if tb.Used(0, addr.Page4K) != 32 {
		t.Errorf("Used = %d, want 32", tb.Used(0, addr.Page4K))
	}
	// Ways are independent.
	if tb.Used(1, addr.Page4K) != 0 {
		t.Error("way 1 affected by way 0 acquisitions")
	}
}

// TestStealing reproduces Figure 6b: with the 1GB subtable unused, the 4KB
// subtable grows to 64 entries.
func TestStealing(t *testing.T) {
	tb := New(3)
	for i := 0; i < StolenMax; i++ {
		if !tb.Acquire(0, addr.Page4K) {
			t.Fatalf("Acquire #%d failed; stealing should allow 64", i)
		}
	}
	if tb.Acquire(0, addr.Page4K) {
		t.Error("65th acquire succeeded; cap is 64")
	}
	if tb.Used(0, addr.Page4K) != 64 {
		t.Errorf("Used = %d, want 64", tb.Used(0, addr.Page4K))
	}
}

// TestStealBlockedByOccupied1GB: the 1GB region cannot be stolen while the
// 1GB subtable has entries.
func TestStealBlockedByOccupied1GB(t *testing.T) {
	tb := New(3)
	if !tb.Acquire(0, addr.Page1G) {
		t.Fatal("1GB acquire failed")
	}
	for i := 0; i < EntriesPerSubtable; i++ {
		if !tb.Acquire(0, addr.Page4K) {
			t.Fatalf("4KB acquire #%d failed within native region", i)
		}
	}
	if tb.Acquire(0, addr.Page4K) {
		t.Error("4KB stole the 1GB region while 1GB entries exist")
	}
}

// Test1GBBorrowsAfterSteal reproduces Figure 6c: after 4KB steals the 1GB
// region, a 1GB entry borrows from the 2MB subtable's free end.
func Test1GBBorrowsAfterSteal(t *testing.T) {
	tb := New(3)
	for i := 0; i < 40; i++ { // past 32 => steal happens
		if !tb.Acquire(0, addr.Page4K) {
			t.Fatalf("4KB acquire #%d failed", i)
		}
	}
	if !tb.Acquire(0, addr.Page1G) {
		t.Fatal("1GB could not borrow from the 2MB subtable")
	}
	// Borrowed 1GB entries shrink the 2MB headroom.
	if lim := tb.Limit(0, addr.Page2M); lim != EntriesPerSubtable-1 {
		t.Errorf("2MB limit after borrow = %d, want %d", lim, EntriesPerSubtable-1)
	}
	got2M := 0
	for tb.Acquire(0, addr.Page2M) {
		got2M++
	}
	if got2M != EntriesPerSubtable-1 {
		t.Errorf("2MB acquired %d entries, want %d", got2M, EntriesPerSubtable-1)
	}
}

// Test1GBBorrowCapacity: with 4KB stealing and 2MB empty, 1GB can borrow up
// to the full 2MB region.
func Test1GBBorrowCapacity(t *testing.T) {
	tb := New(3)
	for i := 0; i < 33; i++ {
		tb.Acquire(0, addr.Page4K)
	}
	n := 0
	for tb.Acquire(0, addr.Page1G) {
		n++
	}
	if n != EntriesPerSubtable {
		t.Errorf("1GB borrowed %d entries, want %d", n, EntriesPerSubtable)
	}
	// Way total never exceeds 96.
	total := tb.Used(0, addr.Page4K) + tb.Used(0, addr.Page2M) + tb.Used(0, addr.Page1G)
	if total > 96 {
		t.Errorf("way total %d exceeds 96 slots", total)
	}
}

func TestReleaseReturnsStolenRegion(t *testing.T) {
	tb := New(3)
	for i := 0; i < 64; i++ {
		tb.Acquire(0, addr.Page4K)
	}
	// Chunk-size transition: 64 chunks collapse to 1.
	tb.Release(0, addr.Page4K, 63)
	if tb.Used(0, addr.Page4K) != 1 {
		t.Fatalf("Used = %d, want 1", tb.Used(0, addr.Page4K))
	}
	// The 1GB region must be available again.
	for i := 0; i < EntriesPerSubtable; i++ {
		if !tb.Acquire(0, addr.Page1G) {
			t.Fatalf("1GB acquire #%d failed after steal release", i)
		}
	}
}

func TestReleasePanicsOnUnderflow(t *testing.T) {
	tb := New(3)
	tb.Acquire(0, addr.Page4K)
	defer func() {
		if recover() == nil {
			t.Error("Release underflow did not panic")
		}
	}()
	tb.Release(0, addr.Page4K, 2)
}

func TestPeakTracking(t *testing.T) {
	tb := New(3)
	for w := 0; w < 3; w++ {
		for i := 0; i < 10; i++ {
			tb.Acquire(w, addr.Page4K)
		}
	}
	if tb.TotalUsed() != 30 || tb.PeakUsed() != 30 {
		t.Errorf("TotalUsed=%d PeakUsed=%d, want 30/30", tb.TotalUsed(), tb.PeakUsed())
	}
	tb.Release(0, addr.Page4K, 10)
	if tb.TotalUsed() != 20 {
		t.Errorf("TotalUsed=%d, want 20", tb.TotalUsed())
	}
	if tb.PeakUsed() != 30 {
		t.Errorf("PeakUsed=%d, want 30 (monotone)", tb.PeakUsed())
	}
	if tb.SaveRestoreEntries() != 20 {
		t.Errorf("SaveRestoreEntries=%d, want 20", tb.SaveRestoreEntries())
	}
}

// TestGUPSScenario reproduces the paper's Section VII-D arithmetic: a 4KB
// HPT needing 192 entries fits exactly (64 per way × 3 ways), and 193 does
// not.
func TestGUPSScenario(t *testing.T) {
	tb := New(3)
	granted := 0
	for w := 0; w < 3; w++ {
		for tb.Acquire(w, addr.Page4K) {
			granted++
		}
	}
	if granted != 192 {
		t.Errorf("4KB capacity across ways = %d, want 192", granted)
	}
}
