package l2p

import "repro/internal/addr"

// WayState is the serializable accounting of one way's three subtables.
type WayState struct {
	Used  [addr.NumPageSizes]int
	Steal addr.PageSize
}

// State is the serializable form of a Table.
type State struct {
	Ways []WayState
	Peak int
}

// State returns a copy of the table's accounting.
func (t *Table) State() State {
	st := State{Ways: make([]WayState, len(t.ways)), Peak: t.peak}
	for i, w := range t.ways {
		st.Ways[i] = WayState{Used: w.used, Steal: w.steal}
	}
	return st
}

// Restore replaces the table's accounting with the recorded state.
func (t *Table) Restore(st State) {
	t.ways = make([]wayState, len(st.Ways))
	for i, w := range st.Ways {
		t.ways[i] = wayState{used: w.Used, steal: w.Steal}
	}
	t.peak = st.Peak
}
