// Package l2p models the Logical-to-Physical table — the small MMU-resident
// indirection structure at the heart of ME-HPT (Sections IV-A and V-A).
//
// The L2P table of a process has, for each HPT way, three subtables of 32
// entries each — one per page size. Each entry points to the physical base
// of one chunk of that way. Subtables of the same way are laid out
// contiguously with the rarely-used 1GB subtable in the middle, so a 4KB or
// 2MB subtable that fills up can *steal* the whole 1GB region and grow to 64
// entries; a 1GB subtable whose region was stolen borrows single entries
// from the free end of the neighbouring subtable.
//
// This package does the entry accounting and capacity arithmetic; the chunk
// package owns the chunk pointers themselves.
package l2p

import (
	"fmt"

	"repro/internal/addr"
)

// EntriesPerSubtable is the native capacity of one (way, page-size)
// subtable: 32 entries (Section V-A).
const EntriesPerSubtable = 32

// StolenMax is the capacity of a subtable that has stolen the 1GB region.
const StolenMax = 2 * EntriesPerSubtable

// EntryBits is the width of one L2P entry: the base address of an 8KB-aligned
// chunk in a 46-bit physical address space (Section V-B).
const EntryBits = 33

// noSteal marks a way whose 1GB region is intact.
const noSteal = addr.PageSize(-1)

// wayState tracks one way's three subtables.
type wayState struct {
	used  [addr.NumPageSizes]int
	steal addr.PageSize // page size that stole the 1GB region, or noSteal
}

// Table is the per-process L2P table accounting model.
type Table struct {
	ways []wayState
	peak int // peak total entries in use (Figure 14 reports usage)
}

// New returns an L2P table for the given number of HPT ways (the paper
// uses 3, giving 32 × 3 sizes × 3 ways = 288 entries total).
func New(ways int) *Table {
	t := &Table{ways: make([]wayState, ways)}
	for i := range t.ways {
		t.ways[i].steal = noSteal
	}
	return t
}

// Ways returns the number of HPT ways covered.
func (t *Table) Ways() int { return len(t.ways) }

// TotalEntries returns the hardware capacity of the whole table.
func (t *Table) TotalEntries() int {
	return len(t.ways) * int(addr.NumPageSizes) * EntriesPerSubtable
}

// SizeBytes returns the hardware size of the table (1.16KB in the paper's
// configuration: 288 entries × 33 bits).
func (t *Table) SizeBytes() float64 {
	return float64(t.TotalEntries()) * EntryBits / 8
}

// Used returns the number of entries in use by the given way and page size.
func (t *Table) Used(way int, s addr.PageSize) int {
	return t.ways[way].used[s]
}

// TotalUsed returns the number of entries currently in use across the table.
func (t *Table) TotalUsed() int {
	total := 0
	for w := range t.ways {
		for _, s := range addr.Sizes() {
			total += t.ways[w].used[s]
		}
	}
	return total
}

// PeakUsed returns the high-water mark of TotalUsed, the quantity Figure 14
// reports per application.
func (t *Table) PeakUsed() int { return t.peak }

// Limit returns the current maximum entry count for the given subtable,
// taking stealing into account.
func (t *Table) Limit(way int, s addr.PageSize) int {
	w := &t.ways[way]
	switch {
	case s == addr.Page1G:
		if w.steal == noSteal {
			return EntriesPerSubtable
		}
		// Region stolen: borrow from the free end of the other small-size
		// subtable.
		other := otherSmall(w.steal)
		return EntriesPerSubtable - w.used[other]
	case w.steal == s:
		return StolenMax
	case w.steal == noSteal && w.used[addr.Page1G] == 0:
		// Could steal if needed.
		return StolenMax
	default:
		// Our own region only; if 1GB entries are borrowed from our region,
		// they shrink our headroom.
		limit := EntriesPerSubtable
		if w.steal != noSteal && w.steal != s {
			limit -= w.used[addr.Page1G]
		}
		return limit
	}
}

// Acquire claims one more entry for the given way and page size. It returns
// false if the subtable is at its limit — the signal that the HPT way must
// transition to the next larger chunk size instead of adding a chunk.
func (t *Table) Acquire(way int, s addr.PageSize) bool {
	w := &t.ways[way]
	if !s.Valid() {
		panic(fmt.Sprintf("l2p: invalid page size %d", int(s)))
	}
	switch {
	case s == addr.Page1G:
		if w.steal == noSteal {
			if w.used[s] >= EntriesPerSubtable {
				return false
			}
		} else {
			other := otherSmall(w.steal)
			if w.used[other]+w.used[s] >= EntriesPerSubtable {
				return false
			}
		}
	default: // 4KB or 2MB
		switch {
		case w.used[s] < EntriesPerSubtable:
			// Fits in the native region — but if the 1GB subtable has
			// borrowed slots from our region, respect them.
			if w.steal != noSteal && w.steal != s &&
				w.used[s]+w.used[addr.Page1G] >= EntriesPerSubtable {
				return false
			}
		case w.steal == s:
			if w.used[s] >= StolenMax {
				return false
			}
		case w.steal == noSteal && w.used[addr.Page1G] == 0:
			// Steal the 1GB region.
			w.steal = s
		default:
			return false
		}
	}
	w.used[s]++
	if u := t.TotalUsed(); u > t.peak {
		t.peak = u
	}
	return true
}

// Release returns n entries from the given way and page size, e.g. after a
// chunk-size transition frees the old chunks. If the releasing subtable no
// longer needs the stolen 1GB region it is returned.
func (t *Table) Release(way int, s addr.PageSize, n int) {
	w := &t.ways[way]
	if n < 0 || w.used[s] < n {
		panic(fmt.Sprintf("l2p: release %d from way %d size %v with %d used", n, way, s, w.used[s]))
	}
	w.used[s] -= n
	if w.steal == s && w.used[s] <= EntriesPerSubtable {
		w.steal = noSteal
	}
}

// SaveRestoreEntries returns the number of entries a context switch must
// save and restore: only the valid ones, which are clustered at the extremes
// of each subtable (Section V-C).
func (t *Table) SaveRestoreEntries() int { return t.TotalUsed() }

func otherSmall(s addr.PageSize) addr.PageSize {
	if s == addr.Page4K {
		return addr.Page2M
	}
	return addr.Page4K
}
