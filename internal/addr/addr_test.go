package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSizeBytes(t *testing.T) {
	cases := []struct {
		s    PageSize
		want uint64
	}{
		{Page4K, 4 * KB},
		{Page2M, 2 * MB},
		{Page1G, 1 * GB},
	}
	for _, c := range cases {
		if got := c.s.Bytes(); got != c.want {
			t.Errorf("%v.Bytes() = %d, want %d", c.s, got, c.want)
		}
		if got := uint64(1) << c.s.Shift(); got != c.want {
			t.Errorf("1<<%v.Shift() = %d, want %d", c.s, got, c.want)
		}
		if got := c.s.Mask(); got != c.want-1 {
			t.Errorf("%v.Mask() = %#x, want %#x", c.s, got, c.want-1)
		}
	}
}

func TestPageSizeString(t *testing.T) {
	if Page4K.String() != "4KB" || Page2M.String() != "2MB" || Page1G.String() != "1GB" {
		t.Errorf("unexpected page size names: %v %v %v", Page4K, Page2M, Page1G)
	}
	if got := PageSize(7).String(); got != "PageSize(7)" {
		t.Errorf("invalid size String() = %q", got)
	}
	if PageSize(7).Valid() {
		t.Error("PageSize(7).Valid() = true, want false")
	}
}

func TestSizesOrdering(t *testing.T) {
	sz := Sizes()
	if len(sz) != int(NumPageSizes) {
		t.Fatalf("Sizes() len = %d, want %d", len(sz), NumPageSizes)
	}
	for i := 1; i < len(sz); i++ {
		if sz[i-1].Bytes() >= sz[i].Bytes() {
			t.Errorf("Sizes() not ascending at %d: %v >= %v", i, sz[i-1], sz[i])
		}
	}
}

func TestPageNumberAndOffset(t *testing.T) {
	va := VirtAddr(0x7f00_1234_5678)
	if got := va.PageNumber(Page4K); got != VPN(0x7f00_1234_5678>>12) {
		t.Errorf("PageNumber(4K) = %#x", got)
	}
	if got := va.Offset(Page4K); got != 0x678 {
		t.Errorf("Offset(4K) = %#x, want 0x678", got)
	}
	if got := va.Offset(Page2M); got != 0x7f00_1234_5678&(2*MB-1) {
		t.Errorf("Offset(2M) = %#x", got)
	}
}

func TestTranslateRoundTrip(t *testing.T) {
	f := func(va uint64, ppn uint32) bool {
		va &= (1 << VirtBits) - 1
		for _, s := range Sizes() {
			v := VirtAddr(va)
			pa := Translate(v, PPN(ppn), s)
			if pa.PageNumber(s) != PPN(ppn) {
				return false
			}
			if uint64(pa)&s.Mask() != v.Offset(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVPNAddrRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		for _, s := range Sizes() {
			if VPN(v).Addr(s).PageNumber(s) != VPN(v) {
				return false
			}
			if PPN(v).Addr(s).PageNumber(s) != PPN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonical(t *testing.T) {
	cases := []struct {
		va   VirtAddr
		want bool
	}{
		{0, true},
		{0x0000_7fff_ffff_ffff, true},
		{0xffff_8000_0000_0000, true},
		{0xffff_ffff_ffff_ffff, true},
		{0x0000_8000_0000_0000, false},
		{0x1234_0000_0000_0000, false},
	}
	for _, c := range cases {
		if got := c.va.Canonical(); got != c.want {
			t.Errorf("Canonical(%#x) = %v, want %v", uint64(c.va), got, c.want)
		}
	}
}

func TestRadixIndex(t *testing.T) {
	// Construct an address with distinct 9-bit fields per level.
	var va uint64
	fields := []uint{0x1A3, 0x0B7, 0x155, 0x0FF} // PGD..PTE (levels 3..0)
	va |= uint64(fields[0]) << 39
	va |= uint64(fields[1]) << 30
	va |= uint64(fields[2]) << 21
	va |= uint64(fields[3]) << 12
	for lvl := 0; lvl < 4; lvl++ {
		want := fields[3-lvl]
		if got := RadixIndex(VirtAddr(va), lvl); got != want {
			t.Errorf("RadixIndex(level %d) = %#x, want %#x", lvl, got, want)
		}
	}
}

func TestRadixIndexRange(t *testing.T) {
	f := func(va uint64) bool {
		for lvl := 0; lvl < 4; lvl++ {
			if RadixIndex(VirtAddr(va), lvl) > 0x1FF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlign(t *testing.T) {
	if got := AlignDown(0x1234, 0x1000); got != 0x1000 {
		t.Errorf("AlignDown = %#x", got)
	}
	if got := AlignUp(0x1234, 0x1000); got != 0x2000 {
		t.Errorf("AlignUp = %#x", got)
	}
	if got := AlignUp(0x1000, 0x1000); got != 0x1000 {
		t.Errorf("AlignUp aligned = %#x", got)
	}
	f := func(va uint64, shift uint8) bool {
		a := uint64(1) << (shift % 30)
		d, u := AlignDown(VirtAddr(va), a), AlignUp(VirtAddr(va), a)
		if uint64(d)%a != 0 || uint64(d) > va {
			return false
		}
		// AlignUp may wrap for enormous va; restrict to small values.
		if va < 1<<40 && (uint64(u)%a != 0 || uint64(u) < va) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
