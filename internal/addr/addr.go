// Package addr defines the virtual and physical address types and page-size
// arithmetic shared by every page-table organization in the repository.
//
// The address split follows the x86-64 convention used by the paper:
// 48-bit canonical virtual addresses, 46-bit physical addresses, and three
// translation granularities (4KB, 2MB, and 1GB pages).
package addr

import "fmt"

// Fundamental address widths, matching the configuration in the paper
// (Section V-B sizes the L2P entries for a 46-bit physical address space).
const (
	VirtBits = 48 // canonical x86-64 virtual address width
	PhysBits = 46 // physical address width used to size L2P entries
)

// Byte-size constants. They are untyped so they compose with any integer type.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
	TB = 1 << 40
)

// VirtAddr is a virtual byte address.
type VirtAddr uint64

// PhysAddr is a physical byte address.
type PhysAddr uint64

// VPN is a virtual page number: a virtual address shifted right by the page
// size's offset bits. A VPN is only meaningful together with a PageSize.
type VPN uint64

// PPN is a physical page number (also called a physical frame number).
type PPN uint64

// PageSize enumerates the translation granularities supported by the MMU.
type PageSize int

// The three page sizes from the paper. Their integer values index per-size
// arrays (TLBs, HPTs, CWTs) throughout the codebase.
const (
	Page4K PageSize = iota // 4KB base pages (PTE level)
	Page2M                 // 2MB huge pages (PMD level)
	Page1G                 // 1GB huge pages (PUD level)
	NumPageSizes
)

// pageShift[s] is log2 of the byte size of page size s.
var pageShift = [NumPageSizes]uint{12, 21, 30}

// pageName[s] is the human-readable name of page size s.
var pageName = [NumPageSizes]string{"4KB", "2MB", "1GB"}

// Shift returns log2 of the page size in bytes (12, 21, or 30).
func (s PageSize) Shift() uint { return pageShift[s] }

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return 1 << pageShift[s] }

// Mask returns the in-page offset mask for this page size.
func (s PageSize) Mask() uint64 { return s.Bytes() - 1 }

// Valid reports whether s is one of the three supported page sizes.
func (s PageSize) Valid() bool { return s >= Page4K && s < NumPageSizes }

// String implements fmt.Stringer.
func (s PageSize) String() string {
	if !s.Valid() {
		return fmt.Sprintf("PageSize(%d)", int(s))
	}
	return pageName[s]
}

// sizes backs Sizes so the per-translation size loops do not allocate.
var sizes = [NumPageSizes]PageSize{Page4K, Page2M, Page1G}

// Sizes returns the supported page sizes from smallest to largest.
// The returned slice must not be modified.
func Sizes() []PageSize { return sizes[:] }

// PageNumber returns the VPN of va at page size s.
func (va VirtAddr) PageNumber(s PageSize) VPN {
	return VPN(uint64(va) >> pageShift[s])
}

// Offset returns the in-page byte offset of va at page size s.
func (va VirtAddr) Offset(s PageSize) uint64 {
	return uint64(va) & s.Mask()
}

// Canonical reports whether va is a canonical 48-bit address, i.e. bits
// [63:48] are a sign extension of bit 47.
func (va VirtAddr) Canonical() bool {
	top := uint64(va) >> (VirtBits - 1)
	return top == 0 || top == (1<<(64-VirtBits+1))-1
}

// Addr returns the first virtual byte address of the page v at size s.
func (v VPN) Addr(s PageSize) VirtAddr {
	return VirtAddr(uint64(v) << pageShift[s])
}

// Addr returns the first physical byte address of the frame p at size s.
func (p PPN) Addr(s PageSize) PhysAddr {
	return PhysAddr(uint64(p) << pageShift[s])
}

// PageNumber returns the PPN of pa at page size s.
func (pa PhysAddr) PageNumber(s PageSize) PPN {
	return PPN(uint64(pa) >> pageShift[s])
}

// Translate combines the frame ppn with the page offset of va at size s,
// producing the full physical address.
func Translate(va VirtAddr, ppn PPN, s PageSize) PhysAddr {
	return PhysAddr(uint64(ppn)<<pageShift[s] | va.Offset(s))
}

// RadixIndex returns the 9-bit radix-tree index of va at the given tree level.
// Level 0 is the leaf (PTE, bits 20:12) and level 3 is the root
// (PGD, bits 47:39), matching Figure 1 of the paper.
func RadixIndex(va VirtAddr, level int) uint {
	return uint(uint64(va)>>(12+9*uint(level))) & 0x1FF
}

// AlignDown rounds va down to a multiple of align, which must be a power of
// two.
func AlignDown(va VirtAddr, align uint64) VirtAddr {
	return VirtAddr(uint64(va) &^ (align - 1))
}

// AlignUp rounds va up to a multiple of align, which must be a power of two.
func AlignUp(va VirtAddr, align uint64) VirtAddr {
	return VirtAddr((uint64(va) + align - 1) &^ (align - 1))
}
