package workload

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/pt"
)

func TestSpecsComplete(t *testing.T) {
	names := Names()
	want := []string{"BC", "BFS", "CC", "DC", "DFS", "GUPS", "MUMmer", "PR", "SSSP", "SysBench", "TC"}
	if len(names) != len(want) {
		t.Fatalf("got %d specs, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("spec %d = %s, want %s (paper order)", i, names[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("GUPS", 1)
	if err != nil || s.Name != "GUPS" {
		t.Fatalf("ByName(GUPS) = %+v, %v", s, err)
	}
	if s.Kind != Sparse {
		t.Error("GUPS must be sparse")
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestCalibration verifies the Table I calibration arithmetic: the touched
// cluster count is 1.2× the slot count of the paper's final way size.
func TestCalibration(t *testing.T) {
	cases := map[string]uint64{ // app -> final way bytes (Table I / Fig 12)
		"BFS":      16 * addr.MB,
		"BC":       8 * addr.MB,
		"GUPS":     64 * addr.MB,
		"SysBench": 64 * addr.MB,
		"MUMmer":   1 * addr.MB,
		"TC":       2 * addr.MB,
	}
	for app, way := range cases {
		s, _ := ByName(app, 1)
		slots := way / pt.EntryBytes
		var clusters uint64
		if s.Kind == Sparse {
			clusters = s.TouchedBytes / (4 * addr.KB) // 1 page per cluster
		} else {
			clusters = s.TouchedBytes / (4 * addr.KB) / pt.ClusterSpan
		}
		lo, hi := slots*105/100, slots*135/100
		if clusters < lo || clusters > hi {
			t.Errorf("%s: %d clusters for %d-slot way; want ≈1.2x in [%d,%d]",
				app, clusters, slots, lo, hi)
		}
	}
}

func TestScaleDividesFootprints(t *testing.T) {
	full, _ := ByName("BFS", 1)
	half, _ := ByName("BFS", 2)
	if half.TouchedBytes*2 > full.TouchedBytes+full.TouchedBytes/10 ||
		half.TouchedBytes*2 < full.TouchedBytes-full.TouchedBytes/10 {
		t.Errorf("scale 2 touched %d not ≈ half of %d", half.TouchedBytes, full.TouchedBytes)
	}
}

// TestSparsePagesDistinct: the multiplicative scatter must produce distinct
// pages with no cluster sharing.
func TestSparsePagesDistinct(t *testing.T) {
	s, _ := ByName("GUPS", 64)
	n := s.touchedPages()
	seenPage := make(map[addr.VirtAddr]bool, n)
	seenCluster := make(map[uint64]int, n)
	for i := uint64(0); i < n; i++ {
		va := s.PageVA(i)
		if seenPage[va] {
			t.Fatalf("duplicate sparse page at index %d", i)
		}
		seenPage[va] = true
		seenCluster[pt.ClusterKey(va.PageNumber(addr.Page4K))]++
	}
	// Sparse pages should rarely share a cluster (at full scale the
	// low-discrepancy scatter shares none; small test universes share a
	// little).
	shared := 0
	for _, c := range seenCluster {
		if c > 1 {
			shared++
		}
	}
	if float64(shared) > 0.10*float64(len(seenCluster)) {
		t.Errorf("%d of %d clusters shared; sparse scatter broken", shared, len(seenCluster))
	}
}

func TestDensePagesContiguous(t *testing.T) {
	s, _ := ByName("BFS", 64)
	for i := uint64(0); i < 100; i++ {
		want := BaseVA + addr.VirtAddr(i*4096)
		if got := s.PageVA(i); got != want {
			t.Fatalf("dense PageVA(%d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestTouchedPageVAsCount(t *testing.T) {
	s, _ := ByName("TC", 64)
	count := uint64(0)
	s.TouchedPageVAs(func(va addr.VirtAddr) bool {
		count++
		return true
	})
	if count != s.touchedPages() {
		t.Errorf("iterated %d pages, want %d", count, s.touchedPages())
	}
	// Early stop.
	count = 0
	s.TouchedPageVAs(func(va addr.VirtAddr) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop after %d, want 10", count)
	}
}

// TestTraceStaysInTouchedRegion: every trace access must target a touched
// page (otherwise the timed phase would fault on new pages forever).
func TestTraceStaysInTouchedRegion(t *testing.T) {
	for _, name := range []string{"BFS", "GUPS", "SysBench"} {
		s, _ := ByName(name, 128)
		touched := make(map[addr.VirtAddr]bool)
		s.TouchedPageVAs(func(va addr.VirtAddr) bool {
			touched[va] = true
			return true
		})
		tr := s.NewTrace(1, 50_000)
		for {
			va, ok := tr.Next()
			if !ok {
				break
			}
			page := addr.AlignDown(va, 4*addr.KB)
			if !touched[page] {
				t.Fatalf("%s: access %#x outside touched set", name, va)
			}
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	s, _ := ByName("PR", 128)
	a, b := s.NewTrace(9, 1000), s.NewTrace(9, 1000)
	for {
		va1, ok1 := a.Next()
		va2, ok2 := b.Next()
		if ok1 != ok2 || va1 != va2 {
			t.Fatal("trace not deterministic")
		}
		if !ok1 {
			break
		}
	}
}

func TestTraceLength(t *testing.T) {
	s, _ := ByName("CC", 128)
	tr := s.NewTrace(3, 123)
	n := 0
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		n++
	}
	if n != 123 || tr.Len() != 123 {
		t.Errorf("trace emitted %d accesses, want 123", n)
	}
}

// TestHotSetConcentration: with a high hot fraction, a large share of
// accesses hits the small hot region.
func TestHotSetConcentration(t *testing.T) {
	s, _ := ByName("PR", 128) // HotFraction 0.68
	hotLimit := BaseVA + addr.VirtAddr(256*addr.KB)
	tr := s.NewTrace(5, 20_000)
	hot := 0
	for {
		va, ok := tr.Next()
		if !ok {
			break
		}
		if va < hotLimit {
			hot++
		}
	}
	frac := float64(hot) / 20000
	if frac < s.HotFraction-0.1 {
		t.Errorf("hot-set share %.2f below configured %.2f", frac, s.HotFraction)
	}
}

func TestTHPFractionsMatchTableI(t *testing.T) {
	// Table I: graph kernels see no page-table change under THP; GUPS and
	// SysBench collapse almost entirely onto huge pages.
	for _, name := range []string{"BFS", "PR", "TC"} {
		s, _ := ByName(name, 1)
		if s.THPFraction != 0 {
			t.Errorf("%s THPFraction = %v, want 0", name, s.THPFraction)
		}
	}
	for _, name := range []string{"GUPS", "SysBench"} {
		s, _ := ByName(name, 1)
		if s.THPFraction != 1 {
			t.Errorf("%s THPFraction = %v, want 1", name, s.THPFraction)
		}
	}
}
