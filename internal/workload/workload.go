// Package workload provides synthetic generators for the paper's eleven
// applications (Section VI): eight GraphBIG graph kernels, GUPS, MUMmer,
// and the SysBench memory benchmark. Real binaries and inputs are not
// available here, so each generator reproduces the property that drives the
// paper's results: the application's *touched footprint* and *access
// pattern*, calibrated so the page tables it populates reach the way sizes
// Table I reports.
//
// Calibration: a W-slot HPT way is the paper's final size when the touched
// cluster count is ≈1.2 × W (occupancy 0.8 at the previous size — above
// the 0.6 upsize threshold — and 0.4 at the final size — below it). Dense
// workloads touch 8 contiguous pages per cluster; sparse workloads (GUPS)
// touch ≈1 page per cluster.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/pt"
	"repro/internal/snapshot"
)

// Kind selects the access-pattern family.
type Kind int

// Pattern families.
const (
	// Dense: a contiguous touched region; accesses mix sequential sweeps
	// with uniform random references (graph kernels, MUMmer, SysBench).
	Dense Kind = iota
	// Sparse: pages are scattered across a much larger data universe, so
	// page-table clustering cannot merge them (GUPS).
	Sparse
)

// Spec describes one application.
type Spec struct {
	Name string
	// DataBytes is the application's data memory (Table I column 2).
	DataBytes uint64
	// TouchedBytes is the memory actually faulted in during the measured
	// window, calibrated to Table I's page-table sizes.
	TouchedBytes uint64
	Kind         Kind
	// SeqFraction is the probability an access continues a sequential
	// sweep rather than jumping uniformly at random.
	SeqFraction float64
	// BlockBytes, when nonzero, makes random jumps land on block
	// boundaries and continue sequentially within the block (SysBench's
	// blocked access).
	BlockBytes uint64
	// THPFraction is the fraction of the touched region that is
	// THP-eligible, calibrated to Table I's THP columns.
	THPFraction float64
	// HotFraction is the probability an access targets the hot working set
	// (models the temporal locality real applications have: frontiers,
	// property arrays, stacks). Hot accesses mostly hit caches and TLBs;
	// the remaining accesses stress translation.
	HotFraction float64
	// HotBytes is the hot working-set size; it defaults to 256KB, which
	// fits the L2 cache and the L1 TLB.
	HotBytes uint64
}

// BaseVA is where the touched region (dense) or data universe (sparse)
// starts in virtual memory.
const BaseVA = addr.VirtAddr(0x5800_0000_0000)

// wayTargets maps each application to the final ECPT/ME-HPT way size
// (bytes) Table I and Figure 12 report for 4KB pages without THP, from
// which TouchedBytes is derived.
func touchedForWay(wayBytes uint64, kind Kind) uint64 {
	slots := wayBytes / pt.EntryBytes
	clusters := slots + slots/5 // 1.2 × W
	if kind == Sparse {
		return clusters * 4 * addr.KB // one page per cluster
	}
	return clusters * pt.ClusterSpan * 4 * addr.KB
}

// Specs returns the eleven applications in the paper's order. scale divides
// every size (scale 1 = the paper's full configuration); it must be ≥ 1.
func Specs(scale uint64) []Spec {
	if scale == 0 {
		scale = 1
	}
	d := func(gb float64) uint64 { return uint64(gb*float64(addr.GB)) / scale }
	w := func(wayBytes uint64, kind Kind) uint64 {
		return touchedForWay(wayBytes/scale, kind)
	}
	return []Spec{
		{Name: "BC", DataBytes: d(17.3), TouchedBytes: w(8*addr.MB, Dense), Kind: Dense, SeqFraction: 0.55, THPFraction: 0, HotFraction: 0.68},
		{Name: "BFS", DataBytes: d(9.3), TouchedBytes: w(16*addr.MB, Dense), Kind: Dense, SeqFraction: 0.5, THPFraction: 0, HotFraction: 0.65},
		{Name: "CC", DataBytes: d(9.3), TouchedBytes: w(16*addr.MB, Dense), Kind: Dense, SeqFraction: 0.55, THPFraction: 0, HotFraction: 0.65},
		{Name: "DC", DataBytes: d(9.3), TouchedBytes: w(16*addr.MB, Dense), Kind: Dense, SeqFraction: 0.65, THPFraction: 0, HotFraction: 0.68},
		{Name: "DFS", DataBytes: d(9.0), TouchedBytes: w(16*addr.MB, Dense), Kind: Dense, SeqFraction: 0.35, THPFraction: 0, HotFraction: 0.6},
		{Name: "GUPS", DataBytes: d(64), TouchedBytes: w(64*addr.MB, Sparse), Kind: Sparse, SeqFraction: 0.02, THPFraction: 1.0, HotFraction: 0.05},
		{Name: "MUMmer", DataBytes: d(6.9), TouchedBytes: w(1*addr.MB, Dense), Kind: Dense, SeqFraction: 0.45, THPFraction: 0.5, HotFraction: 0.6},
		{Name: "PR", DataBytes: d(9.3), TouchedBytes: w(16*addr.MB, Dense), Kind: Dense, SeqFraction: 0.7, THPFraction: 0, HotFraction: 0.68},
		{Name: "SSSP", DataBytes: d(9.3), TouchedBytes: w(16*addr.MB, Dense), Kind: Dense, SeqFraction: 0.5, THPFraction: 0, HotFraction: 0.65},
		{Name: "SysBench", DataBytes: d(64), TouchedBytes: w(64*addr.MB, Dense), Kind: Dense, SeqFraction: 0.6, BlockBytes: 1 * addr.KB, THPFraction: 1.0, HotFraction: 0.15},
		{Name: "TC", DataBytes: d(11.9), TouchedBytes: w(2*addr.MB, Dense), Kind: Dense, SeqFraction: 0.6, THPFraction: 0, HotFraction: 0.68},
	}
}

// ByName returns the spec with the given name at the given scale.
func ByName(name string, scale uint64) (Spec, error) {
	for _, s := range Specs(scale) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q", name)
}

// Names returns the application names in the paper's order.
func Names() []string {
	names := make([]string, 0, 11)
	for _, s := range Specs(1) {
		names = append(names, s.Name)
	}
	return names
}

// touchedPages returns how many distinct 4KB pages the workload faults in.
func (s Spec) touchedPages() uint64 { return s.TouchedBytes / (4 * addr.KB) }

// universePages returns the page count of the data universe sparse accesses
// draw from, rounded down to a power of two so that the odd-multiplier page
// scatter (i*K mod N with gcd(K,N)=1) visits distinct pages.
func (s Spec) universePages() uint64 {
	p := s.DataBytes / (4 * addr.KB)
	if p < s.touchedPages() {
		p = s.touchedPages()
	}
	pow := uint64(1)
	for pow*2 <= p {
		pow *= 2
	}
	for pow < s.touchedPages() {
		pow *= 2
	}
	return pow
}

// sparseStride is the odd multiplier that spreads sparse page indices over
// the data universe: page i lives at (i*sparseStride) mod universe. The
// multiplier is a large odd constant, so indices are distinct until the
// universe wraps and consecutive pages land far apart (no clustering).
const sparseStride = 0x9E3779B97F4A7C15

// PageVA returns the virtual address of the i-th touched page in
// first-touch order.
func (s Spec) PageVA(i uint64) addr.VirtAddr {
	if s.Kind == Sparse {
		page := (i * sparseStride) % s.universePages()
		return BaseVA + addr.VirtAddr(page*4*addr.KB)
	}
	return BaseVA + addr.VirtAddr(i*4*addr.KB)
}

// TouchedPageVAs iterates the distinct pages in first-touch order, calling
// f for each. Experiment drivers use it to populate page tables at full
// scale. f returning false stops the iteration.
func (s Spec) TouchedPageVAs(f func(va addr.VirtAddr) bool) {
	n := s.touchedPages()
	for i := uint64(0); i < n; i++ {
		if !f(s.PageVA(i)) {
			return
		}
	}
}

// Trace generates the timing-mode access stream: a deterministic sequence
// of n virtual addresses following the spec's pattern.
type Trace struct {
	//mehpt:transient -- construction parameter; Spec.RestoreTrace is a method on the caller's (matching) spec
	spec Spec
	src  *snapshot.Source // counting source under rng, for checkpoints
	//mehpt:transient -- rebuilt as rand.New over src, whose stream position crosses the checkpoint as TraceState.RNG
	rng *rand.Rand
	n       uint64
	emitted uint64
	// sequential cursor state
	curPage uint64 // index into touched pages
	curOff  uint64
}

// NewTrace creates a trace of n accesses with the given seed.
func (s Spec) NewTrace(seed int64, n uint64) *Trace {
	src := snapshot.NewSource(seed)
	return &Trace{spec: s, src: src, rng: rand.New(src), n: n}
}

// TraceState is the serializable position of a Trace: the generator stream
// position plus the sequential cursor. The Spec and length are construction
// parameters and must match on restore.
type TraceState struct {
	N       uint64
	Emitted uint64
	CurPage uint64
	CurOff  uint64
	RNG     snapshot.SourceState
}

// State returns the trace's current position.
func (t *Trace) State() TraceState {
	return TraceState{
		N:       t.n,
		Emitted: t.emitted,
		CurPage: t.curPage,
		CurOff:  t.curOff,
		RNG:     t.src.State(),
	}
}

// RestoreTrace recreates a trace of spec at the recorded position.
func (s Spec) RestoreTrace(st TraceState) *Trace {
	src := snapshot.RestoreSource(st.RNG)
	return &Trace{
		spec:    s,
		src:     src,
		rng:     rand.New(src),
		n:       st.N,
		emitted: st.Emitted,
		curPage: st.CurPage,
		curOff:  st.CurOff,
	}
}

// Len returns the total number of accesses the trace will produce.
func (t *Trace) Len() uint64 { return t.n }

// Next returns the next access, or false when the trace is exhausted.
func (t *Trace) Next() (addr.VirtAddr, bool) {
	if t.emitted >= t.n {
		return 0, false
	}
	t.emitted++
	s := t.spec
	pages := s.touchedPages()
	// Hot-set access: a reference into the small resident working set at
	// the front of the touched region.
	if s.HotFraction > 0 && t.rng.Float64() < s.HotFraction {
		hot := s.HotBytes
		if hot == 0 {
			hot = 256 * addr.KB
		}
		hotPages := hot / (4 * addr.KB)
		if hotPages > pages {
			hotPages = pages
		}
		pg := uint64(t.rng.Int63()) % hotPages
		off := (uint64(t.rng.Int63()) % (4 * addr.KB)) &^ 7
		return s.PageVA(pg) + addr.VirtAddr(off), true
	}
	if t.rng.Float64() >= s.SeqFraction {
		// Random jump.
		if s.BlockBytes > 0 {
			blockPages := s.BlockBytes / (4 * addr.KB)
			if blockPages == 0 {
				blockPages = 1
			}
			blocks := pages / blockPages
			if blocks == 0 {
				blocks = 1
			}
			t.curPage = (uint64(t.rng.Int63()) % blocks) * blockPages
			t.curOff = 0
		} else {
			t.curPage = uint64(t.rng.Int63()) % pages
			t.curOff = uint64(t.rng.Int63()) % (4 * addr.KB)
			t.curOff &^= 7
		}
	} else {
		// Sequential step: next cache line.
		t.curOff += 64
		if t.curOff >= 4*addr.KB {
			t.curOff = 0
			t.curPage++
			if t.curPage >= pages {
				t.curPage = 0
			}
		}
	}
	return s.PageVA(t.curPage) + addr.VirtAddr(t.curOff), true
}

// NextBatch fills out with the next accesses of the trace and returns how
// many it produced — short only when the trace ends. It draws the exact
// RNG sequence len-sequential-Next-calls would, so a batched consumer sees
// a bit-identical access stream.
//mehpt:hotpath
func (t *Trace) NextBatch(out []addr.VirtAddr) int {
	for i := range out {
		va, ok := t.Next()
		if !ok {
			return i
		}
		out[i] = va
	}
	return len(out)
}
