package osmodel

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/radix"
)

func newOS(t *testing.T, cfg Config) (*OS, *phys.Memory) {
	t.Helper()
	mem := phys.NewMemory(2 * addr.GB)
	alloc := phys.NewAllocator(mem, 0)
	pcfg := mehpt.DefaultConfig(3)
	pcfg.Rand = rand.New(rand.NewSource(1))
	pt, err := mehpt.NewPageTable(alloc, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, pt, alloc), mem
}

func TestFaultMapsPage(t *testing.T) {
	o, _ := newOS(t, DefaultConfig())
	va := addr.VirtAddr(0x1234_5678)
	cycles, err := o.HandleFault(va)
	if err != nil {
		t.Fatal(err)
	}
	if cycles < DefaultConfig().FaultOverhead {
		t.Errorf("fault cost %d below kernel overhead", cycles)
	}
	tr, ok := o.pt.Translate(va)
	if !ok || tr.Size != addr.Page4K {
		t.Fatalf("fault did not map: %+v %v", tr, ok)
	}
	if o.Stats().Faults != 1 {
		t.Errorf("faults = %d", o.Stats().Faults)
	}
}

func TestTHPMapsHugePage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.THP = true
	cfg.THPFraction = 1.0
	o, _ := newOS(t, cfg)
	va := addr.VirtAddr(0x4000_1234)
	if _, err := o.HandleFault(va); err != nil {
		t.Fatal(err)
	}
	tr, ok := o.pt.Translate(va)
	if !ok || tr.Size != addr.Page2M {
		t.Fatalf("THP fault mapped %v, want 2MB", tr.Size)
	}
	if o.Stats().HugeFaults != 1 {
		t.Errorf("huge faults = %d", o.Stats().HugeFaults)
	}
	// The whole 2MB region is now mapped: a neighbouring page is covered.
	if _, ok := o.pt.Translate(va + 1*addr.MB); !ok {
		t.Error("2MB mapping does not cover its region")
	}
}

func TestTHPFractionZeroNeverHuge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.THP = true
	cfg.THPFraction = 0
	o, _ := newOS(t, cfg)
	for i := 0; i < 50; i++ {
		o.HandleFault(addr.VirtAddr(uint64(i) * 2 * addr.MB))
	}
	if o.Stats().HugeFaults != 0 {
		t.Errorf("huge faults = %d with fraction 0", o.Stats().HugeFaults)
	}
}

func TestTHPFractionApproximate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.THP = true
	cfg.THPFraction = 0.5
	o, _ := newOS(t, cfg)
	const regions = 400
	for i := 0; i < regions; i++ {
		o.HandleFault(addr.VirtAddr(uint64(i) * 2 * addr.MB))
	}
	frac := float64(o.Stats().HugeFaults) / regions
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("huge fraction = %.2f, want ≈0.5", frac)
	}
}

func TestTHPEligibilityStable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.THP = true
	cfg.THPFraction = 0.5
	o, _ := newOS(t, cfg)
	for r := uint64(0); r < 100; r++ {
		a := o.hugeEligible(r)
		b := o.hugeEligible(r)
		if a != b {
			t.Fatalf("eligibility of region %d not stable", r)
		}
	}
}

// TestTHPFallsBackUnderFragmentation: when no 2MB block exists, the fault
// degrades to a 4KB mapping like Linux THP.
func TestTHPFallsBackUnderFragmentation(t *testing.T) {
	mem := phys.NewMemory(64 * addr.MB)
	fr := phys.NewFragmenter(mem)
	// Shred so that 8KB blocks survive but nothing near 2MB coalesces.
	if err := fr.Fragment(0.9, 0.4, phys.OrderFor(8*addr.KB), rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	alloc := phys.NewAllocator(mem, 0.9)
	pcfg := mehpt.DefaultConfig(3)
	pcfg.Rand = rand.New(rand.NewSource(1))
	pt, err := mehpt.NewPageTable(alloc, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.THP = true
	cfg.THPFraction = 1.0
	o := New(cfg, pt, alloc)
	va := addr.VirtAddr(0x800_0000)
	if _, err := o.HandleFault(va); err != nil {
		t.Fatalf("fault failed outright: %v", err)
	}
	tr, ok := pt.Translate(va)
	if !ok || tr.Size != addr.Page4K {
		t.Fatalf("expected 4KB fallback, got %v,%v", tr.Size, ok)
	}
	if o.Stats().HugeFaults != 0 {
		t.Error("huge fault recorded despite fallback")
	}
}

func TestPrefaultCoversRegion(t *testing.T) {
	o, _ := newOS(t, DefaultConfig())
	base := addr.VirtAddr(0x10_0000)
	if _, err := o.Prefault(base, 64*4096); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Faults != 64 {
		t.Errorf("faults = %d, want 64", o.Stats().Faults)
	}
	for i := 0; i < 64; i++ {
		if _, ok := o.pt.Translate(base + addr.VirtAddr(i*4096)); !ok {
			t.Fatalf("page %d not mapped after Prefault", i)
		}
	}
	// Prefaulting again is a no-op.
	if _, err := o.Prefault(base, 64*4096); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Faults != 64 {
		t.Errorf("redundant prefault added faults: %d", o.Stats().Faults)
	}
}

func TestPrefaultWithTHPSkipsByRegion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.THP = true
	cfg.THPFraction = 1.0
	o, _ := newOS(t, cfg)
	if _, err := o.Prefault(0x4000_0000, 8*addr.MB); err != nil {
		t.Fatal(err)
	}
	if got := o.Stats().Faults; got != 4 {
		t.Errorf("faults = %d, want 4 (one per 2MB region)", got)
	}
}

func TestOutOfMemory(t *testing.T) {
	mem := phys.NewMemory(1 * addr.MB)
	alloc := phys.NewAllocator(mem, 0)
	pt, err := radix.NewPageTable(alloc)
	if err != nil {
		t.Fatal(err)
	}
	o := New(DefaultConfig(), &radixMapper{pt}, alloc)
	var sawErr bool
	for i := 0; i < 1000; i++ {
		if _, err := o.HandleFault(addr.VirtAddr(uint64(i) * 4096)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("1MB machine faulted 1000 pages without error")
	}
}

// radixMapper adapts radix.PageTable to the osmodel.PageTable interface.
type radixMapper struct{ *radix.PageTable }
