package osmodel

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/radix"
	"repro/internal/tlb"
)

func newProc(t *testing.T, id int, pages int) (*Proc, *mehpt.PageTable) {
	t.Helper()
	mem := phys.NewMemory(1 * addr.GB)
	alloc := phys.NewAllocator(mem, 0)
	cfg := mehpt.DefaultConfig(uint64(id))
	cfg.Rand = rand.New(rand.NewSource(int64(id)))
	pt, err := mehpt.NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		pt.Map(addr.VPN(i*8), addr.Page4K, addr.PPN(i)) // distinct clusters
	}
	return &Proc{ID: id, PT: pt, TLBs: tlb.NewTableIII()}, pt
}

func TestSwitchChargesL2PEntries(t *testing.T) {
	pa, pta := newProc(t, 1, 10_000)
	pb, ptb := newProc(t, 2, 100)
	s := NewScheduler(DefaultSwitchCosts(), pa, pb)
	cycles, err := s.Switch(1)
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := pta.L2PSaveRestoreEntries() + ptb.L2PSaveRestoreEntries()
	want := DefaultSwitchCosts().Base + uint64(wantEntries)*DefaultSwitchCosts().PerL2PEntry
	if cycles != want {
		t.Errorf("switch cycles = %d, want %d (%d L2P entries)", cycles, want, wantEntries)
	}
	if s.Current() != pb {
		t.Error("current process not switched")
	}
}

func TestSwitchToSelfIsFree(t *testing.T) {
	pa, _ := newProc(t, 1, 100)
	pb, _ := newProc(t, 2, 100)
	s := NewScheduler(DefaultSwitchCosts(), pa, pb)
	if c, _ := s.Switch(0); c != 0 {
		t.Errorf("self-switch cost = %d", c)
	}
	if s.Stats().Switches != 0 {
		t.Error("self-switch counted")
	}
}

func TestSwitchFlushesTLBs(t *testing.T) {
	pa, _ := newProc(t, 1, 100)
	pb, _ := newProc(t, 2, 100)
	va := addr.VirtAddr(0x1000)
	pa.TLBs.Insert(va, addr.Page4K)
	s := NewScheduler(DefaultSwitchCosts(), pa, pb)
	s.Switch(1)
	if r, _ := pa.TLBs.Lookup(va, addr.Page4K); r != tlb.MissAll {
		t.Error("outgoing process's TLBs not flushed")
	}
}

func TestNoFlushWhenDisabled(t *testing.T) {
	pa, _ := newProc(t, 1, 100)
	pb, _ := newProc(t, 2, 100)
	va := addr.VirtAddr(0x1000)
	pa.TLBs.Insert(va, addr.Page4K)
	costs := DefaultSwitchCosts()
	costs.FlushTLBs = false // ASID-tagged TLBs
	s := NewScheduler(costs, pa, pb)
	s.Switch(1)
	if r, _ := pa.TLBs.Lookup(va, addr.Page4K); r == tlb.MissAll {
		t.Error("TLBs flushed despite ASIDs")
	}
}

// TestRadixCarriesNoL2P: non-HPT page tables have no MMU table state, so a
// radix pair switches at the base cost.
func TestRadixCarriesNoL2P(t *testing.T) {
	mem := phys.NewMemory(256 * addr.MB)
	alloc := phys.NewAllocator(mem, 0)
	rp1, _ := radix.NewPageTable(alloc)
	rp2, _ := radix.NewPageTable(alloc)
	s := NewScheduler(DefaultSwitchCosts(),
		&Proc{ID: 1, PT: &radixMapper{rp1}},
		&Proc{ID: 2, PT: &radixMapper{rp2}})
	cycles, _ := s.Switch(1)
	if cycles != DefaultSwitchCosts().Base {
		t.Errorf("radix switch = %d, want base %d", cycles, DefaultSwitchCosts().Base)
	}
}

func TestRoundRobin(t *testing.T) {
	pa, _ := newProc(t, 1, 1000)
	pb, _ := newProc(t, 2, 1000)
	pc, _ := newProc(t, 3, 1000)
	s := NewScheduler(DefaultSwitchCosts(), pa, pb, pc)
	total := s.RoundRobin(30)
	st := s.Stats()
	if st.Switches != 30 {
		t.Errorf("switches = %d", st.Switches)
	}
	if total != st.SwitchCycles {
		t.Errorf("RoundRobin total %d != stats %d", total, st.SwitchCycles)
	}
	if s.AvgL2PEntries() <= 0 {
		t.Error("no L2P entries transferred")
	}
	// Section V-C: the L2P component is a small share of the switch.
	if st.L2PCyclesTotal*2 > st.SwitchCycles {
		t.Errorf("L2P transfer (%d cyc) dominates switching (%d cyc); paper says modest",
			st.L2PCyclesTotal, st.SwitchCycles)
	}
}

func TestSwitchErrors(t *testing.T) {
	pa, _ := newProc(t, 1, 10)
	s := NewScheduler(DefaultSwitchCosts(), pa)
	if _, err := s.Switch(5); err == nil {
		t.Error("switch to missing process succeeded")
	}
}
