package osmodel

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/radix"
	"repro/internal/tlb"
)

func newProc(t *testing.T, id int, pages int) (*Proc, *mehpt.PageTable) {
	t.Helper()
	mem := phys.NewMemory(1 * addr.GB)
	alloc := phys.NewAllocator(mem, 0)
	cfg := mehpt.DefaultConfig(uint64(id))
	cfg.Rand = rand.New(rand.NewSource(int64(id)))
	pt, err := mehpt.NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		pt.Map(addr.VPN(i*8), addr.Page4K, addr.PPN(i)) // distinct clusters
	}
	return &Proc{ID: id, PT: pt, TLBs: tlb.NewTableIII()}, pt
}

func TestSwitchChargesL2PEntries(t *testing.T) {
	pa, pta := newProc(t, 1, 10_000)
	pb, ptb := newProc(t, 2, 100)
	s := NewScheduler(DefaultSwitchCosts(), pa, pb)
	cycles, err := s.Switch(1)
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := pta.L2PSaveRestoreEntries() + ptb.L2PSaveRestoreEntries()
	want := DefaultSwitchCosts().Base + uint64(wantEntries)*DefaultSwitchCosts().PerL2PEntry
	if cycles != want {
		t.Errorf("switch cycles = %d, want %d (%d L2P entries)", cycles, want, wantEntries)
	}
	if s.Current() != pb {
		t.Error("current process not switched")
	}
}

func TestSwitchToSelfIsFree(t *testing.T) {
	pa, _ := newProc(t, 1, 100)
	pb, _ := newProc(t, 2, 100)
	s := NewScheduler(DefaultSwitchCosts(), pa, pb)
	if c, _ := s.Switch(0); c != 0 {
		t.Errorf("self-switch cost = %d", c)
	}
	if s.Stats().Switches != 0 {
		t.Error("self-switch counted")
	}
}

func TestSwitchFlushesTLBs(t *testing.T) {
	pa, _ := newProc(t, 1, 100)
	pb, _ := newProc(t, 2, 100)
	va := addr.VirtAddr(0x1000)
	pa.TLBs.Insert(va, addr.Page4K, 1)
	s := NewScheduler(DefaultSwitchCosts(), pa, pb)
	s.Switch(1)
	if r, _, _ := pa.TLBs.Lookup(va, addr.Page4K); r != tlb.MissAll {
		t.Error("outgoing process's TLBs not flushed")
	}
}

func TestNoFlushWhenDisabled(t *testing.T) {
	pa, _ := newProc(t, 1, 100)
	pb, _ := newProc(t, 2, 100)
	va := addr.VirtAddr(0x1000)
	pa.TLBs.Insert(va, addr.Page4K, 1)
	costs := DefaultSwitchCosts()
	costs.FlushTLBs = false // ASID-tagged TLBs
	s := NewScheduler(costs, pa, pb)
	s.Switch(1)
	if r, _, _ := pa.TLBs.Lookup(va, addr.Page4K); r == tlb.MissAll {
		t.Error("TLBs flushed despite ASIDs")
	}
}

// TestRadixCarriesNoL2P: non-HPT page tables have no MMU table state, so a
// radix pair switches at the base cost.
func TestRadixCarriesNoL2P(t *testing.T) {
	mem := phys.NewMemory(256 * addr.MB)
	alloc := phys.NewAllocator(mem, 0)
	rp1, _ := radix.NewPageTable(alloc)
	rp2, _ := radix.NewPageTable(alloc)
	s := NewScheduler(DefaultSwitchCosts(),
		&Proc{ID: 1, PT: &radixMapper{rp1}},
		&Proc{ID: 2, PT: &radixMapper{rp2}})
	cycles, _ := s.Switch(1)
	if cycles != DefaultSwitchCosts().Base {
		t.Errorf("radix switch = %d, want base %d", cycles, DefaultSwitchCosts().Base)
	}
}

func TestRoundRobin(t *testing.T) {
	pa, _ := newProc(t, 1, 1000)
	pb, _ := newProc(t, 2, 1000)
	pc, _ := newProc(t, 3, 1000)
	s := NewScheduler(DefaultSwitchCosts(), pa, pb, pc)
	total := s.RoundRobin(30)
	st := s.Stats()
	if st.Switches != 30 {
		t.Errorf("switches = %d", st.Switches)
	}
	if total != st.SwitchCycles {
		t.Errorf("RoundRobin total %d != stats %d", total, st.SwitchCycles)
	}
	if s.AvgL2PEntries() <= 0 {
		t.Error("no L2P entries transferred")
	}
	// Section V-C: the L2P component is a small share of the switch.
	if st.L2PCyclesTotal*2 > st.SwitchCycles {
		t.Errorf("L2P transfer (%d cyc) dominates switching (%d cyc); paper says modest",
			st.L2PCyclesTotal, st.SwitchCycles)
	}
}

func TestSwitchErrors(t *testing.T) {
	pa, _ := newProc(t, 1, 10)
	s := NewScheduler(DefaultSwitchCosts(), pa)
	if _, err := s.Switch(5); err == nil {
		t.Error("switch to missing process succeeded")
	}
}

// --- MultiCore scheduler ---

func newMultiProcs(t *testing.T, n, pages int) []*Proc {
	t.Helper()
	procs := make([]*Proc, n)
	for i := range procs {
		p, _ := newProc(t, i+1, pages)
		p.ID = i
		procs[i] = p
	}
	return procs
}

// TestMultiCoreOrderIgnoresCoreCount: the canonical per-round visit order is
// a function of (seed, round) only — schedulers built over the same process
// set with the same seed but different core counts draw identical
// permutations forever. This is the invariant the multi-tenant fingerprint
// rests on.
func TestMultiCoreOrderIgnoresCoreCount(t *testing.T) {
	const procs, rounds = 7, 50
	orders := make([][][]int, 0, 3)
	for _, cores := range []int{1, 3, 8} {
		ps := newMultiProcs(t, procs, 10)
		m := NewMultiCore(DefaultSwitchCosts(), cores, 12345, ps...)
		var all [][]int
		for r := 0; r < rounds; r++ {
			all = append(all, append([]int(nil), m.NextRound()...))
		}
		orders = append(orders, all)
	}
	for i := 1; i < len(orders); i++ {
		for r := range orders[0] {
			for k := range orders[0][r] {
				if orders[i][r][k] != orders[0][r][k] {
					t.Fatalf("round %d: order diverges across core counts: %v vs %v",
						r, orders[0][r], orders[i][r])
				}
			}
		}
	}
}

// TestMultiCoreRoundIsPermutation: every round visits each process exactly
// once, and different seeds give different schedules.
func TestMultiCoreRoundIsPermutation(t *testing.T) {
	ps := newMultiProcs(t, 9, 10)
	m := NewMultiCore(DefaultSwitchCosts(), 4, 1, ps...)
	seen := make([]bool, 9)
	for _, pid := range m.NextRound() {
		if pid < 0 || pid >= 9 || seen[pid] {
			t.Fatalf("round is not a permutation: pid %d", pid)
		}
		seen[pid] = true
	}
	ps2 := newMultiProcs(t, 9, 10)
	m2 := NewMultiCore(DefaultSwitchCosts(), 4, 2, ps2...)
	diff := false
	for r := 0; r < 5 && !diff; r++ {
		a := append([]int(nil), m.NextRound()...)
		b := m2.NextRound()
		for i := range a {
			if a[i] != b[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("seeds 1 and 2 drew identical schedules for 5 rounds")
	}
}

// TestMultiCorePinning: pid is pinned to pid mod C, so placement never
// depends on history.
func TestMultiCorePinning(t *testing.T) {
	ps := newMultiProcs(t, 10, 10)
	m := NewMultiCore(DefaultSwitchCosts(), 4, 1, ps...)
	for pid := 0; pid < 10; pid++ {
		if got := m.CoreOf(pid); got != pid%4 {
			t.Errorf("CoreOf(%d) = %d, want %d", pid, got, pid%4)
		}
	}
}

// TestMultiCoreVisitAccounting: the first visit switches (base + L2P cost),
// an incumbent revisit is free, and displacing the incumbent charges both
// processes' L2P entries.
func TestMultiCoreVisitAccounting(t *testing.T) {
	ps := newMultiProcs(t, 3, 500) // 3 procs, 1 core: constant displacement
	m := NewMultiCore(DefaultSwitchCosts(), 1, 1, ps...)
	core, cycles, switched := m.Visit(0)
	if core != 0 || !switched {
		t.Fatalf("first Visit = core %d switched %v", core, switched)
	}
	in := ps[0].PT.(L2PCarrier).L2PSaveRestoreEntries()
	want := DefaultSwitchCosts().Base + uint64(in)*DefaultSwitchCosts().PerL2PEntry
	if cycles != want {
		t.Errorf("first switch cycles = %d, want %d (no outgoing process)", cycles, want)
	}
	if _, c, sw := m.Visit(0); c != 0 || sw {
		t.Errorf("incumbent revisit charged %d cycles, switched=%v", c, sw)
	}
	_, cycles, _ = m.Visit(1)
	both := in + ps[1].PT.(L2PCarrier).L2PSaveRestoreEntries()
	want = DefaultSwitchCosts().Base + uint64(both)*DefaultSwitchCosts().PerL2PEntry
	if cycles != want {
		t.Errorf("displacement cycles = %d, want %d (save + restore)", cycles, want)
	}
	if m.Incumbent(0) != 1 {
		t.Errorf("incumbent = %d, want 1", m.Incumbent(0))
	}
	if st := m.Stats(); st.Switches != 2 {
		t.Errorf("switches = %d, want 2", st.Switches)
	}
}

// TestMultiCoreEnoughCores: with C >= P every process keeps its core, so
// after the first rounds no further switches happen — the scheduler models
// dedicated-core tenancy for free.
func TestMultiCoreEnoughCores(t *testing.T) {
	ps := newMultiProcs(t, 4, 100)
	m := NewMultiCore(DefaultSwitchCosts(), 4, 1, ps...)
	for r := 0; r < 3; r++ {
		for _, pid := range m.NextRound() {
			m.Visit(pid)
		}
	}
	if st := m.Stats(); st.Switches != 4 {
		t.Errorf("switches = %d, want 4 (one initial bind per core)", st.Switches)
	}
}

// TestMultiCoreVisitFlushesDisplacedTLBs mirrors TestSwitchFlushesTLBs for
// the multi-core path.
func TestMultiCoreVisitFlushesDisplacedTLBs(t *testing.T) {
	ps := newMultiProcs(t, 2, 100)
	va := addr.VirtAddr(0x1000)
	m := NewMultiCore(DefaultSwitchCosts(), 1, 1, ps...)
	m.Visit(0)
	ps[0].TLBs.Insert(va, addr.Page4K, 1)
	m.Visit(1)
	if r, _, _ := ps[0].TLBs.Lookup(va, addr.Page4K); r != tlb.MissAll {
		t.Error("displaced process's TLBs not flushed")
	}
}
