package osmodel

import (
	"math/rand"

	"repro/internal/snapshot"
)

// RestoreStats reinstates OS counters captured by Stats — the OS itself is
// rebuilt with New over the restored page table and allocator.
func (o *OS) RestoreStats(s Stats) { o.stats = s }

// MultiCoreState is the serializable form of a MultiCore scheduler. Perm is
// persistent scratch — the permutation is shuffled in place across rounds,
// so its current order is part of the deterministic schedule and must cross
// the checkpoint verbatim.
type MultiCoreState struct {
	Incumbent []int
	Perm      []int
	Rounds    uint64
	Stats     SchedulerStats
	RNG       snapshot.SourceState
}

// State returns a deep copy of the scheduler's position.
func (m *MultiCore) State() MultiCoreState {
	return MultiCoreState{
		Incumbent: append([]int(nil), m.incumbent...),
		Perm:      append([]int(nil), m.perm...),
		Rounds:    m.rounds,
		Stats:     m.stats,
		RNG:       m.src.State(),
	}
}

// RestoreMultiCore rebuilds a scheduler at the recorded position. costs,
// cores, and procs must match the captured run (they are construction
// parameters, not state); the permutation generator is replayed to its
// recorded draw count.
func RestoreMultiCore(costs SwitchCosts, cores int, st MultiCoreState, procs ...*Proc) *MultiCore {
	src := snapshot.RestoreSource(st.RNG)
	m := &MultiCore{
		costs:     costs,
		cores:     cores,
		procs:     procs,
		incumbent: append([]int(nil), st.Incumbent...),
		src:       src,
		rng:       rand.New(src),
		perm:      append([]int(nil), st.Perm...),
		rounds:    st.Rounds,
		stats:     st.Stats,
	}
	return m
}
