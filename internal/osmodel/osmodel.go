// Package osmodel is the operating-system layer of the simulation: demand
// paging, data-frame allocation, and the transparent-huge-page policy. It
// is deliberately small — the paper's OS involvement is page-fault handling
// and page-table maintenance, both of which it prices in cycles.
package osmodel

import (
	"errors"
	"fmt"

	"repro/internal/addr"
	"repro/internal/phys"
	"repro/internal/pt"
)

// PressureError is the typed error the OS model surfaces when a fault
// cannot be serviced because of memory pressure: the data-frame allocation
// or the page-table mapping failed after every degradation rung (huge-page
// fallback, resize deferral, software stash). The wrapped chain reaches
// phys.ErrOutOfMemory — use errors.As to recover the fault context and
// errors.Is(err, phys.ErrOutOfMemory) to test the cause.
type PressureError struct {
	VA  addr.VirtAddr // faulting virtual address
	Op  string        // "data-alloc" or "pt-map"
	Err error         // underlying cause chain
}

func (e *PressureError) Error() string {
	return fmt.Sprintf("osmodel: fault at %#x: %s: %v", uint64(e.VA), e.Op, e.Err)
}

func (e *PressureError) Unwrap() error { return e.Err }

// opError tags mapPage failures with the failing operation so HandleFault
// can build the PressureError without string matching.
type opError struct {
	op  string
	err error
}

func (e *opError) Error() string { return e.op + ": " + e.err.Error() }

func (e *opError) Unwrap() error { return e.err }

// PageTable is the mapping interface all three organizations provide.
type PageTable interface {
	Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error)
	Unmap(vpn addr.VPN, s addr.PageSize) (uint64, bool)
	Translate(va addr.VirtAddr) (pt.Translation, bool)
}

// Config parameterizes the OS model.
type Config struct {
	// THP enables transparent huge pages: eligible 2MB regions are mapped
	// with a single 2MB page on first touch.
	THP bool
	// THPFraction is the fraction of 2MB regions that are THP-eligible,
	// a workload property (irregular allocators defeat THP; see Table I
	// where graph applications see no page-table change under THP).
	THPFraction float64
	// FaultOverhead is the fixed kernel entry/exit + fault bookkeeping
	// cost in cycles, charged per page fault.
	FaultOverhead uint64
}

// DefaultConfig returns a reasonable OS cost model.
func DefaultConfig() Config {
	return Config{FaultOverhead: 1000}
}

// Stats aggregates OS activity.
type Stats struct {
	Faults          uint64
	HugeFaults      uint64
	FaultCycles     uint64 // total cycles spent in fault handling
	DataAllocCycles uint64
	PTCycles        uint64 // page-table maintenance cycles (allocs, moves)
}

// OS models one process's kernel interaction.
type OS struct {
	cfg   Config
	pt    PageTable
	alloc phys.Source
	stats Stats
}

// New creates the OS layer for one process.
func New(cfg Config, table PageTable, alloc phys.Source) *OS {
	return &OS{cfg: cfg, pt: table, alloc: alloc}
}

// Stats returns OS counters.
func (o *OS) Stats() Stats { return o.stats }

// hugeEligible deterministically decides whether the 2MB region containing
// va is THP-eligible, using a hash so eligibility is stable per region and
// the configured fraction holds in aggregate.
func (o *OS) hugeEligible(region uint64) bool {
	if !o.cfg.THP || o.cfg.THPFraction <= 0 {
		return false
	}
	if o.cfg.THPFraction >= 1 {
		return true
	}
	h := region * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return float64(h%1024)/1024 < o.cfg.THPFraction
}

// HandleFault services a page fault at va: it allocates a data frame (2MB
// when the region is THP-eligible, 4KB otherwise), installs the mapping,
// and returns the total fault cost in cycles.
func (o *OS) HandleFault(va addr.VirtAddr) (uint64, error) {
	o.stats.Faults++
	cycles := o.cfg.FaultOverhead

	if o.hugeEligible(uint64(va) >> addr.Page2M.Shift()) {
		c, err := o.mapPage(va, addr.Page2M)
		cycles += c
		if err == nil {
			o.stats.HugeFaults++
			o.stats.FaultCycles += cycles
			return cycles, nil
		}
		// Huge allocation failed (fragmentation): fall back to a base page,
		// as Linux THP does.
	}
	c, err := o.mapPage(va, addr.Page4K)
	cycles += c
	o.stats.FaultCycles += cycles
	if err != nil {
		op := "map"
		var oe *opError
		if errors.As(err, &oe) {
			// Lift the tag into the PressureError and wrap the tag's cause
			// directly so the op is not printed twice.
			op, err = oe.op, oe.err
		}
		return cycles, &PressureError{VA: va, Op: op, Err: err}
	}
	return cycles, nil
}

func (o *OS) mapPage(va addr.VirtAddr, s addr.PageSize) (uint64, error) {
	frame, allocCycles, err := o.alloc.Alloc(s.Bytes())
	o.stats.DataAllocCycles += allocCycles
	cycles := allocCycles
	if err != nil {
		return cycles, &opError{op: "data-alloc", err: err}
	}
	// The buddy allocator hands out 4KB-frame numbers; convert to a frame
	// number at the mapping's page size.
	ppn := frame.Addr(addr.Page4K).PageNumber(s)
	ptCycles, err := o.pt.Map(va.PageNumber(s), s, ppn)
	o.stats.PTCycles += ptCycles
	cycles += ptCycles
	if err != nil {
		o.alloc.Free(frame, s.Bytes())
		return cycles, &opError{op: "pt-map", err: err}
	}
	return cycles, nil
}

// Prefault maps every page backing the region [va, va+bytes) eagerly,
// charging the same costs as demand faults. Experiment drivers use it to
// populate page tables at full scale without running a timing simulation.
func (o *OS) Prefault(va addr.VirtAddr, bytes uint64) (uint64, error) {
	var total uint64
	end := va + addr.VirtAddr(bytes)
	for cur := va; cur < end; {
		if tr, ok := o.pt.Translate(cur); ok {
			cur = addr.AlignDown(cur, tr.Size.Bytes()) + addr.VirtAddr(tr.Size.Bytes())
			continue
		}
		c, err := o.HandleFault(cur)
		total += c
		if err != nil {
			return total, err
		}
		tr, _ := o.pt.Translate(cur)
		cur = addr.AlignDown(cur, tr.Size.Bytes()) + addr.VirtAddr(tr.Size.Bytes())
	}
	return total, nil
}
