package osmodel

import (
	"fmt"
	"math/rand"

	"repro/internal/snapshot"
	"repro/internal/tlb"
)

// Section V-C models the per-process state the OS must swap on a context
// switch. For ME-HPT that includes the process's L2P table: the MMU holds
// only the running process's table, and the OS saves/restores the valid
// entries — which are clustered at the extremes of each subtable, so only
// the used ones move.

// L2PCarrier is implemented by page tables with MMU-resident L2P state
// (mehpt.PageTable); other organizations carry none.
type L2PCarrier interface {
	// L2PSaveRestoreEntries returns the number of valid L2P entries a
	// context switch must save and restore.
	L2PSaveRestoreEntries() int
}

// SwitchCosts parameterizes the context-switch cost model.
type SwitchCosts struct {
	// Base covers the organization-independent switch work: register state,
	// kernel scheduling, CR3 write (a few microseconds in real systems; we
	// charge only the MMU-relevant fixed part).
	Base uint64
	// PerL2PEntry is the cost of saving plus restoring one 33-bit L2P
	// entry.
	PerL2PEntry uint64
	// FlushTLBs: without ASIDs the TLBs are flushed on switch, refilled by
	// subsequent walks.
	FlushTLBs bool
}

// DefaultSwitchCosts returns a cost model consistent with Section V-C's
// "modest overhead" claim: 53 average entries × 4 cycles ≈ 200 cycles on
// top of the base switch cost.
func DefaultSwitchCosts() SwitchCosts {
	return SwitchCosts{Base: 1000, PerL2PEntry: 4, FlushTLBs: true}
}

// Proc is one schedulable process: its page table and, optionally, the TLB
// hierarchy state that would be flushed on switch.
type Proc struct {
	ID   int
	PT   PageTable
	TLBs *tlb.Hierarchy // may be nil (population-only experiments)
}

// Scheduler switches a single simulated hart between processes, charging
// the ME-HPT L2P save/restore costs the paper analyzes in Section V-C.
type Scheduler struct {
	costs SwitchCosts
	procs []*Proc
	cur   int

	stats SchedulerStats
}

// SchedulerStats aggregates switch activity.
type SchedulerStats struct {
	Switches       uint64
	SwitchCycles   uint64
	L2PEntriesSum  uint64 // total entries saved+restored, for averaging
	L2PCyclesTotal uint64
}

// NewScheduler creates a scheduler over the given processes; procs[0] runs
// first.
func NewScheduler(costs SwitchCosts, procs ...*Proc) *Scheduler {
	if len(procs) == 0 {
		panic("osmodel: scheduler needs at least one process")
	}
	return &Scheduler{costs: costs, procs: procs}
}

// Current returns the running process.
func (s *Scheduler) Current() *Proc { return s.procs[s.cur] }

// Stats returns switch counters.
func (s *Scheduler) Stats() SchedulerStats { return s.stats }

// Switch makes process idx the running one and returns the switch cost in
// cycles. Switching to the current process is free (no-op).
func (s *Scheduler) Switch(idx int) (uint64, error) {
	if idx < 0 || idx >= len(s.procs) {
		return 0, fmt.Errorf("osmodel: no process %d", idx)
	}
	if idx == s.cur {
		return 0, nil
	}
	out, in := s.procs[s.cur], s.procs[idx]
	cycles := s.costs.Base

	// Save the outgoing process's L2P entries and restore the incoming
	// one's (Section V-C): both transfers touch only valid entries.
	entries := 0
	if c, ok := out.PT.(L2PCarrier); ok {
		entries += c.L2PSaveRestoreEntries()
	}
	if c, ok := in.PT.(L2PCarrier); ok {
		entries += c.L2PSaveRestoreEntries()
	}
	l2pCycles := uint64(entries) * s.costs.PerL2PEntry
	cycles += l2pCycles
	s.stats.L2PEntriesSum += uint64(entries)
	s.stats.L2PCyclesTotal += l2pCycles

	if s.costs.FlushTLBs && out.TLBs != nil {
		out.TLBs.Flush()
	}

	s.cur = idx
	s.stats.Switches++
	s.stats.SwitchCycles += cycles
	return cycles, nil
}

// RoundRobin performs n switches cycling through all processes and returns
// the total cycles spent switching.
func (s *Scheduler) RoundRobin(n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		next := (s.cur + 1) % len(s.procs)
		c, _ := s.Switch(next) //mehpt:allow errwrap -- modulo index is always valid
		total += c
	}
	return total
}

// AvgL2PEntries returns the average L2P entries transferred per switch —
// the paper reports ~53 used entries per application (Figure 14), making
// the transfer a few hundred cycles.
func (s *Scheduler) AvgL2PEntries() float64 {
	if s.stats.Switches == 0 {
		return 0
	}
	return float64(s.stats.L2PEntriesSum) / float64(s.stats.Switches)
}

// MultiCore schedules P processes over C simulated cores for the
// multi-tenant mode. It is the single-hart Scheduler grown along two axes:
//
//   - Placement: process pid is pinned to core pid mod C. Pinning is a pure
//     function of identity, so where a process runs never depends on what
//     ran before it.
//   - Order: each round visits the processes in a seeded-permutation order
//     drawn from the scheduler's private generator. The permutation is a
//     function of (seed, round number) over the full process set — never of
//     the core count or of which processes are still runnable — so the
//     canonical execution order is bit-identical at any C.
//
// The scheduler is accounting-only: it decides order and charges switch
// costs, while the caller owns the per-core MMU shards and performs the
// Bind/flush the switch implies. Switch cycle counters are core-view
// metrics (a core whose incumbent returns pays nothing, which legitimately
// happens more often at higher C); they are reported but excluded from the
// canonical fingerprint.
type MultiCore struct {
	//mehpt:transient -- construction parameter re-supplied to RestoreMultiCore, not state
	costs SwitchCosts
	//mehpt:transient -- construction parameter re-supplied to RestoreMultiCore, not state
	cores int
	//mehpt:transient -- the processes are restored separately and re-attached by RestoreMultiCore
	procs []*Proc
	// incumbent[c] is the pid resident on core c, or -1 when the core has
	// run nothing yet.
	incumbent []int
	src       *snapshot.Source // counting source under rng, for checkpoints
	//mehpt:transient -- rebuilt as rand.New over src, whose stream position crosses the checkpoint as MultiCoreState.RNG
	rng *rand.Rand
	perm      []int // scratch for the per-round permutation
	rounds    uint64

	stats SchedulerStats
}

// NewMultiCore creates a multi-core scheduler over the given processes.
// cores is clamped to at least 1; seed feeds the scheduler's private
// permutation generator (derive it from the machine seed via
// runner.DeriveSubSeed so the schedule is part of the seed tree).
func NewMultiCore(costs SwitchCosts, cores int, seed int64, procs ...*Proc) *MultiCore {
	if len(procs) == 0 {
		panic("osmodel: multi-core scheduler needs at least one process")
	}
	if cores < 1 {
		cores = 1
	}
	src := snapshot.NewSource(seed)
	m := &MultiCore{
		costs:     costs,
		cores:     cores,
		procs:     procs,
		incumbent: make([]int, cores),
		src:       src,
		rng:       rand.New(src),
		perm:      make([]int, len(procs)),
	}
	for c := range m.incumbent {
		m.incumbent[c] = -1
	}
	for i := range m.perm {
		m.perm[i] = i
	}
	return m
}

// Cores returns the simulated core count.
func (m *MultiCore) Cores() int { return m.cores }

// CoreOf returns the core process pid is pinned to.
func (m *MultiCore) CoreOf(pid int) int { return pid % m.cores }

// Incumbent returns the pid resident on core c, or -1 if none yet.
func (m *MultiCore) Incumbent(c int) int { return m.incumbent[c] }

// Rounds returns how many rounds have been drawn.
func (m *MultiCore) Rounds() uint64 { return m.rounds }

// Stats returns switch counters (core-view metrics).
func (m *MultiCore) Stats() SchedulerStats { return m.stats }

// NextRound draws the canonical visit order for the next round: a seeded
// Fisher-Yates permutation over the full process set. The returned slice is
// scratch reused by the next call. The generator is consumed identically
// every round regardless of which processes remain runnable, so a tenant
// failing mid-run perturbs nothing but its own absence.
func (m *MultiCore) NextRound() []int {
	m.rounds++
	for i := len(m.perm) - 1; i > 0; i-- {
		j := m.rng.Intn(i + 1)
		m.perm[i], m.perm[j] = m.perm[j], m.perm[i]
	}
	return m.perm
}

// Visit makes process pid current on its core, charging a context switch
// when the core's incumbent differs. It returns the core, the switch cost
// in cycles (0 when the incumbent returns), and whether a switch happened.
// The caller rebinds the core's MMU shard on switched == true; flushing
// per-quantum translation state unconditionally is the caller's business
// (see the canonical-cold-start rule in DESIGN.md).
func (m *MultiCore) Visit(pid int) (core int, cycles uint64, switched bool) {
	core = m.CoreOf(pid)
	prev := m.incumbent[core]
	if prev == pid {
		return core, 0, false
	}
	cycles = m.costs.Base
	entries := 0
	if prev >= 0 {
		if c, ok := m.procs[prev].PT.(L2PCarrier); ok {
			entries += c.L2PSaveRestoreEntries()
		}
		if m.costs.FlushTLBs && m.procs[prev].TLBs != nil {
			m.procs[prev].TLBs.Flush()
		}
	}
	if c, ok := m.procs[pid].PT.(L2PCarrier); ok {
		entries += c.L2PSaveRestoreEntries()
	}
	l2pCycles := uint64(entries) * m.costs.PerL2PEntry
	cycles += l2pCycles
	m.incumbent[core] = pid
	m.stats.Switches++
	m.stats.SwitchCycles += cycles
	m.stats.L2PEntriesSum += uint64(entries)
	m.stats.L2PCyclesTotal += l2pCycles
	return core, cycles, true
}

// AvgL2PEntries returns the average L2P entries transferred per switch.
func (m *MultiCore) AvgL2PEntries() float64 {
	if m.stats.Switches == 0 {
		return 0
	}
	return float64(m.stats.L2PEntriesSum) / float64(m.stats.Switches)
}

