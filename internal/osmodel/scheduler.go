package osmodel

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/tlb"
)

// Section V-C models the per-process state the OS must swap on a context
// switch. For ME-HPT that includes the process's L2P table: the MMU holds
// only the running process's table, and the OS saves/restores the valid
// entries — which are clustered at the extremes of each subtable, so only
// the used ones move.

// L2PCarrier is implemented by page tables with MMU-resident L2P state
// (mehpt.PageTable); other organizations carry none.
type L2PCarrier interface {
	// L2PSaveRestoreEntries returns the number of valid L2P entries a
	// context switch must save and restore.
	L2PSaveRestoreEntries() int
}

// SwitchCosts parameterizes the context-switch cost model.
type SwitchCosts struct {
	// Base covers the organization-independent switch work: register state,
	// kernel scheduling, CR3 write (a few microseconds in real systems; we
	// charge only the MMU-relevant fixed part).
	Base uint64
	// PerL2PEntry is the cost of saving plus restoring one 33-bit L2P
	// entry.
	PerL2PEntry uint64
	// FlushTLBs: without ASIDs the TLBs are flushed on switch, refilled by
	// subsequent walks.
	FlushTLBs bool
}

// DefaultSwitchCosts returns a cost model consistent with Section V-C's
// "modest overhead" claim: 53 average entries × 4 cycles ≈ 200 cycles on
// top of the base switch cost.
func DefaultSwitchCosts() SwitchCosts {
	return SwitchCosts{Base: 1000, PerL2PEntry: 4, FlushTLBs: true}
}

// Proc is one schedulable process: its page table and, optionally, the TLB
// hierarchy state that would be flushed on switch.
type Proc struct {
	ID   int
	PT   PageTable
	TLBs *tlb.Hierarchy // may be nil (population-only experiments)
}

// Scheduler switches a single simulated hart between processes, charging
// the ME-HPT L2P save/restore costs the paper analyzes in Section V-C.
type Scheduler struct {
	costs SwitchCosts
	procs []*Proc
	cur   int

	stats SchedulerStats
}

// SchedulerStats aggregates switch activity.
type SchedulerStats struct {
	Switches       uint64
	SwitchCycles   uint64
	L2PEntriesSum  uint64 // total entries saved+restored, for averaging
	L2PCyclesTotal uint64
}

// NewScheduler creates a scheduler over the given processes; procs[0] runs
// first.
func NewScheduler(costs SwitchCosts, procs ...*Proc) *Scheduler {
	if len(procs) == 0 {
		panic("osmodel: scheduler needs at least one process")
	}
	return &Scheduler{costs: costs, procs: procs}
}

// Current returns the running process.
func (s *Scheduler) Current() *Proc { return s.procs[s.cur] }

// Stats returns switch counters.
func (s *Scheduler) Stats() SchedulerStats { return s.stats }

// Switch makes process idx the running one and returns the switch cost in
// cycles. Switching to the current process is free (no-op).
func (s *Scheduler) Switch(idx int) (uint64, error) {
	if idx < 0 || idx >= len(s.procs) {
		return 0, fmt.Errorf("osmodel: no process %d", idx)
	}
	if idx == s.cur {
		return 0, nil
	}
	out, in := s.procs[s.cur], s.procs[idx]
	cycles := s.costs.Base

	// Save the outgoing process's L2P entries and restore the incoming
	// one's (Section V-C): both transfers touch only valid entries.
	entries := 0
	if c, ok := out.PT.(L2PCarrier); ok {
		entries += c.L2PSaveRestoreEntries()
	}
	if c, ok := in.PT.(L2PCarrier); ok {
		entries += c.L2PSaveRestoreEntries()
	}
	l2pCycles := uint64(entries) * s.costs.PerL2PEntry
	cycles += l2pCycles
	s.stats.L2PEntriesSum += uint64(entries)
	s.stats.L2PCyclesTotal += l2pCycles

	if s.costs.FlushTLBs && out.TLBs != nil {
		flushAll(out.TLBs)
	}

	s.cur = idx
	s.stats.Switches++
	s.stats.SwitchCycles += cycles
	return cycles, nil
}

// RoundRobin performs n switches cycling through all processes and returns
// the total cycles spent switching.
func (s *Scheduler) RoundRobin(n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		next := (s.cur + 1) % len(s.procs)
		c, _ := s.Switch(next)
		total += c
	}
	return total
}

// AvgL2PEntries returns the average L2P entries transferred per switch —
// the paper reports ~53 used entries per application (Figure 14), making
// the transfer a few hundred cycles.
func (s *Scheduler) AvgL2PEntries() float64 {
	if s.stats.Switches == 0 {
		return 0
	}
	return float64(s.stats.L2PEntriesSum) / float64(s.stats.Switches)
}

func flushAll(h *tlb.Hierarchy) {
	for _, sz := range tlbSizes() {
		h.L1(sz).Flush()
		h.L2(sz).Flush()
	}
}

func tlbSizes() []addr.PageSize { return addr.Sizes() }
