// Error-chain tests: every recoverable failure in the allocation/resize
// stack is a typed sentinel wrapping the underlying cause via %w, so
// errors.Is reaches phys.ErrOutOfMemory (and inject.ErrInjected for
// injected faults) from any layer, and rollback leaves each layer valid at
// its old geometry.
package inject_test

import (
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/chunk"
	"repro/internal/cuckoo"
	"repro/internal/ecpt"
	"repro/internal/inject"
	"repro/internal/l2p"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/pt"
)

// TestChunkTransitionChain: a chunk-size transition whose next-rung
// allocation is injected to fail must roll back to the old rung, leave the
// buddy state untouched, and return ErrTransitionFailed wrapping the cause.
func TestChunkTransitionChain(t *testing.T) {
	mem := phys.NewMemory(64 * addr.MB)
	alloc := phys.NewAllocator(mem, 0.7)
	tbl := l2p.New(3)

	s, _, err := chunk.NewStore(alloc, tbl, 0, addr.Page4K, 8*addr.KB)
	if err != nil {
		t.Fatal(err)
	}
	// Block the next rung (1MB) but not the current one (8KB).
	inject.Attach(alloc, inject.MinSize{Bytes: 1 * addr.MB})

	preFree := mem.FreeBytes()
	preChunk, preWay, preNum := s.ChunkBytes(), s.WayBytes(), s.NumChunks()

	_, err = s.Transition(2 * addr.MB)
	if err == nil {
		t.Fatal("Transition must fail under a blocked next rung")
	}
	if !errors.Is(err, chunk.ErrTransitionFailed) {
		t.Errorf("want ErrTransitionFailed in chain: %v", err)
	}
	if !errors.Is(err, phys.ErrOutOfMemory) || !errors.Is(err, inject.ErrInjected) {
		t.Errorf("chain must reach phys.ErrOutOfMemory and inject.ErrInjected: %v", err)
	}
	if s.ChunkBytes() != preChunk || s.WayBytes() != preWay || s.NumChunks() != preNum {
		t.Errorf("store not rolled back: chunk %d way %d n %d, want %d/%d/%d",
			s.ChunkBytes(), s.WayBytes(), s.NumChunks(), preChunk, preWay, preNum)
	}
	if got := mem.FreeBytes(); got != preFree {
		t.Errorf("buddy state changed across rolled-back transition: free %d, want %d", got, preFree)
	}
	s.Free()
}

// TestECPTConstructionChain: ECPT needs an 8KB contiguous block per initial
// way; when that is injected to fail, construction returns the chain intact
// and strands no frames.
func TestECPTConstructionChain(t *testing.T) {
	mem := phys.NewMemory(16 * addr.MB)
	alloc := phys.NewAllocator(mem, 0.7)
	baseline := mem.FreeBytes()
	inject.Attach(alloc, inject.MinSize{Bytes: 8 * addr.KB})

	_, err := ecpt.NewTable(addr.Page4K, alloc, ecpt.DefaultConfig(3))
	if err == nil {
		t.Fatal("construction must fail when the initial ways cannot be allocated")
	}
	if !errors.Is(err, phys.ErrOutOfMemory) || !errors.Is(err, inject.ErrInjected) {
		t.Errorf("chain must reach phys.ErrOutOfMemory and inject.ErrInjected: %v", err)
	}
	if got := mem.FreeBytes(); got != baseline {
		t.Errorf("failed construction leaked frames: free %d, want %d", got, baseline)
	}
}

// TestMEHPTResizeFailedChain: hard exhaustion after the initial ways makes
// every upsize fail down the whole degradation ladder; the insert that
// finally cannot be placed surfaces ErrTableFull wrapping ErrResizeFailed
// wrapping the injected out-of-memory cause, and everything accepted before
// that still translates.
func TestMEHPTResizeFailedChain(t *testing.T) {
	mem := phys.NewMemory(16 * addr.MB)
	alloc := phys.NewAllocator(mem, 0.7)
	// The 4KB table's three initial 8KB ways are attempts 1..3; everything
	// after fails, so no resize can ever complete.
	inject.Attach(alloc, inject.AfterN{N: 3})

	table, err := mehpt.NewPageTable(alloc, mehpt.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(map[addr.VPN]addr.PPN)
	var insertErr error
	for i := 0; i < 5000; i++ {
		vpn := addr.VPN(i) * pt.ClusterSpan
		ppn := addr.PPN(i + 1)
		if _, err := table.Map(vpn, addr.Page4K, ppn); err != nil {
			insertErr = err
			break
		}
		accepted[vpn] = ppn
	}
	if insertErr == nil {
		t.Fatal("table absorbed 5000 clusters into 3 frozen 8KB ways; expected ErrTableFull")
	}
	if !errors.Is(insertErr, mehpt.ErrTableFull) {
		t.Errorf("want ErrTableFull in chain: %v", insertErr)
	}
	if !errors.Is(insertErr, mehpt.ErrResizeFailed) {
		t.Errorf("want ErrResizeFailed in chain: %v", insertErr)
	}
	if !errors.Is(insertErr, phys.ErrOutOfMemory) || !errors.Is(insertErr, inject.ErrInjected) {
		t.Errorf("chain must reach phys.ErrOutOfMemory and inject.ErrInjected: %v", insertErr)
	}
	if len(accepted) == 0 {
		t.Fatal("nothing accepted before exhaustion")
	}
	if got := table.Table(addr.Page4K).Stats().FailedUpsizes; got == 0 {
		t.Error("FailedUpsizes = 0; the deferral path never ran")
	}
	for vpn, want := range accepted {
		got, ok := table.TranslateSize(vpn, addr.Page4K)
		if !ok || got != want {
			t.Fatalf("accepted vpn %#x lost after rejected insert: got %#x/%v, want %#x",
				vpn, got, ok, want)
		}
	}
	table.Free()
}

// TestCuckooMigrationFailedChain: with MaxKicks=0 a gradual-rehash conflict
// cannot displace its victim, so draining the resize surfaces
// ErrMigrationFailed — and the failed step's rollback keeps every accepted
// key reachable. The seed grid is fixed, so the trigger is deterministic.
func TestCuckooMigrationFailedChain(t *testing.T) {
	triggered := false
	for seed := uint64(1); seed <= 20 && !triggered; seed++ {
		cfg := cuckoo.Config{
			Ways:           2,
			InitialEntries: 8,
			UpsizeAt:       0.6,
			DownsizeAt:     0.2,
			MaxKicks:       0,
			RehashBatch:    1,
			HashSeed:       seed,
			Hooks: cuckoo.Hooks{
				AllocWays: func(uint64) error { return nil },
				FreeWays:  func(uint64) {},
			},
		}
		tb, err := cuckoo.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		accepted := make(map[uint64]uint64)
		for k := uint64(1); k <= 200; k++ {
			if _, err := tb.Insert(k, k*10); err != nil {
				break
			}
			accepted[k] = k * 10
		}
		if err := tb.DrainResize(); err != nil {
			if !errors.Is(err, cuckoo.ErrMigrationFailed) {
				t.Fatalf("seed %d: drain error is not ErrMigrationFailed: %v", seed, err)
			}
			triggered = true
		}
		for k, want := range accepted {
			got, ok := tb.Lookup(k)
			if !ok || got != want {
				t.Fatalf("seed %d: accepted key %d unreachable (got %d/%v, want %d)",
					seed, k, got, ok, want)
			}
		}
	}
	if !triggered {
		t.Error("no seed in the grid triggered a migration failure; tighten the config")
	}
}
