package inject

import "repro/internal/snapshot"

// InjectorState is the serializable position of an Injector: its counters
// plus the stream positions of every stateful (Random) clause, in policy
// order. Stateless clauses decide from the request alone and carry nothing.
type InjectorState struct {
	Attempts uint64
	Injected uint64
	RNG      []snapshot.SourceState
}

// visitRandoms walks the policy tree in clause order, calling f for every
// Random member.
func visitRandoms(p Policy, f func(*Random)) {
	switch v := p.(type) {
	case *Random:
		f(v)
	case Any:
		for _, m := range v {
			visitRandoms(m, f)
		}
	}
}

// State returns the injector's current position.
func (in *Injector) State() InjectorState {
	st := InjectorState{Attempts: in.stats.Attempts, Injected: in.stats.Injected}
	visitRandoms(in.policy, func(r *Random) {
		st.RNG = append(st.RNG, r.src.State())
	})
	return st
}

// Restore repositions the injector — counters and every Random clause's
// generator — to the recorded state. The installed policy must have the
// same clause structure as the captured one (it is rebuilt from the same
// spec string); a clause-count mismatch reports false.
func (in *Injector) Restore(st InjectorState) bool {
	var randoms []*Random
	visitRandoms(in.policy, func(r *Random) { randoms = append(randoms, r) })
	if len(randoms) != len(st.RNG) {
		return false
	}
	for i, r := range randoms {
		r.src.Restore(st.RNG[i])
	}
	in.stats = Stats{Attempts: st.Attempts, Injected: st.Injected}
	return true
}
