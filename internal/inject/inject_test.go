package inject

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/phys"
)

// req builds a minimal request for policy unit tests.
func req(seq, size uint64) phys.AllocRequest {
	return phys.AllocRequest{Size: size, Order: phys.OrderFor(size), Seq: seq,
		FreeBytes: 64 * addr.MB, TotalBytes: 64 * addr.MB}
}

func TestEveryNth(t *testing.T) {
	p := EveryNth{N: 3}
	for seq := uint64(1); seq <= 12; seq++ {
		want := seq%3 == 0
		if got := p.ShouldFail(req(seq, 4096)); got != want {
			t.Errorf("nth=3 seq %d: got %v, want %v", seq, got, want)
		}
	}
	if (EveryNth{}).ShouldFail(req(1, 4096)) {
		t.Error("nth=0 must never fail")
	}
}

func TestAfterN(t *testing.T) {
	p := AfterN{N: 5}
	for seq := uint64(1); seq <= 10; seq++ {
		if got, want := p.ShouldFail(req(seq, 4096)), seq > 5; got != want {
			t.Errorf("after=5 seq %d: got %v, want %v", seq, got, want)
		}
	}
}

func TestPressure(t *testing.T) {
	p := Pressure{UsedFraction: 0.5}
	r := phys.AllocRequest{Seq: 1, TotalBytes: 100, FreeBytes: 60}
	if p.ShouldFail(r) {
		t.Error("40% used must pass a 0.5 ceiling")
	}
	r.FreeBytes = 40
	if !p.ShouldFail(r) {
		t.Error("60% used must fail a 0.5 ceiling")
	}
	r.TotalBytes = 0
	if p.ShouldFail(r) {
		t.Error("zero-capacity request must never fail (no pressure defined)")
	}
}

func TestMinSize(t *testing.T) {
	p := MinSize{Bytes: 64 * addr.KB}
	if p.ShouldFail(req(1, 4*addr.KB)) {
		t.Error("small allocation must pass")
	}
	if !p.ShouldFail(req(1, 64*addr.KB)) || !p.ShouldFail(req(1, 8*addr.MB)) {
		t.Error("allocation at/above the threshold must fail")
	}
}

// TestRandomDeterminism: same seed -> identical decision stream; the stream
// is a pure function of the seed and the attempt sequence.
func TestRandomDeterminism(t *testing.T) {
	a, b := NewRandom(0.3, 7), NewRandom(0.3, 7)
	var fails int
	for seq := uint64(1); seq <= 2000; seq++ {
		da, db := a.ShouldFail(req(seq, 4096)), b.ShouldFail(req(seq, 4096))
		if da != db {
			t.Fatalf("seq %d: same-seed policies disagree", seq)
		}
		if da {
			fails++
		}
	}
	if fails < 400 || fails > 800 {
		t.Errorf("rate=0.3 over 2000 attempts injected %d times; want ~600", fails)
	}
}

// TestAnyConsultsAllMembers: Any must never short-circuit, so a stateful
// Random member consumes exactly one draw per attempt regardless of the
// other members' decisions.
func TestAnyConsultsAllMembers(t *testing.T) {
	const seed = 9
	p := Any{EveryNth{N: 2}, NewRandom(0.5, seed)}
	ref := rand.New(rand.NewSource(seed))
	for seq := uint64(1); seq <= 500; seq++ {
		wantRand := ref.Float64() < 0.5
		want := seq%2 == 0 || wantRand
		if got := p.ShouldFail(req(seq, 4096)); got != want {
			t.Fatalf("seq %d: got %v, want %v (random member out of sync)", seq, got, want)
		}
	}
}

func TestParseValid(t *testing.T) {
	cases := []struct{ spec, str string }{
		{"nth=7", "nth=7"},
		{"after=100", "after=100"},
		{"rate=0.05", "rate=0.05"},
		{"pressure=0.9", "pressure=0.9"},
		{"big=1MB", "big=1048576"},
		{"big=4096", "big=4096"},
		{" nth=3 + big=8KB ", "nth=3+big=8192"},
		{"pressure=0.9+big=1MB+nth=2", "pressure=0.9+big=1048576+nth=2"},
	}
	for _, c := range cases {
		p, err := Parse(c.spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if p.String() != c.str {
			t.Errorf("Parse(%q).String() = %q, want %q", c.spec, p.String(), c.str)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "nth", "nth=", "nth=0", "nth=-1", "nth=x",
		"after=x", "rate=2", "rate=-0.1", "rate=x",
		"pressure=1.5", "pressure=x", "big=", "big=7XB", "big=MB",
		"bogus=1", "nth=3+bogus=1", "nth=3++big=1MB",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

// TestParseRateSeeding: the same seed reproduces the rate clause's stream;
// composed rate clauses get unrelated streams.
func TestParseRateSeeding(t *testing.T) {
	stream := func(seed int64) []bool {
		p, err := Parse("rate=0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 300)
		for i := range out {
			out[i] = p.ShouldFail(req(uint64(i+1), 4096))
		}
		return out
	}
	a, b, c := stream(11), stream(11), stream(12)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed must reproduce the decision stream")
	}
	if same(a, c) {
		t.Error("different seeds produced identical 300-draw streams")
	}
}

// TestInjectorErrorChain: injected failures must look like genuine
// exhaustion to callers (wrap phys.ErrOutOfMemory) while staying
// identifiable as injected (wrap ErrInjected), and must be counted on both
// the injector and the allocator.
func TestInjectorErrorChain(t *testing.T) {
	mem := phys.NewMemory(1 * addr.MB)
	alloc := phys.NewAllocator(mem, 0.7)
	in := Attach(alloc, EveryNth{N: 2})

	if _, _, err := alloc.Alloc(4096); err != nil {
		t.Fatalf("attempt 1 (not a multiple of 2) must pass: %v", err)
	}
	_, _, err := alloc.Alloc(4096)
	if err == nil {
		t.Fatal("attempt 2 must be injected")
	}
	if !errors.Is(err, phys.ErrOutOfMemory) {
		t.Errorf("injected error must wrap phys.ErrOutOfMemory: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error must wrap ErrInjected: %v", err)
	}
	if !strings.Contains(err.Error(), "nth=2") {
		t.Errorf("error should name the policy: %v", err)
	}
	if s := in.Stats(); s.Attempts != 2 || s.Injected != 1 {
		t.Errorf("injector stats = %+v, want 2 attempts / 1 injected", s)
	}
	if got := mem.Stats().FailedAllocs; got != 1 {
		t.Errorf("allocator FailedAllocs = %d, want 1", got)
	}
}

// TestRollbackBypassesInjection: AllocRollback must succeed even under an
// always-fail policy — failed resizes restore their old geometry through it.
func TestRollbackBypassesInjection(t *testing.T) {
	mem := phys.NewMemory(1 * addr.MB)
	alloc := phys.NewAllocator(mem, 0.7)
	Attach(alloc, EveryNth{N: 1}) // fail every attempt

	if _, _, err := alloc.Alloc(4096); err == nil {
		t.Fatal("Alloc must be injected under nth=1")
	}
	ppn, _, err := alloc.AllocRollback(4096)
	if err != nil {
		t.Fatalf("AllocRollback must bypass injection: %v", err)
	}
	alloc.Free(ppn, 4096)
}
