// Package inject provides seeded, deterministic memory-pressure fault
// injection for the physical allocator. ME-HPT exists to survive hostile
// physical-memory conditions — fragmentation that makes contiguous
// allocation fail (Section III) — so the failure paths of the allocation
// and resize stack are first-class code, and this package is the harness
// that exercises them: an Injector installs a policy-driven phys.AllocHook
// that fails allocation attempts by rule (every Nth attempt, above a
// pressure threshold, a seeded random fraction, or any size class).
//
// Determinism contract: a policy's decisions depend only on the request
// stream and, for Random, on a private *rand.Rand constructed from an
// explicit seed inside this package. The same seed and policy over the
// same allocation sequence always injects the same failures, so runs under
// injection stay bit-identical per seed at any worker count — the same
// contract the rest of the simulator obeys (see DESIGN.md).
//
// Injected errors wrap phys.ErrOutOfMemory (and ErrInjected), so every
// degradation path upstream — chunk rollback, resize deferral, cuckoo
// stash, the OS pressure error — treats injected and genuine contiguity
// failures identically, which is the point: the sweep in sweep_test.go
// proves the stack degrades gracefully under every policy in the grid.
package inject

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/addr"
	"repro/internal/phys"
	"repro/internal/snapshot"
)

// ErrInjected marks an allocation failure as injected (as opposed to a
// genuine buddy-allocator exhaustion). Injected errors also wrap
// phys.ErrOutOfMemory, so callers that only care about "contiguous
// allocation failed" need not distinguish.
var ErrInjected = errors.New("inject: injected allocation failure")

// Policy decides whether one allocation attempt should fail. Policies must
// be deterministic functions of the request (and of private seeded state);
// they must not read clocks, global RNGs, or shared mutable state.
type Policy interface {
	ShouldFail(req phys.AllocRequest) bool
	fmt.Stringer
}

// EveryNth fails every Nth allocation attempt (attempts are 1-based, so
// the first failure is attempt N).
type EveryNth struct{ N uint64 }

// ShouldFail implements Policy.
func (p EveryNth) ShouldFail(req phys.AllocRequest) bool {
	return p.N > 0 && req.Seq%p.N == 0
}

func (p EveryNth) String() string { return fmt.Sprintf("nth=%d", p.N) }

// AfterN lets the first N attempts through and fails everything after —
// the sharpest exhaustion model (memory "runs out" at a fixed point).
type AfterN struct{ N uint64 }

// ShouldFail implements Policy.
func (p AfterN) ShouldFail(req phys.AllocRequest) bool { return req.Seq > p.N }

func (p AfterN) String() string { return fmt.Sprintf("after=%d", p.N) }

// Pressure fails every attempt once used memory exceeds the given fraction
// of capacity — a hard memory-pressure ceiling, the scenario where the OS
// would be reclaiming and compacting instead of handing out frames.
type Pressure struct{ UsedFraction float64 }

// ShouldFail implements Policy.
func (p Pressure) ShouldFail(req phys.AllocRequest) bool {
	if req.TotalBytes == 0 {
		return false
	}
	used := float64(req.TotalBytes-req.FreeBytes) / float64(req.TotalBytes)
	return used > p.UsedFraction
}

func (p Pressure) String() string { return fmt.Sprintf("pressure=%g", p.UsedFraction) }

// MinSize fails every attempt at or above a size threshold — the paper's
// fragmentation failure mode, where small allocations still succeed but
// large contiguous blocks (64MB ECPT ways) cannot be assembled.
type MinSize struct{ Bytes uint64 }

// ShouldFail implements Policy.
func (p MinSize) ShouldFail(req phys.AllocRequest) bool { return req.Size >= p.Bytes }

func (p MinSize) String() string { return fmt.Sprintf("big=%d", p.Bytes) }

// Random fails a seeded random fraction of attempts. The generator is
// private to the policy (constructed by NewRandom from an explicit seed),
// so decisions are reproducible and never shared across jobs.
type Random struct {
	p   float64
	src *snapshot.Source // counting source under rng, for checkpoints
	rng *rand.Rand
}

// NewRandom returns a Random policy failing fraction p of attempts, drawing
// from a fresh generator seeded with seed. Each job must own its policy
// (and therefore its generator); see the runner's RNG-ownership rule.
func NewRandom(p float64, seed int64) *Random {
	src := snapshot.NewSource(seed)
	return &Random{p: p, src: src, rng: rand.New(src)}
}

// ShouldFail implements Policy. It draws exactly once per attempt, so the
// decision stream is a pure function of the seed and the attempt sequence.
func (p *Random) ShouldFail(req phys.AllocRequest) bool {
	return p.rng.Float64() < p.p
}

func (p *Random) String() string { return fmt.Sprintf("rate=%g", p.p) }

// Any fails when any member policy fails (policy composition: "nth=7+big=1MB").
type Any []Policy

// ShouldFail implements Policy. Every member is always consulted — never
// short-circuited — so stateful members (Random) consume their random
// stream identically regardless of the other members' decisions.
func (p Any) ShouldFail(req phys.AllocRequest) bool {
	fail := false
	for _, m := range p {
		if m.ShouldFail(req) {
			fail = true
		}
	}
	return fail
}

func (p Any) String() string {
	parts := make([]string, len(p))
	for i, m := range p {
		parts[i] = m.String()
	}
	return strings.Join(parts, "+")
}

// Stats counts the injector's activity.
type Stats struct {
	Attempts uint64 // allocation attempts observed
	Injected uint64 // attempts failed by policy
}

// Injector binds a Policy to a phys.Allocator as its AllocHook.
type Injector struct {
	policy Policy
	stats  Stats
}

// Attach installs a policy-driven fault injector on the allocator and
// returns it. The injector owns the allocator's Hook slot; attaching a
// second injector replaces the first.
func Attach(a *phys.Allocator, p Policy) *Injector {
	in := &Injector{policy: p}
	a.Hook = in.hook
	return in
}

// AttachStriped installs a policy-driven fault injector on a striped
// multi-tenant pool. The pool serializes hook consultation machine-wide
// (phys.Striped.consultHook runs under its hook mutex), so the injector's
// policy state and counters need no synchronization of their own even when
// the race-tier stress tests drive the pool from many goroutines.
func AttachStriped(s *phys.Striped, p Policy) *Injector {
	in := &Injector{policy: p}
	s.SetHook(in.hook)
	return in
}

// Stats returns the injector's counters.
func (in *Injector) Stats() Stats { return in.stats }

// Policy returns the installed policy.
func (in *Injector) Policy() Policy { return in.policy }

func (in *Injector) hook(req phys.AllocRequest) error {
	in.stats.Attempts++
	if in.policy.ShouldFail(req) {
		in.stats.Injected++
		return fmt.Errorf("%w: %w (policy %s, attempt %d, %d bytes)",
			phys.ErrOutOfMemory, ErrInjected, in.policy, req.Seq, req.Size)
	}
	return nil
}

// Parse builds a Policy from a spec string. Grammar: one or more clauses
// joined by "+", where a clause is
//
//	nth=N        fail every Nth attempt
//	after=N      fail every attempt after the first N
//	rate=P       fail fraction P of attempts (seeded from seed)
//	pressure=F   fail once used memory exceeds fraction F of capacity
//	big=SIZE     fail attempts of at least SIZE bytes (suffixes KB/MB/GB)
//
// e.g. "nth=7", "rate=0.05", "pressure=0.9+big=1MB". seed feeds only the
// rate clause's private generator; every other clause is stateless.
func Parse(spec string, seed int64) (Policy, error) {
	clauses := strings.Split(spec, "+")
	var members Any
	for i, c := range clauses {
		c = strings.TrimSpace(c)
		key, val, ok := strings.Cut(c, "=")
		if !ok {
			return nil, fmt.Errorf("inject: clause %q: want key=value", c)
		}
		switch key {
		case "nth":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("inject: nth=%q: want a positive integer", val)
			}
			members = append(members, EveryNth{N: n})
		case "after":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("inject: after=%q: want an integer", val)
			}
			members = append(members, AfterN{N: n})
		case "rate":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("inject: rate=%q: want a fraction in [0,1]", val)
			}
			// Give each rate clause an unrelated stream so "rate=a+rate=b"
			// does not correlate.
			members = append(members, NewRandom(p, seed+int64(i)*0x9E3779B9))
		case "pressure":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("inject: pressure=%q: want a fraction in [0,1]", val)
			}
			members = append(members, Pressure{UsedFraction: f})
		case "big":
			b, err := parseSize(val)
			if err != nil {
				return nil, fmt.Errorf("inject: big=%q: %w", val, err)
			}
			members = append(members, MinSize{Bytes: b})
		default:
			return nil, fmt.Errorf("inject: unknown clause %q (want nth|after|rate|pressure|big)", key)
		}
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("inject: empty policy spec")
	}
	if len(members) == 1 {
		return members[0], nil
	}
	return members, nil
}

// parseSize parses a byte size with an optional KB/MB/GB suffix.
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "KB"):
		mult, upper = addr.KB, upper[:len(upper)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, upper = addr.MB, upper[:len(upper)-2]
	case strings.HasSuffix(upper, "GB"):
		mult, upper = addr.GB, upper[:len(upper)-2]
	}
	n, err := strconv.ParseUint(upper, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("want BYTES[KB|MB|GB]")
	}
	return n * mult, nil
}
