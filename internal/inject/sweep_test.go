// The fault-injection sweep: the robustness acceptance test for the whole
// allocation/resize stack. Over a grid of injection policies × seeds it
// builds an ME-HPT under fault injection, hammers it with inserts and
// deletes, and asserts the degradation contract of DESIGN.md's "Fault model
// & degradation ladder":
//
//  1. No panics anywhere in the stack (a panic fails the test run).
//  2. Every accepted mapping still translates to the right frame; every
//     rejected mapping was rejected explicitly with a typed error chain
//     reaching phys.ErrOutOfMemory.
//  3. No leaked frames: after Free() the buddy allocator's free bytes and
//     per-order free-block counts return exactly to the pre-table baseline.
//  4. Determinism: the same policy and seed reproduce a bit-identical run
//     fingerprint (counts, stats, and accepted-key checksum).
//
// A companion test drives the OS model to the point of failure and checks
// the typed PressureError surfaces with the full chain intact.
package inject_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/inject"
	"repro/internal/mehpt"
	"repro/internal/osmodel"
	"repro/internal/phys"
	"repro/internal/pt"
	"repro/internal/sim"
	"repro/internal/workload"
)

// sweepFingerprint summarizes one sweep run for determinism comparison.
type sweepFingerprint struct {
	Accepted    int
	Rejected    int
	KeySum      uint64 // checksum over accepted VPNs
	Stash       int
	TableStats  mehpt.Stats
	InjectStats inject.Stats
	Allocs      uint64
	Frees       uint64
	Failed      uint64
}

// sweepOnce builds a table under the policy, runs the insert/delete load,
// verifies the degradation contract, frees everything, verifies frame
// accounting, and returns the run's fingerprint.
func sweepOnce(t *testing.T, spec string, seed int64) sweepFingerprint {
	t.Helper()
	mem := phys.NewMemory(16 * addr.MB)
	alloc := phys.NewAllocator(mem, 0.7)
	baselineFree := mem.FreeBytes()
	baselineBlocks := mem.FreeBlockCounts()

	policy, err := inject.Parse(spec, seed)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	in := inject.Attach(alloc, policy)

	cfg := mehpt.DefaultConfig(uint64(seed))
	table, err := mehpt.NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatalf("NewPageTable: %v", err)
	}

	// Each VPN gets its own cluster (stride = cluster span) so acceptance
	// and rejection are per-insert decisions, not shared-cluster updates.
	const n = 3000
	stride := addr.VPN(pt.ClusterSpan)
	accepted := make(map[addr.VPN]addr.PPN)
	fp := sweepFingerprint{}
	for i := 0; i < n; i++ {
		vpn := addr.VPN(0x10000) + addr.VPN(i)*stride
		ppn := addr.PPN(i + 1)
		_, err := table.Map(vpn, addr.Page4K, ppn)
		if err != nil {
			// Contract 2b: rejections are explicit and typed.
			if !errors.Is(err, phys.ErrOutOfMemory) &&
				!errors.Is(err, mehpt.ErrTableFull) &&
				!errors.Is(err, mehpt.ErrResizeFailed) {
				t.Fatalf("[%s seed %d] vpn %#x rejected with untyped error: %v",
					spec, seed, vpn, err)
			}
			fp.Rejected++
			continue
		}
		accepted[vpn] = ppn
		fp.Accepted++
		fp.KeySum += uint64(vpn)*0x9E3779B97F4A7C15 + uint64(ppn)
	}

	// Delete a third of what was accepted to exercise downsizes (and their
	// skip-on-pressure path) under the same policy.
	i := 0
	for vpn := addr.VPN(0x10000); vpn < addr.VPN(0x10000)+addr.VPN(n)*stride; vpn += stride {
		if _, ok := accepted[vpn]; !ok {
			continue
		}
		if i%3 == 0 {
			if _, ok := table.Unmap(vpn, addr.Page4K); !ok {
				t.Fatalf("[%s seed %d] accepted vpn %#x failed to unmap", spec, seed, vpn)
			}
			delete(accepted, vpn)
		}
		i++
	}

	// Contract 2a: everything still accepted translates, exactly.
	for vpn, want := range accepted {
		got, ok := table.TranslateSize(vpn, addr.Page4K)
		if !ok {
			t.Fatalf("[%s seed %d] accepted vpn %#x no longer translates", spec, seed, vpn)
		}
		if got != want {
			t.Fatalf("[%s seed %d] vpn %#x translates to %#x, want %#x",
				spec, seed, vpn, got, want)
		}
	}

	if tb := table.Table(addr.Page4K); tb != nil {
		fp.Stash = tb.StashLen()
		fp.TableStats = tb.Stats()
	}
	fp.InjectStats = in.Stats()

	// Contract 3: teardown returns the buddy allocator to its baseline.
	table.Free()
	if got := mem.FreeBytes(); got != baselineFree {
		t.Fatalf("[%s seed %d] leaked frames: free %d bytes after Free, baseline %d",
			spec, seed, got, baselineFree)
	}
	if got := mem.FreeBlockCounts(); !reflect.DeepEqual(got, baselineBlocks) {
		t.Fatalf("[%s seed %d] free-list fingerprint diverged:\n got %v\nwant %v",
			spec, seed, got, baselineBlocks)
	}

	s := mem.Stats()
	fp.Allocs, fp.Frees, fp.Failed = s.Allocs, s.Frees, s.FailedAllocs
	return fp
}

// TestFaultSweep runs the policy × seed grid, each cell twice, asserting the
// degradation contract inside sweepOnce and bit-identical fingerprints
// across the repeat.
func TestFaultSweep(t *testing.T) {
	policies := []string{
		"nth=5",              // periodic failures from the start
		"nth=97",             // sparse periodic failures
		"after=20",           // hard exhaustion early in table growth
		"after=200",          // exhaustion mid-growth
		"rate=0.3",           // heavy random failures
		"rate=0.02",          // light random failures
		"big=16KB",           // fragmentation: only the smallest rung allocates
		"big=64KB",           // fragmentation: small rungs allocate
		"pressure=0.001",     // near-total pressure ceiling
		"nth=7+big=64KB",     // composed: periodic plus fragmentation
		"rate=0.1+after=500", // composed, stateful + stateless
	}
	seeds := []int64{1, 2, 3}
	for _, spec := range policies {
		for _, seed := range seeds {
			spec, seed := spec, seed
			t.Run(fmt.Sprintf("%s/seed%d", spec, seed), func(t *testing.T) {
				t.Parallel()
				first := sweepOnce(t, spec, seed)
				second := sweepOnce(t, spec, seed)
				if !reflect.DeepEqual(first, second) {
					t.Errorf("same policy+seed diverged:\n first %+v\nsecond %+v",
						first, second)
				}
				if first.Accepted == 0 {
					t.Errorf("policy accepted nothing; grid cell exercises no table code")
				}
			})
		}
	}
}

// TestSweepOSPressureError drives the OS model into allocation failure and
// checks the typed surface: errors.As recovers the PressureError with its
// faulting address and operation, and the chain reaches both ErrInjected
// and phys.ErrOutOfMemory.
func TestSweepOSPressureError(t *testing.T) {
	mem := phys.NewMemory(16 * addr.MB)
	alloc := phys.NewAllocator(mem, 0.7)
	inject.Attach(alloc, inject.AfterN{N: 40})

	table, err := mehpt.NewPageTable(alloc, mehpt.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	os := osmodel.New(osmodel.DefaultConfig(), table, alloc)

	var faultErr error
	var faultVA addr.VirtAddr
	for i := 0; i < 1000; i++ {
		va := addr.VirtAddr(0x4000_0000) + addr.VirtAddr(i)*4096
		if _, err := os.HandleFault(va); err != nil {
			faultErr, faultVA = err, va
			break
		}
	}
	if faultErr == nil {
		t.Fatal("no fault error after exhausting the injection budget")
	}
	var pe *osmodel.PressureError
	if !errors.As(faultErr, &pe) {
		t.Fatalf("fault error is not a *osmodel.PressureError: %v", faultErr)
	}
	if pe.VA != faultVA {
		t.Errorf("PressureError.VA = %#x, want %#x", uint64(pe.VA), uint64(faultVA))
	}
	if pe.Op != "data-alloc" && pe.Op != "pt-map" {
		t.Errorf("PressureError.Op = %q, want data-alloc or pt-map", pe.Op)
	}
	if !errors.Is(faultErr, phys.ErrOutOfMemory) {
		t.Errorf("chain must reach phys.ErrOutOfMemory: %v", faultErr)
	}
	if !errors.Is(faultErr, inject.ErrInjected) {
		t.Errorf("chain must reach inject.ErrInjected: %v", faultErr)
	}
}

// TestSweepSimDeterminism: a full machine run under injection is
// reproducible — the same Config (including the Inject spec) yields a
// deeply equal Result, and the injected-fault count is visible on it.
func TestSweepSimDeterminism(t *testing.T) {
	spec := workload.Specs(128)[0]
	run := func() sim.Result {
		m, err := sim.NewMachine(sim.Config{
			Org:          sim.MEHPT,
			Workload:     spec,
			Populate:     true,
			Seed:         11,
			MemBytes:     1 * addr.GB,
			FreeFraction: 0.35,
			Inject:       "rate=0.05+big=1MB",
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Run()
	}
	a, b := run(), run()
	// The live table handles are identity objects (they hold hash-function
	// closures, which never compare deeply equal); the numeric payload is
	// what the determinism contract covers.
	a.MEHPT, a.ECPT = nil, nil
	b.MEHPT, b.ECPT = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config+inject diverged:\n a %+v\n b %+v", a, b)
	}
	if a.InjectedFaults == 0 {
		t.Error("InjectedFaults = 0; the policy never fired (weak test)")
	}
}
