package inject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrKilled marks a simulated crash: a Crasher reached its armed kill
// point. The run is abandoned exactly where a real kill -9 would land, and
// recovery must come from the last durable checkpoint.
var ErrKilled = errors.New("inject: killed at crash point")

// Crash points registered by the multi-tenant machine, in the order they
// fire. Each names a boundary where a real crash would be distinguishable:
// between rounds, between quanta, around a shared-page remap, and on either
// side of a checkpoint write.
const (
	KillRoundBegin       = "round.begin"
	KillQuantumEnd       = "quantum.end"
	KillRemapBefore      = "remap.before"
	KillRemapAfter       = "remap.after"
	KillCheckpointBefore = "checkpoint.before"
	KillCheckpointAfter  = "checkpoint.after"
)

// KillPoints lists every registered crash point.
func KillPoints() []string {
	return []string{
		KillRoundBegin, KillQuantumEnd,
		KillRemapBefore, KillRemapAfter,
		KillCheckpointBefore, KillCheckpointAfter,
	}
}

// Crasher is a deterministic kill switch: it counts visits to each crash
// point and returns ErrKilled on the Nth visit to its armed point. The
// decision depends only on the visit stream, so the same plan over the same
// execution kills at the same instruction every time. A nil Crasher is
// inert.
type Crasher struct {
	point string
	n     uint64
	hits  map[string]uint64
}

// NewCrasher arms a crasher at the nth visit (1-based) to point.
func NewCrasher(point string, n uint64) *Crasher {
	return &Crasher{point: point, n: n, hits: make(map[string]uint64)}
}

// ParseKill builds a Crasher from a plan string "point:N" — kill on the Nth
// visit to the named crash point, e.g. "round.begin:3" or "remap.after:1".
func ParseKill(plan string) (*Crasher, error) {
	point, nstr, ok := strings.Cut(plan, ":")
	if !ok {
		return nil, fmt.Errorf("inject: kill plan %q: want point:N", plan)
	}
	valid := false
	for _, p := range KillPoints() {
		if p == point {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("inject: kill plan %q: unknown point %q (want one of %s)",
			plan, point, strings.Join(KillPoints(), ", "))
	}
	n, err := strconv.ParseUint(nstr, 10, 64)
	if err != nil || n == 0 {
		return nil, fmt.Errorf("inject: kill plan %q: want a positive visit count", plan)
	}
	return NewCrasher(point, n), nil
}

// Point returns the armed crash point and visit count.
func (c *Crasher) Point() (string, uint64) { return c.point, c.n }

// At registers one visit to point and returns ErrKilled (wrapped with the
// point and visit count) when the armed trigger fires. Nil receivers are
// inert, so instrumented code calls At unconditionally.
func (c *Crasher) At(point string) error {
	if c == nil {
		return nil
	}
	c.hits[point]++
	if point == c.point && c.hits[point] == c.n {
		return fmt.Errorf("%w: %s visit %d", ErrKilled, point, c.n)
	}
	return nil
}

// Hits returns how many times the named point has been visited.
func (c *Crasher) Hits(point string) uint64 {
	if c == nil {
		return 0
	}
	return c.hits[point]
}
