package mehpt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/chunk"
	"repro/internal/cuckoo"
	"repro/internal/hashfn"
	"repro/internal/l2p"
	"repro/internal/phys"
	"repro/internal/pt"
)

// White-box tests of the in-place resizing index algebra (Section IV-C):
// the properties Figure 5 illustrates, checked directly at the way level.

func newTestWay(t *testing.T, entries uint64) (*way, *phys.Allocator) {
	t.Helper()
	mem := phys.NewMemory(256 * addr.MB)
	alloc := phys.NewAllocator(mem, 0)
	tbl := l2p.New(3)
	st, _, err := chunk.NewStore(alloc, tbl, 0, addr.Page4K, entries*pt.EntryBytes)
	if err != nil {
		t.Fatal(err)
	}
	return newWay(0, hashfn.New(99), entries, st), alloc
}

// TestLocateUpsizeProperty: during an upsize, every key's location is either
// its old index (live region, or migrated with extra bit 0) or old index +
// oldSize (migrated with extra bit 1) — never anything else.
func TestLocateUpsizeProperty(t *testing.T) {
	w, _ := newTestWay(t, 1024)
	if _, err := w.store.Extend(2048 * pt.EntryBytes); err != nil {
		t.Fatal(err)
	}
	w.beginResize(2048)
	check := func(key uint64, ptrRaw uint16) bool {
		w.ptr = uint64(ptrRaw) % 1024
		idx := w.locate(key)
		oldIdx := w.fn.Hash(key) & 1023
		if oldIdx >= w.ptr {
			return idx == oldIdx // live region: old location
		}
		return idx == oldIdx || idx == oldIdx+1024
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestLocateDownsizeProperty: during a downsize, migrated keys fold into the
// bottom half (MSB dropped); live keys stay put.
func TestLocateDownsizeProperty(t *testing.T) {
	w, _ := newTestWay(t, 1024)
	w.beginResize(512)
	check := func(key uint64, ptrRaw uint16) bool {
		w.ptr = uint64(ptrRaw) % 1024
		idx := w.locate(key)
		oldIdx := w.fn.Hash(key) & 1023
		if oldIdx >= w.ptr {
			return idx == oldIdx
		}
		return idx == (oldIdx&511) && idx < 512
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestLiveRegionPurity: entries inserted during an upsize never land in the
// live region [ptr, oldSize) — the invariant that keeps lookups unambiguous
// (new-table indices are either below ptr or in the grown upper half).
func TestLiveRegionPurity(t *testing.T) {
	w, _ := newTestWay(t, 256)
	if _, err := w.store.Extend(512 * pt.EntryBytes); err != nil {
		t.Fatal(err)
	}
	w.beginResize(512)
	w.ptr = 100
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		key := rng.Uint64() >> 1
		idx := w.locate(key)
		oldIdx := w.fn.Hash(key) & 255
		if oldIdx < w.ptr { // migrated: goes to the new table
			if idx >= w.ptr && idx < 256 {
				t.Fatalf("new-table index %d of key %d inside live region [%d,256)",
					idx, key, w.ptr)
			}
		}
	}
}

// TestFinishResizeDownsizeTruncates: after a completed downsize the slot
// array shrinks and the trailing chunks are released.
func TestFinishResizeDownsizeTruncates(t *testing.T) {
	w, _ := newTestWay(t, 1024)
	footBefore := w.store.FootprintBytes()
	w.beginResize(512)
	w.ptr = 1024 // pretend the sweep completed with nothing live
	w.finishResize()
	if w.size != 512 || uint64(len(w.slots)) != 512 {
		t.Errorf("size=%d slots=%d after downsize", w.size, len(w.slots))
	}
	if w.store.FootprintBytes() >= footBefore {
		t.Errorf("chunks not released: %d -> %d", footBefore, w.store.FootprintBytes())
	}
}

// TestFinishResizePanicsOnLiveEntryBeyondNewSize: committing a downsize with
// a stranded entry must fail loudly, not corrupt silently.
func TestFinishResizePanicsOnLiveEntryBeyondNewSize(t *testing.T) {
	w, _ := newTestWay(t, 256)
	w.beginResize(128)
	w.ptr = 256
	w.slots[200] = cuckoo.Entry{Key: 42, Val: 1}
	defer func() {
		if recover() == nil {
			t.Error("finishResize accepted a stranded entry")
		}
	}()
	w.finishResize()
}

// TestBeginResizePanicsWhenResizing: overlapping resizes on one way are a
// programming error.
func TestBeginResizePanicsWhenResizing(t *testing.T) {
	w, _ := newTestWay(t, 256)
	if _, err := w.store.Extend(512 * pt.EntryBytes); err != nil {
		t.Fatal(err)
	}
	w.beginResize(512)
	defer func() {
		if recover() == nil {
			t.Error("nested beginResize accepted")
		}
	}()
	w.beginResize(1024)
}

// TestCapacityAndFreeDuringResize: capacity tracks the resize target so the
// occupancy thresholds and insertion weights use the right denominator.
func TestCapacityAndFreeDuringResize(t *testing.T) {
	w, _ := newTestWay(t, 256)
	if w.capacity() != 256 {
		t.Fatalf("capacity = %d", w.capacity())
	}
	w.occ = 100
	if w.free() != 156 {
		t.Fatalf("free = %d", w.free())
	}
	if _, err := w.store.Extend(512 * pt.EntryBytes); err != nil {
		t.Fatal(err)
	}
	w.beginResize(512)
	if w.capacity() != 512 || w.free() != 412 {
		t.Errorf("mid-resize capacity=%d free=%d", w.capacity(), w.free())
	}
	if w.occupancy() != 100.0/512 {
		t.Errorf("occupancy = %v", w.occupancy())
	}
}

// TestSlotPAUniqueAcrossWaySpan: every slot of a multi-chunk way resolves
// to a distinct physical address.
func TestSlotPAUniqueAcrossWaySpan(t *testing.T) {
	w, _ := newTestWay(t, 4096) // 256KB way = 32 8KB chunks
	seen := make(map[addr.PhysAddr]bool, 4096)
	for i := uint64(0); i < 4096; i++ {
		pa := w.slotPA(i)
		if seen[pa] {
			t.Fatalf("slot %d aliases another slot at %#x", i, pa)
		}
		seen[pa] = true
	}
}
