// Package mehpt implements Memory-Efficient Hashed Page Tables — the
// paper's contribution. An ME-HPT is a set of per-page-size W-way cuckoo
// tables whose ways are backed by discontiguous chunks through the L2P
// table, resize in place, and resize one way at a time with weighted-random
// insertion.
package mehpt

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/chunk"
	"repro/internal/cuckoo"
	"repro/internal/hashfn"
	"repro/internal/l2p"
	"repro/internal/phys"
	"repro/internal/pt"
	"repro/internal/stats"
)

// ErrTableFull is returned when an insertion cannot be satisfied even after
// forcing resizes (memory exhausted or ladder exhausted). The error chain
// carries the underlying cause, down to phys.ErrOutOfMemory for genuine or
// injected allocation failures; the rejected entry is never left partially
// placed.
var ErrTableFull = errors.New("mehpt: table full")

// ErrResizeFailed is returned when a way upsize fails at every rung of the
// degradation ladder (in-place extension, chunk-size transition, and the
// out-of-place fallback over smaller chunks). The resize is deferred — the
// way stays valid at its old geometry and maybeResize retries on a later
// insert — and the chain carries the underlying allocation failure.
var ErrResizeFailed = errors.New("mehpt: way resize failed; deferred")

// ErrMigrationFailed is returned when a gradual-rehash migration step
// cannot re-place a displaced entry. The step is rolled back exactly —
// entry restored, rehash pointer rewound — so the table stays valid and
// the migration retries on a later tick with fresh displacement choices.
var ErrMigrationFailed = errors.New("mehpt: gradual-rehash migration failed")

// Config parameterizes an ME-HPT. The zero value is not usable; call
// DefaultConfig.
type Config struct {
	Ways           int
	InitialEntries uint64  // per-way slots at creation: 128 → 8KB ways
	UpsizeAt       float64 // 0.6 (Table III)
	DownsizeAt     float64 // 0.2 (Table III)
	MaxKicks       int
	RehashBatch    int // elements rehashed per resizing way per insert
	HashSeed       uint64
	Rand           *rand.Rand

	// Feature toggles for the paper's ablations.
	InPlace        bool     // Section IV-C; off = out-of-place (ECPT-style)
	PerWay         bool     // Section IV-D; off = all-way resizing
	WeightedInsert bool     // Section IV-D insertion policy
	Ladder         []uint64 // chunk-size ladder; nil = chunk.Ladder

	// OnWayChange, if set, is invoked whenever a key is placed into a way
	// (fresh insert, cuckoo kick, or migration) — the notification the OS
	// uses to maintain the cuckoo walk tables.
	OnWayChange func(key uint64, size addr.PageSize, way int)
}

// DefaultConfig returns the paper's Table III configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Ways:           3,
		InitialEntries: 128,
		UpsizeAt:       0.6,
		DownsizeAt:     0.2,
		MaxKicks:       32,
		RehashBatch:    1,
		HashSeed:       seed,
		InPlace:        true,
		PerWay:         true,
		WeightedInsert: true,
	}
}

// Stats aggregates the per-table behaviour the evaluation reports.
type Stats struct {
	Inserts, Lookups, Deletes uint64
	Kicks                     uint64
	UpsizesPerWay             []uint64 // Figure 11
	Downsizes                 uint64
	Transitions               uint64 // chunk-size switches (out-of-place)
	FailedUpsizes             uint64
	Stalls                    uint64 // migration steps rolled back (retried later)
	Stashed                   uint64 // entries spilled to the software stash
	// Moved/Stayed count rehashed entries that did/did not change slots
	// during in-place upsizes (Figure 13: fraction moved ≈ 0.5).
	UpsizeMoved, UpsizeStayed uint64
	MovesTotal                uint64 // all migration writes, any resize kind
	Reinsertions              stats.Histogram
	MaxContiguousAlloc        uint64 // largest chunk ever requested
	AllocCycles               uint64
	PeakFootprintBytes        uint64
}

// Table is one per-page-size ME-HPT. It is not safe for concurrent use.
type Table struct {
	//mehpt:transient -- restoreTable requires the caller to re-supply the same Config (incl. a repositioned Rand)
	cfg  Config
	size addr.PageSize
	//mehpt:transient -- reattached by restoreTable to the separately restored physical allocator
	alloc phys.Source
	//mehpt:transient -- reattached by restoreTable to the separately restored L2P table
	l2p  *l2p.Table
	ways []*way
	//mehpt:transient -- pure function of cfg.HashSeed and page size, re-derived by restoreTable
	mixer *hashfn.Mixer // family-wide single-CRC hashing (read-only)
	//mehpt:transient -- reattached by restoreTable to the slab restored from PageTableState.Slab
	slab *pt.Slab
	//mehpt:transient -- owned and positioned by whoever supplied Config.Rand; restoreTable panics without one
	rng   *rand.Rand
	stats Stats
	// journal is tryPlace's displacement log, reused across insertions so
	// the write path does not allocate in steady state. Chains are bounded
	// by MaxKicks, and tryPlace is never re-entered while a chain is live.
	//mehpt:transient -- scratch buffer, cleared at the end of every insert; always empty between operations
	journal []undo
	// stash is the software overflow list: entries the table accepted but
	// could not re-place during a degraded resize (e.g. a transition
	// reinsert under memory pressure). The OS keeps such entries in a
	// software-walked side structure; lookups consult it after the W hash
	// probes, and inserts drain it back opportunistically. A slice (not a
	// map) so drain order is deterministic.
	stash []cuckoo.Entry
}

// NewTable creates an ME-HPT for one page size. Every way starts at the
// initial size (8KB) backed by one smallest-rung chunk.
func NewTable(size addr.PageSize, alloc phys.Source, tbl *l2p.Table, slab *pt.Slab, cfg Config) (*Table, error) {
	if cfg.Ways < 2 {
		panic("mehpt: need at least 2 ways")
	}
	if cfg.InitialEntries == 0 || cfg.InitialEntries&(cfg.InitialEntries-1) != 0 {
		panic("mehpt: initial entries must be a power of two")
	}
	if cfg.Ways != tbl.Ways() {
		panic("mehpt: config ways != l2p ways")
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(int64(cfg.HashSeed)*31 + int64(size)))
	}
	t := &Table{
		cfg:   cfg,
		size:  size,
		alloc: alloc,
		l2p:   tbl,
		slab:  slab,
		rng:   rng,
	}
	t.stats.UpsizesPerWay = make([]uint64, cfg.Ways)
	fns := hashfn.Family(cfg.HashSeed+uint64(size)*0x1000, cfg.Ways)
	t.mixer = hashfn.NewMixer(fns)
	for i := 0; i < cfg.Ways; i++ {
		st, cycles, err := chunk.NewStoreLadder(alloc, tbl, i, size,
			cfg.InitialEntries*pt.EntryBytes, t.ladder())
		if err != nil {
			// Release the ways already built: a failed construction must not
			// strand their chunks (the caller retries on a later mapping).
			for _, w := range t.ways {
				w.store.Free()
			}
			return nil, fmt.Errorf("mehpt: initial way %d: %w", i, err)
		}
		t.noteAlloc(st.ChunkBytes(), cycles)
		t.ways = append(t.ways, newWay(i, fns[i], cfg.InitialEntries, st))
	}
	t.notePeak()
	return t, nil
}

func (t *Table) ladder() []uint64 {
	if t.cfg.Ladder != nil {
		return t.cfg.Ladder
	}
	return chunk.Ladder
}

func (t *Table) noteAlloc(chunkBytes, cycles uint64) {
	if chunkBytes > t.stats.MaxContiguousAlloc {
		t.stats.MaxContiguousAlloc = chunkBytes
	}
	t.stats.AllocCycles += cycles
}

func (t *Table) notePeak() {
	if f := t.FootprintBytes(); f > t.stats.PeakFootprintBytes {
		t.stats.PeakFootprintBytes = f
	}
}

// FootprintBytes returns the physical page-table memory currently held.
func (t *Table) FootprintBytes() uint64 {
	var b uint64
	for _, w := range t.ways {
		b += w.footprint()
	}
	return b
}

// Stats returns a copy of the accumulated statistics.
func (t *Table) Stats() Stats {
	s := t.stats
	s.UpsizesPerWay = append([]uint64(nil), t.stats.UpsizesPerWay...)
	s.Reinsertions = stats.Histogram{}
	s.Reinsertions.Merge(&t.stats.Reinsertions)
	return s
}

// ScalarStats returns the accumulated counters without deep-copying the
// per-way upsize slice or the reinsertion histogram (both left empty in the
// copy). The per-run result aggregation reads only scalar fields, and the
// deep copies were its last allocations.
func (t *Table) ScalarStats() Stats {
	s := t.stats
	s.UpsizesPerWay = nil
	s.Reinsertions = stats.Histogram{}
	return s
}

// WaySizes returns each way's current slot count (Figure 12 reports the
// byte sizes: slots × EntryBytes).
func (t *Table) WaySizes() []uint64 {
	sizes := make([]uint64, len(t.ways))
	for i, w := range t.ways {
		sizes[i] = w.capacity()
	}
	return sizes
}

// WayChunkBytes returns each way's current chunk size.
func (t *Table) WayChunkBytes() []uint64 {
	cs := make([]uint64, len(t.ways))
	for i, w := range t.ways {
		cs[i] = w.store.ChunkBytes()
	}
	return cs
}

// Len returns the number of clustered entries stored, including any held
// in the software stash.
func (t *Table) Len() uint64 {
	n := uint64(len(t.stash))
	for _, w := range t.ways {
		n += w.occ
	}
	return n
}

// StashLen returns the number of entries currently in the software stash
// (nonzero only after degraded resizes under memory pressure).
func (t *Table) StashLen() int { return len(t.stash) }

// PageSize returns the page size this table translates.
func (t *Table) PageSize() addr.PageSize { return t.size }

// Resizing reports whether any way has a resize in flight.
func (t *Table) Resizing() bool {
	for _, w := range t.ways {
		if w.resizing {
			return true
		}
	}
	return false
}

// lookupSlot finds the way index and slot index holding key. One CRC pass
// serves all W probes (hashfn.Mixer); each way reuses its hash across the
// old and new index masks during resizes.
//mehpt:hotpath
func (t *Table) lookupSlot(key uint64) (int, uint64, bool) {
	crc := t.mixer.CRC(key)
	for i, w := range t.ways {
		idx := w.locateHash(t.mixer.HashAt(i, crc))
		if w.slots[idx].Key == key {
			return i, idx, true
		}
	}
	return 0, 0, false
}

// stashIndex returns the stash position of key, or -1.
//mehpt:hotpath
func (t *Table) stashIndex(key uint64) int {
	for i, e := range t.stash {
		if e.Key == key {
			return i
		}
	}
	return -1
}

// Lookup returns the cluster id stored for key, consulting the software
// stash after the W hash probes (the OS-walked overflow path).
//mehpt:hotpath
func (t *Table) Lookup(key uint64) (uint64, bool) {
	t.stats.Lookups++
	if i, idx, ok := t.lookupSlot(key); ok {
		return t.ways[i].slots[idx].Val, true
	}
	if si := t.stashIndex(key); si >= 0 {
		return t.stash[si].Val, true
	}
	return 0, false
}

// LookupBatch resolves len(keys) lookups in one software-pipelined sweep,
// writing vals[i]/oks[i] for each key. Pass 1 computes the family-wide CRC
// for a whole chunk so the hash table walks overlap across keys; pass 2
// runs the way probes and the stash fallback. Results and statistics are
// bit-identical to len(keys) sequential Lookup calls.
//mehpt:hotpath
func (t *Table) LookupBatch(keys []uint64, vals []uint64, oks []bool) {
	const batchChunk = 64 // matches the translation pipeline's batch width
	for len(keys) > 0 {
		n := len(keys)
		if n > batchChunk {
			n = batchChunk
		}
		var crcs [batchChunk]uint64
		for i, k := range keys[:n] {
			crcs[i] = t.mixer.CRC(k)
		}
		for i, k := range keys[:n] {
			t.stats.Lookups++
			vals[i], oks[i] = 0, false
			for wi, w := range t.ways {
				idx := w.locateHash(t.mixer.HashAt(wi, crcs[i]))
				if w.slots[idx].Key == k {
					vals[i], oks[i] = w.slots[idx].Val, true
					break
				}
			}
			if !oks[i] {
				if si := t.stashIndex(k); si >= 0 {
					vals[i], oks[i] = t.stash[si].Val, true
				}
			}
		}
		keys = keys[n:]
		vals = vals[n:]
		oks = oks[n:]
	}
}

// Insert stores key→val, resizing as needed. It returns the cycle cost of
// any physical allocations plus the number of cuckoo re-insertions.
func (t *Table) Insert(key, val uint64) (kicks int, cycles uint64, err error) {
	if i, idx, ok := t.lookupSlot(key); ok {
		t.ways[i].slots[idx].Val = val
		return 0, 0, nil
	}
	if si := t.stashIndex(key); si >= 0 {
		t.stash[si].Val = val
		return 0, 0, nil
	}
	// A stalled migration is not fatal to this insert: the stuck entry was
	// rolled back and stays reachable; a later tick retries it.
	c, _ := t.rehashTick() //mehpt:allow errwrap -- a stalled migration is a scheduling hint, not a failure (see comment above)
	cycles += c
	kicks, err = t.place(cuckoo.Entry{Key: key, Val: val}, -1, true)
	if err != nil {
		return kicks, cycles, err
	}
	t.stats.Inserts++
	t.stats.Reinsertions.Add(kicks)
	t.drainStash()
	cycles += t.maybeResize()
	t.notePeak()
	return kicks, cycles, nil
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint64) (uint64, bool) {
	i, idx, ok := t.lookupSlot(key)
	if !ok {
		if si := t.stashIndex(key); si >= 0 {
			t.stash = append(t.stash[:si], t.stash[si+1:]...)
			t.stats.Deletes++
			return 0, true
		}
		return 0, false
	}
	w := t.ways[i]
	w.slots[idx].Key = cuckoo.EmptyKey
	w.slots[idx].Val = 0
	w.occ--
	t.stats.Deletes++
	cycles := t.maybeResize()
	return cycles, true
}

// pickInsertWay implements Section IV-D's weighted random insertion: way i
// is chosen with probability free_i / Σ free, and a way that is larger than
// another way and already past the upsize threshold gets weight zero.
func (t *Table) pickInsertWay(exclude int) int {
	if !t.cfg.WeightedInsert {
		return t.pickUniform(exclude)
	}
	var weights [8]uint64 // Ways is small (3); avoid allocation
	var sum uint64
	minSize := t.minWaySize()
	for i, w := range t.ways {
		if i == exclude {
			continue
		}
		f := w.free()
		if w.capacity() > minSize && w.occupancy() >= t.cfg.UpsizeAt {
			f = 0
		}
		weights[i] = f
		sum += f
	}
	if sum == 0 {
		return t.pickUniform(exclude)
	}
	r := uint64(t.rng.Int63n(int64(sum)))
	for i := range t.ways {
		if i == exclude {
			continue
		}
		if r < weights[i] {
			return i
		}
		r -= weights[i]
	}
	return t.pickUniform(exclude) // unreachable
}

func (t *Table) pickUniform(exclude int) int {
	if exclude < 0 {
		return t.rng.Intn(len(t.ways))
	}
	i := t.rng.Intn(len(t.ways) - 1)
	if i >= exclude {
		i++
	}
	return i
}

func (t *Table) minWaySize() uint64 {
	min := t.ways[0].capacity()
	for _, w := range t.ways[1:] {
		if c := w.capacity(); c < min {
			min = c
		}
	}
	return min
}

func (t *Table) maxWaySize() uint64 {
	max := t.ways[0].capacity()
	for _, w := range t.ways[1:] {
		if c := w.capacity(); c > max {
			max = c
		}
	}
	return max
}

// undo is one journal record of tryPlace's displacement chain.
type undo struct {
	w    *way
	idx  uint64
	prev cuckoo.Entry
}

// tryPlace attempts to insert e, displacing occupants cuckoo-style for at
// most MaxKicks displacements. weighted selects the weighted policy for
// the first placement; kicks always use uniform-other. Every slot write is
// journaled; if the chain overflows, the journal is replayed in reverse —
// restored entries are republished to the OnWayChange hook — and the table
// is left exactly as it was: a failed placement never evicts a previously
// accepted entry.
func (t *Table) tryPlace(e cuckoo.Entry, exclude int, weighted bool) (int, bool) {
	journal := t.journal[:0]
	kicks := 0
	placed := false
	for {
		var i int
		if weighted && kicks == 0 {
			i = t.pickInsertWay(exclude)
		} else {
			i = t.pickUniform(exclude)
		}
		w := t.ways[i]
		idx := w.locate(e.Key)
		prev := w.slots[idx]
		journal = append(journal, undo{w, idx, prev})
		w.slots[idx] = e
		t.noteWay(e.Key, i)
		if prev.Key == cuckoo.EmptyKey {
			// Only the chain's final empty-slot placement increments a way:
			// every intermediate way lost its victim but gained the incomer.
			w.occ++
			placed = true
			break
		}
		t.stats.Kicks++
		kicks++
		if kicks > t.cfg.MaxKicks {
			for j := len(journal) - 1; j >= 0; j-- {
				u := journal[j]
				u.w.slots[u.idx] = u.prev
				if u.prev.Key != cuckoo.EmptyKey {
					t.noteWay(u.prev.Key, u.w.idx)
				}
			}
			break
		}
		e, exclude = prev, i
	}
	// Keep the grown backing array but drop its references; the scratch is
	// reused by the next insertion.
	clear(journal)
	t.journal = journal[:0]
	return kicks, placed
}

// place inserts e, forcing progress between bounded placement attempts
// (breakChain: drain in-flight resizes or upsize the smallest way). On
// failure the table is unchanged and the error wraps ErrTableFull plus the
// underlying cause.
func (t *Table) place(e cuckoo.Entry, exclude int, weighted bool) (int, error) {
	if kicks, ok := t.tryPlace(e, exclude, weighted); ok {
		return kicks, nil
	}
	for attempt := 0; attempt < 4; attempt++ {
		if err := t.breakChain(); err != nil {
			return 0, err
		}
		if kicks, ok := t.tryPlace(e, -1, false); ok {
			return kicks, nil
		}
	}
	return 0, ErrTableFull
}

// placeMigration places an entry displaced by a resize or rebuilt by a
// transition. Unlike place it never forces progress: the caller is already
// inside the resize machinery, and a nested drain or upsize could invalidate
// the state the caller must roll back into on failure. A bounded number of
// fresh chains is attempted instead; each rolls back cleanly.
func (t *Table) placeMigration(e cuckoo.Entry, exclude int) (int, error) {
	if kicks, ok := t.tryPlace(e, exclude, false); ok {
		return kicks, nil
	}
	for attempt := 0; attempt < 3; attempt++ {
		if kicks, ok := t.tryPlace(e, -1, false); ok {
			return kicks, nil
		}
	}
	return 0, fmt.Errorf("displacement chain overflow during migration (max kicks %d)", t.cfg.MaxKicks)
}

// noteWay publishes a placement to the OnWayChange hook.
func (t *Table) noteWay(key uint64, way int) {
	if t.cfg.OnWayChange != nil {
		t.cfg.OnWayChange(key, t.size, way)
	}
}

// breakChain makes progress when a displacement chain exceeds MaxKicks:
// drain in-flight resizes; if none, force-upsize the smallest way.
func (t *Table) breakChain() error {
	if t.Resizing() {
		if err := t.drainResizes(); err != nil {
			return fmt.Errorf("%w: %w", ErrTableFull, err)
		}
		return nil
	}
	// Upsize the smallest way (always permitted by the balance rule).
	smallest := 0
	for i, w := range t.ways {
		if w.capacity() < t.ways[smallest].capacity() {
			smallest = i
		}
	}
	_, err := t.upsizeWay(smallest)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrTableFull, err)
	}
	return nil
}

// stashPut spills an entry to the software stash (a degraded resize could
// not re-place it). The entry stays fully visible to Lookup/Delete and is
// drained back by later inserts.
func (t *Table) stashPut(e cuckoo.Entry) {
	t.stash = append(t.stash, e)
	t.stats.Stashed++
}

// drainStash opportunistically moves stashed entries back into the ways,
// stopping at the first one that still does not fit.
func (t *Table) drainStash() {
	for len(t.stash) > 0 {
		e := t.stash[len(t.stash)-1]
		kicks, ok := t.tryPlace(e, -1, false)
		if !ok {
			return
		}
		t.stash = t.stash[:len(t.stash)-1]
		t.stats.Reinsertions.Add(kicks)
	}
}

// rehashTick advances every in-flight resize by RehashBatch elements,
// reusing the OS invocation the triggering insert provides (Section II-B).
// A stalled migration stops that way's progress for this tick — the entry
// was rolled back and the pointer rewound — and the first stall error is
// returned; later ticks retry with fresh displacement choices.
func (t *Table) rehashTick() (uint64, error) {
	var cycles uint64
	var firstErr error
	for _, w := range t.ways {
		if !w.resizing {
			continue
		}
		moved := 0
		for w.resizing && moved < t.cfg.RehashBatch && w.ptr < w.size {
			ok, err := t.migrateOne(w)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			if ok {
				moved++
			}
		}
		if w.resizing && w.ptr >= w.size {
			w.finishResize()
			t.notePeak()
		}
	}
	return cycles, firstErr
}

// migrateOne rehashes the entry under w's rehash pointer. It returns true
// if an element was processed (as opposed to skipping an empty slot). On
// failure the step is rolled back exactly — entry restored, pointer rewound
// — and the error wraps ErrMigrationFailed.
func (t *Table) migrateOne(w *way) (bool, error) {
	p := w.ptr
	w.ptr++
	e := w.slots[p]
	if e.Key == cuckoo.EmptyKey {
		return false, nil
	}
	h := w.fn.Hash(e.Key)
	newIdx := h & (w.newSize - 1)
	inPlace := w.pending == nil
	if newIdx == p && inPlace {
		// The extra hash bit is 0: the entry stays put (Figure 5b). This is
		// the ~50% of entries in-place resizing does not move.
		if w.up {
			t.stats.UpsizeStayed++
		}
		t.stats.Reinsertions.Add(0)
		return true, nil
	}
	w.slots[p].Key = cuckoo.EmptyKey
	w.slots[p].Val = 0
	kicks := 0
	if w.slots[newIdx].Key == cuckoo.EmptyKey {
		w.slots[newIdx] = e
	} else {
		// Downsize collision (Figure 5f) or clash with an entry inserted
		// during the resize: cuckoo the incoming entry into another way.
		w.occ--
		var err error
		kicks, err = t.placeMigration(e, w.idx)
		if err != nil {
			w.occ++
			w.slots[p] = e
			w.ptr = p
			t.stats.Stalls++
			return false, fmt.Errorf("%w: %w", ErrMigrationFailed, err)
		}
		t.stats.Kicks++
		kicks++ // count the displacement out of this way
	}
	t.stats.MovesTotal++
	if w.up {
		t.stats.UpsizeMoved++
	}
	t.stats.Reinsertions.Add(kicks)
	return true, nil
}

// drainResizes completes all in-flight resizes synchronously. A stalled
// migration stops the drain with the resize still in flight (and the table
// valid); the caller decides whether to retry or surface the error.
func (t *Table) drainResizes() error {
	for t.Resizing() {
		if _, err := t.rehashTick(); err != nil {
			return err
		}
	}
	return nil
}

// DrainResizes completes any in-flight gradual resizes (process teardown,
// test determinism). The error (if any) wraps ErrMigrationFailed; the
// table remains valid and mid-resize.
func (t *Table) DrainResizes() error { return t.drainResizes() }

// Settle repeatedly drains resizes and re-evaluates the resizing policy
// until the table reaches a fixed point. Gradual resizes normally advance
// only on inserts, so after a burst of deletes several pending downsizes may
// be queued behind one another; Settle applies them all.
func (t *Table) Settle() error {
	for i := 0; i < 64; i++ {
		if err := t.drainResizes(); err != nil {
			return err
		}
		t.maybeResize()
		if !t.Resizing() {
			return nil
		}
	}
	return nil
}
