package mehpt

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/phys"
)

// vpnMask bounds a raw fuzz value to VPNs whose virtual addresses fit the
// canonical 48-bit user space at the given page size.
func vpnMask(s addr.PageSize) uint64 { return (uint64(1) << (47 - s.Shift())) - 1 }

// FuzzTranslateRoundTrip: for arbitrary (VPN, page size, PPN) inputs, Map
// followed by Translate must return exactly the installed translation at
// every offset inside the page, lookups of unmapped addresses must miss
// without panicking, and Unmap must make the translation disappear.
func FuzzTranslateRoundTrip(f *testing.F) {
	f.Add(uint64(0), byte(0), uint64(1), uint64(0))
	f.Add(uint64(0x5800_0000_0), byte(0), uint64(0xABCDE), uint64(4095))
	f.Add(uint64(0x1234), byte(1), uint64(7), uint64(1<<20))
	f.Add(uint64(42), byte(2), uint64(1)<<35, uint64(12345))
	f.Add(^uint64(0), byte(255), ^uint64(0), ^uint64(0))

	f.Fuzz(func(t *testing.T, vpnRaw uint64, sizeSel byte, ppnRaw, offRaw uint64) {
		sizes := addr.Sizes()
		size := sizes[int(sizeSel)%len(sizes)]
		vpn := addr.VPN(vpnRaw & vpnMask(size))
		ppn := addr.PPN(ppnRaw)

		alloc := phys.NewAllocator(phys.NewMemory(256*addr.MB), 0)
		cfg := DefaultConfig(uint64(vpnRaw) ^ uint64(sizeSel))
		cfg.Rand = rand.New(rand.NewSource(int64(ppnRaw)))
		p, err := NewPageTable(alloc, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Unmapped state: no lookup may panic or fabricate a translation.
		if _, ok := p.Translate(vpn.Addr(size)); ok {
			t.Fatal("empty table produced a translation")
		}
		if _, ok := p.Unmap(vpn, size); ok {
			t.Fatal("empty table unmapped something")
		}

		if _, err := p.Map(vpn, size, ppn); err != nil {
			// Allocation failure is a legal outcome, not a round-trip bug.
			t.Skipf("map: %v", err)
		}
		va := vpn.Addr(size) + addr.VirtAddr(offRaw%size.Bytes())
		tr, ok := p.Translate(va)
		if !ok {
			t.Fatalf("mapped %v page at vpn %#x not translatable", size, uint64(vpn))
		}
		if tr.PPN != ppn || tr.Size != size {
			t.Fatalf("translate(%#x) = {ppn %#x, %v}, want {ppn %#x, %v}",
				uint64(va), uint64(tr.PPN), tr.Size, uint64(ppn), size)
		}
		if got, ok := p.TranslateSize(vpn, size); !ok || got != ppn {
			t.Fatalf("TranslateSize = (%#x, %v), want (%#x, true)", uint64(got), ok, uint64(ppn))
		}

		// A neighbouring VPN (same cluster, different sub-slot) must miss.
		if other := vpn ^ 1; other != vpn {
			if _, ok := p.TranslateSize(other, size); ok {
				t.Fatalf("unmapped sibling vpn %#x translated", uint64(other))
			}
		}

		// Unmap must remove exactly the installed translation.
		if _, ok := p.Unmap(vpn, size); !ok {
			t.Fatal("unmap of a live translation reported missing")
		}
		if _, ok := p.TranslateSize(vpn, size); ok {
			t.Fatal("translation survived unmap")
		}
	})
}
