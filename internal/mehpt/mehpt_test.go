package mehpt

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/phys"
	"repro/internal/pt"
)

func newPT(t *testing.T, memBytes uint64, mutate ...func(*Config)) (*PageTable, *phys.Memory) {
	t.Helper()
	mem := phys.NewMemory(memBytes)
	alloc := phys.NewAllocator(mem, 0)
	cfg := DefaultConfig(77)
	cfg.Rand = rand.New(rand.NewSource(5))
	for _, m := range mutate {
		m(&cfg)
	}
	p, err := NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, mem
}

func TestMapTranslateUnmap(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	vpn := addr.VPN(0x12345)
	if _, err := p.Map(vpn, addr.Page4K, 999); err != nil {
		t.Fatal(err)
	}
	ppn, ok := p.TranslateSize(vpn, addr.Page4K)
	if !ok || ppn != 999 {
		t.Fatalf("TranslateSize = %d,%v", ppn, ok)
	}
	tr, ok := p.Translate(vpn.Addr(addr.Page4K) + 0x123)
	if !ok || tr.PPN != 999 || tr.Size != addr.Page4K {
		t.Fatalf("Translate = %+v,%v", tr, ok)
	}
	if _, ok := p.Unmap(vpn, addr.Page4K); !ok {
		t.Fatal("Unmap missed")
	}
	if _, ok := p.TranslateSize(vpn, addr.Page4K); ok {
		t.Fatal("translation survived unmap")
	}
	if _, ok := p.Unmap(vpn, addr.Page4K); ok {
		t.Fatal("double unmap reported success")
	}
}

func TestMultiplePageSizes(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	p.Map(addr.VPN(5), addr.Page2M, 100)
	p.Map(addr.VPN(5), addr.Page4K, 200) // same VPN number, different size
	if ppn, ok := p.TranslateSize(addr.VPN(5), addr.Page2M); !ok || ppn != 100 {
		t.Errorf("2MB entry = %d,%v", ppn, ok)
	}
	if ppn, ok := p.TranslateSize(addr.VPN(5), addr.Page4K); !ok || ppn != 200 {
		t.Errorf("4KB entry = %d,%v", ppn, ok)
	}
	// Translate prefers the larger size when both map the address.
	va := addr.VPN(5).Addr(addr.Page2M)
	tr, ok := p.Translate(va)
	if !ok || tr.Size != addr.Page2M {
		t.Errorf("Translate size = %v", tr.Size)
	}
}

// TestGrowthCorrectness drives tens of thousands of mappings and verifies
// every translation across all the resizes, transitions, and kicks.
func TestGrowthCorrectness(t *testing.T) {
	p, _ := newPT(t, 4*addr.GB)
	const n = 60000
	rng := rand.New(rand.NewSource(9))
	want := make(map[addr.VPN]addr.PPN, n)
	for len(want) < n {
		vpn := addr.VPN(rng.Uint64() & 0xFFFFFF)
		ppn := addr.PPN(rng.Uint64() & 0x3FFFFFF)
		if _, err := p.Map(vpn, addr.Page4K, ppn); err != nil {
			t.Fatalf("Map(%d): %v", vpn, err)
		}
		want[vpn] = ppn
	}
	for vpn, ppn := range want {
		got, ok := p.TranslateSize(vpn, addr.Page4K)
		if !ok || got != ppn {
			t.Fatalf("TranslateSize(%d) = %d,%v want %d", vpn, got, ok, ppn)
		}
	}
	st := p.Table(addr.Page4K).Stats()
	if sum(st.UpsizesPerWay) == 0 {
		t.Error("no upsizes despite 60k mappings")
	}
}

func sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestPerWayBalance: the balance rule keeps way sizes within 2x of each
// other at all times.
func TestPerWayBalance(t *testing.T) {
	p, _ := newPT(t, 4*addr.GB)
	rng := rand.New(rand.NewSource(3))
	var tab *Table
	for i := 0; i < 50000; i++ {
		vpn := addr.VPN(rng.Uint64() & 0xFFFFFF)
		if _, err := p.Map(vpn, addr.Page4K, addr.PPN(i)); err != nil {
			t.Fatal(err)
		}
		tab = p.Table(addr.Page4K)
		if i%1000 == 0 {
			sizes := tab.WaySizes()
			min, max := sizes[0], sizes[0]
			for _, s := range sizes {
				if s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			if max > 2*min {
				t.Fatalf("way imbalance at step %d: %v", i, sizes)
			}
		}
	}
	// Upsizes spread across all ways (Figure 11's load balancing).
	ups := tab.Stats().UpsizesPerWay
	for i, u := range ups {
		if u == 0 {
			t.Errorf("way %d never upsized: %v", i, ups)
		}
	}
}

// TestInPlaceMoveFraction verifies Figure 13: ≈50% of entries stay in place
// during an in-place upsize.
func TestInPlaceMoveFraction(t *testing.T) {
	p, _ := newPT(t, 4*addr.GB)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40000; i++ {
		p.Map(addr.VPN(rng.Uint64()&0xFFFFFF), addr.Page4K, addr.PPN(i))
	}
	p.Table(addr.Page4K).DrainResizes()
	st := p.Table(addr.Page4K).Stats()
	total := st.UpsizeMoved + st.UpsizeStayed
	if total == 0 {
		t.Fatal("no upsize rehashes recorded")
	}
	frac := float64(st.UpsizeMoved) / float64(total)
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("moved fraction = %.3f, want ≈0.5", frac)
	}
}

// TestChunkTransition reproduces Figure 3: growing a way past 512KB
// switches from 8KB to 1MB chunks, and max contiguous allocation stays 1MB.
func TestChunkTransition(t *testing.T) {
	p, _ := newPT(t, 4*addr.GB)
	rng := rand.New(rand.NewSource(13))
	// 512KB way = 8192 slots; 3 ways at 0.6 → trigger transitions well
	// before 200k clusters. Map distinct clusters (stride 8 pages).
	for i := 0; i < 120000; i++ {
		vpn := addr.VPN(rng.Uint64() & 0x3FFFFFF)
		p.Map(vpn, addr.Page4K, addr.PPN(i))
	}
	tab := p.Table(addr.Page4K)
	st := tab.Stats()
	if st.Transitions == 0 {
		t.Fatal("no chunk-size transition despite way growth past 512KB")
	}
	for i, cb := range tab.WayChunkBytes() {
		if cb != 1*addr.MB {
			t.Errorf("way %d chunk size = %d, want 1MB", i, cb)
		}
	}
	if st.MaxContiguousAlloc != 1*addr.MB {
		t.Errorf("MaxContiguousAlloc = %d, want 1MB", st.MaxContiguousAlloc)
	}
}

// TestOutOfPlacePeakMemory: the no-in-place ablation must show a higher
// peak footprint than full ME-HPT for the same workload, because old and
// new tables coexist during resizes.
func TestOutOfPlacePeakMemory(t *testing.T) {
	load := func(p *PageTable) uint64 {
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 30000; i++ {
			if _, err := p.Map(addr.VPN(rng.Uint64()&0xFFFFFF), addr.Page4K, addr.PPN(i)); err != nil {
				t.Fatal(err)
			}
		}
		return p.PeakFootprintBytes()
	}
	inPlace, _ := newPT(t, 4*addr.GB)
	outPlace, _ := newPT(t, 4*addr.GB, func(c *Config) { c.InPlace = false })
	pi, po := load(inPlace), load(outPlace)
	if po <= pi {
		t.Errorf("out-of-place peak %d not above in-place peak %d", po, pi)
	}
}

// TestWeightedInsertionFavorsUpsizedWay: after one way upsizes, most inserts
// land there (Section IV-D).
func TestWeightedInsertionFavorsUpsizedWay(t *testing.T) {
	p, _ := newPT(t, 4*addr.GB)
	rng := rand.New(rand.NewSource(31))
	// Fill until the first upsize fires.
	p.Map(addr.VPN(1), addr.Page4K, 1)
	tab := p.Table(addr.Page4K)
	i := 0
	for sum(tab.Stats().UpsizesPerWay) == 0 {
		p.Map(addr.VPN(rng.Uint64()&0xFFFFFF), addr.Page4K, addr.PPN(i))
		i++
		if i > 100000 {
			t.Fatal("no upsize happened")
		}
	}
	tab.DrainResizes()
	// Identify the upsized (larger) way.
	sizes := tab.WaySizes()
	bigWay, bigSize := 0, uint64(0)
	for w, s := range sizes {
		if s > bigSize {
			bigWay, bigSize = w, s
		}
	}
	// Sample the insertion policy directly: the enlarged way has the most
	// free slots and must receive the bulk of fresh placements.
	counts := make([]int, len(tab.ways))
	for j := 0; j < 5000; j++ {
		counts[tab.pickInsertWay(-1)]++
	}
	// Expected share = free_big / Σ free; check it dominates.
	var freeBig, freeSum uint64
	for w := range tab.ways {
		f := tab.ways[w].free()
		freeSum += f
		if w == bigWay {
			freeBig = f
		}
	}
	wantShare := float64(freeBig) / float64(freeSum)
	gotShare := float64(counts[bigWay]) / 5000
	if gotShare < wantShare-0.05 || gotShare > wantShare+0.05 {
		t.Errorf("upsized way share = %.3f, want ≈%.3f (counts %v, sizes %v)",
			gotShare, wantShare, counts, sizes)
	}
	if gotShare <= 0.5 {
		t.Errorf("upsized way share %.3f does not dominate", gotShare)
	}
	_ = bigSize
}

// TestDownsize: mass unmapping shrinks ways back down.
func TestDownsize(t *testing.T) {
	p, _ := newPT(t, 4*addr.GB)
	var vpns []addr.VPN
	rng := rand.New(rand.NewSource(41))
	p.Map(addr.VPN(0xFFFFFF), addr.Page4K, 1)
	tab := p.Table(addr.Page4K)
	vpns = append(vpns, addr.VPN(0xFFFFFF))
	for i := 0; i < 30000; i++ {
		vpn := addr.VPN(rng.Uint64() & 0xFFFFFF)
		p.Map(vpn, addr.Page4K, addr.PPN(i))
		vpns = append(vpns, vpn)
	}
	tab.DrainResizes()
	grown := tab.WaySizes()[0]
	for _, vpn := range vpns {
		p.Unmap(vpn, addr.Page4K)
	}
	tab.Settle()
	if tab.Stats().Downsizes == 0 {
		t.Fatal("no downsizes after mass unmap")
	}
	shrunk := tab.WaySizes()
	for w, s := range shrunk {
		if s >= grown {
			t.Errorf("way %d did not shrink: %d", w, s)
		}
	}
	// All remaining lookups must fail.
	for _, vpn := range vpns[:100] {
		if _, ok := p.TranslateSize(vpn, addr.Page4K); ok {
			t.Fatalf("vpn %d still translated after unmap", vpn)
		}
	}
}

// TestModelEquivalence cross-checks against a map under random ops.
func TestModelEquivalence(t *testing.T) {
	p, _ := newPT(t, 4*addr.GB)
	model := make(map[addr.VPN]addr.PPN)
	rng := rand.New(rand.NewSource(51))
	for step := 0; step < 40000; step++ {
		vpn := addr.VPN(rng.Uint64() & 0x7FFFF)
		switch rng.Intn(3) {
		case 0, 1:
			ppn := addr.PPN(rng.Uint64() & 0xFFFFFF)
			if _, err := p.Map(vpn, addr.Page4K, ppn); err != nil {
				t.Fatal(err)
			}
			model[vpn] = ppn
		case 2:
			_, gotOK := p.Unmap(vpn, addr.Page4K)
			_, wantOK := model[vpn]
			if gotOK != wantOK {
				t.Fatalf("Unmap(%d) = %v, want %v", vpn, gotOK, wantOK)
			}
			delete(model, vpn)
		}
	}
	for vpn, want := range model {
		got, ok := p.TranslateSize(vpn, addr.Page4K)
		if !ok || got != want {
			t.Fatalf("TranslateSize(%d) = %d,%v want %d", vpn, got, ok, want)
		}
	}
}

// TestReinsertionsDistribution sanity-checks Figure 16's shape: most
// inserts need zero re-insertions.
func TestReinsertionsDistribution(t *testing.T) {
	p, _ := newPT(t, 4*addr.GB)
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 50000; i++ {
		p.Map(addr.VPN(rng.Uint64()&0xFFFFFF), addr.Page4K, addr.PPN(i))
	}
	h := p.Table(addr.Page4K).Stats().Reinsertions
	if h.Total() == 0 {
		t.Fatal("no re-insertion observations")
	}
	if p0 := h.Probability(0); p0 < 0.5 {
		t.Errorf("P(0 reinsertions) = %.3f, want > 0.5 (paper: 0.64)", p0)
	}
	if m := h.Mean(); m > 1.5 {
		t.Errorf("mean reinsertions = %.3f, implausibly high", m)
	}
}

// TestProbeAddrsDistinctAndStable: hardware walk addresses are well-formed.
func TestProbeAddrs(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	va := addr.VirtAddr(0x7000_0000)
	if pas := p.ProbeAddrs(va, addr.Page4K); pas != nil {
		t.Fatalf("ProbeAddrs before any mapping = %v, want nil (lazy tables)", pas)
	}
	p.Map(va.PageNumber(addr.Page4K), addr.Page4K, 5)
	pas := p.ProbeAddrs(va, addr.Page4K)
	if len(pas) != 3 {
		t.Fatalf("ProbeAddrs len = %d", len(pas))
	}
	again := p.ProbeAddrs(va, addr.Page4K)
	for i := range pas {
		if pas[i] != again[i] {
			t.Errorf("probe address unstable for way %d", i)
		}
		if pas[i] != p.WayProbeAddr(va, addr.Page4K, i) {
			t.Errorf("WayProbeAddr mismatch for way %d", i)
		}
	}
}

func TestWayOf(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	vpn := addr.VPN(0x4444)
	p.Map(vpn, addr.Page4K, 7)
	va := vpn.Addr(addr.Page4K)
	w, ok := p.WayOf(va, addr.Page4K)
	if !ok {
		t.Fatal("WayOf missed a mapped page")
	}
	if pa := p.WayProbeAddr(va, addr.Page4K, w); pa == 0 {
		t.Error("probe address of holding way is zero")
	}
	if _, ok := p.WayOf(addr.VirtAddr(0xDEAD0000), addr.Page4K); ok {
		t.Error("WayOf found an unmapped page")
	}
}

// TestFreeReturnsMemory: process teardown releases everything.
func TestFreeReturnsMemory(t *testing.T) {
	mem := phys.NewMemory(1 * addr.GB)
	alloc := phys.NewAllocator(mem, 0)
	cfg := DefaultConfig(3)
	cfg.Rand = rand.New(rand.NewSource(8))
	p, err := NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 20000; i++ {
		p.Map(addr.VPN(rng.Uint64()&0xFFFFF), addr.Page4K, addr.PPN(i))
	}
	p.Free()
	if mem.FreeBytes() != mem.TotalBytes() {
		t.Errorf("leak: %d of %d free after Free",
			mem.FreeBytes(), mem.TotalBytes())
	}
	if p.L2P().TotalUsed() != 0 {
		t.Errorf("L2P entries leaked: %d", p.L2P().TotalUsed())
	}
}

// TestInitialFootprint: tables are lazy, so a fresh page table holds no
// memory; the first 4KB mapping creates three 8KB ways (Table III's initial
// size) backed by one 8KB chunk each.
func TestInitialFootprint(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	if got := p.FootprintBytes(); got != 0 {
		t.Errorf("fresh footprint = %d, want 0 (lazy tables)", got)
	}
	p.Map(addr.VPN(1), addr.Page4K, 1)
	want := uint64(3) * 8 * addr.KB
	if got := p.FootprintBytes(); got != want {
		t.Errorf("footprint after first map = %d, want %d", got, want)
	}
	if got := p.MaxContiguousAlloc(); got != 8*addr.KB {
		t.Errorf("max contiguous = %d, want 8KB", got)
	}
	// The unused 1GB subtable leaves its L2P region stealable: a 4KB
	// subtable may grow to 64 entries (Section V-A / VII-D).
	if lim := p.L2P().Limit(0, addr.Page4K); lim != 64 {
		t.Errorf("4KB subtable limit = %d, want 64 with lazy sibling tables", lim)
	}
}

// TestLadderAblation: with a 1MB-only ladder (Figure 15), even a tiny table
// allocates a 1MB chunk per way.
func TestLadderAblation(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB, func(c *Config) {
		c.Ladder = []uint64{1 * addr.MB, 8 * addr.MB, 64 * addr.MB}
	})
	p.Map(addr.VPN(1), addr.Page4K, 1)
	want := uint64(3) * 1 * addr.MB
	if got := p.FootprintBytes(); got != want {
		t.Errorf("1MB-ladder footprint after first map = %d, want %d", got, want)
	}
}

func TestClusterSharing(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	// 8 pages of one cluster occupy a single table entry.
	base := addr.VPN(0x1000) // cluster-aligned (0x1000 % 8 == 0)
	for i := 0; i < pt.ClusterSpan; i++ {
		p.Map(base+addr.VPN(i), addr.Page4K, addr.PPN(100+i))
	}
	if n := p.Table(addr.Page4K).Len(); n != 1 {
		t.Errorf("cluster entries = %d, want 1", n)
	}
	for i := 0; i < pt.ClusterSpan; i++ {
		if ppn, ok := p.TranslateSize(base+addr.VPN(i), addr.Page4K); !ok || ppn != addr.PPN(100+i) {
			t.Errorf("page %d: %d,%v", i, ppn, ok)
		}
	}
	// Unmapping 7 of 8 keeps the entry; the 8th removes it.
	for i := 0; i < pt.ClusterSpan-1; i++ {
		p.Unmap(base+addr.VPN(i), addr.Page4K)
	}
	if n := p.Table(addr.Page4K).Len(); n != 1 {
		t.Errorf("entries after partial unmap = %d, want 1", n)
	}
	p.Unmap(base+addr.VPN(pt.ClusterSpan-1), addr.Page4K)
	if n := p.Table(addr.Page4K).Len(); n != 0 {
		t.Errorf("entries after full unmap = %d, want 0", n)
	}
}
