package mehpt

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/chunk"
	"repro/internal/cuckoo"
	"repro/internal/hashfn"
	"repro/internal/pt"
)

// way is one hash way of an ME-HPT table. Unlike the baseline ECPT, each way
// has its own size (per-way resizing, Section IV-D) and resizes in place
// (Section IV-C): during a resize the old and new tables share the same slot
// array and chunk store, and the new hash key is the old key with one bit
// added (upsize) or removed (downsize).
type way struct {
	idx int
	fn  hashfn.Func

	// slots is the logical slot array. Outside a resize its length is size.
	// During an in-place or out-of-place upsize it is grown to newSize; the
	// trailing half is the "new space" of Figure 4.
	slots []cuckoo.Entry
	size  uint64 // current (pre-resize) size in slots; power of two
	occ   uint64 // occupied slots

	store *chunk.Store
	// pending is the separate physical backing allocated by an out-of-place
	// resize (the no-in-place ablation); nil otherwise. Old and new backing
	// coexist until the resize finishes, which is exactly the memory cost
	// in-place resizing eliminates.
	pending *chunk.Store

	resizing bool
	up       bool
	newSize  uint64
	ptr      uint64 // rehash pointer over the old index space [0, size)
}

func newWay(idx int, fn hashfn.Func, entries uint64, store *chunk.Store) *way {
	w := &way{idx: idx, fn: fn, size: entries, store: store}
	w.slots = emptySlots(entries)
	return w
}

func emptySlots(n uint64) []cuckoo.Entry {
	s := make([]cuckoo.Entry, n)
	for i := range s {
		s[i].Key = cuckoo.EmptyKey
	}
	return s
}

// capacity is the slot count resizing is steering toward.
func (w *way) capacity() uint64 {
	if w.resizing {
		return w.newSize
	}
	return w.size
}

func (w *way) occupancy() float64 { return float64(w.occ) / float64(w.capacity()) }

func (w *way) free() uint64 { return w.capacity() - w.occ }

// locate returns the slot index where key lives (or would live), honouring
// the rehash pointer: hash keys whose old index is below the pointer belong
// to the new table, indexed with one more (upsize) or one fewer (downsize)
// bit of the same hash (Section IV-C).
//mehpt:hotpath
func (w *way) locate(key uint64) uint64 {
	return w.locateHash(w.fn.Hash(key))
}

// locateHash is locate for a precomputed hash value — the multi-way probe
// loops compute one CRC per key through the table's Mixer and index every
// way (and both resize sizes) from it.
//mehpt:hotpath
func (w *way) locateHash(h uint64) uint64 {
	oldIdx := h & (w.size - 1)
	if !w.resizing || oldIdx >= w.ptr {
		return oldIdx
	}
	return h & (w.newSize - 1)
}

// slotPA returns the physical address of slot idx, resolved through the
// chunk store(s). During an out-of-place resize, new-table indices resolve
// through the pending store.
//mehpt:hotpath
func (w *way) slotPA(idx uint64) addr.PhysAddr {
	off := idx * pt.EntryBytes
	if w.pending != nil {
		// Out-of-place: the new table is a separate physical object. Any
		// index below the new size addresses the new table only when it was
		// produced by new-table indexing; since old and new overlap in index
		// space, we conservatively resolve indices < newSize that are in the
		// migrated region (or in the grown upper half) through pending.
		if w.up {
			if idx >= w.size || idx < w.ptr {
				return w.pending.SlotAddr(off)
			}
		} else if idx < w.newSize && idx < w.ptr {
			return w.pending.SlotAddr(off)
		}
	}
	return w.store.SlotAddr(off)
}

// footprint returns the physical bytes held by this way.
func (w *way) footprint() uint64 {
	b := w.store.FootprintBytes()
	if w.pending != nil {
		b += w.pending.FootprintBytes()
	}
	return b
}

// beginResize records the resize state; physical growth must already have
// happened (Extend for in-place, pending store for out-of-place).
func (w *way) beginResize(newSize uint64) {
	if w.resizing {
		panic("mehpt: beginResize with resize in flight")
	}
	w.resizing = true
	w.up = newSize > w.size
	w.newSize = newSize
	w.ptr = 0
	if w.up {
		grown := emptySlots(newSize)
		copy(grown, w.slots)
		w.slots = grown
	}
}

// finishResize commits the resize: the way's size becomes newSize, trailing
// physical chunks are released on a downsize, and a pending out-of-place
// store replaces the old one.
func (w *way) finishResize() {
	if !w.resizing {
		panic("mehpt: finishResize without resize")
	}
	if !w.up {
		for i := w.newSize; i < w.size; i++ {
			if w.slots[i].Key != cuckoo.EmptyKey {
				panic(fmt.Sprintf("mehpt: live entry at %d beyond downsized table", i))
			}
		}
		w.slots = w.slots[:w.newSize]
	}
	w.size = w.newSize
	w.resizing = false
	if w.pending != nil {
		w.store.Free()
		w.store = w.pending
		w.pending = nil
	} else if w.store.WayBytes() > w.size*pt.EntryBytes {
		w.store.ShrinkTo(w.size * pt.EntryBytes)
	}
}
