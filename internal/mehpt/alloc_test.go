package mehpt

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/pt"
)

// TestLookupAllocFree guards the page-walk hot path: once the table is
// populated and settled, Table.Lookup, PageTable.Translate, and the fused
// PageTable.Walk must never allocate — the Mixer probe, the flat ways, and
// the stash scan are all in-place reads.
func TestLookupAllocFree(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	const pages = 512
	for i := 0; i < pages; i++ {
		if _, err := p.Map(addr.VPN(i), addr.Page4K, addr.PPN(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	tb := p.Table(addr.Page4K)
	if err := tb.Settle(); err != nil {
		t.Fatal(err)
	}

	var i uint64
	if n := testing.AllocsPerRun(1000, func() {
		i = (i + 1) % pages
		if _, ok := tb.Lookup(pt.ClusterKey(addr.VPN(i))); !ok {
			t.Fatal("settled lookup missed")
		}
	}); n != 0 {
		t.Errorf("Table.Lookup allocates %v objects per call", n)
	}

	if n := testing.AllocsPerRun(1000, func() {
		i = (i + 1) % pages
		va := addr.VPN(i).Addr(addr.Page4K)
		if _, ok := p.Translate(va); !ok {
			t.Fatal("Translate missed")
		}
		if _, _, ok := p.Walk(va); !ok {
			t.Fatal("Walk missed")
		}
	}); n != 0 {
		t.Errorf("Translate+Walk allocates %v objects per call", n)
	}

	// Misses take the same probe loop through every size table.
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := p.Translate(addr.VPN(1 << 30).Addr(addr.Page4K)); ok {
			t.Fatal("phantom translation")
		}
	}); n != 0 {
		t.Errorf("missing Translate allocates %v objects per call", n)
	}
}
