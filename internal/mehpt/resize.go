package mehpt

import (
	"errors"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/cuckoo"
	"repro/internal/pt"
)

// maybeResize applies the resizing policy after an insert or delete and
// returns the allocation cycles spent starting resizes.
//
// Per-way mode (Section IV-D): a way whose occupancy crosses the upsize
// threshold is resized alone, but only if it is not already larger than
// another way; symmetrically for downsizes. All-way mode (the baseline
// policy, used by the ablation): total occupancy drives a resize of every
// way together.
func (t *Table) maybeResize() uint64 {
	if t.cfg.PerWay {
		return t.maybeResizePerWay()
	}
	return t.maybeResizeAllWays()
}

func (t *Table) maybeResizePerWay() uint64 {
	var cycles uint64
	minSize, maxSize := t.minWaySize(), t.maxWaySize()
	for i, w := range t.ways {
		if w.resizing {
			continue
		}
		switch {
		case w.occupancy() > t.cfg.UpsizeAt:
			// Balance rule: the candidate cannot already be larger than
			// another way.
			if w.capacity() > minSize {
				continue
			}
			c, err := t.upsizeWay(i)
			cycles += c
			if err != nil {
				t.stats.FailedUpsizes++
			}
		case w.occupancy() < t.cfg.DownsizeAt && w.capacity() > t.cfg.InitialEntries:
			// Balance rule: the candidate cannot already be smaller than
			// another way.
			if w.capacity() < maxSize {
				continue
			}
			cycles += t.downsizeWay(i)
		}
	}
	return cycles
}

func (t *Table) maybeResizeAllWays() uint64 {
	if t.Resizing() {
		return 0
	}
	var occ, cap uint64
	for _, w := range t.ways {
		occ += w.occ
		cap += w.capacity()
	}
	ratio := float64(occ) / float64(cap)
	var cycles uint64
	switch {
	case ratio > t.cfg.UpsizeAt:
		for i := range t.ways {
			c, err := t.upsizeWay(i)
			cycles += c
			if err != nil {
				t.stats.FailedUpsizes++
				break
			}
		}
	case ratio < t.cfg.DownsizeAt && t.ways[0].capacity() > t.cfg.InitialEntries:
		for i := range t.ways {
			cycles += t.downsizeWay(i)
		}
	}
	return cycles
}

// upsizeWay doubles way i. Depending on configuration and L2P headroom this
// is (a) an in-place gradual resize over extended chunks, (b) an eager
// out-of-place rebuild at the next chunk size (a chunk-size transition), or
// (c) a gradual out-of-place resize into a separate pending store (the
// no-in-place ablation).
//
// Under memory pressure the in-place paths degrade down a ladder instead of
// failing outright: if the extension or transition cannot allocate, the way
// retries out of place over the full chunk ladder — smaller rungs trade L2P
// entries for allocability — and only if that also fails is the resize
// deferred with ErrResizeFailed, leaving the way valid at its old geometry
// for maybeResize to retry later.
func (t *Table) upsizeWay(i int) (uint64, error) {
	w := t.ways[i]
	if w.resizing {
		if err := t.drainWay(w); err != nil {
			return 0, fmt.Errorf("%w: way %d: %w", ErrResizeFailed, i, err)
		}
	}
	newSize := w.size * 2
	targetBytes := newSize * pt.EntryBytes

	if t.cfg.InPlace {
		if w.store.CanExtendInPlace(targetBytes) {
			cycles, err := w.store.Extend(targetBytes)
			t.noteAlloc(w.store.ChunkBytes(), cycles)
			if err == nil {
				w.beginResize(newSize)
				t.stats.UpsizesPerWay[i]++
				t.notePeak()
				return cycles, nil
			}
			c2, err2 := t.upsizeOutOfPlace(w, newSize, t.ladder())
			cycles += c2
			if err2 != nil {
				return cycles, fmt.Errorf("%w: way %d: %w (out-of-place fallback: %v)",
					ErrResizeFailed, i, err, err2)
			}
			return cycles, nil
		}
		cycles, err := t.transitionWay(w, newSize)
		if err == nil {
			t.stats.UpsizesPerWay[i]++
			t.notePeak()
			return cycles, nil
		}
		// The transition rolled back; the way still runs at the old rung.
		c2, err2 := t.upsizeOutOfPlace(w, newSize, t.ladder())
		cycles += c2
		if err2 != nil {
			return cycles, fmt.Errorf("%w: way %d: %w (out-of-place fallback: %v)",
				ErrResizeFailed, i, err, err2)
		}
		return cycles, nil
	}

	// Out-of-place ablation: allocate a separate new backing; old and new
	// coexist until the gradual rehash completes — the memory cost Section
	// IV-C eliminates. The new backing never uses smaller chunks than the
	// way already graduated to.
	cycles, err := t.upsizeOutOfPlace(w, newSize, t.ladderFrom(w.store.ChunkBytes()))
	if err != nil {
		if errors.Is(err, chunk.ErrL2PFull) {
			// Even the largest rung cannot fit alongside the old chunks:
			// fall back to an eager rebuild.
			c2, err2 := t.transitionWay(w, newSize)
			cycles += c2
			if err2 != nil {
				return cycles, fmt.Errorf("%w: way %d: %w", ErrResizeFailed, i, err2)
			}
			t.stats.UpsizesPerWay[i]++
			t.notePeak()
			return cycles, nil
		}
		return cycles, fmt.Errorf("%w: way %d: %w", ErrResizeFailed, i, err)
	}
	return cycles, nil
}

// upsizeOutOfPlace starts a gradual out-of-place upsize of way w into a
// separate pending store drawn from the given ladder. It is both the
// no-in-place ablation's normal path and the in-place mode's degradation
// fallback (where the full ladder lets small chunks stand in when large
// contiguous blocks are unavailable).
func (t *Table) upsizeOutOfPlace(w *way, newSize uint64, ladder []uint64) (uint64, error) {
	pending, cycles, err := chunk.NewStoreLadder(t.alloc, t.l2p, w.idx, t.size,
		newSize*pt.EntryBytes, ladder)
	if err != nil {
		return cycles, err
	}
	t.noteAlloc(pending.ChunkBytes(), cycles)
	w.pending = pending
	w.beginResize(newSize)
	t.stats.UpsizesPerWay[w.idx]++
	t.notePeak()
	return cycles, nil
}

// ladderFrom returns the configured ladder truncated to start at the rung
// holding cur, so a new backing never uses smaller chunks than the way
// already graduated to.
func (t *Table) ladderFrom(cur uint64) []uint64 {
	ladder := t.ladder()
	for i, r := range ladder {
		if r >= cur {
			return ladder[i:]
		}
	}
	return ladder[len(ladder)-1:]
}

// transitionWay performs the chunk-size transition of Figure 3d→e: an eager
// out-of-place rebuild of way i over chunks of the next rung. The OS buffers
// the way's entries (at most one maximal old way), frees the old chunks,
// allocates the new ones, and reinserts.
func (t *Table) transitionWay(w *way, newSize uint64) (uint64, error) {
	var buffered []cuckoo.Entry
	for idx := uint64(0); idx < uint64(len(w.slots)); idx++ {
		if w.slots[idx].Key != cuckoo.EmptyKey {
			buffered = append(buffered, w.slots[idx])
		}
	}
	targetBytes := newSize * pt.EntryBytes
	cycles, err := w.store.Transition(targetBytes)
	t.noteAlloc(w.store.ChunkBytes(), cycles)
	if err != nil {
		// The store rolled back to the old rung; the way is untouched.
		return cycles, err
	}
	t.stats.Transitions++
	w.resizing = false
	w.size = newSize
	w.slots = emptySlots(newSize)
	w.occ = 0
	for _, e := range buffered {
		idx := w.fn.Index(e.Key, newSize)
		t.stats.MovesTotal++
		if w.slots[idx].Key == cuckoo.EmptyKey {
			w.slots[idx] = e
			w.occ++
			continue
		}
		if _, err := t.placeMigration(e, w.idx); err != nil {
			// The old store is gone, so this entry cannot be rolled back
			// into it; spill to the software stash instead. It stays fully
			// visible to lookups and drains back on later inserts.
			t.stashPut(e)
		}
	}
	return cycles, nil
}

// downsizeWay halves way i. In-place downsizes need no allocation at all;
// the out-of-place ablation allocates the smaller table separately.
func (t *Table) downsizeWay(i int) uint64 {
	w := t.ways[i]
	if w.resizing {
		if err := t.drainWay(w); err != nil {
			// Downsizing is an optimization; skip it while migration is
			// stalled and let a later pass retry.
			return 0
		}
	}
	newSize := w.size / 2
	if newSize < t.cfg.InitialEntries {
		return 0
	}
	if t.cfg.InPlace {
		w.beginResize(newSize)
		t.stats.Downsizes++
		return 0
	}
	pending, cycles, err := chunk.NewStoreLadder(t.alloc, t.l2p, i, t.size,
		newSize*pt.EntryBytes, t.ladderFrom(0))
	if err != nil {
		// Cannot allocate the smaller table right now; skip the downsize.
		return cycles
	}
	t.noteAlloc(pending.ChunkBytes(), cycles)
	w.pending = pending
	w.beginResize(newSize)
	t.stats.Downsizes++
	t.notePeak()
	return cycles
}

// drainWay completes way w's in-flight resize synchronously. A stalled
// migration stops the drain with the resize still in flight; the way stays
// valid and a later tick retries.
func (t *Table) drainWay(w *way) error {
	for w.resizing {
		for w.resizing && w.ptr < w.size {
			if _, err := t.migrateOne(w); err != nil {
				return err
			}
		}
		if w.resizing {
			w.finishResize()
			t.notePeak()
		}
	}
	return nil
}
