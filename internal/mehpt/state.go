package mehpt

import (
	"fmt"
	"repro/internal/addr"
	"repro/internal/chunk"
	"repro/internal/cuckoo"
	"repro/internal/hashfn"
	"repro/internal/l2p"
	"repro/internal/phys"
	"repro/internal/pt"
	"repro/internal/stats"
)

// StatsState is the serializable form of Stats (the Reinsertions histogram
// has unexported fields, so it crosses the checkpoint as HistogramState).
type StatsState struct {
	Inserts, Lookups, Deletes uint64
	Kicks                     uint64
	UpsizesPerWay             []uint64
	Downsizes                 uint64
	Transitions               uint64
	FailedUpsizes             uint64
	Stalls                    uint64
	Stashed                   uint64
	UpsizeMoved, UpsizeStayed uint64
	MovesTotal                uint64
	Reinsertions              stats.HistogramState
	MaxContiguousAlloc        uint64
	AllocCycles               uint64
	PeakFootprintBytes        uint64
}

func captureStats(s *Stats) StatsState {
	st := StatsState{
		Inserts: s.Inserts, Lookups: s.Lookups, Deletes: s.Deletes,
		Kicks:         s.Kicks,
		UpsizesPerWay: append([]uint64(nil), s.UpsizesPerWay...),
		Downsizes:     s.Downsizes, Transitions: s.Transitions,
		FailedUpsizes: s.FailedUpsizes, Stalls: s.Stalls, Stashed: s.Stashed,
		UpsizeMoved: s.UpsizeMoved, UpsizeStayed: s.UpsizeStayed,
		MovesTotal:         s.MovesTotal,
		Reinsertions:       s.Reinsertions.State(),
		MaxContiguousAlloc: s.MaxContiguousAlloc,
		AllocCycles:        s.AllocCycles,
		PeakFootprintBytes: s.PeakFootprintBytes,
	}
	return st
}

func restoreStats(st StatsState) Stats {
	s := Stats{
		Inserts: st.Inserts, Lookups: st.Lookups, Deletes: st.Deletes,
		Kicks:         st.Kicks,
		UpsizesPerWay: append([]uint64(nil), st.UpsizesPerWay...),
		Downsizes:     st.Downsizes, Transitions: st.Transitions,
		FailedUpsizes: st.FailedUpsizes, Stalls: st.Stalls, Stashed: st.Stashed,
		UpsizeMoved: st.UpsizeMoved, UpsizeStayed: st.UpsizeStayed,
		MovesTotal:         st.MovesTotal,
		MaxContiguousAlloc: st.MaxContiguousAlloc,
		AllocCycles:        st.AllocCycles,
		PeakFootprintBytes: st.PeakFootprintBytes,
	}
	s.Reinsertions.Restore(st.Reinsertions)
	return s
}

// WayState is the serializable form of one way, including its resize
// machinery and chunk backing.
type WayState struct {
	Idx      int
	Slots    []cuckoo.Entry
	Size     uint64
	Occ      uint64
	Store    chunk.State
	Pending  *chunk.State // non-nil during an out-of-place resize
	Resizing bool
	Up       bool
	NewSize  uint64
	Ptr      uint64
}

// TableState is the serializable form of one per-page-size Table.
type TableState struct {
	Size  addr.PageSize
	Ways  []WayState
	Stash []cuckoo.Entry
	Stats StatsState
}

// State returns a deep copy of the table.
func (t *Table) State() TableState {
	st := TableState{
		Size:  t.size,
		Ways:  make([]WayState, len(t.ways)),
		Stash: append([]cuckoo.Entry(nil), t.stash...),
		Stats: captureStats(&t.stats),
	}
	for i, w := range t.ways {
		ws := WayState{
			Idx:      w.idx,
			Slots:    append([]cuckoo.Entry(nil), w.slots...),
			Size:     w.size,
			Occ:      w.occ,
			Store:    w.store.State(),
			Resizing: w.resizing,
			Up:       w.up,
			NewSize:  w.newSize,
			Ptr:      w.ptr,
		}
		if w.pending != nil {
			ps := w.pending.State()
			ws.Pending = &ps
		}
		st.Ways[i] = ws
	}
	return st
}

// restoreTable rebuilds one per-page-size table from recorded state. No
// physical allocation happens: the chunk stores are reattached to frames
// the restored allocator already shows as owned.
func restoreTable(st TableState, alloc phys.Source, tbl *l2p.Table, slab *pt.Slab, cfg Config) *Table {
	if cfg.Rand == nil {
		panic("mehpt: restore requires an explicitly positioned Config.Rand")
	}
	t := &Table{
		cfg:   cfg,
		size:  st.Size,
		alloc: alloc,
		l2p:   tbl,
		slab:  slab,
		rng:   cfg.Rand,
		stash: append([]cuckoo.Entry(nil), st.Stash...),
	}
	t.stats = restoreStats(st.Stats)
	fns := hashfn.Family(cfg.HashSeed+uint64(st.Size)*0x1000, cfg.Ways)
	t.mixer = hashfn.NewMixer(fns)
	t.ways = make([]*way, len(st.Ways))
	for i, ws := range st.Ways {
		w := &way{
			idx:      ws.Idx,
			fn:       fns[i],
			slots:    append([]cuckoo.Entry(nil), ws.Slots...),
			size:     ws.Size,
			occ:      ws.Occ,
			store:    chunk.RestoreStore(ws.Store, alloc, tbl),
			resizing: ws.Resizing,
			up:       ws.Up,
			newSize:  ws.NewSize,
			ptr:      ws.Ptr,
		}
		if ws.Pending != nil {
			w.pending = chunk.RestoreStore(*ws.Pending, alloc, tbl)
		}
		t.ways[i] = w
	}
	return t
}

// PageTableState is the serializable form of a process's complete ME-HPT.
// Tables holds only the live per-size tables (each self-identifies via its
// Size field): gob refuses nil elements inside arrays, so a sparse
// [NumPageSizes]*TableState cannot cross the checkpoint.
type PageTableState struct {
	Tables []TableState
	Slab   pt.SlabState
	L2P    l2p.State
}

// State returns a deep copy of the page table.
func (p *PageTable) State() PageTableState {
	st := PageTableState{
		Slab: p.slab.State(),
		L2P:  p.l2pTbl.State(),
	}
	for _, t := range p.tables {
		if t != nil {
			st.Tables = append(st.Tables, t.State())
		}
	}
	return st
}

// RestorePageTable rebuilds a process's ME-HPT from recorded state over an
// already-restored allocator, without allocating. cfg must carry the same
// HashSeed/Ways as the captured table and a Rand repositioned to its
// captured draw count (all per-size tables of one page table share it,
// exactly as under NewPageTable).
func RestorePageTable(alloc phys.Source, cfg Config, st PageTableState) *PageTable {
	p := &PageTable{
		l2pTbl: l2p.New(cfg.Ways),
		alloc:  alloc,
		cfg:    cfg,
	}
	p.l2pTbl.Restore(st.L2P)
	p.slab.Restore(st.Slab)
	for _, ts := range st.Tables {
		if ts.Size < addr.NumPageSizes {
			p.tables[ts.Size] = restoreTable(ts, alloc, p.l2pTbl, &p.slab, cfg)
		}
	}
	return p
}

// VisitOwnedFrames reports every physical block the page table owns — the
// chunk backing of every way (pending stores included) — as (base PPN,
// bytes) pairs. The scrubber uses it to prove frame-ownership disjointness
// across tenants.
func (p *PageTable) VisitOwnedFrames(f func(base addr.PPN, bytes uint64)) {
	for _, t := range p.tables {
		if t == nil {
			continue
		}
		for _, w := range t.ways {
			for _, c := range w.store.Chunks() {
				f(c, w.store.ChunkBytes())
			}
			if w.pending != nil {
				for _, c := range w.pending.Chunks() {
					f(c, w.pending.ChunkBytes())
				}
			}
		}
	}
}

// VisitMappings calls f for every live translation (vpn, size, ppn) in the
// page table, including stash-resident entries. The scrubber resolves each
// mapped frame against the allocator's ownership map.
func (p *PageTable) VisitMappings(f func(vpn addr.VPN, s addr.PageSize, ppn addr.PPN)) {
	emit := func(t *Table, e cuckoo.Entry) {
		if e.Key == cuckoo.EmptyKey {
			return
		}
		c := p.slab.At(e.Val)
		base := pt.BaseVPN(e.Key)
		for sub := uint(0); sub < pt.ClusterSpan; sub++ {
			if ppn, ok := c.Get(sub); ok {
				f(base+addr.VPN(sub), t.size, ppn)
			}
		}
	}
	for _, t := range p.tables {
		if t == nil {
			continue
		}
		for _, w := range t.ways {
			for _, e := range w.slots {
				emit(t, e)
			}
		}
		for _, e := range t.stash {
			emit(t, e)
		}
	}
}

// CheckWays runs the table-structure consistency checks the scrubber
// reports as chunk/upsize-bit violations: per-way occupancy counters must
// match the live slots, resize bits must be internally consistent, and the
// chunk backing must cover the logical slot array. It returns one message
// per violation.
func (p *PageTable) CheckWays() []string {
	var bad []string
	for _, t := range p.tables {
		if t == nil {
			continue
		}
		for _, w := range t.ways {
			live := uint64(0)
			for _, e := range w.slots {
				if e.Key != cuckoo.EmptyKey {
					live++
				}
			}
			if live != w.occ {
				bad = append(bad, fmt.Sprintf("size %v way %d: occ %d but %d live slots", t.size, w.idx, w.occ, live))
			}
			if w.resizing {
				if w.up != (w.newSize > w.size) {
					bad = append(bad, fmt.Sprintf("size %v way %d: up bit %v inconsistent with %d -> %d", t.size, w.idx, w.up, w.size, w.newSize))
				}
				if w.ptr > w.size {
					bad = append(bad, fmt.Sprintf("size %v way %d: rehash ptr %d beyond old size %d", t.size, w.idx, w.ptr, w.size))
				}
			} else if w.pending != nil {
				bad = append(bad, fmt.Sprintf("size %v way %d: pending store without resize in flight", t.size, w.idx))
			}
			need := uint64(len(w.slots)) * pt.EntryBytes
			if w.pending == nil && w.store.WayBytes() < need {
				bad = append(bad, fmt.Sprintf("size %v way %d: chunk backing %dB under slot array %dB", t.size, w.idx, w.store.WayBytes(), need))
			}
		}
	}
	return bad
}
