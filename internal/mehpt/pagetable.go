package mehpt

import (
	"repro/internal/addr"
	"repro/internal/l2p"
	"repro/internal/phys"
	"repro/internal/pt"
)

// PageTable is a process's complete ME-HPT: one Table per supported page
// size, a shared cluster slab, and the process's L2P table.
//
// Per-page-size tables are created lazily on the first mapping at that
// size: a process that never uses, say, 1GB pages holds no chunks and no
// L2P entries for them. This matters beyond memory thrift — an unused 1GB
// subtable is what lets a 4KB subtable steal its L2P region and grow to 64
// chunks (Section V-A; GUPS needs exactly this to stay on 1MB chunks).
type PageTable struct {
	tables [addr.NumPageSizes]*Table
	slab   pt.Slab
	l2pTbl *l2p.Table
	//mehpt:transient -- RestorePageTable reattaches the separately restored physical allocator
	alloc phys.Source
	//mehpt:transient -- RestorePageTable requires the caller to re-supply the same Config (incl. a repositioned Rand)
	cfg Config
}

// NewPageTable creates a process's ME-HPT. No physical memory is allocated
// until the first mapping of each page size.
func NewPageTable(alloc phys.Source, cfg Config) (*PageTable, error) {
	if cfg.Ways < 2 {
		panic("mehpt: need at least 2 ways")
	}
	return &PageTable{
		l2pTbl: l2p.New(cfg.Ways),
		alloc:  alloc,
		cfg:    cfg,
	}, nil
}

// Table returns the per-page-size table, or nil if no page of that size has
// been mapped yet.
func (p *PageTable) Table(s addr.PageSize) *Table { return p.tables[s] }

// table returns the per-page-size table, creating it on first use.
func (p *PageTable) table(s addr.PageSize) (*Table, error) {
	if p.tables[s] == nil {
		t, err := NewTable(s, p.alloc, p.l2pTbl, &p.slab, p.cfg)
		if err != nil {
			return nil, err
		}
		p.tables[s] = t
	}
	return p.tables[s], nil
}

// L2P returns the process's L2P table.
func (p *PageTable) L2P() *l2p.Table { return p.l2pTbl }

// L2PSaveRestoreEntries returns the number of valid L2P entries a context
// switch must save and restore (Section V-C).
func (p *PageTable) L2PSaveRestoreEntries() int { return p.l2pTbl.SaveRestoreEntries() }

// Map installs the translation vpn→ppn at the given page size. It returns
// the allocation cycle cost incurred by chunk allocations and resizes.
func (p *PageTable) Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error) {
	t, err := p.table(s)
	if err != nil {
		return 0, err
	}
	key := pt.ClusterKey(vpn)
	sub := pt.SubIndex(vpn)
	if id, ok := t.Lookup(key); ok {
		p.slab.At(id).Set(sub, ppn)
		return 0, nil
	}
	id := p.slab.Alloc()
	p.slab.At(id).Set(sub, ppn)
	_, cycles, err := t.Insert(key, id)
	if err != nil {
		p.slab.Free(id)
		return cycles, err
	}
	return cycles, nil
}

// Unmap removes the translation for vpn at the given page size, reporting
// whether it existed.
func (p *PageTable) Unmap(vpn addr.VPN, s addr.PageSize) (uint64, bool) {
	t := p.tables[s]
	if t == nil {
		return 0, false
	}
	key := pt.ClusterKey(vpn)
	id, ok := t.Lookup(key)
	if !ok {
		return 0, false
	}
	c := p.slab.At(id)
	if _, valid := c.Get(pt.SubIndex(vpn)); !valid {
		return 0, false
	}
	if c.Clear(pt.SubIndex(vpn)) {
		cycles, _ := t.Delete(key)
		p.slab.Free(id)
		return cycles, true
	}
	return 0, true
}

// Translate resolves va against all page sizes, largest first (a huge-page
// mapping shadows any stale base-page entries).
//mehpt:hotpath
func (p *PageTable) Translate(va addr.VirtAddr) (pt.Translation, bool) {
	for i := int(addr.NumPageSizes) - 1; i >= 0; i-- {
		s := addr.PageSize(i)
		vpn := va.PageNumber(s)
		if ppn, ok := p.TranslateSize(vpn, s); ok {
			return pt.Translation{PPN: ppn, Size: s}, true
		}
	}
	return pt.Translation{}, false
}

// TranslateBatch resolves each vas[i] against all page sizes largest-first,
// writing trs[i]/oks[i]. It is size-major: for each page size (descending)
// the still-unresolved elements are gathered and resolved through the
// table's batched, single-CRC lookup sweep. Per element the probes hit
// exactly the (size, table) pairs the scalar Translate would — an element
// resolved at a larger size is skipped at smaller ones — so the commutative
// statistics counters total identically; only their interleaving differs.
//mehpt:hotpath
func (p *PageTable) TranslateBatch(vas []addr.VirtAddr, trs []pt.Translation, oks []bool) {
	const chunk = 64
	for len(vas) > 0 {
		n := len(vas)
		if n > chunk {
			n = chunk
		}
		for i := range oks[:n] {
			oks[i] = false
		}
		for si := int(addr.NumPageSizes) - 1; si >= 0; si-- {
			s := addr.PageSize(si)
			t := p.tables[s]
			if t == nil {
				continue
			}
			var keys, vals [chunk]uint64
			var hit [chunk]bool
			var pos [chunk]int
			m := 0
			for i, va := range vas[:n] {
				if oks[i] {
					continue
				}
				keys[m] = pt.ClusterKey(va.PageNumber(s))
				pos[m] = i
				m++
			}
			if m == 0 {
				break
			}
			t.LookupBatch(keys[:m], vals[:m], hit[:m])
			for j := 0; j < m; j++ {
				if !hit[j] {
					continue
				}
				i := pos[j]
				vpn := vas[i].PageNumber(s)
				if ppn, valid := p.slab.At(vals[j]).Get(pt.SubIndex(vpn)); valid {
					trs[i] = pt.Translation{PPN: ppn, Size: s}
					oks[i] = true
				}
			}
		}
		vas = vas[n:]
		trs = trs[n:]
		oks = oks[n:]
	}
}

// TranslateSize resolves vpn at exactly the given page size.
//mehpt:hotpath
func (p *PageTable) TranslateSize(vpn addr.VPN, s addr.PageSize) (addr.PPN, bool) {
	if p.tables[s] == nil {
		return 0, false
	}
	id, ok := p.tables[s].Lookup(pt.ClusterKey(vpn))
	if !ok {
		return 0, false
	}
	return p.slab.At(id).Get(pt.SubIndex(vpn))
}

// Walk resolves va and returns the physical address of the winning way's
// probe slot — the fused equivalent of Translate + WayOf + WayProbeAddr the
// MMU's miss path uses. Its statistics footprint is identical: one Lookup
// counted per instantiated size table until the hit, and a stash-resident
// entry reports way 0's probe address (WayOf does not see the stash).
//mehpt:hotpath
func (p *PageTable) Walk(va addr.VirtAddr) (pt.Translation, addr.PhysAddr, bool) {
	for i := int(addr.NumPageSizes) - 1; i >= 0; i-- {
		s := addr.PageSize(i)
		t := p.tables[s]
		if t == nil {
			continue
		}
		vpn := va.PageNumber(s)
		key := pt.ClusterKey(vpn)
		t.stats.Lookups++ // mirrors Table.Lookup
		wi, idx, inWay := t.lookupSlot(key)
		var id uint64
		if inWay {
			id = t.ways[wi].slots[idx].Val
		} else {
			si := t.stashIndex(key)
			if si < 0 {
				continue
			}
			id = t.stash[si].Val
		}
		ppn, valid := p.slab.At(id).Get(pt.SubIndex(vpn))
		if !valid {
			continue
		}
		var pa addr.PhysAddr
		if inWay {
			pa = t.ways[wi].slotPA(idx)
		} else {
			w := t.ways[0]
			pa = w.slotPA(w.locate(key))
		}
		return pt.Translation{PPN: ppn, Size: s}, pa, true
	}
	return pt.Translation{}, 0, false
}

// ProbeAddrs returns the physical addresses of the W slots a hardware walk
// probes (in parallel) for va at page size s — the addresses the MMU prices
// against the cache hierarchy.
func (p *PageTable) ProbeAddrs(va addr.VirtAddr, s addr.PageSize) []addr.PhysAddr {
	t := p.tables[s]
	if t == nil {
		return nil
	}
	key := pt.ClusterKey(va.PageNumber(s))
	pas := make([]addr.PhysAddr, len(t.ways))
	for i, w := range t.ways {
		pas[i] = w.slotPA(w.locate(key))
	}
	return pas
}

// WayProbeAddr returns the physical address of one way's probe slot for va
// at page size s — used when the cuckoo walk cache has narrowed the walk to
// a single way.
//mehpt:hotpath
func (p *PageTable) WayProbeAddr(va addr.VirtAddr, s addr.PageSize, wayIdx int) addr.PhysAddr {
	t := p.tables[s]
	key := pt.ClusterKey(va.PageNumber(s))
	w := t.ways[wayIdx]
	return w.slotPA(w.locate(key))
}

// WayOf returns the way index currently holding va's cluster at page size
// s, and whether it is present — ground truth for cuckoo walk tables.
//mehpt:hotpath
func (p *PageTable) WayOf(va addr.VirtAddr, s addr.PageSize) (int, bool) {
	t := p.tables[s]
	if t == nil {
		return 0, false
	}
	i, _, ok := t.lookupSlot(pt.ClusterKey(va.PageNumber(s)))
	return i, ok
}

// FootprintBytes returns the total physical page-table memory held across
// all page sizes.
func (p *PageTable) FootprintBytes() uint64 {
	var b uint64
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			b += t.FootprintBytes()
		}
	}
	return b
}

// PeakFootprintBytes returns the high-water mark of FootprintBytes.
func (p *PageTable) PeakFootprintBytes() uint64 {
	var b uint64
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			b += t.ScalarStats().PeakFootprintBytes
		}
	}
	return b
}

// MaxContiguousAlloc returns the largest contiguous allocation the page
// table ever requested (Figure 8's metric).
func (p *PageTable) MaxContiguousAlloc() uint64 {
	var m uint64
	for _, s := range addr.Sizes() {
		t := p.tables[s]
		if t == nil {
			continue
		}
		if c := t.ScalarStats().MaxContiguousAlloc; c > m {
			m = c
		}
	}
	return m
}

// Moves returns the total number of entries the page table moved in
// memory during resizes (migration writes), across all page sizes.
func (p *PageTable) Moves() uint64 {
	var m uint64
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			m += t.ScalarStats().MovesTotal
		}
	}
	return m
}

// AllocCycles returns total cycles spent on physical allocation.
func (p *PageTable) AllocCycles() uint64 {
	var c uint64
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			c += t.ScalarStats().AllocCycles
		}
	}
	return c
}

// Free releases all physical memory held by the page table (process exit).
func (p *PageTable) Free() {
	for _, s := range addr.Sizes() {
		t := p.tables[s]
		if t == nil {
			continue
		}
		t.DrainResizes() //mehpt:allow errwrap -- teardown: ways and pending stores are freed below regardless
		for _, w := range t.ways {
			w.store.Free()
			if w.pending != nil {
				w.pending.Free()
			}
		}
	}
}
