package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/addr"
)

// binSections is a representative sectioned trace: distinct PIDs, an empty
// section in the middle, and addresses exercising the full 64-bit range.
func binSections() []Section {
	return []Section{
		{PID: 1, VAs: []addr.VirtAddr{0x1000, 0x2000, 0x1000}},
		{PID: 7, VAs: nil},
		{PID: 42, VAs: []addr.VirtAddr{0, 1<<47 - 4096, ^addr.VirtAddr(0)}},
	}
}

func encodeSections(t testing.TB, secs []Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, secs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryGoldenLayout pins the on-disk layout byte-for-byte: the header
// fields at their documented offsets and the first record immediately after
// the section table. A layout change must break this test, not slip by.
func TestBinaryGoldenLayout(t *testing.T) {
	data := encodeSections(t, binSections())
	if got := string(data[:8]); got != "MEHPTBT1" {
		t.Fatalf("magic = %q", got)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != BinaryVersion {
		t.Errorf("version = %d", v)
	}
	if s := binary.LittleEndian.Uint32(data[12:16]); s != 3 {
		t.Errorf("section count = %d, want 3", s)
	}
	if n := binary.LittleEndian.Uint64(data[16:24]); n != 6 {
		t.Errorf("record count = %d, want 6", n)
	}
	if r := binary.LittleEndian.Uint64(data[24:32]); r != 0 {
		t.Errorf("reserved = %d, want 0", r)
	}
	if want := binaryHeaderLen + 3*16 + 6*8; len(data) != want {
		t.Fatalf("file length = %d, want %d", len(data), want)
	}
	// Section table entry 0: (pid=1, count=3).
	if p := binary.LittleEndian.Uint64(data[32:40]); p != 1 {
		t.Errorf("section 0 pid = %d", p)
	}
	if c := binary.LittleEndian.Uint64(data[40:48]); c != 3 {
		t.Errorf("section 0 count = %d", c)
	}
	// First record: 0x1000, little-endian at the computed offset.
	rec0 := binaryHeaderLen + 3*16
	if va := binary.LittleEndian.Uint64(data[rec0 : rec0+8]); va != 0x1000 {
		t.Errorf("record 0 = %#x", va)
	}
}

func TestBinarySectionRoundTrip(t *testing.T) {
	want := binSections()
	got, err := ReadSections(bytes.NewReader(encodeSections(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d sections, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].PID != want[i].PID {
			t.Errorf("section %d pid = %d, want %d", i, got[i].PID, want[i].PID)
		}
		if len(got[i].VAs) != len(want[i].VAs) || (len(want[i].VAs) > 0 && !reflect.DeepEqual(got[i].VAs, want[i].VAs)) {
			t.Errorf("section %d VAs = %v, want %v", i, got[i].VAs, want[i].VAs)
		}
	}
}

func TestBinaryAnonymousRoundTrip(t *testing.T) {
	vas := []addr.VirtAddr{0x4000_0000, 0x4000_1000, 0x4000_0000, 7}
	var buf bytes.Buffer
	if err := WriteBinaryVAs(&buf, vas); err != nil {
		t.Fatal(err)
	}
	secs, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 || secs[0].PID != 0 || !reflect.DeepEqual(secs[0].VAs, vas) {
		t.Fatalf("anonymous round trip: %+v", secs)
	}
	// An empty anonymous trace is valid and decodes to one empty section.
	buf.Reset()
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	secs, err = ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil || len(secs) != 1 || len(secs[0].VAs) != 0 {
		t.Fatalf("empty trace: %+v, %v", secs, err)
	}
}

// TestVarintBinaryVarintRoundTrip is the converter's golden property: a
// varint trace converted to binary and back re-encodes to the exact bytes of
// the original (the varint encoder is deterministic), so mehpt-trace convert
// is lossless in both directions.
func TestVarintBinaryVarintRoundTrip(t *testing.T) {
	original := validTrace(t)

	var vas []addr.VirtAddr
	if _, err := Replay(bytes.NewReader(original), func(va addr.VirtAddr) bool {
		vas = append(vas, va)
		return true
	}); err != nil {
		t.Fatal(err)
	}

	var bin bytes.Buffer
	if err := WriteBinaryVAs(&bin, vas); err != nil {
		t.Fatal(err)
	}
	secs, err := ReadSections(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 {
		t.Fatalf("%d sections from anonymous conversion", len(secs))
	}

	var back bytes.Buffer
	if _, err := Record(&back, func(emit func(addr.VirtAddr)) {
		for _, va := range secs[0].VAs {
			emit(va)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), original) {
		t.Fatalf("varint→binary→varint not byte-identical:\n got %x\nwant %x", back.Bytes(), original)
	}
}

// TestBinaryOpenStream: the format sniffer must route both formats to a
// working decoder and reject unknown magic.
func TestBinaryOpenStream(t *testing.T) {
	vas := []addr.VirtAddr{1 << 20, 2 << 20, 3 << 20}
	var bin bytes.Buffer
	if err := WriteBinaryVAs(&bin, vas); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out [8]addr.VirtAddr
	n, err := s.NextBatch(out[:])
	if err != nil || n != 3 || !reflect.DeepEqual(out[:3], vas) {
		t.Fatalf("binary stream: n=%d err=%v out=%v", n, err, out[:3])
	}
	if _, err := OpenStream(bytes.NewReader([]byte("NOTATRACEATALL"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("unknown magic: err = %v", err)
	}
}

func corruptAt(data []byte, off int, b byte) []byte {
	c := append([]byte(nil), data...)
	c[off] = b
	return c
}

func TestBinaryHeaderValidation(t *testing.T) {
	valid := encodeSections(t, binSections())

	if _, err := NewBinaryReader(bytes.NewReader(corruptAt(valid, 0, 'X'))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v", err)
	}
	if _, err := NewBinaryReader(bytes.NewReader(corruptAt(valid, 8, 99))); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v", err)
	}
	if _, err := NewBinaryReader(bytes.NewReader(corruptAt(valid, 24, 1))); !errors.Is(err, ErrBadHeader) {
		t.Errorf("nonzero reserved: err = %v", err)
	}
	// Section count far beyond maxSections must be rejected as corrupt, not
	// treated as an allocation request.
	huge := corruptAt(valid, 15, 0xFF)
	if _, err := NewBinaryReader(bytes.NewReader(huge)); !errors.Is(err, ErrBadHeader) {
		t.Errorf("absurd section count: err = %v", err)
	}
	// Section counts that do not sum to the header's record count.
	if _, err := NewBinaryReader(bytes.NewReader(corruptAt(valid, 40, 5))); !errors.Is(err, ErrBadHeader) {
		t.Errorf("count mismatch: err = %v", err)
	}
	// A section count claiming to overflow uint64 when summed.
	over := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(over[40:48], ^uint64(0))
	binary.LittleEndian.PutUint64(over[56:64], ^uint64(0))
	if _, err := NewBinaryReader(bytes.NewReader(over)); !errors.Is(err, ErrBadHeader) {
		t.Errorf("count overflow: err = %v", err)
	}
}

// TestBinaryTruncation: every prefix of a valid trace must fail cleanly —
// header and section-table cuts at construction, record cuts as ErrTruncated
// after yielding only whole records already present in the prefix.
func TestBinaryTruncation(t *testing.T) {
	valid := encodeSections(t, binSections())
	tableEnd := binaryHeaderLen + 3*16
	for cut := 0; cut < len(valid); cut++ {
		r, err := NewBinaryReader(bytes.NewReader(valid[:cut]))
		if cut < tableEnd {
			if err == nil {
				t.Fatalf("cut %d: truncated header/table accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		var out [4]addr.VirtAddr
		records := 0
		for {
			n, err := r.NextBatch(out[:])
			records += n
			if n == 0 {
				if !errors.Is(err, ErrTruncated) {
					t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
				}
				break
			}
		}
		if want := (cut - tableEnd) / 8; records != want {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, records, want)
		}
	}
}

// TestBinaryNextBatchAllocFree pins the doc-comment claim: after
// construction, the streaming decode path performs zero heap allocations.
func TestBinaryNextBatchAllocFree(t *testing.T) {
	const records = 40_000
	vas := make([]addr.VirtAddr, records)
	for i := range vas {
		vas[i] = addr.VirtAddr(i) * 4096
	}
	var buf bytes.Buffer
	if err := WriteBinaryVAs(&buf, vas); err != nil {
		t.Fatal(err)
	}
	r, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out [64]addr.VirtAddr
	if n := testing.AllocsPerRun(500, func() {
		got, err := r.NextBatch(out[:])
		if got != len(out) || err != nil {
			t.Fatalf("NextBatch = %d, %v mid-trace", got, err)
		}
	}); n != 0 {
		t.Errorf("NextBatch allocates %v objects per call", n)
	}
}

// FuzzBinaryReaderAdversarial: arbitrary bytes must never panic the decoder
// or let it fabricate more records than the input could hold (every record
// is 8 bytes).
func FuzzBinaryReaderAdversarial(f *testing.F) {
	valid := encodeSections(f, binSections())
	var anon bytes.Buffer
	if err := WriteBinaryVAs(&anon, []addr.VirtAddr{0x1000, 0x2000}); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("MEHPTBT1"))
	f.Add(valid)
	f.Add(anon.Bytes())
	f.Add(valid[:len(valid)-3])       // truncated mid-record
	f.Add(valid[:binaryHeaderLen+16]) // truncated section table
	f.Add(corruptAt(valid, 8, 2))     // future version
	f.Add(corruptAt(valid, 13, 0xFF)) // huge section count
	f.Add(corruptAt(valid, 16, 0xFF)) // record count > stream
	f.Add(corruptAt(valid, 31, 1))    // nonzero reserved
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out [32]addr.VirtAddr
		records := 0
		for {
			n, err := r.NextBatch(out[:])
			records += n
			if records > len(data)/8+1 {
				t.Fatalf("%d records from %d input bytes", records, len(data))
			}
			if n == 0 {
				if err == nil {
					t.Fatal("NextBatch returned (0, nil) with a non-empty buffer")
				}
				if errors.Is(err, io.EOF) && r.Remaining() != 0 {
					t.Fatalf("clean EOF with %d records remaining", r.Remaining())
				}
				return
			}
		}
	})
}
