package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/addr"
)

// validTrace builds a well-formed trace with a few representative deltas.
func validTrace(t testing.TB) []byte {
	var buf bytes.Buffer
	_, err := Record(&buf, func(emit func(addr.VirtAddr)) {
		emit(0x1000)
		emit(0x2000)
		emit(0x1000)       // negative delta
		emit(0)            // large negative delta
		emit(1<<47 - 4096) // huge positive delta
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReaderAdversarial feeds arbitrary byte streams to the reader: it must
// return errors on malformed input — never panic — and can never produce
// more records than input bytes (every record is at least one byte), which
// also rules out non-termination.
func FuzzReaderAdversarial(f *testing.F) {
	valid := validTrace(f)
	f.Add([]byte{})
	f.Add([]byte("short"))
	f.Add(magic[:])               // header only, zero records
	f.Add([]byte("MEHPTTR0AAAA")) // wrong version
	f.Add(valid)                  // well-formed
	f.Add(valid[:len(valid)-1])   // truncated mid-varint
	f.Add(append(valid[:len(valid):len(valid)],
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)) // varint overflow
	f.Add(append(valid[:len(valid):len(valid)], 0x80)) // dangling continuation bit

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if len(data) >= 8 && bytes.Equal(data[:8], magic[:]) && errors.Is(err, ErrBadMagic) {
				t.Fatal("valid magic rejected as bad")
			}
			return
		}
		for i := 0; i <= len(data); i++ {
			if _, err := r.Next(); err != nil {
				return // EOF or a decode error; both are graceful
			}
		}
		t.Fatalf("reader produced more than %d records from %d input bytes", len(data), len(data))
	})
}

// TestReaderTruncation: every prefix of a valid trace must decode without
// panicking and end in EOF or ErrUnexpectedEOF, with at most as many
// records as the full trace.
func TestReaderTruncation(t *testing.T) {
	valid := validTrace(t)
	full, err := Replay(bytes.NewReader(valid), func(addr.VirtAddr) bool { return true })
	if err != nil || full != 5 {
		t.Fatalf("full replay: %d records, err %v; want 5, nil", full, err)
	}
	for cut := 0; cut < len(valid); cut++ {
		n, err := Replay(bytes.NewReader(valid[:cut]), func(addr.VirtAddr) bool { return true })
		if cut < 8 {
			if err == nil {
				t.Fatalf("cut %d: truncated header accepted", cut)
			}
			continue
		}
		if n > full {
			t.Fatalf("cut %d: %d records from a prefix of a %d-record trace", cut, n, full)
		}
		if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("cut %d: unexpected error kind: %v", cut, err)
		}
	}
}

// TestReaderCorruption: flipping any single byte of a valid trace must not
// panic and must not make the reader run away past the record bound.
func TestReaderCorruption(t *testing.T) {
	valid := validTrace(t)
	for pos := 0; pos < len(valid); pos++ {
		for _, flip := range []byte{0xFF, 0x80, 0x01} {
			corrupted := append([]byte(nil), valid...)
			corrupted[pos] ^= flip
			r, err := NewReader(bytes.NewReader(corrupted))
			if err != nil {
				continue // header corruption detected
			}
			records := 0
			for {
				if _, err := r.Next(); err != nil {
					break
				}
				records++
				if records > len(corrupted) {
					t.Fatalf("pos %d flip %#x: runaway reader", pos, flip)
				}
			}
		}
	}
}
