// Stream is the batch-decoding view the simulator consumes: both trace
// formats implement it, and OpenStream picks the right decoder from the
// magic, so replay callers never care which format a file uses.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/addr"
)

// Stream yields a trace batch-at-a-time. NextBatch fills out and returns
// how many records it produced. The contract, shared by both formats:
//
//   - n > 0 always comes with a nil error, even if the stream ended or
//     broke mid-batch — the terminal error is stashed and reported by the
//     next call, so callers never have to handle (n, err) simultaneously.
//   - (0, io.EOF) is a clean end of trace.
//   - (0, other) is a decode failure; the records already returned are
//     valid.
type Stream interface {
	//mehpt:hotpath
	NextBatch(out []addr.VirtAddr) (int, error)
}

// NextBatch adapts the varint Reader to the Stream contract. The varint
// format is sequential by nature (each record is a delta off the last), so
// this decodes record-at-a-time into out; the batching benefit for this
// format is amortizing the per-access interface call in the simulator, not
// the decode itself.
//mehpt:hotpath
func (r *Reader) NextBatch(out []addr.VirtAddr) (int, error) {
	if r.err != nil {
		err := r.err
		r.err = nil
		return 0, err
	}
	for i := range out {
		va, err := r.Next() //mehpt:allow hotalloc -- legacy varint decode: record-at-a-time by design; the binary format is the allocation-free fast path
		if err != nil {
			if i > 0 {
				r.err = err
				return i, nil
			}
			return 0, err
		}
		out[i] = va
	}
	return len(out), nil
}

// OpenStream sniffs the magic and returns the matching decoder. Both
// readers tolerate being handed the shared *bufio.Reader (bufio.NewReader
// returns an adequately-sized *bufio.Reader unchanged), so the peeked bytes
// are not lost.
func OpenStream(r io.Reader) (Stream, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("trace: sniffing format: %w", err)
	}
	switch [8]byte(head) {
	case magic:
		return NewReader(br)
	case magicBin:
		return NewBinaryReader(br)
	}
	return nil, ErrBadMagic
}
