package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	addrs := []addr.VirtAddr{0x1000, 0x1040, 0x1080, 0xFFFF_0000, 0x0, 0x1000}
	var buf bytes.Buffer
	n, err := Record(&buf, func(emit func(addr.VirtAddr)) {
		for _, a := range addrs {
			emit(a)
		}
	})
	if err != nil || n != uint64(len(addrs)) {
		t.Fatalf("Record = %d, %v", n, err)
	}
	var got []addr.VirtAddr
	m, err := Replay(&buf, func(va addr.VirtAddr) bool {
		got = append(got, va)
		return true
	})
	if err != nil || m != uint64(len(addrs)) {
		t.Fatalf("Replay = %d, %v", m, err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("access %d = %#x, want %#x", i, got[i], addrs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%500) + 1
		addrs := make([]addr.VirtAddr, n)
		for i := range addrs {
			addrs[i] = addr.VirtAddr(rng.Uint64() & ((1 << 48) - 1))
		}
		var buf bytes.Buffer
		if _, err := Record(&buf, func(emit func(addr.VirtAddr)) {
			for _, a := range addrs {
				emit(a)
			}
		}); err != nil {
			return false
		}
		i := 0
		ok := true
		Replay(&buf, func(va addr.VirtAddr) bool {
			if va != addrs[i] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestEarlyStop(t *testing.T) {
	var buf bytes.Buffer
	Record(&buf, func(emit func(addr.VirtAddr)) {
		for i := 0; i < 100; i++ {
			emit(addr.VirtAddr(i * 64))
		}
	})
	n, err := Replay(&buf, func(addr.VirtAddr) bool { return false })
	if err != nil || n != 1 {
		t.Errorf("early stop replayed %d (%v), want 1", n, err)
	}
}

// TestCompression: a sequential trace must encode far below 8 bytes per
// access — the point of delta-varint encoding.
func TestCompression(t *testing.T) {
	var buf bytes.Buffer
	const n = 10000
	Record(&buf, func(emit func(addr.VirtAddr)) {
		for i := 0; i < n; i++ {
			emit(addr.VirtAddr(0x10000 + i*64))
		}
	})
	perAccess := float64(buf.Len()-8) / n
	if perAccess > 2.2 {
		t.Errorf("sequential trace uses %.2f bytes/access, want ≈2 (64B stride = 2-byte varint)", perAccess)
	}
}

// TestWorkloadTraceRoundTrip: a real workload trace records and replays
// identically — the record/replay path preserves simulation inputs.
func TestWorkloadTraceRoundTrip(t *testing.T) {
	spec, err := workload.ByName("BFS", 256)
	if err != nil {
		t.Fatal(err)
	}
	tr := spec.NewTrace(3, 20000)
	var orig []addr.VirtAddr
	var buf bytes.Buffer
	if _, err := Record(&buf, func(emit func(addr.VirtAddr)) {
		for {
			va, ok := tr.Next()
			if !ok {
				return
			}
			orig = append(orig, va)
			emit(va)
		}
	}); err != nil {
		t.Fatal(err)
	}
	i := 0
	if _, err := Replay(&buf, func(va addr.VirtAddr) bool {
		if va != orig[i] {
			t.Fatalf("access %d = %#x, want %#x", i, va, orig[i])
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(orig) {
		t.Fatalf("replayed %d of %d", i, len(orig))
	}
}

func TestReaderPlainEOF(t *testing.T) {
	var buf bytes.Buffer
	Record(&buf, func(emit func(addr.VirtAddr)) { emit(1) })
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
}
