// Binary trace format: the fixed-width sibling of the varint format in
// trace.go, built for batched replay. Where the varint format optimizes
// bytes-per-access, this one optimizes decode: records are raw 8-byte
// little-endian virtual addresses at stable offsets, so a streaming reader
// decodes straight into the simulator's batch buffers with no per-record
// branching, and an mmap'd file can be indexed without any decode at all
// (record i of a section lives at a computable offset).
//
// Layout (all fields little-endian):
//
//	offset  size  field
//	0       8     magic "MEHPTBT1"
//	8       4     version (currently 1)
//	12      4     section count S (0 = one anonymous stream)
//	16      8     record count N (total across all sections)
//	24      8     reserved, must be zero
//	32      16×S  section table: (pid uint64, count uint64) per section;
//	              the counts must sum to N
//	32+16S  8×N   records: uint64 virtual addresses, section-major in
//	              table order
//
// The optional section table carries per-process streams for the
// multi-tenant machine: one section per simulated process, keyed by pid.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
)

// magicBin identifies the binary fixed-width trace format.
var magicBin = [8]byte{'M', 'E', 'H', 'P', 'T', 'B', 'T', '1'}

// BinaryVersion is the current binary-format version written and accepted.
const BinaryVersion = 1

// binaryHeaderLen is the fixed header size; sections follow immediately.
const binaryHeaderLen = 32

// maxSections bounds the section table a reader will accept; beyond it the
// header is treated as corrupt rather than as an allocation request.
const maxSections = 1 << 20

// Binary-format error sentinels.
var (
	// ErrBadVersion is returned for a well-formed binary header whose
	// version this build does not speak.
	ErrBadVersion = errors.New("trace: unsupported binary trace version")
	// ErrBadHeader is returned when the header or section table is
	// internally inconsistent (nonzero reserved bytes, counts that do not
	// add up, an absurd section count).
	ErrBadHeader = errors.New("trace: malformed binary trace header")
	// ErrTruncated is returned when the stream ends before the record
	// count promised by the header.
	ErrTruncated = errors.New("trace: truncated binary trace")
)

// Section is one contiguous run of accesses, optionally keyed by a
// simulated process id. A file written from a single []Section with PID 0
// round-trips as an anonymous stream.
type Section struct {
	PID uint64
	VAs []addr.VirtAddr
}

// SectionInfo describes one section of an open binary trace without its
// records.
type SectionInfo struct {
	PID   uint64
	Count uint64
}

// WriteBinaryVAs writes vas as a sectionless (anonymous) binary trace.
func WriteBinaryVAs(w io.Writer, vas []addr.VirtAddr) error {
	return writeBinary(w, nil, vas)
}

// WriteBinary writes sections as a binary trace with a per-process section
// table. An empty slice writes a valid, empty anonymous trace.
func WriteBinary(w io.Writer, sections []Section) error {
	return writeBinary(w, sections, nil)
}

func writeBinary(w io.Writer, sections []Section, anon []addr.VirtAddr) error {
	bw := bufio.NewWriter(w)
	var total uint64
	for _, s := range sections {
		total += uint64(len(s.VAs))
	}
	total += uint64(len(anon))
	var hdr [binaryHeaderLen]byte
	copy(hdr[:8], magicBin[:])
	binary.LittleEndian.PutUint32(hdr[8:12], BinaryVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(sections)))
	binary.LittleEndian.PutUint64(hdr[16:24], total)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var ent [16]byte
	for _, s := range sections {
		binary.LittleEndian.PutUint64(ent[:8], s.PID)
		binary.LittleEndian.PutUint64(ent[8:16], uint64(len(s.VAs)))
		if _, err := bw.Write(ent[:]); err != nil {
			return err
		}
	}
	var rec [8]byte
	for _, s := range sections {
		for _, va := range s.VAs {
			binary.LittleEndian.PutUint64(rec[:], uint64(va))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	for _, va := range anon {
		binary.LittleEndian.PutUint64(rec[:], uint64(va))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryReader streams a binary trace, decoding records directly into the
// caller's batch buffers. After construction, NextBatch performs no heap
// allocation (the staging buffer is reused), which the AllocsPerRun guard
// in binary_test.go pins.
type BinaryReader struct {
	r         *bufio.Reader
	secs      []SectionInfo
	remaining uint64
	buf       []byte // staging for ReadFull → LE decode
	err       error  // terminal error, reported once records run out
}

// stagingRecords is how many records NextBatch reads per ReadFull; a
// multiple of the batch width so one syscall-sized read feeds several
// batches.
const stagingRecords = 512

// NewBinaryReader validates the header and section table and returns a
// streaming reader positioned at the first record.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReader(r)
	var hdr [binaryHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading binary header: %w", err)
	}
	if [8]byte(hdr[:8]) != magicBin {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != BinaryVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	nsec := binary.LittleEndian.Uint32(hdr[12:16])
	total := binary.LittleEndian.Uint64(hdr[16:24])
	if binary.LittleEndian.Uint64(hdr[24:32]) != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved field", ErrBadHeader)
	}
	if nsec > maxSections {
		return nil, fmt.Errorf("%w: %d sections", ErrBadHeader, nsec)
	}
	rd := &BinaryReader{r: br, remaining: total, buf: make([]byte, stagingRecords*8)}
	if nsec > 0 {
		rd.secs = make([]SectionInfo, nsec)
		var sum uint64
		var ent [16]byte
		for i := range rd.secs {
			if _, err := io.ReadFull(br, ent[:]); err != nil {
				return nil, fmt.Errorf("trace: reading section table: %w", err)
			}
			rd.secs[i] = SectionInfo{
				PID:   binary.LittleEndian.Uint64(ent[:8]),
				Count: binary.LittleEndian.Uint64(ent[8:16]),
			}
			next := sum + rd.secs[i].Count
			if next < sum {
				return nil, fmt.Errorf("%w: section counts overflow", ErrBadHeader)
			}
			sum = next
		}
		if sum != total {
			return nil, fmt.Errorf("%w: section counts sum to %d, header says %d records",
				ErrBadHeader, sum, total)
		}
	}
	return rd, nil
}

// Sections returns the per-process section table, or nil for an anonymous
// trace. The returned slice is the reader's own; callers must not modify it.
func (r *BinaryReader) Sections() []SectionInfo { return r.secs }

// Remaining returns how many records have not yet been decoded.
func (r *BinaryReader) Remaining() uint64 { return r.remaining }

// NextBatch decodes up to len(out) records into out and returns the count.
// A clean end of trace returns (0, io.EOF). If the stream ends early, the
// records decoded so far are returned first and the following call reports
// an error wrapping ErrTruncated. Sections are not visible here — records
// stream contiguously in section order; callers that need per-section
// framing use ReadSections or walk Sections() counts themselves.
//
//mehpt:hotpath
func (r *BinaryReader) NextBatch(out []addr.VirtAddr) (int, error) {
	if r.remaining == 0 || len(out) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		if r.remaining == 0 {
			return 0, io.EOF
		}
		return 0, nil
	}
	want := uint64(len(out))
	if want > r.remaining {
		want = r.remaining
	}
	decoded := 0
	for uint64(decoded) < want {
		n := want - uint64(decoded)
		if n > stagingRecords {
			n = stagingRecords
		}
		read, err := io.ReadFull(r.r, r.buf[:n*8]) //mehpt:allow hotalloc -- bufio read into the reused staging buffer; stdlib allocates only on its error path
		whole := read / 8
		for i := 0; i < whole; i++ {
			out[decoded+i] = addr.VirtAddr(binary.LittleEndian.Uint64(r.buf[i*8 : i*8+8])) //mehpt:allow hotalloc -- LE load from the staging buffer; compiles to a single move, no allocation
		}
		decoded += whole
		r.remaining -= uint64(whole)
		if err != nil {
			r.err = fmt.Errorf("%w: %d records missing", ErrTruncated, r.remaining) //mehpt:allow hotalloc -- decode-failure path: a truncated trace ends the replay
			r.remaining = 0
			if decoded > 0 {
				return decoded, nil
			}
			return 0, r.err
		}
	}
	return decoded, nil
}

// ReadSections fully decodes a binary trace into its sections. An
// anonymous trace decodes as a single Section with PID 0.
func ReadSections(r io.Reader) ([]Section, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	infos := br.Sections()
	if infos == nil {
		infos = []SectionInfo{{PID: 0, Count: br.Remaining()}}
	}
	out := make([]Section, len(infos))
	var batch [256]addr.VirtAddr
	for i, info := range infos {
		out[i] = Section{PID: info.PID, VAs: make([]addr.VirtAddr, 0, info.Count)}
		left := info.Count
		for left > 0 {
			want := left
			if want > uint64(len(batch)) {
				want = uint64(len(batch))
			}
			n, err := br.NextBatch(batch[:want])
			if n == 0 {
				if err == nil || errors.Is(err, io.EOF) {
					err = fmt.Errorf("%w: section %d short", ErrTruncated, i)
				}
				return nil, err
			}
			out[i].VAs = append(out[i].VAs, batch[:n]...)
			left -= uint64(n)
		}
	}
	return out, nil
}

// FindSection returns the section for pid, or false if absent.
func FindSection(sections []Section, pid uint64) (Section, bool) {
	for _, s := range sections {
		if s.PID == pid {
			return s, true
		}
	}
	return Section{}, false
}
