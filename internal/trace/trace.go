// Package trace provides a compact binary format for memory-reference
// traces, so workload address streams (statistical generators or real graph
// kernels) can be recorded once and replayed deterministically — the
// standard methodology of trace-driven architectural simulation.
//
// Format: a magic header, then one varint-encoded record per access holding
// the zigzag delta from the previous address. Memory traces are highly
// local, so delta-varint encoding compresses sequential and strided streams
// to ~1-2 bytes per access.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
)

// magic identifies the trace format and its version.
var magic = [8]byte{'M', 'E', 'H', 'P', 'T', 'T', 'R', '1'}

// ErrBadMagic is returned when a reader is given a non-trace stream.
var ErrBadMagic = errors.New("trace: bad magic (not a trace or wrong version)")

// Writer streams accesses to an io.Writer.
type Writer struct {
	w    *bufio.Writer
	prev uint64
	n    uint64
	buf  [binary.MaxVarintLen64]byte
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Append records one access.
func (w *Writer) Append(va addr.VirtAddr) error {
	d := int64(uint64(va) - w.prev)
	w.prev = uint64(va)
	n := binary.PutUvarint(w.buf[:], zigzag(d))
	w.n++
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Len returns the number of accesses written.
func (w *Writer) Len() uint64 { return w.n }

// Flush writes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader replays a trace from an io.Reader.
type Reader struct {
	r    *bufio.Reader
	prev uint64
	err  error // stashed by NextBatch when a partial batch precedes an error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next returns the next access; io.EOF ends the trace.
func (r *Reader) Next() (addr.VirtAddr, error) {
	u, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, err
	}
	r.prev += uint64(unzigzag(u))
	return addr.VirtAddr(r.prev), nil
}

// Record captures every address gen emits into w.
func Record(w io.Writer, gen func(emit func(addr.VirtAddr))) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	var emitErr error
	gen(func(va addr.VirtAddr) {
		if emitErr == nil {
			emitErr = tw.Append(va)
		}
	})
	if emitErr != nil {
		return tw.Len(), emitErr
	}
	return tw.Len(), tw.Flush()
}

// Replay calls f for every access in the trace until EOF or f returns
// false, returning the number of accesses replayed.
func Replay(r io.Reader, f func(va addr.VirtAddr) bool) (uint64, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	var n uint64
	for {
		va, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		if !f(va) {
			return n, nil
		}
	}
}
