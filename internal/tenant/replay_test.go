// Tests for binary-trace record/replay: a machine replaying the trace
// RecordTraces wrote for its own Config must land on the identical
// fingerprint as the generated-trace run, including across a
// checkpoint/restore cycle mid-replay.
package tenant

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// recordSections records cfg's traces and decodes them back through the
// binary round trip, exercising writer and reader on every use.
func recordSections(t *testing.T, cfg Config) []trace.Section {
	t.Helper()
	var buf bytes.Buffer
	if err := RecordTraces(cfg, &buf); err != nil {
		t.Fatalf("RecordTraces: %v", err)
	}
	secs, err := trace.ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSections: %v", err)
	}
	return secs
}

func TestReplayMatchesGeneratedFingerprint(t *testing.T) {
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		t.Run(org.String(), func(t *testing.T) {
			cfg := testConfig(org, 2)
			base, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rcfg := cfg
			rcfg.Replay = recordSections(t, cfg)
			rep, err := Run(rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Fingerprint != base.Fingerprint {
				t.Fatalf("replay fingerprint %s != generated %s", rep.Fingerprint, base.Fingerprint)
			}
		})
	}
}

func TestReplayCheckpointRestore(t *testing.T) {
	cfg := testConfig(sim.MEHPT, 2)
	cfg.Replay = recordSections(t, cfg)

	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2 && !m.Done(); i++ {
		if err := m.StepRound(); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "replay.ckpt")
	if err := m.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	r, err := LoadMachine(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	for !r.Done() {
		if err := r.StepRound(); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Collect().Fingerprint; got != base.Fingerprint {
		t.Fatalf("restored replay fingerprint %s != uninterrupted %s", got, base.Fingerprint)
	}
}

func TestReplayRejectsMissingSection(t *testing.T) {
	cfg := testConfig(sim.Radix, 1)
	secs := recordSections(t, cfg)

	missing := cfg
	missing.Replay = secs[:len(secs)-1]
	if _, err := Run(missing); err == nil {
		t.Fatal("Run accepted a replay trace missing the last PID's section")
	}

	short := cfg
	short.Replay = append([]trace.Section(nil), secs...)
	last := short.Replay[len(short.Replay)-1]
	short.Replay[len(short.Replay)-1] = trace.Section{PID: last.PID, VAs: last.VAs[:10]}
	if _, err := Run(short); err == nil {
		t.Fatal("Run accepted a replay section shorter than the access budget")
	}
}

func TestReplayRestoreRejectsForeignCursor(t *testing.T) {
	cfg := testConfig(sim.Radix, 1)
	cfg.Replay = recordSections(t, cfg)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StepRound(); err != nil {
		t.Fatal(err)
	}
	st := m.State()
	bad := cfg
	bad.Replay = []trace.Section{{PID: 12345}}
	if _, err := RestoreMachine(bad, st); !errors.Is(err, ErrMismatch) {
		t.Fatalf("RestoreMachine with foreign replay sections: err = %v, want ErrMismatch", err)
	}
}
