// The multi-tenant fault sweep: the PR 3 policy × seed grid pointed at the
// sharded machine. Every cell must complete without a panic, every tenant
// failure must carry a typed chain reaching phys.ErrOutOfMemory and
// inject.ErrInjected, survivors must run their full budget, and each cell
// must reproduce its fingerprint exactly on a second run.
package tenant

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/inject"
	"repro/internal/phys"
	"repro/internal/sim"
)

func TestTenantFaultSweep(t *testing.T) {
	policies := []string{
		"nth=50",         // dense periodic failures
		"nth=400",        // sparse periodic failures
		"after=100",      // hard exhaustion early in the run
		"after=2000",     // exhaustion after steady state
		"rate=0.01",      // light random failures
		"rate=0.1",       // heavy random failures
		"big=2MB",        // fragmentation: only small blocks allocate
		"pressure=0.001", // near-total pressure ceiling
		"nth=97+big=2MB", // composed: periodic plus fragmentation
	}
	seeds := []int64{1, 2, 3}
	orgs := []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT}
	for i, spec := range policies {
		// Rotate organizations across the grid so every org sees several
		// policies without tripling the cell count.
		org := orgs[i%len(orgs)]
		for _, seed := range seeds {
			spec, seed, org := spec, seed, org
			t.Run(fmt.Sprintf("%s/%s/seed%d", spec, org, seed), func(t *testing.T) {
				t.Parallel()
				cfg := testConfig(org, 2)
				cfg.Seed = seed
				cfg.Inject = spec
				cfg.AccessesPerProc = 800

				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("machine did not survive injection: %v", err)
				}
				for _, p := range res.Procs {
					if !p.Failed {
						if p.Accesses != cfg.AccessesPerProc {
							t.Errorf("survivor %d ran %d/%d accesses",
								p.PID, p.Accesses, cfg.AccessesPerProc)
						}
						continue
					}
					if p.FailureErr == nil {
						t.Errorf("failed tenant %d lost its error chain", p.PID)
						continue
					}
					if !errors.Is(p.FailureErr, phys.ErrOutOfMemory) {
						t.Errorf("tenant %d failure does not reach phys.ErrOutOfMemory: %v",
							p.PID, p.FailureErr)
					}
					if !errors.Is(p.FailureErr, inject.ErrInjected) {
						t.Errorf("tenant %d failure not marked injected: %v",
							p.PID, p.FailureErr)
					}
				}
				res2, err := Run(cfg)
				if err != nil {
					t.Fatalf("second run failed: %v", err)
				}
				if res2.Fingerprint != res.Fingerprint {
					t.Errorf("cell not reproducible: %s vs %s",
						res.Fingerprint, res2.Fingerprint)
				}
			})
		}
	}
}
