package tenant

// Checkpoint/restore proof obligations: a machine snapshotted at a round
// boundary and restored from disk must finish with the bit-identical
// fingerprint of the uninterrupted run — per organization, per core count,
// with fault injection armed — and a snapshot restored under the wrong
// identity must be refused with ErrMismatch.

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/addr"
	"repro/internal/sim"
)

// ckptConfig returns a small but non-trivial machine: enough accesses to
// cross several rounds and drive table growth, remaps, and switches.
func ckptConfig(org sim.Org, cores int) Config {
	return Config{
		Org:             org,
		Processes:       6,
		Cores:           cores,
		Seed:            42,
		AccessesPerProc: 3000,
		Quantum:         512,
	}
}

func runToEnd(t *testing.T, m *Machine) *Result {
	t.Helper()
	for !m.Done() {
		if err := m.StepRound(); err != nil {
			t.Fatalf("StepRound: %v", err)
		}
	}
	return m.Collect()
}

// TestGoldenRoundTrip snapshots a machine mid-run, restores it from disk,
// and requires the resumed fingerprint to equal both the interrupted
// machine's own completion and a fresh uninterrupted Run.
func TestGoldenRoundTrip(t *testing.T) {
	for _, org := range []sim.Org{sim.MEHPT, sim.ECPT, sim.Radix} {
		for _, cores := range []int{1, 3} {
			t.Run(org.String()+"/"+string(rune('0'+cores))+"c", func(t *testing.T) {
				cfg := ckptConfig(org, cores)
				base, err := Run(cfg)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}

				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatalf("NewMachine: %v", err)
				}
				for i := 0; i < 2; i++ {
					if err := m.StepRound(); err != nil {
						t.Fatalf("StepRound: %v", err)
					}
				}
				path := filepath.Join(t.TempDir(), "mid.ckpt")
				if err := m.Checkpoint(path); err != nil {
					t.Fatalf("Checkpoint: %v", err)
				}

				cont := runToEnd(t, m).Fingerprint
				if cont != base.Fingerprint {
					t.Fatalf("stepped machine diverged from Run: %s vs %s", cont, base.Fingerprint)
				}

				restored, err := LoadMachine(cfg, path)
				if err != nil {
					t.Fatalf("LoadMachine: %v", err)
				}
				res := runToEnd(t, restored).Fingerprint
				if res != base.Fingerprint {
					t.Fatalf("restored machine diverged: %s vs %s", res, base.Fingerprint)
				}
			})
		}
	}
}

// TestRoundTripUnderInjection proves the injector's generators and counters
// cross the checkpoint: an injected run resumed mid-run must reproduce the
// uninterrupted injected fingerprint.
func TestRoundTripUnderInjection(t *testing.T) {
	// rate=0.001 at this scale fails some tenants and spares others, so the
	// checkpoint carries both failed ProcResults and live generators.
	cfg := ckptConfig(sim.MEHPT, 2)
	cfg.Inject = "rate=0.001"

	base, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := m.StepRound(); err != nil {
			t.Fatalf("StepRound: %v", err)
		}
	}
	if m.Done() {
		t.Fatal("machine finished before the checkpoint; pick a gentler policy")
	}
	path := filepath.Join(t.TempDir(), "inj.ckpt")
	if err := m.Checkpoint(path); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	restored, err := LoadMachine(cfg, path)
	if err != nil {
		t.Fatalf("LoadMachine: %v", err)
	}
	if got := runToEnd(t, restored).Fingerprint; got != base.Fingerprint {
		t.Fatalf("injected restore diverged: %s vs %s", got, base.Fingerprint)
	}
}

// TestRestoreMismatch proves identity cross-checks refuse a snapshot
// restored under the wrong configuration.
func TestRestoreMismatch(t *testing.T) {
	cfg := ckptConfig(sim.ECPT, 2)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if err := m.StepRound(); err != nil {
		t.Fatalf("StepRound: %v", err)
	}
	path := filepath.Join(t.TempDir(), "id.ckpt")
	if err := m.Checkpoint(path); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	for name, mut := range map[string]func(*Config){
		"org":   func(c *Config) { c.Org = sim.MEHPT },
		"seed":  func(c *Config) { c.Seed++ },
		"procs": func(c *Config) { c.Processes++ },
		"cores": func(c *Config) { c.Cores++ },
	} {
		bad := cfg
		mut(&bad)
		if _, err := LoadMachine(bad, path); !errors.Is(err, ErrMismatch) {
			t.Errorf("%s mismatch: got %v, want ErrMismatch", name, err)
		}
	}
}

// TestStaleTLBDetection plants a translation in a bound core's TLB that no
// table backs and expects the coherence check to report it. This is the
// white-box seed for the scrubber's tlb-coherence class (the shards are
// unexported, so the seeding lives here).
func TestStaleTLBDetection(t *testing.T) {
	for _, org := range []sim.Org{sim.MEHPT, sim.Radix} {
		t.Run(org.String(), func(t *testing.T) {
			m, err := NewMachine(ckptConfig(org, 2))
			if err != nil {
				t.Fatalf("NewMachine: %v", err)
			}
			for i := 0; i < 2; i++ {
				if err := m.StepRound(); err != nil {
					t.Fatalf("StepRound: %v", err)
				}
			}
			if bad := m.CheckShardTLBs(); len(bad) != 0 {
				t.Fatalf("healthy machine reports TLB violations: %v", bad)
			}
			// A VA far outside every tenant's address space and the shared
			// segment: resident in the TLB, backed by nothing.
			m.shards[0].tlbs().Insert(addr.VirtAddr(0x7f12_3456_7000), addr.Page4K, 1)
			if bad := m.CheckShardTLBs(); len(bad) == 0 {
				t.Fatal("stale TLB entry not detected")
			}
		})
	}
}

// TestStuckDetection corrupts the serialized live count and expects the
// restored machine's first idle round to surface ErrStuck instead of
// spinning forever.
func TestStuckDetection(t *testing.T) {
	cfg := ckptConfig(sim.Radix, 1)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	res := runToEnd(t, m)
	if res == nil {
		t.Fatal("no result")
	}
	st := m.State()
	st.Live = 1 // drifted live count: claims a tenant still runs
	corrupt, err := RestoreMachine(cfg, st)
	if err != nil {
		t.Fatalf("RestoreMachine: %v", err)
	}
	if err := corrupt.StepRound(); !errors.Is(err, ErrStuck) {
		t.Fatalf("got %v, want ErrStuck", err)
	}
}
