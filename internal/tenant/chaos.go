package tenant

import (
	"errors"
	"fmt"
	"io/fs"

	"repro/internal/inject"
)

// ChaosResult is one kill-resume-compare experiment.
type ChaosResult struct {
	Plan     string `json:"plan"`
	Killed   bool   `json:"killed"`    // whether the armed crash point fired
	KilledAt uint64 `json:"killed_at"` // rounds completed when the kill landed

	Baseline string `json:"baseline"` // uninterrupted fingerprint
	Resumed  string `json:"resumed"`  // fingerprint after kill + restore
	Match    bool   `json:"match"`

	// Final is the machine that produced the Resumed fingerprint, exposed
	// so the caller can scrub its post-recovery state. Excluded from JSON.
	Final *Machine `json:"-"`
}

// RunChaos proves crash consistency for one configuration and kill plan:
// it runs the machine uninterrupted for the baseline fingerprint, reruns it
// with a checkpoint written at every round boundary and a deterministic
// kill armed per plan (inject.ParseKill), then recovers from the last
// intact checkpoint, drives the recovered machine to completion, and
// compares fingerprints. ckptPath is where the round checkpoints go; a
// kill before the first checkpoint recovers by reconstructing round zero.
func RunChaos(cfg Config, plan string, ckptPath string) (*ChaosResult, error) {
	crasher, err := inject.ParseKill(plan)
	if err != nil {
		return nil, err
	}

	baseline, err := Run(cfg)
	if err != nil {
		return nil, err
	}

	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	m.SetCrasher(crasher)
	killed := false
	var killedAt uint64
	for !m.Done() {
		if err := m.Checkpoint(ckptPath); err != nil {
			if errors.Is(err, inject.ErrKilled) {
				killed, killedAt = true, m.Rounds()
				break
			}
			return nil, err
		}
		if err := m.StepRound(); err != nil {
			if errors.Is(err, inject.ErrKilled) {
				killed, killedAt = true, m.Rounds()
				break
			}
			return nil, err
		}
	}

	final := m
	if killed {
		// The killed machine is dead state; recover from the checkpoint,
		// exactly as a restarted run would.
		final, err = LoadMachine(cfg, ckptPath)
		if errors.Is(err, fs.ErrNotExist) {
			// Killed before the first checkpoint was written: recovery is a
			// clean start.
			final, err = NewMachine(cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("tenant: recovering after %q: %w", plan, err)
		}
		for !final.Done() {
			if err := final.StepRound(); err != nil {
				return nil, fmt.Errorf("tenant: resumed run after %q: %w", plan, err)
			}
		}
	}

	resumed := final.Collect()
	return &ChaosResult{
		Plan:     plan,
		Killed:   killed,
		KilledAt: killedAt,
		Baseline: baseline.Fingerprint,
		Resumed:  resumed.Fingerprint,
		Match:    resumed.Fingerprint == baseline.Fingerprint,
		Final:    final,
	}, nil
}
