// Tests for the multi-tenant machine's determinism contract: the canonical
// fingerprint must be bit-identical at any simulated core count, runs must
// be reproducible end to end, and tenant failures under fault injection
// must stay isolated and typed.
package tenant

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/inject"
	"repro/internal/phys"
	"repro/internal/sim"
)

func testConfig(org sim.Org, cores int) Config {
	return Config{
		Org:             org,
		Processes:       10,
		Cores:           cores,
		MemBytes:        256 * addr.MB,
		Stripes:         4,
		FMFI:            0.7,
		Seed:            42,
		AccessesPerProc: 1500,
		Quantum:         256,
		Scale:           8192,
		SharedPages:     128,
		SharedFraction:  0.08,
		RemapsPerRound:  4,
	}
}

func TestRunSmokeAllOrgs(t *testing.T) {
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		t.Run(org.String(), func(t *testing.T) {
			res, err := Run(testConfig(org, 4))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Procs) != 10 {
				t.Fatalf("procs = %d", len(res.Procs))
			}
			for _, p := range res.Procs {
				if p.Failed {
					t.Errorf("proc %d failed without injection: %s", p.PID, p.Failure)
				}
				if p.Accesses != 1500 {
					t.Errorf("proc %d ran %d accesses, want 1500", p.PID, p.Accesses)
				}
				if p.Faults == 0 || p.XlatCycles == 0 || p.DataCycles == 0 {
					t.Errorf("proc %d has empty accounting: %+v", p.PID, p)
				}
			}
			if res.Walks == 0 {
				t.Error("no page walks recorded")
			}
			if res.SharedLookups == 0 {
				t.Error("no shared-segment lookups recorded")
			}
			if res.Shootdowns.Events == 0 {
				t.Error("no shootdown events recorded")
			}
			if res.Shootdowns.SharersNotified < res.Shootdowns.Events {
				t.Error("shootdowns notified no sharers")
			}
			if res.Shootdowns.IPIsDelivered == 0 {
				t.Error("no IPIs delivered")
			}
			if res.PoolAllocs == 0 || res.PoolFrees == 0 {
				t.Errorf("pool accounting empty: %d allocs, %d frees",
					res.PoolAllocs, res.PoolFrees)
			}
			if res.Fingerprint == "" {
				t.Error("no fingerprint")
			}
		})
	}
}

// TestCoreCountInvariance is the heart of the tentpole: the canonical
// fingerprint is bit-identical at 1, 2, 4, and 8 simulated cores, for every
// page-table organization.
func TestCoreCountInvariance(t *testing.T) {
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		t.Run(org.String(), func(t *testing.T) {
			var want *Result
			for _, cores := range []int{1, 2, 4, 8} {
				res, err := Run(testConfig(org, cores))
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = res
					continue
				}
				if res.Fingerprint != want.Fingerprint {
					t.Errorf("fingerprint at %d cores differs from 1 core:\n%s\nvs\n%s",
						cores, res.Fingerprint, want.Fingerprint)
				}
				// Spot-check the canonical fields directly so a fingerprint
				// bug cannot hide a divergence.
				if res.Walks != want.Walks || res.WalkCycles != want.WalkCycles {
					t.Errorf("walks diverge at %d cores: %d/%d vs %d/%d",
						cores, res.Walks, res.WalkCycles, want.Walks, want.WalkCycles)
				}
				for i := range res.Procs {
					if res.Procs[i] != want.Procs[i] {
						t.Errorf("proc %d diverges at %d cores:\n%+v\nvs\n%+v",
							i, cores, res.Procs[i], want.Procs[i])
					}
				}
				if res.Shootdowns.Events != want.Shootdowns.Events ||
					res.Shootdowns.SharersNotified != want.Shootdowns.SharersNotified {
					t.Errorf("canonical shootdown accounting diverges at %d cores", cores)
				}
			}
		})
	}
}

// TestRunReproducible: the same config reproduces the entire result —
// core-view metrics included — byte for byte.
func TestRunReproducible(t *testing.T) {
	cfg := testConfig(sim.MEHPT, 4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("identical configs produced different results:\n%s\nvs\n%s", ja, jb)
	}
}

// TestSeedChangesFingerprint: the seed tree actually feeds the run.
func TestSeedChangesFingerprint(t *testing.T) {
	cfg := testConfig(sim.MEHPT, 2)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Error("seeds 42 and 43 produced the same fingerprint")
	}
}

// TestCoreViewMetricsVaryWithCores: packing fewer processes per core saves
// switches — the metrics outside the fingerprint are allowed (and expected)
// to move with C.
func TestCoreViewMetricsVaryWithCores(t *testing.T) {
	one, err := Run(testConfig(sim.MEHPT, 1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(testConfig(sim.MEHPT, 8))
	if err != nil {
		t.Fatal(err)
	}
	if one.Switches <= many.Switches {
		t.Errorf("1 core switched %d times, 8 cores %d; expected more contention on one core",
			one.Switches, many.Switches)
	}
	if one.Shootdowns.IPIsDelivered >= many.Shootdowns.IPIsDelivered {
		t.Errorf("IPIs: 1 core delivered %d, 8 cores %d; more cores should take more IPIs",
			one.Shootdowns.IPIsDelivered, many.Shootdowns.IPIsDelivered)
	}
}

// TestTenantIsolationUnderInjection: a deterministic every-Nth injection
// policy fails some tenants, but the machine completes, failures carry
// typed chains reaching phys.ErrOutOfMemory, and surviving tenants run
// their full budget.
func TestTenantIsolationUnderInjection(t *testing.T) {
	cfg := testConfig(sim.MEHPT, 4)
	cfg.Inject = "nth=400"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, p := range res.Procs {
		if !p.Failed {
			if p.Accesses != cfg.AccessesPerProc {
				t.Errorf("surviving proc %d ran %d/%d accesses", p.PID, p.Accesses, cfg.AccessesPerProc)
			}
			continue
		}
		failed++
		if p.FailureErr == nil {
			t.Errorf("failed proc %d lost its error", p.PID)
			continue
		}
		if !errors.Is(p.FailureErr, phys.ErrOutOfMemory) {
			t.Errorf("proc %d failure does not reach ErrOutOfMemory: %v", p.PID, p.FailureErr)
		}
		if !errors.Is(p.FailureErr, inject.ErrInjected) {
			t.Errorf("proc %d failure not marked injected: %v", p.PID, p.FailureErr)
		}
	}
	if failed == 0 {
		t.Errorf("%s failed no tenants; injection not reaching the pool", cfg.Inject)
	}
	if failed == len(res.Procs) {
		t.Error("every tenant failed; no isolation to observe")
	}
	// Injection must not disturb determinism: same config, same outcome.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fingerprint != res.Fingerprint {
		t.Error("injected run not reproducible")
	}
}
