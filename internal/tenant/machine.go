package tenant

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/cuckoo"
	"repro/internal/ecpt"
	"repro/internal/inject"
	"repro/internal/mehpt"
	"repro/internal/mmu"
	"repro/internal/osmodel"
	"repro/internal/phys"
	"repro/internal/radix"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ErrStuck reports a scheduling round that made no progress while tenants
// remain live — the simulator's stuck-core signal. It cannot fire on a
// healthy machine (every live tenant runs a quantum each round), so seeing
// it means the machine state is corrupt, e.g. a live count that drifted
// from the per-tenant budgets after a bad restore.
var ErrStuck = errors.New("tenant: scheduling round made no progress with live tenants")

// ErrMismatch reports a snapshot whose identity (organization, process or
// core count, seed) does not match the configuration it is being restored
// under. Resuming under different parameters would silently change the
// canonical execution, so it is refused.
var ErrMismatch = errors.New("tenant: snapshot does not match configuration")

// Machine is one multi-tenant simulation, stepped a scheduling round at a
// time. Run drives it to completion in one call; checkpoint/chaos harnesses
// interleave StepRound with Checkpoint and resume a killed machine from its
// last snapshot with LoadMachine, landing bit-identically on the same
// fingerprint.
type Machine struct {
	cfg      Config // post-withDefaults
	pool     *phys.Striped
	procs    []*process
	shards   []*shard
	sched    *osmodel.MultiCore
	shared   *sharedRegion
	injector *inject.Injector
	sd       stats.Shootdowns
	live     int
	//mehpt:transient -- chaos-harness kill switch, armed per run via SetCrasher; a recovered machine starts disarmed by design
	crasher *inject.Crasher
}

// NewMachine constructs a machine at round zero.
func NewMachine(cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()

	pool := phys.NewStriped(cfg.MemBytes, cfg.Stripes, cfg.FMFI)

	specs := workload.Specs(cfg.Scale)
	procs := make([]*process, cfg.Processes)
	schedProcs := make([]*osmodel.Proc, cfg.Processes)
	for pid := range procs {
		p, err := newProcess(cfg, pid, specs[pid%len(specs)], pool)
		if err != nil {
			return nil, err
		}
		procs[pid] = p
		schedProcs[pid] = &osmodel.Proc{ID: pid, PT: p.table}
	}

	shared, err := newShared(cfg, pool)
	if err != nil {
		return nil, err
	}

	m := &Machine{
		cfg:    cfg,
		pool:   pool,
		procs:  procs,
		shared: shared,
		live:   cfg.Processes,
	}

	// Fault injection arms only after boot: construction-time allocations
	// (initial ways, the shared premap) are machine setup, not tenant
	// activity, and injecting there would fail the whole machine rather
	// than exercise tenant isolation.
	if err := m.attachInjector(); err != nil {
		return nil, err
	}

	m.shards = newShards(cfg)
	m.sched = osmodel.NewMultiCore(osmodel.DefaultSwitchCosts(), cfg.Cores,
		runner.DeriveSubSeed(cfg.Seed, "sched", 0), schedProcs...)
	return m, nil
}

func newShards(cfg Config) []*shard {
	shards := make([]*shard, cfg.Cores)
	for c := range shards {
		if cfg.Org == sim.Radix {
			shards[c] = &shard{rdx: mmu.NewRadix(nil, nil)}
		} else {
			shards[c] = &shard{hpt: mmu.NewHPT(nil, nil)}
		}
	}
	return shards
}

func (m *Machine) attachInjector() error {
	if m.cfg.Inject == "" {
		return nil
	}
	policy, err := inject.Parse(m.cfg.Inject, runner.DeriveSubSeed(m.cfg.Seed, "inject", 0))
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	m.injector = inject.AttachStriped(m.pool, policy)
	return nil
}

// Config returns the machine's configuration with defaults applied.
func (m *Machine) Config() Config { return m.cfg }

// Done reports whether every tenant has exhausted its budget (or failed).
func (m *Machine) Done() bool { return m.live == 0 }

// Live returns the number of tenants still running.
func (m *Machine) Live() int { return m.live }

// Rounds returns the scheduling rounds executed so far.
func (m *Machine) Rounds() uint64 { return m.sched.Rounds() }

// SetCrasher arms a deterministic kill harness: registered crash points
// call Crasher.At, and the first ErrKilled aborts the machine exactly where
// a real crash would. A nil crasher disarms.
func (m *Machine) SetCrasher(c *inject.Crasher) { m.crasher = c }

// StepRound executes one scheduling round — a quantum for every live
// tenant in canonical order, then the end-of-round shared-page remaps. It
// returns inject.ErrKilled if an armed crash point fires mid-round (the
// machine must then be abandoned and recovered from its last checkpoint),
// or ErrStuck if a round with live tenants makes no progress.
func (m *Machine) StepRound() error {
	if m.live == 0 {
		// A finished machine has nothing to schedule; stepping it further
		// must not mutate state (the end-of-round remap would otherwise
		// still run and silently fork the canonical execution).
		return nil
	}
	if err := m.crasher.At(inject.KillRoundBegin); err != nil {
		return err
	}
	progressed := false
	for _, pid := range m.sched.NextRound() {
		p := m.procs[pid]
		if p.left == 0 {
			continue
		}
		coreIdx, _, _ := m.sched.Visit(pid)
		sh := m.shards[coreIdx]
		// Canonical cold start: rebind and flush unconditionally, so
		// quantum state never depends on what this core ran before.
		sh.bind(p)
		runQuantum(m.cfg, p, sh, m.shared)
		progressed = true
		if p.left == 0 {
			m.live--
		}
		if err := m.crasher.At(inject.KillQuantumEnd); err != nil {
			return err
		}
	}
	if m.live > 0 && !progressed {
		return fmt.Errorf("%w: %d live after round %d", ErrStuck, m.live, m.sched.Rounds())
	}
	if err := m.crasher.At(inject.KillRemapBefore); err != nil {
		return err
	}
	remapRound(m.cfg, m.shared, m.procs, m.shards, m.sched, &m.sd)
	return m.crasher.At(inject.KillRemapAfter)
}

// Collect assembles the Result and computes its fingerprint.
func (m *Machine) Collect() *Result {
	return collect(m.cfg, m.procs, m.shards, m.shared, m.pool, m.sched, m.sd)
}

// ProcState is one tenant's checkpointed state.
type ProcState struct {
	Res  ProcResult
	Left uint64
	// Exactly one of Trace (generated stream position) and Replay (recorded
	// stream cursor) is meaningful, matching Config.Replay at capture time.
	Trace   workload.TraceState
	Replay  uint64
	Overlay snapshot.SourceState
	Table   snapshot.SourceState // table-config generator; zero for radix
	Cache   cache.HierarchyState
	OS      osmodel.Stats
	MEHPT   *mehpt.PageTableState
	ECPT    *ecpt.PageTableState
	Radix   *radix.State
}

// MachineState is the full checkpointed state of a Machine at a round
// boundary. Shard translation caches (TLBs, CWCs, PWCs) are deliberately
// absent: canonical cold start flushes them at every quantum's bind, so a
// round boundary carries only their counters.
type MachineState struct {
	Org       string
	Processes int
	Seed      int64

	Pool  phys.StripedState
	Procs []ProcState
	Sched osmodel.MultiCoreState

	SharedTable    cuckoo.ConcurrentTableState
	SharedTableRNG snapshot.SourceState
	SharedRemapRNG snapshot.SourceState

	ShardStats []mmu.Stats
	SD         stats.Shootdowns
	Live       int
	Injector   *inject.InjectorState
}

// State captures the machine. Call it only at a round boundary (between
// StepRound calls): mid-round state includes shard-resident translation
// context the snapshot deliberately omits.
func (m *Machine) State() *MachineState {
	st := &MachineState{
		Org:            m.cfg.Org.String(),
		Processes:      m.cfg.Processes,
		Seed:           m.cfg.Seed,
		Pool:           m.pool.State(),
		Procs:          make([]ProcState, len(m.procs)),
		Sched:          m.sched.State(),
		SharedTable:    m.shared.table.State(),
		SharedTableRNG: m.shared.tableSrc.State(),
		SharedRemapRNG: m.shared.remapSrc.State(),
		ShardStats:     make([]mmu.Stats, len(m.shards)),
		SD:             m.sd,
		Live:           m.live,
	}
	for i, p := range m.procs {
		ps := ProcState{
			Res:     p.res,
			Left:    p.left,
			Overlay: p.overlaySrc.State(),
			Cache:   p.cache.State(),
			OS:      p.os.Stats(),
		}
		if p.trace != nil {
			ps.Trace = p.trace.State()
		} else {
			ps.Replay = p.replayPos
		}
		// The typed failure chain is in-memory context for errors.Is
		// assertions; the string form survives the checkpoint.
		ps.Res.FailureErr = nil
		if p.tableSrc != nil {
			ps.Table = p.tableSrc.State()
		}
		switch {
		case p.rpt != nil:
			rs := p.rpt.State()
			ps.Radix = &rs
		case m.cfg.Org == sim.MEHPT:
			ts := p.hpt.(*mehpt.PageTable).State()
			ps.MEHPT = &ts
		default:
			ts := p.hpt.(*ecpt.PageTable).State()
			ps.ECPT = &ts
		}
		st.Procs[i] = ps
	}
	for i, sh := range m.shards {
		st.ShardStats[i] = sh.mmu().Stats()
	}
	if m.injector != nil {
		is := m.injector.State()
		st.Injector = &is
	}
	return st
}

// RestoreMachine rebuilds a machine from a captured state under the same
// configuration. Identity fields are cross-checked (ErrMismatch on any
// disagreement); construction-derived values (seed tree, hash seeds, stripe
// homes) are re-derived from cfg exactly as NewMachine derives them, and
// every generator is replayed to its recorded position, so stepping the
// restored machine reproduces the uninterrupted run bit for bit.
func RestoreMachine(cfg Config, st *MachineState) (*Machine, error) {
	cfg = cfg.withDefaults()
	if st.Org != cfg.Org.String() || st.Processes != cfg.Processes || st.Seed != cfg.Seed {
		return nil, fmt.Errorf("%w: snapshot is org=%s procs=%d seed=%d, config wants org=%s procs=%d seed=%d",
			ErrMismatch, st.Org, st.Processes, st.Seed, cfg.Org, cfg.Processes, cfg.Seed)
	}
	if len(st.Sched.Incumbent) != cfg.Cores {
		return nil, fmt.Errorf("%w: snapshot has %d cores, config wants %d",
			ErrMismatch, len(st.Sched.Incumbent), cfg.Cores)
	}
	if len(st.Procs) != cfg.Processes || len(st.ShardStats) != cfg.Cores {
		return nil, fmt.Errorf("%w: snapshot carries %d proc and %d shard records for %d/%d",
			ErrMismatch, len(st.Procs), len(st.ShardStats), cfg.Processes, cfg.Cores)
	}

	pool := phys.RestoreStriped(st.Pool)
	pool.AmbientFMFI = cfg.FMFI

	specs := workload.Specs(cfg.Scale)
	procs := make([]*process, cfg.Processes)
	schedProcs := make([]*osmodel.Proc, cfg.Processes)
	for pid := range procs {
		p, err := restoreProcess(cfg, pid, specs[pid%len(specs)], pool, st.Procs[pid])
		if err != nil {
			return nil, err
		}
		procs[pid] = p
		schedProcs[pid] = &osmodel.Proc{ID: pid, PT: p.table}
	}

	sharedSeed := runner.DeriveSubSeed(cfg.Seed, "shared", 0)
	tableSrc := snapshot.RestoreSource(st.SharedTableRNG)
	remapSrc := snapshot.RestoreSource(st.SharedRemapRNG)
	shared := &sharedRegion{
		table:    cuckoo.RestoreConcurrent(sharedCuckooConfig(sharedSeed, rand.New(tableSrc)), st.SharedTable),
		view:     pool.View(^uint64(0)),
		pages:    cfg.SharedPages,
		rng:      rand.New(remapSrc),
		tableSrc: tableSrc,
		remapSrc: remapSrc,
	}

	m := &Machine{
		cfg:    cfg,
		pool:   pool,
		procs:  procs,
		shared: shared,
		sd:     st.SD,
		live:   st.Live,
	}
	if err := m.attachInjector(); err != nil {
		return nil, err
	}
	if m.injector != nil && st.Injector != nil {
		if !m.injector.Restore(*st.Injector) {
			return nil, fmt.Errorf("%w: injection policy %q does not match the snapshot's clause structure",
				ErrMismatch, cfg.Inject)
		}
	}
	m.shards = newShards(cfg)
	for i, sh := range m.shards {
		if sh.hpt != nil {
			sh.hpt.RestoreStats(st.ShardStats[i])
		} else {
			sh.rdx.RestoreStats(st.ShardStats[i])
		}
	}
	m.sched = osmodel.RestoreMultiCore(osmodel.DefaultSwitchCosts(), cfg.Cores, st.Sched, schedProcs...)
	return m, nil
}

// restoreProcess is newProcess over recorded state: same derivations, no
// fresh allocation, every generator replayed into position.
func restoreProcess(cfg Config, pid int, spec workload.Spec, pool *phys.Striped, ps ProcState) (*process, error) {
	procSeed := runner.DeriveSubSeed(cfg.Seed, "proc", uint64(pid))
	view := pool.View(uint64(pid))
	overlaySrc := snapshot.RestoreSource(ps.Overlay)
	hier, err := cache.RestoreHierarchy(tenantCacheConfig(), ps.Cache)
	if err != nil {
		return nil, fmt.Errorf("tenant: proc %d: %w", pid, err)
	}
	p := &process{
		id:         pid,
		spec:       spec,
		cache:      hier,
		rng:        rand.New(overlaySrc),
		overlaySrc: overlaySrc,
		left:       ps.Left,
		res:        ps.Res,
	}
	if cfg.Replay != nil {
		sec, ok := trace.FindSection(cfg.Replay, uint64(pid))
		if !ok {
			return nil, fmt.Errorf("%w: replay trace has no section for pid %d", ErrMismatch, pid)
		}
		if ps.Replay > uint64(len(sec.VAs)) {
			return nil, fmt.Errorf("%w: proc %d replay cursor %d beyond %d records",
				ErrMismatch, pid, ps.Replay, len(sec.VAs))
		}
		p.replay = sec.VAs
		p.replayPos = ps.Replay
	} else {
		p.trace = spec.RestoreTrace(ps.Trace)
	}
	hashSeed := uint64(procSeed)*2654435761 + 12345
	switch cfg.Org {
	case sim.MEHPT:
		if ps.MEHPT == nil {
			return nil, fmt.Errorf("%w: proc %d carries no ME-HPT state", ErrMismatch, pid)
		}
		tc := mehpt.DefaultConfig(hashSeed)
		p.tableSrc = snapshot.RestoreSource(ps.Table)
		tc.Rand = rand.New(p.tableSrc)
		pt := mehpt.RestorePageTable(view, tc, *ps.MEHPT)
		p.table, p.hpt = pt, pt
	case sim.ECPT:
		if ps.ECPT == nil {
			return nil, fmt.Errorf("%w: proc %d carries no ECPT state", ErrMismatch, pid)
		}
		tc := ecpt.DefaultConfig(hashSeed)
		p.tableSrc = snapshot.RestoreSource(ps.Table)
		tc.Rand = rand.New(p.tableSrc)
		pt := ecpt.RestorePageTable(view, tc, *ps.ECPT)
		p.table, p.hpt = pt, pt
	case sim.Radix:
		if ps.Radix == nil {
			return nil, fmt.Errorf("%w: proc %d carries no radix state", ErrMismatch, pid)
		}
		pt, err := radix.Restore(*ps.Radix, view)
		if err != nil {
			return nil, fmt.Errorf("tenant: proc %d: %w", pid, err)
		}
		p.table, p.rpt = pt, pt
	default:
		return nil, fmt.Errorf("tenant: unknown organization %v", cfg.Org)
	}
	p.os = osmodel.New(osmodel.DefaultConfig(), p.table, view)
	p.os.RestoreStats(ps.OS)
	return p, nil
}

// Checkpoint atomically writes the machine's state to path (see
// snapshot.Save). Crash points fire on both sides of the write, so the
// chaos harness can kill a run with a half-valid checkpoint pair and prove
// recovery picks the intact one.
func (m *Machine) Checkpoint(path string) error {
	if err := m.crasher.At(inject.KillCheckpointBefore); err != nil {
		return err
	}
	if err := snapshot.Save(path, m.State()); err != nil {
		return err
	}
	return m.crasher.At(inject.KillCheckpointAfter)
}

// LoadMachine restores a machine from a checkpoint file written by
// Checkpoint. Envelope failures surface the snapshot package's typed
// sentinels (ErrTruncated, ErrChecksum, ErrVersion, ...); identity
// failures surface ErrMismatch.
func LoadMachine(cfg Config, path string) (*Machine, error) {
	var st MachineState
	if err := snapshot.Load(path, &st); err != nil {
		return nil, err
	}
	return RestoreMachine(cfg, &st)
}
