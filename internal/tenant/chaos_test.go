package tenant_test

// The chaos battery: for every registered kill point, kill a run
// mid-flight, recover from the last intact checkpoint, and require the
// resumed run's fingerprint to be bit-identical to the uninterrupted
// baseline — then scrub the recovered machine for cross-layer invariant
// violations. This is the tentpole acceptance criterion: crash anywhere,
// resume, land on the same bits.

import (
	"path/filepath"
	"testing"

	"repro/internal/inject"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/tenant"
)

func chaosConfig(org sim.Org, cores int) tenant.Config {
	return tenant.Config{
		Org:             org,
		Processes:       5,
		Cores:           cores,
		Seed:            99,
		AccessesPerProc: 3000,
		Quantum:         512,
	}
}

// TestChaosKillMatrix kills at every registered crash point (first and a
// later visit) and requires bit-identical recovery plus a clean scrub.
func TestChaosKillMatrix(t *testing.T) {
	cfg := chaosConfig(sim.MEHPT, 2)
	for _, point := range inject.KillPoints() {
		for _, visit := range []string{":1", ":3"} {
			plan := point + visit
			t.Run(plan, func(t *testing.T) {
				res, err := tenant.RunChaos(cfg, plan, filepath.Join(t.TempDir(), "chaos.ckpt"))
				if err != nil {
					t.Fatalf("RunChaos: %v", err)
				}
				if !res.Killed {
					t.Fatalf("kill point %s never fired", plan)
				}
				if !res.Match {
					t.Fatalf("resumed fingerprint %s != baseline %s (killed at round %d)",
						res.Resumed, res.Baseline, res.KilledAt)
				}
				if vs := scrub.Machine(res.Final); len(vs) != 0 {
					for _, v := range vs {
						t.Errorf("post-recovery scrub: %s", v)
					}
				}
			})
		}
	}
}

// TestChaosAcrossOrgsAndCores proves recovery holds for every organization
// and core count, not just the ME-HPT default.
func TestChaosAcrossOrgsAndCores(t *testing.T) {
	for _, org := range []sim.Org{sim.MEHPT, sim.ECPT, sim.Radix} {
		for _, cores := range []int{1, 3} {
			t.Run(org.String()+"/"+string(rune('0'+cores))+"c", func(t *testing.T) {
				cfg := chaosConfig(org, cores)
				res, err := tenant.RunChaos(cfg, "quantum.end:4", filepath.Join(t.TempDir(), "chaos.ckpt"))
				if err != nil {
					t.Fatalf("RunChaos: %v", err)
				}
				if !res.Killed {
					t.Fatal("kill never fired")
				}
				if !res.Match {
					t.Fatalf("resumed fingerprint diverged (killed at round %d)", res.KilledAt)
				}
				if vs := scrub.Machine(res.Final); len(vs) != 0 {
					for _, v := range vs {
						t.Errorf("post-recovery scrub: %s", v)
					}
				}
			})
		}
	}
}

// TestChaosUnderInjection layers the kill harness over allocation-fault
// injection: both adversaries at once, still bit-identical.
func TestChaosUnderInjection(t *testing.T) {
	cfg := chaosConfig(sim.MEHPT, 2)
	cfg.Inject = "rate=0.001"
	res, err := tenant.RunChaos(cfg, "remap.after:2", filepath.Join(t.TempDir(), "chaos.ckpt"))
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if !res.Killed {
		t.Fatal("kill never fired")
	}
	if !res.Match {
		t.Fatalf("resumed fingerprint diverged under injection (killed at round %d)", res.KilledAt)
	}
	if vs := scrub.Machine(res.Final); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("post-recovery scrub: %s", v)
		}
	}
}

// TestChaosBadPlan rejects malformed and unknown kill plans.
func TestChaosBadPlan(t *testing.T) {
	for _, plan := range []string{"", "bogus:1", "round.begin:0", "round.begin:x", "round.begin"} {
		if _, err := tenant.RunChaos(chaosConfig(sim.MEHPT, 1), plan, filepath.Join(t.TempDir(), "c.ckpt")); err == nil {
			t.Errorf("plan %q accepted", plan)
		}
	}
}
