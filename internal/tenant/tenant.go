// Package tenant is the multi-tenant sharded simulation mode: N simulated
// cores replaying interleaved traces from many simulated processes, every
// address space allocating frames from one machine-wide striped-lock pool
// (phys.Striped), with a read-mostly shared segment translated through a
// concurrent elastic cuckoo table (cuckoo.ConcurrentTable) and remapped
// periodically to drive TLB-shootdown traffic.
//
// # Determinism contract
//
// A machine executes in *canonical order*: one goroutine visits processes
// round by round in a seeded-permutation order drawn by the MultiCore
// scheduler, whose schedule is a pure function of (seed, round) — never of
// the core count. Host parallelism stays where PR 1 put it, at the
// experiment-matrix level. Core-count invariance comes from two rules:
//
//   - Pinning: process pid runs on core pid mod C, a pure function of
//     identity.
//   - Canonical cold start: a core's translation shard (TLBs, CWCs/PWCs)
//     is rebound and flushed at *every* quantum boundary, incumbent or
//     not, so the state a quantum starts from never depends on what the
//     core ran before — i.e. on C. Data-cache state is per-process and
//     follows the process across cores.
//
// Everything that feeds the run fingerprint (per-process cycles, faults,
// walk counts, pool accounting, shootdown events and sharers) is therefore
// bit-identical at any simulated core count and any host worker count.
// Metrics that *legitimately* depend on packing — context switches saved by
// incumbency, IPIs delivered per shootdown — are reported as core-view
// metrics outside the fingerprint (see stats.Shootdowns).
//
// # Seed tree
//
// Every generator derives from the machine seed through the splitmix64
// seed tree (runner.DeriveSubSeed): per-process trace, table, and
// shared-overlay RNGs under "proc"/pid, the scheduler permutation under
// "sched", the shared-region manager under "shared", and the injection
// policy under "inject". No RNG is ever shared between two owners.
package tenant

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/cuckoo"
	"repro/internal/ecpt"
	"repro/internal/hashfn"
	"repro/internal/mehpt"
	"repro/internal/mmu"
	"repro/internal/osmodel"
	"repro/internal/phys"
	"repro/internal/radix"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SharedBaseVA is where the machine-wide shared segment lives; it is far
// above workload.BaseVA so shared and private pages never collide.
const SharedBaseVA = addr.VirtAddr(0x7F00_0000_0000)

// sharedPTBase is the synthetic physical region where the shared segment's
// hashed page-table lines notionally live (distinct from data and per-
// process page-table addresses).
const sharedPTBase = addr.PhysAddr(1) << 46

// ipiCycles is the core-view cost of delivering one shootdown IPI: a
// remote interrupt, TLB invalidation, and acknowledgment.
const ipiCycles = 2000

// Config parameterizes one multi-tenant machine.
type Config struct {
	Org       sim.Org
	Processes int
	Cores     int
	// MemBytes is the pooled physical capacity behind the striped allocator.
	MemBytes uint64
	// Stripes is the lock-stripe count; 0 picks min(8, Processes).
	Stripes int
	// FMFI is the ambient fragmentation used to price allocations.
	FMFI float64
	// Seed is the machine seed; derive it from the suite seed and the job
	// identity (runner.DeriveSeed) so the fingerprint is identity-pure.
	Seed int64
	// AccessesPerProc is each process's total access budget.
	AccessesPerProc uint64
	// Quantum is the accesses a process executes per scheduling visit.
	Quantum uint64
	// Scale divides workload footprints (workload.Specs); tenants cycle
	// through the paper's eleven applications.
	Scale uint64
	// SharedPages sizes the machine-wide shared segment (4KB pages).
	SharedPages uint64
	// SharedFraction is the probability an access targets the shared
	// segment instead of the process's private trace.
	SharedFraction float64
	// RemapsPerRound is how many shared pages are remapped (each remap is
	// one TLB-shootdown event) at the end of every scheduling round.
	RemapsPerRound int
	// Inject, when non-empty, is an inject.Parse policy applied to the
	// shared pool's allocations.
	Inject string
	// Replay, when non-nil, supplies every tenant's private access stream
	// from a recorded binary trace (one section per PID; see RecordTraces)
	// instead of the statistical generators. A machine replaying the trace
	// RecordTraces wrote for the same Config lands on the identical
	// fingerprint — the trace seed tree is the same either way.
	Replay []trace.Section
}

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Processes <= 0 {
		c.Processes = 8
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.MemBytes == 0 {
		c.MemBytes = 4 * addr.GB
	}
	if c.Stripes <= 0 {
		c.Stripes = 8
		if c.Processes < c.Stripes {
			c.Stripes = c.Processes
		}
	}
	if c.AccessesPerProc == 0 {
		c.AccessesPerProc = 4096
	}
	if c.Quantum == 0 {
		c.Quantum = 1024
	}
	if c.Scale == 0 {
		c.Scale = 4096
	}
	if c.SharedPages == 0 {
		c.SharedPages = 256
	}
	if c.SharedFraction == 0 {
		c.SharedFraction = 0.05
	}
	if c.RemapsPerRound == 0 {
		c.RemapsPerRound = 4
	}
	return c
}

// ProcResult is one tenant's canonical accounting.
type ProcResult struct {
	PID            int    `json:"pid"`
	Workload       string `json:"workload"`
	Accesses       uint64 `json:"accesses"`
	SharedAccesses uint64 `json:"shared_accesses"`
	Faults         uint64 `json:"faults"`
	XlatCycles     uint64 `json:"xlat_cycles"`
	DataCycles     uint64 `json:"data_cycles"`
	OSCycles       uint64 `json:"os_cycles"`
	Failed         bool   `json:"failed"`
	Failure        string `json:"failure,omitempty"`
	// FailureErr carries the typed error chain for errors.Is assertions;
	// it is excluded from JSON and from the fingerprint.
	FailureErr error `json:"-"`
}

// Result is one machine run. Canonical fields feed the Fingerprint;
// core-view fields (switches, IPIs) are reported alongside but excluded,
// since they legitimately vary with the simulated core count.
type Result struct {
	Org       string `json:"org"`
	Processes int    `json:"processes"`
	Cores     int    `json:"cores"`

	Procs []ProcResult `json:"procs"`

	// Canonical machine-wide accounting.
	Walks            uint64           `json:"walks"`
	WalkCycles       uint64           `json:"walk_cycles"`
	TLBHits          uint64           `json:"tlb_hits"`
	SharedLookups    uint64           `json:"shared_lookups"`
	SharedLen        uint64           `json:"shared_len"`
	PoolAllocs       uint64           `json:"pool_allocs"`
	PoolFrees        uint64           `json:"pool_frees"`
	PoolFailedAllocs uint64           `json:"pool_failed_allocs"`
	PoolFreeBytes    uint64           `json:"pool_free_bytes"`
	Rounds           uint64           `json:"rounds"`
	Shootdowns       stats.Shootdowns `json:"shootdowns"`

	// Core-view metrics (outside the fingerprint).
	Switches     uint64 `json:"switches"`
	SwitchCycles uint64 `json:"switch_cycles"`

	// Fingerprint is the SHA-256 of the canonical fields, the value the
	// determinism matrix asserts bit-identical across host worker counts
	// and simulated core counts.
	Fingerprint string `json:"fingerprint"`
}

// canonical is the fingerprinted projection of a Result: everything except
// the core-view metrics. Shootdown IPI fields are zeroed before hashing.
type canonical struct {
	Org              string           `json:"org"`
	Processes        int              `json:"processes"`
	Procs            []ProcResult     `json:"procs"`
	Walks            uint64           `json:"walks"`
	WalkCycles       uint64           `json:"walk_cycles"`
	TLBHits          uint64           `json:"tlb_hits"`
	SharedLookups    uint64           `json:"shared_lookups"`
	SharedLen        uint64           `json:"shared_len"`
	PoolAllocs       uint64           `json:"pool_allocs"`
	PoolFrees        uint64           `json:"pool_frees"`
	PoolFailedAllocs uint64           `json:"pool_failed_allocs"`
	PoolFreeBytes    uint64           `json:"pool_free_bytes"`
	Rounds           uint64           `json:"rounds"`
	Shootdowns       stats.Shootdowns `json:"shootdowns"`
}

// fingerprint hashes the canonical projection.
func (r *Result) fingerprint() string {
	sd := r.Shootdowns
	sd.IPIsDelivered, sd.IPICycles = 0, 0
	c := canonical{
		Org: r.Org, Processes: r.Processes, Procs: r.Procs,
		Walks: r.Walks, WalkCycles: r.WalkCycles, TLBHits: r.TLBHits,
		SharedLookups: r.SharedLookups, SharedLen: r.SharedLen,
		PoolAllocs: r.PoolAllocs, PoolFrees: r.PoolFrees,
		PoolFailedAllocs: r.PoolFailedAllocs, PoolFreeBytes: r.PoolFreeBytes,
		Rounds: r.Rounds, Shootdowns: sd,
	}
	b, err := json.Marshal(c)
	if err != nil {
		panic("tenant: canonical result not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// tenantCacheConfig is the per-process data-cache slice: a CAT-style
// partition of the Table III hierarchy (smaller shares of L2/L3), so
// hundreds of tenants fit in simulator memory while cache behaviour stays
// per-address-space — and therefore core-count invariant.
func tenantCacheConfig() cache.HierarchyConfig {
	return cache.HierarchyConfig{
		L1:          cache.Config{SizeBytes: 32 * addr.KB, Ways: 8, LineBytes: 64, Latency: 2},
		L2:          cache.Config{SizeBytes: 128 * addr.KB, Ways: 8, LineBytes: 64, Latency: 16},
		L3:          cache.Config{SizeBytes: 512 * addr.KB, Ways: 16, LineBytes: 64, Latency: 56},
		DRAMLatency: 200,
	}
}

// process is one simulated tenant.
type process struct {
	id    int
	spec  workload.Spec
	table osmodel.PageTable
	hpt   mmu.HPTPageTable // non-nil for ECPT/ME-HPT
	rpt   *radix.PageTable // non-nil for Radix
	os    *osmodel.OS
	cache *cache.Hierarchy
	// Exactly one of trace (generated stream) and replay (recorded stream)
	// is set, per Config.Replay.
	trace     *workload.Trace
	replay    []addr.VirtAddr
	replayPos uint64
	rng       *rand.Rand // shared-overlay draws, private to this tenant
	left      uint64

	// Counting sources under the tenant's generators, so a checkpoint can
	// record exact stream positions: overlaySrc feeds rng, tableSrc feeds
	// the page-table config's Rand (nil for radix, which draws nothing).
	overlaySrc *snapshot.Source
	tableSrc   *snapshot.Source

	res ProcResult
}

func (p *process) fail(err error) {
	p.res.Failed = true
	p.res.Failure = err.Error()
	p.res.FailureErr = err
	p.left = 0
}

// shard is one core's MMU: the per-core translation structures every
// quantum rebinds to the incoming process.
type shard struct {
	hpt *mmu.HPT
	rdx *mmu.Radix
}

func (s *shard) bind(p *process) {
	if s.hpt != nil {
		s.hpt.Mem = p.cache
		s.hpt.Bind(p.hpt)
		return
	}
	s.rdx.Mem = p.cache
	s.rdx.Bind(p.rpt)
}

func (s *shard) mmu() mmu.MMU {
	if s.hpt != nil {
		return s.hpt
	}
	return s.rdx
}

// tlbs returns the shard's TLB hierarchy (both MMU variants expose one);
// the shared-segment path probes it directly.
func (s *shard) tlbs() *tlb.Hierarchy {
	if s.hpt != nil {
		return s.hpt.TLB
	}
	return s.rdx.TLB
}

// sharedRegion is the machine-wide read-mostly segment: a concurrent
// elastic cuckoo table mapping shared VPNs to pool frames.
type sharedRegion struct {
	table *cuckoo.ConcurrentTable
	view  phys.Source
	pages uint64
	rng   *rand.Rand // remap picks, owned by the shared-region manager

	// Counting sources under the region's generators (see process).
	tableSrc *snapshot.Source
	remapSrc *snapshot.Source
}

func (s *sharedRegion) vpn(page uint64) uint64 {
	return uint64(SharedBaseVA.PageNumber(addr.Page4K)) + page
}

// Run executes one multi-tenant machine to completion and returns its
// result. It never panics on memory pressure: a tenant whose fault cannot
// be serviced is marked failed and descheduled while the machine carries
// the remaining tenants to completion (tenant isolation). Run is the
// one-shot wrapper over the resumable Machine (see machine.go).
func Run(cfg Config) (*Result, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	for !m.Done() {
		if err := m.StepRound(); err != nil {
			return nil, err
		}
	}
	return m.Collect(), nil
}

// RecordTraces writes every tenant's private access stream as one binary
// trace with a per-PID section table (trace.WriteBinary). The streams are
// regenerated from cfg's seed tree — the same derivation newProcess uses —
// so a machine run with Config.Replay set to the recorded sections produces
// the identical fingerprint as a generated-trace run of the same Config.
func RecordTraces(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	specs := workload.Specs(cfg.Scale)
	sections := make([]trace.Section, cfg.Processes)
	for pid := 0; pid < cfg.Processes; pid++ {
		procSeed := runner.DeriveSubSeed(cfg.Seed, "proc", uint64(pid))
		tr := specs[pid%len(specs)].NewTrace(runner.DeriveSubSeed(procSeed, "trace", 0), cfg.AccessesPerProc)
		vas := make([]addr.VirtAddr, 0, cfg.AccessesPerProc)
		for {
			va, ok := tr.Next()
			if !ok {
				break
			}
			vas = append(vas, va)
		}
		sections[pid] = trace.Section{PID: uint64(pid), VAs: vas}
	}
	return trace.WriteBinary(w, sections)
}

// newProcess builds one tenant: its page table over a pool view, OS layer,
// private cache slice, trace, and overlay generator.
func newProcess(cfg Config, pid int, spec workload.Spec, pool *phys.Striped) (*process, error) {
	procSeed := runner.DeriveSubSeed(cfg.Seed, "proc", uint64(pid))
	view := pool.View(uint64(pid))
	overlaySrc := snapshot.NewSource(runner.DeriveSubSeed(procSeed, "overlay", 0))
	p := &process{
		id:         pid,
		spec:       spec,
		cache:      cache.NewHierarchy(tenantCacheConfig()),
		rng:        rand.New(overlaySrc),
		overlaySrc: overlaySrc,
		left:       cfg.AccessesPerProc,
	}
	if cfg.Replay != nil {
		sec, ok := trace.FindSection(cfg.Replay, uint64(pid))
		if !ok {
			return nil, fmt.Errorf("tenant: replay trace has no section for pid %d", pid)
		}
		if uint64(len(sec.VAs)) < cfg.AccessesPerProc {
			return nil, fmt.Errorf("tenant: replay section for pid %d holds %d records, need %d",
				pid, len(sec.VAs), cfg.AccessesPerProc)
		}
		p.replay = sec.VAs
	} else {
		p.trace = spec.NewTrace(runner.DeriveSubSeed(procSeed, "trace", 0), cfg.AccessesPerProc)
	}
	p.res = ProcResult{PID: pid, Workload: spec.Name}
	hashSeed := uint64(procSeed)*2654435761 + 12345
	switch cfg.Org {
	case sim.MEHPT:
		tc := mehpt.DefaultConfig(hashSeed)
		p.tableSrc = snapshot.NewSource(runner.DeriveSubSeed(procSeed, "table", 0))
		tc.Rand = rand.New(p.tableSrc)
		pt, err := mehpt.NewPageTable(view, tc)
		if err != nil {
			return nil, fmt.Errorf("tenant: proc %d: %w", pid, err)
		}
		p.table, p.hpt = pt, pt
	case sim.ECPT:
		tc := ecpt.DefaultConfig(hashSeed)
		p.tableSrc = snapshot.NewSource(runner.DeriveSubSeed(procSeed, "table", 0))
		tc.Rand = rand.New(p.tableSrc)
		pt, err := ecpt.NewPageTable(view, tc)
		if err != nil {
			return nil, fmt.Errorf("tenant: proc %d: %w", pid, err)
		}
		p.table, p.hpt = pt, pt
	case sim.Radix:
		pt, err := radix.NewPageTable(view)
		if err != nil {
			return nil, fmt.Errorf("tenant: proc %d: %w", pid, err)
		}
		p.table, p.rpt = pt, pt
	default:
		return nil, fmt.Errorf("tenant: unknown organization %v", cfg.Org)
	}
	osCfg := osmodel.DefaultConfig()
	p.os = osmodel.New(osCfg, p.table, view)
	return p, nil
}

// sharedCuckooConfig is the shared segment's table geometry, shared by the
// construction and restore paths so both derive the identical hash family.
func sharedCuckooConfig(sharedSeed int64, rng *rand.Rand) cuckoo.Config {
	return cuckoo.Config{
		Ways:           3,
		InitialEntries: 64,
		MaxKicks:       32,
		HashSeed:       uint64(sharedSeed)*2654435761 + 12345,
		Rand:           rng, //mehpt:allow randowner -- the region's own counted source (fresh at boot, repositioned on restore), never shared
	}
}

// newShared builds and premaps the shared segment. Premapping drives the
// concurrent table through its growth path (serialized resizes) before the
// first round.
func newShared(cfg Config, pool *phys.Striped) (*sharedRegion, error) {
	sharedSeed := runner.DeriveSubSeed(cfg.Seed, "shared", 0)
	tableSrc := snapshot.NewSource(runner.DeriveSubSeed(sharedSeed, "table", 0))
	remapSrc := snapshot.NewSource(runner.DeriveSubSeed(sharedSeed, "remap", 0))
	s := &sharedRegion{
		table:    cuckoo.NewConcurrent(sharedCuckooConfig(sharedSeed, rand.New(tableSrc))),
		view:     pool.View(^uint64(0)),
		pages:    cfg.SharedPages,
		rng:      rand.New(remapSrc),
		tableSrc: tableSrc,
		remapSrc: remapSrc,
	}
	for page := uint64(0); page < s.pages; page++ {
		ppn, _, err := s.view.Alloc(4 * addr.KB)
		if err != nil {
			return nil, fmt.Errorf("tenant: premapping shared page %d: %w", page, err)
		}
		if _, err := s.table.Insert(s.vpn(page), uint64(ppn)); err != nil {
			return nil, fmt.Errorf("tenant: shared table insert: %w", err)
		}
	}
	return s, nil
}

// runQuantum executes up to cfg.Quantum accesses of p on shard sh.
func runQuantum(cfg Config, p *process, sh *shard, shared *sharedRegion) {
	n := cfg.Quantum
	if n > p.left {
		n = p.left
	}
	for i := uint64(0); i < n; i++ {
		if p.rng.Float64() < cfg.SharedFraction {
			sharedAccess(p, sh, shared)
			p.res.SharedAccesses++
		} else if !privateAccess(p, sh) {
			return // tenant failed mid-quantum
		}
		p.res.Accesses++
		p.left--
	}
}

// privateAccess replays one trace access through the shard MMU, faulting
// on demand. It returns false when the tenant fails.
//
//mehpt:hotpath
func privateAccess(p *process, sh *shard) bool {
	var va addr.VirtAddr
	if p.replay != nil {
		if p.replayPos >= uint64(len(p.replay)) {
			panic("tenant: trace exhausted before access budget")
		}
		va = p.replay[p.replayPos]
		p.replayPos++
	} else {
		var ok bool
		va, ok = p.trace.Next()
		if !ok {
			// The trace is sized to the access budget; exhaustion here means
			// the budget accounting drifted, which would silently shorten runs.
			panic("tenant: trace exhausted before access budget")
		}
	}
	m := sh.mmu()
	r := m.Translate(va)
	p.res.XlatCycles += r.Cycles
	if r.Fault {
		c, err := p.os.HandleFault(va) //mehpt:allow hotalloc -- fault path: a miss leaves the translation fast path by design
		p.res.OSCycles += c
		if err != nil {
			p.fail(err)
			return false
		}
		r = m.Translate(va)
		p.res.XlatCycles += r.Cycles
	}
	p.res.DataCycles += p.cache.Access(r.PA) / sim.DataMLP
	return true
}

// sharedAccess touches one page of the shared segment: a TLB probe on the
// shard, a concurrent-table lookup for the frame, and on a TLB miss the
// hashed-walk cost of one shared page-table probe.
//
//mehpt:hotpath
func sharedAccess(p *process, sh *shard, shared *sharedRegion) {
	page := uint64(p.rng.Int63()) % shared.pages
	va := SharedBaseVA + addr.VirtAddr(page*4*addr.KB)
	tlbs := sh.tlbs()
	res, _, lat := tlbs.Lookup(va, addr.Page4K)
	p.res.XlatCycles += lat
	ppnVal, ok := shared.table.Lookup(shared.vpn(page))
	if !ok {
		panic("tenant: shared page lost its mapping")
	}
	if res == tlb.MissAll {
		// Hashed walk for the shared segment: hash latency plus one
		// page-table line access (always-DRAM, like other PT lines).
		walk := uint64(hashfn.Latency)
		walk += p.cache.AccessPT(sharedPTBase + addr.PhysAddr(shared.vpn(page)*8))
		p.res.XlatCycles += walk
		// The cached payload stays coherent because every remap of a
		// shared page shoots this entry down before publishing the new
		// frame; CheckShardTLBs proves it.
		tlbs.Insert(va, addr.Page4K, ppnVal)
	}
	pa := addr.Translate(va, addr.PPN(ppnVal), addr.Page4K)
	p.res.DataCycles += p.cache.Access(pa) / sim.DataMLP
}

// remapRound performs the end-of-round shared-page remaps, each one a TLB
// shootdown: a new frame is published through the concurrent table (an
// upsert, racing only with readers by design), the old frame is freed, and
// every other live address space is notified. IPI delivery is core-view:
// one interrupt per core with a resident address space.
func remapRound(cfg Config, shared *sharedRegion, procs []*process,
	shards []*shard, sched *osmodel.MultiCore, sd *stats.Shootdowns) {
	liveSharers := 0
	for _, p := range procs {
		if !p.res.Failed {
			liveSharers++
		}
	}
	for k := 0; k < cfg.RemapsPerRound; k++ {
		page := uint64(shared.rng.Int63()) % shared.pages
		old, ok := shared.table.Lookup(shared.vpn(page))
		if !ok {
			panic("tenant: remapping unmapped shared page")
		}
		ppn, _, err := shared.view.Alloc(4 * addr.KB)
		if err != nil {
			// Pool pressure (genuine or injected): defer the remap. The old
			// mapping stays valid — degradation, not corruption.
			continue
		}
		if _, err := shared.table.Insert(shared.vpn(page), uint64(ppn)); err != nil {
			// Upsert of an existing key cannot allocate, so it cannot fail;
			// roll the new frame back if it somehow does.
			shared.view.Free(ppn, 4*addr.KB)
			continue
		}
		shared.view.Free(addr.PPN(old), 4*addr.KB)
		sd.Events++
		if liveSharers > 0 {
			sd.SharersNotified += uint64(liveSharers - 1)
		}
		va := SharedBaseVA + addr.VirtAddr(page*4*addr.KB)
		resident := uint64(0)
		for c := 0; c < sched.Cores(); c++ {
			if sched.Incumbent(c) >= 0 {
				resident++
			}
		}
		sd.IPIsDelivered += resident
		sd.IPICycles += resident * ipiCycles
		// Shard-level TLB invalidation of va on every core: quanta start
		// cold (canonical cold start), so this is model hygiene with no
		// canonical effect, but it keeps the shards honest for anyone
		// inspecting them between rounds.
		for _, sh := range shards {
			sh.mmu().Invalidate(va, addr.Page4K)
		}
	}
}

// collect assembles the Result and computes its fingerprint.
func collect(cfg Config, procs []*process, shards []*shard,
	shared *sharedRegion, pool *phys.Striped, sched *osmodel.MultiCore,
	sd stats.Shootdowns) *Result {
	r := &Result{
		Org:       cfg.Org.String(),
		Processes: cfg.Processes,
		Cores:     cfg.Cores,
		Rounds:    sched.Rounds(),
	}
	for _, p := range procs {
		p.res.Faults = p.os.Stats().Faults
		r.Procs = append(r.Procs, p.res)
	}
	for _, sh := range shards {
		st := sh.mmu().Stats()
		r.Walks += st.Walks
		r.WalkCycles += st.WalkCycles
		r.TLBHits += st.L1Hits + st.L2Hits
	}
	cs := shared.table.Stats()
	r.SharedLookups = cs.Lookups
	r.SharedLen = shared.table.Len()
	ps := pool.StatsSum()
	r.PoolAllocs = ps.Allocs
	r.PoolFrees = ps.Frees
	r.PoolFailedAllocs = ps.FailedAllocs
	r.PoolFreeBytes = pool.FreeBytes()
	r.Shootdowns = sd
	ss := sched.Stats()
	r.Switches = ss.Switches
	r.SwitchCycles = ss.SwitchCycles
	r.Fingerprint = r.fingerprint()
	return r
}
