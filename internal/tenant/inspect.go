package tenant

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/ecpt"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/radix"
)

// This file is the scrubber's window into a machine: read-only visitation
// of frame ownership, live mappings, and translation-cache residency. The
// invariant logic itself lives in internal/scrub, which imports tenant —
// never the other way around.

// Pool returns the machine-wide striped allocator for inspection.
func (m *Machine) Pool() *phys.Striped { return m.pool }

// frameVisitor and mappingVisitor are satisfied by all three page-table
// organizations.
type frameVisitor interface {
	VisitOwnedFrames(f func(base addr.PPN, bytes uint64))
}

type mappingVisitor interface {
	VisitMappings(f func(vpn addr.VPN, s addr.PageSize, ppn addr.PPN))
}

// VisitPageTableFrames reports every physical block owned by tenant page
// tables as (pid, base PPN, bytes).
func (m *Machine) VisitPageTableFrames(f func(pid int, base addr.PPN, bytes uint64)) {
	for _, p := range m.procs {
		pid := p.id
		p.table.(frameVisitor).VisitOwnedFrames(func(base addr.PPN, bytes uint64) {
			f(pid, base, bytes)
		})
	}
}

// VisitDataMappings reports every live private translation as (pid, vpn,
// size, ppn).
func (m *Machine) VisitDataMappings(f func(pid int, vpn addr.VPN, s addr.PageSize, ppn addr.PPN)) {
	for _, p := range m.procs {
		pid := p.id
		p.table.(mappingVisitor).VisitMappings(func(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) {
			f(pid, vpn, s, ppn)
		})
	}
}

// VisitSharedMappings reports every shared-segment page as (page index,
// frame). Every shared frame is one 4KB page.
func (m *Machine) VisitSharedMappings(f func(page uint64, ppn addr.PPN)) {
	base := m.shared.vpn(0)
	m.shared.table.Range(func(key, val uint64) bool {
		f(key-base, addr.PPN(val))
		return true
	})
}

// SharedPages returns the shared-segment page count.
func (m *Machine) SharedPages() uint64 { return m.shared.pages }

// CheckTables runs every organization's structural self-checks (occupancy
// counters, resize bits, chunk backing, tree node accounting) across all
// tenants, returning one message per violation prefixed with the owning
// tenant.
func (m *Machine) CheckTables() []string {
	var bad []string
	for _, p := range m.procs {
		var msgs []string
		switch t := p.table.(type) {
		case *mehpt.PageTable:
			msgs = t.CheckWays()
		case *ecpt.PageTable:
			msgs = t.CheckTables()
		case *radix.PageTable:
			msgs = t.CheckTree()
		}
		for _, msg := range msgs {
			bad = append(bad, fmt.Sprintf("proc %d: %s", p.id, msg))
		}
	}
	return bad
}

// CheckShardTLBs verifies TLB coherence: every translation resident in a
// core's TLBs must still resolve — at the cached page size — through the
// address space the shard is bound to, or through the shared segment's
// concurrent table. Unbound shards (a freshly restored machine) carry
// nothing and pass vacuously.
func (m *Machine) CheckShardTLBs() []string {
	var bad []string
	for core, sh := range m.shards {
		resolve := func(vpn addr.VPN, s addr.PageSize) (uint64, bool) { return 0, false }
		switch {
		case sh.hpt != nil && sh.hpt.Table != nil:
			table := sh.hpt.Table
			resolve = func(vpn addr.VPN, s addr.PageSize) (uint64, bool) {
				tr, ok := table.Translate(vpn.Addr(s))
				if !ok || tr.Size != s {
					return 0, false
				}
				return uint64(tr.PPN), true
			}
		case sh.rdx != nil && sh.rdx.Table != nil:
			table := sh.rdx.Table
			resolve = func(vpn addr.VPN, s addr.PageSize) (uint64, bool) {
				ppn, ok := table.TranslateSize(vpn, s)
				return uint64(ppn), ok
			}
		case sh.hpt == nil && sh.rdx == nil:
			continue
		default:
			// Unbound shard: its TLBs were never filled (bind flushes), so
			// any resident entry is already a violation; resolve stays false.
		}
		sh.tlbs().VisitEntries(func(vpn addr.VPN, s addr.PageSize, level int, pay uint64) {
			if ppn, ok := resolve(vpn, s); ok {
				if ppn == pay {
					return
				}
				// The MMU completes TLB hits from the cached payload, so a
				// payload that drifted from the table is a silently wrong
				// translation, not just a bookkeeping error.
				bad = append(bad, fmt.Sprintf("core %d: L%d TLB caches %v page %#x with PPN %#x but the table resolves %#x",
					core, level, s, uint64(vpn), pay, ppn))
				return
			}
			// Shared-segment pages translate through the concurrent table,
			// not the per-process organization.
			if s == addr.Page4K {
				if ppn, ok := m.shared.table.Lookup(uint64(vpn)); ok {
					if ppn == pay {
						return
					}
					bad = append(bad, fmt.Sprintf("core %d: L%d TLB caches shared page %#x with PPN %#x but the concurrent table resolves %#x",
						core, level, uint64(vpn), pay, ppn))
					return
				}
			}
			bad = append(bad, fmt.Sprintf("core %d: L%d TLB holds %v page %#x with no live translation",
				core, level, s, uint64(vpn)))
		})
	}
	return bad
}
