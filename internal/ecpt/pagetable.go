package ecpt

import (
	"repro/internal/addr"
	"repro/internal/phys"
	"repro/internal/pt"
)

// PageTable is a process's complete ECPT: one Table per page size plus the
// shared cluster slab. Per-page-size tables are created lazily on first
// mapping (as in ME-HPT), except the 4KB table, which every process needs
// immediately — creating it eagerly surfaces contiguous-allocation failures
// at process start, the paper's "program failure" scenario.
type PageTable struct {
	tables [addr.NumPageSizes]*Table
	slab   pt.Slab
	//mehpt:transient -- RestorePageTable reattaches the separately restored physical allocator
	alloc phys.Source
	//mehpt:transient -- RestorePageTable requires the caller to re-supply the same Config (incl. a repositioned Rand)
	cfg Config
}

// NewPageTable creates a process's ECPT with its initial 4KB table.
func NewPageTable(alloc phys.Source, cfg Config) (*PageTable, error) {
	p := &PageTable{alloc: alloc, cfg: cfg}
	t, err := NewTable(addr.Page4K, alloc, cfg)
	if err != nil {
		return nil, err
	}
	p.tables[addr.Page4K] = t
	return p, nil
}

// Table returns the per-page-size table, or nil if unused so far.
func (p *PageTable) Table(s addr.PageSize) *Table { return p.tables[s] }

// table returns the per-page-size table, creating it on first use.
func (p *PageTable) table(s addr.PageSize) (*Table, error) {
	if p.tables[s] == nil {
		t, err := NewTable(s, p.alloc, p.cfg)
		if err != nil {
			return nil, err
		}
		p.tables[s] = t
	}
	return p.tables[s], nil
}

// Map installs the translation vpn→ppn at the given page size.
func (p *PageTable) Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error) {
	t, err := p.table(s)
	if err != nil {
		return 0, err
	}
	key := pt.ClusterKey(vpn)
	sub := pt.SubIndex(vpn)
	if id, ok := t.Lookup(key); ok {
		p.slab.At(id).Set(sub, ppn)
		return 0, nil
	}
	before := t.stats.AllocCycles
	id := p.slab.Alloc()
	p.slab.At(id).Set(sub, ppn)
	if _, err := t.Insert(key, id); err != nil {
		p.slab.Free(id)
		return t.stats.AllocCycles - before, err
	}
	return t.stats.AllocCycles - before, nil
}

// Unmap removes the translation for vpn at the given page size.
func (p *PageTable) Unmap(vpn addr.VPN, s addr.PageSize) (uint64, bool) {
	t := p.tables[s]
	if t == nil {
		return 0, false
	}
	key := pt.ClusterKey(vpn)
	id, ok := t.Lookup(key)
	if !ok {
		return 0, false
	}
	c := p.slab.At(id)
	if _, valid := c.Get(pt.SubIndex(vpn)); !valid {
		return 0, false
	}
	if c.Clear(pt.SubIndex(vpn)) {
		before := t.stats.AllocCycles
		t.Delete(key)
		p.slab.Free(id)
		return t.stats.AllocCycles - before, true
	}
	return 0, true
}

// Translate resolves va against all page sizes, largest first.
//mehpt:hotpath
func (p *PageTable) Translate(va addr.VirtAddr) (pt.Translation, bool) {
	for i := int(addr.NumPageSizes) - 1; i >= 0; i-- {
		s := addr.PageSize(i)
		if ppn, ok := p.TranslateSize(va.PageNumber(s), s); ok {
			return pt.Translation{PPN: ppn, Size: s}, true
		}
	}
	return pt.Translation{}, false
}

// TranslateBatch resolves each vas[i] against all page sizes largest-first,
// writing trs[i]/oks[i] — the ECPT twin of mehpt.PageTable.TranslateBatch:
// size-major over the still-unresolved elements, with each size resolved
// through the cuckoo table's batched single-CRC sweep. Per element the
// probes match the scalar Translate exactly, so the commutative statistics
// counters total identically.
//mehpt:hotpath
func (p *PageTable) TranslateBatch(vas []addr.VirtAddr, trs []pt.Translation, oks []bool) {
	const chunk = 64
	for len(vas) > 0 {
		n := len(vas)
		if n > chunk {
			n = chunk
		}
		for i := range oks[:n] {
			oks[i] = false
		}
		for si := int(addr.NumPageSizes) - 1; si >= 0; si-- {
			s := addr.PageSize(si)
			t := p.tables[s]
			if t == nil {
				continue
			}
			var keys, vals [chunk]uint64
			var hitWay [chunk]int
			var hit [chunk]bool
			var pos [chunk]int
			m := 0
			for i, va := range vas[:n] {
				if oks[i] {
					continue
				}
				keys[m] = pt.ClusterKey(va.PageNumber(s))
				pos[m] = i
				m++
			}
			if m == 0 {
				break
			}
			t.LookupBatch(keys[:m], vals[:m], hitWay[:m], hit[:m])
			for j := 0; j < m; j++ {
				if !hit[j] {
					continue
				}
				i := pos[j]
				vpn := vas[i].PageNumber(s)
				if ppn, valid := p.slab.At(vals[j]).Get(pt.SubIndex(vpn)); valid {
					trs[i] = pt.Translation{PPN: ppn, Size: s}
					oks[i] = true
				}
			}
		}
		vas = vas[n:]
		trs = trs[n:]
		oks = oks[n:]
	}
}

// TranslateSize resolves vpn at exactly the given page size.
//mehpt:hotpath
func (p *PageTable) TranslateSize(vpn addr.VPN, s addr.PageSize) (addr.PPN, bool) {
	if p.tables[s] == nil {
		return 0, false
	}
	id, ok := p.tables[s].Lookup(pt.ClusterKey(vpn))
	if !ok {
		return 0, false
	}
	return p.slab.At(id).Get(pt.SubIndex(vpn))
}

// ProbeAddrs returns the physical addresses of the W parallel way probes
// for va at page size s.
func (p *PageTable) ProbeAddrs(va addr.VirtAddr, s addr.PageSize) []addr.PhysAddr {
	t := p.tables[s]
	if t == nil {
		return nil
	}
	key := pt.ClusterKey(va.PageNumber(s))
	pas := make([]addr.PhysAddr, t.ways)
	for i := 0; i < t.ways; i++ {
		pas[i] = t.ProbeAddr(i, key)
	}
	return pas
}

// WayProbeAddr returns the physical address of one way's probe slot.
//mehpt:hotpath
func (p *PageTable) WayProbeAddr(va addr.VirtAddr, s addr.PageSize, wayIdx int) addr.PhysAddr {
	return p.tables[s].ProbeAddr(wayIdx, pt.ClusterKey(va.PageNumber(s)))
}

// Walk resolves va and returns the physical address of the winning way's
// probe slot — the fused equivalent of Translate + WayOf + WayProbeAddr the
// MMU's miss path uses, with the identical per-table statistics footprint
// (one Lookup per instantiated size table until the hit).
//mehpt:hotpath
func (p *PageTable) Walk(va addr.VirtAddr) (pt.Translation, addr.PhysAddr, bool) {
	for i := int(addr.NumPageSizes) - 1; i >= 0; i-- {
		s := addr.PageSize(i)
		t := p.tables[s]
		if t == nil {
			continue
		}
		vpn := va.PageNumber(s)
		key := pt.ClusterKey(vpn)
		id, way, ok := t.LookupWay(key)
		if !ok {
			continue
		}
		ppn, valid := p.slab.At(id).Get(pt.SubIndex(vpn))
		if !valid {
			continue
		}
		return pt.Translation{PPN: ppn, Size: s}, t.ProbeAddr(way, key), true
	}
	return pt.Translation{}, 0, false
}

// WayOf returns the way index holding va's cluster at page size s.
//mehpt:hotpath
func (p *PageTable) WayOf(va addr.VirtAddr, s addr.PageSize) (int, bool) {
	if p.tables[s] == nil {
		return 0, false
	}
	return p.tables[s].WayOf(pt.ClusterKey(va.PageNumber(s)))
}

// FootprintBytes returns the total page-table memory currently held.
func (p *PageTable) FootprintBytes() uint64 {
	var b uint64
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			b += t.FootprintBytes()
		}
	}
	return b
}

// PeakFootprintBytes returns the high-water mark of page-table memory.
func (p *PageTable) PeakFootprintBytes() uint64 {
	var b uint64
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			b += t.ScalarStats().PeakFootprintBytes
		}
	}
	return b
}

// MaxContiguousAlloc returns the largest contiguous allocation requested —
// for ECPT this is the largest way ever allocated (Table I column 4).
func (p *PageTable) MaxContiguousAlloc() uint64 {
	var m uint64
	for _, s := range addr.Sizes() {
		t := p.tables[s]
		if t == nil {
			continue
		}
		if c := t.ScalarStats().MaxContiguousAlloc; c > m {
			m = c
		}
	}
	return m
}

// Moves returns the total number of entries migrated between tables during
// gradual resizes, across all page sizes.
func (p *PageTable) Moves() uint64 {
	var m uint64
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			m += t.ScalarStats().Moves
		}
	}
	return m
}

// AllocCycles returns total cycles spent on physical allocation.
func (p *PageTable) AllocCycles() uint64 {
	var c uint64
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			c += t.ScalarStats().AllocCycles
		}
	}
	return c
}

// Free releases all physical memory held by the page table.
func (p *PageTable) Free() {
	for _, s := range addr.Sizes() {
		if t := p.tables[s]; t != nil {
			t.Free()
		}
	}
}
