package ecpt

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/phys"
	"repro/internal/pt"
)

func newPT(t *testing.T, memBytes uint64) (*PageTable, *phys.Memory) {
	t.Helper()
	mem := phys.NewMemory(memBytes)
	alloc := phys.NewAllocator(mem, 0)
	cfg := DefaultConfig(19)
	cfg.Rand = rand.New(rand.NewSource(4))
	p, err := NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, mem
}

func TestMapTranslateUnmap(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	vpn := addr.VPN(0xABCDE)
	if _, err := p.Map(vpn, addr.Page4K, 321); err != nil {
		t.Fatal(err)
	}
	if ppn, ok := p.TranslateSize(vpn, addr.Page4K); !ok || ppn != 321 {
		t.Fatalf("TranslateSize = %d,%v", ppn, ok)
	}
	tr, ok := p.Translate(vpn.Addr(addr.Page4K) + 5)
	if !ok || tr.PPN != 321 {
		t.Fatalf("Translate = %+v,%v", tr, ok)
	}
	if _, ok := p.Unmap(vpn, addr.Page4K); !ok {
		t.Fatal("Unmap failed")
	}
	if _, ok := p.TranslateSize(vpn, addr.Page4K); ok {
		t.Fatal("translation survived unmap")
	}
}

// TestContiguousWayGrowth: growing the table allocates progressively larger
// *contiguous* ways — the paper's motivating problem.
func TestContiguousWayGrowth(t *testing.T) {
	p, _ := newPT(t, 2*addr.GB)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 60000; i++ {
		if _, err := p.Map(addr.VPN(rng.Uint64()&0xFFFFFF), addr.Page4K, addr.PPN(i)); err != nil {
			t.Fatal(err)
		}
	}
	tab := p.Table(addr.Page4K)
	if tab.Stats().Upsizes == 0 {
		t.Fatal("no upsizes")
	}
	// Max contiguous allocation equals the largest way ever allocated.
	if got, want := tab.Stats().MaxContiguousAlloc, tab.WayBytes(); got < want {
		t.Errorf("MaxContiguousAlloc = %d < final way %d", got, want)
	}
	if tab.Stats().MaxContiguousAlloc < 64*addr.KB {
		t.Errorf("way stayed tiny: %d", tab.Stats().MaxContiguousAlloc)
	}
}

// TestPeakIncludesOldAndNew: mid-resize, the footprint covers both tables
// (the 1.5x overhead in-place resizing eliminates).
func TestPeakIncludesOldAndNew(t *testing.T) {
	p, _ := newPT(t, 2*addr.GB)
	tab := p.Table(addr.Page4K)
	rng := rand.New(rand.NewSource(61))
	i := 0
	for !tab.Resizing() {
		p.Map(addr.VPN(rng.Uint64()&0xFFFFFF), addr.Page4K, addr.PPN(i))
		i++
		if i > 200000 {
			t.Fatal("never caught a resize in flight")
		}
	}
	cur := tab.FootprintBytes()
	steady := tab.WayBytes() * 3
	if cur <= steady {
		t.Errorf("mid-resize footprint %d not above steady %d", cur, steady)
	}
	tab.DrainResize()
	if tab.FootprintBytes() >= cur {
		t.Errorf("footprint did not drop after resize completed")
	}
}

// TestAllocationFailureUnderFragmentation reproduces the paper's headline
// failure: above 0.7 FMFI a large contiguous way cannot be allocated and
// the application cannot make progress.
func TestAllocationFailureUnderFragmentation(t *testing.T) {
	mem := phys.NewMemory(1 * addr.GB)
	fr := phys.NewFragmenter(mem)
	rng := rand.New(rand.NewSource(13))
	// FMFI 1.0: nothing above 4KB coalesces.
	if err := fr.Fragment(1.0, 0.3, phys.OrderFor(64*addr.KB), rng); err != nil {
		t.Fatal(err)
	}
	mem.ResetStats()
	alloc := phys.NewAllocator(mem, 0.9)
	cfg := DefaultConfig(19)
	cfg.Rand = rand.New(rand.NewSource(4))
	// Even the initial 8KB ways cannot be allocated contiguously.
	if _, err := NewPageTable(alloc, cfg); err == nil {
		t.Fatal("ECPT creation succeeded on fully-shredded memory")
	}
}

func TestUpsizeFailureKeepsRunningUntilFull(t *testing.T) {
	mem := phys.NewMemory(4 * addr.GB)
	fr := phys.NewFragmenter(mem)
	rng := rand.New(rand.NewSource(17))
	// Leave 64KB regions intact but nothing larger: ways can grow to 64KB
	// and then upsizes start failing.
	if err := fr.Fragment(1.0, 0.4, phys.OrderFor(512*addr.KB), rng); err != nil {
		t.Fatal(err)
	}
	// Manually free a few 64KB-aligned runs so small ways still allocate.
	mem.ResetStats()
	alloc := phys.NewAllocator(mem, 0.8)
	cfg := DefaultConfig(23)
	cfg.Rand = rand.New(rand.NewSource(40))
	p, err := NewPageTable(alloc, cfg)
	if err != nil {
		t.Skipf("not enough contiguity even for initial tables: %v", err)
	}
	var sawErr bool
	for i := 0; i < 300000; i++ {
		if _, err := p.Map(addr.VPN(rng.Uint64()&0xFFFFFF), addr.Page4K, addr.PPN(i)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("table kept growing despite fragmentation caps")
	}
	if p.Table(addr.Page4K).Stats().FailedAllocs == 0 {
		t.Error("no failed allocations recorded")
	}
}

func TestModelEquivalence(t *testing.T) {
	p, _ := newPT(t, 2*addr.GB)
	model := make(map[addr.VPN]addr.PPN)
	rng := rand.New(rand.NewSource(51))
	for step := 0; step < 30000; step++ {
		vpn := addr.VPN(rng.Uint64() & 0x7FFFF)
		switch rng.Intn(3) {
		case 0, 1:
			ppn := addr.PPN(rng.Uint64() & 0xFFFFFF)
			if _, err := p.Map(vpn, addr.Page4K, ppn); err != nil {
				t.Fatal(err)
			}
			model[vpn] = ppn
		case 2:
			_, gotOK := p.Unmap(vpn, addr.Page4K)
			_, wantOK := model[vpn]
			if gotOK != wantOK {
				t.Fatalf("Unmap(%d) = %v, want %v", vpn, gotOK, wantOK)
			}
			delete(model, vpn)
		}
	}
	for vpn, want := range model {
		got, ok := p.TranslateSize(vpn, addr.Page4K)
		if !ok || got != want {
			t.Fatalf("TranslateSize(%d) = %d,%v want %d", vpn, got, ok, want)
		}
	}
}

func TestProbeAddrsStable(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	va := addr.VirtAddr(0x5555_0000)
	a := p.ProbeAddrs(va, addr.Page4K)
	b := p.ProbeAddrs(va, addr.Page4K)
	if len(a) != 3 {
		t.Fatalf("probe count = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("probe address unstable for way %d", i)
		}
	}
}

func TestWayOfConsistentWithProbe(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		vpn := addr.VPN(rng.Uint64() & 0xFFFFF)
		p.Map(vpn, addr.Page4K, addr.PPN(i))
		va := vpn.Addr(addr.Page4K)
		w, ok := p.WayOf(va, addr.Page4K)
		if !ok {
			t.Fatalf("WayOf missed vpn %d just mapped", vpn)
		}
		if pa := p.WayProbeAddr(va, addr.Page4K, w); pa == 0 && i > 0 {
			// Physical frame 0 is legitimate only once; treat repeated
			// zeros as suspicious.
			t.Logf("probe at physical 0 for vpn %d", vpn)
		}
	}
}

func TestFreeReturnsMemory(t *testing.T) {
	mem := phys.NewMemory(2 * addr.GB)
	alloc := phys.NewAllocator(mem, 0)
	cfg := DefaultConfig(19)
	cfg.Rand = rand.New(rand.NewSource(4))
	p, err := NewPageTable(alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		p.Map(addr.VPN(rng.Uint64()&0xFFFFF), addr.Page4K, addr.PPN(i))
	}
	p.Free()
	if mem.FreeBytes() != mem.TotalBytes() {
		t.Errorf("leak: %d of %d free", mem.FreeBytes(), mem.TotalBytes())
	}
}

func TestClusterSharing(t *testing.T) {
	p, _ := newPT(t, 1*addr.GB)
	base := addr.VPN(0x2000)
	for i := 0; i < pt.ClusterSpan; i++ {
		p.Map(base+addr.VPN(i), addr.Page4K, addr.PPN(i))
	}
	if n := p.Table(addr.Page4K).Len(); n != 1 {
		t.Errorf("cluster entries = %d, want 1", n)
	}
}
