package ecpt

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cuckoo"
	"repro/internal/phys"
	"repro/internal/pt"
	"repro/internal/stats"
)

// StatsState is the serializable form of Stats (the Reinsertions histogram
// has unexported fields, so it crosses the checkpoint as HistogramState).
type StatsState struct {
	MaxContiguousAlloc uint64
	AllocCycles        uint64
	PeakFootprintBytes uint64
	FailedAllocs       uint64
	Reinsertions       stats.HistogramState
	Upsizes            uint64
	Downsizes          uint64
	Moves              uint64
}

// GroupState is one generation of contiguously-allocated ways.
type GroupState struct {
	EntriesPerWay uint64
	Bases         []addr.PPN
}

// TableState is the serializable form of one per-page-size ECPT.
type TableState struct {
	Size   addr.PageSize
	Ways   int
	Groups []GroupState
	Cuckoo cuckoo.TableState
	Stats  StatsState
}

// State returns a deep copy of the table.
func (t *Table) State() TableState {
	st := TableState{
		Size:   t.size,
		Ways:   t.ways,
		Groups: make([]GroupState, len(t.groups)),
		Cuckoo: t.tb.State(),
		Stats: StatsState{
			MaxContiguousAlloc: t.stats.MaxContiguousAlloc,
			AllocCycles:        t.stats.AllocCycles,
			PeakFootprintBytes: t.stats.PeakFootprintBytes,
			FailedAllocs:       t.stats.FailedAllocs,
			Reinsertions:       t.stats.Reinsertions.State(),
			Upsizes:            t.stats.Upsizes,
			Downsizes:          t.stats.Downsizes,
			Moves:              t.stats.Moves,
		},
	}
	for i, g := range t.groups {
		st.Groups[i] = GroupState{
			EntriesPerWay: g.entriesPerWay,
			Bases:         append([]addr.PPN(nil), g.bases...),
		}
	}
	return st
}

// RestoreTable rebuilds one per-page-size ECPT from recorded state without
// allocating: the group bases are frames the restored allocator already
// shows as owned. cfg must carry the captured table's HashSeed/Ways and a
// Rand repositioned to its captured draw count.
func RestoreTable(st TableState, alloc phys.Source, cfg Config) *Table {
	t := &Table{size: st.Size, ways: st.Ways, alloc: alloc}
	t.stats = Stats{
		MaxContiguousAlloc: st.Stats.MaxContiguousAlloc,
		AllocCycles:        st.Stats.AllocCycles,
		PeakFootprintBytes: st.Stats.PeakFootprintBytes,
		FailedAllocs:       st.Stats.FailedAllocs,
		Upsizes:            st.Stats.Upsizes,
		Downsizes:          st.Stats.Downsizes,
		Moves:              st.Stats.Moves,
	}
	t.stats.Reinsertions.Restore(st.Stats.Reinsertions)
	t.groups = make([]group, len(st.Groups))
	for i, g := range st.Groups {
		t.groups[i] = group{
			entriesPerWay: g.EntriesPerWay,
			bases:         append([]addr.PPN(nil), g.Bases...),
		}
	}
	ccfg := cuckoo.Config{
		Ways:           cfg.Ways,
		InitialEntries: cfg.InitialEntries,
		UpsizeAt:       cfg.UpsizeAt,
		DownsizeAt:     cfg.DownsizeAt,
		MaxKicks:       cfg.MaxKicks,
		RehashBatch:    cfg.RehashBatch,
		HashSeed:       cfg.HashSeed + uint64(st.Size)*0x2000,
		Rand:           cfg.Rand, //mehpt:allow randowner -- restore path: the table's own counted source, repositioned by the checkpoint, not a shared generator
		Hooks: cuckoo.Hooks{
			AllocWays:      t.allocWays,
			FreeWays:       t.freeWays,
			OnReinsertions: func(n int) { t.stats.Reinsertions.Add(n) },
			OnMove:         func() { t.stats.Moves++ },
		},
	}
	t.tb = cuckoo.RestoreTable(ccfg, st.Cuckoo)
	return t
}

// PageTableState is the serializable form of a process's complete ECPT.
// Tables holds only the live per-size tables (each self-identifies via its
// Size field): gob refuses nil elements inside arrays, so a sparse
// [NumPageSizes]*TableState cannot cross the checkpoint.
type PageTableState struct {
	Tables []TableState
	Slab   pt.SlabState
}

// State returns a deep copy of the page table.
func (p *PageTable) State() PageTableState {
	st := PageTableState{Slab: p.slab.State()}
	for _, t := range p.tables {
		if t != nil {
			st.Tables = append(st.Tables, t.State())
		}
	}
	return st
}

// RestorePageTable rebuilds a process's ECPT from recorded state without
// allocating; see RestoreTable for the cfg requirements.
func RestorePageTable(alloc phys.Source, cfg Config, st PageTableState) *PageTable {
	p := &PageTable{alloc: alloc, cfg: cfg}
	p.slab.Restore(st.Slab)
	for _, ts := range st.Tables {
		if ts.Size < addr.NumPageSizes {
			p.tables[ts.Size] = RestoreTable(ts, alloc, cfg)
		}
	}
	return p
}

// VisitOwnedFrames reports every physical block the page table owns — each
// live group's contiguous ways — as (base PPN, bytes) pairs.
func (p *PageTable) VisitOwnedFrames(f func(base addr.PPN, bytes uint64)) {
	for _, t := range p.tables {
		if t == nil {
			continue
		}
		for _, g := range t.groups {
			wayBytes := g.entriesPerWay * pt.EntryBytes
			for _, b := range g.bases {
				f(b, wayBytes)
			}
		}
	}
}

// VisitMappings calls f for every live translation (vpn, size, ppn).
func (p *PageTable) VisitMappings(f func(vpn addr.VPN, s addr.PageSize, ppn addr.PPN)) {
	for si, t := range p.tables {
		if t == nil {
			continue
		}
		size := addr.PageSize(si)
		t.tb.Range(func(key, val uint64) bool {
			c := p.slab.At(val)
			base := pt.BaseVPN(key)
			for sub := uint(0); sub < pt.ClusterSpan; sub++ {
				if ppn, ok := c.Get(sub); ok {
					f(base+addr.VPN(sub), size, ppn)
				}
			}
			return true
		})
	}
}

// CheckTables runs the structural consistency checks the scrubber reports:
// each table's group list must back its cuckoo geometry (one group
// steady-state, two mid-resize), with group sizes matching the way sizes.
func (p *PageTable) CheckTables() []string {
	var bad []string
	for _, t := range p.tables {
		if t == nil {
			continue
		}
		want := 1
		if t.tb.Resizing() {
			want = 2
		}
		if len(t.groups) != want {
			bad = append(bad, fmt.Sprintf("size %v: %d way groups, resize state wants %d", t.size, len(t.groups), want))
			continue
		}
		last := t.groups[len(t.groups)-1]
		if last.entriesPerWay != t.tb.EntriesPerWay() {
			bad = append(bad, fmt.Sprintf("size %v: steady group backs %d entries/way, table is at %d", t.size, last.entriesPerWay, t.tb.EntriesPerWay()))
		}
		for gi, g := range t.groups {
			if len(g.bases) != t.ways {
				bad = append(bad, fmt.Sprintf("size %v group %d: %d way bases for %d ways", t.size, gi, len(g.bases), t.ways))
			}
		}
	}
	return bad
}
