// Package ecpt implements the baseline page-table organization the paper
// compares against: Elastic Cuckoo Page Tables (Skarlatos et al.,
// ASPLOS'20). Each page size has a W-way elastic cuckoo table whose ways
// are allocated in *contiguous* physical memory and which resizes out of
// place, all ways together — exactly the properties ME-HPT removes.
package ecpt

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/cuckoo"
	"repro/internal/phys"
	"repro/internal/pt"
	"repro/internal/stats"
)

// Config parameterizes an ECPT.
type Config struct {
	Ways           int
	InitialEntries uint64  // 128 → 8KB ways (Table III)
	UpsizeAt       float64 // 0.6
	DownsizeAt     float64 // 0.2
	MaxKicks       int
	RehashBatch    int
	HashSeed       uint64
	Rand           *rand.Rand
}

// DefaultConfig returns the paper's Table III baseline configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Ways:           3,
		InitialEntries: 128,
		UpsizeAt:       0.6,
		DownsizeAt:     0.2,
		MaxKicks:       32,
		RehashBatch:    1,
		HashSeed:       seed,
	}
}

// Stats aggregates per-table behaviour.
type Stats struct {
	MaxContiguousAlloc uint64
	AllocCycles        uint64
	PeakFootprintBytes uint64
	FailedAllocs       uint64
	Reinsertions       stats.Histogram
	Upsizes            uint64
	Downsizes          uint64
	Moves              uint64
}

// group is one generation of contiguously-allocated ways.
type group struct {
	entriesPerWay uint64
	bases         []addr.PPN
}

// Table is one per-page-size ECPT.
type Table struct {
	size addr.PageSize
	ways int
	tb   *cuckoo.Table
	//mehpt:transient -- RestoreTable reattaches the separately restored physical allocator
	alloc phys.Source
	// groups holds live way allocations oldest-first: during a resize the
	// first group backs the old table and the last the new one.
	groups []group
	stats  Stats
}

// NewTable creates an ECPT for one page size with contiguous initial ways.
func NewTable(size addr.PageSize, alloc phys.Source, cfg Config) (*Table, error) {
	t := &Table{size: size, ways: cfg.Ways, alloc: alloc}
	ccfg := cuckoo.Config{
		Ways:           cfg.Ways,
		InitialEntries: cfg.InitialEntries,
		UpsizeAt:       cfg.UpsizeAt,
		DownsizeAt:     cfg.DownsizeAt,
		MaxKicks:       cfg.MaxKicks,
		RehashBatch:    cfg.RehashBatch,
		HashSeed:       cfg.HashSeed + uint64(size)*0x2000,
		Rand:           cfg.Rand,
		Hooks: cuckoo.Hooks{
			AllocWays:      t.allocWays,
			FreeWays:       t.freeWays,
			OnReinsertions: func(n int) { t.stats.Reinsertions.Add(n) },
			OnMove:         func() { t.stats.Moves++ },
		},
	}
	// cuckoo.Build invokes AllocWays for the initial ways; under memory
	// pressure that can fail, and the error chain (down to
	// phys.ErrOutOfMemory) is surfaced to the caller.
	tb, err := cuckoo.Build(ccfg)
	if err != nil {
		return nil, fmt.Errorf("ecpt: %w", err)
	}
	t.tb = tb
	return t, nil
}

// allocWays allocates one contiguous region per way — the requirement that
// motivates the paper. Each way of entriesPerWay slots is entriesPerWay ×
// 64B of physically contiguous memory.
func (t *Table) allocWays(entriesPerWay uint64) error {
	wayBytes := entriesPerWay * pt.EntryBytes
	g := group{entriesPerWay: entriesPerWay}
	for i := 0; i < t.ways; i++ {
		ppn, cycles, err := t.alloc.Alloc(wayBytes)
		t.stats.AllocCycles += cycles
		if err != nil {
			for _, b := range g.bases {
				t.alloc.Free(b, wayBytes)
			}
			t.stats.FailedAllocs++
			return err
		}
		g.bases = append(g.bases, ppn)
	}
	if wayBytes > t.stats.MaxContiguousAlloc {
		t.stats.MaxContiguousAlloc = wayBytes
	}
	t.groups = append(t.groups, g)
	t.notePeak()
	return nil
}

func (t *Table) freeWays(entriesPerWay uint64) {
	wayBytes := entriesPerWay * pt.EntryBytes
	for gi, g := range t.groups {
		if g.entriesPerWay == entriesPerWay {
			for _, b := range g.bases {
				t.alloc.Free(b, wayBytes)
			}
			t.groups = append(t.groups[:gi], t.groups[gi+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("ecpt: freeWays(%d): no matching allocation", entriesPerWay))
}

func (t *Table) notePeak() {
	if f := t.FootprintBytes(); f > t.stats.PeakFootprintBytes {
		t.stats.PeakFootprintBytes = f
	}
}

// FootprintBytes returns the physical page-table memory currently held —
// old and new tables both count while a gradual resize is in flight, which
// is the memory overhead in-place resizing eliminates.
func (t *Table) FootprintBytes() uint64 {
	var b uint64
	for _, g := range t.groups {
		b += g.entriesPerWay * pt.EntryBytes * uint64(len(g.bases))
	}
	return b
}

// ScalarStats returns the accumulated counters without deep-copying the
// reinsertion histogram (left empty in the copy). The per-run result
// aggregation reads only scalar fields, and the histogram copy was its
// last allocation.
func (t *Table) ScalarStats() Stats {
	s := t.stats
	s.Reinsertions = stats.Histogram{}
	cs := t.tb.Stats()
	s.Upsizes = cs.Upsizes
	s.Downsizes = cs.Downsizes
	return s
}

// Stats returns a copy of the accumulated statistics, folding in the
// underlying cuckoo table's counters.
func (t *Table) Stats() Stats {
	s := t.stats
	s.Reinsertions = stats.Histogram{}
	s.Reinsertions.Merge(&t.stats.Reinsertions)
	cs := t.tb.Stats()
	s.Upsizes = cs.Upsizes
	s.Downsizes = cs.Downsizes
	return s
}

// Len returns the number of clustered entries stored.
func (t *Table) Len() uint64 { return t.tb.Len() }

// EntriesPerWay returns the steady-state per-way slot count.
func (t *Table) EntriesPerWay() uint64 { return t.tb.EntriesPerWay() }

// WayBytes returns the contiguous size of one way.
func (t *Table) WayBytes() uint64 { return t.tb.EntriesPerWay() * pt.EntryBytes }

// Resizing reports whether a gradual resize is in flight.
func (t *Table) Resizing() bool { return t.tb.Resizing() }

// DrainResize completes any in-flight resize. On a migration failure the
// resize stays in flight and the table remains valid.
func (t *Table) DrainResize() error { return t.tb.DrainResize() }

// Insert stores key→val.
func (t *Table) Insert(key, val uint64) (int, error) { return t.tb.Insert(key, val) }

// Lookup returns the value for key.
//mehpt:hotpath
func (t *Table) Lookup(key uint64) (uint64, bool) { return t.tb.Lookup(key) }

// LookupWay is Lookup additionally reporting the way that hit, with the
// same statistics footprint.
func (t *Table) LookupWay(key uint64) (uint64, int, bool) { return t.tb.LookupWay(key) }

// LookupBatch resolves len(keys) lookups through the cuckoo table's
// software-pipelined, single-CRC batch sweep; bit-identical results and
// statistics to sequential Lookup calls.
//mehpt:hotpath
func (t *Table) LookupBatch(keys, vals []uint64, ways []int, oks []bool) {
	t.tb.LookupBatch(keys, vals, ways, oks)
}

// Delete removes key.
func (t *Table) Delete(key uint64) bool { return t.tb.Delete(key) }

// WayOf returns the way holding key.
func (t *Table) WayOf(key uint64) (int, bool) { return t.tb.WayOf(key) }

// ProbeAddr returns the physical address way i's hardware probe for key
// touches, resolving through the rehash pointers to old or new ways.
func (t *Table) ProbeAddr(i int, key uint64) addr.PhysAddr {
	inNext, idx := t.tb.Probe(i, key)
	gi := 0
	if inNext {
		gi = len(t.groups) - 1
	}
	g := t.groups[gi]
	return g.bases[i].Addr(addr.Page4K) + addr.PhysAddr(idx*pt.EntryBytes)
}

// Free releases all physical memory (process teardown). A drain failure is
// ignored: every live group is freed below regardless of resize state, so
// teardown never leaks frames.
func (t *Table) Free() {
	_ = t.tb.DrainResize() //mehpt:allow errwrap -- teardown: every live group is freed below regardless
	for _, g := range t.groups {
		wayBytes := g.entriesPerWay * pt.EntryBytes
		for _, b := range g.bases {
			t.alloc.Free(b, wayBytes)
		}
	}
	t.groups = nil
}
