// Package scrub checks cross-layer invariants of a multi-tenant machine:
// that the buddy allocator's free accounting matches a walk of its free
// lists, that no two owners (tenant page tables, mapped data pages, the
// shared segment) claim the same physical frame, that every live mapping
// resolves to an allocated in-pool frame, that each page-table
// organization's internal structure is consistent (occupancy counters,
// resize bits, chunk backing, tree accounting), and that every
// TLB-resident translation is still backed by a live table entry.
//
// The scrubber is a read-only diagnostics pass over a quiescent machine —
// run it at a round boundary, after a restore, or after a chaos recovery.
// It reports violations; it never repairs. A healthy machine, including
// one freshly recovered from a checkpoint, must scrub clean, and the
// seeded-corruption tests prove each violation class actually fires when
// its invariant is broken.
//
// scrub imports tenant (and reads through its inspection surface), never
// the other way around.
package scrub

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/phys"
	"repro/internal/tenant"
)

// Violation classes, one per invariant family.
const (
	// ClassBuddy: a stripe's free-list walk disagrees with its counters —
	// misaligned or out-of-range free blocks, overlapping free blocks, or
	// free-byte/block-count accounting drift.
	ClassBuddy = "buddy-accounting"
	// ClassOwnership: two owners claim the same physical frame.
	ClassOwnership = "frame-ownership"
	// ClassMapping: a live translation points at a frame the allocator
	// shows free, or outside the pool entirely.
	ClassMapping = "mapping-resolution"
	// ClassTable: a page-table organization's internal structure is
	// inconsistent (occupancy, resize bits, chunk backing, tree nodes).
	ClassTable = "table-structure"
	// ClassTLB: a TLB-resident translation no longer resolves through the
	// tables.
	ClassTLB = "tlb-coherence"
)

// Violation is one invariant breach.
type Violation struct {
	Class string `json:"class"`
	Msg   string `json:"msg"`
}

func (v Violation) String() string { return v.Class + ": " + v.Msg }

// Machine scrubs a quiescent machine (call between rounds, never mid-step)
// and returns every violation found, empty for a healthy machine.
func Machine(m *tenant.Machine) []Violation {
	var out []Violation
	free := checkBuddy(m.Pool(), &out)
	checkOwnership(m, free, &out)
	for _, msg := range m.CheckTables() {
		out = append(out, Violation{ClassTable, msg})
	}
	for _, msg := range m.CheckShardTLBs() {
		out = append(out, Violation{ClassTLB, msg})
	}
	return out
}

// freeSet answers "is this global frame inside a live free block" without
// materializing a per-frame set (the default pool is a million frames).
// Free blocks are keyed by global head frame; buddy alignment makes
// containment an ancestor walk over at most MaxOrder+1 aligned heads.
type freeSet struct {
	stripeFrames uint64
	heads        map[uint64]int // global head frame -> order
}

func (fs *freeSet) contains(g uint64) bool {
	local := g % fs.stripeFrames
	base := g - local
	for o := 0; o <= phys.MaxOrder; o++ {
		h := local &^ (uint64(1)<<uint(o) - 1)
		if ord, ok := fs.heads[base+h]; ok && local < h+uint64(1)<<uint(ord) {
			return true
		}
	}
	return false
}

// checkBuddy walks every stripe's live free blocks, validating alignment,
// bounds, disjointness, and the free-byte and per-order block counters,
// and returns the free set for the ownership pass.
func checkBuddy(pool *phys.Striped, out *[]Violation) *freeSet {
	fs := &freeSet{stripeFrames: pool.StripeFrames(), heads: make(map[uint64]int)}
	var walkedBytes uint64
	pool.InspectStripes(func(idx int, mem *phys.Memory) {
		var stripeBytes uint64
		counts := make([]uint64, phys.MaxOrder+1)
		mem.VisitFreeBlocks(func(head uint64, order int) {
			span := uint64(1) << uint(order)
			if head%span != 0 {
				*out = append(*out, Violation{ClassBuddy,
					fmt.Sprintf("stripe %d: free block head %#x misaligned for order %d", idx, head, order)})
			}
			if head+span > mem.Frames() {
				*out = append(*out, Violation{ClassBuddy,
					fmt.Sprintf("stripe %d: free block %#x+%d runs past the stripe's %#x frames", idx, head, span, mem.Frames())})
			}
			fs.heads[uint64(idx)*fs.stripeFrames+head] = order
			stripeBytes += span * phys.FrameBytes
			counts[order]++
		})
		// Disjointness: any contained pair of free blocks is reachable by
		// walking a head's strictly-larger aligned ancestors.
		mem.VisitFreeBlocks(func(head uint64, order int) {
			for o := order + 1; o <= phys.MaxOrder; o++ {
				h := head &^ (uint64(1)<<uint(o) - 1)
				if ord, ok := fs.heads[uint64(idx)*fs.stripeFrames+h]; ok && ord >= o {
					*out = append(*out, Violation{ClassBuddy,
						fmt.Sprintf("stripe %d: free block %#x/o%d lies inside free block %#x/o%d", idx, head, order, h, ord)})
				}
			}
		})
		if stripeBytes != mem.FreeBytes() {
			*out = append(*out, Violation{ClassBuddy,
				fmt.Sprintf("stripe %d: free-list walk sums %d bytes, counter says %d", idx, stripeBytes, mem.FreeBytes())})
		}
		for o, want := range mem.FreeBlockCounts() {
			if o <= phys.MaxOrder && counts[o] != want {
				*out = append(*out, Violation{ClassBuddy,
					fmt.Sprintf("stripe %d: %d live order-%d blocks, counter says %d", idx, counts[o], o, want)})
			}
		}
		walkedBytes += stripeBytes
	})
	if walkedBytes != pool.FreeBytes() {
		*out = append(*out, Violation{ClassBuddy,
			fmt.Sprintf("pool free-byte counter %d, stripes sum to %d", pool.FreeBytes(), walkedBytes)})
	}
	return fs
}

// checkOwnership claims every frame each owner holds — tenant page-table
// blocks, mapped private data pages, shared-segment pages — and reports
// double ownership, claims on free frames, and claims beyond the pool.
func checkOwnership(m *tenant.Machine, free *freeSet, out *[]Violation) {
	pool := m.Pool()
	total := pool.StripeFrames() * uint64(pool.Stripes())
	owner := make(map[uint64]string)
	claim := func(class, who string, frame, span uint64) {
		if frame+span > total {
			*out = append(*out, Violation{class,
				fmt.Sprintf("%s claims frames %#x+%d beyond the pool's %#x frames", who, frame, span, total)})
			return
		}
		for f := frame; f < frame+span; f++ {
			if prev, taken := owner[f]; taken {
				*out = append(*out, Violation{ClassOwnership,
					fmt.Sprintf("frame %#x owned by both %s and %s", f, prev, who)})
			} else {
				owner[f] = who
			}
			if free.contains(f) {
				*out = append(*out, Violation{class,
					fmt.Sprintf("%s holds frame %#x that the allocator shows free", who, f)})
			}
		}
	}
	m.VisitPageTableFrames(func(pid int, base addr.PPN, bytes uint64) {
		claim(ClassOwnership, fmt.Sprintf("proc %d page table", pid),
			uint64(base), (bytes+phys.FrameBytes-1)/phys.FrameBytes)
	})
	m.VisitDataMappings(func(pid int, vpn addr.VPN, s addr.PageSize, ppn addr.PPN) {
		frame := uint64(ppn.Addr(s).PageNumber(addr.Page4K))
		claim(ClassMapping, fmt.Sprintf("proc %d mapping %#x (%v)", pid, uint64(vpn), s),
			frame, s.Bytes()/phys.FrameBytes)
	})
	m.VisitSharedMappings(func(page uint64, ppn addr.PPN) {
		claim(ClassMapping, fmt.Sprintf("shared page %d", page), uint64(ppn), 1)
	})
}
