package scrub_test

// Proof obligations for the scrubber: a healthy machine — fresh, mid-run,
// completed, or restored from a checkpoint — scrubs clean, and each
// violation class provably fires when its invariant is seeded broken. The
// corruptions are injected by mutating a captured MachineState and
// restoring it, exactly the surface a bad checkpoint or a memory error
// would corrupt in practice.

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/tenant"
)

func scrubConfig(org sim.Org) tenant.Config {
	return tenant.Config{
		Org:             org,
		Processes:       5,
		Cores:           2,
		Seed:            1234,
		AccessesPerProc: 3000,
		Quantum:         512,
	}
}

// steppedMachine returns a machine advanced past several rounds of table
// growth, remaps, and context switches.
func steppedMachine(t *testing.T, org sim.Org, rounds int) *tenant.Machine {
	t.Helper()
	m, err := tenant.NewMachine(scrubConfig(org))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	for i := 0; i < rounds && !m.Done(); i++ {
		if err := m.StepRound(); err != nil {
			t.Fatalf("StepRound: %v", err)
		}
	}
	return m
}

func wantClean(t *testing.T, m *tenant.Machine, when string) {
	t.Helper()
	if vs := scrub.Machine(m); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("%s: %s", when, v)
		}
		t.Fatalf("%s: %d violations on a healthy machine", when, len(vs))
	}
}

func wantClass(t *testing.T, vs []scrub.Violation, class string) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("seeded corruption not detected (want class %s)", class)
	}
	for _, v := range vs {
		if v.Class == class {
			return
		}
	}
	for _, v := range vs {
		t.Logf("got: %s", v)
	}
	t.Fatalf("no %s violation among %d findings", class, len(vs))
}

// TestCleanMachines scrubs every organization mid-run, at completion, and
// after a state round trip: zero violations each time.
func TestCleanMachines(t *testing.T) {
	for _, org := range []sim.Org{sim.MEHPT, sim.ECPT, sim.Radix} {
		t.Run(org.String(), func(t *testing.T) {
			m := steppedMachine(t, org, 3)
			wantClean(t, m, "mid-run")

			restored, err := tenant.RestoreMachine(m.Config(), m.State())
			if err != nil {
				t.Fatalf("RestoreMachine: %v", err)
			}
			wantClean(t, restored, "restored")

			for !m.Done() {
				if err := m.StepRound(); err != nil {
					t.Fatalf("StepRound: %v", err)
				}
			}
			wantClean(t, m, "completed")
		})
	}
}

// corrupt captures a stepped machine, hands the state to mutate, restores,
// and returns the scrub findings.
func corrupt(t *testing.T, org sim.Org, mutate func(m *tenant.Machine, st *tenant.MachineState)) []scrub.Violation {
	t.Helper()
	m := steppedMachine(t, org, 3)
	st := m.State()
	mutate(m, st)
	bad, err := tenant.RestoreMachine(m.Config(), st)
	if err != nil {
		t.Fatalf("RestoreMachine over corrupted state: %v", err)
	}
	return scrub.Machine(bad)
}

// TestDetectsBuddyDrift seeds a free-page counter that disagrees with the
// stripe's free lists.
func TestDetectsBuddyDrift(t *testing.T) {
	vs := corrupt(t, sim.MEHPT, func(_ *tenant.Machine, st *tenant.MachineState) {
		st.Pool.Stripes[0].FreePages += 10
	})
	wantClass(t, vs, scrub.ClassBuddy)
}

// TestDetectsOverlappingFreeBlocks seeds a free block nested inside a
// larger live free block.
func TestDetectsOverlappingFreeBlocks(t *testing.T) {
	vs := corrupt(t, sim.MEHPT, func(_ *tenant.Machine, st *tenant.MachineState) {
		sp := &st.Pool.Stripes[0]
		for head, o := range sp.HeadOrder {
			if o >= 2 {
				// Mark the block's second frame as an order-0 block of its
				// own, with the counters patched to stay self-consistent so
				// only the overlap can fire.
				sp.HeadOrder[head+1] = 0
				sp.FreeBlk[0]++
				sp.FreePages++
				return
			}
		}
		t.Skip("no order>=2 free block to nest inside")
	})
	wantClass(t, vs, scrub.ClassBuddy)
}

// TestDetectsFreedOwnedFrame seeds the allocator freeing a frame a tenant
// page table still owns — the double-free/use-after-free shape. The stripe
// counters are patched to stay self-consistent, so only the cross-layer
// ownership check can catch it.
func TestDetectsFreedOwnedFrame(t *testing.T) {
	vs := corrupt(t, sim.MEHPT, func(m *tenant.Machine, st *tenant.MachineState) {
		owned, found := uint64(0), false
		m.VisitPageTableFrames(func(pid int, base addr.PPN, bytes uint64) {
			if !found {
				owned, found = uint64(base), true
			}
		})
		if !found {
			t.Skip("no page-table frames to corrupt")
		}
		sp := &st.Pool.Stripes[owned/st.Pool.StripeFrames]
		sp.HeadOrder[owned%st.Pool.StripeFrames] = 0
		sp.FreeBlk[0]++
		sp.FreePages++
	})
	wantClass(t, vs, scrub.ClassOwnership)
}

// TestDetectsDanglingMapping seeds a translation pointing outside the pool.
func TestDetectsDanglingMapping(t *testing.T) {
	vs := corrupt(t, sim.MEHPT, func(_ *tenant.Machine, st *tenant.MachineState) {
		slab := &st.Procs[0].MEHPT.Slab
		for ci := range slab.Clusters {
			c := &slab.Clusters[ci]
			for sub := uint(0); sub < 8; sub++ {
				if c.ValidMask&(1<<sub) != 0 {
					c.PPNs[sub] = 1 << 40
					return
				}
			}
		}
		t.Skip("no live cluster to corrupt")
	})
	wantClass(t, vs, scrub.ClassMapping)
}

// TestDetectsDoubleOwnership seeds two translations resolving to the same
// physical frame.
func TestDetectsDoubleOwnership(t *testing.T) {
	vs := corrupt(t, sim.MEHPT, func(_ *tenant.Machine, st *tenant.MachineState) {
		slab := &st.Procs[0].MEHPT.Slab
		for ci := range slab.Clusters {
			c := &slab.Clusters[ci]
			var valid []uint
			for sub := uint(0); sub < 8; sub++ {
				if c.ValidMask&(1<<sub) != 0 {
					valid = append(valid, sub)
				}
			}
			if len(valid) >= 2 {
				c.PPNs[valid[1]] = c.PPNs[valid[0]]
				return
			}
		}
		t.Skip("no cluster with two live translations")
	})
	wantClass(t, vs, scrub.ClassOwnership)
}

// TestDetectsTableCorruption seeds organization-specific structural damage:
// a drifted ME-HPT occupancy counter, a truncated ECPT way group, a radix
// node count that disagrees with the tree.
func TestDetectsTableCorruption(t *testing.T) {
	t.Run("mehpt-occ", func(t *testing.T) {
		vs := corrupt(t, sim.MEHPT, func(_ *tenant.Machine, st *tenant.MachineState) {
			st.Procs[0].MEHPT.Tables[0].Ways[0].Occ++
		})
		wantClass(t, vs, scrub.ClassTable)
	})
	t.Run("ecpt-groups", func(t *testing.T) {
		vs := corrupt(t, sim.ECPT, func(_ *tenant.Machine, st *tenant.MachineState) {
			g := &st.Procs[0].ECPT.Tables[0].Groups[0]
			g.Bases = g.Bases[:len(g.Bases)-1]
		})
		wantClass(t, vs, scrub.ClassTable)
	})
	t.Run("radix-nodes", func(t *testing.T) {
		vs := corrupt(t, sim.Radix, func(_ *tenant.Machine, st *tenant.MachineState) {
			st.Procs[0].Radix.Stats.Nodes++
		})
		wantClass(t, vs, scrub.ClassTable)
	})
}
