package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the type-aware core added for the lock-discipline and
// hot-path analyzers: per-function summaries (direct allocation sites,
// blocking sites, static call edges, dynamic call sites), computed lazily
// per package and cached on the Loader, so queries cross package
// boundaries — cross-package fact export in the x/tools sense, without
// leaving the stdlib. Traversal stops at the standard library: std
// behaviour comes from the curated tables at the bottom of this file,
// never from walking std sources.

// Site is one operation of interest inside a function body.
type Site struct {
	Pos  token.Pos
	Desc string // e.g. "make([]T)", "append may grow", "chan send"
	// stmtLine is the starting line of the enclosing statement, for
	// multi-line-aware //mehpt:allow matching at the site itself.
	stmtLine int
}

// CallSite is one statically resolved call edge.
type CallSite struct {
	Site
	Callee *types.Func
}

// DynSite is a call that cannot be statically resolved: through an
// interface method or a func value.
type DynSite struct {
	Site
	Iface *types.Func // the interface method, nil for func-value calls
}

// FuncSummary describes one function's direct behaviour.
type FuncSummary struct {
	Fn       *types.Func
	Allocs   []Site
	Blocks   []Site
	Calls    []CallSite
	Dynamics []DynSite
	// Decl/File retain the summarized syntax so flow-sensitive passes
	// (the taint engine in taint.go) can re-walk the body on demand.
	Decl *ast.FuncDecl
	File *ast.File
}

// PkgFacts is everything the fact engine knows about one package: the
// function summaries plus the annotation table and the allow set (so a
// site waived where it occurs stays waived when reached from another
// package).
type PkgFacts struct {
	Pkg    *Package
	Funcs  map[*types.Func]*FuncSummary
	Ann    *Annotations
	allows *AllowSet
	// taint caches per-function taint summaries (taint.go).
	taint map[*types.Func]*TaintSummary
}

// SiteWaived reports whether the site carries an //mehpt:allow for the
// analyzer in its own package — the waiver that makes a deliberate
// allocation invisible to every hot caller at once.
func (pf *PkgFacts) SiteWaived(s Site, analyzer string) bool {
	return pf.allows.Allows(pf.Pkg.Fset, s.Pos, s.stmtLine, analyzer)
}

// Facts answers cross-package questions for one analysis run. It is handed
// to analyzers through Pass.Facts.
type Facts struct {
	loader *Loader
}

// PackageFacts returns the fact table for the package at path, computing
// and caching it on first use. Standard-library packages return nil: their
// behaviour is modelled by StdAlloc/StdBlock instead.
func (f *Facts) PackageFacts(path string) (*PkgFacts, error) {
	if f == nil || f.loader == nil {
		return nil, nil
	}
	if pf, ok := f.loader.facts[path]; ok {
		return pf, nil
	}
	pkg, err := f.loader.Load(path)
	if err != nil {
		return nil, err
	}
	if pkg.Std {
		f.loader.facts[path] = nil
		return nil, nil
	}
	pf := computeFacts(pkg)
	f.loader.facts[path] = pf
	return pf, nil
}

// SummaryOf returns fn's summary, or nil when fn is a standard-library
// function, an interface method, or otherwise has no body to summarize.
func (f *Facts) SummaryOf(fn *types.Func) *FuncSummary {
	pf := f.factsFor(fn)
	if pf == nil {
		return nil
	}
	return pf.Funcs[fn]
}

// IsHot reports whether fn (a function, method, or interface method)
// carries a //mehpt:hotpath annotation in its defining package.
func (f *Facts) IsHot(fn *types.Func) bool {
	pf := f.factsFor(fn)
	return pf != nil && pf.Ann.Hot[fn]
}

// GuardOf returns the name of the mutex field guarding v, per v's
// defining package's //mehpt:guardedby annotations.
func (f *Facts) GuardOf(v *types.Var) (string, bool) {
	pf := f.factsForVar(v)
	if pf == nil {
		return "", false
	}
	g, ok := pf.Ann.Guarded[v]
	return g, ok
}

// OrderedClassOf returns the lock class of the mutex field v, per its
// defining package's //mehpt:ordered annotations.
func (f *Facts) OrderedClassOf(v *types.Var) (string, bool) {
	pf := f.factsForVar(v)
	if pf == nil {
		return "", false
	}
	c, ok := pf.Ann.Ordered[v]
	return c, ok
}

func (f *Facts) factsForVar(v *types.Var) *PkgFacts {
	if v == nil || v.Pkg() == nil {
		return nil
	}
	pf, err := f.PackageFacts(v.Pkg().Path())
	if err != nil {
		return nil
	}
	return pf
}

// LockedPrecondition returns the lock expressions fn's //mehpt:locked
// annotations declare held on entry.
func (f *Facts) LockedPrecondition(fn *types.Func) []string {
	pf := f.factsFor(fn)
	if pf == nil {
		return nil
	}
	return pf.Ann.Locked[fn]
}

func (f *Facts) factsFor(fn *types.Func) *PkgFacts {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	pf, err := f.PackageFacts(fn.Pkg().Path())
	if err != nil {
		return nil
	}
	return pf
}

// computeFacts walks every function body in pkg and records its direct
// behaviour. Sites inside panic(...) arguments are skipped: the dying path
// may format as it pleases.
func computeFacts(pkg *Package) *PkgFacts {
	pf := &PkgFacts{
		Pkg:   pkg,
		Funcs: map[*types.Func]*FuncSummary{},
		Ann:   CollectAnnotations(pkg),
		taint: map[*types.Func]*TaintSummary{},
	}
	pf.allows, _ = pkg.loader.AllowsFor(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sum := &FuncSummary{Fn: fn, Decl: fd, File: f}
			collectSites(pkg, f, fd.Body, sum)
			pf.Funcs[fn] = sum
		}
	}
	return pf
}

// collectSites fills sum from one function body. Bodies of function
// literals are not descended into — creating the closure is itself
// recorded as an allocation site, and the literal's behaviour belongs to
// whoever calls it.
func collectSites(pkg *Package, file *ast.File, body *ast.BlockStmt, sum *FuncSummary) {
	info := pkg.Info
	site := func(pos token.Pos, desc string) Site {
		return Site{Pos: pos, Desc: desc,
			stmtLine: StmtStartLine(pkg.Fset, []*ast.File{file}, pos)}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sum.Allocs = append(sum.Allocs, site(n.Pos(), "func literal (closure allocation)"))
			return false
		case *ast.SendStmt:
			sum.Blocks = append(sum.Blocks, site(n.Pos(), "channel send"))
		case *ast.SelectStmt:
			sum.Blocks = append(sum.Blocks, site(n.Pos(), "select"))
		case *ast.GoStmt:
			sum.Allocs = append(sum.Allocs, site(n.Pos(), "go statement (goroutine allocation)"))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				sum.Blocks = append(sum.Blocks, site(n.Pos(), "channel receive"))
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info, n) {
				sum.Allocs = append(sum.Allocs, site(n.Pos(), "string concatenation"))
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				sum.Allocs = append(sum.Allocs, site(n.Pos(), "slice literal"))
			case *types.Map:
				sum.Allocs = append(sum.Allocs, site(n.Pos(), "map literal"))
			}
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				// The dying path: skip the argument subtree entirely.
				return false
			}
			collectCall(pkg, site, n, sum)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// collectCall classifies one call expression: builtin allocation, type
// conversion (boxing / string conversion), static call edge, or dynamic
// call site.
func collectCall(pkg *Package, site func(token.Pos, string) Site, call *ast.CallExpr, sum *FuncSummary) {
	info := pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				sum.Allocs = append(sum.Allocs, site(call.Pos(), "make"))
			case "new":
				sum.Allocs = append(sum.Allocs, site(call.Pos(), "new"))
			case "append":
				sum.Allocs = append(sum.Allocs, site(call.Pos(), "append may grow its backing array"))
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion, not a call.
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if boxes(from, to) {
				sum.Allocs = append(sum.Allocs, site(call.Pos(),
					fmt.Sprintf("interface boxing (%s to %s)", types.TypeString(from, nil), types.TypeString(to, nil))))
			} else if stringConv(from, to) {
				sum.Allocs = append(sum.Allocs, site(call.Pos(), "string conversion copies"))
			}
		}
		return
	}
	// Variadic ...interface{} args box their operands (the fmt shape).
	if callee := CalleeFunc(info, call); callee != nil {
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil && sig.Variadic() {
			if last := sig.Params().At(sig.Params().Len() - 1); last != nil {
				if elem, ok := last.Type().(*types.Slice); ok && types.IsInterface(elem.Elem()) {
					for i := sig.Params().Len() - 1; i < len(call.Args); i++ {
						if i < 0 || i >= len(call.Args) {
							continue
						}
						if boxes(info.TypeOf(call.Args[i]), elem.Elem()) {
							sum.Allocs = append(sum.Allocs, site(call.Args[i].Pos(), "interface boxing (variadic any argument)"))
						}
					}
				}
			}
		}
		if callee.Pkg() == nil {
			return // error.Error and friends on the universe scope
		}
		if recvIsInterface(callee) {
			sum.Dynamics = append(sum.Dynamics, DynSite{
				Site:  site(call.Pos(), "call through interface method "+callee.Pkg().Name()+"."+callee.Name()),
				Iface: callee,
			})
			return
		}
		sum.Calls = append(sum.Calls, CallSite{Site: site(call.Pos(), "call"), Callee: callee})
		return
	}
	// Not a named function or method: a func-value call.
	sum.Dynamics = append(sum.Dynamics, DynSite{
		Site: site(call.Pos(), "call through func value")})
}

// calleeFunc resolves the *types.Func a call targets, or nil for func
// values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil // field of func type
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvIsInterface reports whether fn is an interface method.
func recvIsInterface(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// boxes reports whether assigning a value of type from to type to heap-
// allocates an interface box: to is an interface, from is a concrete
// non-pointer type (pointers are stored directly in the interface word).
func boxes(from, to types.Type) bool {
	if from == nil || to == nil || !types.IsInterface(to) || types.IsInterface(from) {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// stringConv reports string<->[]byte/[]rune conversions, which copy.
func stringConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteish(to)) || (isByteish(from) && isStr(to))
}

func isString(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// ---- transitive reachability -------------------------------------------

// Finding is the result of a transitive reach query: the chain of calls
// from the queried function to the offending site.
type Finding struct {
	// Pos is a position in the queried function's own body: the offending
	// site itself when local, or the call that leads to it when the site
	// is in a callee. Diagnostics anchor here so waivers stay local.
	Pos   token.Pos
	Chain []string // function names, queried function first
	Site  Site     // the offending site (position in its own package)
	Desc  string   // rendered site description with position
}

// Reach memoizes transitive queries over the call-graph facts. One Reach
// per (analyzer, package) pass; the analyzer name scopes site waivers.
type Reach struct {
	Facts    *Facts
	Analyzer string
	// Kind selects which sites terminate a query.
	Kind ReachKind
	memo map[*types.Func]*Finding
	walk map[*types.Func]bool
}

// ReachKind selects the site class a Reach query hunts.
type ReachKind int

// Reach kinds: heap allocations, blocking operations, or unanalyzable
// dynamic calls (interface methods not annotated //mehpt:hotpath, and
// func-value calls).
const (
	ReachAlloc ReachKind = iota
	ReachBlock
	ReachDyn
)

// NewReach builds a reach engine for one analyzer pass.
func NewReach(facts *Facts, analyzer string, kind ReachKind) *Reach {
	return &Reach{Facts: facts, Analyzer: analyzer, Kind: kind,
		memo: map[*types.Func]*Finding{}, walk: map[*types.Func]bool{}}
}

// First returns the first offending site reachable from fn (including
// fn's own body), or nil. Dynamic call sites are not traversed — the
// caller decides how to treat them via the summary's Dynamics list.
// Sites waived for the analyzer in their own package are invisible.
func (r *Reach) First(fn *types.Func) *Finding {
	if f, ok := r.memo[fn]; ok {
		return f
	}
	if r.walk[fn] {
		return nil // cycle: the first visit owns the answer
	}
	r.walk[fn] = true
	defer delete(r.walk, fn)

	found := r.first(fn)
	r.memo[fn] = found
	return found
}

func (r *Reach) first(fn *types.Func) *Finding {
	pf := r.Facts.factsFor(fn)
	if pf == nil {
		// Standard library (or bodiless): consult the curated tables.
		if desc, bad := r.stdOffends(fn); bad {
			return &Finding{Chain: []string{funcName(fn)}, Desc: desc}
		}
		return nil
	}
	sum := pf.Funcs[fn]
	if sum == nil {
		return nil
	}
	for _, s := range r.sitesOf(sum) {
		if pf.SiteWaived(s, r.Analyzer) {
			continue
		}
		return &Finding{Pos: s.Pos, Chain: []string{funcName(fn)}, Site: s,
			Desc: fmt.Sprintf("%s at %s", s.Desc, relPosition(pf.Pkg.Fset.Position(s.Pos)))}
	}
	for _, c := range sum.Calls {
		// A waiver on the call site prunes everything reachable through it.
		if pf.SiteWaived(c.Site, r.Analyzer) {
			continue
		}
		if sub := r.First(c.Callee); sub != nil {
			return &Finding{
				Pos:   c.Pos,
				Chain: append([]string{funcName(fn)}, sub.Chain...),
				Site:  sub.Site,
				Desc:  sub.Desc,
			}
		}
	}
	return nil
}

// sitesOf selects the summary's site list for the reach kind. For
// ReachDyn, dynamic calls through //mehpt:hotpath-annotated interface
// methods are not offending: the annotation is a contract boundary, and
// every implementation carries its own annotation and is checked directly.
func (r *Reach) sitesOf(sum *FuncSummary) []Site {
	switch r.Kind {
	case ReachBlock:
		return sum.Blocks
	case ReachDyn:
		var sites []Site
		for _, d := range sum.Dynamics {
			if d.Iface != nil && r.Facts.IsHot(d.Iface) {
				continue
			}
			sites = append(sites, d.Site)
		}
		return sites
	default:
		return sum.Allocs
	}
}

// stdOffends consults the curated standard-library tables.
func (r *Reach) stdOffends(fn *types.Func) (string, bool) {
	switch r.Kind {
	case ReachBlock:
		return StdBlock(fn)
	case ReachDyn:
		return "", false
	default:
		return StdAlloc(fn)
	}
}

// funcName renders pkg.Func or pkg.(Type).Method.
func funcName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fn.Pkg().Name() + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func relPosition(pos token.Position) string {
	name := pos.Filename
	if i := strings.LastIndex(name, "/internal/"); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, pos.Line)
}

// ---- curated standard-library behaviour --------------------------------

// stdAllocPkgs are std packages whose exported functions are assumed to
// allocate. The table is deliberately coarse: a hot path has no business
// calling into any of these.
var stdAllocPkgs = map[string]bool{
	"fmt": true, "strings": true, "strconv": true, "sort": true,
	"errors": true, "bytes": true, "bufio": true, "io": true, "os": true,
	"log": true, "regexp": true, "reflect": true, "encoding/json": true,
	"encoding/binary": true, "encoding/hex": true, "encoding/csv": true,
	"crypto/sha256": true, "slices": true, "maps": true,
}

// stdSafePkgs never allocate on any call path the simulator uses.
var stdSafePkgs = map[string]bool{
	"math": true, "math/bits": true, "sync/atomic": true, "unsafe": true,
	"math/rand": true, "hash/crc64": true, "hash/crc32": true,
}

// StdAlloc reports whether a standard-library function is known to
// allocate. Functions in neither table are treated as silent — the curated
// list trades exhaustiveness for zero false positives on packages like
// runtime or sync.
func StdAlloc(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	if stdSafePkgs[pkg.Path()] {
		return "", false
	}
	if stdAllocPkgs[pkg.Path()] {
		return fmt.Sprintf("%s.%s allocates", pkg.Name(), fn.Name()), true
	}
	return "", false
}

// stdBlockFuncs are std functions that block the calling goroutine.
var stdBlockFuncs = map[string]bool{
	"sync.Mutex.Lock": true, "sync.RWMutex.Lock": true,
	"sync.RWMutex.RLock": true, "sync.WaitGroup.Wait": true,
	"sync.Cond.Wait": true, "sync.Once.Do": true,
	"time.Sleep": true, "time.After": true, "time.Tick": true,
}

// StdBlock reports whether a standard-library function can block.
func StdBlock(fn *types.Func) (string, bool) {
	if stdBlockFuncs[funcName(fn)] {
		return funcName(fn) + " can block", true
	}
	return "", false
}
