package analysistest_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// recordingTB captures harness output so the harness itself can be
// tested: a golden package that disagrees with its analyzer must produce
// errors for BOTH directions of the mismatch (a diagnostic nobody
// expected, and an expectation nobody satisfied).
type recordingTB struct {
	errors []string
	fatals []string
}

func (r *recordingTB) Helper() {}
func (r *recordingTB) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recordingTB) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}

// bannedAnalyzer flags every call to a function literally named "banned".
// It is the minimal analyzer the meta-test needs: syntax-only, one
// deterministic message.
var bannedAnalyzer = &analysis.Analyzer{
	Name: "banned",
	Doc:  "meta-test analyzer: flags calls to banned()",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "banned" {
					pass.Reportf(call.Pos(), "call to banned")
				}
				return true
			})
		}
		return nil
	},
}

func TestHarnessReportsBothMismatchDirections(t *testing.T) {
	rec := &recordingTB{}
	analysistest.Run(rec, bannedAnalyzer, "testdata", "repro/internal/metatest")
	if len(rec.fatals) > 0 {
		t.Fatalf("harness aborted: %v", rec.fatals)
	}
	if len(rec.errors) != 2 {
		t.Fatalf("got %d harness errors, want 2 (one unexpected, one missing):\n%s",
			len(rec.errors), strings.Join(rec.errors, "\n"))
	}
	var unexpected, missing bool
	for _, e := range rec.errors {
		if strings.Contains(e, "unexpected diagnostic") && strings.Contains(e, "call to banned") {
			unexpected = true
		}
		if strings.Contains(e, "no diagnostic matching") && strings.Contains(e, "never emitted") {
			missing = true
		}
	}
	if !unexpected {
		t.Errorf("harness did not report the unexpected diagnostic:\n%s", strings.Join(rec.errors, "\n"))
	}
	if !missing {
		t.Errorf("harness did not report the unmatched want clause:\n%s", strings.Join(rec.errors, "\n"))
	}
	// The matched pair must not surface in either direction: with exactly
	// two errors and both directions accounted for, it did not.
}
