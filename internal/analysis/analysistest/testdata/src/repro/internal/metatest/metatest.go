// Package metatest is a deliberately mismatched golden package for the
// harness meta-test: one diagnostic with no want clause, one want clause
// with no diagnostic, and one correct pair. The meta-test drives Run with
// a recording TB and asserts both failure modes are reported.
package metatest

func banned() {}

func unexpected() {
	banned() // no want clause: the harness must flag this diagnostic
}

func matched() {
	banned() // want `call to banned`
}

func missing() int {
	return 1 // want `never emitted`
}
