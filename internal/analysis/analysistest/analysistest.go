// Package analysistest runs an analyzer over golden packages under a
// testdata directory and compares its diagnostics against expectations
// written in the sources, mirroring golang.org/x/tools' analysistest:
//
//	rand.Intn(6) // want `global rand\.Intn`
//
// Each `want` clause holds one or more quoted regular expressions; every
// diagnostic on that line must match one of them and vice versa. Golden
// packages live in testdata/src/<importpath>/ (GOPATH-style), so a
// package can claim a repo-like import path (repro/internal/simx) and
// exercise path-sensitive analyzers such as detrand.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

const wantMarker = "// want "

// TB is the slice of testing.TB the harness needs. It exists so the
// harness itself can be meta-tested: the tests in this package drive Run
// with a recording TB and assert that unexpected and missing diagnostics
// are both reported.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Run loads each golden package, applies the analyzer (including the
// //mehpt:allow suppression pass), and reports mismatches on t. All
// packages are loaded through one shared loader before the analyzer's
// Finish hook (if any) runs, so whole-run audits like staleallow see the
// same multi-package view they get under the real driver. Expectations
// are checked globally: a `want` comment in any listed package may be
// satisfied by a per-package or a Finish diagnostic.
func Run(t TB, a *analysis.Analyzer, testdata string, pkgPaths ...string) {
	t.Helper()
	RunSuite(t, []*analysis.Analyzer{a}, testdata, pkgPaths...)
}

// RunSuite is Run for several analyzers at once: every listed analyzer
// runs over every golden package, and the combined diagnostics (including
// Finish-phase ones) are checked against the want expectations. Audits
// like staleallow need this — a waiver only counts as used when the
// analyzer it waives actually runs alongside.
func RunSuite(t TB, analyzers []*analysis.Analyzer, testdata string, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader(analysis.TestdataResolver(testdata + "/src"))
	var pkgs []*analysis.Package
	var diags []analysis.Diagnostic
	var expects []*expectation
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
		ds, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", path, err)
		}
		diags = append(diags, ds...)
		es, err := collectExpectations(pkg)
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", path, err)
		}
		expects = append(expects, es...)
	}
	fds, err := analysis.RunFinishers(loader, pkgs, analyzers, nil)
	if err != nil {
		t.Fatalf("running finish hooks: %v", err)
	}
	diags = append(diags, fds...)
	check(t, loader.Fset, diags, expects)
}

// expectation is one unmatched `want` regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, wantMarker)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[idx+len(wantMarker):])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want clause %q", pos, rest)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: %w", pos, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: %w", pos, err)
					}
					expects = append(expects, &expectation{pos.Filename, pos.Line, re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return expects, nil
}

func check(t TB, fset *token.FileSet, diags []analysis.Diagnostic, expects []*expectation) {
	t.Helper()
	matched := make([]bool, len(expects))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for i, e := range expects {
			if !matched[i] && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", relPos(pos), d.Analyzer, d.Message)
		}
	}
	var missing []string
	for i, e := range expects {
		if !matched[i] {
			missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("%s", m)
	}
}

func relPos(pos token.Position) string {
	if i := strings.Index(pos.Filename, "testdata/"); i >= 0 {
		return fmt.Sprintf("%s:%d:%d", pos.Filename[i:], pos.Line, pos.Column)
	}
	return pos.String()
}
