// Package lockorder enforces the discipline of ordered lock classes. A
// mutex field annotated
//
//	mu sync.Mutex //mehpt:ordered stripe
//
// belongs to a named class (the striped allocator's per-stripe locks, the
// tenant machine's shard locks). Two rules follow:
//
//  1. One at a time, in index order. Acquiring a class lock while another
//     lock of the same class is held is flagged — the striped designs in
//     this repo take one stripe, try it, release it, and move on, which
//     is deadlock-free by construction; holding two stripes at once is
//     only safe under a global order the analyzer cannot prove.
//  2. Nothing slow under the lock. While a class lock is held, the
//     function must not block (channel operations, sync waits, nested
//     locking) or allocate (directly, or through any statically
//     resolvable call chain) — the stripe critical sections are sized in
//     nanoseconds and sit on the multi-core simulation's hot path.
//
// Deliberate exceptions (the buddy allocator's free-list append under its
// stripe lock) are waived at the site with //mehpt:allow lockorder.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces //mehpt:ordered lock-class discipline.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "locks annotated //mehpt:ordered <class> are acquired one at a " +
		"time in index order and never held across blocking or allocating " +
		"operations",
	Run: run,
}

func run(pass *analysis.Pass) error {
	allocs := analysis.NewReach(pass.Facts, "lockorder", analysis.ReachAlloc)
	blocks := analysis.NewReach(pass.Facts, "lockorder", analysis.ReachBlock)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, allocs, blocks)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, allocs, blocks *analysis.Reach) {
	info := pass.TypesInfo
	// classOf accumulates the lock class of every ordered base expression
	// acquired in this function, so held-set lookups can tell class locks
	// from ordinary ones.
	classOf := map[string]string{}
	analysis.WalkLocks(info, fd.Body, nil,
		func(n ast.Node, op *analysis.LockOp, held analysis.LockState) {
			if op != nil {
				if !op.Acquire {
					return
				}
				v := analysis.FieldVar(info, op.BaseExpr)
				class, ok := pass.Facts.OrderedClassOf(v)
				if !ok {
					// Acquiring an unordered lock while a class lock is
					// held still blocks under it.
					if list := heldClasses(held, classOf); len(list) != 0 {
						pass.Reportf(op.Call.Pos(),
							"acquiring %s while holding %s: nested locking under an ordered class lock can block",
							op.Base, strings.Join(list, ", "))
					}
					return
				}
				classOf[op.Base] = class
				for _, base := range sortedHeld(held) {
					if classOf[base] == class {
						pass.Reportf(op.Call.Pos(),
							"acquiring %s while %s of lock class %q is already held; class locks are taken one at a time in canonical index order",
							op.Base, base, class)
						return
					}
				}
				return
			}
			list := heldClasses(held, classOf)
			if len(list) == 0 {
				return
			}
			locks := strings.Join(list, ", ")
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, locks, allocs, blocks)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send while holding %s", locks)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive while holding %s", locks)
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select while holding %s", locks)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement (allocates) while holding %s", locks)
			case *ast.FuncLit:
				pass.Reportf(n.Pos(), "func literal (allocates) while holding %s", locks)
			}
		})
}

// checkCall flags builtin allocations and calls that transitively block
// or allocate, made while a class lock is held.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, locks string, allocs, blocks *analysis.Reach) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s while holding %s", b.Name(), locks)
			}
			return
		}
	}
	callee := analysis.CalleeFunc(info, call)
	if callee == nil {
		return
	}
	if f := blocks.First(callee); f != nil {
		pass.Reportf(call.Pos(), "call while holding %s may block: %s (chain %s)",
			locks, f.Desc, strings.Join(f.Chain, " -> "))
		return
	}
	if f := allocs.First(callee); f != nil {
		pass.Reportf(call.Pos(), "call while holding %s allocates: %s (chain %s)",
			locks, f.Desc, strings.Join(f.Chain, " -> "))
	}
}

// heldClasses lists the held locks that belong to an ordered class, as
// "base (class)" strings, sorted for deterministic messages.
func heldClasses(held analysis.LockState, classOf map[string]string) []string {
	var list []string
	for base := range held {
		if c, ok := classOf[base]; ok {
			list = append(list, base+" (class "+c+")")
		}
	}
	sort.Strings(list)
	return list
}

func sortedHeld(held analysis.LockState) []string {
	bases := make([]string, 0, len(held))
	for b := range held {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	return bases
}
