// Package lotest seeds lockorder violations: nested same-class
// acquisition, nested unordered locking under a class lock, and blocking
// or allocating operations under a class lock.
package lotest

import (
	"fmt"
	"sync"
)

type stripe struct {
	mu sync.Mutex //mehpt:ordered stripe
	n  int
}

type pool struct {
	stripes []stripe
	scratch []int
	aux     sync.Mutex
}

// good takes one stripe at a time: lock, touch, release, move on.
func (p *pool) good(i, j int) {
	p.stripes[i].mu.Lock()
	p.stripes[i].n++
	p.stripes[i].mu.Unlock()
	p.stripes[j].mu.Lock()
	p.stripes[j].n++
	p.stripes[j].mu.Unlock()
}

// probe is the wrap-around probe idiom with unlock-and-continue.
func (p *pool) probe(n int) int {
	for i := 0; i < n; i++ {
		p.stripes[i].mu.Lock()
		if p.stripes[i].n == 0 {
			p.stripes[i].mu.Unlock()
			continue
		}
		p.stripes[i].n--
		p.stripes[i].mu.Unlock()
		return i
	}
	return -1
}

func (p *pool) nested(i, j int) {
	p.stripes[i].mu.Lock()
	p.stripes[j].mu.Lock() // want `already held; class locks are taken one at a time`
	p.stripes[j].n++
	p.stripes[i].n++
	p.stripes[j].mu.Unlock()
	p.stripes[i].mu.Unlock()
}

func (p *pool) aliased(i, j int) {
	a := &p.stripes[i]
	b := &p.stripes[j]
	a.mu.Lock()
	b.mu.Lock() // want `acquiring b\.mu while a\.mu of lock class "stripe" is already held`
	b.n++
	a.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

func (p *pool) nestedUnordered(i int) {
	p.stripes[i].mu.Lock()
	p.aux.Lock() // want `nested locking under an ordered class lock`
	p.aux.Unlock()
	p.stripes[i].mu.Unlock()
}

func block(ch chan int) int { return <-ch }

func (p *pool) blockingCall(i int, ch chan int) {
	p.stripes[i].mu.Lock()
	block(ch) // want `may block: channel receive`
	p.stripes[i].mu.Unlock()
}

func (p *pool) sendUnder(i int, ch chan int) {
	p.stripes[i].mu.Lock()
	ch <- 1 // want `channel send while holding`
	p.stripes[i].mu.Unlock()
}

func grow() []int { return make([]int, 8) }

func (p *pool) allocCall(i int) {
	p.stripes[i].mu.Lock()
	p.scratch = grow() // want `allocates: make`
	p.stripes[i].mu.Unlock()
}

func (p *pool) fmtUnder(i int) {
	p.stripes[i].mu.Lock()
	fmt.Println(p.stripes[i].n) // want `allocates`
	p.stripes[i].mu.Unlock()
}

func (p *pool) makeUnder(i int) {
	p.stripes[i].mu.Lock()
	p.scratch = make([]int, 4) // want `make while holding`
	p.stripes[i].mu.Unlock()
}

// unlockFirst releases before the slow call: clean.
func (p *pool) unlockFirst(i int) {
	p.stripes[i].mu.Lock()
	p.stripes[i].n++
	p.stripes[i].mu.Unlock()
	fmt.Println("fine")
}

// waived: the buddy-allocator pattern, a deliberate append under the
// stripe lock with a recorded reason.
func (p *pool) waived(i int) {
	p.stripes[i].mu.Lock()
	//mehpt:allow lockorder -- free-list append is bounded and amortized
	p.scratch = append(p.scratch, i)
	p.stripes[i].mu.Unlock()
}
