// Package lgtest seeds lockguard violations: //mehpt:guardedby fields
// accessed without the lock, with the wrong lock, after release, and
// fields mixing atomic with plain access.
package lgtest

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	n    uint64 //mehpt:guardedby mu
	hits uint64 // plain uint64, also touched via sync/atomic: a race
}

func (c *counter) good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) bad() {
	c.n++ // want `access to c\.n without holding c\.mu`
}

func (c *counter) afterRelease() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.n = 1 // want `without holding c\.mu`
}

// branchy is the striped-allocator idiom: the early-out branch releases
// and leaves, so the fall-through still holds the lock. Divergence
// pruning must keep this clean.
func (c *counter) branchy(ok bool) {
	c.mu.Lock()
	if !ok {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// loop is the probe loop idiom: lock, try, unlock-and-continue.
func (c *counter) loop(n int) {
	for i := 0; i < n; i++ {
		c.mu.Lock()
		if i == 3 {
			c.mu.Unlock()
			continue
		}
		c.n++
		c.mu.Unlock()
	}
}

// locked declares its precondition: callers hold c.mu.
//
//mehpt:locked c.mu
func (c *counter) locked() {
	c.n++
}

// unlocked has no such annotation, so the access is a finding.
func (c *counter) unlocked() {
	c.n-- // want `without holding c\.mu`
}

func (c *counter) bumpAtomic() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) readPlain() uint64 {
	return c.hits // want `mixed atomic and plain access`
}

type table struct {
	mu sync.RWMutex
	m  map[uint64]uint64 //mehpt:guardedby mu
}

func (t *table) read(k uint64) uint64 {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

func (t *table) badRead(k uint64) uint64 {
	return t.m[k] // want `access to t\.m without holding t\.mu`
}

// deferred release keeps the lock held for the whole body.
func (t *table) deferred(k uint64) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

type two struct {
	a sync.Mutex
	b sync.Mutex
	x int //mehpt:guardedby a
}

func (t *two) wrongLock() {
	t.b.Lock()
	t.x = 1 // want `access to t\.x without holding t\.a`
	t.b.Unlock()
}

// waived accesses are suppressed with a reasoned directive.
func (c *counter) waived() uint64 {
	//mehpt:allow lockguard -- snapshot read for stats; staleness accepted
	return c.n
}
