// Package lockguard enforces //mehpt:guardedby annotations: a struct
// field annotated
//
//	mem *Memory //mehpt:guardedby mu
//
// may only be accessed while the named sibling mutex is held on the same
// access path (an access spelled st.mem requires st.mu). Lock state is
// tracked per statement by the flow walker in the analysis core, with
// divergence pruning for the lock/check/unlock-and-continue idiom the
// striped allocator uses; //mehpt:locked annotations seed the entry state
// for helpers whose callers hold the lock.
//
// The analyzer also flags mixed atomic/plain access: a field that is
// somewhere passed by address to a sync/atomic function must be accessed
// atomically everywhere — a plain read beside atomic.AddUint64 is a data
// race the race detector only finds on the schedules CI happens to run.
// This is aimed at phys.Striped, tenant, and cuckoo's ConcurrentTable,
// where runtime -race tiers are the only current enforcement.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces //mehpt:guardedby lock discipline and coherent
// atomic-vs-plain field access.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "fields annotated //mehpt:guardedby <mutex> must be accessed with " +
		"the named lock held; fields used via sync/atomic must never also " +
		"be accessed plainly",
	Run: run,
}

func run(pass *analysis.Pass) error {
	atomicFields, atomicArgs := collectAtomicUses(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			init := analysis.LockState{}
			if fn != nil {
				for _, l := range pass.Ann.Locked[fn] {
					init[l] = analysis.LockWrite
				}
			}
			analysis.WalkLocks(pass.TypesInfo, fd.Body, init,
				func(n ast.Node, op *analysis.LockOp, held analysis.LockState) {
					if op != nil {
						return
					}
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return
					}
					v := analysis.FieldVar(pass.TypesInfo, sel)
					if v == nil {
						return
					}
					if guard, ok := pass.Facts.GuardOf(v); ok {
						lock := analysis.ExprString(sel.X) + "." + guard
						if !held.Holds(lock) {
							pass.Reportf(sel.Pos(),
								"access to %s without holding %s (field is //mehpt:guardedby %s)",
								analysis.ExprString(sel), lock, guard)
						}
					}
					if atomicFields[v] && !atomicArgs[sel.Pos()] {
						pass.Reportf(sel.Pos(),
							"mixed atomic and plain access: field %s is passed to sync/atomic elsewhere; plain access here is a data race",
							analysis.ExprString(sel))
					}
				})
		}
	}
	return nil
}

// collectAtomicUses finds fields passed by address to sync/atomic
// functions, package-wide. The second map records the positions of those
// &x.f argument selectors so the atomic call sites themselves are not
// reported as plain accesses.
func collectAtomicUses(pass *analysis.Pass) (map[*types.Var]bool, map[token.Pos]bool) {
	fields := map[*types.Var]bool{}
	args := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				target, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v := analysis.FieldVar(pass.TypesInfo, target)
				if v == nil || !v.IsField() {
					continue
				}
				fields[v] = true
				args[target.Pos()] = true
			}
			return true
		})
	}
	return fields, args
}
