package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Annotation grammar (DESIGN.md § "Mechanically enforced invariants").
// Annotations are declarations of intent the analyzers check, written as
// //mehpt: comments on the declaration they describe:
//
//	//mehpt:guardedby <field>   on a struct field: the field may only be
//	                            accessed while the named sibling mutex
//	                            field is held (analyzer lockguard).
//	//mehpt:ordered <class>     on a mutex struct field: the lock belongs
//	                            to an ordered class (e.g. the stripe
//	                            locks); nested same-class acquisition and
//	                            blocking/allocating calls under the lock
//	                            are forbidden (analyzer lockorder).
//	//mehpt:hotpath             on a function, method, or interface
//	                            method: the function is on the zero-alloc
//	                            translation pipeline; no heap allocation
//	                            may be reachable from it (analyzer
//	                            hotalloc). On an interface method it marks
//	                            a contract boundary: dynamic calls to the
//	                            method are accepted, and every
//	                            implementation is expected to carry its
//	                            own annotation.
//	//mehpt:locked <expr>       on a function or method: the named lock
//	                            (spelled as it appears in the body, e.g.
//	                            "t.mu") is held by the caller on entry.
//	//mehpt:transient -- <why>  on a struct field of a type with a
//	                            State()/Restore pair: the field is
//	                            deliberately not serialized — it is
//	                            re-derived or re-attached on restore
//	                            (config, allocator handles, hash mixers,
//	                            repositioned RNGs). The reason clause is
//	                            mandatory: statecover accepts the field as
//	                            covered only with a recorded justification.
//
// Unlike //mehpt:allow, annotations (except transient, whose reason states
// how the field is reconstituted) need no reason clause — they state a
// contract, not an exception.
const (
	guardedByPrefix = "//mehpt:guardedby"
	orderedPrefix   = "//mehpt:ordered"
	hotpathPrefix   = "//mehpt:hotpath"
	lockedPrefix    = "//mehpt:locked"
	transientPrefix = "//mehpt:transient"
)

// KnownAnnotations lists every valid //mehpt: comment head, for the
// staleallow analyzer's unknown-annotation check. allow carries optional
// :file/:package scope suffixes, validated separately by CollectAllows.
func KnownAnnotations() []string {
	return []string{"allow", "guardedby", "ordered", "hotpath", "locked", "transient"}
}

// Annotations is the per-package annotation table.
type Annotations struct {
	// Guarded maps an annotated struct field to the name of the sibling
	// mutex field that guards it.
	Guarded map[*types.Var]string
	// Ordered maps an annotated mutex field to its lock-class name.
	Ordered map[*types.Var]string
	// Hot marks annotated functions, methods, and interface methods.
	Hot map[*types.Func]bool
	// Locked maps a function to the lock expressions (receiver-relative,
	// e.g. "t.mu") its callers must hold.
	Locked map[*types.Func][]string
	// Transient marks struct fields deliberately excluded from their
	// type's State() capture (statecover).
	Transient map[*types.Var]bool

	// Malformed annotations (a guardedby/ordered/locked with no operand)
	// surface as "directive" diagnostics on the annotated package.
	Malformed []Diagnostic
}

// CollectAnnotations builds the annotation table for one package.
func CollectAnnotations(pkg *Package) *Annotations {
	an := &Annotations{
		Guarded:   map[*types.Var]string{},
		Ordered:   map[*types.Var]string{},
		Hot:       map[*types.Func]bool{},
		Locked:    map[*types.Func][]string{},
		Transient: map[*types.Var]bool{},
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				an.collectFunc(pkg, n)
			case *ast.StructType:
				an.collectFields(pkg, n.Fields, false)
			case *ast.InterfaceType:
				an.collectFields(pkg, n.Methods, true)
			}
			return true
		})
	}
	return an
}

// collectFunc reads hotpath/locked annotations off a function declaration.
func (an *Annotations) collectFunc(pkg *Package, d *ast.FuncDecl) {
	fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
	if fn == nil {
		return
	}
	for _, c := range commentsOf(d.Doc) {
		switch {
		case strings.HasPrefix(c.Text, hotpathPrefix):
			an.Hot[fn] = true
		case strings.HasPrefix(c.Text, lockedPrefix):
			arg := annotationArg(c.Text, lockedPrefix)
			if arg == "" {
				an.malformed(c, `want "//mehpt:locked <lock-expr>"`)
				continue
			}
			an.Locked[fn] = append(an.Locked[fn], arg)
		}
	}
}

// collectFields reads guardedby/ordered (struct fields) or hotpath
// (interface methods) annotations off a field list.
func (an *Annotations) collectFields(pkg *Package, fields *ast.FieldList, iface bool) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		comments := append(commentsOf(field.Doc), commentsOf(field.Comment)...)
		for _, c := range comments {
			switch {
			case iface && strings.HasPrefix(c.Text, hotpathPrefix):
				for _, name := range field.Names {
					if fn, ok := pkg.Info.Defs[name].(*types.Func); ok {
						an.Hot[fn] = true
					}
				}
			case !iface && strings.HasPrefix(c.Text, guardedByPrefix):
				arg := annotationArg(c.Text, guardedByPrefix)
				if arg == "" {
					an.malformed(c, `want "//mehpt:guardedby <mutex-field>"`)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						an.Guarded[v] = arg
					}
				}
			case !iface && strings.HasPrefix(c.Text, transientPrefix):
				if !transientWellFormed(c.Text) {
					an.malformed(c, `want "//mehpt:transient -- <how the field is reconstituted on restore>"`)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						an.Transient[v] = true
					}
				}
			case !iface && strings.HasPrefix(c.Text, orderedPrefix):
				arg := annotationArg(c.Text, orderedPrefix)
				if arg == "" {
					an.malformed(c, `want "//mehpt:ordered <lock-class>"`)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						an.Ordered[v] = arg
					}
				}
			}
		}
	}
}

func (an *Annotations) malformed(c *ast.Comment, want string) {
	an.Malformed = append(an.Malformed, Diagnostic{
		Pos:      c.Pos(),
		Analyzer: "directive",
		Message:  "malformed annotation: " + want,
	})
}

// transientWellFormed checks a //mehpt:transient comment carries a
// nonempty "-- reason" clause and nothing between the head and the dashes.
func transientWellFormed(text string) bool {
	rest := text[len(transientPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return false // e.g. //mehpt:transientX — not this annotation
	}
	head, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(head) != "" {
		return false
	}
	return strings.TrimSpace(reason) != ""
}

// annotationArg returns the single operand of an annotation comment, or ""
// when it is missing. Trailing prose after " -- " is tolerated.
func annotationArg(text, prefix string) string {
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "" // e.g. //mehpt:guardedbyX — not this annotation
	}
	rest, _, _ = strings.Cut(rest, "--")
	fieldsOf := strings.Fields(rest)
	if len(fieldsOf) != 1 {
		return ""
	}
	return fieldsOf[0]
}

func commentsOf(cg *ast.CommentGroup) []*ast.Comment {
	if cg == nil {
		return nil
	}
	return cg.List
}
