package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// loadFactsPkg loads the factsa fixture and returns the package plus a
// Facts view over the shared loader cache.
func loadFactsPkg(t *testing.T) (*Package, *Facts) {
	t.Helper()
	loader := NewLoader(TestdataResolver("testdata/src"))
	pkg, err := loader.Load("repro/internal/factsa")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg, &Facts{loader: loader}
}

func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s: not a function (%v)", name, obj)
	}
	return fn
}

// TestCrossPackageFactRoundTrip checks the x/tools-style fact export:
// analyzing factsa computes summaries for its dependency factsb on
// demand, reach queries cross the boundary, findings anchor at the local
// call site, and waivers written in the callee's package are honoured.
func TestCrossPackageFactRoundTrip(t *testing.T) {
	pkg, facts := loadFactsPkg(t)

	hot := lookupFunc(t, pkg, "Hot")
	if !facts.IsHot(hot) {
		t.Fatalf("Hot is not recognised as //mehpt:hotpath")
	}

	reach := NewReach(facts, "hotalloc", ReachAlloc)
	finding := reach.First(hot)
	if finding == nil {
		t.Fatalf("Hot -> factsb.Grow: no allocation finding across the package boundary")
	}
	// The finding anchors at the call site in factsa, not in factsb.
	pos := pkg.Fset.Position(finding.Pos)
	if !strings.Contains(pos.Filename, "factsa") {
		t.Errorf("finding anchored at %s, want a position inside factsa", pos)
	}
	// The chain names both sides of the boundary.
	chain := strings.Join(finding.Chain, " -> ")
	if !strings.Contains(chain, "factsa.Hot") || !strings.Contains(chain, "factsb.Grow") {
		t.Errorf("chain %q does not span the package boundary", chain)
	}
	// The offending site itself lives in factsb.
	sitePos := pkg.Fset.Position(finding.Site.Pos)
	if !strings.Contains(sitePos.Filename, "factsb") {
		t.Errorf("site at %s, want a position inside factsb", sitePos)
	}

	if f := reach.First(lookupFunc(t, pkg, "Clean")); f != nil {
		t.Errorf("Clean -> factsb.Pure flagged spuriously: %s", f.Desc)
	}
	if f := reach.First(lookupFunc(t, pkg, "HotWaived")); f != nil {
		t.Errorf("waiver in factsb not honoured across the boundary: %s", f.Desc)
	}
}

// TestPackageFactsCached checks the round trip through the loader cache:
// repeated queries return the same computed facts, including for
// dependency packages pulled in transitively.
func TestPackageFactsCached(t *testing.T) {
	_, facts := loadFactsPkg(t)

	a1, err := facts.PackageFacts("repro/internal/factsa")
	if err != nil {
		t.Fatalf("PackageFacts(factsa): %v", err)
	}
	a2, err := facts.PackageFacts("repro/internal/factsa")
	if err != nil {
		t.Fatalf("PackageFacts(factsa) second load: %v", err)
	}
	if a1 != a2 {
		t.Errorf("PackageFacts recomputed instead of returning the cached value")
	}

	b, err := facts.PackageFacts("repro/internal/factsb")
	if err != nil {
		t.Fatalf("PackageFacts(factsb): %v", err)
	}
	var grow *FuncSummary
	for fn, sum := range b.Funcs {
		if fn.Name() == "Grow" {
			grow = sum
		}
	}
	if grow == nil {
		t.Fatalf("factsb.Grow has no summary")
	}
	if len(grow.Allocs) == 0 {
		t.Errorf("factsb.Grow summary records no allocation sites")
	}
}
