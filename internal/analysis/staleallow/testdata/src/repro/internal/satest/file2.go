package satest

// The file-scope waiver below once covered a map-ordered dump routine;
// the routine is gone and the waiver outlived it.
//
//mehpt:allow:file maporder -- stale file-wide waiver // want `stale //mehpt:allow`

func helper() int { return 3 }

var _ = helper
