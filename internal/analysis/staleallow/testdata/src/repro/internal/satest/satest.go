// Package satest is the staleallow golden suite: a consumed waiver that
// must stay silent, stale waivers at every scope, and the misspellings
// the audit exists to catch.
//
//mehpt:allow:package errwrap -- package-wide waiver nothing ever consumes // want `stale //mehpt:allow`
package satest

import "fmt"

// usedWaiver's directive suppresses a real maporder finding, so the
// waiver is used and must not be flagged.
func usedWaiver(m map[int]int) {
	for k := range m {
		fmt.Println(k) //mehpt:allow maporder -- demo stream, row order is irrelevant
	}
}

// staleLine carries a waiver for a finding that no longer exists.
func staleLine() int {
	x := 1 //mehpt:allow maporder -- the map loop above used to live here // want `stale //mehpt:allow`
	return x
}

// typoRule waives an analyzer that does not exist.
func typoRule() int {
	return 2 //mehpt:allow maporderr -- misspelled rule name // want `unknown analyzer "maporderr"`
}

//mehpt:hotpth // want `unknown //mehpt: annotation "hotpth"`
func notHot() {}

//mehpt:transiet -- typo // want `unknown //mehpt: annotation "transiet"`
var spare int

var (
	_ = usedWaiver
	_ = staleLine
	_ = typoRule
	_ = notHot
	_ = spare
)
