// Package staleallow audits the waiver hygiene the rest of the suite
// depends on. A //mehpt:allow directive is a standing exception; once the
// code it excused changes, the directive outlives its finding and silently
// pre-forgives the next regression on that line. staleallow errors on any
// allow entry that suppressed zero diagnostics during the run (the
// per-package suppression pass and the fact engine's cross-package
// SiteWaived checks both mark the shared entry), and flags misspelled
// annotation heads and waivers naming unknown analyzers — the typos that
// otherwise turn into directives that never match anything.
//
// The stale audit runs in the whole-run Finish phase: a waiver written in
// package A can be consumed by a reach query issued while analyzing
// package B, so staleness is only decidable after every package has been
// analyzed. Audited entries are gated on the analyzers that actually ran
// (a subset run with -analyzers never condemns waivers for rules it
// skipped), and entries naming staleallow itself are exempt: Finish
// diagnostics are deliberately unsuppressable, so such a waiver could
// never be consumed.
package staleallow

import (
	"strings"

	"repro/internal/analysis"
)

// New builds the staleallow analyzer for a suite whose analyzers carry the
// given names. The names gate the unknown-analyzer check; the Ran list of
// the concrete run gates the staleness check.
func New(known []string) *analysis.Analyzer {
	c := &checker{known: map[string]bool{}}
	for _, n := range known {
		c.known[n] = true
	}
	c.known["staleallow"] = true
	c.known["directive"] = true // the pseudo-analyzer for malformed-directive diags
	return &analysis.Analyzer{
		Name: "staleallow",
		Doc: "error on //mehpt:allow directives that suppressed nothing this " +
			"run, and on unknown annotation or analyzer names",
		Run:    c.run,
		Finish: c.finish,
	}
}

type checker struct {
	known map[string]bool
}

// run validates annotation heads: every //mehpt: comment must open with a
// known annotation name.
func (c *checker) run(pass *analysis.Pass) error {
	knownHeads := analysis.KnownAnnotations()
	isHead := map[string]bool{}
	for _, h := range knownHeads {
		isHead[h] = true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				rest, ok := strings.CutPrefix(cm.Text, "//mehpt:")
				if !ok {
					continue
				}
				head := rest
				if i := strings.IndexAny(head, " \t"); i >= 0 {
					head = head[:i]
				}
				base, _, _ := strings.Cut(head, ":")
				if !isHead[base] {
					pass.Reportf(cm.Pos(),
						"unknown //mehpt: annotation %q; known annotations: %s (rule staleallow)",
						base, strings.Join(knownHeads, ", "))
				}
			}
		}
	}
	return nil
}

// finish is the whole-run waiver audit.
func (c *checker) finish(fp *analysis.FinishPass) error {
	ran := map[string]bool{}
	for _, n := range fp.Ran {
		ran[n] = true
	}
	for _, pkg := range fp.Packages {
		set, _ := fp.Loader.AllowsFor(pkg)
		for _, e := range set.Entries() {
			switch {
			case !c.known[e.Analyzer]:
				fp.Reportf(e.Pos,
					"//mehpt:allow waives unknown analyzer %q (try mehpt-lint -list); "+
						"a misspelled waiver suppresses nothing (rule staleallow)", e.Analyzer)
			case e.Analyzer == "staleallow" || !ran[e.Analyzer]:
				// Not judgeable this run.
			case !e.Used():
				fp.Reportf(e.Pos,
					"stale //mehpt:allow: the %s waiver suppressed no diagnostic this run; "+
						"delete the directive (rule staleallow)", e.Analyzer)
			}
		}
	}
	return nil
}
