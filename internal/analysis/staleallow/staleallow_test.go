package staleallow_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/staleallow"
)

func TestStaleallow(t *testing.T) {
	analyzers := []*analysis.Analyzer{
		maporder.Analyzer,
		errwrap.Analyzer,
		staleallow.New([]string{"maporder", "errwrap"}),
	}
	analysistest.RunSuite(t, analyzers, "testdata", "repro/internal/satest")
}

// TestRanGate checks the subset-run guarantee: when maporder and errwrap
// do not run, their waivers are never condemned as stale — the audit only
// judges waivers for analyzers that executed — while the unknown-name
// checks still fire.
func TestRanGate(t *testing.T) {
	loader := analysis.NewLoader(analysis.TestdataResolver("testdata/src"))
	pkg, err := loader.Load("repro/internal/satest")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	sa := staleallow.New([]string{"maporder", "errwrap"})
	only := []*analysis.Analyzer{sa}
	if _, err := analysis.RunAnalyzers(pkg, only); err != nil {
		t.Fatalf("running staleallow: %v", err)
	}
	fds, err := analysis.RunFinishers(loader, []*analysis.Package{pkg}, only, nil)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	unknown := 0
	for _, d := range fds {
		if strings.Contains(d.Message, "stale //mehpt:allow") {
			t.Errorf("waiver condemned although its analyzer never ran: %s", d.Message)
		}
		if strings.Contains(d.Message, "unknown analyzer") {
			unknown++
		}
	}
	if unknown != 1 {
		t.Errorf("got %d unknown-analyzer findings in the subset run, want 1", unknown)
	}
}
