package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// loadTaintPkg loads the tainta fixture and returns the package plus a
// Facts view over the shared loader cache.
func loadTaintPkg(t *testing.T) (*Package, *Facts) {
	t.Helper()
	loader := NewLoader(TestdataResolver("testdata/src"))
	pkg, err := loader.Load("repro/internal/tainta")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg, &Facts{loader: loader}
}

// TestCrossPackageTaintRoundTrip checks that taint summaries survive the
// package boundary the same way allocation facts do: analyzing tainta
// computes taintb's summaries on demand, the source's Returns fact and
// the wrapper's ParamSink fact both export, and the clean path stays
// clean.
func TestCrossPackageTaintRoundTrip(t *testing.T) {
	pkg, facts := loadTaintPkg(t)

	// Source taint rides Stamp's Returns fact through Mix's passthrough.
	from := facts.TaintOf(lookupFunc(t, pkg, "FromClock"))
	if from.Returns == nil {
		t.Fatalf("FromClock: wall-clock taint did not cross the package boundary")
	}
	if !strings.Contains(from.Returns.Desc, "time.Now") {
		t.Errorf("FromClock origin %q does not name the source", from.Returns.Desc)
	}
	if !strings.Contains(from.Returns.Desc, "Stamp") {
		t.Errorf("FromClock origin %q does not name the cross-package carrier", from.Returns.Desc)
	}

	// A direct sink call in tainta anchors the hit locally.
	hit := facts.TaintOf(lookupFunc(t, pkg, "Hit"))
	if len(hit.Hits) != 1 {
		t.Fatalf("Hit: got %d sink hits, want 1", len(hit.Hits))
	}
	if !strings.Contains(hit.Hits[0].Sink, "fingerprint") {
		t.Errorf("Hit sink %q is not the fingerprint sink", hit.Hits[0].Sink)
	}
	if pos := pkg.Fset.Position(hit.Hits[0].Pos); !strings.Contains(pos.Filename, "tainta") {
		t.Errorf("hit anchored at %s, want a position inside tainta", pos)
	}

	// A sink one call deep in taintb exports as a ParamSink fact.
	deep := facts.TaintOf(lookupFunc(t, pkg, "Deep"))
	if len(deep.Hits) != 1 {
		t.Fatalf("Deep: got %d sink hits through taintb.Forward, want 1", len(deep.Hits))
	}
	if !strings.Contains(deep.Hits[0].Sink, "via") {
		t.Errorf("Deep sink %q does not mention the carrying callee", deep.Hits[0].Sink)
	}

	// Constant inputs through the same callees stay clean.
	if clean := facts.TaintOf(lookupFunc(t, pkg, "CleanPath")); clean.Returns != nil {
		t.Errorf("CleanPath spuriously tainted: %s", clean.Returns.Desc)
	}
}

// TestTaintSummariesCached checks the export side directly: taintb's
// summaries are computed once, cached on its PkgFacts, and carry the
// expected per-function facts.
func TestTaintSummariesCached(t *testing.T) {
	_, facts := loadTaintPkg(t)

	pf, err := facts.PackageFacts("repro/internal/taintb")
	if err != nil {
		t.Fatalf("PackageFacts(taintb): %v", err)
	}
	byName := map[string]*types.Func{}
	for fn := range pf.Funcs {
		byName[fn.Name()] = fn
	}

	stamp := facts.TaintOf(byName["Stamp"])
	if stamp.Returns == nil || !strings.Contains(stamp.Returns.Desc, "time.Now") {
		t.Fatalf("Stamp summary %+v does not record the wall-clock source", stamp)
	}
	if again := facts.TaintOf(byName["Stamp"]); again != stamp {
		t.Errorf("Stamp summary recomputed instead of returning the cached value")
	}

	mix := facts.TaintOf(byName["Mix"])
	if len(mix.ParamFlow) != 2 || !mix.ParamFlow[0] || !mix.ParamFlow[1] {
		t.Errorf("Mix ParamFlow = %v, want both parameters flowing to the result", mix.ParamFlow)
	}
	if mix.Returns != nil {
		t.Errorf("Mix has no source of its own, but Returns = %v", mix.Returns)
	}

	fwd := facts.TaintOf(byName["Forward"])
	if len(fwd.ParamSink) != 1 || fwd.ParamSink[0] == "" {
		t.Errorf("Forward ParamSink = %v, want the fingerprint sink exported for param 0", fwd.ParamSink)
	}
}
