// Package tainta is the caller side of the cross-package taint
// round-trip fixture: every flow below crosses into taintb through its
// exported taint summary.
package tainta

import "repro/internal/taintb"

// FromClock returns a laundered wall-clock reading: the taint must ride
// taintb.Stamp's summary through taintb.Mix's passthrough.
func FromClock() int64 {
	return taintb.Mix(taintb.Stamp(), 7)
}

// Hit feeds the clock into the sink directly.
func Hit() uint64 {
	return taintb.FingerprintAdd(taintb.Stamp())
}

// Deep feeds the clock into the sink through taintb.Forward, exercising
// the exported ParamSink fact.
func Deep() uint64 {
	return taintb.Forward(taintb.Stamp())
}

// CleanPath uses the same callees with constant inputs: no taint.
func CleanPath() int64 {
	return taintb.Mix(3, 4)
}
