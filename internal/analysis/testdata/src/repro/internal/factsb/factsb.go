// Package factsb is the callee side of the cross-package fact
// round-trip test: its summaries are computed when package factsa is
// analyzed, and its waivers must be honoured from the other side of the
// package boundary.
package factsb

// Grow allocates: callers reaching it through the call graph offend.
func Grow(s []int) []int {
	return append(s, 1)
}

// Pure is allocation-free.
func Pure(x int) int {
	return x * 2
}

// GrowWaived allocates too, but the site is waived here in its own
// package — hot callers in factsa must not be flagged for reaching it.
func GrowWaived(s []int) []int {
	return append(s, 1) //mehpt:allow hotalloc -- round-trip fixture: waiver crosses the package boundary
}
