// Package factsa is the caller side of the cross-package fact
// round-trip test.
package factsa

import "repro/internal/factsb"

//mehpt:hotpath
func Hot(s []int) []int {
	return factsb.Grow(s)
}

//mehpt:hotpath
func Clean(x int) int {
	return factsb.Pure(x)
}

//mehpt:hotpath
func HotWaived(s []int) []int {
	return factsb.GrowWaived(s)
}
