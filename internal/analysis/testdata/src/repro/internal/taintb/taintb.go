// Package taintb is the callee side of the cross-package taint
// round-trip fixture: a nondeterministic source, a pure passthrough, a
// fingerprint sink, and a one-hop wrapper around the sink.
package taintb

import "time"

// Stamp is the nondeterministic source.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Mix is a pure passthrough: both parameters flow to the result.
func Mix(v, k int64) int64 {
	return v * k
}

// FingerprintAdd is a module fingerprint sink (by name).
func FingerprintAdd(v int64) uint64 {
	return uint64(v) * 2654435761
}

// Forward reaches the sink one call deep: its parameter fact must export
// as a ParamSink so callers in other packages see the flow.
func Forward(v int64) uint64 {
	return FingerprintAdd(v)
}
