package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Module describes the module whose packages are being linted.
type Module struct {
	Path string // module path from go.mod (e.g. "repro")
	Dir  string // absolute directory of the module root
}

// FindModule walks upward from dir to the enclosing go.mod.
func FindModule(dir string) (Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return Module{}, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			sc := bufio.NewScanner(bytes.NewReader(data))
			for sc.Scan() {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(sc.Text()), "module "); ok {
					return Module{Path: strings.TrimSpace(rest), Dir: dir}, nil
				}
			}
			return Module{}, fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return Module{}, fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ExpandPatterns resolves package patterns (./..., specific dirs) to
// import paths using the go tool, keeping only packages belonging to the
// module. Package enumeration is the one job delegated to the go command;
// loading and checking stay in-process (loader.go).
func ExpandPatterns(mod Module, patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-f", "{{.ImportPath}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = mod.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var paths []string
	for _, line := range strings.Split(out.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == mod.Path || strings.HasPrefix(line, mod.Path+"/") {
			paths = append(paths, line)
		}
	}
	return paths, nil
}

// Lint loads every package named by patterns and applies the analyzers,
// returning the surviving (non-suppressed) diagnostics sorted by position
// within each package, followed by whole-run Finish diagnostics (e.g. the
// staleallow dead-waiver audit). Metrics come back one entry per analyzer,
// in suite order.
func Lint(mod Module, patterns []string, analyzers []*Analyzer) ([]Diagnostic, *Loader, []Metrics, error) {
	paths, err := ExpandPatterns(mod, patterns)
	if err != nil {
		return nil, nil, nil, err
	}
	loader := NewLoader(ModuleResolver(mod.Path, mod.Dir))
	metrics := make(map[string]*Metrics, len(analyzers))
	order := make([]*Metrics, 0, len(analyzers))
	for _, a := range analyzers {
		m := &Metrics{Name: a.Name}
		metrics[a.Name] = m
		order = append(order, m)
	}
	var diags []Diagnostic
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, nil, nil, err
		}
		pkgs = append(pkgs, pkg)
		ds, err := runAnalyzers(pkg, analyzers, metrics)
		if err != nil {
			return nil, nil, nil, err
		}
		diags = append(diags, ds...)
	}
	fds, err := RunFinishers(loader, pkgs, analyzers, metrics)
	if err != nil {
		return nil, nil, nil, err
	}
	diags = append(diags, fds...)
	out := make([]Metrics, len(order))
	for i, m := range order {
		out[i] = *m
	}
	return diags, loader, out, nil
}
