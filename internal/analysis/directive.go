package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The suppression directive grammar is
//
//	//mehpt:allow <analyzer>[,<analyzer>...] -- <reason>
//	//mehpt:allow:file <analyzer>[,<analyzer>...] -- <reason>
//	//mehpt:allow:package <analyzer>[,<analyzer>...] -- <reason>
//
// The unscoped (line-scope) form is written either on the flagged line
// itself (trailing comment), on the line immediately above it, or on the
// line above the statement the flagged expression belongs to — a directive
// above a multi-line call suppresses findings on the call's continuation
// lines too. The :file form, placed anywhere in a file, waives the named
// analyzers for that whole file; the :package form waives them for every
// file of the package. The reason is mandatory at every scope: an allow
// without a recorded justification is itself a diagnostic. The analyzer
// list names the rules being waived (e.g. "detrand" for the -progress
// wall-clock timer in internal/experiments).
//
// Every (directive, analyzer) pair is accounted for: the staleallow
// analyzer audits the run afterwards and flags any pair that suppressed
// zero diagnostics, so waivers cannot outlive the finding they excuse.
const directivePrefix = "//mehpt:allow"

// AllowEntry is one (directive, analyzer) pair: a single //mehpt:allow
// comment naming two analyzers produces two entries. Entries record how
// often they suppressed a diagnostic, which is what the staleallow audit
// keys off.
type AllowEntry struct {
	Pos      token.Pos // position of the directive comment
	Scope    string    // "line", "file", or "package"
	Analyzer string    // the analyzer this entry waives
	used     int       // diagnostics (or reach sites) suppressed
}

// Used reports whether the entry suppressed at least one diagnostic (or
// pruned at least one reach-engine site) during the run.
func (e *AllowEntry) Used() bool { return e.used > 0 }

// AllowSet records which analyzers have been waived, per line, per file,
// and package-wide. Lookups mark the matching entry used.
type AllowSet struct {
	line    map[allowKey]*AllowEntry
	file    map[fileKey]*AllowEntry
	pkg     map[string]*AllowEntry
	entries []*AllowEntry
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

type fileKey struct {
	file     string
	analyzer string
}

// CollectAllows scans the files' comments for //mehpt:allow directives.
// Malformed directives (an unknown scope suffix, no analyzer list, or a
// missing "-- reason") are returned as diagnostics under the
// pseudo-analyzer name "directive".
func CollectAllows(fset *token.FileSet, files []*ast.File) (*AllowSet, []Diagnostic) {
	allows := &AllowSet{
		line: map[allowKey]*AllowEntry{},
		file: map[fileKey]*AllowEntry{},
		pkg:  map[string]*AllowEntry{},
	}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				scope := "line"
				if s, r, ok := cutScope(rest); ok {
					scope, rest = s, r
				}
				names, reason, ok := splitDirective(rest)
				if scope == "" || !ok {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  `malformed //mehpt:allow directive: want "//mehpt:allow[:file|:package] <analyzer>[,<analyzer>] -- <reason>"`,
					})
					continue
				}
				_ = reason // the reason is for humans; presence is all we check
				pos := fset.Position(c.Pos())
				for _, n := range names {
					e := &AllowEntry{Pos: c.Pos(), Scope: scope, Analyzer: n}
					allows.entries = append(allows.entries, e)
					switch scope {
					case "line":
						allows.line[allowKey{pos.Filename, pos.Line, n}] = e
					case "file":
						allows.file[fileKey{pos.Filename, n}] = e
					case "package":
						allows.pkg[n] = e
					}
				}
			}
		}
	}
	return allows, diags
}

// Entries returns every (directive, analyzer) pair collected from the
// package, in source order. The staleallow audit walks them after the run.
func (a *AllowSet) Entries() []*AllowEntry {
	es := append([]*AllowEntry(nil), a.entries...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Pos < es[j].Pos })
	return es
}

// cutScope strips a ":file" / ":package" scope suffix off the directive
// head. An unknown scope comes back as "" so the caller reports it.
func cutScope(rest string) (scope, tail string, ok bool) {
	if !strings.HasPrefix(rest, ":") {
		return "", rest, false
	}
	head, tail, _ := strings.Cut(rest[1:], " ")
	switch head {
	case "file", "package":
		return head, " " + tail, true
	}
	return "", rest, true
}

// splitDirective parses ` detrand,maporder -- reason` into its parts.
func splitDirective(rest string) (names []string, reason string, ok bool) {
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil, "", false
	}
	list, reason, found := strings.Cut(rest, "--")
	if !found {
		return nil, "", false
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return nil, "", false
	}
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, "", false
		}
		names = append(names, n)
	}
	return names, reason, true
}

// Allows reports whether a diagnostic by analyzer at pos is waived: the
// package or file carries a scoped directive, or a line directive sits on
// the same line or the line above. stmtLine, when nonzero, is the starting
// line of the statement enclosing pos; a directive on or above that line
// also matches, so findings on the continuation lines of a multi-line
// statement honour a directive written above the statement. A match is
// recorded on the winning entry for the staleallow audit.
func (a *AllowSet) Allows(fset *token.FileSet, pos token.Pos, stmtLine int, analyzer string) bool {
	if e := a.pkg[analyzer]; e != nil {
		e.used++
		return true
	}
	p := fset.Position(pos)
	if e := a.file[fileKey{p.Filename, analyzer}]; e != nil {
		e.used++
		return true
	}
	lines := []int{p.Line, p.Line - 1}
	if stmtLine != 0 && stmtLine != p.Line {
		lines = append(lines, stmtLine, stmtLine-1)
	}
	for _, ln := range lines {
		if e := a.line[allowKey{p.Filename, ln, analyzer}]; e != nil {
			e.used++
			return true
		}
	}
	return false
}

// StmtStartLine returns the starting line of the innermost statement in
// files that encloses pos, or 0 if pos is not inside any statement. It is
// the hook that lets line-scope allow directives cover multi-line
// statements.
func StmtStartLine(fset *token.FileSet, files []*ast.File, pos token.Pos) int {
	for _, f := range files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		line := 0
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || pos < n.Pos() || pos >= n.End() {
				return n == nil
			}
			if _, ok := n.(ast.Stmt); ok {
				line = fset.Position(n.Pos()).Line
			}
			return true
		})
		return line
	}
	return 0
}
