package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive grammar is
//
//	//mehpt:allow <analyzer>[,<analyzer>...] -- <reason>
//
// written either on the flagged line itself (trailing comment) or on the
// line immediately above it. The reason is mandatory: an allow without a
// recorded justification is itself a diagnostic. The analyzer list names
// the rules being waived (e.g. "detrand" for the -progress wall-clock
// timer in internal/experiments).
const directivePrefix = "//mehpt:allow"

// AllowSet records, per file line, which analyzers have been waived.
type AllowSet map[allowKey]bool

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// CollectAllows scans the files' comments for //mehpt:allow directives.
// Malformed directives (no analyzer list, or a missing "-- reason") are
// returned as diagnostics under the pseudo-analyzer name "directive".
func CollectAllows(fset *token.FileSet, files []*ast.File) (AllowSet, []Diagnostic) {
	allows := AllowSet{}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				names, reason, ok := splitDirective(rest)
				if !ok {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  `malformed //mehpt:allow directive: want "//mehpt:allow <analyzer>[,<analyzer>] -- <reason>"`,
					})
					continue
				}
				_ = reason // the reason is for humans; presence is all we check
				pos := fset.Position(c.Pos())
				for _, n := range names {
					allows[allowKey{pos.Filename, pos.Line, n}] = true
				}
			}
		}
	}
	return allows, diags
}

// splitDirective parses ` detrand,maporder -- reason` into its parts.
func splitDirective(rest string) (names []string, reason string, ok bool) {
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil, "", false
	}
	list, reason, found := strings.Cut(rest, "--")
	if !found {
		return nil, "", false
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return nil, "", false
	}
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, "", false
		}
		names = append(names, n)
	}
	return names, reason, true
}

// Allows reports whether a diagnostic by analyzer at pos is waived: a
// directive for that analyzer sits on the same line or the line above.
func (a AllowSet) Allows(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	return a[allowKey{p.Filename, p.Line, analyzer}] ||
		a[allowKey{p.Filename, p.Line - 1, analyzer}]
}
