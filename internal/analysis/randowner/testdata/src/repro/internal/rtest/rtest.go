// Package rtest exercises the randowner ownership rules against the
// tablex stand-in config.
package rtest

import (
	"math/rand"

	"repro/internal/tablex"
)

// Good seeds a local config with a fresh generator: clean.
func Good(seed int64) *tablex.Table {
	cfg := tablex.Config{Seed: seed}
	cfg.Rand = rand.New(rand.NewSource(seed))
	return tablex.New(cfg)
}

// GoodNil leaves Rand nil so the table seeds privately: clean.
func GoodNil(seed int64) *tablex.Table {
	return tablex.New(tablex.Config{Seed: seed, Rand: nil})
}

// BadShared writes Rand through a pointer parameter — the caller shares
// that config, so the generator aliases into state BadShared doesn't own.
func BadShared(cfg *tablex.Config, seed int64) {
	cfg.Rand = rand.New(rand.NewSource(seed)) // want `caller-shared config`
}

var global = rand.New(rand.NewSource(1))

// BadAlias hands one existing generator to two configs.
func BadAlias() (tablex.Config, tablex.Config) {
	var a, b tablex.Config
	a.Rand = global // want `fresh rand\.New`
	b.Rand = global // want `fresh rand\.New` `escapes into more than one table`
	return a, b
}

// NewWrapped forwards its own config's generator into the single table it
// builds — the blessed constructor handoff, clean.
func NewWrapped(cfg tablex.Config) *tablex.Table {
	inner := tablex.Config{Seed: cfg.Seed, Rand: cfg.Rand}
	return tablex.New(inner)
}

// NewTwo hands the same incoming generator to two tables: the first
// handoff passes, the second is the alias.
func NewTwo(cfg tablex.Config) (*tablex.Table, *tablex.Table) {
	a := tablex.Config{Seed: cfg.Seed, Rand: cfg.Rand}
	b := tablex.Config{Seed: cfg.Seed, Rand: cfg.Rand} // want `escapes into more than one table`
	return tablex.New(a), tablex.New(b)
}

// BadLiteral seeds a composite literal from an existing generator outside
// any constructor: flagged.
func BadLiteral() tablex.Config {
	return tablex.Config{Rand: global} // want `fresh rand\.New`
}

// Waived documents an intentional violation with the escape hatch.
func Waived() tablex.Config {
	var c tablex.Config
	c.Rand = global //mehpt:allow randowner -- doc example showing a deliberately shared generator
	return c
}

// GoodClosure seeds inside a closure from a fresh generator: clean.
func GoodClosure(seed int64) func() *tablex.Table {
	return func() *tablex.Table {
		var c tablex.Config
		c.Rand = rand.New(rand.NewSource(seed))
		return tablex.New(c)
	}
}

// BadClosure writes through the enclosing function's pointer parameter
// from inside a closure: still caller-shared.
func BadClosure(cfg *tablex.Config) func() {
	return func() {
		cfg.Rand = rand.New(rand.NewSource(9)) // want `caller-shared config`
	}
}
