// Package tablex is a stand-in for the repo's table packages (mehpt,
// ecpt, cuckoo): a config struct carrying an optional private generator.
package tablex

import "math/rand"

// Config parameterizes a Table. Rand, when nil, is seeded privately by
// the constructor — the ownership rule randowner enforces at call sites.
type Config struct {
	Seed int64
	Rand *rand.Rand
}

// Table owns its generator.
type Table struct {
	cfg Config
	rng *rand.Rand
}

// New builds a table, seeding privately when cfg.Rand is nil.
func New(cfg Config) *Table {
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return &Table{cfg: cfg, rng: rng}
}
