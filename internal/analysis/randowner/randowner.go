// Package randowner enforces DESIGN.md's RNG-ownership rule: tables hold
// a private *rand.Rand, and a generator must never be aliased across
// tables or goroutines. Concretely, for every write to a config struct's
// Rand field (assignment or composite literal):
//
//   - the right-hand side must be a freshly constructed rand.New(...) or
//     nil (leaving the table to seed privately from its config), with one
//     exception: a constructor (New*) may forward its own config
//     parameter's Rand into the single table it builds;
//   - a config reached through a pointer parameter must not have its Rand
//     written — the caller shares that struct, so the write aliases a
//     generator into state the function does not own;
//   - the same generator value must not be written into more than one
//     Rand field within a function — that is exactly how one *rand.Rand
//     escapes into two tables and becomes a data race under the parallel
//     runner.
package randowner

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the randowner rule.
var Analyzer = &analysis.Analyzer{
	Name: "randowner",
	Doc: "enforce the table-RNG ownership rule: Rand fields take a fresh " +
		"rand.New or nil, never a shared generator",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Name.Name, fd.Type, fd.Body, map[types.Object]bool{})
			}
		}
	}
	return nil
}

// checkFunc walks one function body. outerParams carries the parameter
// objects of enclosing functions so writes through closed-over pointer
// parameters are still caught inside closures.
func checkFunc(pass *analysis.Pass, name string, ft *ast.FuncType, body *ast.BlockStmt, outerParams map[types.Object]bool) {
	params := make(map[types.Object]bool, len(outerParams))
	for o := range outerParams {
		params[o] = true
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, id := range field.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	// seen maps a non-fresh RHS (its root object and selector spelling) to
	// the first Rand field it was written into.
	seen := map[string]token.Pos{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, name, n.Type, n.Body, params)
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !isRandField(pass, sel.Sel) {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				checkWrite(pass, name, params, seen, sel, rhs, sel.Pos())
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !isRandField(pass, key) {
					continue
				}
				checkWrite(pass, name, params, seen, nil, kv.Value, kv.Pos())
			}
		}
		return true
	})
}

// checkWrite applies the three ownership rules to one write of a Rand
// field. sel is the written selector for assignments, nil for composite
// literals.
func checkWrite(pass *analysis.Pass, fn string, params map[types.Object]bool, seen map[string]token.Pos, sel *ast.SelectorExpr, rhs ast.Expr, pos token.Pos) {
	if sel != nil {
		if base := rootObject(pass, sel.X); base != nil && params[base] {
			if _, isPtr := base.Type().Underlying().(*types.Pointer); isPtr {
				pass.Reportf(sel.Pos(),
					"%s writes Rand on a caller-shared config (pointer parameter %s); copy the config by value before seeding it (rule randowner)",
					fn, base.Name())
			}
		}
	}
	if rhs == nil {
		return
	}
	rhs = ast.Unparen(rhs)
	if isFresh(pass, rhs) {
		return
	}
	if !isHandoff(pass, fn, params, rhs) {
		pass.Reportf(pos,
			"Rand must be seeded with a fresh rand.New(...) or left nil, not an existing generator (rule randowner)")
	}
	// Handoffs still participate in escape tracking: forwarding one
	// config's generator into two tables is aliasing all the same.
	recordEscape(pass, fn, seen, rhs, pos)
}

// recordEscape flags a generator expression written into a second Rand
// field within the same function.
func recordEscape(pass *analysis.Pass, fn string, seen map[string]token.Pos, rhs ast.Expr, pos token.Pos) {
	rhs = ast.Unparen(rhs)
	if isFresh(pass, rhs) {
		return
	}
	key := exprKey(pass, rhs)
	if key == "" {
		return
	}
	if _, dup := seen[key]; dup {
		pass.Reportf(pos,
			"*rand.Rand %s escapes into more than one table in %s; each table must own a private generator (rule randowner)",
			exprText(rhs), fn)
		return
	}
	seen[key] = pos
}

// isRandField reports whether id resolves to a struct field named Rand of
// type *math/rand.Rand.
func isRandField(pass *analysis.Pass, id *ast.Ident) bool {
	if id.Name != "Rand" {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	return isRandPtr(v.Type())
}

func isRandPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return named.Obj().Name() == "Rand" && (path == "math/rand" || path == "math/rand/v2")
}

// isFresh reports whether e constructs a new generator on the spot:
// rand.New(...) (math/rand or v2) or the nil literal.
func isFresh(pass *analysis.Pass, e ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.IsNil() {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "New" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

// isHandoff reports whether e is the blessed constructor handoff: inside a
// New* function, reading Rand off one of the function's own parameters.
func isHandoff(pass *analysis.Pass, fn string, params map[types.Object]bool, e ast.Expr) bool {
	if len(fn) < 3 || (fn[:3] != "New" && fn[:3] != "new") {
		return false
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rand" {
		return false
	}
	base := rootObject(pass, sel.X)
	return base != nil && params[base]
}

// rootObject returns the object of the leftmost identifier of a selector
// chain (unwrapping derefs and parens), or nil.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprKey identifies a generator-valued expression by its root object and
// spelling, so two writes of the same value are recognized.
func exprKey(pass *analysis.Pass, e ast.Expr) string {
	obj := rootObject(pass, e)
	if obj == nil {
		return ""
	}
	return fmt.Sprintf("%p/%s", obj, exprText(e))
}

// exprText renders a selector chain as source-ish text for messages.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	default:
		return "generator"
	}
}
