package randowner_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/randowner"
)

func TestRandowner(t *testing.T) {
	analysistest.Run(t, randowner.Analyzer, "testdata",
		"repro/internal/tablex", // the owning table package itself: clean
		"repro/internal/rtest",  // call-site rules: fresh/handoff/aliasing
	)
}
