// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects the
// type-checked syntax of one package through a Pass and reports
// Diagnostics. The repository is deliberately dependency-free, so instead
// of importing x/tools we keep the same shape (Analyzer.Name/Doc/Run,
// Pass.Fset/Files/Pkg/TypesInfo, Reportf) on top of go/ast, go/types and a
// small source loader (loader.go). Should the module ever grow an x/tools
// dependency, the analyzers port over mechanically.
//
// The suite exists to enforce DESIGN.md's determinism and unit-safety
// invariants at tier-1 time; see the analyzer packages under
// internal/analysis/... and the multichecker in cmd/mehpt-lint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the rule in diagnostics and in //mehpt:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass is the per-(analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts answers cross-package questions (function summaries, hot-path
	// annotations, transitive reachability) for type-aware analyzers.
	Facts *Facts
	// Ann is the annotation table of the package under analysis.
	Ann *Annotations

	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies each analyzer to pkg, filters out findings
// suppressed by //mehpt:allow directives, and appends diagnostics for
// malformed directives. Diagnostics come back sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows, diags := CollectAllows(pkg.Fset, pkg.Files)
	ann := CollectAnnotations(pkg)
	diags = append(diags, ann.Malformed...)
	facts := &Facts{loader: pkg.loader}
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Ann:       ann,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			stmtLine := StmtStartLine(pkg.Fset, pkg.Files, d.Pos)
			if !allows.Allows(pkg.Fset, d.Pos, stmtLine, a.Name) {
				diags = append(diags, d)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
