// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects the
// type-checked syntax of one package through a Pass and reports
// Diagnostics. The repository is deliberately dependency-free, so instead
// of importing x/tools we keep the same shape (Analyzer.Name/Doc/Run,
// Pass.Fset/Files/Pkg/TypesInfo, Reportf) on top of go/ast, go/types and a
// small source loader (loader.go). Should the module ever grow an x/tools
// dependency, the analyzers port over mechanically.
//
// The suite exists to enforce DESIGN.md's determinism and unit-safety
// invariants at tier-1 time; see the analyzer packages under
// internal/analysis/... and the multichecker in cmd/mehpt-lint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the rule in diagnostics and in //mehpt:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
	// Finish, when non-nil, runs once after every package in the run has
	// been analyzed. It is the hook for whole-run audits (staleallow's
	// dead-waiver scan) that cannot be decided package-by-package because
	// cross-package fact queries mark waivers used in other packages.
	// Finish diagnostics are NOT subject to //mehpt:allow suppression: a
	// finding about a directive is fixed by editing the directive, not by
	// stacking another waiver on top of it.
	Finish func(*FinishPass) error
}

// Pass is the per-(analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts answers cross-package questions (function summaries, hot-path
	// annotations, transitive reachability) for type-aware analyzers.
	Facts *Facts
	// Ann is the annotation table of the package under analysis.
	Ann *Annotations

	diags *[]Diagnostic
}

// FinishPass is the whole-run view handed to Analyzer.Finish.
type FinishPass struct {
	Analyzer *Analyzer
	Loader   *Loader
	// Packages are the packages analyzed during the run, in analysis order.
	Packages []*Package
	// Ran names every analyzer that participated in the run (including
	// this one). Audits consult it so a subset run (-analyzers a,b) never
	// judges waivers for rules that did not execute.
	Ran []string

	diags *[]Diagnostic
}

// Reportf records a whole-run finding at pos.
func (p *FinishPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Metrics accumulates one analyzer's run statistics for the -json report:
// surviving findings, diagnostics a //mehpt:allow directive suppressed,
// and wall time spent inside the analyzer (Run over every package, plus
// Finish).
type Metrics struct {
	Name       string
	Findings   int
	Suppressed int
	Elapsed    time.Duration
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies each analyzer to pkg, filters out findings
// suppressed by //mehpt:allow directives, and appends diagnostics for
// malformed directives. Diagnostics come back sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkg, analyzers, nil)
}

// runAnalyzers is RunAnalyzers with an optional per-analyzer metrics
// accumulator (keyed by analyzer name; entries must pre-exist).
func runAnalyzers(pkg *Package, analyzers []*Analyzer, metrics map[string]*Metrics) ([]Diagnostic, error) {
	allows, diags := pkg.loader.AllowsFor(pkg)
	ann := CollectAnnotations(pkg)
	diags = append(diags, ann.Malformed...)
	facts := &Facts{loader: pkg.loader}
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Ann:       ann,
			diags:     &raw,
		}
		start := time.Now()
		err := a.Run(pass)
		m := metrics[a.Name]
		if m != nil {
			m.Elapsed += time.Since(start)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			stmtLine := StmtStartLine(pkg.Fset, pkg.Files, d.Pos)
			if allows.Allows(pkg.Fset, d.Pos, stmtLine, a.Name) {
				if m != nil {
					m.Suppressed++
				}
			} else {
				diags = append(diags, d)
				if m != nil {
					m.Findings++
				}
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// RunFinishers invokes the Finish hook of every analyzer that has one,
// after all packages of the run have been through runAnalyzers. Finish
// diagnostics bypass //mehpt:allow suppression by design.
func RunFinishers(loader *Loader, pkgs []*Package, analyzers []*Analyzer, metrics map[string]*Metrics) ([]Diagnostic, error) {
	ran := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		ran = append(ran, a.Name)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		var raw []Diagnostic
		fp := &FinishPass{
			Analyzer: a,
			Loader:   loader,
			Packages: pkgs,
			Ran:      ran,
			diags:    &raw,
		}
		start := time.Now()
		err := a.Finish(fp)
		if m := metrics[a.Name]; m != nil {
			m.Elapsed += time.Since(start)
			m.Findings += len(raw)
		}
		if err != nil {
			return nil, fmt.Errorf("%s (finish): %w", a.Name, err)
		}
		diags = append(diags, raw...)
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
