// Package statecover proves checkpoint completeness statically: for every
// type with a State() capture method it checks that (1) each stored field
// of the type is read somewhere in the capture walk or carries an explicit
// //mehpt:transient -- <reason> annotation, (2) each field of the
// corresponding XxxState struct is populated during capture, (3) each
// XxxState field is consumed somewhere in the restore walk, and (4) no
// state struct carries a gob-hostile shape (chan/func fields, unexported
// fields, fixed-size arrays of pointer/interface elements — gob rejects
// nil array elements, the failure mode that motivated the dense-slice
// serialization in PR 8).
//
// It is the static counterpart of the runtime invariant scrubber: the
// scrubber proves the restored simulator behaves identically on the cases
// a test drives; statecover proves no field was forgotten on any path,
// including ones no test reaches.
//
// The walk is transitive within the package: a State() method that
// captures stats via an accessor (m.Stats()) or a helper (captureStats)
// still covers the fields those callees read. Calls out of the package
// and dynamic calls are not followed; fields whose capture happens on the
// far side of such a call need a //mehpt:transient annotation explaining
// where the data goes.
package statecover

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the statecover rule.
var Analyzer = &analysis.Analyzer{
	Name: "statecover",
	Doc: "prove State()/Restore field coverage: every stored field captured " +
		"or //mehpt:transient, every state field populated and re-applied, " +
		"no gob-hostile shapes",
	Run: run,
}

// funcInfo is the memoized per-function flow summary the walks union.
type funcInfo struct {
	reads   map[*types.Var]bool // struct fields read (any selection)
	writes  map[*types.Var]bool // state-struct fields stored to
	callees []*types.Func       // static same-package callees
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	// order lists the declared functions in source order, so every walk
	// below is deterministic (ranging over decls would randomize it).
	order []*types.Func
	infos map[*types.Func]*funcInfo
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		infos: map[*types.Func]*funcInfo{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
				c.order = append(c.order, fn)
			}
		}
	}

	pairs := c.statePairs()
	if len(pairs) == 0 {
		return nil
	}

	captureRoots, restoreRoots := c.roots()
	captured := c.closure(captureRoots)
	restored := c.closure(restoreRoots)

	for _, p := range pairs {
		c.checkOwnerCoverage(p, c.closure([]*types.Func{p.method}))
	}

	for _, s := range c.stateStructs() {
		c.checkStateStruct(s, captured, restored, restoreRoots)
	}
	return nil
}

// pair is one T ←→ S binding established by a State() method.
type pair struct {
	owner  *types.Named // T, the simulated type being checkpointed
	state  *types.Named // S, the serialized image (nil if external/opaque)
	method *types.Func  // (T).State
}

// statePairs finds every method named State returning a module state
// struct.
func (c *checker) statePairs() []*pair {
	var pairs []*pair
	for _, fn := range c.order {
		fd := c.decls[fn]
		if fn.Name() != "State" || fd.Recv == nil {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() != 1 {
			continue
		}
		owner := namedOf(sig.Recv().Type())
		if owner == nil {
			continue
		}
		state := namedOf(sig.Results().At(0).Type())
		if state == nil || !analysis.IsStateStruct(state) {
			continue // not a checkpoint State(): returns something else
		}
		pairs = append(pairs, &pair{owner: owner, state: state, method: fn})
	}
	return pairs
}

// stateStructs lists every state struct defined in this package.
func (c *checker) stateStructs() []*types.Named {
	var out []*types.Named
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !analysis.IsStateStruct(named) {
			continue
		}
		out = append(out, named)
	}
	return out
}

// roots classifies every declared function into the capture corpus (State
// methods, functions returning a state struct) and the restore corpus
// (functions with a state-struct parameter). Methods ON a state struct
// serve either direction and join both.
func (c *checker) roots() (capture, restore []*types.Func) {
	for _, fn := range c.order {
		sig := fn.Type().(*types.Signature)
		isCapture := false
		isRestore := false
		if fn.Name() == "State" && sig.Recv() != nil {
			isCapture = true
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if s := namedOf(sig.Results().At(i).Type()); s != nil && analysis.IsStateStruct(s) {
				isCapture = true
			}
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if s := namedOf(sig.Params().At(i).Type()); s != nil && analysis.IsStateStruct(s) {
				isRestore = true
			}
		}
		if recv := sig.Recv(); recv != nil {
			if s := namedOf(recv.Type()); s != nil && analysis.IsStateStruct(s) {
				isCapture, isRestore = true, true
			}
		}
		if isCapture {
			capture = append(capture, fn)
		}
		if isRestore {
			restore = append(restore, fn)
		}
	}
	return capture, restore
}

// closure unions the summaries of roots and everything they transitively
// call inside the package.
func (c *checker) closure(roots []*types.Func) *funcInfo {
	out := &funcInfo{reads: map[*types.Var]bool{}, writes: map[*types.Var]bool{}}
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		info := c.infoFor(fn)
		if info == nil {
			return
		}
		for v := range info.reads {
			out.reads[v] = true
		}
		for v := range info.writes {
			out.writes[v] = true
		}
		for _, callee := range info.callees {
			visit(callee)
		}
	}
	for _, fn := range roots {
		visit(fn)
	}
	return out
}

// infoFor computes (and memoizes) one function's field reads, state-field
// writes, and same-package callees.
func (c *checker) infoFor(fn *types.Func) *funcInfo {
	if info, ok := c.infos[fn]; ok {
		return info
	}
	fd := c.decls[fn]
	if fd == nil {
		return nil
	}
	info := &funcInfo{reads: map[*types.Var]bool{}, writes: map[*types.Var]bool{}}
	c.infos[fn] = info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel := c.pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					info.reads[v] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.recordWrite(info, lhs)
			}
		case *ast.CompositeLit:
			c.recordCompositeLit(info, n)
		case *ast.CallExpr:
			if callee := analysis.CalleeFunc(c.pass.TypesInfo, n); callee != nil && callee.Pkg() == c.pass.Pkg {
				info.callees = append(info.callees, callee)
			}
		}
		return true
	})
	return info
}

// recordWrite marks a state-struct field stored to through an lvalue,
// unwrapping indexing/dereference so st.Ways[i] = ... counts as a write
// of Ways.
func (c *checker) recordWrite(info *funcInfo, lhs ast.Expr) {
	for {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = l.X
			continue
		case *ast.StarExpr:
			lhs = l.X
			continue
		case *ast.SelectorExpr:
			sel := c.pass.TypesInfo.Selections[l]
			if sel == nil || sel.Kind() != types.FieldVal {
				return
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return
			}
			if owner := namedOf(c.pass.TypesInfo.TypeOf(l.X)); owner != nil && analysis.IsStateStruct(owner) {
				info.writes[v] = true
			}
			// A deeper chain (st.Sub.Field = x) also writes the outer field.
			lhs = l.X
			continue
		default:
			return
		}
	}
}

// recordCompositeLit marks fields populated by a state-struct literal:
// keyed entries write the named fields, an unkeyed literal writes all of
// them.
func (c *checker) recordCompositeLit(info *funcInfo, lit *ast.CompositeLit) {
	named := namedOf(c.pass.TypesInfo.TypeOf(lit))
	if named == nil || !analysis.IsStateStruct(named) {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	if len(lit.Elts) == 0 {
		return
	}
	keyed := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				info.writes[v] = true
			}
		}
	}
	if !keyed {
		for i := 0; i < st.NumFields(); i++ {
			info.writes[st.Field(i)] = true
		}
	}
}

// checkOwnerCoverage enforces rule (1): every stored field of T read in
// its State() walk or annotated transient.
func (c *checker) checkOwnerCoverage(p *pair, walk *funcInfo) {
	st, ok := p.owner.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if walk.reads[f] || c.pass.Ann.Transient[f] {
			continue
		}
		c.pass.Reportf(f.Pos(),
			"field %s.%s is not captured by (%s).State and not marked transient; "+
				`serialize it or annotate it "//mehpt:transient -- <how it is reconstituted>" (rule statecover)`,
			p.owner.Obj().Name(), f.Name(), p.owner.Obj().Name())
	}
}

// checkStateStruct enforces rules (2)-(4) on one state struct S.
func (c *checker) checkStateStruct(named *types.Named, captured, restored *funcInfo, restoreRoots []*types.Func) {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	sName := named.Obj().Name()

	// (4) gob-hostile shapes, independent of flow.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		c.checkGobShape(sName, f)
	}

	// (3) restore coverage. When nothing consumes S at all, one finding
	// beats a diagnostic per field.
	consumed := false
	for _, fn := range restoreRoots {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if namedOf(sig.Params().At(i).Type()) == named {
				consumed = true
			}
		}
		if recv := sig.Recv(); recv != nil && namedOf(recv.Type()) == named {
			consumed = true
		}
	}
	fieldRead := false
	for i := 0; i < st.NumFields(); i++ {
		if restored.reads[st.Field(i)] {
			fieldRead = true
		}
	}
	if !consumed && !fieldRead && st.NumFields() > 0 {
		c.pass.Reportf(named.Obj().Pos(),
			"state struct %s has no restore counterpart: no function or method consumes it (rule statecover)", sName)
	} else {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !restored.reads[f] && f.Exported() {
				c.pass.Reportf(f.Pos(),
					"state field %s.%s is never applied on restore (rule statecover)", sName, f.Name())
			}
		}
	}

	// (2) capture coverage: every field of S populated somewhere in the
	// capture corpus.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !captured.writes[f] && f.Exported() {
			c.pass.Reportf(f.Pos(),
				"state field %s.%s is never populated during capture (rule statecover)", sName, f.Name())
		}
	}
}

// checkGobShape rejects field shapes encoding/gob mangles silently or at
// runtime.
func (c *checker) checkGobShape(sName string, f *types.Var) {
	if !f.Exported() {
		c.pass.Reportf(f.Pos(),
			"unexported state field %s.%s is silently dropped by encoding/gob; export it or remove it (rule statecover)",
			sName, f.Name())
		return
	}
	if bad := gobHostile(f.Type(), 0); bad != "" {
		c.pass.Reportf(f.Pos(),
			"state field %s.%s %s (rule statecover)", sName, f.Name(), bad)
	}
}

// gobHostile inspects a state field's structural type for shapes gob
// cannot round-trip: chan/func anywhere, and fixed-size arrays with
// pointer or interface elements (gob refuses nil elements — serialize a
// dense slice instead). Named struct types are not descended into; they
// are audited where they are declared.
func gobHostile(t types.Type, depth int) string {
	if depth > 8 {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return "has channel type; gob cannot encode channels"
	case *types.Signature:
		return "has function type; gob cannot encode functions"
	case *types.Array:
		if hasPointerOrInterface(u.Elem()) {
			return "is a fixed-size array with pointer/interface elements; " +
				"gob rejects nil elements — serialize a dense slice instead"
		}
		return gobHostile(u.Elem(), depth+1)
	case *types.Slice:
		return gobHostile(u.Elem(), depth+1)
	case *types.Map:
		if bad := gobHostile(u.Key(), depth+1); bad != "" {
			return bad
		}
		return gobHostile(u.Elem(), depth+1)
	case *types.Pointer:
		return gobHostile(u.Elem(), depth+1)
	case *types.Struct:
		if named := namedOf(t); named != nil && named.Obj().Pkg() != nil {
			return "" // audited at its own declaration
		}
		for i := 0; i < u.NumFields(); i++ {
			if bad := gobHostile(u.Field(i).Type(), depth+1); bad != "" {
				return bad
			}
		}
	}
	return ""
}

func hasPointerOrInterface(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface:
		return true
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
