package statecover_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statecover"
)

func TestStatecover(t *testing.T) {
	analysistest.Run(t, statecover.Analyzer, "testdata", "repro/internal/sctest")
}
