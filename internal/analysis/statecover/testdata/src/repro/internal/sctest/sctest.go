// Package sctest is the statecover golden suite: State()/Restore pairs
// with deliberate coverage holes and gob-hostile shapes, next to clean
// pairs exercising the transitive-capture and satellite-struct paths.
package sctest

// Machine drops a field on capture and a field on restore.
type Machine struct {
	cycles  uint64
	insts   uint64
	scratch []byte // want `field Machine\.scratch is not captured by \(Machine\)\.State and not marked transient`
	//mehpt:transient -- rebuilt by the page-table walker on first touch after restore
	tables map[uint64]uint64
}

// MachineState is Machine's serialized image.
type MachineState struct {
	Cycles uint64 // want `state field MachineState\.Cycles is never applied on restore`
	Insts  uint64
	Epoch  uint64 // want `state field MachineState\.Epoch is never populated during capture`
}

// State captures everything except scratch (a bug) and tables (waived).
func (m *Machine) State() MachineState {
	return MachineState{Cycles: m.cycles, Insts: m.insts}
}

// Restore forgets to re-apply Cycles and reads Epoch (never captured).
func (m *Machine) Restore(st MachineState) {
	m.insts = st.Insts
	m.cycles = 0
	_ = st.Epoch
}

// Buffer round-trips fully, but its state struct has gob-hostile shapes.
type Buffer struct {
	data  []byte
	wake  chan int
	hook  func()
	slots [4]*Entry
}

// Entry is a plain element type.
type Entry struct{ V int }

// BufferState collects one shape gob drops silently and three it rejects.
type BufferState struct {
	Data  []byte
	notes string    // want `unexported state field BufferState\.notes is silently dropped by encoding/gob`
	Wake  chan int  // want `gob cannot encode channels`
	Hook  func()    // want `gob cannot encode functions`
	Slots [4]*Entry // want `fixed-size array with pointer/interface elements`
}

func captureBuffer(b *Buffer) BufferState {
	return BufferState{Data: b.data, Wake: b.wake, Hook: b.hook, Slots: b.slots}
}

func restoreBuffer(b *Buffer, st BufferState) {
	b.data = st.Data
	b.wake = st.Wake
	b.hook = st.Hook
	b.slots = st.Slots
}

// OrphanState is produced but never consumed: restoring from it is
// impossible, so the checkpoint is write-only.
type OrphanState struct { // want `state struct OrphanState has no restore counterpart`
	Seq uint64
}

func captureOrphan(n uint64) OrphanState { return OrphanState{Seq: n} }

// Core is clean: pc is captured through an accessor, proving the
// transitive same-package walk.
type Core struct {
	pc   uint64
	regs [4]uint64
}

// PC is the accessor State goes through.
func (c *Core) PC() uint64 { return c.pc }

// CoreState is Core's serialized image.
type CoreState struct {
	PC   uint64
	Regs [4]uint64
}

// State captures pc via the accessor, not a direct field read.
func (c *Core) State() CoreState {
	return CoreState{PC: c.PC(), Regs: c.regs}
}

// Restore applies every field.
func (c *Core) Restore(st CoreState) {
	c.pc = st.PC
	c.regs = st.Regs
}

// Bank is clean: its satellite WayState is populated element-wise during
// capture and consumed through a range on restore — no function takes
// WayState directly.
type Bank struct {
	ways []way
}

type way struct{ tag uint64 }

// BankState is Bank's serialized image.
type BankState struct {
	Ways []WayState
}

// WayState is the per-way satellite image.
type WayState struct {
	Tag uint64
}

// State serializes the ways densely.
func (b *Bank) State() BankState {
	st := BankState{Ways: make([]WayState, 0, len(b.ways))}
	for _, w := range b.ways {
		st.Ways = append(st.Ways, WayState{Tag: w.tag})
	}
	return st
}

// Restore rebuilds the ways from the dense image.
func (b *Bank) Restore(st BankState) {
	b.ways = b.ways[:0]
	for _, ws := range st.Ways {
		b.ways = append(b.ways, way{tag: ws.Tag})
	}
}

var _ = captureBuffer
var _ = restoreBuffer
var _ = captureOrphan
