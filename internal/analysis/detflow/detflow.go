// Package detflow flags dataflow from nondeterministic sources into
// reproducibility sinks. detrand bans calling the wall clock and the
// global RNG outside sanctioned owners, and maporder flags order-leaking
// iteration shapes — detflow closes the gap between them: it follows the
// VALUE. A timestamp laundered through strconv, a map-iteration product
// accumulated into a struct, or an address-derived uintptr is tracked
// through assignments, expressions, and cross-package call summaries
// (internal/analysis/taint.go) until it reaches a fingerprint
// computation, the stats layer, or snapshot state — the three places
// where a nondeterministic bit forks the run-to-run contract.
//
// The engine tracks explicit flows only (no control dependence, no
// cross-goroutine channel flow); the runtime fingerprint determinism gate
// remains the backstop for what it cannot see. Packages under
// repro/internal/analysis are exempt, as with detrand: lint tooling
// legitimately measures its own wall time.
package detflow

import (
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detflow rule.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "flag dataflow from nondeterministic sources (wall clock, global " +
		"rand, map/select ordering, pointer addresses) into fingerprints, " +
		"stats, or snapshot state",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if path == "repro/internal/analysis" || strings.HasPrefix(path, "repro/internal/analysis/") {
		return nil
	}
	hits, err := pass.Facts.TaintHits(path)
	if err != nil {
		return err
	}
	var flat []analysis.SinkHit
	for _, hs := range hits {
		flat = append(flat, hs...)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].Pos < flat[j].Pos })
	for _, h := range flat {
		pass.Reportf(h.Pos, "%s (rule detflow)", analysis.TaintDesc(h))
	}
	return nil
}
