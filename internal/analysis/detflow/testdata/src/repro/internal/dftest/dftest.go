// Package dftest is the detflow golden suite: nondeterministic values
// flowing into fingerprint, stats, and snapshot sinks — directly, through
// local helpers, and through cross-package summaries — next to seeded and
// sink-free uses that must stay silent.
package dftest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"time"
	"unsafe"

	"repro/internal/dfsrc"
	"repro/internal/stats"
)

// fingerprintOf mixes a value into a run fingerprint (name makes it a
// module fingerprint sink).
func fingerprintOf(v int64) uint64 { return uint64(v) * 2654435761 }

// seedFromClock feeds the wall clock straight into the fingerprint.
func seedFromClock() uint64 {
	seed := time.Now().UnixNano()
	return fingerprintOf(seed) // want `wall clock time\.Now.*fingerprint computation`
}

// recordLatency launders the clock through another package first; the
// taint arrives via dfsrc.Stamp's exported summary.
func recordLatency() {
	v := dfsrc.Scale(dfsrc.Stamp(), 3)
	stats.Record(v) // want `wall clock time\.Now.*stats recording`
}

// mapFingerprint folds map iteration order into the fingerprint. (A
// non-commutative mix makes the order observable; even a sum is flagged —
// collect and sort instead.)
func mapFingerprint(m map[uint64]uint64) uint64 {
	var mix uint64
	for k := range m {
		mix = mix*31 + k
	}
	return fingerprintOf(int64(mix)) // want `map iteration order.*fingerprint computation`
}

// selectRace records whichever channel won the race.
func selectRace(a, b chan int64) {
	var got int64
	select {
	case v := <-a:
		got = v
	case v := <-b:
		got = v
	}
	stats.Record(got) // want `select case arrival order.*stats recording`
}

// ProbeState is a snapshot image; storing an address-derived value into
// it forks the checkpoint between runs (ASLR).
type ProbeState struct {
	Addr uint64
}

func captureProbe(p *int) ProbeState {
	var st ProbeState
	st.Addr = uint64(uintptr(unsafe.Pointer(p))) // want `pointer-to-uintptr conversion.*snapshot state field ProbeState\.Addr`
	return st
}

// snapshotClock gob-encodes a wall-clock reading.
func snapshotClock(buf *bytes.Buffer) error {
	enc := gob.NewEncoder(buf)
	t := time.Now()
	return enc.Encode(t) // want `wall clock time\.Now.*gob snapshot encoding`
}

// seededDraw uses an explicitly seeded generator: deterministic, silent.
func seededDraw() int64 {
	rng := rand.New(rand.NewSource(42))
	return rng.Int63()
}

// logElapsed sends the clock to a log line — not a sink, silent.
func logElapsed(start time.Time) {
	fmt.Println(time.Since(start))
}

var (
	_ = seedFromClock
	_ = recordLatency
	_ = mapFingerprint
	_ = selectRace
	_ = captureProbe
	_ = snapshotClock
	_ = seededDraw
	_ = logElapsed
)
