// Package stats is a golden-suite stub standing in for the repository's
// stats layer: any exported call with arguments is a detflow sink.
package stats

// Record folds a measurement into the aggregate.
func Record(v int64) {}
