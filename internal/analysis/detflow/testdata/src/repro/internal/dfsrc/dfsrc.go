// Package dfsrc holds the cross-package nondeterminism source for the
// detflow golden suite: the taint must travel through Stamp's exported
// summary into the calling package.
package dfsrc

import "time"

// Stamp returns the wall clock — nondeterministic by construction.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Scale is a pure passthrough: taint in, taint out, no source of its own.
func Scale(v int64, k int64) int64 {
	return v * k
}
