package detflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, detflow.Analyzer, "testdata", "repro/internal/dftest")
}
