// Package hotalloc enforces the zero-allocation contract of the
// translation pipeline statically. Functions annotated //mehpt:hotpath —
// the Translate→TLB→walk→cache chain that BENCH_0.json's AllocsPerRun
// gates measure at runtime — must not reach a heap allocation through any
// statically resolvable call chain: no make/new, no append growth, no
// map/slice literals, no interface boxing, no closures, no string
// concatenation, and no calls into allocating standard-library packages
// such as fmt. It is the static twin of the benchmark allocs gate: the
// gate proves the inputs CI ran were clean, hotalloc proves every build
// cannot regress them.
//
// Dynamic calls (interface methods, func values) cannot be traversed, so
// they are findings too — unless the interface method itself carries
// //mehpt:hotpath, which declares a contract boundary: implementations
// are annotated and checked directly. Deliberate allocations (one-time
// warm-up growth, fault paths) are waived at the offending site with
// //mehpt:allow hotalloc, which also clears every hot caller that reaches
// the site.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags heap allocations reachable from //mehpt:hotpath
// functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "//mehpt:hotpath functions must not reach heap allocations or " +
		"unanalyzable dynamic calls through the static call graph",
	Run: run,
}

func run(pass *analysis.Pass) error {
	allocs := analysis.NewReach(pass.Facts, "hotalloc", analysis.ReachAlloc)
	dyns := analysis.NewReach(pass.Facts, "hotalloc", analysis.ReachDyn)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil || !pass.Ann.Hot[fn] {
				continue
			}
			if f := allocs.First(fn); f != nil {
				pass.Reportf(f.Pos, "hot path %s reaches heap allocation: %s (chain %s)",
					f.Chain[0], f.Desc, strings.Join(f.Chain, " -> "))
			}
			if f := dyns.First(fn); f != nil {
				pass.Reportf(f.Pos, "hot path %s makes an unanalyzable dynamic call: %s (chain %s); annotate the interface method //mehpt:hotpath or waive the site",
					f.Chain[0], f.Desc, strings.Join(f.Chain, " -> "))
			}
		}
	}
	return nil
}
