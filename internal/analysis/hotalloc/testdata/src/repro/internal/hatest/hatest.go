// Package hatest seeds hotalloc violations: //mehpt:hotpath functions
// that reach heap allocations directly, transitively, through the
// standard library, and through unanalyzable dynamic calls.
package hatest

import "fmt"

type entry struct{ va, pa uint64 }

//mehpt:hotpath
func makeOnHot(n int) []entry {
	return make([]entry, n) // want `hot path hatest\.makeOnHot reaches heap allocation: make`
}

//mehpt:hotpath
func appendOnHot(s []entry, e entry) []entry {
	return append(s, e) // want `append may grow its backing array`
}

//mehpt:hotpath
func formats() string {
	return fmt.Sprintf("x") // want `fmt\.Sprintf allocates \(chain hatest\.formats -> fmt\.Sprintf\)`
}

//mehpt:hotpath
func closes(x uint64) func() uint64 {
	return func() uint64 { return x } // want `func literal`
}

//mehpt:hotpath
func concats(a, b string) string {
	return a + b // want `string concatenation`
}

//mehpt:hotpath
func boxes(v uint64) any {
	return any(v) // want `interface boxing`
}

//mehpt:hotpath
func spawns() {
	go sink() // want `go statement`
}

func sink() {}

// helper and grow are not annotated; they are reached from transitive.

func helper(m map[uint64]uint64, k uint64) {
	m[k] = k
	grow()
}

func grow() []byte {
	return make([]byte, 16)
}

//mehpt:hotpath
func transitive(m map[uint64]uint64) {
	helper(m, 1) // want `chain hatest\.transitive -> hatest\.helper -> hatest\.grow`
}

type walker interface {
	Walk(va uint64) uint64
}

//mehpt:hotpath
func dynCall(w walker, va uint64) uint64 {
	return w.Walk(va) // want `unanalyzable dynamic call`
}

//mehpt:hotpath
func funcValue(f func() uint64) uint64 {
	return f() // want `call through func value`
}

// hotIface.Probe is a contract boundary: dynamic calls through it are
// accepted, implementations carry their own annotation.
type hotIface interface {
	//mehpt:hotpath
	Probe(va uint64) uint64
}

//mehpt:hotpath
func dynOK(h hotIface, va uint64) uint64 {
	return h.Probe(va)
}

// warm's append is waived at the site, so the hot caller stays clean too.

//mehpt:hotpath
func warm(s []entry) []entry {
	//mehpt:allow hotalloc -- one-time warm-up growth, amortized to zero
	return append(s, entry{})
}

//mehpt:hotpath
func warmCaller(s []entry) []entry {
	return warm(s)
}

// clean exercises the operations hotalloc must NOT flag: arithmetic,
// array indexing into fixed backing, pointer math.
//
//mehpt:hotpath
func clean(s []entry, mask uint64) uint64 {
	e := &s[int(mask)&(len(s)-1)]
	return e.va ^ e.pa
}
