package errwrap_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, errwrap.Analyzer, "testdata", "repro/internal/ewtest")
}
