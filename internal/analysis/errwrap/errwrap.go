// Package errwrap guards the error chains PR 3 built for the allocation
// and rollback paths (phys.ErrOutOfMemory, mehpt rehash rollback): callers
// decide policy with errors.Is, which only works if every intermediate
// layer wraps with %w and nobody silently drops the error. Two rules:
//
//  1. No discards. An error result assigned to _ or ignored entirely at a
//     call statement is flagged. Print-like calls whose error is
//     conventionally ignored (fmt.Print*/Fprint*, strings.Builder and
//     bytes.Buffer writes, which cannot fail) are exempt.
//  2. Wrap with %w. fmt.Errorf given an error-typed argument must use the
//     %w verb — %v or %s silently severs the chain and breaks errors.Is
//     at the policy layer.
//
// Deliberate exceptions (the rehash budget tick whose error is a
// scheduling hint, not a failure) are waived with //mehpt:allow errwrap
// and a recorded reason.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces error-chain hygiene: no discarded errors, %w wrapping.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "error results must be handled or explicitly waived, and " +
		"fmt.Errorf with an error argument must wrap it with %w",
	Run: run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkDiscard(pass, n)
			case *ast.ExprStmt:
				checkIgnored(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscard flags error values assigned to the blank identifier.
func checkDiscard(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		switch {
		case len(as.Rhs) == len(as.Lhs):
			t = pass.TypesInfo.TypeOf(as.Rhs[i])
		case len(as.Rhs) == 1:
			if tup, ok := pass.TypesInfo.TypeOf(as.Rhs[0]).(*types.Tuple); ok && i < tup.Len() {
				t = tup.At(i).Type()
			}
		}
		if isError(t) {
			pass.Reportf(id.Pos(),
				"error result discarded (assigned to _); handle it, return it wrapped, or waive with //mehpt:allow errwrap")
		}
	}
}

// checkIgnored flags call statements that drop an error result on the
// floor. Deferred calls are not visited here: defer f.Close() and friends
// are a separate idiom with no good in-line handling story.
func checkIgnored(pass *analysis.Pass, es *ast.ExprStmt) {
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || !returnsError(pass.TypesInfo, call) {
		return
	}
	if safeToIgnore(pass.TypesInfo, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"call discards its error result; handle it, return it wrapped, or waive with //mehpt:allow errwrap")
}

// checkErrorf flags fmt.Errorf calls that format an error argument with a
// chain-severing verb instead of %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: nothing to prove
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isError(pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf formats an error argument without %%w: the chain breaks and errors.Is stops working; use %%w or waive with //mehpt:allow errwrap")
			return
		}
	}
}

// safeToIgnore exempts print-like calls and writers that cannot fail.
func safeToIgnore(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch types.TypeString(t, nil) {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	return false
}

func returnsError(info *types.Info, call *ast.CallExpr) bool {
	switch t := info.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isError(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isError(t)
	}
	return false
}

func isError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
