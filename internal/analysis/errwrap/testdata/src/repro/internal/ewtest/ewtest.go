// Package ewtest seeds errwrap violations: discarded error results,
// ignored error-returning calls, and fmt.Errorf chains severed by %v.
package ewtest

import (
	"errors"
	"fmt"
	"strings"
)

var errFull = errors.New("full")

func alloc() (uint64, error) { return 0, errFull }

func doWork() error { return errFull }

func discardTuple() uint64 {
	v, _ := alloc() // want `error result discarded`
	return v
}

func discardAssign() {
	_ = doWork() // want `error result discarded`
}

func discardBoth() {
	_, _ = alloc() // want `error result discarded`
}

func ignored() {
	doWork() // want `call discards its error result`
}

func severed(va uint64) error {
	if _, err := alloc(); err != nil {
		return fmt.Errorf("insert va=%x: %v", va, err) // want `without %w`
	}
	return nil
}

func wrapped(va uint64) error {
	if _, err := alloc(); err != nil {
		return fmt.Errorf("insert va=%x: %w", va, err)
	}
	return nil
}

// handled propagates without wrapping: fine, the chain is intact.
func handled() error {
	if err := doWork(); err != nil {
		return err
	}
	return nil
}

// printing is conventionally error-ignored.
func printing(b *strings.Builder) {
	fmt.Println("ok")
	b.WriteString("ok")
}

// waived records why the discard is deliberate.
func waived() {
	//mehpt:allow errwrap -- budget tick result is a scheduling hint only
	_ = doWork()
}
