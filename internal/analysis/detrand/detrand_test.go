package detrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "testdata",
		"repro/internal/simx", // deterministic package: flagged + allowed cases
		"repro/cmdx",          // I/O shell: same constructs, zero findings
	)
}

func TestDeterministicSet(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/sim":              true,
		"repro/internal/mehpt":            true,
		"repro/internal/workload":         true,
		"repro/internal/analysis":         false,
		"repro/internal/analysis/detrand": false,
		"repro/cmd/mehpt-experiments":     false,
		"repro/examples/quickstart":       false,
	} {
		if got := detrand.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
