// Package detrand forbids nondeterministic sources in the simulator's
// deterministic packages. DESIGN.md's reproducibility contract — identical
// output at any worker count, stable across runs — only holds if every
// random draw flows from an explicitly seeded *rand.Rand and no result
// path reads the wall clock. This analyzer mechanizes that rule:
//
//   - top-level math/rand (and math/rand/v2) functions, which draw from
//     the shared global generator, are forbidden; rand.New(rand.NewSource(
//     seed)) constructors remain legal,
//   - wall-clock and timer functions from package time are forbidden,
//   - importing crypto/rand at all is forbidden.
//
// Legitimate wall-clock uses (the -progress timer in
// internal/experiments) carry a "//mehpt:allow detrand -- reason"
// directive.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detrand rule.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand, wall-clock time, and crypto/rand in " +
		"deterministic simulator packages",
	Run: run,
}

// Deterministic reports whether the package at path falls under the
// determinism contract: the whole simulator core (repro/internal/...)
// except the lint tooling itself. cmd/ and examples/ are I/O shells and
// exempt.
func Deterministic(path string) bool {
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/internal/analysis")
}

// bannedRand are the math/rand (and v2) package-level functions that use
// the process-global generator. The seeded constructors (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) stay allowed.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

// bannedTime are the package time functions that read the wall clock or
// create timers; both are scheduling-dependent and must not influence
// simulation results.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

func run(pass *analysis.Pass) error {
	if !Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "crypto/rand" {
				pass.Reportf(imp.Pos(),
					"crypto/rand is nondeterministic; derive randomness from an explicitly seeded *math/rand.Rand (rule detrand)")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := importedPkg(pass, sel)
			switch pkgPath {
			case "math/rand", "math/rand/v2":
				if bannedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global rand.%s draws from math/rand's shared generator; use an explicitly seeded *rand.Rand (rule detrand)",
						sel.Sel.Name)
				}
			case "time":
				if bannedTime[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in a deterministic package; results must not depend on real time (rule detrand)",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// importedPkg returns the import path of sel's base if the base names an
// imported package, else "".
func importedPkg(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
