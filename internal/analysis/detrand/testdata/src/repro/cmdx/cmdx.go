// Package cmdx is an I/O-shell golden package: it sits outside
// repro/internal/, so detrand leaves its wall-clock and global-rand uses
// alone (CLIs may time themselves and shuffle help text all they want).
package cmdx

import (
	"math/rand"
	"time"
)

// Uptime may read the wall clock: not a deterministic package.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Jitter may use the global generator: not a deterministic package.
func Jitter() int {
	return rand.Intn(100)
}
