// Package simx is a detrand golden package: its import path places it
// under repro/internal/, so the determinism contract applies.
package simx

import (
	crand "crypto/rand" // want `crypto/rand is nondeterministic`
	"math/rand"
	"time"
)

// Draw uses the global generator: flagged.
func Draw() int {
	return rand.Intn(10) // want `global rand\.Intn draws from math/rand's shared generator`
}

// Shuffled uses more global-state helpers: flagged.
func Shuffled() []int {
	rand.Seed(42) // want `global rand\.Seed`
	p := rand.Perm(8) // want `global rand\.Perm`
	return p
}

// Seeded derives every draw from an explicitly seeded generator: clean.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Clock reads wall time on a result path: flagged.
func Clock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// Elapsed measures a duration: flagged twice (Now and Since).
func Elapsed() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Allowed carries the escape-hatch directive: suppressed.
func Allowed() time.Time {
	return time.Now() //mehpt:allow detrand -- progress timing for humans, never a result path
}

// AllowedAbove is suppressed by a directive on the preceding line.
func AllowedAbove() time.Time {
	//mehpt:allow detrand -- wall-clock needed for the demo banner
	return time.Now()
}

// Fill uses crypto/rand (the import is what gets flagged).
func Fill(b []byte) {
	crand.Read(b)
}

// Malformed directives are themselves findings and suppress nothing.
func Malformed() time.Time {
	//mehpt:allow detrand missing reason separator // want `malformed //mehpt:allow directive`
	return time.Now() // want `time\.Now reads the wall clock`
}
