// Package mtest exercises the maporder rule: map ranges whose iteration
// order can leak into results.
package mtest

import (
	"fmt"
	"io"
	"sort"
)

// GoodSorted collects keys and sorts them after the loop: the sanctioned
// idiom, clean.
func GoodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodSortSlice determinizes with sort.Slice: clean.
func GoodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// BadCollect returns the keys in map order.
func BadCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration order leaks into out`
	}
	return out
}

// BadWrite serializes the map in iteration order.
func BadWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `output order nondeterministic`
	}
}

// BadSeed folds map keys into a seed in iteration order.
func BadSeed(m map[uint64]uint64) uint64 {
	var s uint64
	for k := range m {
		s = DeriveSeed(s, k) // want `feeding DeriveSeed from map iteration`
	}
	return s
}

// DeriveSeed is a stand-in for runner.DeriveSeed.
func DeriveSeed(s, k uint64) uint64 { return s*0x9e3779b9 + k }

// Waived documents an order-irrelevant dump with the escape hatch.
func Waived(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) //mehpt:allow maporder -- debug dump, order deliberately irrelevant
	}
}

// GoodReduce computes an order-independent reduction: clean.
func GoodReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodInner appends to a slice scoped inside the loop body: clean.
func GoodInner(m map[string][]int, f func([]int)) {
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		f(doubled)
	}
}
