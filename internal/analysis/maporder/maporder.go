// Package maporder flags Go map iterations whose order can leak into
// simulator output. Go randomizes map iteration order per run, so a range
// over a map that appends to a slice, writes to an output stream, or
// feeds a hash/seed derivation produces run-dependent results — the exact
// class of silent nondeterminism the repository's reproducibility
// contract forbids. The canonical fix is to collect and sort: an append
// inside the loop is accepted when the slice is passed to a sort call
// later in the same block.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the maporder rule.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order leaks into slices, output " +
		"streams, or hash/seed derivations without a deterministic sort",
	Run: run,
}

// writerNames are method/function names that emit output; reached inside
// a map range they serialize the map in random order.
var writerNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "EncodeToken": true, "Marshal": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					continue
				}
				checkLoop(pass, rs, block.List[i+1:])
			}
			return true
		})
	}
	return nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkLoop inspects one map-range body. tail is the rest of the
// enclosing block, searched for the sanctioned collect-then-sort idiom.
func checkLoop(pass *analysis.Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				obj := assignTarget(pass, n.Lhs[i])
				if obj == nil || declaredWithin(obj, rs) {
					continue
				}
				if sortedLater(pass, tail, obj) {
					continue
				}
				pass.Reportf(n.Pos(),
					"map iteration order leaks into %s; sort it after the loop or iterate over sorted keys (rule maporder)",
					obj.Name())
			}
		case *ast.CallExpr:
			name := calleeName(n)
			switch {
			case writerNames[name]:
				pass.Reportf(n.Pos(),
					"writing output inside map iteration makes the output order nondeterministic; collect rows and sort them first (rule maporder)")
			case isHashName(name):
				pass.Reportf(n.Pos(),
					"feeding %s from map iteration makes the result order-dependent; iterate over sorted keys (rule maporder)", name)
			}
		}
		return true
	})
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// assignTarget resolves the assigned variable, or nil for non-identifier
// targets (struct fields keep their finding via the root variable).
func assignTarget(pass *analysis.Pass, lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[x]
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[x]; sel != nil {
			return sel.Obj()
		}
	}
	return nil
}

// declaredWithin reports whether obj is declared inside the loop — an
// inner accumulator cannot outlive an iteration, so its order is moot.
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// sortedLater reports whether a later statement in the block passes obj
// to a sort (package sort or slices), the sanctioned determinizer.
func sortedLater(pass *analysis.Pass, tail []ast.Stmt, obj types.Object) bool {
	for _, stmt := range tail {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(pass, call) {
				return true
			}
			ast.Inspect(call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == "sort" || path == "slices"
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// isHashName matches hash/seed-derivation calls: DeriveSeed, Hash*,
// Sum/Sum32/Sum64 and friends.
func isHashName(name string) bool {
	return strings.Contains(name, "Seed") ||
		strings.HasPrefix(name, "Hash") ||
		strings.HasPrefix(name, "Sum")
}
