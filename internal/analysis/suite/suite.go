// Package suite registers the repository's analyzers in one place for the
// cmd/mehpt-lint multichecker and the repo-wide lint test.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/addrspace"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/randowner"
)

// All returns every analyzer in the mehpt-lint suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		addrspace.Analyzer,
		detrand.Analyzer,
		errwrap.Analyzer,
		hotalloc.Analyzer,
		lockguard.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		randowner.Analyzer,
	}
}
