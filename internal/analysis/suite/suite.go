// Package suite registers the repository's analyzers in one place for the
// cmd/mehpt-lint multichecker and the repo-wide lint test.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/addrspace"
	"repro/internal/analysis/detflow"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/randowner"
	"repro/internal/analysis/staleallow"
	"repro/internal/analysis/statecover"
)

// All returns every analyzer in the mehpt-lint suite. staleallow is built
// against the full name list so its unknown-analyzer check recognizes
// every rule that can legitimately appear in a //mehpt:allow directive.
func All() []*analysis.Analyzer {
	base := []*analysis.Analyzer{
		addrspace.Analyzer,
		detflow.Analyzer,
		detrand.Analyzer,
		errwrap.Analyzer,
		hotalloc.Analyzer,
		lockguard.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		randowner.Analyzer,
		statecover.Analyzer,
	}
	names := make([]string, 0, len(base))
	for _, a := range base {
		names = append(names, a.Name)
	}
	return append(base, staleallow.New(names))
}
