package suite_test

import (
	"os/exec"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// TestRepoIsClean runs the full mehpt-lint suite over the module, so
// tier-1 `go test ./...` enforces the DESIGN.md determinism and
// unit-safety invariants without waiting for the CI lint job.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo lint load is not -short material")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	mod, err := analysis.FindModule(".")
	if err != nil {
		t.Fatalf("finding module: %v", err)
	}
	diags, loader, _, err := analysis.Lint(mod, []string{"./..."}, suite.All())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s", loader.Fset.Position(d.Pos), d.Message)
	}
}

func TestSuiteNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range suite.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing metadata", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
