package analysis

import (
	"go/ast"
	"go/types"
)

// flow.go is the statement-ordered lock-state walker shared by the
// lockguard and lockorder analyzers. It tracks which mutexes are held at
// each point of a function body, by the textual spelling of their base
// expression (e.g. "st.mu"), with divergence pruning: lock mutations made
// in a branch that cannot fall through (it ends in return, break,
// continue, or goto) are discarded for the fall-through state, so the
//
//	st.mu.Lock()
//	if full { st.mu.Unlock(); continue }
//	... // st.mu still held here
//
// idiom used by phys.Striped.alloc analyzes correctly. Where branches
// rejoin, states union-merge (held in any branch counts as held): the
// walker's job is proving "definitely unguarded", so over-approximating
// the held set only suppresses findings, never invents them.

// LockKind distinguishes read locks from write locks.
type LockKind int

// Lock kinds.
const (
	LockRead  LockKind = iota + 1 // RLock
	LockWrite                     // Lock
)

// LockState maps a lock's rendered base expression to how it is held.
type LockState map[string]LockKind

func (s LockState) clone() LockState {
	c := make(LockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// union folds o into s, keeping the stronger kind.
func (s LockState) union(o LockState) {
	for k, v := range o {
		if v > s[k] {
			s[k] = v
		}
	}
}

// Holds reports whether the named lock is held at all (read or write).
func (s LockState) Holds(lock string) bool { return s[lock] != 0 }

// HoldsWrite reports whether the named lock is held exclusively.
func (s LockState) HoldsWrite(lock string) bool { return s[lock] == LockWrite }

// LockOp is a recognized sync.Mutex / sync.RWMutex operation.
type LockOp struct {
	Call *ast.CallExpr
	Base string // rendered receiver, e.g. "st.mu"
	// BaseExpr is the receiver expression itself, for resolving the mutex
	// field's annotations.
	BaseExpr ast.Expr
	Acquire  bool
	Kind     LockKind
}

// WalkLocks walks body in statement order and calls visit for every node,
// with the lock state current at that node. Lock operations are delivered
// to visit (op non-nil, with the state *before* the operation applies) and
// then applied. init seeds the entry state — the hook for //mehpt:locked
// preconditions. Function-literal bodies are not descended into: a closure
// runs under its caller's lock context, not its creator's. Deferred calls
// are visited but their lock operations are not applied (a deferred Unlock
// releases at return, not where it is written).
func WalkLocks(info *types.Info, body *ast.BlockStmt, init LockState, visit func(n ast.Node, op *LockOp, held LockState)) {
	w := &lockWalker{info: info, visit: visit}
	w.block(body, init.clone())
}

type lockWalker struct {
	info  *types.Info
	visit func(n ast.Node, op *LockOp, held LockState)
}

// block walks the statements of a block sequentially. It returns the
// fall-through state and whether the block always terminates abruptly.
func (w *lockWalker) block(b *ast.BlockStmt, in LockState) (LockState, bool) {
	for _, s := range b.List {
		var term bool
		in, term = w.stmt(s, in)
		if term {
			return in, true
		}
	}
	return in, false
}

func (w *lockWalker) stmt(s ast.Stmt, in LockState) (LockState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.block(s, in)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, in)
	case *ast.IfStmt:
		if s.Init != nil {
			in, _ = w.stmt(s.Init, in)
		}
		in = w.exprs(in, s.Cond)
		out := in.clone()
		thenOut, thenTerm := w.block(s.Body, in.clone())
		elseTerm := true // no else: cond-false falls through via out
		if s.Else != nil {
			var elseOut LockState
			elseOut, elseTerm = w.stmt(s.Else, in.clone())
			if !elseTerm {
				out = elseOut
			}
			if thenTerm && elseTerm {
				return in, true
			}
		}
		if !thenTerm {
			if s.Else != nil && elseTerm {
				out = thenOut
			} else {
				out.union(thenOut)
			}
		}
		return out, false
	case *ast.ForStmt:
		if s.Init != nil {
			in, _ = w.stmt(s.Init, in)
		}
		if s.Cond != nil {
			in = w.exprs(in, s.Cond)
		}
		bodyOut, bodyTerm := w.block(s.Body, in.clone())
		if s.Post != nil {
			bodyOut, _ = w.stmt(s.Post, bodyOut)
		}
		out := in.clone()
		if !bodyTerm {
			out.union(bodyOut)
		}
		return out, false
	case *ast.RangeStmt:
		in = w.exprs(in, s.X)
		bodyOut, bodyTerm := w.block(s.Body, in.clone())
		out := in.clone()
		if !bodyTerm {
			out.union(bodyOut)
		}
		return out, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			in, _ = w.stmt(s.Init, in)
		}
		if s.Tag != nil {
			in = w.exprs(in, s.Tag)
		}
		return w.caseBodies(s.Body, in)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in, _ = w.stmt(s.Init, in)
		}
		in, _ = w.stmt(s.Assign, in)
		return w.caseBodies(s.Body, in)
	case *ast.SelectStmt:
		w.visit(s, nil, in)
		return w.caseBodies(s.Body, in)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			in = w.exprs(in, e)
		}
		return in, true
	case *ast.BranchStmt:
		return in, true
	case *ast.DeferStmt:
		w.deferCall(s.Call, in)
		return in, false
	case *ast.GoStmt:
		// The goroutine body runs under its own context; record only the
		// spawn itself.
		w.visit(s, nil, in)
		return in, false
	default:
		// Leaf statements: assignments, expression statements, sends,
		// declarations, inc/dec. Walk contained expressions in order.
		return w.exprs(in, s), w.isPanicStmt(s)
	}
}

// caseBodies walks each case clause of a switch/select body with a copy of
// the incoming state and union-merges the non-terminating outcomes.
func (w *lockWalker) caseBodies(body *ast.BlockStmt, in LockState) (LockState, bool) {
	out := in.clone()
	for _, cs := range body.List {
		var clauseIn LockState
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			clauseIn = in.clone()
			for _, e := range cs.List {
				clauseIn = w.exprs(clauseIn, e)
			}
			stmts = cs.Body
		case *ast.CommClause:
			clauseIn = in.clone()
			if cs.Comm != nil {
				clauseIn, _ = w.stmt(cs.Comm, clauseIn)
			}
			stmts = cs.Body
		default:
			continue
		}
		term := false
		for _, st := range stmts {
			clauseIn, term = w.stmt(st, clauseIn)
			if term {
				break
			}
		}
		if !term {
			out.union(clauseIn)
		}
	}
	return out, false
}

// exprs inspects node in source order, applying lock operations as they
// appear and delivering every other node to visit. The incoming state is
// mutated in place and returned.
func (w *lockWalker) exprs(in LockState, node ast.Node) LockState {
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			w.visit(n, nil, in)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op := w.lockOp(call); op != nil {
				w.visit(call, op, in)
				if op.Acquire {
					if op.Kind > in[op.Base] {
						in[op.Base] = op.Kind
					}
				} else {
					delete(in, op.Base)
				}
				return false
			}
		}
		w.visit(n, nil, in)
		return true
	})
	return in
}

// deferCall visits a deferred call's nodes without applying lock
// operations.
func (w *lockWalker) deferCall(call *ast.CallExpr, in LockState) {
	ast.Inspect(call, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		w.visit(n, nil, in)
		return true
	})
}

// isPanicStmt reports whether s is a bare panic(...) call — terminating.
func (w *lockWalker) isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isPanicCall(w.info, call)
}

// lockOp recognizes x.Lock() / x.Unlock() / x.RLock() / x.RUnlock() where
// the method belongs to package sync.
func (w *lockWalker) lockOp(call *ast.CallExpr) *LockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var acquire bool
	var kind LockKind
	switch sel.Sel.Name {
	case "Lock":
		acquire, kind = true, LockWrite
	case "RLock":
		acquire, kind = true, LockRead
	case "Unlock":
		acquire, kind = false, LockWrite
	case "RUnlock":
		acquire, kind = false, LockRead
	default:
		return nil
	}
	fn := methodOf(w.info, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	return &LockOp{Call: call, Base: ExprString(sel.X), BaseExpr: sel.X,
		Acquire: acquire, Kind: kind}
}

// methodOf resolves the *types.Func a method selector names.
func methodOf(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	if s, ok := info.Selections[sel]; ok {
		fn, _ := s.Obj().(*types.Func)
		return fn
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// ExprString renders an expression's access path — the textual identity
// the lock walker and the annotation matchers key on. Index expressions
// collapse to "[...]" so all elements of a lock array share one identity;
// that is deliberately coarse and biases toward considering locks held.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return ExprString(e.X)
	case *ast.UnaryExpr:
		return ExprString(e.X)
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	default:
		return "?"
	}
}

// FieldVar resolves the struct-field (or package-level/local variable)
// object an expression's final component names, for annotation lookups.
func FieldVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}
