// Package addr mirrors the real internal/addr unit types so the
// addrspace golden package can exercise domain mixing. The analyzer
// recognizes the types by package-path suffix and name, so this stand-in
// behaves exactly like the real module.
package addr

// VirtAddr is a virtual byte address.
type VirtAddr uint64

// PhysAddr is a physical byte address.
type PhysAddr uint64

// VPN is a virtual page number.
type VPN uint64

// PPN is a physical page number.
type PPN uint64

// PageShift is the 4KB page shift used by the helpers below.
const PageShift = 12

// PageNumber is the blessed address->page-number crossing.
func (va VirtAddr) PageNumber() VPN { return VPN(uint64(va) >> PageShift) }

// Addr is the blessed page-number->address crossing.
func (v VPN) Addr() VirtAddr { return VirtAddr(uint64(v) << PageShift) }

// Translate is the blessed virtual->physical crossing.
func Translate(va VirtAddr, ppn PPN) PhysAddr {
	return PhysAddr(uint64(ppn)<<PageShift | uint64(va)&(1<<PageShift-1))
}
