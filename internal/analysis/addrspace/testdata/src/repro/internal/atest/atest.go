// Package atest exercises the addrspace unit-safety rule.
package atest

import "repro/internal/addr"

// Identity reinterprets a virtual page number as a physical frame.
func Identity(v addr.VPN) addr.PPN {
	return addr.PPN(v) // want `VPN -> PPN mixes the virtual and physical`
}

// Laundered hides the same bug behind a uint64 conversion.
func Laundered(v addr.VPN) addr.PPN {
	return addr.PPN(uint64(v)) // want `laundered through uint64`
}

// Offset spells out the arithmetic of the crossing: clean.
func Offset(v addr.VPN) addr.PPN {
	return addr.PPN(uint64(v) + 0x100000)
}

// UnitMix turns a page number into a byte address with no shift.
func UnitMix(v addr.VPN) addr.VirtAddr {
	return addr.VirtAddr(v) // want `VPN -> VirtAddr mixes byte addresses and page numbers`
}

// PhysUnitMix does the same in the physical domain.
func PhysUnitMix(p addr.PPN) addr.PhysAddr {
	return addr.PhysAddr(p) // want `PPN -> PhysAddr mixes byte addresses and page numbers`
}

// BackwardsMix crosses domains in the other direction.
func BackwardsMix(pa addr.PhysAddr) addr.VirtAddr {
	return addr.VirtAddr(pa) // want `PhysAddr -> VirtAddr mixes the virtual and physical`
}

// Raw drops to the documented raw escape type: clean.
func Raw(v addr.VPN) uint64 {
	return uint64(v)
}

// FromRaw builds a unit from a raw integer: clean.
func FromRaw(x uint64) addr.VPN {
	return addr.VPN(x)
}

// Helpers uses the blessed crossings: clean.
func Helpers(va addr.VirtAddr, ppn addr.PPN) (addr.VPN, addr.PhysAddr) {
	return va.PageNumber(), addr.Translate(va, ppn)
}

// Waived documents a test-fixture round-trip with the escape hatch.
func Waived(p addr.PPN) addr.VPN {
	return addr.VPN(p) //mehpt:allow addrspace -- fixture round-trips frames through VPN keys
}

// SameType conversions are no-ops and clean.
func SameType(v addr.VPN) addr.VPN {
	return addr.VPN(v)
}
