package addrspace_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/addrspace"
)

func TestAddrspace(t *testing.T) {
	analysistest.Run(t, addrspace.Analyzer, "testdata",
		"repro/internal/addr",  // the unit-defining package itself: clean
		"repro/internal/atest", // mixing, laundering, and waived cases
	)
}
