// Package addrspace enforces unit safety between the address domains
// defined in internal/addr. VirtAddr/VPN live in the virtual domain,
// PhysAddr/PPN in the physical domain, and within a domain byte addresses
// and page numbers differ by a page-size shift. The type system already
// stops implicit mixing; what it cannot stop is a *conversion* that
// silently reinterprets one unit as another:
//
//	addr.PPN(vpn)          // virtual page number became a physical frame
//	addr.VirtAddr(vpn)     // page number became a byte address, no shift
//	addr.PPN(uint64(vpn))  // same bug laundered through uint64
//
// Those direct conversions are flagged. Legitimate crossings spell out
// their arithmetic (addr.PPN(uint64(v)+off), VPN(uint64(va)>>shift)) or
// use the addr helpers (PageNumber, Addr, Translate), which this analyzer
// leaves alone.
package addrspace

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the addrspace rule.
var Analyzer = &analysis.Analyzer{
	Name: "addrspace",
	Doc: "flag conversions that mix virtual/physical address domains or " +
		"byte-address/page-number units without explicit arithmetic",
	Run: run,
}

// unit describes one of the four address units.
type unit struct {
	virtual bool // virtual vs. physical domain
	page    bool // page number vs. byte address
}

var units = map[string]unit{
	"VirtAddr": {virtual: true, page: false},
	"VPN":      {virtual: true, page: true},
	"PhysAddr": {virtual: false, page: false},
	"PPN":      {virtual: false, page: true},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dstName, dstUnit, ok := addrUnit(tv.Type)
			if !ok {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			if srcName, srcUnit, ok := exprUnit(pass, arg); ok && srcName != dstName {
				pass.Reportf(call.Pos(), "%s", mixMessage(srcName, srcUnit, dstName, dstUnit))
				return true
			}
			// The laundered form: Dst(uint64(x)) with no arithmetic.
			if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
				itv, ok := pass.TypesInfo.Types[inner.Fun]
				if ok && itv.IsType() && isInteger(itv.Type) {
					if srcName, srcUnit, ok := exprUnit(pass, ast.Unparen(inner.Args[0])); ok && srcName != dstName {
						pass.Reportf(call.Pos(),
							"%s, laundered through %s; spell out the arithmetic that makes the crossing correct",
							mixMessage(srcName, srcUnit, dstName, dstUnit), itv.Type)
					}
				}
			}
			return true
		})
	}
	return nil
}

// mixMessage tailors the diagnostic to the kind of unit violation.
func mixMessage(srcName string, src unit, dstName string, dst unit) string {
	conv := "conversion " + srcName + " -> " + dstName
	switch {
	case src.virtual != dst.virtual:
		return conv + " mixes the virtual and physical address domains; translate through the page table or addr.Translate (rule addrspace)"
	case src.page != dst.page:
		return conv + " mixes byte addresses and page numbers without a page-size shift; use PageNumber/Addr (rule addrspace)"
	default:
		return conv + " mixes address units (rule addrspace)"
	}
}

// addrUnit identifies t as one of internal/addr's unit types.
func addrUnit(t types.Type) (string, unit, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", unit{}, false
	}
	path := named.Obj().Pkg().Path()
	if path != "addr" && !strings.HasSuffix(path, "/addr") {
		return "", unit{}, false
	}
	u, ok := units[named.Obj().Name()]
	return named.Obj().Name(), u, ok
}

// exprUnit reports the address unit of e's type, if it has one.
func exprUnit(pass *analysis.Pass, e ast.Expr) (string, unit, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return "", unit{}, false
	}
	return addrUnit(tv.Type)
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
